module mobistreams

go 1.21
