// Fault tolerance walkthrough: the Fig. 5 diamond graph under MobiStreams,
// hit by a three-phone burst failure and then a departure, printing what
// the protocol does at each step — token checkpoints, broadcast
// persistence, parallel restoration, source replay, urgent mode and state
// transfer.
package main

import (
	"fmt"
	"time"

	"mobistreams"
	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
	"mobistreams/stream"
)

func main() {
	// The Fig. 5 diamond, declared fluently: A -> B fans out to C and D,
	// which Merge back into the join E. Each stage is pinned to its own
	// slot (phone); the builder compiles the same graph + registry the
	// hand-wired API used to assemble.
	a := stream.From[int]("A", stream.On("n1"))
	b := a.Via("B", func() operator.Operator { return operator.NewPassthrough("B") }, stream.On("n2"))
	c := b.Map("C", func(v int) int { return v }, stream.On("n3"))
	d := b.Map("D", func(v int) int { return v }, stream.On("n4"))
	e := stream.Merge[int]("E", func() operator.Operator {
		return operator.NewJoin("E", "C", "D", func(l, r *tuple.Tuple) *tuple.Tuple { return l.Clone() })
	}, []stream.Upstream{c, d}, stream.On("n5"))
	p, err := e.Build()
	if err != nil {
		panic(err)
	}

	sys := mobistreams.NewSystem(mobistreams.SystemConfig{
		Speedup:          200,
		CheckpointPeriod: 45 * time.Second,
	})
	region, err := sys.AddRegion(mobistreams.PipelineSpec("r1", p, mobistreams.MS, 10))
	if err != nil {
		panic(err)
	}
	sys.Start()
	defer sys.Stop()
	clk := sys.Clock()

	feed := func(n int) {
		for i := 0; i < n; i++ {
			region.Ingest("A", i, 2048, "item")
			clk.Sleep(time.Second)
		}
	}

	fmt.Println("== steady state: 30 tuples through the diamond")
	feed(30)
	clk.Sleep(5 * time.Second)
	fmt.Printf("outputs: %d (exactly once through the C/D join)\n", region.Outputs())

	fmt.Println("\n== waiting for a token-triggered checkpoint to commit")
	region.TriggerCheckpoint()
	for region.Committed() == 0 {
		clk.Sleep(2 * time.Second)
	}
	fmt.Printf("checkpoint v%d committed: every phone now holds every node's state\n", region.Committed())

	fmt.Println("\n== burst failure: three phones crash simultaneously")
	for _, slot := range []string{"n2", "n3", "n4"} {
		if err := region.InjectFailure(slot); err != nil {
			panic(err)
		}
	}
	feed(30)
	clk.Sleep(90 * time.Second)
	fmt.Printf("recoveries: %d; outputs now: %d; region dead: %v\n",
		region.Recoveries(), region.Outputs(), region.Dead())

	fmt.Println("\n== mobility: the phone hosting the join drives away")
	if err := region.InjectDeparture("n5"); err != nil {
		panic(err)
	}
	feed(20)
	clk.Sleep(60 * time.Second)
	rep := region.Report()
	fmt.Printf("after departure handoff: outputs %d, mean latency %v\n",
		rep.Tuples, rep.MeanLatency.Round(time.Millisecond))
	fmt.Println("\ndone: the region survived a 3-phone burst failure and a departure")
}
