// Quickstart: a three-operator pipeline (sensor source -> smoother -> sink)
// declared with the typed stream builder, on a five-phone region under
// MobiStreams fault tolerance. It ingests readings on a workload schedule,
// rides through a checkpoint, survives a mid-run phone failure and prints
// the recovered output stream.
package main

import (
	"fmt"
	"time"

	"mobistreams"
	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
	"mobistreams/internal/workload"
	"mobistreams/stream"
)

// smoother is a custom stateful operator on the emit-context contract: an
// exponential moving average whose results are pushed straight into the
// node's compiled pipeline — no per-tuple emission slice.
type smoother struct {
	operator.Base
	ewma float64
	n    uint64
}

func (s *smoother) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	v, _ := t.Value.(float64)
	if s.n == 0 {
		s.ewma = v
	} else {
		s.ewma = 0.8*s.ewma + 0.2*v
	}
	s.n++
	out := t.Clone()
	out.Value = s.ewma
	ctx.Emit(out)
	return nil
}

func (s *smoother) Cost(*tuple.Tuple) time.Duration { return 50 * time.Millisecond }

func (s *smoother) Snapshot() ([]byte, error) {
	return []byte(fmt.Sprintf("%g %d", s.ewma, s.n)), nil
}

func (s *smoother) Restore(data []byte) error {
	_, err := fmt.Sscanf(string(data), "%g %d", &s.ewma, &s.n)
	return err
}

func (s *smoother) StateSize() int { return 16 }

func main() {
	p, err := stream.From[float64]("sensor", stream.On("n1")).
		Via("smooth", func() operator.Operator {
			return &smoother{Base: operator.Base{Name: "smooth"}}
		}, stream.On("n2")).
		Sink("out", func(v float64) {
			fmt.Printf("  -> smoothed reading %.2f\n", v)
		}, stream.On("n3")).
		Build()
	if err != nil {
		panic(err) // wiring bugs surface here, at build time
	}

	sys := mobistreams.NewSystem(mobistreams.SystemConfig{
		Speedup:          100, // 1 simulated minute ~ 0.6 s of wall time
		CheckpointPeriod: 30 * time.Second,
	})
	region, err := sys.AddRegion(mobistreams.PipelineSpec("demo", p, mobistreams.MS, 5))
	if err != nil {
		panic(err)
	}
	sys.Start()
	defer sys.Stop()
	clk := sys.Clock()

	fmt.Println("ingesting readings every 2 simulated seconds...")
	gen := workload.NewGenerator(clk)
	defer gen.Stop()
	gen.Every(2*time.Second, 1, func(i int) {
		region.Ingest("sensor", float64(20+i%20), 512, "reading")
	})

	clk.Sleep(20 * time.Second)
	fmt.Println("triggering a checkpoint...")
	region.TriggerCheckpoint()
	clk.Sleep(15 * time.Second)
	fmt.Printf("committed checkpoint version: %d\n", region.Committed())

	fmt.Println("crashing the phone hosting the smoother...")
	if err := region.InjectFailure("n2"); err != nil {
		panic(err)
	}
	clk.Sleep(80 * time.Second) // detection + recovery + catch-up
	fmt.Printf("recoveries: %d, unique outputs: %d, mean latency: %v\n",
		region.Recoveries(), region.Outputs(), region.MeanLatency().Round(time.Millisecond))
}
