// Quickstart: a three-operator pipeline (sensor source -> smoother -> sink)
// on a five-phone region under MobiStreams fault tolerance. It ingests
// readings, rides through a checkpoint, survives a mid-run phone failure
// and prints the recovered output stream.
package main

import (
	"fmt"
	"time"

	"mobistreams"
	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
)

// smoother is a custom stateful operator: an exponential moving average.
type smoother struct {
	operator.Base
	ewma float64
	n    uint64
}

func (s *smoother) Process(_ string, t *tuple.Tuple) ([]operator.Out, error) {
	v, _ := t.Value.(float64)
	if s.n == 0 {
		s.ewma = v
	} else {
		s.ewma = 0.8*s.ewma + 0.2*v
	}
	s.n++
	out := t.Clone()
	out.Value = s.ewma
	return []operator.Out{operator.Emit(out)}, nil
}

func (s *smoother) Cost(*tuple.Tuple) time.Duration { return 50 * time.Millisecond }

func (s *smoother) Snapshot() ([]byte, error) {
	return []byte(fmt.Sprintf("%g %d", s.ewma, s.n)), nil
}

func (s *smoother) Restore(data []byte) error {
	_, err := fmt.Sscanf(string(data), "%g %d", &s.ewma, &s.n)
	return err
}

func (s *smoother) StateSize() int { return 16 }

func main() {
	g, err := mobistreams.NewGraphBuilder().
		AddOperator("sensor", "n1").
		AddOperator("smooth", "n2").
		AddOperator("out", "n3").
		Chain("sensor", "smooth", "out").
		Build()
	if err != nil {
		panic(err)
	}
	registry := mobistreams.Registry{
		"sensor": func() mobistreams.Operator { return operator.NewPassthrough("sensor") },
		"smooth": func() mobistreams.Operator { return &smoother{Base: operator.Base{Name: "smooth"}} },
		"out":    func() mobistreams.Operator { return operator.NewPassthrough("out") },
	}

	sys := mobistreams.NewSystem(mobistreams.SystemConfig{
		Speedup:          100, // 1 simulated minute ~ 0.6 s of wall time
		CheckpointPeriod: 30 * time.Second,
	})
	region, err := sys.AddRegion(mobistreams.RegionSpec{
		ID: "demo", Graph: g, Registry: registry,
		Scheme: mobistreams.MS, Phones: 5,
		OnOutput: func(t *mobistreams.Tuple) {
			fmt.Printf("  -> reading #%d smoothed to %.2f\n", t.Seq, t.Value.(float64))
		},
	})
	if err != nil {
		panic(err)
	}
	sys.Start()
	defer sys.Stop()
	clk := sys.Clock()

	fmt.Println("ingesting 10 readings...")
	for i := 0; i < 10; i++ {
		region.Ingest("sensor", float64(20+i), 512, "reading")
		clk.Sleep(2 * time.Second)
	}
	fmt.Println("triggering a checkpoint...")
	region.TriggerCheckpoint()
	clk.Sleep(15 * time.Second)
	fmt.Printf("committed checkpoint version: %d\n", region.Committed())

	fmt.Println("crashing the phone hosting the smoother...")
	if err := region.InjectFailure("n2"); err != nil {
		panic(err)
	}
	for i := 10; i < 20; i++ {
		region.Ingest("sensor", float64(20+i), 512, "reading")
		clk.Sleep(2 * time.Second)
	}
	clk.Sleep(60 * time.Second) // detection + recovery + catch-up
	fmt.Printf("recoveries: %d, unique outputs: %d, mean latency: %v\n",
		region.Recoveries(), region.Outputs(), region.MeanLatency().Round(time.Millisecond))
}
