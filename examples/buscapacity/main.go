// Bus Capacity Prediction (§II-B, Fig. 2) on one bus stop's phone cluster,
// with real image processing: camera frames carry synthetic bus-stop
// pictures, the counters run the Haar cascade, and the sink prints on-bus
// capacity predictions that would cascade to the next stop.
package main

import (
	"fmt"
	"time"

	"mobistreams"
	"mobistreams/internal/apps/bcp"
	"mobistreams/internal/vision"
	"mobistreams/internal/workload"
)

func main() {
	g, err := bcp.Graph()
	if err != nil {
		panic(err)
	}
	// Real compute: the counters run vision.CountFaces on each frame.
	params := bcp.Params{
		RealCompute: true,
		CounterCost: 2 * time.Second, // modelled 600 MHz-A8 time on top of real work
		MotionCost:  300 * time.Millisecond,
	}

	sys := mobistreams.NewSystem(mobistreams.SystemConfig{
		Speedup:          40,
		CheckpointPeriod: 60 * time.Second,
	})
	outputs := 0
	region, err := sys.AddRegion(mobistreams.RegionSpec{
		ID: "busstop-1", Graph: g, Registry: bcp.Registry(params),
		Scheme: mobistreams.MS, Phones: 10,
		OnOutput: func(t *mobistreams.Tuple) {
			if pred, ok := t.Value.(bcp.Prediction); ok {
				outputs++
				if outputs%5 == 0 {
					fmt.Printf("  bus %d: predicted on-board %.1f (board %.1f, alight %.1f)\n",
						pred.BusSeq, pred.OnBoard, pred.Board, pred.Alight)
				}
			}
		},
	})
	if err != nil {
		panic(err)
	}
	sys.Start()
	defer sys.Stop()
	clk := sys.Clock()

	gen := workload.NewGenerator(clk)
	defer gen.Stop()
	gen.StartBCPCamera(region.Ingest, workload.BCPCameraConfig{
		Period:     4 * time.Second,
		RealImages: true,
		MaxPeople:  5,
		Seed:       7,
	})
	gen.StartBCPBus(region.Ingest, workload.BCPBusConfig{Period: 25 * time.Second, Seed: 7})

	fmt.Println("bus stop running: camera every 4 s (real Haar counting), bus every 25 s")
	clk.Sleep(3 * time.Minute)

	rep := region.Report()
	fmt.Printf("\nafter 3 simulated minutes: %d predictions, %.2f t/s, mean latency %v\n",
		rep.Tuples, rep.ThroughputTPS, rep.MeanLatency.Round(time.Millisecond))
	fmt.Printf("committed checkpoints: v%d; preservation bytes: %.1f MB\n",
		region.Committed(), float64(rep.PreservedBytes)/(1<<20))

	// Sanity-check the vision kernel against ground truth.
	im, planted := vision.GenerateFaces(vision.Scene{W: 200, H: 150, Noise: 25, Seed: 3}, 4)
	fmt.Printf("vision check: planted %d faces, counted %d\n", len(planted), vision.CountFaces(im))
}
