// SignalGuru (§II-B, Fig. 3) across two cascaded intersections: windshield
// frames pass real colour/shape/motion filters, phases are learned, and the
// first intersection's advisories feed the second one's predictor over the
// cellular network (Fig. 4's cascading).
package main

import (
	"fmt"
	"time"

	"mobistreams"
	"mobistreams/internal/apps/signalguru"
	"mobistreams/internal/workload"
)

func main() {
	params := signalguru.Params{
		RealCompute: true,
		ColorCost:   400 * time.Millisecond,
		ShapeCost:   250 * time.Millisecond,
		MotionCost:  200 * time.Millisecond,
	}

	sys := mobistreams.NewSystem(mobistreams.SystemConfig{
		Speedup:          40,
		CheckpointPeriod: 60 * time.Second,
	})

	mk := func(id string, onOut func(*mobistreams.Tuple)) *mobistreams.Region {
		g, err := signalguru.Graph()
		if err != nil {
			panic(err)
		}
		r, err := sys.AddRegion(mobistreams.RegionSpec{
			ID: id, Graph: g, Registry: signalguru.Registry(params),
			Scheme: mobistreams.MS, Phones: 10, OnOutput: onOut,
		})
		if err != nil {
			panic(err)
		}
		return r
	}

	var firstAdv, secondAdv int
	second := mk("intersection-2", func(t *mobistreams.Tuple) {
		if adv, ok := t.Value.(signalguru.Advisory); ok {
			secondAdv++
			if secondAdv%10 == 0 {
				fmt.Printf("  [intersection-2] %v expected in %.0f s\n", adv.Color, adv.NextInSec)
			}
		}
	})
	first := mk("intersection-1", func(t *mobistreams.Tuple) {
		if _, ok := t.Value.(signalguru.Advisory); ok {
			firstAdv++
		}
	})
	// Intersection 1's advisories feed intersection 2's S0 source.
	sys.Connect(first, second, "S0")

	sys.Start()
	defer sys.Stop()
	clk := sys.Clock()

	gen := workload.NewGenerator(clk)
	defer gen.Stop()
	for _, r := range []*mobistreams.Region{first, second} {
		gen.StartSGCamera(r.Ingest, workload.SGCameraConfig{
			Period:     2 * time.Second,
			PhaseLen:   10,
			RealImages: true,
			Seed:       11,
		})
	}

	fmt.Println("two intersections running with real filters; phases change every ~20 s")
	clk.Sleep(4 * time.Minute)

	fmt.Printf("\nintersection-1 published %d advisories; intersection-2 %d (with upstream blending)\n",
		firstAdv, secondAdv)
	for _, r := range []*mobistreams.Region{first, second} {
		rep := r.Report()
		fmt.Printf("%.2f t/s, mean latency %v, checkpoints committed: v%d\n",
			rep.ThroughputTPS, rep.MeanLatency.Round(time.Millisecond), r.Committed())
	}
}
