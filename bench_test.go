// Benchmarks regenerating the paper's tables and figures in miniature: one
// bench per table/figure, each running the same harness as cmd/msbench with
// shortened windows. Custom metrics report the quantities the paper plots
// (simulated tuples/s, relative throughput, bytes). For the full-size
// sweeps, run: go run ./cmd/msbench -exp all
package mobistreams

import (
	"testing"
	"time"

	"mobistreams/internal/bench"
	"mobistreams/internal/ft"
)

// short returns a scenario sized for benchmarking: 30 s checkpoint period,
// one-period warmup, 60 s measure window.
func short() bench.Scenario {
	return bench.Scenario{
		Speedup:          400,
		CheckpointPeriod: 30 * time.Second,
		Warmup:           30 * time.Second,
		Measure:          60 * time.Second,
		Seed:             1,
	}
}

func runScenario(b *testing.B, s bench.Scenario) bench.Outcome {
	b.Helper()
	var last bench.Outcome
	for i := 0; i < b.N; i++ {
		o, err := bench.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		last = o
	}
	b.ReportMetric(last.ThroughputTPS, "sim_tuples/s")
	b.ReportMetric(last.MeanLatency.Seconds(), "sim_latency_s")
	return last
}

// BenchmarkTable1 regenerates Table I's MobiStreams rows (the server rows
// are a separate deployment model, benched below).
func BenchmarkTable1(b *testing.B) {
	for _, app := range []bench.App{bench.BCP, bench.SG} {
		app := app
		b.Run(app.String()+"/ft-off", func(b *testing.B) {
			s := short()
			s.App = app
			s.Scheme = ft.BaseScheme
			runScenario(b, s)
		})
		b.Run(app.String()+"/ms-departure", func(b *testing.B) {
			s := short()
			s.App = app
			s.Scheme = ft.MSScheme
			s.DepartCount = 1
			runScenario(b, s)
		})
		b.Run(app.String()+"/ms-failure", func(b *testing.B) {
			s := short()
			s.App = app
			s.Scheme = ft.MSScheme
			s.FailCount = 1
			runScenario(b, s)
		})
	}
}

// BenchmarkFig8 regenerates the steady-state scheme comparison: relative
// throughput under each fault-tolerance scheme, per app.
func BenchmarkFig8(b *testing.B) {
	for _, app := range []bench.App{bench.BCP, bench.SG} {
		for _, sch := range bench.SteadySchemes {
			app, sch := app, sch
			b.Run(app.String()+"/"+sch.String(), func(b *testing.B) {
				s := short()
				s.App = app
				s.Scheme = sch
				runScenario(b, s)
			})
		}
	}
}

// BenchmarkFig9 regenerates representative points of the failure/departure
// sweep: MobiStreams stays flat with k, dist-n dies beyond n.
func BenchmarkFig9(b *testing.B) {
	cases := []struct {
		name    string
		scheme  ft.Scheme
		fail    int
		departs int
	}{
		{"BCP/ms-fail-1", ft.MSScheme, 1, 0},
		{"BCP/ms-fail-4", ft.MSScheme, 4, 0},
		{"BCP/ms-fail-8", ft.MSScheme, 8, 0},
		{"BCP/ms-depart-2", ft.MSScheme, 0, 2},
		{"BCP/dist1-fail-1", ft.Dist(1), 1, 0},
		{"BCP/rep2-fail-1", ft.Rep2Scheme, 1, 0},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			s := short()
			s.App = bench.BCP
			s.Scheme = c.scheme
			s.FailCount = c.fail
			s.DepartCount = c.departs
			o := runScenario(b, s)
			if c.scheme.Kind == ft.MS && o.Dead {
				b.Fatal("MobiStreams region died")
			}
		})
	}
}

// BenchmarkFig10 regenerates the preservation/checkpoint byte accounting.
func BenchmarkFig10(b *testing.B) {
	for _, sch := range []ft.Scheme{ft.LocalScheme, ft.Dist(1), ft.Dist(3), ft.MSScheme} {
		sch := sch
		b.Run("BCP/"+sch.String(), func(b *testing.B) {
			s := short()
			s.App = bench.BCP
			s.Scheme = sch
			o := runScenario(b, s)
			b.ReportMetric(float64(o.PreservedBytes)/(1<<20), "preserved_MB")
			b.ReportMetric(float64(o.CheckpointNet+o.ReplicationNet)/(1<<20), "ckpt_net_MB")
		})
	}
}

// BenchmarkFig6 measures the multi-phase broadcast walk-through itself
// (8 MB, 8192 blocks, the paper's loss pattern).
func BenchmarkFig6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := bench.Fig6(nil)
		if st.UDPPhases != 3 {
			b.Fatalf("phases = %d", st.UDPPhases)
		}
	}
}
