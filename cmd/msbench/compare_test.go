package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile drops one JSON fixture into the test's temp dir.
func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// gateFixtures writes a full healthy result set matching the committed
// baseline shape, returning the ten paths runCompare takes. Callers
// overwrite individual files to construct failure cases.
func gateFixtures(t *testing.T, dir string) (baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place string) {
	t.Helper()
	baseline = writeFile(t, dir, "baseline.json", `{
		"max_scheduler_tuple_loss": 0,
		"incr_pause_mean_ms_largest": 10.0,
		"scale_tps_largest": 300.0,
		"emit_allocs_per_op": 0.0,
		"wire_encode_allocs_per_op": 0.0,
		"obs_overhead_pct": 5.0,
		"trace_allocs_per_op": 0.0,
		"elastic_p99_hotspot_ms": 650.0,
		"federation_ctrl_bytes_per_phone_largest": 560.0,
		"placement_loss_vs_greedy": 0.5
	}`)
	churn = writeFile(t, dir, "churn.json", `{"rows": [
		{"mode": "scheduler", "tuples_lost": 0},
		{"mode": "reactive", "tuples_lost": 50}
	]}`)
	ckpt = writeFile(t, dir, "ckpt.json", `{"rows": [
		{"mode": "incremental", "state_bytes": 1048576, "pause_mean_ms": 9.5},
		{"mode": "full", "state_bytes": 1048576, "pause_mean_ms": 40.0}
	]}`)
	scale = writeFile(t, dir, "scale.json", `{"rows": [
		{"mode": "tuned", "phones": 64, "tuples_per_sec": 310.0},
		{"mode": "legacy", "phones": 64, "tuples_per_sec": 200.0}
	]}`)
	emit = writeFile(t, dir, "emit.json", `{"rows": [
		{"mode": "context", "allocs_per_op": 0.0, "ns_per_op": 100},
		{"mode": "legacy", "allocs_per_op": 2.0, "ns_per_op": 150}
	]}`)
	wire = writeFile(t, dir, "wire.json", `{"rows": [
		{"op": "encode_stream", "allocs_per_op": 0.0, "ns_per_op": 50, "frame_bytes": 80},
		{"op": "encode_batch16", "allocs_per_op": 0.0, "ns_per_op": 700, "frame_bytes": 1200},
		{"op": "decode_stream", "allocs_per_op": 2.0, "ns_per_op": 90, "frame_bytes": 80}
	]}`)
	obs = writeFile(t, dir, "obs.json", `{
		"iters": 200000,
		"off_ns_per_op": 100.0,
		"hist_ns_per_op": 106.0,
		"trace_ns_per_op": 240.0,
		"obs_overhead_pct": 6.0,
		"trace_allocs_per_op": 0.0,
		"traced_allocs_per_op": 1.2,
		"spans": 16384
	}`)
	elastic = writeFile(t, dir, "elastic.json", `{"rows": [
		{"mode": "static", "p99_hotspot_ms": 4500.0, "degrade_factor": 13.0, "duplicates": 0},
		{"mode": "elastic", "p99_hotspot_ms": 640.0, "degrade_factor": 1.5, "splits": 2, "duplicates": 0}
	]}`)
	fed = writeFile(t, dir, "federation.json", `{"rows": [
		{"mode": "gossip", "regions": 4, "ctrl_bytes_per_phone": 380.0, "xregion_dup_outputs": 0},
		{"mode": "gossip", "regions": 64, "ctrl_bytes_per_phone": 555.0, "xregion_dup_outputs": 0},
		{"mode": "unicast", "regions": 64, "ctrl_bytes_per_phone": 756.0, "xregion_dup_outputs": 0}
	]}`)
	place = writeFile(t, dir, "placement.json", `{"rows": [
		{"mode": "greedy", "tuples_lost": 8, "cross_channel_share": 0.55, "duplicates": 0},
		{"mode": "planner", "tuples_lost": 2, "cross_channel_share": 0.12, "duplicates": 0}
	]}`)
	return
}

func TestComparePasses(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	var out bytes.Buffer
	if err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out); err != nil {
		t.Fatalf("healthy results failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("missing pass banner:\n%s", out.String())
	}
}

// TestCompareFailsOnWireEncodeAlloc is the gate's verified fail path: a
// single allocation per encoded frame — the smallest possible regression —
// must fail the build, decode-side allocations must not.
func TestCompareFailsOnWireEncodeAlloc(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "wire.json", `{"rows": [
		{"op": "encode_stream", "allocs_per_op": 1.0, "ns_per_op": 55, "frame_bytes": 80},
		{"op": "decode_stream", "allocs_per_op": 2.0, "ns_per_op": 90, "frame_bytes": 80}
	]}`)
	var out bytes.Buffer
	err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out)
	if err == nil {
		t.Fatalf("1.0 wire-encode allocs/op passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "wire-encode allocs/op regressed") {
		t.Fatalf("failure not attributed to the wire encode path:\n%s", out.String())
	}
}

// TestCompareFailsOnMissingWireRows: results without encode rows must not
// silently pass.
func TestCompareFailsOnMissingWireRows(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "wire.json", `{"rows": [
		{"op": "decode_stream", "allocs_per_op": 2.0, "ns_per_op": 90, "frame_bytes": 80}
	]}`)
	var out bytes.Buffer
	if err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out); err == nil {
		t.Fatalf("wire results without encode rows passed the gate:\n%s", out.String())
	}
}

// TestCompareFailsOnEmitAlloc keeps the emit pin honest alongside the new
// wire pin.
func TestCompareFailsOnEmitAlloc(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "emit.json", `{"rows": [
		{"mode": "context", "allocs_per_op": 1.0, "ns_per_op": 120}
	]}`)
	var out bytes.Buffer
	err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out)
	if err == nil {
		t.Fatalf("1.0 emit allocs/op passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "emit-path allocs/op regressed") {
		t.Fatalf("failure not attributed to the emit path:\n%s", out.String())
	}
}

// TestCompareFailsOnTraceAlloc is the observability gate's verified fail
// path: one allocation per tuple on the sampling-off instrumented path —
// the smallest possible regression — must fail the build.
func TestCompareFailsOnTraceAlloc(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "obs.json", `{
		"iters": 200000,
		"off_ns_per_op": 100.0,
		"hist_ns_per_op": 106.0,
		"obs_overhead_pct": 6.0,
		"trace_allocs_per_op": 1.0
	}`)
	var out bytes.Buffer
	err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out)
	if err == nil {
		t.Fatalf("1.0 traced-path allocs/op passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "traced-path allocs/op regressed") {
		t.Fatalf("failure not attributed to the traced path:\n%s", out.String())
	}
}

// TestCompareFailsOnObsOverhead: histogram overhead blowing past the
// baseline plus grace must fail, attributed to the obs gate.
func TestCompareFailsOnObsOverhead(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "obs.json", `{
		"iters": 200000,
		"off_ns_per_op": 100.0,
		"hist_ns_per_op": 180.0,
		"obs_overhead_pct": 80.0,
		"trace_allocs_per_op": 0.0
	}`)
	var out bytes.Buffer
	err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out)
	if err == nil {
		t.Fatalf("80%% obs overhead passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "obs overhead regressed") {
		t.Fatalf("failure not attributed to obs overhead:\n%s", out.String())
	}
}

// TestCompareFailsOnEmptyObsResults: an empty obs report must not
// silently pass the pinned-allocation gate.
func TestCompareFailsOnEmptyObsResults(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "obs.json", `{}`)
	var out bytes.Buffer
	if err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out); err == nil {
		t.Fatalf("empty obs results passed the gate:\n%s", out.String())
	}
}

// TestCompareFailsOnElasticP99Regression is the elastic gate's verified
// fail path: an elastic-on hotspot p99 past baseline×1.2 plus grace means
// the split/merge policy stopped absorbing the hotspot.
func TestCompareFailsOnElasticP99Regression(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "elastic.json", `{"rows": [
		{"mode": "static", "p99_hotspot_ms": 4500.0, "duplicates": 0},
		{"mode": "elastic", "p99_hotspot_ms": 3200.0, "splits": 0, "duplicates": 0}
	]}`)
	var out bytes.Buffer
	err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out)
	if err == nil {
		t.Fatalf("3200 ms elastic hotspot p99 passed the gate against a 650 ms baseline:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "elastic hotspot p99 regressed") {
		t.Fatalf("failure not attributed to the elastic gate:\n%s", out.String())
	}
}

// TestCompareFailsOnElasticDuplicates: exactly-once across live splits is
// gated at zero with no grace — one duplicate output fails the build even
// when the latency numbers are healthy.
func TestCompareFailsOnElasticDuplicates(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "elastic.json", `{"rows": [
		{"mode": "static", "p99_hotspot_ms": 4500.0, "duplicates": 0},
		{"mode": "elastic", "p99_hotspot_ms": 640.0, "splits": 2, "duplicates": 1}
	]}`)
	var out bytes.Buffer
	err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out)
	if err == nil {
		t.Fatalf("a duplicate output passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "duplicate outputs") {
		t.Fatalf("failure not attributed to the exactly-once gate:\n%s", out.String())
	}
}

// TestCompareFailsOnMissingElasticRow: results without an elastic-mode row
// must not silently pass.
func TestCompareFailsOnMissingElasticRow(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "elastic.json", `{"rows": [
		{"mode": "static", "p99_hotspot_ms": 4500.0, "duplicates": 0}
	]}`)
	var out bytes.Buffer
	if err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out); err == nil {
		t.Fatalf("elastic results without an elastic-mode row passed the gate:\n%s", out.String())
	}
}

// TestCompareFailsOnFederationFanoutRegression is the federation gate's
// verified fail path: busiest-node control bytes per phone at the largest
// swept region count blowing past baseline×1.2 plus grace means the
// gossip overlay's sub-linear fan-out regressed.
func TestCompareFailsOnFederationFanoutRegression(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "federation.json", `{"rows": [
		{"mode": "gossip", "regions": 4, "ctrl_bytes_per_phone": 380.0, "xregion_dup_outputs": 0},
		{"mode": "gossip", "regions": 64, "ctrl_bytes_per_phone": 1400.0, "xregion_dup_outputs": 0}
	]}`)
	var out bytes.Buffer
	err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out)
	if err == nil {
		t.Fatalf("1400 B/phone passed the gate against a 560 B/phone baseline:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "federation ctrl bytes/phone regressed") {
		t.Fatalf("failure not attributed to the federation gate:\n%s", out.String())
	}
}

// TestCompareFailsOnFederationDuplicates: cross-region exactly-once is
// gated at zero with no grace — one duplicate output at any sweep point
// fails the build even when the byte counts are healthy.
func TestCompareFailsOnFederationDuplicates(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "federation.json", `{"rows": [
		{"mode": "gossip", "regions": 4, "ctrl_bytes_per_phone": 380.0, "xregion_dup_outputs": 1},
		{"mode": "gossip", "regions": 64, "ctrl_bytes_per_phone": 555.0, "xregion_dup_outputs": 0}
	]}`)
	var out bytes.Buffer
	err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out)
	if err == nil {
		t.Fatalf("a duplicate cross-region output passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "duplicate cross-region outputs") {
		t.Fatalf("failure not attributed to the federation exactly-once gate:\n%s", out.String())
	}
}

// TestCompareFailsOnMissingFederationRows: results without gossip-mode
// sweep rows must not silently pass.
func TestCompareFailsOnMissingFederationRows(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "federation.json", `{"rows": [
		{"mode": "unicast", "regions": 64, "ctrl_bytes_per_phone": 756.0}
	]}`)
	var out bytes.Buffer
	if err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out); err == nil {
		t.Fatalf("federation results without gossip rows passed the gate:\n%s", out.String())
	}
}

// TestCompareFailsOnPlacementLossRegression is the placement gate's verified
// fail path: the planner arm losing far more tuples than the greedy baseline
// (ratio past baseline×1.2 plus grace) means pack-to-empty planning stopped
// paying for itself under churn.
func TestCompareFailsOnPlacementLossRegression(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "placement.json", `{"rows": [
		{"mode": "greedy", "tuples_lost": 8, "cross_channel_share": 0.55, "duplicates": 0},
		{"mode": "planner", "tuples_lost": 40, "cross_channel_share": 0.12, "duplicates": 0}
	]}`)
	var out bytes.Buffer
	err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out)
	if err == nil {
		t.Fatalf("a 5x loss ratio passed the gate against a 0.5 baseline:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "placement loss vs greedy regressed") {
		t.Fatalf("failure not attributed to the placement loss gate:\n%s", out.String())
	}
}

// TestCompareFailsOnPlacementCrossChannelClaim: the planner's structural
// claim — less cross-channel airtime than greedy — is gated with no grace.
// The moment repacking stops consolidating pipelines onto single channels,
// the share meets or exceeds greedy's and the build fails.
func TestCompareFailsOnPlacementCrossChannelClaim(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "placement.json", `{"rows": [
		{"mode": "greedy", "tuples_lost": 8, "cross_channel_share": 0.55, "duplicates": 0},
		{"mode": "planner", "tuples_lost": 2, "cross_channel_share": 0.55, "duplicates": 0}
	]}`)
	var out bytes.Buffer
	err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out)
	if err == nil {
		t.Fatalf("planner matching greedy's cross-channel share passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no longer beats greedy on cross-channel share") {
		t.Fatalf("failure not attributed to the cross-channel gate:\n%s", out.String())
	}
}

// TestCompareFailsOnPlacementDuplicates: plan execution rides the same
// exactly-once migration path as the scheduler, so the planner arm is gated
// at zero duplicates with no grace.
func TestCompareFailsOnPlacementDuplicates(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "placement.json", `{"rows": [
		{"mode": "greedy", "tuples_lost": 8, "cross_channel_share": 0.55, "duplicates": 0},
		{"mode": "planner", "tuples_lost": 2, "cross_channel_share": 0.12, "duplicates": 1}
	]}`)
	var out bytes.Buffer
	err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out)
	if err == nil {
		t.Fatalf("a duplicate output in the planner arm passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "duplicate outputs") {
		t.Fatalf("failure not attributed to the placement exactly-once gate:\n%s", out.String())
	}
}

// TestCompareFailsOnMissingPlacementRows: results without both a greedy and
// a planner row must not silently pass.
func TestCompareFailsOnMissingPlacementRows(t *testing.T) {
	dir := t.TempDir()
	baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place := gateFixtures(t, dir)
	writeFile(t, dir, "placement.json", `{"rows": [
		{"mode": "greedy", "tuples_lost": 8, "cross_channel_share": 0.55, "duplicates": 0}
	]}`)
	var out bytes.Buffer
	if err := runCompare(baseline, churn, ckpt, scale, emit, wire, obs, elastic, fed, place, &out); err == nil {
		t.Fatalf("placement results without a planner row passed the gate:\n%s", out.String())
	}
}
