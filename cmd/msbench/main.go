// msbench regenerates the paper's tables and figures on the simulated
// phone platform. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records a reference run against the paper's
// numbers.
//
// Usage:
//
//	msbench -exp all            # every experiment
//	msbench -exp fig8           # steady-state scheme comparison
//	msbench -exp fig9 -maxk 8   # failure/departure sweep
//	msbench -exp fig10          # preservation / checkpoint data
//	msbench -exp table1         # MobiStreams vs server-based DSPS
//	msbench -exp fig6           # broadcast walk-through
//	msbench -exp churn          # reactive recovery vs placement scheduler
//
// -churnout writes the churn comparison as machine-readable JSON
// (BENCH_scheduler.json in CI) alongside the printed table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mobistreams/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig6|fig8|fig9|fig10|churn|all")
	maxK := flag.Int("maxk", 8, "maximum simultaneous failures/departures for fig9")
	churnOut := flag.String("churnout", "", "write churn comparison JSON to this path")
	seed := flag.Int64("seed", 1, "workload and loss seed")
	speedup := flag.Float64("speedup", 200, "simulated-to-wall clock ratio")
	apps := flag.String("apps", "bcp,sg", "comma-separated apps: bcp,sg")
	flag.Parse()

	base := bench.Scenario{Seed: *seed, Speedup: *speedup}
	var appList []bench.App
	for _, a := range strings.Split(*apps, ",") {
		switch strings.TrimSpace(a) {
		case "bcp":
			appList = append(appList, bench.BCP)
		case "sg", "signalguru":
			appList = append(appList, bench.SG)
		}
	}
	if len(appList) == 0 {
		fmt.Fprintln(os.Stderr, "no apps selected")
		os.Exit(2)
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v of wall time)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig6") {
		run("fig6", func() error {
			bench.Fig6(os.Stdout)
			return nil
		})
	}
	if want("fig8") || want("fig10") {
		for _, app := range appList {
			app := app
			run("fig8/fig10 "+app.String(), func() error {
				outs, err := bench.SteadyState(app, base)
				if err != nil {
					return err
				}
				if want("fig8") {
					bench.WriteFig8(os.Stdout, app, outs)
				}
				if want("fig10") {
					bench.WriteFig10(os.Stdout, app, outs)
				}
				return nil
			})
		}
	}
	if want("fig9") {
		for _, app := range appList {
			app := app
			run("fig9 "+app.String(), func() error {
				_, err := bench.Fig9(app, base, *maxK, os.Stdout)
				return err
			})
		}
	}
	if want("table1") {
		run("table1", func() error {
			_, err := bench.Table1(base, os.Stdout)
			return err
		})
	}
	if want("churn") {
		run("churn", func() error {
			churnBase := bench.ChurnScenario{Seed: *seed, Speedup: *speedup}
			rows, err := bench.ChurnComparison(churnBase, bench.ChurnSchemes)
			if err != nil {
				return err
			}
			bench.WriteChurnTable(os.Stdout, rows)
			if *churnOut != "" {
				f, err := os.Create(*churnOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WriteChurnJSON(f, churnBase, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *churnOut)
			}
			return nil
		})
	}
}
