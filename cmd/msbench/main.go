// msbench regenerates the paper's tables and figures on the simulated
// phone platform. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records a reference run against the paper's
// numbers.
//
// Usage:
//
//	msbench -exp all            # every experiment
//	msbench -exp fig8           # steady-state scheme comparison
//	msbench -exp fig9 -maxk 8   # failure/departure sweep
//	msbench -exp fig10          # preservation / checkpoint data
//	msbench -exp table1         # MobiStreams vs server-based DSPS
//	msbench -exp fig6           # broadcast walk-through
//	msbench -exp churn          # reactive recovery vs placement scheduler
//	msbench -exp checkpoint     # full-blob vs incremental-async pipeline
//
// -churnout / -ckptout write the churn and checkpoint comparisons as
// machine-readable JSON (BENCH_scheduler.json / BENCH_checkpoint.json in
// CI) alongside the printed tables.
//
// -compare is the CI benchmark-regression gate: it reads the committed
// baseline (BENCH_baseline.json) plus the fresh churn/checkpoint JSON and
// exits non-zero when tuple loss or checkpoint pause regressed more than
// 20% against the baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mobistreams/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig6|fig8|fig9|fig10|churn|checkpoint|all")
	maxK := flag.Int("maxk", 8, "maximum simultaneous failures/departures for fig9")
	churnOut := flag.String("churnout", "", "write churn comparison JSON to this path")
	ckptOut := flag.String("ckptout", "", "write checkpoint comparison JSON to this path")
	seed := flag.Int64("seed", 1, "workload and loss seed")
	speedup := flag.Float64("speedup", 200, "simulated-to-wall clock ratio")
	apps := flag.String("apps", "bcp,sg", "comma-separated apps: bcp,sg")
	compare := flag.Bool("compare", false, "benchmark-regression gate: compare fresh results to the baseline and exit non-zero on regression")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline metrics for -compare")
	churnJSON := flag.String("churnjson", "BENCH_scheduler.json", "fresh churn results for -compare")
	ckptJSON := flag.String("ckptjson", "BENCH_checkpoint.json", "fresh checkpoint results for -compare")
	flag.Parse()

	if *compare {
		if err := runCompare(*baselinePath, *churnJSON, *ckptJSON, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchmark regression gate: %v\n", err)
			os.Exit(1)
		}
		return
	}

	base := bench.Scenario{Seed: *seed, Speedup: *speedup}
	var appList []bench.App
	for _, a := range strings.Split(*apps, ",") {
		switch strings.TrimSpace(a) {
		case "bcp":
			appList = append(appList, bench.BCP)
		case "sg", "signalguru":
			appList = append(appList, bench.SG)
		}
	}
	if len(appList) == 0 {
		fmt.Fprintln(os.Stderr, "no apps selected")
		os.Exit(2)
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v of wall time)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig6") {
		run("fig6", func() error {
			bench.Fig6(os.Stdout)
			return nil
		})
	}
	if want("fig8") || want("fig10") {
		for _, app := range appList {
			app := app
			run("fig8/fig10 "+app.String(), func() error {
				outs, err := bench.SteadyState(app, base)
				if err != nil {
					return err
				}
				if want("fig8") {
					bench.WriteFig8(os.Stdout, app, outs)
				}
				if want("fig10") {
					bench.WriteFig10(os.Stdout, app, outs)
				}
				return nil
			})
		}
	}
	if want("fig9") {
		for _, app := range appList {
			app := app
			run("fig9 "+app.String(), func() error {
				_, err := bench.Fig9(app, base, *maxK, os.Stdout)
				return err
			})
		}
	}
	if want("table1") {
		run("table1", func() error {
			_, err := bench.Table1(base, os.Stdout)
			return err
		})
	}
	if want("checkpoint") {
		run("checkpoint", func() error {
			ckptBase := bench.CkptScenario{Seed: *seed, Speedup: *speedup}
			rows, err := bench.CkptComparison(ckptBase, nil)
			if err != nil {
				return err
			}
			bench.WriteCkptTable(os.Stdout, rows)
			if *ckptOut != "" {
				f, err := os.Create(*ckptOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WriteCkptJSON(f, ckptBase, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *ckptOut)
			}
			return nil
		})
	}
	if want("churn") {
		run("churn", func() error {
			churnBase := bench.ChurnScenario{Seed: *seed, Speedup: *speedup}
			rows, err := bench.ChurnComparison(churnBase, bench.ChurnSchemes)
			if err != nil {
				return err
			}
			bench.WriteChurnTable(os.Stdout, rows)
			if *churnOut != "" {
				f, err := os.Create(*churnOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WriteChurnJSON(f, churnBase, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *churnOut)
			}
			return nil
		})
	}
}
