// msbench regenerates the paper's tables and figures on the simulated
// phone platform. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records a reference run against the paper's
// numbers.
//
// Usage:
//
//	msbench -exp all            # every experiment
//	msbench -exp fig8           # steady-state scheme comparison
//	msbench -exp fig9 -maxk 8   # failure/departure sweep
//	msbench -exp fig10          # preservation / checkpoint data
//	msbench -exp table1         # MobiStreams vs server-based DSPS
//	msbench -exp fig6           # broadcast walk-through
//	msbench -exp churn          # reactive recovery vs placement scheduler
//	msbench -exp checkpoint     # full-blob vs incremental-async pipeline
//	msbench -exp scale          # region size × WiFi channels throughput sweep
//	msbench -exp emit           # emit-context contract vs legacy []Out adapter
//	msbench -exp wire           # wire codec encode/decode cost
//	msbench -exp elastic        # static vs elastic keyed parallelism, moving hotspot
//	msbench -exp federation     # control fan-out vs region count, gossip vs unicast
//	msbench -exp placement      # greedy scorer vs topology-aware placement planner
//
// -churnout / -ckptout / -scaleout / -emitout / -wireout / -elasticout /
// -fedout / -placeout write the churn, checkpoint, scale, emit, wire,
// elastic, federation and placement comparisons as machine-readable JSON
// (BENCH_scheduler.json / BENCH_checkpoint.json / BENCH_scale.json /
// BENCH_emit.json / BENCH_wire.json / BENCH_elastic.json /
// BENCH_federation.json / BENCH_placement.json in CI) alongside the printed
// tables.
//
// -compare is the CI benchmark-regression gate: it reads the committed
// baseline (BENCH_baseline.json) plus the fresh churn/checkpoint/scale/
// emit/wire/elastic/federation/placement JSON and exits non-zero when tuple
// loss, checkpoint pause, largest-region throughput, the elastic run's
// hotspot p99, the federation sweep's busiest-node control bytes per phone,
// or the placement planner's tuple loss relative to the greedy baseline
// regressed more than 20% against the baseline, when the emit-context
// path or the wire encode path allocates per operation (both pinned at 0),
// when the federation sweep leaks a duplicate cross-region output
// (pinned at 0), or when the placement planner stops beating the greedy
// scorer on cross-channel airtime share.
//
// -cpuprofile / -memprofile write pprof profiles so hot-path regressions
// caught by the gate are diagnosable straight from CI artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mobistreams/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig6|fig8|fig9|fig10|churn|checkpoint|scale|emit|wire|obs|elastic|federation|placement|all")
	maxK := flag.Int("maxk", 8, "maximum simultaneous failures/departures for fig9")
	churnOut := flag.String("churnout", "", "write churn comparison JSON to this path")
	ckptOut := flag.String("ckptout", "", "write checkpoint comparison JSON to this path")
	scaleOut := flag.String("scaleout", "", "write scale sweep JSON to this path")
	emitOut := flag.String("emitout", "", "write emit-path comparison JSON to this path")
	emitIters := flag.Int("emititers", 200000, "tuples per emit-path measurement")
	wireOut := flag.String("wireout", "", "write wire-codec comparison JSON to this path")
	wireIters := flag.Int("wireiters", 200000, "frames per wire-codec measurement")
	obsOut := flag.String("obsout", "", "write observability-overhead JSON to this path")
	obsIters := flag.Int("obsiters", 200000, "tuples per observability-overhead measurement")
	elasticOut := flag.String("elasticout", "", "write elastic-parallelism comparison JSON to this path")
	fedOut := flag.String("fedout", "", "write federation fan-out sweep JSON to this path")
	placeOut := flag.String("placeout", "", "write placement planner comparison JSON to this path")
	scaleMax := flag.Int("scalemax", 64, "largest region size for the scale sweep (8..128)")
	scaleChannels := flag.String("scalechannels", "1,4", "comma-separated WiFi channel counts for tuned scale rows")
	seed := flag.Int64("seed", 1, "workload and loss seed")
	speedup := flag.Float64("speedup", 200, "simulated-to-wall clock ratio")
	apps := flag.String("apps", "bcp,sg", "comma-separated apps: bcp,sg")
	compare := flag.Bool("compare", false, "benchmark-regression gate: compare fresh results to the baseline and exit non-zero on regression")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline metrics for -compare")
	churnJSON := flag.String("churnjson", "BENCH_scheduler.json", "fresh churn results for -compare")
	ckptJSON := flag.String("ckptjson", "BENCH_checkpoint.json", "fresh checkpoint results for -compare")
	scaleJSON := flag.String("scalejson", "BENCH_scale.json", "fresh scale results for -compare")
	emitJSON := flag.String("emitjson", "BENCH_emit.json", "fresh emit-path results for -compare")
	wireJSON := flag.String("wirejson", "BENCH_wire.json", "fresh wire-codec results for -compare")
	obsJSON := flag.String("obsjson", "BENCH_obs.json", "fresh observability-overhead results for -compare")
	elasticJSON := flag.String("elasticjson", "BENCH_elastic.json", "fresh elastic-parallelism results for -compare")
	fedJSON := flag.String("fedjson", "BENCH_federation.json", "fresh federation fan-out results for -compare")
	placeJSON := flag.String("placejson", "BENCH_placement.json", "fresh placement planner results for -compare")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *compare {
		if err := runCompare(*baselinePath, *churnJSON, *ckptJSON, *scaleJSON, *emitJSON, *wireJSON, *obsJSON, *elasticJSON, *fedJSON, *placeJSON, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchmark regression gate: %v\n", err)
			os.Exit(1)
		}
		return
	}

	base := bench.Scenario{Seed: *seed, Speedup: *speedup}
	var appList []bench.App
	for _, a := range strings.Split(*apps, ",") {
		switch strings.TrimSpace(a) {
		case "bcp":
			appList = append(appList, bench.BCP)
		case "sg", "signalguru":
			appList = append(appList, bench.SG)
		}
	}
	if len(appList) == 0 {
		fmt.Fprintln(os.Stderr, "no apps selected")
		os.Exit(2)
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %v of wall time)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig6") {
		run("fig6", func() error {
			bench.Fig6(os.Stdout)
			return nil
		})
	}
	if want("fig8") || want("fig10") {
		for _, app := range appList {
			app := app
			run("fig8/fig10 "+app.String(), func() error {
				outs, err := bench.SteadyState(app, base)
				if err != nil {
					return err
				}
				if want("fig8") {
					bench.WriteFig8(os.Stdout, app, outs)
				}
				if want("fig10") {
					bench.WriteFig10(os.Stdout, app, outs)
				}
				return nil
			})
		}
	}
	if want("fig9") {
		for _, app := range appList {
			app := app
			run("fig9 "+app.String(), func() error {
				_, err := bench.Fig9(app, base, *maxK, os.Stdout)
				return err
			})
		}
	}
	if want("table1") {
		run("table1", func() error {
			_, err := bench.Table1(base, os.Stdout)
			return err
		})
	}
	if want("checkpoint") {
		run("checkpoint", func() error {
			ckptBase := bench.CkptScenario{Seed: *seed, Speedup: *speedup}
			rows, err := bench.CkptComparison(ckptBase, nil)
			if err != nil {
				return err
			}
			bench.WriteCkptTable(os.Stdout, rows)
			if *ckptOut != "" {
				f, err := os.Create(*ckptOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WriteCkptJSON(f, ckptBase, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *ckptOut)
			}
			return nil
		})
	}
	if want("scale") {
		run("scale", func() error {
			if *scaleMax < bench.DefaultScaleSizes[0] || *scaleMax > 128 {
				return fmt.Errorf("-scalemax %d out of range [%d,128]", *scaleMax, bench.DefaultScaleSizes[0])
			}
			var sizes []int
			for _, s := range bench.DefaultScaleSizes {
				if s <= *scaleMax {
					sizes = append(sizes, s)
				}
			}
			if *scaleMax > sizes[len(sizes)-1] {
				sizes = append(sizes, *scaleMax)
			}
			var channels []int
			for _, c := range strings.Split(*scaleChannels, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(c))
				if err != nil || n < 1 {
					return fmt.Errorf("bad -scalechannels entry %q", c)
				}
				channels = append(channels, n)
			}
			scaleBase := bench.ScaleScenario{Seed: *seed, Speedup: *speedup}
			rows, err := bench.ScaleComparison(scaleBase, sizes, channels)
			if err != nil {
				return err
			}
			bench.WriteScaleTable(os.Stdout, rows)
			if *scaleOut != "" {
				f, err := os.Create(*scaleOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WriteScaleJSON(f, scaleBase, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *scaleOut)
			}
			return nil
		})
	}
	if want("emit") {
		run("emit", func() error {
			rep := bench.RunEmit(*emitIters, os.Stdout)
			if *emitOut != "" {
				f, err := os.Create(*emitOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WriteEmitJSON(f, rep); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *emitOut)
			}
			return nil
		})
	}
	if want("wire") {
		run("wire", func() error {
			rep := bench.RunWire(*wireIters, os.Stdout)
			if *wireOut != "" {
				f, err := os.Create(*wireOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WriteWireJSON(f, rep); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *wireOut)
			}
			return nil
		})
	}
	if want("obs") {
		run("obs", func() error {
			rep := bench.RunObs(*obsIters, os.Stdout)
			if *obsOut != "" {
				f, err := os.Create(*obsOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WriteObsJSON(f, rep); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *obsOut)
			}
			return nil
		})
	}
	if want("elastic") {
		run("elastic", func() error {
			// The elastic scenario carries its own speedup default tuned to
			// the service-time model (see ElasticScenario.Speedup); only the
			// seed is taken from the shared flags.
			elasticBase := bench.ElasticScenario{Seed: *seed}
			rows, err := bench.ElasticComparison(elasticBase)
			if err != nil {
				return err
			}
			bench.WriteElasticTable(os.Stdout, rows)
			if *elasticOut != "" {
				f, err := os.Create(*elasticOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WriteElasticJSON(f, elasticBase, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *elasticOut)
			}
			return nil
		})
	}
	if want("federation") {
		run("federation", func() error {
			fedBase := bench.FederationScenario{Seed: *seed}
			rows, err := bench.FederationComparison(fedBase)
			if err != nil {
				return err
			}
			bench.WriteFederationTable(os.Stdout, rows)
			if *fedOut != "" {
				f, err := os.Create(*fedOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WriteFederationJSON(f, fedBase, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *fedOut)
			}
			return nil
		})
	}
	if want("placement") {
		run("placement", func() error {
			// The placement scenario carries its own speedup default tuned
			// so a plan step's code-ship window spans enough wall time to
			// survive CI scheduling stalls (see PlacementScenario.Speedup);
			// only the seed is taken from the shared flags.
			placeBase := bench.PlacementScenario{Seed: *seed}
			rows, err := bench.PlacementComparison(placeBase)
			if err != nil {
				return err
			}
			bench.WritePlacementTable(os.Stdout, rows)
			if *placeOut != "" {
				f, err := os.Create(*placeOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WritePlacementJSON(f, placeBase, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *placeOut)
			}
			return nil
		})
	}
	if want("churn") {
		run("churn", func() error {
			churnBase := bench.ChurnScenario{Seed: *seed, Speedup: *speedup}
			rows, err := bench.ChurnComparison(churnBase, bench.ChurnSchemes)
			if err != nil {
				return err
			}
			bench.WriteChurnTable(os.Stdout, rows)
			if *churnOut != "" {
				f, err := os.Create(*churnOut)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := bench.WriteChurnJSON(f, churnBase, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *churnOut)
			}
			return nil
		})
	}
}
