package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"mobistreams/internal/bench"
)

// Baseline is the committed reference the regression gate compares fresh
// experiment results against (BENCH_baseline.json at the repo root).
// Regenerate it with:
//
//	go run ./cmd/msbench -exp churn -seed 5 -churnout BENCH_scheduler.json
//	go run ./cmd/msbench -exp checkpoint -seed 5 -ckptout BENCH_checkpoint.json
//	go run ./cmd/msbench -exp scale -seed 5 -scaleout BENCH_scale.json
//	go run ./cmd/msbench -exp emit -emitout BENCH_emit.json
//	go run ./cmd/msbench -exp wire -wireout BENCH_wire.json
//	go run ./cmd/msbench -exp obs -obsout BENCH_obs.json
//	go run ./cmd/msbench -exp elastic -seed 5 -elasticout BENCH_elastic.json
//	go run ./cmd/msbench -exp federation -seed 5 -fedout BENCH_federation.json
//	go run ./cmd/msbench -exp placement -seed 5 -placeout BENCH_placement.json
//	then copy the summary numbers below from those files.
type Baseline struct {
	Comment string `json:"comment"`
	// MaxSchedulerTupleLoss is the worst tuples_lost across the churn
	// experiment's scheduler-on rows.
	MaxSchedulerTupleLoss int64 `json:"max_scheduler_tuple_loss"`
	// IncrPauseMeanMsLargest is the incremental pipeline's mean
	// checkpoint pause (ms) at the largest state size.
	IncrPauseMeanMsLargest float64 `json:"incr_pause_mean_ms_largest"`
	// ScaleTPSLargest is the overhauled data plane's best tuples/sec at
	// the largest swept region size (tuned rows, best channel count).
	// Saturated runs are airtime-bound, so the number is stable across
	// machines.
	ScaleTPSLargest float64 `json:"scale_tps_largest"`
	// EmitAllocsPerOp is the emit-context contract's steady-state
	// allocations per tuple through the compiled pipeline — 0 by design,
	// and machine-independent, so the gate pins it hard.
	EmitAllocsPerOp float64 `json:"emit_allocs_per_op"`
	// WireEncodeAllocsPerOp is the wire codec's steady-state allocations
	// per encoded frame into a presized buffer — 0 by design (append-only
	// encoding), machine-independent, pinned hard like the emit path.
	WireEncodeAllocsPerOp float64 `json:"wire_encode_allocs_per_op"`
	// ObsOverheadPct is the always-on histogram tax on the emit hot path:
	// (instrumented - uninstrumented) / uninstrumented * 100 with sampling
	// off. Timing-derived, so the gate allows a generous absolute grace.
	ObsOverheadPct float64 `json:"obs_overhead_pct"`
	// TraceAllocsPerOp is the emit path's allocations per tuple with the
	// obs registry attached and sampling off — the zero-allocs invariant
	// with tracing compiled in. 0 by design, machine-independent, pinned.
	TraceAllocsPerOp float64 `json:"trace_allocs_per_op"`
	// ElasticP99HotspotMs is the elastic-on run's worst hotspot-phase p99
	// (ms) from the elastic keyed-parallelism experiment: the number the
	// split/merge policy exists to hold down. The static run's degradation
	// is the experiment's headline but is deliberately unbounded here — it
	// measures the problem, not the solution.
	ElasticP99HotspotMs float64 `json:"elastic_p99_hotspot_ms"`
	// FederationCtrlBytesPerPhoneLargest is the gossip overlay's
	// busiest-node control bytes per phone at the largest swept region
	// count — the sub-linear fan-out claim's number. Fully deterministic
	// (seeded simulation), so the grace term is small.
	FederationCtrlBytesPerPhoneLargest float64 `json:"federation_ctrl_bytes_per_phone_largest"`
	// PlacementLossVsGreedy is the planner arm's tuple loss divided by the
	// greedy arm's (floored at one tuple) in the placement experiment: the
	// planner-beats-greedy headline as a ratio, so the gate tracks the
	// relative claim rather than an absolute count that moves with the
	// churn schedule. The gate additionally requires the planner arm to
	// keep its cross-channel airtime share below the greedy arm's — that
	// claim is structural (repacking removes cross-cell hops), so it gets
	// no regression factor at all.
	PlacementLossVsGreedy float64 `json:"placement_loss_vs_greedy"`
}

// regressionFactor is the gate's threshold: a metric more than 20% worse
// than baseline fails the build. Small absolute grace terms keep the gate
// from tripping on simulation noise around tiny baselines.
const (
	regressionFactor = 1.20
	lossGraceTuples  = 3
	pauseGraceMs     = 5.0
	scaleGraceTPS    = 5.0
	// emitGraceAllocs absorbs measurement noise from unrelated background
	// allocation (GC bookkeeping) without letting a real per-tuple
	// allocation — the smallest possible regression is 1.0 — pass.
	emitGraceAllocs = 0.1
	// wireGraceAllocs plays the same role for the wire codec's encode
	// rows: background noise passes, one real allocation per frame fails.
	wireGraceAllocs = 0.1
	// obsGracePct absorbs scheduler jitter in the overhead measurement —
	// the two timed loops run back to back on shared CI machines, so the
	// percentage is noisy even when the instrumentation cost is flat. It
	// stacks on the multiplicative factor: the measured percentage is a
	// ratio of two timings whose machine-to-machine spread (clock-read cost
	// vs CPU speed) is wider than either timing alone.
	obsGracePct = 15.0
	// traceGraceAllocs mirrors emitGraceAllocs for the sampling-off
	// instrumented path: noise passes, a real per-tuple allocation fails.
	traceGraceAllocs = 0.1
	// elasticGraceMs absorbs scaled-clock jitter in the elastic run's
	// hotspot p99: the tail is a handful of tuples queued behind a split's
	// pause window, so shared-machine scheduling moves it tens of ms
	// between runs even when the policy behaves identically.
	elasticGraceMs = 100.0
	// fedGraceBytesPerPhone absorbs small shifts in gossip sampling when
	// the sweep's seed-adjacent parameters move (peer-set ordering, digest
	// window phase). The byte counts themselves are deterministic, so the
	// grace only needs to cover intentional small retunes, not noise.
	fedGraceBytesPerPhone = 20.0
	// placementGraceRatio absorbs churn-schedule sensitivity in the
	// loss-vs-greedy ratio: both arms run the same seed, but a migration
	// landing one tick earlier can shift a single lost tuple between arms,
	// which moves the ratio a lot when the absolute counts are small. At
	// the committed baseline (both arms lose zero; ratio 0.0) the grace is
	// what tolerates one stray planner-arm tuple against a clean greedy
	// run, so it must stay above 1.0.
	placementGraceRatio = 1.5
)

func runCompare(baselinePath, churnPath, ckptPath, scalePath, emitPath, wirePath, obsPath, elasticPath, fedPath, placePath string, w io.Writer) error {
	var base Baseline
	if err := readJSON(baselinePath, &base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var churn bench.ChurnReport
	if err := readJSON(churnPath, &churn); err != nil {
		return fmt.Errorf("churn results: %w", err)
	}
	var ckpt bench.CkptReport
	if err := readJSON(ckptPath, &ckpt); err != nil {
		return fmt.Errorf("checkpoint results: %w", err)
	}
	var scale bench.ScaleReport
	if err := readJSON(scalePath, &scale); err != nil {
		return fmt.Errorf("scale results: %w", err)
	}
	var emit bench.EmitReport
	if err := readJSON(emitPath, &emit); err != nil {
		return fmt.Errorf("emit results: %w", err)
	}
	var wireRep bench.WireReport
	if err := readJSON(wirePath, &wireRep); err != nil {
		return fmt.Errorf("wire results: %w", err)
	}
	var obsRep bench.ObsReport
	if err := readJSON(obsPath, &obsRep); err != nil {
		return fmt.Errorf("obs results: %w", err)
	}
	var elasticRep bench.ElasticReport
	if err := readJSON(elasticPath, &elasticRep); err != nil {
		return fmt.Errorf("elastic results: %w", err)
	}
	var fedRep bench.FederationReport
	if err := readJSON(fedPath, &fedRep); err != nil {
		return fmt.Errorf("federation results: %w", err)
	}
	var placeRep bench.PlacementReport
	if err := readJSON(placePath, &placeRep); err != nil {
		return fmt.Errorf("placement results: %w", err)
	}

	var worstLoss int64
	for _, row := range churn.Rows {
		if row.Mode == "scheduler" && row.Lost > worstLoss {
			worstLoss = row.Lost
		}
	}
	var incrPause float64
	largest := 0
	for _, row := range ckpt.Rows {
		if row.StateBytes > largest {
			largest = row.StateBytes
		}
	}
	for _, row := range ckpt.Rows {
		if row.StateBytes == largest && row.Mode == "incremental" {
			incrPause = row.PauseMeanMs
		}
	}

	// Largest swept region size, best tuned throughput across channel
	// counts: a >20% drop there means the data-plane overhaul regressed.
	largestPhones := 0
	for _, row := range scale.Rows {
		if row.Mode == "tuned" && row.Phones > largestPhones {
			largestPhones = row.Phones
		}
	}
	var scaleTPS float64
	for _, row := range scale.Rows {
		if row.Mode == "tuned" && row.Phones == largestPhones && row.TPS > scaleTPS {
			scaleTPS = row.TPS
		}
	}

	emitAllocs, emitSeen := -1.0, false
	for _, row := range emit.Rows {
		if row.Mode == "context" {
			emitAllocs, emitSeen = row.AllocsPerOp, true
		}
	}

	// Worst encode row across frame kinds: any per-frame allocation on
	// the encode path breaks the zero-alloc wire-format claim.
	wireAllocs, wireSeen := -1.0, false
	for _, row := range wireRep.Rows {
		if strings.HasPrefix(row.Op, "encode_") {
			wireSeen = true
			if row.AllocsPerOp > wireAllocs {
				wireAllocs = row.AllocsPerOp
			}
		}
	}

	lossLimit := int64(float64(base.MaxSchedulerTupleLoss)*regressionFactor) + lossGraceTuples
	pauseLimit := base.IncrPauseMeanMsLargest*regressionFactor + pauseGraceMs
	scaleLimit := base.ScaleTPSLargest/regressionFactor - scaleGraceTPS
	emitLimit := base.EmitAllocsPerOp + emitGraceAllocs
	wireLimit := base.WireEncodeAllocsPerOp + wireGraceAllocs
	fmt.Fprintf(w, "gate: scheduler tuple loss %d (baseline %d, limit %d)\n",
		worstLoss, base.MaxSchedulerTupleLoss, lossLimit)
	fmt.Fprintf(w, "gate: incremental pause at %d KB state %.2f ms (baseline %.2f ms, limit %.2f ms)\n",
		largest/1024, incrPause, base.IncrPauseMeanMsLargest, pauseLimit)
	fmt.Fprintf(w, "gate: scale throughput at %d phones %.1f tuples/s (baseline %.1f, limit %.1f)\n",
		largestPhones, scaleTPS, base.ScaleTPSLargest, scaleLimit)
	fmt.Fprintf(w, "gate: emit-path allocs/op %.3f (baseline %.3f, limit %.3f)\n",
		emitAllocs, base.EmitAllocsPerOp, emitLimit)
	fmt.Fprintf(w, "gate: wire-encode allocs/op %.3f (baseline %.3f, limit %.3f)\n",
		wireAllocs, base.WireEncodeAllocsPerOp, wireLimit)
	obsLimit := base.ObsOverheadPct*regressionFactor + obsGracePct
	traceLimit := base.TraceAllocsPerOp + traceGraceAllocs
	fmt.Fprintf(w, "gate: obs overhead %.1f%% (baseline %.1f%%, limit %.1f%%)\n",
		obsRep.ObsOverheadPct, base.ObsOverheadPct, obsLimit)
	fmt.Fprintf(w, "gate: traced-path allocs/op %.3f (baseline %.3f, limit %.3f)\n",
		obsRep.TraceAllocsPerOp, base.TraceAllocsPerOp, traceLimit)

	// Elastic-on hotspot p99, plus the run's exactly-once invariant: a
	// duplicate output across a live split/merge is a protocol bug, gated
	// at zero with no grace.
	elasticP99, elasticDups := -1.0, int64(0)
	for _, row := range elasticRep.Rows {
		if row.Mode == "elastic" {
			elasticP99 = row.P99HotMs
			elasticDups = row.Duplicates
		}
	}
	elasticLimit := base.ElasticP99HotspotMs*regressionFactor + elasticGraceMs
	fmt.Fprintf(w, "gate: elastic hotspot p99 %.1f ms (baseline %.1f ms, limit %.1f ms)\n",
		elasticP99, base.ElasticP99HotspotMs, elasticLimit)

	// Federation: gossip-mode busiest-node control bytes per phone at the
	// largest swept region count, plus the sweep's exactly-once invariant
	// — a duplicate cross-region output is a dedup bug, gated at zero
	// with no grace.
	fedBytesPerPhone, fedDups := -1.0, uint64(0)
	fedLargest := 0
	for _, row := range fedRep.Rows {
		if row.Mode == "gossip" {
			if row.Regions > fedLargest {
				fedLargest = row.Regions
				fedBytesPerPhone = row.CtrlBytesPerPhone
			}
			fedDups += row.XRegionDupOutputs
		}
	}
	fedLimit := base.FederationCtrlBytesPerPhoneLargest*regressionFactor + fedGraceBytesPerPhone
	fmt.Fprintf(w, "gate: federation ctrl bytes/phone at %d regions %.1f (baseline %.1f, limit %.1f)\n",
		fedLargest, fedBytesPerPhone, base.FederationCtrlBytesPerPhoneLargest, fedLimit)

	// Placement: the planner's tuple loss relative to the greedy baseline
	// arm, plus the structural cross-channel claim and the run's
	// exactly-once invariant (duplicates gated at zero, no grace).
	var greedyRow, plannerRow *bench.PlacementOutcome
	for i := range placeRep.Rows {
		switch placeRep.Rows[i].Mode {
		case "greedy":
			greedyRow = &placeRep.Rows[i]
		case "planner":
			plannerRow = &placeRep.Rows[i]
		}
	}
	placeRatio, placeSeen := -1.0, greedyRow != nil && plannerRow != nil
	if placeSeen {
		greedyLost := greedyRow.Lost
		if greedyLost < 1 {
			greedyLost = 1
		}
		placeRatio = float64(plannerRow.Lost) / float64(greedyLost)
	}
	placeLimit := base.PlacementLossVsGreedy*regressionFactor + placementGraceRatio
	fmt.Fprintf(w, "gate: placement loss vs greedy %.2f (baseline %.2f, limit %.2f)\n",
		placeRatio, base.PlacementLossVsGreedy, placeLimit)
	if placeSeen {
		fmt.Fprintf(w, "gate: placement cross-channel share planner %.3f vs greedy %.3f\n",
			plannerRow.CrossChannelShare, greedyRow.CrossChannelShare)
	}

	var failures []string
	if !emitSeen {
		failures = append(failures, "emit results carry no context-contract row")
	} else if emitAllocs > emitLimit {
		failures = append(failures, fmt.Sprintf("emit-path allocs/op regressed: %.3f > %.3f", emitAllocs, emitLimit))
	}
	if !wireSeen {
		failures = append(failures, "wire results carry no encode rows")
	} else if wireAllocs > wireLimit {
		failures = append(failures, fmt.Sprintf("wire-encode allocs/op regressed: %.3f > %.3f", wireAllocs, wireLimit))
	}
	if worstLoss > lossLimit {
		failures = append(failures, fmt.Sprintf("tuple loss regressed: %d > %d", worstLoss, lossLimit))
	}
	if incrPause > pauseLimit {
		failures = append(failures, fmt.Sprintf("checkpoint pause regressed: %.2f ms > %.2f ms", incrPause, pauseLimit))
	}
	if incrPause <= 0 {
		failures = append(failures, "checkpoint results carry no incremental pause sample")
	}
	if scaleTPS < scaleLimit {
		failures = append(failures, fmt.Sprintf("scale throughput regressed: %.1f < %.1f tuples/s", scaleTPS, scaleLimit))
	}
	if scaleTPS <= 0 {
		failures = append(failures, "scale results carry no tuned throughput sample")
	}
	if obsRep.Iters <= 0 {
		failures = append(failures, "obs results carry no overhead sample")
	} else {
		if obsRep.ObsOverheadPct > obsLimit {
			failures = append(failures, fmt.Sprintf("obs overhead regressed: %.1f%% > %.1f%%", obsRep.ObsOverheadPct, obsLimit))
		}
		if obsRep.TraceAllocsPerOp > traceLimit {
			failures = append(failures, fmt.Sprintf("traced-path allocs/op regressed: %.3f > %.3f", obsRep.TraceAllocsPerOp, traceLimit))
		}
	}
	if elasticP99 <= 0 {
		failures = append(failures, "elastic results carry no elastic-mode hotspot sample")
	} else if elasticP99 > elasticLimit {
		failures = append(failures, fmt.Sprintf("elastic hotspot p99 regressed: %.1f ms > %.1f ms", elasticP99, elasticLimit))
	}
	if elasticDups != 0 {
		failures = append(failures, fmt.Sprintf("elastic run published %d duplicate outputs", elasticDups))
	}
	if fedBytesPerPhone <= 0 {
		failures = append(failures, "federation results carry no gossip-mode sweep rows")
	} else if fedBytesPerPhone > fedLimit {
		failures = append(failures, fmt.Sprintf("federation ctrl bytes/phone regressed: %.1f > %.1f", fedBytesPerPhone, fedLimit))
	}
	if fedDups != 0 {
		failures = append(failures, fmt.Sprintf("federation run published %d duplicate cross-region outputs", fedDups))
	}
	if !placeSeen {
		failures = append(failures, "placement results carry no greedy+planner row pair")
	} else {
		if placeRatio > placeLimit {
			failures = append(failures, fmt.Sprintf("placement loss vs greedy regressed: %.2f > %.2f", placeRatio, placeLimit))
		}
		if plannerRow.CrossChannelShare >= greedyRow.CrossChannelShare {
			failures = append(failures, fmt.Sprintf("placement planner no longer beats greedy on cross-channel share: %.3f >= %.3f",
				plannerRow.CrossChannelShare, greedyRow.CrossChannelShare))
		}
		if plannerRow.Duplicates != 0 {
			failures = append(failures, fmt.Sprintf("placement planner run published %d duplicate outputs", plannerRow.Duplicates))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(w, "FAIL %s\n", f)
		}
		return fmt.Errorf("%d metric(s) regressed >20%% vs %s", len(failures), baselinePath)
	}
	fmt.Fprintln(w, "gate: no regressions")
	return nil
}

func readJSON(path string, v interface{}) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewDecoder(f).Decode(v)
}
