// msrun runs one MobiStreams scenario — an application, a fault-tolerance
// scheme, an optional fault burst — and prints the region's report. It is
// the command-line front end to the same harness the benchmarks use.
//
// Usage:
//
//	msrun -app bcp -scheme ms -measure 120s
//	msrun -app sg -scheme dist-2 -fail 2
//	msrun -app bcp -scheme ms -depart 3 -speedup 400
//
// With -listen or -join, msrun instead runs a transport region: the same
// deterministic pipeline over real TCP sockets, split across processes.
// The lead prints every checkpoint blob digest plus the sink digest, and
// -xregion sim prints the identical report from the simulated WiFi
// backend — byte-identical blobs mean the two outputs diff clean:
//
//	msrun -xregion sim -seed 42 -tuples 60 -tokenevery 10   # simnet backend
//	msrun -listen 127.0.0.1:7070 -workers 2 -seed 42        # socket lead
//	msrun -join 127.0.0.1:7070 -id w1                       # socket worker
//	msrun -join 127.0.0.1:7070 -id w2
//
// With -fed, msrun runs the federated control-plane demo instead: a hub
// plus -regions region agents gossip membership, telemetry rollups and
// fleet caps, then ship a ring of cross-region tuples. The hub prints a
// deterministic report, and -fed sim prints the identical report from the
// in-memory mesh, so the two outputs diff clean across backends:
//
//	msrun -fed sim -regions 2 -seed 5                       # in-memory mesh
//	msrun -fed lead -listen 127.0.0.1:7401 -regions 2 -seed 5
//	msrun -fed region -id r01 -join 127.0.0.1:7401
//	msrun -fed region -id r02 -join 127.0.0.1:7401
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"mobistreams/internal/bench"
	"mobistreams/internal/federation"
	"mobistreams/internal/ft"
	"mobistreams/internal/obs"
	"mobistreams/internal/simnet"
	"mobistreams/internal/xregion"
)

func main() {
	appName := flag.String("app", "bcp", "application: bcp|sg")
	schemeName := flag.String("scheme", "ms", "scheme: base|rep-2|local|dist-N|ms")
	measure := flag.Duration("measure", 2*time.Minute, "measurement window (simulated)")
	period := flag.Duration("period", time.Minute, "checkpoint period (simulated)")
	speedup := flag.Float64("speedup", 200, "simulated-to-wall clock ratio")
	failN := flag.Int("fail", 0, "phones to crash mid-window")
	departN := flag.Int("depart", 0, "phones to depart mid-window")
	phones := flag.Int("phones", 16, "region population (8 slots + spares)")
	channels := flag.Int("channels", 1, "WiFi channel/AP domain count")
	seed := flag.Int64("seed", 1, "workload seed")
	listen := flag.String("listen", "", "transport-region lead: listen for worker joins on this address")
	join := flag.String("join", "", "transport-region worker: join the lead at this address")
	nodeID := flag.String("id", "", "worker node ID (w1, w2, ...); required with -join")
	workers := flag.Int("workers", 2, "transport-region worker count")
	tuples := flag.Int("tuples", 60, "transport-region workload size")
	tokenEvery := flag.Int("tokenevery", 10, "transport-region checkpoint token interval (tuples)")
	xreg := flag.String("xregion", "", "run the transport region on this backend instead: sim")
	joinTimeout := flag.Duration("jointimeout", time.Minute, "transport-region lead: how long to wait for workers")
	sample := flag.Int("sample", 0, "trace every Nth tuple end to end (0 disables tracing)")
	httpAddr := flag.String("http", "", "serve live metrics/journal/traces/pprof on this address")
	fed := flag.String("fed", "", "run the federation demo on this backend: sim|lead|region")
	fedRegions := flag.Int("regions", 2, "federation demo region count (sim and lead)")
	flag.Parse()

	if *fed != "" {
		runFederationDemo(*fed, *listen, *join, *nodeID, *fedRegions, *seed, *joinTimeout)
		return
	}

	if *join != "" || *listen != "" || *xreg != "" {
		runTransportRegion(*listen, *join, *nodeID, *xreg, xregion.Spec{
			Seed: *seed, Tuples: *tuples, TokenEvery: *tokenEvery, SampleEvery: *sample,
		}, *workers, *joinTimeout, *httpAddr)
		return
	}

	var app bench.App
	switch *appName {
	case "bcp":
		app = bench.BCP
	case "sg", "signalguru":
		app = bench.SG
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}
	scheme, err := ft.Parse(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	out, err := bench.Run(bench.Scenario{
		App:              app,
		Scheme:           scheme,
		Phones:           *phones,
		Channels:         *channels,
		Speedup:          *speedup,
		CheckpointPeriod: *period,
		Measure:          *measure,
		FailCount:        *failN,
		DepartCount:      *departN,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("app:          %s\n", app)
	fmt.Printf("scheme:       %s\n", scheme)
	fmt.Printf("window:       %v simulated\n", out.Window)
	fmt.Printf("outputs:      %d unique tuples (%.3f t/s)\n", out.Tuples, out.ThroughputTPS)
	fmt.Printf("latency:      mean %v, p95 %v\n", out.MeanLatency.Round(time.Millisecond), out.P95Latency.Round(time.Millisecond))
	fmt.Printf("data:         %.2f MB on WiFi\n", float64(out.DataBytes)/(1<<20))
	fmt.Printf("checkpoints:  %.2f MB network, %.2f MB preserved\n",
		float64(out.CheckpointNet)/(1<<20), float64(out.PreservedBytes)/(1<<20))
	fmt.Printf("replication:  %.2f MB network\n", float64(out.ReplicationNet)/(1<<20))
	fmt.Printf("recoveries:   %d (departures handled: %d)\n", out.Recoveries, out.Departures)
	fmt.Printf("duplicates:   %d suppressed at the sink\n", out.Duplicates)
	fmt.Printf("inbox drops:  %d best-effort deliveries lost to full inboxes\n", out.InboxDrops)
	fmt.Printf("transport:    %d redials, %d dead conns\n", out.Redials, out.DeadConns)
	if out.Channels > 1 {
		fmt.Printf("channels:     %d domains, %.1f%% of unicast bytes cross-channel\n",
			out.Channels, out.CrossChannelShare*100)
		for i, air := range out.ChannelAirtime {
			members := 0
			if i < len(out.ChannelMembers) {
				members = out.ChannelMembers[i]
			}
			fmt.Printf("  ch%-2d        %v airtime, %d phones\n", i, air.Round(time.Millisecond), members)
		}
	}
	if out.Dead {
		fmt.Println("region:       DEAD (bypassed by the controller)")
	}
}

// runFederationDemo dispatches the federated control-plane demo: the
// whole fleet in-process on the mesh (-fed sim), the hub over real
// sockets (-fed lead), or one region process (-fed region). Lead and sim
// print the identical deterministic report.
func runFederationDemo(backend, listen, join, id string, regions int, seed int64, timeout time.Duration) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch backend {
	case "sim":
		if err := federation.RunDemoSim(regions, seed, os.Stdout); err != nil {
			fail(err)
		}
	case "lead":
		if listen == "" {
			fmt.Fprintln(os.Stderr, "-fed lead requires -listen")
			os.Exit(2)
		}
		if err := federation.RunDemoLead(listen, regions, seed, timeout, os.Stdout); err != nil {
			fail(err)
		}
	case "region":
		if join == "" || id == "" {
			fmt.Fprintln(os.Stderr, "-fed region requires -join and -id (r01, r02, ...)")
			os.Exit(2)
		}
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		if err := federation.RunDemoRegion(simnet.NodeID(id), listen, join, timeout); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "region %s done\n", id)
	default:
		fmt.Fprintf(os.Stderr, "unknown -fed backend %q (want: sim|lead|region)\n", backend)
		os.Exit(2)
	}
}

// runTransportRegion runs the deterministic pipeline over the transport
// layer: as a socket worker (-join), a socket lead (-listen), or entirely
// on the simulated WiFi (-xregion sim). Lead and sim print the identical
// deterministic report, so `diff` across backends proves blob parity.
func runTransportRegion(listen, join, id, backend string, spec xregion.Spec, workers int, timeout time.Duration, httpAddr string) {
	// The export endpoint comes up before the run so it can be scraped
	// while the region is streaming; span waterfalls land on it (and on
	// stderr) once the run completes.
	var reg *obs.Registry
	if httpAddr != "" {
		reg = obs.NewRegistry()
		actual, err := obs.Serve(httpAddr, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", actual)
	}
	switch {
	case join != "":
		if id == "" {
			fmt.Fprintln(os.Stderr, "-join requires -id (w1, w2, ...)")
			os.Exit(2)
		}
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		if err := xregion.RunWorkerTCP(simnet.NodeID(id), listen, join); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "worker %s done\n", id)
	case listen != "":
		s, err := xregion.ListenLead(listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if reg != nil {
			// Dead connections and redials land in the live journal.
			s.SetJournal(reg.Journal)
		}
		res, err := xregion.RunLeadOn(s, spec, workers, timeout)
		s.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printRegionResult(spec, res, reg)
	case backend == "sim":
		res, err := xregion.RunSim(spec, workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printRegionResult(spec, res, reg)
	default:
		fmt.Fprintf(os.Stderr, "unknown -xregion backend %q (want: sim)\n", backend)
		os.Exit(2)
	}
}

// printRegionResult prints the run's deterministic fingerprint: every
// checkpoint blob's digest in sorted key order, the sink stream digest,
// and — when tracing was sampled — each trace's timing-free span
// structure. Output is backend-independent by construction; per-hop
// latencies and transport health, which are not, go to stderr.
func printRegionResult(spec xregion.Spec, res *xregion.Result, reg *obs.Registry) {
	fmt.Printf("region:      %d tuples, token every %d, seed %d\n", spec.Tuples, spec.TokenEvery, spec.Seed)
	keys := make([]string, 0, len(res.Blobs))
	for k := range res.Blobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sum := sha256.Sum256(res.Blobs[k])
		fmt.Printf("blob %-8s %x %dB\n", k, sum[:8], len(res.Blobs[k]))
	}
	fmt.Printf("sink outputs: %d\n", res.SinkOuts)
	fmt.Printf("sink digest:  %s\n", res.SinkDigest)
	for _, w := range res.Traces {
		fmt.Printf("trace %-6d %s\n", w.Trace, w.Structure())
	}
	for _, w := range res.Traces {
		fmt.Fprint(os.Stderr, w.Render())
	}
	fmt.Fprintf(os.Stderr, "transport: redials=%d deadconns=%d\n", res.Redials, res.DeadConns)
	if reg != nil {
		var spans []obs.Span
		for _, w := range res.Traces {
			for _, h := range w.Hops {
				spans = append(spans, h.Span)
			}
		}
		reg.Tracer.Absorb(spans)
	}
}
