// msrun runs one MobiStreams scenario — an application, a fault-tolerance
// scheme, an optional fault burst — and prints the region's report. It is
// the command-line front end to the same harness the benchmarks use.
//
// Usage:
//
//	msrun -app bcp -scheme ms -measure 120s
//	msrun -app sg -scheme dist-2 -fail 2
//	msrun -app bcp -scheme ms -depart 3 -speedup 400
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobistreams/internal/bench"
	"mobistreams/internal/ft"
)

func main() {
	appName := flag.String("app", "bcp", "application: bcp|sg")
	schemeName := flag.String("scheme", "ms", "scheme: base|rep-2|local|dist-N|ms")
	measure := flag.Duration("measure", 2*time.Minute, "measurement window (simulated)")
	period := flag.Duration("period", time.Minute, "checkpoint period (simulated)")
	speedup := flag.Float64("speedup", 200, "simulated-to-wall clock ratio")
	failN := flag.Int("fail", 0, "phones to crash mid-window")
	departN := flag.Int("depart", 0, "phones to depart mid-window")
	phones := flag.Int("phones", 16, "region population (8 slots + spares)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	var app bench.App
	switch *appName {
	case "bcp":
		app = bench.BCP
	case "sg", "signalguru":
		app = bench.SG
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}
	scheme, err := ft.Parse(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	out, err := bench.Run(bench.Scenario{
		App:              app,
		Scheme:           scheme,
		Phones:           *phones,
		Speedup:          *speedup,
		CheckpointPeriod: *period,
		Measure:          *measure,
		FailCount:        *failN,
		DepartCount:      *departN,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("app:          %s\n", app)
	fmt.Printf("scheme:       %s\n", scheme)
	fmt.Printf("window:       %v simulated\n", out.Window)
	fmt.Printf("outputs:      %d unique tuples (%.3f t/s)\n", out.Tuples, out.ThroughputTPS)
	fmt.Printf("latency:      mean %v, p95 %v\n", out.MeanLatency.Round(time.Millisecond), out.P95Latency.Round(time.Millisecond))
	fmt.Printf("data:         %.2f MB on WiFi\n", float64(out.DataBytes)/(1<<20))
	fmt.Printf("checkpoints:  %.2f MB network, %.2f MB preserved\n",
		float64(out.CheckpointNet)/(1<<20), float64(out.PreservedBytes)/(1<<20))
	fmt.Printf("replication:  %.2f MB network\n", float64(out.ReplicationNet)/(1<<20))
	fmt.Printf("recoveries:   %d (departures handled: %d)\n", out.Recoveries, out.Departures)
	fmt.Printf("duplicates:   %d suppressed at the sink\n", out.Duplicates)
	if out.Dead {
		fmt.Println("region:       DEAD (bypassed by the controller)")
	}
}
