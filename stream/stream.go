// Package stream is the fluent, typed dataflow builder: applications
// declare a pipeline as a chain of typed stages and the builder compiles
// it into exactly the graph.Graph + operator.Registry pair the hand-wired
// API produces — same operator IDs, same slots, same edge order — so
// placements, checkpoints and sink outputs are byte-identical to an
// equivalent hand-built graph.
//
//	p, err := stream.From[float64]("sensor").
//		Map("smooth", func(v float64) float64 { return v * 0.5 }).
//		Filter("pos", func(v float64) bool { return v > 0 }).
//		Window("avg", 16).
//		Sink("out", func(v float64) { fmt.Println(v) }).
//		Build()
//
// Wiring errors the stringly-typed API only surfaced as runtime panics —
// unknown edge targets, duplicate operator IDs, payload-type mismatches at
// stage boundaries — are build-time errors here: Build validates the
// accumulated dataflow and returns every problem at once.
//
// Stage payload types ride Go generics. Same-type stages (Map, Filter,
// Sink, Via) are methods; type-changing stages are package functions
// (Apply, Through, Merge) because Go methods cannot introduce type
// parameters. Each stage occupies its own slot named after the stage
// unless On pins it, so co-locating stages on one phone is one option
// away.
package stream

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"mobistreams/internal/graph"
	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
)

// Option adjusts one stage declaration.
type Option func(*stage)

// On pins the stage to a named slot (a logical phone). Stages sharing a
// slot run co-located as a super-operator. Default: a slot named after
// the stage.
func On(slot string) Option {
	return func(st *stage) { st.slot = slot }
}

// WithCost models the stage's per-tuple CPU service time for operators
// built by the stream package (Map, Filter, Window, TimeWindow). Custom
// factories (Via, Through, Merge) model cost themselves.
func WithCost(d time.Duration) Option {
	return func(st *stage) { st.cost = d }
}

// WithParallelism declares the stage elastically keyed with n initially
// active instances. When the effective maximum parallelism exceeds 1 the
// stage compiles into a keyed group — instances id#0..id#maxN-1, each on
// its own slot, tuples routed by the key a KeyBy stage upstream assigned —
// otherwise it compiles into exactly the plain single stage it is today.
// Requires a KeyBy upstream; rejected on sinks (Build reports all
// violations together).
func WithParallelism(n int) Option {
	return func(st *stage) { st.par = n; st.hasPar = true }
}

// WithMaxParallelism places n instances for the stage (slots and all) of
// which only WithParallelism(k) serve traffic initially; the rest stay
// dormant until a live key-range split hands them load. Implies
// WithParallelism(1) when no initial parallelism is given.
func WithMaxParallelism(n int) Option {
	return func(st *stage) { st.maxPar = n; st.hasPar = true }
}

// WithLatencyBudget attaches an end-to-end latency budget to the stream at
// this stage: the tightest budget declared anywhere in the dataflow
// becomes the pipeline's QoS latency budget, which the runtime divides
// across the batching hops toward the sinks and each edge tunes its
// adaptive flush deadline under (see node.QoS). Rejected on sinks — a
// sink has no downstream edge to budget.
func WithLatencyBudget(d time.Duration) Option {
	return func(st *stage) { st.budget = d }
}

// Upstream is any typed stream handle — what Merge accepts as an input.
type Upstream interface {
	ref() (*core, string)
}

// Stream is a typed handle on the last declared stage; every fluent call
// appends a stage and returns a new handle. Handles are cheap and
// shareable: calling two stage methods on the same handle fans the stage's
// output out to both consumers.
type Stream[T any] struct {
	c  *core
	id string
}

func (s *Stream[T]) ref() (*core, string) { return s.c, s.id }

// stage is one declared operator.
type stage struct {
	id      string
	slot    string
	cost    time.Duration
	factory operator.Factory
	in, out reflect.Type // nil means any payload
	isSink  bool
	sink    func(*tuple.Tuple) bool
	sinkRT  reflect.Type // sink payload type (nil = any), for ambiguity checks

	// Elastic keyed parallelism (WithParallelism/WithMaxParallelism) and
	// the per-stream latency budget (WithLatencyBudget).
	keyBy  bool
	hasPar bool
	par    int
	maxPar int
	budget time.Duration
}

// parallelism resolves the stage's (initial, max) instance counts; max > 1
// means the stage compiles into a keyed group.
func (st *stage) parallelism() (par, maxPar int) {
	par, maxPar = st.par, st.maxPar
	if par < 1 {
		par = 1
	}
	if maxPar < par {
		maxPar = par
	}
	return par, maxPar
}

// edge is one declared connection, in declaration order. Route edges are
// validated identically to stage edges; the target just may not exist
// yet when the edge is recorded.
type edge struct {
	from, to string
}

// core accumulates the stages and edges of one dataflow; all handles of a
// pipeline share it.
type core struct {
	stages []*stage
	byID   map[string]*stage
	edges  []edge
	errs   []error
}

func (c *core) errf(format string, args ...interface{}) {
	c.errs = append(c.errs, fmt.Errorf("stream: "+format, args...))
}

// add declares a stage fed by the given upstream stage IDs.
func (c *core) add(id string, factory operator.Factory, in, out reflect.Type, ups []string, opts []Option) *stage {
	st := &stage{id: id, factory: factory, in: in, out: out}
	for _, o := range opts {
		o(st)
	}
	if st.slot == "" {
		st.slot = id
	}
	if id == "" {
		c.errf("empty stage ID")
		return st
	}
	if _, dup := c.byID[id]; dup {
		c.errf("duplicate stage ID %q", id)
		return st
	}
	c.byID[id] = st
	c.stages = append(c.stages, st)
	for _, up := range ups {
		c.edges = append(c.edges, edge{from: up, to: id})
	}
	return st
}

// typeOf resolves a type parameter to its runtime type; `any` becomes the
// nil wildcard that matches every payload.
func typeOf[T any]() reflect.Type {
	rt := reflect.TypeOf((*T)(nil)).Elem()
	if rt.Kind() == reflect.Interface && rt.NumMethod() == 0 {
		return nil
	}
	return rt
}

// From starts a dataflow at a source stage admitting payloads of type T
// (region.Ingest feeds it externally).
func From[T any](id string, opts ...Option) *Stream[T] {
	c := &core{byID: make(map[string]*stage)}
	st := c.add(id, func() operator.Operator { return operator.NewPassthrough(id) },
		typeOf[T](), typeOf[T](), nil, opts)
	return &Stream[T]{c: c, id: st.id}
}

// Map appends a same-type transformation stage.
func (s *Stream[T]) Map(id string, fn func(T) T, opts ...Option) *Stream[T] {
	st := s.c.add(id, mapFactory[T, T](id, func(v T) (T, bool) { return fn(v), true }, costOf(opts)),
		typeOf[T](), typeOf[T](), []string{s.id}, opts)
	return &Stream[T]{c: s.c, id: st.id}
}

// Apply appends a type-changing transformation stage: fn returns the new
// payload and whether to keep the tuple. (A package function: Go methods
// cannot introduce the output type parameter.)
func Apply[T, U any](s *Stream[T], id string, fn func(T) (U, bool), opts ...Option) *Stream[U] {
	st := s.c.add(id, mapFactory[T, U](id, fn, costOf(opts)),
		typeOf[T](), typeOf[U](), []string{s.id}, opts)
	return &Stream[U]{c: s.c, id: st.id}
}

// Filter appends a predicate stage dropping tuples that fail pred.
func (s *Stream[T]) Filter(id string, pred func(T) bool, opts ...Option) *Stream[T] {
	cost := costOf(opts)
	factory := func() operator.Operator {
		f := operator.NewFilter(id, func(t *tuple.Tuple) bool {
			v, ok := t.Value.(T)
			return ok && pred(v)
		})
		if cost > 0 {
			f.CostFn = operator.FixedCost(cost)
		}
		return f
	}
	st := s.c.add(id, factory, typeOf[T](), typeOf[T](), []string{s.id}, opts)
	return &Stream[T]{c: s.c, id: st.id}
}

// Window appends a count-based sliding window over the last n values,
// emitting the running mean (numeric payloads; others contribute their
// wire size).
func (s *Stream[T]) Window(id string, n int, opts ...Option) *Stream[float64] {
	cost := costOf(opts)
	factory := func() operator.Operator {
		w := operator.NewWindow(id, n)
		if cost > 0 {
			w.CostFn = operator.FixedCost(cost)
		}
		return w
	}
	st := s.c.add(id, factory, nil, typeOf[float64](), []string{s.id}, opts)
	return &Stream[float64]{c: s.c, id: st.id}
}

// TimeWindow appends a tumbling window over simulated time: per key (the
// tuple's Kind) it emits one mean tuple when the window closes — the
// emit-context contract's timer registration drives the close.
func (s *Stream[T]) TimeWindow(id string, width time.Duration, opts ...Option) *Stream[float64] {
	cost := costOf(opts)
	factory := func() operator.Operator {
		w := operator.NewTimeWindow(id, width)
		if cost > 0 {
			w.CostFn = operator.FixedCost(cost)
		}
		return w
	}
	st := s.c.add(id, factory, nil, typeOf[float64](), []string{s.id}, opts)
	return &Stream[float64]{c: s.c, id: st.id}
}

// KeyBy appends a key-assignment stage: every downstream keyed mechanism —
// elastic parallel routing, TimeWindow grouping, per-key state — reads the
// key fn assigns (carried on the tuple's Kind). Payloads that fail the
// type assertion keep their existing Kind.
func (s *Stream[T]) KeyBy(id string, fn func(T) string, opts ...Option) *Stream[T] {
	factory := func() operator.Operator {
		return operator.NewKeyTag(id, func(t *tuple.Tuple) string {
			if v, ok := t.Value.(T); ok {
				return fn(v)
			}
			return t.Kind
		})
	}
	st := s.c.add(id, factory, typeOf[T](), typeOf[T](), []string{s.id}, opts)
	st.keyBy = true
	return &Stream[T]{c: s.c, id: st.id}
}

// Via appends a custom operator stage that preserves the payload type. The
// factory must build an operator whose ID matches the stage ID.
func (s *Stream[T]) Via(id string, factory func() operator.Operator, opts ...Option) *Stream[T] {
	st := s.c.add(id, factory, typeOf[T](), typeOf[T](), []string{s.id}, opts)
	return &Stream[T]{c: s.c, id: st.id}
}

// Through appends a custom operator stage that changes the payload type to
// U (package function, like Apply).
func Through[T, U any](s *Stream[T], id string, factory func() operator.Operator, opts ...Option) *Stream[U] {
	st := s.c.add(id, factory, typeOf[T](), typeOf[U](), []string{s.id}, opts)
	return &Stream[U]{c: s.c, id: st.id}
}

// Merge appends a custom fan-in stage fed by every input (a join, a
// voter). All inputs must belong to the same dataflow. The stage's input
// type is unconstrained — the operator sees each upstream's payload —
// and its output type is U.
func Merge[U any](id string, factory func() operator.Operator, inputs []Upstream, opts ...Option) *Stream[U] {
	if len(inputs) == 0 {
		// No dataflow to attach to; return a detached handle whose Build
		// reports the error.
		c := &core{byID: make(map[string]*stage)}
		c.errf("merge stage %q has no inputs", id)
		return &Stream[U]{c: c, id: id}
	}
	c, _ := inputs[0].ref()
	ups := make([]string, 0, len(inputs))
	for _, in := range inputs {
		ic, iid := in.ref()
		if ic != c {
			c.errf("merge stage %q mixes handles from different dataflows", id)
			continue
		}
		ups = append(ups, iid)
	}
	st := c.add(id, factory, nil, typeOf[U](), ups, opts)
	return &Stream[U]{c: c, id: st.id}
}

// Route declares an extra edge from this stage to the named stage — the
// escape hatch for wiring dispatchers (EmitTo targets) and diamonds the
// fluent chain cannot express. The target is resolved at Build: an unknown
// ID is a build error, not a runtime panic.
func (s *Stream[T]) Route(to string) *Stream[T] {
	s.c.edges = append(s.c.edges, edge{from: s.id, to: to})
	return s
}

// Sink appends a terminal stage publishing results externally; fn (may be
// nil) receives each deduplicated typed result via Pipeline.Output.
// Output dispatches by payload type, so at most one callback-bearing sink
// per payload type is allowed — Build rejects the ambiguous case (use
// distinct payload types, or one sink fanning out in application code).
func (s *Stream[T]) Sink(id string, fn func(T), opts ...Option) *Stream[T] {
	st := s.c.add(id, func() operator.Operator { return operator.NewPassthrough(id) },
		typeOf[T](), typeOf[T](), []string{s.id}, opts)
	st.isSink = true
	st.sinkRT = typeOf[T]()
	if fn != nil {
		st.sink = func(t *tuple.Tuple) bool {
			v, ok := t.Value.(T)
			if ok {
				fn(v)
			}
			return ok
		}
	}
	return &Stream[T]{c: s.c, id: st.id}
}

// edgeCompatible reports whether an upstream's payload type satisfies a
// downstream stage's input: equal types, the `any` wildcard (nil), or a
// concrete payload implementing the consumer's interface — the same cases
// the runtime's type assertion accepts.
func edgeCompatible(out, in reflect.Type) bool {
	if out == nil || in == nil || out == in {
		return true
	}
	return in.Kind() == reflect.Interface && out.Implements(in)
}

// sinkTypesOverlap reports whether payloads published by a sink of type a
// could satisfy a type-assert against b (or vice versa): equal types, the
// `any` wildcard (nil), or interface implementation in either direction.
func sinkTypesOverlap(a, b reflect.Type) bool {
	if a == nil || b == nil || a == b {
		return true
	}
	if a.Kind() == reflect.Interface && b.Implements(a) {
		return true
	}
	if b.Kind() == reflect.Interface && a.Implements(b) {
		return true
	}
	return false
}

// sinkName renders a sink payload type for diagnostics.
func sinkName(rt reflect.Type) string {
	if rt == nil {
		return "any"
	}
	return rt.String()
}

// Build validates the accumulated dataflow and compiles it into a
// Pipeline. All recorded problems — duplicate IDs, unknown Route targets,
// type mismatches at stage boundaries, graph-level defects (cycles, no
// source, no sink) — are returned together.
func (s *Stream[T]) Build() (*Pipeline, error) {
	return s.c.build()
}

func (c *core) build() (*Pipeline, error) {
	errs := append([]error(nil), c.errs...)
	for _, e := range c.edges {
		from, okF := c.byID[e.from]
		to, okT := c.byID[e.to]
		if !okT {
			errs = append(errs, fmt.Errorf("stream: edge %s->%s targets unknown stage %q", e.from, e.to, e.to))
			continue
		}
		if !okF {
			// Only reachable for Route edges recorded before an errored
			// stage declaration; stage errors are already collected.
			continue
		}
		if !edgeCompatible(from.out, to.in) {
			errs = append(errs, fmt.Errorf("stream: type mismatch on edge %s->%s: %s emits %v, %s consumes %v",
				e.from, e.to, e.from, from.out, e.to, to.in))
		}
	}
	// Elastic keyed parallelism and latency-budget validation. A stage
	// whose effective maximum parallelism exceeds 1 compiles into a keyed
	// group; WithParallelism(1) alone compiles into exactly the plain
	// stage, so its output is identical to an undeclared stage's.
	keyed := make(map[string]bool)
	var budget time.Duration
	for _, st := range c.stages {
		if st.hasPar {
			_, maxPar := st.parallelism()
			switch {
			case st.isSink:
				errs = append(errs, fmt.Errorf("stream: sink %q cannot be parallel — sinks publish externally and carry no key routing", st.id))
			case st.keyBy:
				errs = append(errs, fmt.Errorf("stream: KeyBy stage %q cannot itself be parallel — parallelism applies to the keyed stages it feeds", st.id))
			case !c.hasKeyByUpstream(st.id):
				errs = append(errs, fmt.Errorf("stream: stage %q declares parallelism but no KeyBy upstream assigns a key", st.id))
			default:
				if maxPar > 1 {
					keyed[st.id] = true
				}
			}
		}
		if st.budget > 0 {
			if st.isSink {
				errs = append(errs, fmt.Errorf("stream: sink %q cannot carry a latency budget — budgets attach to stages with downstream edges", st.id))
			} else if budget == 0 || st.budget < budget {
				budget = st.budget
			}
		}
	}
	for _, e := range c.edges {
		if keyed[e.from] && keyed[e.to] {
			errs = append(errs, fmt.Errorf("stream: keyed stage %q feeds keyed stage %q directly — keyed groups cannot chain; insert a non-keyed stage between them", e.from, e.to))
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	var gb graph.Builder
	reg := make(operator.Registry, len(c.stages))
	var sinks []func(*tuple.Tuple) bool
	var sinkStages []*stage
	for _, st := range c.stages {
		if keyed[st.id] {
			par, maxPar := st.parallelism()
			gb.AddKeyedOperator(st.id, st.slot, par, maxPar)
			for i := 0; i < maxPar; i++ {
				instID := fmt.Sprintf("%s#%d", st.id, i)
				base := st.factory
				reg[instID] = func() operator.Operator {
					op := base()
					if rn, ok := op.(operator.Renamable); ok {
						rn.SetID(instID)
					}
					return op
				}
			}
			continue
		}
		gb.AddOperator(st.id, st.slot)
		reg[st.id] = st.factory
		if st.isSink {
			// Output dispatches by payload type, so any pair of sinks
			// with overlapping payload types misroutes as soon as one of
			// them has a callback (the callback would also receive the
			// other sink's outputs). Equal types, interface/implementer
			// pairs and the `any` wildcard all overlap.
			for _, prev := range sinkStages {
				if (prev.sink != nil || st.sink != nil) && sinkTypesOverlap(prev.sinkRT, st.sinkRT) {
					return nil, fmt.Errorf("stream: sinks %q (%s) and %q (%s) have overlapping payload types and at least one callback — outputs would misroute; use distinct payload types or a single sink",
						prev.id, sinkName(prev.sinkRT), st.id, sinkName(st.sinkRT))
				}
			}
			sinkStages = append(sinkStages, st)
			if st.sink != nil {
				sinks = append(sinks, st.sink)
			}
		}
	}
	for _, e := range c.edges {
		switch {
		case keyed[e.to]:
			gb.ConnectToGroup(e.from, e.to)
		case keyed[e.from]:
			gb.ConnectFromGroup(e.from, e.to)
		default:
			gb.Connect(e.from, e.to)
		}
	}
	g, err := gb.Build()
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if len(sinks) > 0 {
		// Output dispatches every terminal operator's publications to the
		// typed callbacks, so a stage that ended up terminal without being
		// declared a Sink would leak its outputs into another sink's
		// callback — reject it like any other misroute.
		for _, id := range g.Sinks() {
			if st := c.byID[id]; st != nil && !st.isSink {
				return nil, fmt.Errorf("stream: terminal stage %q is not a Sink — its outputs would reach the registered sink callbacks; end the branch with Sink (nil callback is fine) or wire it downstream", id)
			}
		}
	}
	// The converse wiring bug: a Sink that gained downstream consumers is
	// not terminal, never publishes externally, and its callback would
	// silently never fire.
	for _, st := range sinkStages {
		if len(g.Downstream(st.id)) > 0 {
			return nil, fmt.Errorf("stream: sink %q has downstream stages %v — it never publishes externally, so its callback would never fire; use a mid-pipeline stage instead", st.id, g.Downstream(st.id))
		}
	}
	if err := reg.Validate(g.Operators()); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	return &Pipeline{g: g, reg: reg, sinks: sinks, budget: budget}, nil
}

// hasKeyByUpstream reports whether a KeyBy stage reaches id through the
// recorded edges (transitively).
func (c *core) hasKeyByUpstream(id string) bool {
	preds := make(map[string][]string, len(c.edges))
	for _, e := range c.edges {
		preds[e.to] = append(preds[e.to], e.from)
	}
	seen := make(map[string]bool)
	queue := append([]string(nil), preds[id]...)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if st := c.byID[cur]; st != nil && st.keyBy {
			return true
		}
		queue = append(queue, preds[cur]...)
	}
	return false
}

// Pipeline is a compiled dataflow: the same graph + registry pair the
// hand-wired API produces, plus the typed sink callbacks.
type Pipeline struct {
	g      *graph.Graph
	reg    operator.Registry
	sinks  []func(*tuple.Tuple) bool
	budget time.Duration
}

// LatencyBudget returns the tightest WithLatencyBudget declared in the
// dataflow (zero when none) — PipelineSpec wires it into the region's QoS.
func (p *Pipeline) LatencyBudget() time.Duration { return p.budget }

// Graph returns the compiled query network.
func (p *Pipeline) Graph() *graph.Graph { return p.g }

// Registry returns the compiled operator registry.
func (p *Pipeline) Registry() operator.Registry { return p.reg }

// HasOutput reports whether any sink stage registered a callback.
func (p *Pipeline) HasOutput() bool { return len(p.sinks) > 0 }

// Output dispatches one deduplicated sink result to the registered typed
// callbacks — wire it to RegionSpec.OnOutput (PipelineSpec does).
func (p *Pipeline) Output(t *tuple.Tuple) {
	for _, fn := range p.sinks {
		if fn(t) {
			return
		}
	}
}

// mapFactory compiles a typed stage function onto the stdlib Map operator,
// so stream-built and hand-built pipelines checkpoint identically.
func mapFactory[T, U any](id string, fn func(T) (U, bool), cost time.Duration) operator.Factory {
	return func() operator.Operator {
		m := operator.NewMap(id, func(t *tuple.Tuple) *tuple.Tuple {
			v, ok := t.Value.(T)
			if !ok {
				return nil // mismatched payload: drop, as Filter would
			}
			u, keep := fn(v)
			if !keep {
				return nil
			}
			out := t.Clone()
			out.Value = u
			return out
		})
		if cost > 0 {
			m.CostFn = operator.FixedCost(cost)
		}
		return m
	}
}

// costOf peeks the WithCost option ahead of stage construction (factories
// capture it).
func costOf(opts []Option) time.Duration {
	var probe stage
	for _, o := range opts {
		o(&probe)
	}
	return probe.cost
}
