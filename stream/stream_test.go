package stream

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
)

func TestBuildCompilesGraphAndRegistry(t *testing.T) {
	var mu sync.Mutex
	var got []float64
	p, err := From[float64]("src", On("n1")).
		Map("double", func(v float64) float64 { return 2 * v }, On("n2")).
		Filter("pos", func(v float64) bool { return v > 0 }, On("n2")).
		Window("avg", 4, On("n3")).
		Sink("out", func(v float64) { mu.Lock(); got = append(got, v); mu.Unlock() }, On("n4")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	g := p.Graph()
	wantOps := []string{"src", "double", "pos", "avg", "out"}
	ops := g.Operators()
	if len(ops) != len(wantOps) {
		t.Fatalf("operators = %v", ops)
	}
	for i, id := range wantOps {
		if ops[i] != id {
			t.Fatalf("operators = %v, want %v", ops, wantOps)
		}
	}
	if g.SlotOf("double") != "n2" || g.SlotOf("pos") != "n2" {
		t.Fatal("On(slot) not honoured")
	}
	if down := g.Downstream("src"); len(down) != 1 || down[0] != "double" {
		t.Fatalf("edge order wrong: %v", down)
	}
	if sinks := g.Sinks(); len(sinks) != 1 || sinks[0] != "out" {
		t.Fatalf("sinks = %v", sinks)
	}
	if err := p.Registry().Validate(g.Operators()); err != nil {
		t.Fatalf("compiled registry invalid: %v", err)
	}
	// Typed sink dispatch.
	if !p.HasOutput() {
		t.Fatal("sink callback lost")
	}
	p.Output(&tuple.Tuple{Value: 3.5})
	p.Output(&tuple.Tuple{Value: "not a float"}) // ignored, wrong type
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != 3.5 {
		t.Fatalf("sink dispatch got %v", got)
	}
}

func TestDefaultSlotIsStageID(t *testing.T) {
	p, err := From[int]("a").Map("b", func(v int) int { return v }).Sink("c", nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if p.Graph().SlotOf(id) != id {
			t.Fatalf("default slot for %s = %s", id, p.Graph().SlotOf(id))
		}
	}
}

func TestBuildRejectsDuplicateID(t *testing.T) {
	_, err := From[int]("a").Map("a", func(v int) int { return v }).Sink("out", nil).Build()
	if err == nil || !strings.Contains(err.Error(), `duplicate stage ID "a"`) {
		t.Fatalf("duplicate ID not rejected: %v", err)
	}
}

func TestBuildRejectsUnknownRouteTarget(t *testing.T) {
	_, err := From[int]("a").Route("ghost").Sink("out", nil).Build()
	if err == nil || !strings.Contains(err.Error(), `unknown stage "ghost"`) {
		t.Fatalf("unknown edge target not rejected: %v", err)
	}
}

func TestBuildRejectsTypeMismatch(t *testing.T) {
	src := From[float64]("src")
	strs := Apply(src, "tostr", func(v float64) (string, bool) { return "s", true })
	strs.Map("strmap", func(v string) string { return v }).Sink("out", nil)
	// A float64 branch routed into the string consumer must fail at Build.
	w := src.Window("win", 4)
	w.Route("strmap")
	_, err := w.Build()
	if err == nil || !strings.Contains(err.Error(), "type mismatch on edge win->strmap") {
		t.Fatalf("type mismatch not rejected: %v", err)
	}
}

func TestBuildRejectsFactoryIDMismatch(t *testing.T) {
	_, err := From[int]("a").
		Via("b", func() operator.Operator { return operator.NewPassthrough("NOT-b") }).
		Sink("out", nil).Build()
	if err == nil || !strings.Contains(err.Error(), `built operator with ID "NOT-b"`) {
		t.Fatalf("factory ID mismatch not rejected: %v", err)
	}
}

func TestBuildRejectsCycleAndMissingSink(t *testing.T) {
	// Route back to the source: a cycle the graph layer reports.
	s := From[int]("a")
	b := s.Map("b", func(v int) int { return v })
	b.Route("a")
	_, err := b.Sink("out", nil).Build()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not rejected: %v", err)
	}
}

func TestMergeFanInAndFanOut(t *testing.T) {
	src := From[float64]("S", On("n1"))
	left := src.Map("L", func(v float64) float64 { return v + 1 }, On("n2"))
	right := src.Map("R", func(v float64) float64 { return v - 1 }, On("n3"))
	joined := Merge[float64]("J", func() operator.Operator {
		return operator.NewJoin("J", "L", "R", func(l, r *tuple.Tuple) *tuple.Tuple { return l.Clone() })
	}, []Upstream{left, right}, On("n4"))
	p, err := joined.Sink("out", nil, On("n4")).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := p.Graph()
	if ups := g.Upstream("J"); len(ups) != 2 || ups[0] != "L" || ups[1] != "R" {
		t.Fatalf("merge upstreams = %v", ups)
	}
	if down := g.Downstream("S"); len(down) != 2 {
		t.Fatalf("fan-out from shared handle = %v", down)
	}
}

func TestMergeRejectsMixedDataflows(t *testing.T) {
	a := From[int]("a")
	b := From[int]("b")
	m := Merge[int]("m", func() operator.Operator { return operator.NewPassthrough("m") },
		[]Upstream{a, b})
	_, err := m.Sink("out", nil).Build()
	if err == nil || !strings.Contains(err.Error(), "different dataflows") {
		t.Fatalf("mixed dataflows not rejected: %v", err)
	}
	if _, err := Merge[int]("n", nil, nil).Build(); err == nil {
		t.Fatal("empty merge accepted")
	}
}

func TestTimeWindowStageCompiles(t *testing.T) {
	p, err := From[float64]("src").
		TimeWindow("win", 5*time.Second, WithCost(time.Millisecond)).
		Sink("out", nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	op := p.Registry().New("win")
	if _, ok := op.(*operator.TimeWindow); !ok {
		t.Fatalf("win compiled to %T", op)
	}
	if op.Cost(&tuple.Tuple{}) != time.Millisecond {
		t.Fatal("WithCost not applied")
	}
}

func TestErrorsAreAggregated(t *testing.T) {
	s := From[int]("a")
	s.Map("a", func(v int) int { return v }) // duplicate
	s.Route("ghost")                         // unknown
	_, err := s.Sink("out", nil).Build()
	if err == nil {
		t.Fatal("no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "duplicate stage ID") || !strings.Contains(msg, `unknown stage "ghost"`) {
		t.Fatalf("errors not aggregated: %v", msg)
	}
}

// Regression: Pipeline.Output dispatches by payload type, so two
// callback-bearing sinks sharing a type (or an `any` sink next to any
// other) would silently misroute every output to the first match — Build
// must reject the ambiguity instead.
func TestBuildRejectsAmbiguousSinkTypes(t *testing.T) {
	src := From[float64]("src")
	a := src.Map("a", func(v float64) float64 { return v })
	b := src.Map("b", func(v float64) float64 { return v })
	a.Sink("outA", func(float64) {})
	_, err := b.Sink("outB", func(float64) {}).Build()
	if err == nil || !strings.Contains(err.Error(), "misroute") {
		t.Fatalf("same-type sinks not rejected: %v", err)
	}

	// Distinct payload types stay legal.
	src2 := From[float64]("src")
	f := src2.Map("f", func(v float64) float64 { return v })
	s := Apply(src2, "s", func(v float64) (string, bool) { return "x", true })
	f.Sink("outF", func(float64) {})
	if _, err := s.Sink("outS", func(string) {}).Build(); err != nil {
		t.Fatalf("distinct-type sinks rejected: %v", err)
	}

	// An `any` sink is ambiguous with every other callback sink.
	src3 := From[float64]("src")
	g := src3.Map("g", func(v float64) float64 { return v })
	h := Apply(src3, "h", func(v float64) (any, bool) { return v, true })
	g.Sink("outG", func(float64) {})
	if _, err := h.Sink("outH", func(any) {}).Build(); err == nil {
		t.Fatal("any-sink ambiguity not rejected")
	}

	// A nil-callback sink still publishes: paired with a same-type
	// callback sink, its outputs would land in that callback — rejected.
	src4 := From[float64]("src")
	i := src4.Map("i", func(v float64) float64 { return v })
	j := src4.Map("j", func(v float64) float64 { return v })
	i.Sink("outI", nil)
	if _, err := j.Sink("outJ", func(float64) {}).Build(); err == nil {
		t.Fatal("nil-callback sink next to a same-type callback sink accepted")
	}

	// Two callback-less sinks cannot misroute: legal.
	src5 := From[float64]("src")
	k := src5.Map("k", func(v float64) float64 { return v })
	l := src5.Map("l", func(v float64) float64 { return v })
	k.Sink("outK", nil)
	if _, err := l.Sink("outL", nil).Build(); err != nil {
		t.Fatalf("two callback-less sinks rejected: %v", err)
	}

	// Interface/implementer overlap is caught even with distinct names.
	src6 := From[error]("src")
	m := src6.Map("m", func(v error) error { return v })
	n := Apply(src6, "n", func(v error) (any, bool) { return v, true })
	m.Sink("outM", func(error) {})
	if _, err := n.Sink("outN", func(any) {}).Build(); err == nil {
		t.Fatal("interface-overlap sinks accepted")
	}
}

// Regression: a stage left terminal without being declared a Sink becomes
// a graph sink, and its publications would reach the registered typed
// callbacks — Build must reject it whenever callbacks exist.
func TestBuildRejectsTerminalNonSinkNextToCallbacks(t *testing.T) {
	src := From[float64]("src")
	src.Sink("out", func(float64) {})
	src.Map("dangling", func(v float64) float64 { return v })
	_, err := src.Build()
	if err == nil || !strings.Contains(err.Error(), `terminal stage "dangling"`) {
		t.Fatalf("dangling terminal stage not rejected: %v", err)
	}

	// Without callbacks a terminal non-Sink stage (e.g. a Merge join) is
	// fine — nothing can misroute.
	a := From[float64]("a")
	a.Sink("outA", nil)
	a.Map("tail", func(v float64) float64 { return v })
	if _, err := a.Build(); err != nil {
		t.Fatalf("terminal stage without callbacks rejected: %v", err)
	}
}

// Regression: edge validation must accept a concrete payload feeding a
// stage declared over an interface it implements — the same cases the
// runtime type assertion accepts — while still rejecting real mismatches.
func TestBuildAcceptsInterfaceSatisfyingEdge(t *testing.T) {
	src := From[*strings.Reader]("src")
	b := Apply(src, "toiface", func(v *strings.Reader) (io.Reader, bool) { return v, true })
	c := b.Map("use", func(v io.Reader) io.Reader { return v })
	c.Sink("out", nil)
	// Route the concrete branch straight into the interface consumer:
	// *strings.Reader implements io.Reader, so this edge is valid.
	src.Route("use")
	if _, err := src.Build(); err != nil {
		t.Fatalf("interface-satisfying edge rejected: %v", err)
	}

	// A genuinely incompatible payload is still a build error.
	f := From[float64]("f")
	g := f.Map("fwd", func(v float64) float64 { return v })
	h := Apply(f, "toiface", func(v float64) (io.Reader, bool) { return nil, false })
	i := h.Map("use", func(v io.Reader) io.Reader { return v })
	i.Sink("out", nil)
	g.Route("use")
	if _, err := f.Build(); err == nil || !strings.Contains(err.Error(), "type mismatch on edge fwd->use") {
		t.Fatalf("incompatible edge not rejected: %v", err)
	}
}

// Regression: a Sink that gained downstream consumers is not terminal and
// never publishes, so its callback would silently never fire — Build must
// reject it.
func TestBuildRejectsMidPipelineSink(t *testing.T) {
	src := From[float64]("src")
	tap := src.Sink("tap", func(float64) {})
	end := Apply(tap, "tostr", func(v float64) (string, bool) { return "x", true })
	end.Sink("end", func(string) {})
	_, err := tap.Build()
	if err == nil || !strings.Contains(err.Error(), `sink "tap" has downstream stages`) {
		t.Fatalf("mid-pipeline sink not rejected: %v", err)
	}
}
