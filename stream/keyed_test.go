package stream

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
)

// tallyVia builds the keyed Via stage used across these tests.
func tallyVia(id string) func() operator.Operator {
	return func() operator.Operator { return operator.NewKeyedTally(id) }
}

func TestKeyByCompilesKeyedGroup(t *testing.T) {
	p, err := From[string]("src").
		KeyBy("kb", func(v string) string { return v }).
		Via("tally", tallyVia("tally"), WithParallelism(2), WithMaxParallelism(4)).
		Sink("out", nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	g := p.Graph()
	gs, ok := g.KeyedGroup("tally")
	if !ok {
		t.Fatal("no keyed group compiled")
	}
	if gs.Parallelism != 2 || len(gs.Instances) != 4 {
		t.Fatalf("group = %+v, want parallelism 2 of 4", gs)
	}
	for i, inst := range gs.Instances {
		want := fmt.Sprintf("tally#%d", i)
		if inst != want {
			t.Fatalf("instance %d = %q, want %q", i, inst, want)
		}
		// Factories must rebind the instance ID so checkpoints and routing
		// address the right operator.
		op := p.Registry().New(inst)
		if op.ID() != want {
			t.Fatalf("factory for %s built operator %q", inst, op.ID())
		}
		if down := g.Downstream(inst); len(down) != 1 || down[0] != "out" {
			t.Fatalf("instance %s downstream = %v", inst, down)
		}
	}
	if down := g.Downstream("kb"); len(down) != len(gs.Instances) {
		t.Fatalf("kb fans out to %v", down)
	}
}

// TestParallelismOneParity is the golden parity check: WithParallelism(1)
// (no extra instances) must compile into byte-identical graph + registry
// output to the same pipeline without the option.
func TestParallelismOneParity(t *testing.T) {
	build := func(opts ...Option) (*Pipeline, error) {
		return From[string]("src").
			KeyBy("kb", func(v string) string { return v }).
			Via("tally", tallyVia("tally"), opts...).
			Sink("out", nil).
			Build()
	}
	plain, err := build()
	if err != nil {
		t.Fatal(err)
	}
	par1, err := build(WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Graph().Operators(), par1.Graph().Operators()) {
		t.Fatalf("operators differ: %v vs %v", plain.Graph().Operators(), par1.Graph().Operators())
	}
	if !reflect.DeepEqual(plain.Graph().Slots(), par1.Graph().Slots()) {
		t.Fatalf("slots differ: %v vs %v", plain.Graph().Slots(), par1.Graph().Slots())
	}
	for _, id := range plain.Graph().Operators() {
		if plain.Graph().SlotOf(id) != par1.Graph().SlotOf(id) {
			t.Fatalf("slot of %s differs", id)
		}
		if !reflect.DeepEqual(plain.Graph().Downstream(id), par1.Graph().Downstream(id)) {
			t.Fatalf("downstream of %s differs: %v vs %v", id, plain.Graph().Downstream(id), par1.Graph().Downstream(id))
		}
	}
	if _, ok := par1.Graph().KeyedGroup("tally"); ok {
		t.Fatal("Parallelism(1) compiled a keyed group")
	}
	// Identical structure means identical runtime behavior: same compiled
	// pipelines, same edge order, same sink outputs.
	if len(par1.Registry()) != len(plain.Registry()) {
		t.Fatalf("registry sizes differ: %d vs %d", len(par1.Registry()), len(plain.Registry()))
	}
}

func TestKeyedValidationErrorsJoined(t *testing.T) {
	// Three violations in one dataflow: parallelism without KeyBy,
	// parallelism on a sink, latency budget on a sink. All must surface in
	// one Build error.
	_, err := From[string]("src").
		Via("tally", tallyVia("tally"), WithParallelism(2)).
		Sink("out", nil, WithParallelism(2), WithLatencyBudget(time.Second)).
		Build()
	if err == nil {
		t.Fatal("Build accepted invalid keyed declarations")
	}
	for _, want := range []string{
		`stage "tally" declares parallelism but no KeyBy upstream`,
		`sink "out" cannot be parallel`,
		`sink "out" cannot carry a latency budget`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestKeyedChainRejected(t *testing.T) {
	_, err := From[string]("src").
		KeyBy("kb", func(v string) string { return v }).
		Via("a", tallyVia("a"), WithMaxParallelism(2)).
		Via("b", tallyVia("b"), WithMaxParallelism(2)).
		Sink("out", nil).
		Build()
	if err == nil || !strings.Contains(err.Error(), "keyed groups cannot chain") {
		t.Fatalf("err = %v, want keyed-chain rejection", err)
	}
}

func TestKeyByOnParallelStageRejected(t *testing.T) {
	_, err := From[string]("src").
		KeyBy("kb", func(v string) string { return v }, WithParallelism(2)).
		Via("tally", tallyVia("tally")).
		Sink("out", nil).
		Build()
	if err == nil || !strings.Contains(err.Error(), `KeyBy stage "kb" cannot itself be parallel`) {
		t.Fatalf("err = %v, want KeyBy-parallel rejection", err)
	}
}

func TestLatencyBudgetPropagates(t *testing.T) {
	p, err := From[string]("src", WithLatencyBudget(2*time.Second)).
		KeyBy("kb", func(v string) string { return v }, WithLatencyBudget(500*time.Millisecond)).
		Via("tally", tallyVia("tally")).
		Sink("out", nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// The tightest declared budget wins.
	if got := p.LatencyBudget(); got != 500*time.Millisecond {
		t.Fatalf("LatencyBudget = %v, want 500ms", got)
	}
}

func TestKeyByAssignsKind(t *testing.T) {
	p, err := From[string]("src").
		KeyBy("kb", func(v string) string { return "key:" + v }).
		Sink("out", nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	op := p.Registry().New("kb")
	in := &tuple.Tuple{Value: "abc", Kind: "orig"}
	outs, err := operator.Run(op, "src", in)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].T.Kind != "key:abc" {
		t.Fatalf("KeyBy emitted %+v, want one tuple with Kind key:abc", outs)
	}
	if in.Kind != "orig" {
		t.Fatal("KeyBy mutated its input tuple")
	}
}
