package mobistreams

// The DSL↔manual parity golden tests: a stream-built pipeline must compile
// to exactly the artifacts a hand-wired graph+registry produces — same
// graph projections, byte-identical operator checkpoints, and the same
// placements, committed versions and sink outputs when both run the same
// fixed-seed workload.

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
	"mobistreams/stream"
)

func paritySmooth(v float64) float64 { return 0.5*v + 1 }
func parityPred(v float64) bool      { return v > 0 }

// parityHandBuilt wires the reference pipeline through the low-level API,
// exactly as an application would have before the stream builder.
func parityHandBuilt(t *testing.T) (*Graph, Registry) {
	t.Helper()
	g, err := NewGraphBuilder().
		AddOperator("sensor", "n1").AddOperator("smooth", "n2").
		AddOperator("pos", "n2").AddOperator("avg", "n3").
		AddOperator("out", "n4").
		Chain("sensor", "smooth", "pos", "avg", "out").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := Registry{
		"sensor": func() Operator { return operator.NewPassthrough("sensor") },
		"smooth": func() Operator {
			return operator.NewMap("smooth", func(in *tuple.Tuple) *tuple.Tuple {
				v, ok := in.Value.(float64)
				if !ok {
					return nil
				}
				out := in.Clone()
				out.Value = paritySmooth(v)
				return out
			})
		},
		"pos": func() Operator {
			return operator.NewFilter("pos", func(in *tuple.Tuple) bool {
				v, ok := in.Value.(float64)
				return ok && parityPred(v)
			})
		},
		"avg": func() Operator { return operator.NewWindow("avg", 4) },
		"out": func() Operator { return operator.NewPassthrough("out") },
	}
	return g, reg
}

// parityDSL declares the same pipeline through the stream builder.
func parityDSL(t *testing.T, sinkFn func(float64)) *stream.Pipeline {
	t.Helper()
	p, err := stream.From[float64]("sensor", stream.On("n1")).
		Map("smooth", paritySmooth, stream.On("n2")).
		Filter("pos", parityPred, stream.On("n2")).
		Window("avg", 4, stream.On("n3")).
		Sink("out", sinkFn, stream.On("n4")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStreamParityGraph(t *testing.T) {
	hg, _ := parityHandBuilt(t)
	p := parityDSL(t, nil)
	dg := p.Graph()

	hOps, dOps := hg.Operators(), dg.Operators()
	if len(hOps) != len(dOps) {
		t.Fatalf("operator sets differ: %v vs %v", hOps, dOps)
	}
	for i := range hOps {
		if hOps[i] != dOps[i] {
			t.Fatalf("operator order differs: %v vs %v", hOps, dOps)
		}
		id := hOps[i]
		if hg.SlotOf(id) != dg.SlotOf(id) {
			t.Fatalf("slot of %s differs: %s vs %s", id, hg.SlotOf(id), dg.SlotOf(id))
		}
		hd, dd := hg.Downstream(id), dg.Downstream(id)
		if len(hd) != len(dd) {
			t.Fatalf("downstreams of %s differ: %v vs %v", id, hd, dd)
		}
		for j := range hd {
			if hd[j] != dd[j] {
				t.Fatalf("downstreams of %s differ: %v vs %v", id, hd, dd)
			}
		}
	}
	hs, ds := hg.Slots(), dg.Slots()
	if len(hs) != len(ds) {
		t.Fatalf("slots differ: %v vs %v", hs, ds)
	}
	for i := range hs {
		if hs[i] != ds[i] {
			t.Fatalf("slots differ: %v vs %v", hs, ds)
		}
	}
}

// TestStreamParityCheckpointBytes drives the operators of both builds
// through the same input sequence and asserts every slot's checkpoint blob
// encodes to identical bytes — the DSL compiles onto the very operators
// the hand-built registry instantiates, so recovery artifacts cannot
// diverge.
func TestStreamParityCheckpointBytes(t *testing.T) {
	hg, hreg := parityHandBuilt(t)
	p := parityDSL(t, nil)
	dreg := p.Registry()

	build := func(reg Registry) map[string]Operator {
		ops := make(map[string]Operator)
		for _, id := range hg.Operators() {
			ops[id] = reg.New(id)
		}
		return ops
	}
	hOps, dOps := build(hreg), build(dreg)
	for i := 1; i <= 40; i++ {
		in := &tuple.Tuple{Seq: uint64(i), Size: 64, Kind: "reading", Value: float64(i - 20)}
		for _, id := range hg.Operators() {
			if _, err := operator.Run(hOps[id], "", in); err != nil {
				t.Fatalf("hand %s: %v", id, err)
			}
			if _, err := operator.Run(dOps[id], "", in); err != nil {
				t.Fatalf("dsl %s: %v", id, err)
			}
		}
	}
	for _, slot := range hg.Slots() {
		collect := func(ops map[string]Operator) []operator.Operator {
			var list []operator.Operator
			for _, id := range hg.OpsOnSlot(slot) {
				list = append(list, ops[id])
			}
			return list
		}
		hb, err := checkpoint.BuildBlob(slot, 1, collect(hOps), nil)
		if err != nil {
			t.Fatal(err)
		}
		db, err := checkpoint.BuildBlob(slot, 1, collect(dOps), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(hb.EncodeState(), db.EncodeState()) {
			t.Fatalf("slot %s checkpoint bytes differ between DSL and hand-built", slot)
		}
		if hb.Size != db.Size || hb.CRC != db.CRC {
			t.Fatalf("slot %s blob metadata differs: size %d/%d crc %x/%x",
				slot, hb.Size, db.Size, hb.CRC, db.CRC)
		}
	}
}

// parityRun drives one build end to end on a fixed seed and returns its
// placements, committed version and sink outputs.
func parityRun(t *testing.T, spec RegionSpec) (map[string]string, uint64, map[uint64]float64) {
	t.Helper()
	outputs := make(map[uint64]float64)
	var mu sync.Mutex
	onOut := func(tt *Tuple) {
		v, ok := tt.Value.(float64)
		if !ok {
			return
		}
		mu.Lock()
		outputs[tt.Seq] = v
		mu.Unlock()
	}
	if spec.OnOutput == nil {
		spec.OnOutput = onOut
	} else {
		inner := spec.OnOutput
		spec.OnOutput = func(tt *Tuple) { inner(tt); onOut(tt) }
	}
	sys := NewSystem(SystemConfig{Speedup: 2000, CheckpointPeriod: time.Hour})
	r, err := sys.AddRegion(spec)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()
	clk := sys.Clock()
	for i := 1; i <= 12; i++ {
		r.Ingest("sensor", float64(i), 512, "reading")
		clk.Sleep(200 * time.Millisecond)
	}
	v := r.TriggerCheckpoint()
	deadline := time.Now().Add(15 * time.Second)
	for r.Committed() < v && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	placements := make(map[string]string)
	for _, slot := range r.r.Graph().Slots() {
		if id, ok := r.r.Placement(slot); ok {
			placements[slot] = string(id)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	outCopy := make(map[uint64]float64, len(outputs))
	for k, vv := range outputs {
		outCopy[k] = vv
	}
	return placements, r.Committed(), outCopy
}

// TestStreamParityLiveSystem runs the DSL build and the hand build through
// identical fixed-seed lossless regions: placements, committed checkpoint
// versions and every deduplicated sink output must match exactly.
func TestStreamParityLiveSystem(t *testing.T) {
	hg, hreg := parityHandBuilt(t)
	handSpec := RegionSpec{
		ID: "r1", Graph: hg, Registry: hreg,
		Scheme: MS, Phones: 6, WiFiBps: 50e6, LosslessWiFi: true, Seed: 42,
	}
	hPlace, hCommit, hOut := parityRun(t, handSpec)

	p := parityDSL(t, nil)
	dslSpec := PipelineSpec("r1", p, MS, 6)
	dslSpec.WiFiBps, dslSpec.LosslessWiFi, dslSpec.Seed = 50e6, true, 42
	dPlace, dCommit, dOut := parityRun(t, dslSpec)

	if hCommit == 0 || hCommit != dCommit {
		t.Fatalf("committed versions differ: hand %d, dsl %d", hCommit, dCommit)
	}
	if len(hPlace) != len(dPlace) {
		t.Fatalf("placements differ: %v vs %v", hPlace, dPlace)
	}
	for slot, id := range hPlace {
		if dPlace[slot] != id {
			t.Fatalf("placement of %s differs: %s vs %s", slot, id, dPlace[slot])
		}
	}
	if len(hOut) == 0 {
		t.Fatal("hand-built run produced no outputs")
	}
	if len(hOut) != len(dOut) {
		t.Fatalf("output counts differ: hand %d, dsl %d", len(hOut), len(dOut))
	}
	for seq, v := range hOut {
		dv, ok := dOut[seq]
		if !ok || dv != v {
			t.Fatalf("output for seq %d differs: hand %v, dsl %v (present %v)", seq, v, dv, ok)
		}
	}
}
