package mobistreams

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobistreams/internal/operator"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
	"mobistreams/stream"
)

func demoGraph(t testing.TB) *Graph {
	t.Helper()
	g, err := NewGraphBuilder().
		AddOperator("src", "n1").AddOperator("work", "n2").AddOperator("out", "n3").
		Chain("src", "work", "out").Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func demoRegistry() Registry {
	return Registry{
		"src": func() Operator { return operator.NewPassthrough("src") },
		"work": func() Operator {
			return operator.NewMap("work", func(in *tuple.Tuple) *tuple.Tuple { return in.Clone() })
		},
		"out": func() Operator { return operator.NewPassthrough("out") },
	}
}

func TestSystemEndToEnd(t *testing.T) {
	var got atomic.Int64
	sys := NewSystem(SystemConfig{Speedup: 2000, CheckpointPeriod: time.Hour})
	r, err := sys.AddRegion(RegionSpec{
		ID: "r1", Graph: demoGraph(t), Registry: demoRegistry(),
		Scheme: MS, Phones: 5, WiFiBps: 50e6,
		OnOutput: func(*Tuple) { got.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()
	for i := 0; i < 10; i++ {
		r.Ingest("src", i, 1024, "x")
	}
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got.Load() != 10 {
		t.Fatalf("outputs = %d, want 10", got.Load())
	}
	if r.Outputs() != 10 {
		t.Fatalf("region outputs = %d", r.Outputs())
	}
	if r.Dead() {
		t.Fatal("region dead")
	}
}

func TestSystemCheckpointAndFailure(t *testing.T) {
	sys := NewSystem(SystemConfig{Speedup: 2000, CheckpointPeriod: time.Hour})
	r, err := sys.AddRegion(RegionSpec{
		ID: "r1", Graph: demoGraph(t), Registry: demoRegistry(),
		Scheme: MS, Phones: 5, WiFiBps: 50e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()
	for i := 0; i < 5; i++ {
		r.Ingest("src", i, 1024, "x")
	}
	v := r.TriggerCheckpoint()
	deadline := time.Now().Add(10 * time.Second)
	for r.Committed() < v && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if r.Committed() < v {
		t.Fatal("checkpoint never committed")
	}
	if err := r.InjectFailure("n2"); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 15; i++ {
		r.Ingest("src", i, 1024, "x")
	}
	deadline = time.Now().Add(15 * time.Second)
	for r.Recoveries() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if r.Recoveries() == 0 {
		t.Fatal("no recovery")
	}
	if r.Dead() {
		t.Fatal("region should survive a single failure")
	}
}

func TestSystemCascade(t *testing.T) {
	var downstream atomic.Int64
	sys := NewSystem(SystemConfig{
		Speedup:          2000,
		CheckpointPeriod: time.Hour,
	})
	r2, err := sys.AddRegion(RegionSpec{
		ID: "r2", Graph: demoGraph(t), Registry: demoRegistry(),
		Scheme: Base, Phones: 3, WiFiBps: 50e6,
		OnOutput: func(*Tuple) { downstream.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sys.AddRegion(RegionSpec{
		ID: "r1", Graph: demoGraph(t), Registry: demoRegistry(),
		Scheme: Base, Phones: 3, WiFiBps: 50e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Connect(r1, r2, "src")
	sys.Start()
	defer sys.Stop()
	for i := 0; i < 5; i++ {
		r1.Ingest("src", i, 1024, "x")
	}
	deadline := time.Now().Add(15 * time.Second)
	for downstream.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if downstream.Load() != 5 {
		t.Fatalf("cascaded outputs = %d, want 5", downstream.Load())
	}
}

func TestParseSchemeFacade(t *testing.T) {
	s, err := ParseScheme("dist-2")
	if err != nil || s != Dist(2) {
		t.Fatalf("parse: %v %v", s, err)
	}
	if _, err := ParseScheme("junk"); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestAddRegionValidation(t *testing.T) {
	sys := NewSystem(SystemConfig{Speedup: 100})
	if _, err := sys.AddRegion(RegionSpec{ID: "bad"}); err == nil {
		t.Fatal("region without graph accepted")
	}
}

func TestSystemAdaptivePlacement(t *testing.T) {
	var got atomic.Int64
	sys := NewSystem(SystemConfig{
		Speedup:           2000,
		CheckpointPeriod:  time.Hour,
		AdaptivePlacement: true,
		ScheduleTick:      2 * time.Second,
	})
	r, err := sys.AddRegion(RegionSpec{
		ID: "r1", Graph: demoGraph(t), Registry: demoRegistry(),
		Scheme: MS, Phones: 5, WiFiBps: 50e6,
		OnOutput: func(*Tuple) { got.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()
	for i := 0; i < 20; i++ {
		r.Ingest("src", i, 1024, "test")
	}
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got.Load() != 20 {
		t.Fatalf("outputs = %d, want 20", got.Load())
	}
	if r.Migrations() != 0 {
		t.Fatalf("healthy region migrated %d slots", r.Migrations())
	}
}

// Regression: NewSystem used to zero the caller's Cellular.ChunkBytes
// unconditionally, so the chunking knob was unconfigurable. The user value
// must reach the network; only an unset value takes the simnet default.
func TestSystemConfigCellularChunkBytesRespected(t *testing.T) {
	sys := NewSystem(SystemConfig{Speedup: 100, Cellular: simnet.CellularConfig{ChunkBytes: 4096}})
	if got := sys.cell.Config().ChunkBytes; got != 4096 {
		t.Fatalf("ChunkBytes = %d, want the configured 4096", got)
	}
	sys = NewSystem(SystemConfig{Speedup: 100})
	if got := sys.cell.Config().ChunkBytes; got != 64<<10 {
		t.Fatalf("default ChunkBytes = %d, want 64 KB", got)
	}
}

// The WiFiLoss zero-value footgun: 0 means "default 2%", LosslessWiFi is
// the explicit lossless knob, and combining it with an explicit loss is a
// configuration error.
func TestRegionSpecWiFiLossResolution(t *testing.T) {
	cases := []struct {
		spec RegionSpec
		want float64
		err  bool
	}{
		{RegionSpec{ID: "a"}, 0.02, false},
		{RegionSpec{ID: "b", WiFiLoss: 0.1}, 0.1, false},
		{RegionSpec{ID: "c", LosslessWiFi: true}, 0, false},
		{RegionSpec{ID: "d", LosslessWiFi: true, WiFiLoss: 0.1}, 0, true},
		{RegionSpec{ID: "e", WiFiLoss: -0.5}, 0, true},
		{RegionSpec{ID: "f", WiFiLoss: 1.5}, 0, true},
	}
	for _, c := range cases {
		got, err := c.spec.wifiLoss()
		if c.err != (err != nil) {
			t.Fatalf("%s: err = %v, want err=%v", c.spec.ID, err, c.err)
		}
		if err == nil && got != c.want {
			t.Fatalf("%s: loss = %g, want %g", c.spec.ID, got, c.want)
		}
	}
	sys := NewSystem(SystemConfig{Speedup: 100})
	if _, err := sys.AddRegion(RegionSpec{
		ID: "bad", Graph: demoGraph(t), Registry: demoRegistry(),
		Scheme: Base, Phones: 3, LosslessWiFi: true, WiFiLoss: 0.2,
	}); err == nil {
		t.Fatal("conflicting loss knobs accepted")
	}
}

// Build-time registry validation: a graph operator without a factory is an
// AddRegion error now, not a placement-time panic.
func TestAddRegionRejectsIncompleteRegistry(t *testing.T) {
	sys := NewSystem(SystemConfig{Speedup: 100})
	reg := demoRegistry()
	delete(reg, "work")
	if _, err := sys.AddRegion(RegionSpec{
		ID: "r1", Graph: demoGraph(t), Registry: reg, Scheme: Base, Phones: 3,
	}); err == nil {
		t.Fatal("registry missing a factory accepted")
	}
}

// legacySmoother is a seed-contract custom operator: the end-to-end proof
// that applications written against the old API survive the emit-context
// redesign unchanged, including checkpoint and recovery.
type legacySmoother struct {
	operator.Base
	ewma float64
	n    uint64
}

func (s *legacySmoother) Process(_ string, t *tuple.Tuple) ([]operator.Out, error) {
	v, _ := t.Value.(float64)
	if s.n == 0 {
		s.ewma = v
	} else {
		s.ewma = 0.8*s.ewma + 0.2*v
	}
	s.n++
	out := t.Clone()
	out.Value = s.ewma
	return []operator.Out{operator.Emit(out)}, nil
}

func (s *legacySmoother) Snapshot() ([]byte, error) {
	return []byte(fmt.Sprintf("%g %d", s.ewma, s.n)), nil
}

func (s *legacySmoother) Restore(data []byte) error {
	_, err := fmt.Sscanf(string(data), "%g %d", &s.ewma, &s.n)
	return err
}

func (s *legacySmoother) StateSize() int { return 16 }

func TestLegacyOperatorSurvivesCheckpointAndFailure(t *testing.T) {
	g, err := NewGraphBuilder().
		AddOperator("src", "n1").AddOperator("smooth", "n2").AddOperator("out", "n3").
		Chain("src", "smooth", "out").Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := Registry{
		"src":    func() Operator { return operator.NewPassthrough("src") },
		"smooth": func() Operator { return &legacySmoother{Base: operator.Base{Name: "smooth"}} },
		"out":    func() Operator { return operator.NewPassthrough("out") },
	}
	var got atomic.Int64
	sys := NewSystem(SystemConfig{Speedup: 2000, CheckpointPeriod: time.Hour})
	r, err := sys.AddRegion(RegionSpec{
		ID: "r1", Graph: g, Registry: reg, Scheme: MS, Phones: 5, WiFiBps: 50e6,
		OnOutput: func(*Tuple) { got.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()
	for i := 0; i < 5; i++ {
		r.Ingest("src", float64(20+i), 512, "reading")
	}
	v := r.TriggerCheckpoint()
	deadline := time.Now().Add(10 * time.Second)
	for r.Committed() < v && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if r.Committed() < v {
		t.Fatal("legacy-operator checkpoint never committed")
	}
	if err := r.InjectFailure("n2"); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 15; i++ {
		r.Ingest("src", float64(20+i), 512, "reading")
	}
	deadline = time.Now().Add(15 * time.Second)
	for r.Recoveries() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if r.Recoveries() == 0 {
		t.Fatal("no recovery with a legacy operator placed")
	}
	if r.Dead() {
		t.Fatal("region died")
	}
}

// TestTimeWindowClosesOnIdleStream proves the executor's timer machinery
// end to end: a TimeWindow built through the stream DSL closes its window
// on simulated time — via the timer wake, not a following tuple — and the
// sink publishes the per-window means while the stream is idle.
func TestTimeWindowClosesOnIdleStream(t *testing.T) {
	var mu sync.Mutex
	var got []float64
	p, err := stream.From[float64]("sensor", stream.On("n1")).
		TimeWindow("win", 10*time.Second, stream.On("n2")).
		Sink("out", func(v float64) { mu.Lock(); got = append(got, v); mu.Unlock() }, stream.On("n3")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(SystemConfig{Speedup: 500, CheckpointPeriod: time.Hour})
	r, err := sys.AddRegion(PipelineSpec("r1", p, Base, 3))
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()
	// Burst all readings well inside the first 10 s window; the close can
	// only come from the timer.
	for i := 1; i <= 4; i++ {
		r.Ingest("sensor", float64(10*i), 256, "reading")
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("time window never closed on the idle stream")
	}
	if got[0] != 25 { // mean of 10,20,30,40
		t.Fatalf("window mean = %v, want 25", got[0])
	}
}
