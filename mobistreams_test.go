package mobistreams

import (
	"sync/atomic"
	"testing"
	"time"

	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
)

func demoGraph(t testing.TB) *Graph {
	t.Helper()
	g, err := NewGraphBuilder().
		AddOperator("src", "n1").AddOperator("work", "n2").AddOperator("out", "n3").
		Chain("src", "work", "out").Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func demoRegistry() Registry {
	return Registry{
		"src": func() Operator { return operator.NewPassthrough("src") },
		"work": func() Operator {
			return operator.NewMap("work", func(in *tuple.Tuple) *tuple.Tuple { return in.Clone() })
		},
		"out": func() Operator { return operator.NewPassthrough("out") },
	}
}

func TestSystemEndToEnd(t *testing.T) {
	var got atomic.Int64
	sys := NewSystem(SystemConfig{Speedup: 2000, CheckpointPeriod: time.Hour})
	r, err := sys.AddRegion(RegionSpec{
		ID: "r1", Graph: demoGraph(t), Registry: demoRegistry(),
		Scheme: MS, Phones: 5, WiFiBps: 50e6,
		OnOutput: func(*Tuple) { got.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()
	for i := 0; i < 10; i++ {
		r.Ingest("src", i, 1024, "x")
	}
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got.Load() != 10 {
		t.Fatalf("outputs = %d, want 10", got.Load())
	}
	if r.Outputs() != 10 {
		t.Fatalf("region outputs = %d", r.Outputs())
	}
	if r.Dead() {
		t.Fatal("region dead")
	}
}

func TestSystemCheckpointAndFailure(t *testing.T) {
	sys := NewSystem(SystemConfig{Speedup: 2000, CheckpointPeriod: time.Hour})
	r, err := sys.AddRegion(RegionSpec{
		ID: "r1", Graph: demoGraph(t), Registry: demoRegistry(),
		Scheme: MS, Phones: 5, WiFiBps: 50e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()
	for i := 0; i < 5; i++ {
		r.Ingest("src", i, 1024, "x")
	}
	v := r.TriggerCheckpoint()
	deadline := time.Now().Add(10 * time.Second)
	for r.Committed() < v && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if r.Committed() < v {
		t.Fatal("checkpoint never committed")
	}
	if err := r.InjectFailure("n2"); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 15; i++ {
		r.Ingest("src", i, 1024, "x")
	}
	deadline = time.Now().Add(15 * time.Second)
	for r.Recoveries() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if r.Recoveries() == 0 {
		t.Fatal("no recovery")
	}
	if r.Dead() {
		t.Fatal("region should survive a single failure")
	}
}

func TestSystemCascade(t *testing.T) {
	var downstream atomic.Int64
	sys := NewSystem(SystemConfig{
		Speedup:          2000,
		CheckpointPeriod: time.Hour,
	})
	r2, err := sys.AddRegion(RegionSpec{
		ID: "r2", Graph: demoGraph(t), Registry: demoRegistry(),
		Scheme: Base, Phones: 3, WiFiBps: 50e6,
		OnOutput: func(*Tuple) { downstream.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sys.AddRegion(RegionSpec{
		ID: "r1", Graph: demoGraph(t), Registry: demoRegistry(),
		Scheme: Base, Phones: 3, WiFiBps: 50e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Connect(r1, r2, "src")
	sys.Start()
	defer sys.Stop()
	for i := 0; i < 5; i++ {
		r1.Ingest("src", i, 1024, "x")
	}
	deadline := time.Now().Add(15 * time.Second)
	for downstream.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if downstream.Load() != 5 {
		t.Fatalf("cascaded outputs = %d, want 5", downstream.Load())
	}
}

func TestParseSchemeFacade(t *testing.T) {
	s, err := ParseScheme("dist-2")
	if err != nil || s != Dist(2) {
		t.Fatalf("parse: %v %v", s, err)
	}
	if _, err := ParseScheme("junk"); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestAddRegionValidation(t *testing.T) {
	sys := NewSystem(SystemConfig{Speedup: 100})
	if _, err := sys.AddRegion(RegionSpec{ID: "bad"}); err == nil {
		t.Fatal("region without graph accepted")
	}
}

func TestSystemAdaptivePlacement(t *testing.T) {
	var got atomic.Int64
	sys := NewSystem(SystemConfig{
		Speedup:           2000,
		CheckpointPeriod:  time.Hour,
		AdaptivePlacement: true,
		ScheduleTick:      2 * time.Second,
	})
	r, err := sys.AddRegion(RegionSpec{
		ID: "r1", Graph: demoGraph(t), Registry: demoRegistry(),
		Scheme: MS, Phones: 5, WiFiBps: 50e6,
		OnOutput: func(*Tuple) { got.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()
	for i := 0; i < 20; i++ {
		r.Ingest("src", i, 1024, "test")
	}
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got.Load() != 20 {
		t.Fatalf("outputs = %d, want 20", got.Load())
	}
	if r.Migrations() != 0 {
		t.Fatalf("healthy region migrated %d slots", r.Migrations())
	}
}
