package wire

import (
	"sort"

	"mobistreams/internal/checkpoint"
)

// Runtime is the wire form of a node's checkpoint runtime state: the edge
// sequence counters and the preservation log version carried inside every
// checkpoint blob. Map entries encode in sorted key order, so the same
// logical state always produces the same bytes — the property checkpoint
// blob parity across transport backends rests on.
type Runtime struct {
	OutSeq     map[string]uint64
	InHW       map[string]uint64
	LogVersion uint64
}

// CkptChunk is one chunk of a chunked checkpoint blob transfer. Receivers
// recompute CRC from the blob identity they are assembling (see
// checkpoint.ChunkCRC), so a chunk spliced from another blob is rejected.
type CkptChunk struct {
	Slot    string
	Version uint64
	Index   int
	Total   int
	CRC     uint32
	Data    []byte
}

// SizeRuntime reports the exact frame size AppendRuntime will produce.
func SizeRuntime(rt *Runtime) int {
	total := 1 + 8 + 4 + 4
	for k := range rt.OutSeq {
		total += sizeString(k) + 8
	}
	for k := range rt.InHW {
		total += sizeString(k) + 8
	}
	return total
}

// AppendRuntime encodes a runtime state frame onto dst, deterministically.
func AppendRuntime(dst []byte, rt *Runtime) []byte {
	dst = appendU8(dst, byte(KindRuntime))
	dst = appendU64(dst, rt.LogVersion)
	dst = appendSortedU64Map(dst, rt.OutSeq)
	return appendSortedU64Map(dst, rt.InHW)
}

// DecodeRuntime decodes a runtime state frame. The maps are always
// non-nil, matching how the node seeds fresh runtime state.
func DecodeRuntime(frame []byte) (Runtime, error) {
	r := reader{b: frame}
	r.kind(KindRuntime)
	var rt Runtime
	rt.LogVersion = r.u64()
	rt.OutSeq = decodeU64Map(&r)
	rt.InHW = decodeU64Map(&r)
	return rt, r.done()
}

func appendSortedU64Map(dst []byte, m map[string]uint64) []byte {
	dst = appendU32(dst, uint32(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendU64(dst, m[k])
	}
	return dst
}

func decodeU64Map(r *reader) map[string]uint64 {
	n := r.count(4 + 8)
	m := make(map[string]uint64, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str()
		m[k] = r.u64()
	}
	return m
}

// SizeBlob reports the exact frame size AppendBlob will produce.
func SizeBlob(b *checkpoint.Blob) int {
	total := 1 + sizeString(b.Slot) + 8 + 8 + 8 + 8 + 4 +
		sizeBytes(b.Runtime) + 4 + 4
	for id, data := range b.Ops {
		total += sizeString(id) + sizeBytes(data)
	}
	for id, isDelta := range b.DeltaOps {
		if isDelta {
			total += sizeString(id)
		}
	}
	return total
}

// AppendBlob encodes a checkpoint blob frame onto dst, deterministically:
// operator entries in sorted ID order, delta markers as a sorted ID list.
func AppendBlob(dst []byte, b *checkpoint.Blob) []byte {
	dst = appendU8(dst, byte(KindBlob))
	dst = appendString(dst, b.Slot)
	dst = appendU64(dst, b.Version)
	dst = appendU64(dst, b.Base)
	dst = appendI64(dst, int64(b.Size))
	dst = appendI64(dst, int64(b.FullSize))
	dst = appendU32(dst, b.CRC)
	dst = appendBytes(dst, b.Runtime)

	ids := make([]string, 0, len(b.Ops))
	for id := range b.Ops {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	dst = appendU32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = appendString(dst, id)
		dst = appendBytes(dst, b.Ops[id])
	}

	deltas := make([]string, 0, len(b.DeltaOps))
	for id, isDelta := range b.DeltaOps {
		if isDelta {
			deltas = append(deltas, id)
		}
	}
	sort.Strings(deltas)
	dst = appendU32(dst, uint32(len(deltas)))
	for _, id := range deltas {
		dst = appendString(dst, id)
	}
	return dst
}

// DecodeBlob decodes a checkpoint blob frame. Operator state and runtime
// bytes are zero-copy views into the frame: callers keeping the blob past
// the frame's lifetime must copy them.
func DecodeBlob(frame []byte) (*checkpoint.Blob, error) {
	r := reader{b: frame}
	r.kind(KindBlob)
	b := &checkpoint.Blob{}
	b.Slot = r.str()
	b.Version = r.u64()
	b.Base = r.u64()
	b.Size = int(r.i64())
	b.FullSize = int(r.i64())
	b.CRC = r.u32()
	b.Runtime = r.bytes()
	if n := r.count(4 + 4); r.err == nil {
		b.Ops = make(map[string][]byte, n)
		for i := 0; i < n && r.err == nil; i++ {
			id := r.str()
			b.Ops[id] = r.bytes()
		}
	}
	if n := r.count(4); r.err == nil && n > 0 {
		b.DeltaOps = make(map[string]bool, n)
		for i := 0; i < n && r.err == nil; i++ {
			b.DeltaOps[r.str()] = true
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return b, nil
}

// SizeCkptChunk reports the exact frame size AppendCkptChunk will produce.
func SizeCkptChunk(c *CkptChunk) int {
	return 1 + sizeString(c.Slot) + 8 + 8 + 8 + 4 + sizeBytes(c.Data)
}

// AppendCkptChunk encodes a checkpoint chunk frame onto dst.
func AppendCkptChunk(dst []byte, c *CkptChunk) []byte {
	dst = appendU8(dst, byte(KindCkptChunk))
	dst = appendString(dst, c.Slot)
	dst = appendU64(dst, c.Version)
	dst = appendI64(dst, int64(c.Index))
	dst = appendI64(dst, int64(c.Total))
	dst = appendU32(dst, c.CRC)
	return appendBytes(dst, c.Data)
}

// DecodeCkptChunk decodes a checkpoint chunk frame. Data is a zero-copy
// view into the frame.
func DecodeCkptChunk(frame []byte) (CkptChunk, error) {
	r := reader{b: frame}
	r.kind(KindCkptChunk)
	var c CkptChunk
	c.Slot = r.str()
	c.Version = r.u64()
	c.Index = int(r.i64())
	c.Total = int(r.i64())
	c.CRC = r.u32()
	c.Data = r.bytes()
	return c, r.done()
}

// DecodeAny fully decodes any frame, dispatching on its kind byte. It is
// the fuzzing entry point and the generic "is this frame well-formed"
// check: every byte must be consumed, and malformed or truncated input
// returns an error — never a panic.
func DecodeAny(frame []byte) (interface{}, error) {
	switch FrameKind(frame) {
	case KindStream:
		return DecodeStream(frame)
	case KindBatch:
		return DecodeBatch(frame)
	case KindPreserve:
		return DecodePreserve(frame)
	case KindCommand:
		return DecodeCommand(frame)
	case KindReport:
		return DecodeReport(frame)
	case KindRuntime:
		return DecodeRuntime(frame)
	case KindBlob:
		return DecodeBlob(frame)
	case KindCkptChunk:
		return DecodeCkptChunk(frame)
	case KindTruncate:
		return DecodeTruncate(frame)
	case KindResend:
		return DecodeResend(frame)
	case KindFetchBlob:
		return DecodeFetchBlob(frame)
	case KindHello:
		return DecodeHello(frame)
	case KindAssign:
		return DecodeAssign(frame)
	case KindSinkOut:
		return DecodeSinkOut(frame)
	case KindSpans:
		return DecodeSpans(frame)
	case KindGossipDigest:
		return DecodeGossipDigest(frame)
	case KindGossipDelta:
		return DecodeGossipDelta(frame)
	case KindRollup:
		return DecodeRollup(frame)
	case KindXRegion:
		return DecodeXRegionEnv(frame)
	default:
		return nil, ErrMalformed
	}
}
