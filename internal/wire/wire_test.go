package wire

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/obs"
	"mobistreams/internal/tuple"
)

func sampleTuple() *tuple.Tuple {
	return &tuple.Tuple{
		Seq: 42, Source: "src", Kind: "image",
		Created: 1500 * time.Millisecond, Size: 120 << 10,
		Replay: true, Value: 3.75,
	}
}

func sampleStream() *Stream {
	return &Stream{
		FromSlot: "s1", FromOp: "src", ToSlot: "s2", ToOp: "win",
		EdgeSeq: 7, TraceID: 43, TraceSeq: 2,
		Item: tuple.DataItem(sampleTuple()),
	}
}

func sampleBatch() *Batch {
	b := &Batch{ToSlot: "s2"}
	for i := 0; i < 3; i++ {
		m := *sampleStream()
		m.EdgeSeq = uint64(i + 1)
		b.Msgs = append(b.Msgs, m)
	}
	b.Msgs = append(b.Msgs, Stream{
		FromSlot: "s1", FromOp: "src", ToSlot: "s2", ToOp: "win",
		EdgeSeq: 4,
		Item:    tuple.MarkerItem(tuple.Marker{Kind: tuple.MarkerToken, Version: 9}),
	})
	return b
}

func sampleBlob(t *testing.T) *checkpoint.Blob {
	t.Helper()
	return &checkpoint.Blob{
		Slot: "s2", Version: 5, Base: 4,
		Ops:      map[string][]byte{"win": {1, 2, 3}, "agg": {9}},
		DeltaOps: map[string]bool{"win": true, "agg": false},
		Runtime:  []byte{0xAA, 0xBB},
		Size:     321, FullSize: 654, CRC: 0xDEADBEEF,
	}
}

// frameCase is one (kind, encode, size) pair; the parity test pins the
// size estimate of every message kind against the bytes its encoder
// actually produces, so modelled accounting cannot drift from the codec.
type frameCase struct {
	name   string
	size   func() (int, error)
	encode func(dst []byte) ([]byte, error)
	decode func(frame []byte) (interface{}, error)
}

func frameCases(t *testing.T) []frameCase {
	stream := sampleStream()
	batch := sampleBatch()
	pres := &Preserve{Version: 3, Source: "src", T: sampleTuple()}
	cmd := &Command{Op: 6, Version: 11, Epoch: 2, Target: "phone-3", Slot: "s2"}
	rep := &Report{Type: 1, Phone: "phone-3", Slot: "s2", Version: 11,
		Epoch: 2, Replicas: 4, Observed: "phone-9", Err: "late"}
	rt := &Runtime{
		OutSeq:     map[string]uint64{"s2": 40, "s3": 41},
		InHW:       map[string]uint64{"s1": 39},
		LogVersion: 5,
	}
	blob := sampleBlob(t)
	chunk := &CkptChunk{Slot: "s2", Version: 5, Index: 1, Total: 4,
		CRC: 77, Data: []byte("chunk-bytes")}
	trunc := &Truncate{Downstream: "s3", Upto: 88}
	resend := &Resend{Downstream: "s3", After: 12}
	fetch := &FetchBlob{Slot: "s2", Version: 5}
	hello := &Hello{ID: "w1", Addr: "127.0.0.1:7402"}
	assign := &Assign{
		Lead: "lead", Seed: -3, Tuples: 500, TokenEvery: 100, SampleEvery: 10,
		Stages: []AssignStage{
			{Slot: "s1", Op: "pass", Host: "lead"},
			{Slot: "s2", Op: "window", Host: "w1"},
		},
		Peers: []AssignPeer{{ID: "w1", Addr: "127.0.0.1:7402"}},
	}
	sink := sampleTuple()
	digest := &GossipDigest{
		From: "r1", Reply: true, Lo: "lead", Hi: "r2",
		Entries: []DigestEntry{{Origin: "lead", Seq: 9}, {Origin: "r2", Seq: 4}},
	}
	delta := &GossipDelta{
		From: "r2",
		Msgs: []GossipMsg{
			{Origin: "lead", Seq: 8, Hops: 2, Method: "cap", Payload: []byte{1, 2, 3}},
			{Origin: "r2", Seq: 4, Hops: 0, Method: "rollup", Payload: nil},
		},
	}
	rollup := &Rollup{
		Region: "uptown", Lead: "r3", Epoch: 7,
		Phones: 16, Idle: 3, Backlog: 42, BatteryRisk: 2,
		OutTuples: 900, CtrlBytes: 12345,
	}
	env := &XRegionEnv{
		FromRegion: "busline-12", ToRegion: "downtown", Stream: "crowding",
		Seq: 77, Payload: []byte("inner-frame"),
	}
	spans := &SpanDump{
		From: "w1",
		Spans: []obs.Span{
			{Trace: 5, Seq: 0, Kind: obs.SpanIngest, Node: "w1", Slot: "s0", Op: "src", At: 1000},
			{Trace: 5, Seq: 1, Kind: obs.SpanOp, Node: "w1", Slot: "s0", Op: "pass", At: 1500},
		},
	}

	wrap := func(f func(dst []byte) []byte) func([]byte) ([]byte, error) {
		return func(dst []byte) ([]byte, error) { return f(dst), nil }
	}
	wrapSize := func(n int) func() (int, error) {
		return func() (int, error) { return n, nil }
	}
	return []frameCase{
		{"stream", func() (int, error) { return SizeStream(stream) },
			func(d []byte) ([]byte, error) { return AppendStream(d, stream) },
			func(f []byte) (interface{}, error) { return DecodeStream(f) }},
		{"batch", func() (int, error) { return SizeBatch(batch) },
			func(d []byte) ([]byte, error) { return AppendBatch(d, batch) },
			func(f []byte) (interface{}, error) { return DecodeBatch(f) }},
		{"preserve", func() (int, error) { return SizePreserve(pres) },
			func(d []byte) ([]byte, error) { return AppendPreserve(d, pres) },
			func(f []byte) (interface{}, error) { return DecodePreserve(f) }},
		{"command", wrapSize(SizeCommand(cmd)),
			wrap(func(d []byte) []byte { return AppendCommand(d, cmd) }),
			func(f []byte) (interface{}, error) { return DecodeCommand(f) }},
		{"report", wrapSize(SizeReport(rep)),
			wrap(func(d []byte) []byte { return AppendReport(d, rep) }),
			func(f []byte) (interface{}, error) { return DecodeReport(f) }},
		{"runtime", wrapSize(SizeRuntime(rt)),
			wrap(func(d []byte) []byte { return AppendRuntime(d, rt) }),
			func(f []byte) (interface{}, error) { return DecodeRuntime(f) }},
		{"blob", wrapSize(SizeBlob(blob)),
			wrap(func(d []byte) []byte { return AppendBlob(d, blob) }),
			func(f []byte) (interface{}, error) { return DecodeBlob(f) }},
		{"ckpt-chunk", wrapSize(SizeCkptChunk(chunk)),
			wrap(func(d []byte) []byte { return AppendCkptChunk(d, chunk) }),
			func(f []byte) (interface{}, error) { return DecodeCkptChunk(f) }},
		{"truncate", wrapSize(SizeTruncate(trunc)),
			wrap(func(d []byte) []byte { return AppendTruncate(d, trunc) }),
			func(f []byte) (interface{}, error) { return DecodeTruncate(f) }},
		{"resend", wrapSize(SizeResend(resend)),
			wrap(func(d []byte) []byte { return AppendResend(d, resend) }),
			func(f []byte) (interface{}, error) { return DecodeResend(f) }},
		{"fetch-blob", wrapSize(SizeFetchBlob(fetch)),
			wrap(func(d []byte) []byte { return AppendFetchBlob(d, fetch) }),
			func(f []byte) (interface{}, error) { return DecodeFetchBlob(f) }},
		{"hello", wrapSize(SizeHello(hello)),
			wrap(func(d []byte) []byte { return AppendHello(d, hello) }),
			func(f []byte) (interface{}, error) { return DecodeHello(f) }},
		{"assign", wrapSize(SizeAssign(assign)),
			wrap(func(d []byte) []byte { return AppendAssign(d, assign) }),
			func(f []byte) (interface{}, error) { return DecodeAssign(f) }},
		{"sink-out", func() (int, error) { return SizeSinkOut(sink) },
			func(d []byte) ([]byte, error) { return AppendSinkOut(d, sink) },
			func(f []byte) (interface{}, error) { return DecodeSinkOut(f) }},
		{"spans", wrapSize(SizeSpans(spans)),
			wrap(func(d []byte) []byte { return AppendSpans(d, spans) }),
			func(f []byte) (interface{}, error) { return DecodeSpans(f) }},
		{"gossip-digest", wrapSize(SizeGossipDigest(digest)),
			wrap(func(d []byte) []byte { return AppendGossipDigest(d, digest) }),
			func(f []byte) (interface{}, error) { return DecodeGossipDigest(f) }},
		{"gossip-delta", wrapSize(SizeGossipDelta(delta)),
			wrap(func(d []byte) []byte { return AppendGossipDelta(d, delta) }),
			func(f []byte) (interface{}, error) { return DecodeGossipDelta(f) }},
		{"rollup", wrapSize(SizeRollup(rollup)),
			wrap(func(d []byte) []byte { return AppendRollup(d, rollup) }),
			func(f []byte) (interface{}, error) { return DecodeRollup(f) }},
		{"xregion", wrapSize(SizeXRegionEnv(env)),
			wrap(func(d []byte) []byte { return AppendXRegionEnv(d, env) }),
			func(f []byte) (interface{}, error) { return DecodeXRegionEnv(f) }},
	}
}

// TestWireSizeParity pins the SizeX estimate of every message kind against
// the actual encoded frame bytes, so any accounting derived from estimates
// (simnet airtime, buffer presizing) cannot silently drift from the codec.
func TestWireSizeParity(t *testing.T) {
	for _, c := range frameCases(t) {
		frame, err := c.encode(nil)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.name, err)
		}
		want, err := c.size()
		if err != nil {
			t.Fatalf("%s: size: %v", c.name, err)
		}
		if want != len(frame) {
			t.Errorf("%s: Size estimate %d != encoded %d bytes", c.name, want, len(frame))
		}
	}
}

// TestRoundTripAllKinds checks every kind decodes (via its own decoder and
// DecodeAny) without error, consuming the whole frame.
func TestRoundTripAllKinds(t *testing.T) {
	for _, c := range frameCases(t) {
		frame, err := c.encode(nil)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.name, err)
		}
		if _, err := c.decode(frame); err != nil {
			t.Errorf("%s: decode: %v", c.name, err)
		}
		if _, err := DecodeAny(frame); err != nil {
			t.Errorf("%s: DecodeAny: %v", c.name, err)
		}
		// Any truncation of a valid frame must error, never panic.
		for cut := 0; cut < len(frame); cut++ {
			if _, err := DecodeAny(frame[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d decoded without error", c.name, cut, len(frame))
			}
		}
		// Trailing garbage must be rejected too.
		if _, err := DecodeAny(append(append([]byte(nil), frame...), 0)); err == nil {
			t.Errorf("%s: trailing byte accepted", c.name)
		}
	}
}

func TestStreamRoundTripValues(t *testing.T) {
	in := sampleStream()
	frame, err := AppendStream(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeStream(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out.FromSlot != in.FromSlot || out.ToOp != in.ToOp || out.EdgeSeq != in.EdgeSeq {
		t.Fatalf("header mismatch: %+v", out)
	}
	got, want := out.Item.Tuple, in.Item.Tuple
	if got == nil || *got != *want {
		t.Fatalf("tuple mismatch: got %+v want %+v", got, want)
	}
}

func TestValueRoundTrip(t *testing.T) {
	cases := []struct {
		in   interface{}
		want interface{}
	}{
		{nil, nil},
		{true, true},
		{false, false},
		{int(-7), int64(-7)},
		{int32(5), int64(5)},
		{int64(1 << 40), int64(1 << 40)},
		{uint(9), uint64(9)},
		{uint64(1 << 50), uint64(1 << 50)},
		{3.5, 3.5},
		{"hello", "hello"},
		{[]byte{1, 2, 3}, []byte{1, 2, 3}},
	}
	for _, c := range cases {
		tp := sampleTuple()
		tp.Value = c.in
		frame, err := AppendSinkOut(nil, tp)
		if err != nil {
			t.Fatalf("%T: %v", c.in, err)
		}
		out, err := DecodeSinkOut(frame)
		if err != nil {
			t.Fatalf("%T: %v", c.in, err)
		}
		if !reflect.DeepEqual(out.Value, c.want) {
			t.Errorf("%T: got %v (%T), want %v (%T)", c.in, out.Value, out.Value, c.want, c.want)
		}
	}
	// Unsupported payloads must fail encode, not corrupt the frame.
	tp := sampleTuple()
	tp.Value = struct{ X int }{1}
	if _, err := AppendSinkOut(nil, tp); err == nil {
		t.Fatal("struct payload encoded without error")
	}
}

// TestDeterministicEncode re-encodes map-backed structures many times; the
// bytes must never vary, because checkpoint blob parity across transport
// backends is asserted as byte equality.
func TestDeterministicEncode(t *testing.T) {
	rt := &Runtime{
		OutSeq:     map[string]uint64{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5},
		InHW:       map[string]uint64{"x": 7, "y": 8, "z": 9},
		LogVersion: 3,
	}
	blob := sampleBlob(t)
	first := AppendRuntime(nil, rt)
	firstBlob := AppendBlob(nil, blob)
	for i := 0; i < 50; i++ {
		if got := AppendRuntime(nil, rt); !bytes.Equal(got, first) {
			t.Fatal("runtime encoding varied across runs")
		}
		if got := AppendBlob(nil, blob); !bytes.Equal(got, firstBlob) {
			t.Fatal("blob encoding varied across runs")
		}
	}
}

func TestRuntimeRoundTrip(t *testing.T) {
	rt := &Runtime{
		OutSeq:     map[string]uint64{"s2": 40, "s3": 41},
		InHW:       map[string]uint64{"s1": 39},
		LogVersion: 5,
	}
	out, err := DecodeRuntime(AppendRuntime(nil, rt))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.OutSeq, rt.OutSeq) || !reflect.DeepEqual(out.InHW, rt.InHW) || out.LogVersion != rt.LogVersion {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	// Empty maps decode non-nil, matching fresh node runtime state.
	out, err = DecodeRuntime(AppendRuntime(nil, &Runtime{}))
	if err != nil {
		t.Fatal(err)
	}
	if out.OutSeq == nil || out.InHW == nil {
		t.Fatal("empty runtime decoded with nil maps")
	}
}

func TestBlobRoundTrip(t *testing.T) {
	in := sampleBlob(t)
	out, err := DecodeBlob(AppendBlob(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Slot != in.Slot || out.Version != in.Version || out.Base != in.Base ||
		out.Size != in.Size || out.FullSize != in.FullSize || out.CRC != in.CRC {
		t.Fatalf("header mismatch: %+v", out)
	}
	if !reflect.DeepEqual(out.Ops, in.Ops) {
		t.Fatalf("ops mismatch: %v", out.Ops)
	}
	// Only true markers survive the wire; that is all MaterializeChain reads.
	if !out.DeltaOps["win"] || out.DeltaOps["agg"] {
		t.Fatalf("delta markers mismatch: %v", out.DeltaOps)
	}
	if !bytes.Equal(out.Runtime, in.Runtime) {
		t.Fatalf("runtime mismatch: %x", out.Runtime)
	}
}

// TestBlobRealParity encodes a blob built by the real checkpoint builder
// and verifies the decoded copy still passes CRC verification — the
// wire format preserves exactly the bytes the CRC covers.
func TestBlobRealParity(t *testing.T) {
	blob, err := checkpoint.BuildBlob("s1", 3, nil, AppendRuntime(nil, &Runtime{
		OutSeq: map[string]uint64{"s2": 10}, InHW: map[string]uint64{}, LogVersion: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBlob(AppendBlob(nil, blob))
	if err != nil {
		t.Fatal(err)
	}
	if !out.VerifyCRC() {
		t.Fatal("decoded blob failed CRC verification")
	}
	if !bytes.Equal(AppendBlob(nil, out), AppendBlob(nil, blob)) {
		t.Fatal("re-encoded blob differs from original encoding")
	}
}

// TestEncodeZeroAlloc pins the hot-path encoders at zero allocations per
// op once the destination buffer has grown to capacity.
func TestEncodeZeroAlloc(t *testing.T) {
	stream := sampleStream()
	batch := sampleBatch()
	buf := make([]byte, 0, 1<<16)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf = buf[:0]
		if buf, err = AppendStream(buf, stream); err != nil {
			t.Fatal(err)
		}
		buf = buf[:0]
		if buf, err = AppendBatch(buf, batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encode allocated %.1f/op, want 0", allocs)
	}
}

// TestGossipRoundTripValues pins field-level fidelity for the federation
// kinds: digests and deltas survive intact (payloads as views), rollups and
// envelopes carry every counter through.
func TestGossipRoundTripValues(t *testing.T) {
	d := GossipDelta{From: "r2", Msgs: []GossipMsg{
		{Origin: "lead", Seq: 8, Hops: 3, Method: "cap", Payload: []byte{1, 2}},
		{Origin: "r9", Seq: 1, Hops: 0, Method: "member", Payload: nil},
	}}
	got, err := DecodeGossipDelta(AppendGossipDelta(nil, &d))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != d.From || len(got.Msgs) != 2 {
		t.Fatalf("delta header mismatch: %+v", got)
	}
	m := got.Msgs[0]
	if m.Origin != "lead" || m.Seq != 8 || m.Hops != 3 || m.Method != "cap" || !bytes.Equal(m.Payload, []byte{1, 2}) {
		t.Fatalf("delta msg mismatch: %+v", m)
	}
	if got.Msgs[1].Method != "member" || len(got.Msgs[1].Payload) != 0 {
		t.Fatalf("empty-payload msg mismatch: %+v", got.Msgs[1])
	}

	dg := GossipDigest{From: "r1", Lo: "a", Hi: "m", Entries: []DigestEntry{{Origin: "a", Seq: 1}}}
	gotDg, err := DecodeGossipDigest(AppendGossipDigest(nil, &dg))
	if err != nil {
		t.Fatal(err)
	}
	if gotDg.Reply || gotDg.Entries[0].Origin != "a" || gotDg.Entries[0].Seq != 1 {
		t.Fatalf("digest mismatch: %+v", gotDg)
	}
	if gotDg.Lo != "a" || gotDg.Hi != "m" {
		t.Fatalf("digest window mismatch: %+v", gotDg)
	}
	if !gotDg.Covers("a") || !gotDg.Covers("lz") || gotDg.Covers("m") || gotDg.Covers("A") {
		t.Fatal("digest window coverage wrong (half-open [Lo,Hi))")
	}
	full := GossipDigest{From: "r1"}
	if !full.Covers("anything") || !full.Covers("") {
		t.Fatal("unbounded digest must cover every origin")
	}

	ru := Rollup{Region: "uptown", Lead: "r3", Epoch: 7, Phones: 16, Idle: 3,
		Backlog: 42, BatteryRisk: 2, OutTuples: 900, CtrlBytes: 12345}
	gotRu, err := DecodeRollup(AppendRollup(nil, &ru))
	if err != nil {
		t.Fatal(err)
	}
	if gotRu != ru {
		t.Fatalf("rollup mismatch: got %+v want %+v", gotRu, ru)
	}

	env := XRegionEnv{FromRegion: "busline-12", ToRegion: "downtown",
		Stream: "crowding", Seq: 77, Payload: []byte("inner")}
	gotEnv, err := DecodeXRegionEnv(AppendXRegionEnv(nil, &env))
	if err != nil {
		t.Fatal(err)
	}
	if gotEnv.FromRegion != env.FromRegion || gotEnv.ToRegion != env.ToRegion ||
		gotEnv.Stream != env.Stream || gotEnv.Seq != env.Seq ||
		!bytes.Equal(gotEnv.Payload, env.Payload) {
		t.Fatalf("envelope mismatch: %+v", gotEnv)
	}
}

func TestFrameKind(t *testing.T) {
	if FrameKind(nil) != KindInvalid {
		t.Fatal("empty frame has a kind")
	}
	if FrameKind([]byte{0xFE}) != KindInvalid {
		t.Fatal("unknown kind byte accepted")
	}
	frame, _ := AppendStream(nil, sampleStream())
	if FrameKind(frame) != KindStream {
		t.Fatal("stream frame misidentified")
	}
	if got := fmt.Sprint(KindStream); got != "stream" {
		t.Fatalf("kind name: %q", got)
	}
}
