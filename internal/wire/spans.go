package wire

import (
	"mobistreams/internal/obs"
	"mobistreams/internal/simnet"
)

// SpanDump is a worker's recorded trace spans, shipped to the region
// lead so it can reconstruct cross-process waterfalls.
type SpanDump struct {
	From  simnet.NodeID
	Spans []obs.Span
}

// spanMin is the minimum encoded size of one span (trace id, span seq,
// kind, three empty strings, timestamp); decoders use it to bound
// hostile counts.
const spanMin = 8 + 4 + 1 + 3*4 + 8

// SizeSpans reports the exact frame size AppendSpans will produce.
func SizeSpans(d *SpanDump) int {
	total := 1 + sizeString(string(d.From)) + 4
	for i := range d.Spans {
		s := &d.Spans[i]
		total += 8 + 4 + 1 + sizeString(s.Node) + sizeString(s.Slot) +
			sizeString(s.Op) + 8
	}
	return total
}

// AppendSpans encodes a span dump frame onto dst.
func AppendSpans(dst []byte, d *SpanDump) []byte {
	dst = appendU8(dst, byte(KindSpans))
	dst = appendString(dst, string(d.From))
	dst = appendU32(dst, uint32(len(d.Spans)))
	for i := range d.Spans {
		s := &d.Spans[i]
		dst = appendU64(dst, s.Trace)
		dst = appendU32(dst, s.Seq)
		dst = appendU8(dst, byte(s.Kind))
		dst = appendString(dst, s.Node)
		dst = appendString(dst, s.Slot)
		dst = appendString(dst, s.Op)
		dst = appendI64(dst, s.At)
	}
	return dst
}

// DecodeSpans decodes a span dump frame.
func DecodeSpans(frame []byte) (SpanDump, error) {
	r := reader{b: frame}
	r.kind(KindSpans)
	var d SpanDump
	d.From = simnet.NodeID(r.str())
	if n := r.count(spanMin); r.err == nil && n > 0 {
		d.Spans = make([]obs.Span, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			d.Spans = append(d.Spans, obs.Span{
				Trace: r.u64(),
				Seq:   r.u32(),
				Kind:  obs.SpanKind(r.u8()),
				Node:  r.str(),
				Slot:  r.str(),
				Op:    r.str(),
				At:    r.i64(),
			})
		}
	}
	return d, r.done()
}
