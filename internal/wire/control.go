package wire

import (
	"mobistreams/internal/simnet"
)

// Command is the wire form of a controller-to-node command. Op mirrors
// node.CommandOp values.
type Command struct {
	Op      uint8
	Version uint64
	Epoch   uint64
	Target  simnet.NodeID
	Slot    string
}

// Report is the wire form of a node-to-controller report. Type mirrors
// node.ReportType values.
type Report struct {
	Type     uint8
	Phone    simnet.NodeID
	Slot     string
	Version  uint64
	Epoch    uint64
	Replicas int
	Observed simnet.NodeID
	Err      string
}

// Truncate is the wire form of a retained-output truncation notice.
type Truncate struct {
	Downstream string
	Upto       uint64
}

// Resend is the wire form of an upstream resend request.
type Resend struct {
	Downstream string
	After      uint64
}

// FetchBlob is the wire form of a peer blob fetch request.
type FetchBlob struct {
	Slot    string
	Version uint64
}

// Hello is the socket-transport handshake: the first frame on every
// connection, identifying the dialing peer and the address its own
// listener is reachable at.
type Hello struct {
	ID   simnet.NodeID
	Addr string
}

// Assign is the lead-to-worker region assignment: the workload parameters,
// the stage chain with its slot-to-node placement, and the peer address
// book workers need to dial each other.
type Assign struct {
	Lead       simnet.NodeID
	Seed       int64
	Tuples     int
	TokenEvery int
	// SampleEvery enables tuple tracing on the workers: every n-th
	// source tuple is traced (0 = off). Carried in the assignment so
	// every process in the region samples the same tuples.
	SampleEvery int
	Stages      []AssignStage
	Peers       []AssignPeer
}

// AssignStage places one pipeline stage: the slot name, the operator the
// stage runs, and the node hosting it.
type AssignStage struct {
	Slot string
	Op   string
	Host simnet.NodeID
}

// AssignPeer is one address book entry.
type AssignPeer struct {
	ID   simnet.NodeID
	Addr string
}

// SizeCommand reports the exact frame size AppendCommand will produce.
func SizeCommand(c *Command) int {
	return 1 + 1 + 8 + 8 + sizeString(string(c.Target)) + sizeString(c.Slot)
}

// AppendCommand encodes a command frame onto dst.
func AppendCommand(dst []byte, c *Command) []byte {
	dst = appendU8(dst, byte(KindCommand))
	dst = appendU8(dst, c.Op)
	dst = appendU64(dst, c.Version)
	dst = appendU64(dst, c.Epoch)
	dst = appendString(dst, string(c.Target))
	return appendString(dst, c.Slot)
}

// DecodeCommand decodes a command frame.
func DecodeCommand(frame []byte) (Command, error) {
	r := reader{b: frame}
	r.kind(KindCommand)
	var c Command
	c.Op = r.u8()
	c.Version = r.u64()
	c.Epoch = r.u64()
	c.Target = simnet.NodeID(r.str())
	c.Slot = r.str()
	return c, r.done()
}

// SizeReport reports the exact frame size AppendReport will produce.
func SizeReport(rp *Report) int {
	return 1 + 1 + sizeString(string(rp.Phone)) + sizeString(rp.Slot) +
		8 + 8 + 8 + sizeString(string(rp.Observed)) + sizeString(rp.Err)
}

// AppendReport encodes a report frame onto dst.
func AppendReport(dst []byte, rp *Report) []byte {
	dst = appendU8(dst, byte(KindReport))
	dst = appendU8(dst, rp.Type)
	dst = appendString(dst, string(rp.Phone))
	dst = appendString(dst, rp.Slot)
	dst = appendU64(dst, rp.Version)
	dst = appendU64(dst, rp.Epoch)
	dst = appendI64(dst, int64(rp.Replicas))
	dst = appendString(dst, string(rp.Observed))
	return appendString(dst, rp.Err)
}

// DecodeReport decodes a report frame.
func DecodeReport(frame []byte) (Report, error) {
	r := reader{b: frame}
	r.kind(KindReport)
	var rp Report
	rp.Type = r.u8()
	rp.Phone = simnet.NodeID(r.str())
	rp.Slot = r.str()
	rp.Version = r.u64()
	rp.Epoch = r.u64()
	rp.Replicas = int(r.i64())
	rp.Observed = simnet.NodeID(r.str())
	rp.Err = r.str()
	return rp, r.done()
}

// SizeTruncate reports the exact frame size AppendTruncate will produce.
func SizeTruncate(t *Truncate) int { return 1 + sizeString(t.Downstream) + 8 }

// AppendTruncate encodes a truncation frame onto dst.
func AppendTruncate(dst []byte, t *Truncate) []byte {
	dst = appendU8(dst, byte(KindTruncate))
	dst = appendString(dst, t.Downstream)
	return appendU64(dst, t.Upto)
}

// DecodeTruncate decodes a truncation frame.
func DecodeTruncate(frame []byte) (Truncate, error) {
	r := reader{b: frame}
	r.kind(KindTruncate)
	var t Truncate
	t.Downstream = r.str()
	t.Upto = r.u64()
	return t, r.done()
}

// SizeResend reports the exact frame size AppendResend will produce.
func SizeResend(m *Resend) int { return 1 + sizeString(m.Downstream) + 8 }

// AppendResend encodes a resend request frame onto dst.
func AppendResend(dst []byte, m *Resend) []byte {
	dst = appendU8(dst, byte(KindResend))
	dst = appendString(dst, m.Downstream)
	return appendU64(dst, m.After)
}

// DecodeResend decodes a resend request frame.
func DecodeResend(frame []byte) (Resend, error) {
	r := reader{b: frame}
	r.kind(KindResend)
	var m Resend
	m.Downstream = r.str()
	m.After = r.u64()
	return m, r.done()
}

// SizeFetchBlob reports the exact frame size AppendFetchBlob will produce.
func SizeFetchBlob(m *FetchBlob) int { return 1 + sizeString(m.Slot) + 8 }

// AppendFetchBlob encodes a blob fetch request frame onto dst.
func AppendFetchBlob(dst []byte, m *FetchBlob) []byte {
	dst = appendU8(dst, byte(KindFetchBlob))
	dst = appendString(dst, m.Slot)
	return appendU64(dst, m.Version)
}

// DecodeFetchBlob decodes a blob fetch request frame.
func DecodeFetchBlob(frame []byte) (FetchBlob, error) {
	r := reader{b: frame}
	r.kind(KindFetchBlob)
	var m FetchBlob
	m.Slot = r.str()
	m.Version = r.u64()
	return m, r.done()
}

// SizeHello reports the exact frame size AppendHello will produce.
func SizeHello(h *Hello) int {
	return 1 + sizeString(string(h.ID)) + sizeString(h.Addr)
}

// AppendHello encodes a handshake frame onto dst.
func AppendHello(dst []byte, h *Hello) []byte {
	dst = appendU8(dst, byte(KindHello))
	dst = appendString(dst, string(h.ID))
	return appendString(dst, h.Addr)
}

// DecodeHello decodes a handshake frame.
func DecodeHello(frame []byte) (Hello, error) {
	r := reader{b: frame}
	r.kind(KindHello)
	var h Hello
	h.ID = simnet.NodeID(r.str())
	h.Addr = r.str()
	return h, r.done()
}

// SizeAssign reports the exact frame size AppendAssign will produce.
func SizeAssign(a *Assign) int {
	total := 1 + sizeString(string(a.Lead)) + 8 + 8 + 8 + 8 + 4 + 4
	for i := range a.Stages {
		s := &a.Stages[i]
		total += sizeString(s.Slot) + sizeString(s.Op) + sizeString(string(s.Host))
	}
	for i := range a.Peers {
		p := &a.Peers[i]
		total += sizeString(string(p.ID)) + sizeString(p.Addr)
	}
	return total
}

// AppendAssign encodes an assignment frame onto dst.
func AppendAssign(dst []byte, a *Assign) []byte {
	dst = appendU8(dst, byte(KindAssign))
	dst = appendString(dst, string(a.Lead))
	dst = appendI64(dst, a.Seed)
	dst = appendI64(dst, int64(a.Tuples))
	dst = appendI64(dst, int64(a.TokenEvery))
	dst = appendI64(dst, int64(a.SampleEvery))
	dst = appendU32(dst, uint32(len(a.Stages)))
	for i := range a.Stages {
		s := &a.Stages[i]
		dst = appendString(dst, s.Slot)
		dst = appendString(dst, s.Op)
		dst = appendString(dst, string(s.Host))
	}
	dst = appendU32(dst, uint32(len(a.Peers)))
	for i := range a.Peers {
		p := &a.Peers[i]
		dst = appendString(dst, string(p.ID))
		dst = appendString(dst, p.Addr)
	}
	return dst
}

// DecodeAssign decodes an assignment frame.
func DecodeAssign(frame []byte) (Assign, error) {
	r := reader{b: frame}
	r.kind(KindAssign)
	var a Assign
	a.Lead = simnet.NodeID(r.str())
	a.Seed = r.i64()
	a.Tuples = int(r.i64())
	a.TokenEvery = int(r.i64())
	a.SampleEvery = int(r.i64())
	if n := r.count(3 * 4); r.err == nil && n > 0 {
		a.Stages = make([]AssignStage, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			a.Stages = append(a.Stages, AssignStage{
				Slot: r.str(), Op: r.str(), Host: simnet.NodeID(r.str()),
			})
		}
	}
	if n := r.count(2 * 4); r.err == nil && n > 0 {
		a.Peers = make([]AssignPeer, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			a.Peers = append(a.Peers, AssignPeer{
				ID: simnet.NodeID(r.str()), Addr: r.str(),
			})
		}
	}
	return a, r.done()
}
