package wire

import (
	"fmt"
	"time"

	"mobistreams/internal/tuple"
)

// Stream is the wire form of a data-plane stream message: one tuple or
// marker on a slot-to-slot edge. TraceID/TraceSeq carry the sampled
// tracing context across processes; both zero means untraced (the
// overwhelmingly common case — the fields are fixed-width so the frame
// layout stays deterministic either way).
type Stream struct {
	FromSlot string
	FromOp   string
	ToSlot   string
	ToOp     string
	EdgeSeq  uint64
	TraceID  uint64
	TraceSeq uint32
	Item     tuple.Item
}

// Batch is the wire form of a coalesced stream batch bound for one slot.
type Batch struct {
	ToSlot string
	Msgs   []Stream
}

// Preserve is the wire form of a source-preservation replica.
type Preserve struct {
	Version uint64
	Source  string
	T       *tuple.Tuple
}

// ---- typed tuple values -------------------------------------------------

// Value payload tags. Tuple.Value is interface{}; on the wire it must be
// one of a closed set of primitive types. Encoding any other type is an
// error — callers putting rich in-memory payloads on tuples must serialise
// them to []byte first.
const (
	valNil byte = iota
	valFalse
	valTrue
	valInt
	valUint
	valFloat
	valString
	valBytes
)

// SizeValue reports the encoded size of a tuple value, or an error for an
// unsupported payload type.
func SizeValue(v interface{}) (int, error) {
	switch v := v.(type) {
	case nil, bool:
		return 1, nil
	case int, int32, int64, uint, uint32, uint64, float64:
		return 1 + 8, nil
	case string:
		return 1 + sizeString(v), nil
	case []byte:
		return 1 + sizeBytes(v), nil
	default:
		return 0, fmt.Errorf("%w: unsupported tuple value type %T", ErrMalformed, v)
	}
}

func appendValue(dst []byte, v interface{}) ([]byte, error) {
	switch v := v.(type) {
	case nil:
		return appendU8(dst, valNil), nil
	case bool:
		if v {
			return appendU8(dst, valTrue), nil
		}
		return appendU8(dst, valFalse), nil
	case int:
		return appendI64(appendU8(dst, valInt), int64(v)), nil
	case int32:
		return appendI64(appendU8(dst, valInt), int64(v)), nil
	case int64:
		return appendI64(appendU8(dst, valInt), v), nil
	case uint:
		return appendU64(appendU8(dst, valUint), uint64(v)), nil
	case uint32:
		return appendU64(appendU8(dst, valUint), uint64(v)), nil
	case uint64:
		return appendU64(appendU8(dst, valUint), v), nil
	case float64:
		return appendF64(appendU8(dst, valFloat), v), nil
	case string:
		return appendString(appendU8(dst, valString), v), nil
	case []byte:
		return appendBytes(appendU8(dst, valBytes), v), nil
	default:
		return dst, fmt.Errorf("%w: unsupported tuple value type %T", ErrMalformed, v)
	}
}

// decodeValue reads a tagged value. Integer payloads decode as int64 or
// uint64 regardless of the width they were encoded from; []byte payloads
// are zero-copy views into the frame.
func decodeValue(r *reader) interface{} {
	switch tag := r.u8(); tag {
	case valNil:
		return nil
	case valFalse:
		return false
	case valTrue:
		return true
	case valInt:
		return r.i64()
	case valUint:
		return r.u64()
	case valFloat:
		return r.f64()
	case valString:
		return r.str()
	case valBytes:
		return r.bytes()
	default:
		r.off--
		r.fail(ErrMalformed, "value tag")
		return nil
	}
}

// ---- tuples, markers, items ---------------------------------------------

func sizeTuple(t *tuple.Tuple) (int, error) {
	vs, err := SizeValue(t.Value)
	if err != nil {
		return 0, err
	}
	return 8 + sizeString(t.Source) + sizeString(t.Kind) + 8 + 8 + 1 + vs, nil
}

func appendTuple(dst []byte, t *tuple.Tuple) ([]byte, error) {
	dst = appendU64(dst, t.Seq)
	dst = appendString(dst, t.Source)
	dst = appendString(dst, t.Kind)
	dst = appendI64(dst, int64(t.Created))
	dst = appendI64(dst, int64(t.Size))
	dst = appendBool(dst, t.Replay)
	return appendValue(dst, t.Value)
}

func decodeTuple(r *reader) *tuple.Tuple {
	t := &tuple.Tuple{}
	t.Seq = r.u64()
	t.Source = r.str()
	t.Kind = r.str()
	t.Created = time.Duration(r.i64())
	t.Size = int(r.i64())
	t.Replay = r.boolean()
	t.Value = decodeValue(r)
	if r.err != nil {
		return nil
	}
	return t
}

const sizeMarker = 1 + 8

func appendMarker(dst []byte, m *tuple.Marker) []byte {
	dst = appendU8(dst, byte(m.Kind))
	return appendU64(dst, m.Version)
}

func decodeMarker(r *reader) *tuple.Marker {
	m := &tuple.Marker{}
	m.Kind = tuple.MarkerKind(r.u8())
	m.Version = r.u64()
	if r.err != nil {
		return nil
	}
	return m
}

const (
	itemTuple  byte = 0
	itemMarker byte = 1
)

// SizeItem reports the encoded size of a stream item.
func SizeItem(it tuple.Item) (int, error) {
	if it.Tuple != nil {
		ts, err := sizeTuple(it.Tuple)
		return 1 + ts, err
	}
	if it.Marker != nil {
		return 1 + sizeMarker, nil
	}
	return 0, fmt.Errorf("%w: empty item (no tuple, no marker)", ErrMalformed)
}

// AppendItem encodes a stream item (exactly one of tuple or marker).
func AppendItem(dst []byte, it tuple.Item) ([]byte, error) {
	if it.Tuple != nil {
		return appendTuple(appendU8(dst, itemTuple), it.Tuple)
	}
	if it.Marker != nil {
		return appendMarker(appendU8(dst, itemMarker), it.Marker), nil
	}
	return dst, fmt.Errorf("%w: empty item (no tuple, no marker)", ErrMalformed)
}

func decodeItem(r *reader) tuple.Item {
	switch flag := r.u8(); flag {
	case itemTuple:
		return tuple.Item{Tuple: decodeTuple(r)}
	case itemMarker:
		return tuple.Item{Marker: decodeMarker(r)}
	default:
		r.off--
		r.fail(ErrMalformed, "item flag")
		return tuple.Item{}
	}
}

// ---- stream messages ----------------------------------------------------

// SizeStream reports the exact frame size AppendStream will produce.
func SizeStream(m *Stream) (int, error) {
	is, err := SizeItem(m.Item)
	if err != nil {
		return 0, err
	}
	return 1 + sizeString(m.FromSlot) + sizeString(m.FromOp) +
		sizeString(m.ToSlot) + sizeString(m.ToOp) + 8 + 8 + 4 + is, nil
}

// AppendStream encodes a stream message frame onto dst.
func AppendStream(dst []byte, m *Stream) ([]byte, error) {
	dst = appendU8(dst, byte(KindStream))
	dst = appendStreamBody(dst, m)
	return appendItemChecked(dst, m.Item)
}

func appendStreamBody(dst []byte, m *Stream) []byte {
	dst = appendString(dst, m.FromSlot)
	dst = appendString(dst, m.FromOp)
	dst = appendString(dst, m.ToSlot)
	dst = appendString(dst, m.ToOp)
	dst = appendU64(dst, m.EdgeSeq)
	dst = appendU64(dst, m.TraceID)
	return appendU32(dst, m.TraceSeq)
}

func appendItemChecked(dst []byte, it tuple.Item) ([]byte, error) {
	out, err := AppendItem(dst, it)
	if err != nil {
		return dst, err
	}
	return out, nil
}

// DecodeStream decodes a stream message frame.
func DecodeStream(frame []byte) (Stream, error) {
	r := reader{b: frame}
	r.kind(KindStream)
	m := decodeStreamBody(&r)
	return m, r.done()
}

func decodeStreamBody(r *reader) Stream {
	var m Stream
	m.FromSlot = r.str()
	m.FromOp = r.str()
	m.ToSlot = r.str()
	m.ToOp = r.str()
	m.EdgeSeq = r.u64()
	m.TraceID = r.u64()
	m.TraceSeq = r.u32()
	m.Item = decodeItem(r)
	return m
}

// streamBodyMin is the minimum encoded size of one batched stream message
// (four empty strings, the edge sequence, the trace id+seq, an item flag
// and a marker body); batch decoders use it to bound hostile counts.
const streamBodyMin = 4*4 + 8 + 8 + 4 + 1 + sizeMarker

// SizeBatch reports the exact frame size AppendBatch will produce.
func SizeBatch(b *Batch) (int, error) {
	total := 1 + sizeString(b.ToSlot) + 4
	for i := range b.Msgs {
		is, err := SizeItem(b.Msgs[i].Item)
		if err != nil {
			return 0, err
		}
		m := &b.Msgs[i]
		total += sizeString(m.FromSlot) + sizeString(m.FromOp) +
			sizeString(m.ToSlot) + sizeString(m.ToOp) + 8 + 8 + 4 + is
	}
	return total, nil
}

// AppendBatch encodes a batch frame onto dst.
func AppendBatch(dst []byte, b *Batch) ([]byte, error) {
	dst = appendU8(dst, byte(KindBatch))
	dst = appendString(dst, b.ToSlot)
	dst = appendU32(dst, uint32(len(b.Msgs)))
	var err error
	for i := range b.Msgs {
		dst = appendStreamBody(dst, &b.Msgs[i])
		dst, err = AppendItem(dst, b.Msgs[i].Item)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodeBatch decodes a batch frame.
func DecodeBatch(frame []byte) (Batch, error) {
	r := reader{b: frame}
	r.kind(KindBatch)
	var b Batch
	b.ToSlot = r.str()
	n := r.count(streamBodyMin)
	if r.err == nil && n > 0 {
		b.Msgs = make([]Stream, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			b.Msgs = append(b.Msgs, decodeStreamBody(&r))
		}
	}
	return b, r.done()
}

// ---- preservation and sink output ---------------------------------------

// SizePreserve reports the exact frame size AppendPreserve will produce.
func SizePreserve(p *Preserve) (int, error) {
	if p.T == nil {
		return 0, fmt.Errorf("%w: preserve without tuple", ErrMalformed)
	}
	ts, err := sizeTuple(p.T)
	if err != nil {
		return 0, err
	}
	return 1 + 8 + sizeString(p.Source) + ts, nil
}

// AppendPreserve encodes a source-preservation frame onto dst.
func AppendPreserve(dst []byte, p *Preserve) ([]byte, error) {
	if p.T == nil {
		return dst, fmt.Errorf("%w: preserve without tuple", ErrMalformed)
	}
	dst = appendU8(dst, byte(KindPreserve))
	dst = appendU64(dst, p.Version)
	dst = appendString(dst, p.Source)
	return appendTuple(dst, p.T)
}

// DecodePreserve decodes a source-preservation frame.
func DecodePreserve(frame []byte) (Preserve, error) {
	r := reader{b: frame}
	r.kind(KindPreserve)
	var p Preserve
	p.Version = r.u64()
	p.Source = r.str()
	p.T = decodeTuple(&r)
	return p, r.done()
}

// SizeSinkOut reports the exact frame size AppendSinkOut will produce.
func SizeSinkOut(t *tuple.Tuple) (int, error) {
	if t == nil {
		return 0, fmt.Errorf("%w: sink-out without tuple", ErrMalformed)
	}
	ts, err := sizeTuple(t)
	if err != nil {
		return 0, err
	}
	return 1 + ts, nil
}

// AppendSinkOut encodes a sink output tuple frame onto dst.
func AppendSinkOut(dst []byte, t *tuple.Tuple) ([]byte, error) {
	if t == nil {
		return dst, fmt.Errorf("%w: sink-out without tuple", ErrMalformed)
	}
	return appendTuple(appendU8(dst, byte(KindSinkOut)), t)
}

// DecodeSinkOut decodes a sink output tuple frame.
func DecodeSinkOut(frame []byte) (*tuple.Tuple, error) {
	r := reader{b: frame}
	r.kind(KindSinkOut)
	t := decodeTuple(&r)
	if err := r.done(); err != nil {
		return nil, err
	}
	return t, nil
}
