// Package wire is the deterministic binary wire format for everything that
// crosses a transport: stream tuples and markers, batches, controller
// commands and node reports, checkpoint runtime state, blobs and chunks.
//
// The codec is built for two properties the rest of the system leans on:
//
//   - Deterministic encode. The same logical message always encodes to the
//     same bytes — map-backed structures (runtime counters, blob operator
//     entries) are written in sorted key order, and every integer is
//     fixed-width big-endian. Checkpoint blob parity across transport
//     backends (simnet vs real sockets) reduces to byte equality.
//
//   - Zero-alloc encode, zero-copy decode views. Every AppendX encoder
//     appends to a caller-owned buffer and allocates nothing when capacity
//     suffices; every SizeX reports the exact encoded size so callers can
//     presize. Decoders are bounds-checked cursors over the input frame:
//     []byte fields are returned as views into the frame (valid only while
//     the frame is), and malformed or truncated input yields an error —
//     never a panic or an over-read.
//
// A frame is one kind byte followed by the kind-specific body. DecodeAny
// dispatches on the kind and fully validates the body, including rejecting
// trailing bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Kind tags a frame with its message type.
type Kind byte

const (
	// KindInvalid is the zero Kind; no frame uses it.
	KindInvalid Kind = iota
	// KindStream is one data-plane stream message (tuple or marker).
	KindStream
	// KindBatch is a coalesced batch of stream messages for one slot.
	KindBatch
	// KindPreserve is a source-preservation replica of one admitted tuple.
	KindPreserve
	// KindCommand is a controller-to-node command.
	KindCommand
	// KindReport is a node-to-controller report.
	KindReport
	// KindRuntime is a node's checkpoint runtime state (edge counters).
	KindRuntime
	// KindBlob is a whole checkpoint blob.
	KindBlob
	// KindCkptChunk is one chunk of a chunked checkpoint blob upload.
	KindCkptChunk
	// KindTruncate is an upstream retained-output truncation notice.
	KindTruncate
	// KindResend is an upstream resend request.
	KindResend
	// KindFetchBlob is a peer blob fetch request.
	KindFetchBlob
	// KindHello is the socket-transport peer handshake.
	KindHello
	// KindAssign is the lead-to-worker region assignment.
	KindAssign
	// KindSinkOut is one sink output tuple forwarded to the region lead.
	KindSinkOut
	// KindSpans is a worker's batch of recorded trace spans, shipped to
	// the region lead when the run winds down.
	KindSpans
	// KindGossipDigest is the gossip layer's push-pull anti-entropy
	// summary: per-origin delivered high-water marks.
	KindGossipDigest
	// KindGossipDelta is a batch of gossip messages: an eager-push
	// forward, a graft response, or an anti-entropy repair.
	KindGossipDelta
	// KindRollup is one region's aggregate telemetry rollup (or the
	// federation lead's fleet aggregate broadcast back out).
	KindRollup
	// KindXRegion is the cross-region tuple envelope carried over the
	// cellular backhaul between region agents.
	KindXRegion

	numKinds
)

var kindNames = [...]string{"invalid", "stream", "batch", "preserve",
	"command", "report", "runtime", "blob", "ckpt-chunk", "truncate",
	"resend", "fetch-blob", "hello", "assign", "sink-out", "spans",
	"gossip-digest", "gossip-delta", "rollup", "xregion"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrTruncated is wrapped by decode errors caused by frames shorter than
// their declared contents.
var ErrTruncated = errors.New("wire: truncated frame")

// ErrMalformed is wrapped by decode errors caused by structurally invalid
// frames (bad kind, bad tag, trailing bytes, oversized counts).
var ErrMalformed = errors.New("wire: malformed frame")

// FrameKind peeks at a frame's kind byte without decoding the body.
func FrameKind(frame []byte) Kind {
	if len(frame) == 0 {
		return KindInvalid
	}
	k := Kind(frame[0])
	if k == KindInvalid || k >= numKinds {
		return KindInvalid
	}
	return k
}

// ---- primitive encoders -------------------------------------------------

func appendU8(dst []byte, v byte) []byte { return append(dst, v) }

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendI64(dst []byte, v int64) []byte { return appendU64(dst, uint64(v)) }

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func sizeBytes(b []byte) int  { return 4 + len(b) }
func sizeString(s string) int { return 4 + len(s) }

// ---- bounds-checked decode cursor ---------------------------------------

// reader is a bounds-checked cursor over one frame. Every accessor checks
// the remaining length first; on violation it latches an error and returns
// the zero value, so decoders can read linearly and check err once.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(err error, what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", err, what, r.off)
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail(ErrTruncated, "u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 4 {
		r.fail(ErrTruncated, "u32")
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail(ErrTruncated, "u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.off--
		r.fail(ErrMalformed, "bool")
		return false
	}
}

// bytes returns a zero-copy view into the frame.
func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n > r.remaining() {
		r.fail(ErrTruncated, "bytes body")
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	if n > r.remaining() {
		r.fail(ErrTruncated, "string body")
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

// count reads a collection length and rejects counts that could not
// possibly fit in the remaining bytes (each element occupies at least
// minElem bytes), bounding decoder allocation on hostile input.
func (r *reader) count(minElem int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if minElem < 1 {
		minElem = 1
	}
	if n > r.remaining()/minElem {
		r.fail(ErrMalformed, "oversized count")
		return 0
	}
	return n
}

// kind consumes and validates the leading kind byte.
func (r *reader) kind(want Kind) {
	k := Kind(r.u8())
	if r.err == nil && k != want {
		r.off--
		r.fail(ErrMalformed, fmt.Sprintf("kind %s, want %s", k, want))
	}
}

// done rejects trailing bytes after a complete decode.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, r.remaining())
	}
	return nil
}
