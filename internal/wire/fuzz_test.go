package wire

import (
	"testing"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/tuple"
)

// fuzzSeeds returns one valid encoded frame per kind, so the fuzzer starts
// from structurally interesting corpora instead of pure noise.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	add := func(frame []byte, err error) {
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, frame)
	}
	tp := &tuple.Tuple{Seq: 1, Source: "s", Kind: "k", Size: 64, Value: 1.5}
	add(AppendStream(nil, &Stream{
		FromSlot: "a", FromOp: "x", ToSlot: "b", ToOp: "y",
		EdgeSeq: 3, Item: tuple.DataItem(tp),
	}))
	add(AppendBatch(nil, &Batch{ToSlot: "b", Msgs: []Stream{{
		FromSlot: "a", FromOp: "x", ToSlot: "b", ToOp: "y", EdgeSeq: 1,
		Item: tuple.MarkerItem(tuple.Marker{Kind: tuple.MarkerToken, Version: 2}),
	}}}))
	add(AppendPreserve(nil, &Preserve{Version: 1, Source: "s", T: tp}))
	add(AppendCommand(nil, &Command{Op: 2, Version: 1, Target: "n1", Slot: "a"}), nil)
	add(AppendReport(nil, &Report{Type: 1, Phone: "n1", Slot: "a", Version: 1}), nil)
	add(AppendRuntime(nil, &Runtime{
		OutSeq: map[string]uint64{"b": 4}, InHW: map[string]uint64{"a": 3}, LogVersion: 1,
	}), nil)
	add(AppendBlob(nil, &checkpoint.Blob{
		Slot: "a", Version: 2, Base: 1,
		Ops: map[string][]byte{"x": {1}}, DeltaOps: map[string]bool{"x": true},
		Runtime: []byte{9}, Size: 10, FullSize: 20, CRC: 3,
	}), nil)
	add(AppendCkptChunk(nil, &CkptChunk{Slot: "a", Version: 1, Index: 0,
		Total: 2, CRC: 9, Data: []byte("xy")}), nil)
	add(AppendTruncate(nil, &Truncate{Downstream: "b", Upto: 5}), nil)
	add(AppendResend(nil, &Resend{Downstream: "b", After: 5}), nil)
	add(AppendFetchBlob(nil, &FetchBlob{Slot: "a", Version: 1}), nil)
	add(AppendHello(nil, &Hello{ID: "n1", Addr: "127.0.0.1:1"}), nil)
	add(AppendAssign(nil, &Assign{Lead: "n0", Seed: 1, Tuples: 10, TokenEvery: 5,
		Stages: []AssignStage{{Slot: "a", Op: "pass", Host: "n0"}},
		Peers:  []AssignPeer{{ID: "n1", Addr: "127.0.0.1:1"}}}), nil)
	add(AppendSinkOut(nil, tp))
	add(AppendGossipDigest(nil, &GossipDigest{From: "n1", Reply: true,
		Entries: []DigestEntry{{Origin: "n0", Seq: 3}}}), nil)
	add(AppendGossipDigest(nil, &GossipDigest{From: "n1", Lo: "a", Hi: "n0",
		Entries: []DigestEntry{{Origin: "n0", Seq: 3}}}), nil)
	add(AppendGossipDelta(nil, &GossipDelta{From: "n0", Msgs: []GossipMsg{
		{Origin: "n0", Seq: 1, Hops: 1, Method: "member", Payload: []byte{7}},
	}}), nil)
	add(AppendRollup(nil, &Rollup{Region: "r", Lead: "n1", Epoch: 1,
		Phones: 8, Idle: 1, Backlog: 2, BatteryRisk: 1, OutTuples: 40, CtrlBytes: 512}), nil)
	add(AppendXRegionEnv(nil, &XRegionEnv{FromRegion: "a", ToRegion: "b",
		Stream: "s", Seq: 2, Payload: []byte("p")}), nil)
	return seeds
}

// FuzzDecodeAny feeds arbitrary bytes through the full decode dispatch.
// The invariant under fuzz: decoding never panics and never over-reads;
// malformed or truncated frames surface as errors. Valid frames must
// re-encode losslessly where the kind supports canonical re-encoding.
func FuzzDecodeAny(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindBatch), 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeAny(data)
		if err != nil {
			return
		}
		if v == nil {
			t.Fatalf("kind %s decoded to nil without error", FrameKind(data))
		}
	})
}

// FuzzDecodeStream exercises the deepest decoder (nested tuple values)
// directly, so the fuzzer spends its budget on the richest frame grammar.
func FuzzDecodeStream(f *testing.F) {
	tp := &tuple.Tuple{Seq: 1, Source: "s", Kind: "k", Size: 64, Value: []byte{1, 2}}
	frame, err := AppendStream(nil, &Stream{
		FromSlot: "a", FromOp: "x", ToSlot: "b", ToOp: "y",
		EdgeSeq: 3, Item: tuple.DataItem(tp),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeStream(data)
		if err != nil {
			return
		}
		if m.Item.Tuple == nil && m.Item.Marker == nil {
			t.Fatal("decoded stream with empty item")
		}
		// A frame that decodes must re-encode to identical bytes: the
		// format has exactly one encoding per logical message.
		re, err := AppendStream(nil, &m)
		if err != nil {
			t.Fatalf("re-encode of valid frame failed: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode/encode not canonical:\n in=%x\nout=%x", data, re)
		}
	})
}
