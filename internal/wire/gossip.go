package wire

import (
	"mobistreams/internal/simnet"
)

// This file carries the federation control plane's frame kinds: the gossip
// layer's anti-entropy digests and message deltas, the per-region telemetry
// rollup, and the cross-region tuple envelope. All four follow the codec's
// contract — deterministic append-to-buffer encode with exact SizeX,
// bounds-checked zero-copy decode — so the federated control plane stays on
// the zero-alloc path end to end.

// GossipMsg is one epidemic broadcast message: identified by (Origin, Seq),
// tagged with the registered method it dispatches to, carrying an opaque
// payload. Hops counts forwarding steps from the origin; relays past the
// lazy-push threshold advertise the ID instead of pushing the payload.
type GossipMsg struct {
	Origin  simnet.NodeID
	Seq     uint64
	Hops    uint8
	Method  string
	Payload []byte
}

// DigestEntry is one origin's highest contiguous delivered sequence in a
// gossip digest: "I hold everything Origin published through Seq".
type DigestEntry struct {
	Origin simnet.NodeID
	Seq    uint64
}

// GossipDigest is the push-pull anti-entropy summary. A node sends its
// per-origin high-water marks to a sampled peer; the peer replies with a
// GossipDelta of messages the digester is missing and — unless Reply is
// set — its own digest, so one exchange repairs both directions without
// looping.
//
// Lo and Hi bound the origin-ID window this digest covers: the sender
// asserts its marks are complete for every origin in [Lo, Hi) — Lo
// inclusive, Hi exclusive, an empty Lo meaning "from the start of the ID
// space" and an empty Hi "to the end". A receiver must only repair
// origins inside the window — an origin absent from Entries but inside
// the window is genuinely at zero; outside, it is merely unmentioned.
// Half-open windows tile the ID space with no gaps (each window's Hi is
// the next window's Lo), so rotating bounded digests eventually cover
// every origin either side might hold while each frame stays
// constant-size as the overlay grows.
type GossipDigest struct {
	From    simnet.NodeID
	Reply   bool
	Lo, Hi  simnet.NodeID
	Entries []DigestEntry
}

// Covers reports whether origin falls inside the digest's half-open
// window [Lo, Hi).
func (d *GossipDigest) Covers(origin simnet.NodeID) bool {
	return (d.Lo == "" || origin >= d.Lo) && (d.Hi == "" || origin < d.Hi)
}

// GossipDelta is a batch of gossip messages: a single eager-push forward, a
// graft response, or an anti-entropy repair.
type GossipDelta struct {
	From simnet.NodeID
	Msgs []GossipMsg
}

// Rollup is one region's aggregate telemetry published into the federation:
// population, load and battery risk, plus the output/control counters the
// lead folds into fleet-wide caps. The same frame carries the lead's
// aggregate back out (Region names the fleet scope then).
type Rollup struct {
	// Region names the reporting region (or aggregate scope).
	Region string
	// Lead is the region's agent node on the backhaul overlay.
	Lead simnet.NodeID
	// Epoch orders rollups from the same region; stale epochs are ignored.
	Epoch uint64
	// Phones and Idle describe the population; Backlog sums queued items.
	Phones  int
	Idle    int
	Backlog int
	// BatteryRisk counts phones below the low-battery threshold.
	BatteryRisk int
	// OutTuples counts tuples the region's sinks published.
	OutTuples uint64
	// CtrlBytes counts control-plane bytes the region's agent has sent.
	CtrlBytes uint64
}

// XRegionEnv is the cross-region tuple envelope: one region's stream output
// addressed to another region over the cellular backhaul. Payload is a
// complete wire frame (typically KindSinkOut); Seq is the per-(FromRegion,
// Stream) sequence receivers dedup on, making redelivery idempotent.
type XRegionEnv struct {
	FromRegion string
	ToRegion   string
	Stream     string
	Seq        uint64
	Payload    []byte
}

// ---- gossip digest -------------------------------------------------------

// SizeGossipDigest reports the exact frame size AppendGossipDigest produces.
func SizeGossipDigest(d *GossipDigest) int {
	total := 1 + sizeString(string(d.From)) + 1 +
		sizeString(string(d.Lo)) + sizeString(string(d.Hi)) + 4
	for i := range d.Entries {
		total += sizeString(string(d.Entries[i].Origin)) + 8
	}
	return total
}

// AppendGossipDigest encodes a digest frame onto dst. Entries are encoded
// in the order given; the gossip layer emits them sorted by origin so the
// encoding is deterministic.
func AppendGossipDigest(dst []byte, d *GossipDigest) []byte {
	dst = appendU8(dst, byte(KindGossipDigest))
	dst = appendString(dst, string(d.From))
	dst = appendBool(dst, d.Reply)
	dst = appendString(dst, string(d.Lo))
	dst = appendString(dst, string(d.Hi))
	dst = appendU32(dst, uint32(len(d.Entries)))
	for i := range d.Entries {
		dst = appendString(dst, string(d.Entries[i].Origin))
		dst = appendU64(dst, d.Entries[i].Seq)
	}
	return dst
}

// DecodeGossipDigest decodes a digest frame.
func DecodeGossipDigest(frame []byte) (GossipDigest, error) {
	r := reader{b: frame}
	r.kind(KindGossipDigest)
	var d GossipDigest
	d.From = simnet.NodeID(r.str())
	d.Reply = r.boolean()
	d.Lo = simnet.NodeID(r.str())
	d.Hi = simnet.NodeID(r.str())
	if n := r.count(4 + 8); r.err == nil && n > 0 {
		d.Entries = make([]DigestEntry, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			d.Entries = append(d.Entries, DigestEntry{
				Origin: simnet.NodeID(r.str()), Seq: r.u64(),
			})
		}
	}
	return d, r.done()
}

// ---- gossip delta --------------------------------------------------------

// SizeGossipDelta reports the exact frame size AppendGossipDelta produces.
func SizeGossipDelta(d *GossipDelta) int {
	total := 1 + sizeString(string(d.From)) + 4
	for i := range d.Msgs {
		m := &d.Msgs[i]
		total += sizeString(string(m.Origin)) + 8 + 1 +
			sizeString(m.Method) + sizeBytes(m.Payload)
	}
	return total
}

// AppendGossipDelta encodes a delta frame onto dst.
func AppendGossipDelta(dst []byte, d *GossipDelta) []byte {
	dst = appendU8(dst, byte(KindGossipDelta))
	dst = appendString(dst, string(d.From))
	dst = appendU32(dst, uint32(len(d.Msgs)))
	for i := range d.Msgs {
		m := &d.Msgs[i]
		dst = appendString(dst, string(m.Origin))
		dst = appendU64(dst, m.Seq)
		dst = appendU8(dst, m.Hops)
		dst = appendString(dst, m.Method)
		dst = appendBytes(dst, m.Payload)
	}
	return dst
}

// DecodeGossipDelta decodes a delta frame. Message payloads are zero-copy
// views into the frame: callers keeping them past the frame's lifetime must
// copy.
func DecodeGossipDelta(frame []byte) (GossipDelta, error) {
	r := reader{b: frame}
	r.kind(KindGossipDelta)
	var d GossipDelta
	d.From = simnet.NodeID(r.str())
	// Each message is at least two counted strings, a u64, a hop byte and
	// a counted payload.
	if n := r.count(4 + 8 + 1 + 4 + 4); r.err == nil && n > 0 {
		d.Msgs = make([]GossipMsg, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			d.Msgs = append(d.Msgs, GossipMsg{
				Origin:  simnet.NodeID(r.str()),
				Seq:     r.u64(),
				Hops:    r.u8(),
				Method:  r.str(),
				Payload: r.bytes(),
			})
		}
	}
	return d, r.done()
}

// ---- region rollup -------------------------------------------------------

// SizeRollup reports the exact frame size AppendRollup produces.
func SizeRollup(ru *Rollup) int {
	return 1 + sizeString(ru.Region) + sizeString(string(ru.Lead)) +
		8 + 8 + 8 + 8 + 8 + 8 + 8
}

// AppendRollup encodes a rollup frame onto dst.
func AppendRollup(dst []byte, ru *Rollup) []byte {
	dst = appendU8(dst, byte(KindRollup))
	dst = appendString(dst, ru.Region)
	dst = appendString(dst, string(ru.Lead))
	dst = appendU64(dst, ru.Epoch)
	dst = appendI64(dst, int64(ru.Phones))
	dst = appendI64(dst, int64(ru.Idle))
	dst = appendI64(dst, int64(ru.Backlog))
	dst = appendI64(dst, int64(ru.BatteryRisk))
	dst = appendU64(dst, ru.OutTuples)
	return appendU64(dst, ru.CtrlBytes)
}

// DecodeRollup decodes a rollup frame.
func DecodeRollup(frame []byte) (Rollup, error) {
	r := reader{b: frame}
	r.kind(KindRollup)
	var ru Rollup
	ru.Region = r.str()
	ru.Lead = simnet.NodeID(r.str())
	ru.Epoch = r.u64()
	ru.Phones = int(r.i64())
	ru.Idle = int(r.i64())
	ru.Backlog = int(r.i64())
	ru.BatteryRisk = int(r.i64())
	ru.OutTuples = r.u64()
	ru.CtrlBytes = r.u64()
	return ru, r.done()
}

// ---- cross-region envelope -----------------------------------------------

// SizeXRegionEnv reports the exact frame size AppendXRegionEnv produces.
func SizeXRegionEnv(e *XRegionEnv) int {
	return 1 + sizeString(e.FromRegion) + sizeString(e.ToRegion) +
		sizeString(e.Stream) + 8 + sizeBytes(e.Payload)
}

// AppendXRegionEnv encodes a cross-region envelope onto dst.
func AppendXRegionEnv(dst []byte, e *XRegionEnv) []byte {
	dst = appendU8(dst, byte(KindXRegion))
	dst = appendString(dst, e.FromRegion)
	dst = appendString(dst, e.ToRegion)
	dst = appendString(dst, e.Stream)
	dst = appendU64(dst, e.Seq)
	return appendBytes(dst, e.Payload)
}

// DecodeXRegionEnv decodes a cross-region envelope. Payload is a zero-copy
// view into the frame.
func DecodeXRegionEnv(frame []byte) (XRegionEnv, error) {
	r := reader{b: frame}
	r.kind(KindXRegion)
	var e XRegionEnv
	e.FromRegion = r.str()
	e.ToRegion = r.str()
	e.Stream = r.str()
	e.Seq = r.u64()
	e.Payload = r.bytes()
	return e, r.done()
}
