// Package metrics collects the quantities the paper reports: per-region
// throughput (output tuples per second at steady state), end-to-end tuple
// latency, and byte accounting for preservation and checkpoint traffic.
package metrics

import (
	"sync"
	"time"

	"mobistreams/internal/obs"
)

// Latency accumulates latency samples and summarises them. It is backed
// by a fixed-size log-linear histogram (obs.Histogram), so memory stays
// constant however long the run: the old implementation appended every
// sample forever and re-sorted a full copy on each Percentile call.
// Count, Mean, and Max are exact; Percentile returns the upper edge of
// the bucket holding the requested rank (within 6.25% of the true value,
// monotone in p, clamped so Percentile(100) == Max).
type Latency struct {
	h obs.Histogram
}

// Add records one sample. Lock-free and allocation-free.
func (l *Latency) Add(d time.Duration) {
	l.h.Observe(int64(d))
}

// Count reports the number of samples.
func (l *Latency) Count() int {
	return int(l.h.Count())
}

// Mean reports the mean latency, or 0 with no samples. Exact: the
// histogram keeps the running sum alongside the bucket counts.
func (l *Latency) Mean() time.Duration {
	n := l.h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(l.h.Sum() / n)
}

// Percentile reports an upper bound on the p-th percentile
// (0 < p <= 100), or 0 with no samples. The bound is at most 1/16 above
// the true sample and never exceeds Max.
func (l *Latency) Percentile(p float64) time.Duration {
	return time.Duration(l.h.Percentile(p))
}

// Max reports the largest sample, exactly.
func (l *Latency) Max() time.Duration {
	return time.Duration(l.h.Max())
}

// Reset drops all samples.
func (l *Latency) Reset() {
	l.h.Reset()
}

// Hist exposes the backing histogram (for export and merging).
func (l *Latency) Hist() *obs.Histogram { return &l.h }

// Throughput counts output tuples over a measurement window of simulated
// time.
type Throughput struct {
	mu    sync.Mutex
	count int64
	start time.Duration
	last  time.Duration
}

// Start (re)opens the measurement window at simulated time now.
func (t *Throughput) Start(now time.Duration) {
	t.mu.Lock()
	t.count = 0
	t.start = now
	t.last = now
	t.mu.Unlock()
}

// Tick records one output tuple at simulated time now.
func (t *Throughput) Tick(now time.Duration) {
	t.mu.Lock()
	t.count++
	if now > t.last {
		t.last = now
	}
	t.mu.Unlock()
}

// Count reports tuples since Start.
func (t *Throughput) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// PerSecond reports tuples per simulated second over [start, now].
func (t *Throughput) PerSecond(now time.Duration) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	window := now - t.start
	if window <= 0 {
		return 0
	}
	return float64(t.count) / window.Seconds()
}

// BatchSizes tracks edge-batching effectiveness: how many stream messages
// each flushed network batch carried. It is safe for concurrent use.
type BatchSizes struct {
	mu      sync.Mutex
	flushes int64
	msgs    int64
	max     int
}

// Observe records one flushed batch of n messages.
func (b *BatchSizes) Observe(n int) {
	b.mu.Lock()
	b.flushes++
	b.msgs += int64(n)
	if n > b.max {
		b.max = n
	}
	b.mu.Unlock()
}

// Flushes reports how many batches were sent.
func (b *BatchSizes) Flushes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushes
}

// Msgs reports the total messages carried across all batches.
func (b *BatchSizes) Msgs() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.msgs
}

// Mean reports the mean batch size, or 0 before the first flush.
func (b *BatchSizes) Mean() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.flushes == 0 {
		return 0
	}
	return float64(b.msgs) / float64(b.flushes)
}

// Max reports the largest batch sent.
func (b *BatchSizes) Max() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.max
}

// Reset zeroes the accumulator.
func (b *BatchSizes) Reset() {
	b.mu.Lock()
	b.flushes, b.msgs, b.max = 0, 0, 0
	b.mu.Unlock()
}

// CheckpointStats accumulates the checkpoint pipeline's cost metrics: the
// executor's stop-the-world pause per checkpoint, the bytes that actually
// travelled (delta blobs shrink these), and the modelled full-state bytes
// they stand for. It is safe for concurrent use (one writer per node, read
// by the region report).
type CheckpointStats struct {
	mu         sync.Mutex
	pauses     []time.Duration
	blobBytes  int64
	fullBytes  int64
	deltaBlobs int64
	fullBlobs  int64
}

// Observe records one checkpoint: the executor pause it cost, the bytes the
// blob put on flash/network, the full-state bytes it represents, and
// whether it travelled as a delta.
func (c *CheckpointStats) Observe(pause time.Duration, blobBytes, fullBytes int, delta bool) {
	c.mu.Lock()
	c.pauses = append(c.pauses, pause)
	c.blobBytes += int64(blobBytes)
	c.fullBytes += int64(fullBytes)
	if delta {
		c.deltaBlobs++
	} else {
		c.fullBlobs++
	}
	c.mu.Unlock()
}

// Count reports how many checkpoints were observed.
func (c *CheckpointStats) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deltaBlobs + c.fullBlobs
}

// DeltaBlobs and FullBlobs report the blob-kind split.
func (c *CheckpointStats) DeltaBlobs() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deltaBlobs
}

// FullBlobs reports how many checkpoints travelled as full base blobs.
func (c *CheckpointStats) FullBlobs() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fullBlobs
}

// PauseMean reports the mean stop-the-world pause, or 0 with no samples.
func (c *CheckpointStats) PauseMean() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pauses) == 0 {
		return 0
	}
	var sum time.Duration
	for _, p := range c.pauses {
		sum += p
	}
	return sum / time.Duration(len(c.pauses))
}

// PauseMax reports the largest stop-the-world pause.
func (c *CheckpointStats) PauseMax() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m time.Duration
	for _, p := range c.pauses {
		if p > m {
			m = p
		}
	}
	return m
}

// Bytes reports travelled blob bytes and the modelled full-state bytes they
// stand for.
func (c *CheckpointStats) Bytes() (blob, full int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blobBytes, c.fullBytes
}

// DeltaRatio reports travelled bytes over full-state bytes: 1.0 means every
// checkpoint shipped its whole state, lower is the incremental saving.
func (c *CheckpointStats) DeltaRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fullBytes == 0 {
		return 0
	}
	return float64(c.blobBytes) / float64(c.fullBytes)
}

// Reset zeroes the accumulator.
func (c *CheckpointStats) Reset() {
	c.mu.Lock()
	c.pauses = c.pauses[:0]
	c.blobBytes, c.fullBytes, c.deltaBlobs, c.fullBlobs = 0, 0, 0, 0
	c.mu.Unlock()
}

// Report is the summary of one experiment run.
type Report struct {
	Scheme         string
	App            string
	Tuples         int64
	Window         time.Duration
	ThroughputTPS  float64
	MeanLatency    time.Duration
	P95Latency     time.Duration
	DataBytes      int64
	CheckpointNet  int64 // checkpoint + bitmap bytes on the network
	ReplicationNet int64 // duplicated-tuple bytes on the network
	PreservedBytes int64 // source + edge preservation bytes stored
	InboxDrops     int64 // UDP-semantics deliveries lost to full endpoint inboxes
	Recovered      bool  // whether the run survived its fault injection

	// Transport-socket health: re-established connections and dead-conn
	// events. Always 0 on the simulated backend (nothing to redial).
	Redials   int64
	DeadConns int64

	// BatchFlushes and MeanBatch summarise edge batching: network sends
	// of coalesced data tuples and the mean messages per send.
	BatchFlushes int64
	MeanBatch    float64

	// Migrations counts planned live migrations the scheduler completed —
	// disruptions that would otherwise have been recoveries.
	Migrations int64

	// Checkpoint-pipeline metrics: the executor's stop-the-world pause,
	// the bytes checkpoints put on flash/network versus the full state
	// they represent, and the delta/full blob split.
	CkptPauseMean  time.Duration
	CkptPauseMax   time.Duration
	CkptBlobBytes  int64
	CkptFullBytes  int64
	CkptDeltaRatio float64
	CkptDeltaBlobs int64
	CkptFullBlobs  int64

	// Channel-domain observability: per-channel airtime and membership
	// from the WiFi medium, and the share of reliable unicast bytes whose
	// endpoints sat on different channels (each such transfer charges two
	// cells of airtime — the cost the placement planner packs away).
	Channels          int
	ChannelAirtime    []time.Duration
	ChannelMembers    []int
	CrossChannelShare float64
}
