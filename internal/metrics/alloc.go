package metrics

import "runtime"

// AllocMeter samples the Go runtime's cumulative allocation counters
// around a measurement window. The scale experiments report its delta as
// allocs/tuple: a whole-process number (workload drivers and control plane
// included), comparable across data-plane configurations run in the same
// harness rather than an absolute per-path count.
type AllocMeter struct {
	mallocs uint64
	bytes   uint64
}

// Start opens the window at the current counters.
func (a *AllocMeter) Start() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	a.mallocs, a.bytes = ms.Mallocs, ms.TotalAlloc
}

// Delta reports objects and bytes allocated since Start.
func (a *AllocMeter) Delta() (mallocs, bytes uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs - a.mallocs, ms.TotalAlloc - a.bytes
}

// PerUnit reports allocations and bytes per processed unit since Start
// (zero units yields zeros).
func (a *AllocMeter) PerUnit(units int64) (allocs, bytes float64) {
	m, b := a.Delta()
	if units <= 0 {
		return 0, 0
	}
	return float64(m) / float64(units), float64(b) / float64(units)
}
