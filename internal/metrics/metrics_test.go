package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLatencySummaries(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Percentile(95) != 0 || l.Max() != 0 {
		t.Fatal("empty collector should report zeros")
	}
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Second)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if got := l.Mean(); got != 50500*time.Millisecond {
		t.Fatalf("mean = %v, want 50.5s", got)
	}
	if got := l.Percentile(50); got != 50*time.Second {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Percentile(95); got != 95*time.Second {
		t.Fatalf("p95 = %v", got)
	}
	if got := l.Max(); got != 100*time.Second {
		t.Fatalf("max = %v", got)
	}
	l.Reset()
	if l.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestThroughputWindow(t *testing.T) {
	var tp Throughput
	tp.Start(10 * time.Second)
	for i := 0; i < 20; i++ {
		tp.Tick(10*time.Second + time.Duration(i)*time.Second)
	}
	if tp.Count() != 20 {
		t.Fatalf("count = %d", tp.Count())
	}
	if got := tp.PerSecond(20 * time.Second); got != 2.0 {
		t.Fatalf("rate = %v, want 2.0", got)
	}
	if got := tp.PerSecond(10 * time.Second); got != 0 {
		t.Fatal("zero window should report 0")
	}
	tp.Start(0)
	if tp.Count() != 0 {
		t.Fatal("restart did not reset count")
	}
}

// Property: percentile is monotone in p and bounded by max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		var l Latency
		for _, s := range samples {
			l.Add(time.Duration(s) * time.Millisecond)
		}
		last := time.Duration(0)
		for _, p := range []float64{1, 25, 50, 75, 95, 100} {
			v := l.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return last == l.Max() || last <= l.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchSizes(t *testing.T) {
	var b BatchSizes
	if b.Mean() != 0 || b.Flushes() != 0 || b.Max() != 0 {
		t.Fatal("zero value not empty")
	}
	b.Observe(4)
	b.Observe(8)
	b.Observe(12)
	if b.Flushes() != 3 || b.Msgs() != 24 {
		t.Fatalf("flushes=%d msgs=%d, want 3/24", b.Flushes(), b.Msgs())
	}
	if b.Mean() != 8 {
		t.Fatalf("mean = %v, want 8", b.Mean())
	}
	if b.Max() != 12 {
		t.Fatalf("max = %d, want 12", b.Max())
	}
	b.Reset()
	if b.Flushes() != 0 || b.Msgs() != 0 || b.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}
