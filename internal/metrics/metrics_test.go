package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLatencySummaries(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Percentile(95) != 0 || l.Max() != 0 {
		t.Fatal("empty collector should report zeros")
	}
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Second)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if got := l.Mean(); got != 50500*time.Millisecond {
		t.Fatalf("mean = %v, want 50.5s", got)
	}
	// Percentiles are histogram bucket upper bounds: at most 1/16
	// (6.25%) above the exact rank sample, monotone, never above max.
	checkBound := func(p float64, exact time.Duration) {
		t.Helper()
		got := l.Percentile(p)
		if got < exact || float64(got) > float64(exact)*(1+1.0/16) {
			t.Fatalf("p%g = %v outside [%v, %v+6.25%%]", p, got, exact, exact)
		}
	}
	checkBound(50, 50*time.Second)
	checkBound(95, 95*time.Second)
	if got := l.Max(); got != 100*time.Second {
		t.Fatalf("max = %v", got)
	}
	if got := l.Percentile(100); got != l.Max() {
		t.Fatalf("p100 = %v, want max %v", got, l.Max())
	}
	l.Reset()
	if l.Count() != 0 {
		t.Fatal("reset failed")
	}
}

// TestLatencyPinnedSampleSets pins the histogram-backed summaries on
// known sample sets: these exact values are the regression contract for
// the fixed-bucket backing store (satellite: metrics.Latency no longer
// grows without bound).
func TestLatencyPinnedSampleSets(t *testing.T) {
	// Identical samples: every summary is exact (single bucket, clamp).
	var a Latency
	for i := 0; i < 1000; i++ {
		a.Add(7 * time.Millisecond)
	}
	for _, p := range []float64{1, 50, 99, 100} {
		if got := a.Percentile(p); got != 7*time.Millisecond {
			t.Fatalf("identical samples p%g = %v, want 7ms", p, got)
		}
	}
	if a.Mean() != 7*time.Millisecond || a.Max() != 7*time.Millisecond {
		t.Fatalf("mean=%v max=%v, want 7ms both", a.Mean(), a.Max())
	}

	// Values below 16ns land in exact unit buckets: percentiles are the
	// true order statistics, bit for bit.
	var b Latency
	for _, ns := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		b.Add(time.Duration(ns))
	}
	if got := b.Percentile(50); got != 5 {
		t.Fatalf("unit-bucket p50 = %v, want 5ns", got)
	}
	if got := b.Percentile(90); got != 9 {
		t.Fatalf("unit-bucket p90 = %v, want 9ns", got)
	}

	// 1s..100s in 1s steps: pinned bucket upper bounds. 50s falls in the
	// bucket [48s, 51.539607s) whose upper edge is 51539607551ns; 95s in
	// [92.5s, 98.784248s) → 98784247807ns. These literals change only if
	// the bucket layout changes — which is exactly what they guard.
	var c Latency
	for i := 1; i <= 100; i++ {
		c.Add(time.Duration(i) * time.Second)
	}
	if got := c.Percentile(50); got != time.Duration(51539607551) {
		t.Fatalf("pinned p50 = %d, want 51539607551", got)
	}
	if got := c.Percentile(95); got != time.Duration(98784247807) {
		t.Fatalf("pinned p95 = %d, want 98784247807", got)
	}
	if got := c.Mean(); got != 50500*time.Millisecond {
		t.Fatalf("pinned mean = %v, want 50.5s", got)
	}
	if got := c.Max(); got != 100*time.Second {
		t.Fatalf("pinned max = %v, want 100s", got)
	}
}

func TestThroughputWindow(t *testing.T) {
	var tp Throughput
	tp.Start(10 * time.Second)
	for i := 0; i < 20; i++ {
		tp.Tick(10*time.Second + time.Duration(i)*time.Second)
	}
	if tp.Count() != 20 {
		t.Fatalf("count = %d", tp.Count())
	}
	if got := tp.PerSecond(20 * time.Second); got != 2.0 {
		t.Fatalf("rate = %v, want 2.0", got)
	}
	if got := tp.PerSecond(10 * time.Second); got != 0 {
		t.Fatal("zero window should report 0")
	}
	tp.Start(0)
	if tp.Count() != 0 {
		t.Fatal("restart did not reset count")
	}
}

// Property: percentile is monotone in p and bounded by max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		var l Latency
		for _, s := range samples {
			l.Add(time.Duration(s) * time.Millisecond)
		}
		last := time.Duration(0)
		for _, p := range []float64{1, 25, 50, 75, 95, 100} {
			v := l.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return last == l.Max() || last <= l.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchSizes(t *testing.T) {
	var b BatchSizes
	if b.Mean() != 0 || b.Flushes() != 0 || b.Max() != 0 {
		t.Fatal("zero value not empty")
	}
	b.Observe(4)
	b.Observe(8)
	b.Observe(12)
	if b.Flushes() != 3 || b.Msgs() != 24 {
		t.Fatalf("flushes=%d msgs=%d, want 3/24", b.Flushes(), b.Msgs())
	}
	if b.Mean() != 8 {
		t.Fatalf("mean = %v, want 8", b.Mean())
	}
	if b.Max() != 12 {
		t.Fatalf("max = %d, want 12", b.Max())
	}
	b.Reset()
	if b.Flushes() != 0 || b.Msgs() != 0 || b.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}
