package placement

import (
	"reflect"
	"testing"
	"time"
)

// goldenSnapshot is a two-domain region with one three-slot chain: the
// chain's tail sits on a draining phone in the wrong domain, so the plan
// must evacuate it into the domain holding the rest of the chain and then
// top the domain's spare pool up.
func goldenSnapshot() Snapshot {
	return Snapshot{
		Region: "r1",
		Now:    60 * time.Second,
		Domains: []Domain{
			{ID: 0, Members: 4, Present: 4},
			{ID: 1, Members: 2, Present: 2},
		},
		Phones: []Phone{
			{ID: "p1", Domain: 0, BatteryJoules: 100, BatteryFraction: 0.90, DrainWatts: 0.05},
			{ID: "p2", Domain: 0, BatteryJoules: 100, BatteryFraction: 0.85, DrainWatts: 0.05},
			{ID: "p3", Domain: 0, Idle: true, BatteryFraction: 0.90},
			{ID: "p4", Domain: 0, Idle: true, BatteryFraction: 0.80},
			{ID: "p5", Domain: 1, BatteryJoules: 10, BatteryFraction: 0.50, DrainWatts: 0.5},
			{ID: "p6", Domain: 1, Idle: true, BatteryFraction: 0.85},
		},
		Slots: []Assignment{
			{Slot: "n1", Phone: "p1"},
			{Slot: "n2", Phone: "p2"},
			{Slot: "n3", Phone: "p5"},
		},
		Edges: []Edge{
			{From: "n1", To: "n2", Weight: 1},
			{From: "n2", To: "n3", Weight: 1},
		},
	}
}

// TestPlanGolden pins the deterministic plan output: the same topology +
// telemetry snapshot must always produce byte-identical plan encodings,
// from this engine and from any fresh engine.
func TestPlanGolden(t *testing.T) {
	const want = "plan r1 v1 steps=2\n" +
		" 0 migrate n3 p5->p3 dom0 evac:battery(20s)\n" +
		" 1 reserve p4 dom0 spare:pool\n"

	got := New(Config{}).Plan(goldenSnapshot()).Encode()
	if got != want {
		t.Fatalf("plan drifted from golden output.\ngot:\n%swant:\n%s", got, want)
	}
	if again := New(Config{}).Plan(goldenSnapshot()).Encode(); again != got {
		t.Fatalf("identical snapshots produced different plans:\n%s\nvs\n%s", got, again)
	}
}

func TestGroupSlots(t *testing.T) {
	slots := []Assignment{
		{Slot: "a1"}, {Slot: "a2"}, {Slot: "b1"}, {Slot: "b2"}, {Slot: "solo"},
	}
	edges := []Edge{
		{From: "a1", To: "a2"},
		{From: "b1", To: "b2"},
		{From: "b2", To: "zz"}, // edge to an unassigned slot is ignored
	}
	got := groupSlots(slots, edges)
	want := [][]string{{"a1", "a2"}, {"b1", "b2"}, {"solo"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groupSlots = %v, want %v", got, want)
	}
}

// TestPackSpreadsIndependentGroups: two chains scattered across two
// domains must each be packed whole, into *different* domains — packing
// both onto one channel would trade cross-channel hops for a hot cell.
func TestPackSpreadsIndependentGroups(t *testing.T) {
	s := Snapshot{
		Region:  "r1",
		Now:     30 * time.Second,
		Domains: []Domain{{ID: 0}, {ID: 1}},
		Phones: []Phone{
			{ID: "p1", Domain: 0, BatteryFraction: 0.9},
			{ID: "p2", Domain: 1, BatteryFraction: 0.9},
			{ID: "p3", Domain: 0, BatteryFraction: 0.9},
			{ID: "p4", Domain: 1, BatteryFraction: 0.9},
			{ID: "p5", Domain: 0, Idle: true, BatteryFraction: 0.9},
			{ID: "p6", Domain: 0, Idle: true, BatteryFraction: 0.8},
			{ID: "p7", Domain: 1, Idle: true, BatteryFraction: 0.9},
			{ID: "p8", Domain: 1, Idle: true, BatteryFraction: 0.8},
		},
		Slots: []Assignment{
			{Slot: "na1", Phone: "p1"},
			{Slot: "na2", Phone: "p2"},
			{Slot: "nb1", Phone: "p3"},
			{Slot: "nb2", Phone: "p4"},
		},
		Edges: []Edge{
			{From: "na1", To: "na2"},
			{From: "nb1", To: "nb2"},
		},
	}
	e := New(Config{})
	f := e.runForecast(&s)
	pk := e.packGroups(&s, f)
	if pk.domainOf["na1"] != pk.domainOf["na2"] {
		t.Fatalf("chain A split across domains: %v", pk.domainOf)
	}
	if pk.domainOf["nb1"] != pk.domainOf["nb2"] {
		t.Fatalf("chain B split across domains: %v", pk.domainOf)
	}
	if pk.domainOf["na1"] == pk.domainOf["nb1"] {
		t.Fatalf("independent chains stacked on one domain: %v", pk.domainOf)
	}
}

// TestPackSpillsOnlyWhenNoDomainFits: a group larger than any single
// domain's capacity straddles domains, but keeps incumbents in place.
func TestPackSpillsOnlyWhenNoDomainFits(t *testing.T) {
	s := Snapshot{
		Region:  "r1",
		Domains: []Domain{{ID: 0}, {ID: 1}},
		Phones: []Phone{
			{ID: "p1", Domain: 0, BatteryFraction: 0.9},
			{ID: "p2", Domain: 0, BatteryFraction: 0.9},
			{ID: "p3", Domain: 1, BatteryFraction: 0.9},
			{ID: "p4", Domain: 0, Idle: true, BatteryFraction: 0.9},
			// Domain 1 has no idle capacity.
		},
		Slots: []Assignment{
			{Slot: "n1", Phone: "p1"},
			{Slot: "n2", Phone: "p2"},
			{Slot: "n3", Phone: "p3"},
			{Slot: "n4", Phone: "p3"}, // two slots share p3
		},
		Edges: []Edge{
			{From: "n1", To: "n2"}, {From: "n2", To: "n3"}, {From: "n3", To: "n4"},
		},
	}
	e := New(Config{})
	f := e.runForecast(&s)
	pk := e.packGroups(&s, f)
	// Whole group is 4 slots; domain 0 holds 2 incumbents + 1 idle = 3,
	// domain 1 holds 2 incumbents and nothing else. No domain fits all 4.
	if pk.domainOf["n1"] != 0 || pk.domainOf["n2"] != 0 {
		t.Fatalf("spill moved incumbents off domain 0: %v", pk.domainOf)
	}
	if pk.domainOf["n3"] != 0 && pk.domainOf["n3"] != 1 {
		t.Fatalf("n3 routed nowhere: %v", pk.domainOf)
	}
	moves := 0
	for _, need := range pk.needsHome {
		if need {
			moves++
		}
	}
	if moves > 1 {
		t.Fatalf("spill planned %d moves, want at most 1 (fill domain 0's idle)", moves)
	}
}

// TestForecastTrajectoryEvacuation: a phone walking toward the WiFi
// boundary is evacuated before it crosses, with a trajectory reason.
func TestForecastTrajectoryEvacuation(t *testing.T) {
	s := Snapshot{
		Region:  "r1",
		Now:     10 * time.Second,
		RadiusM: 100,
		Domains: []Domain{{ID: 0}, {ID: 1}},
		Phones: []Phone{
			// 80 m out, walking straight out at 1 m/s: crosses in 20 s.
			{ID: "p1", Domain: 0, BatteryFraction: 0.9, X: 80, VelX: 1},
			{ID: "p2", Domain: 0, Idle: true, BatteryFraction: 0.9},
			{ID: "p3", Domain: 1, BatteryFraction: 0.9},
		},
		Slots: []Assignment{{Slot: "n1", Phone: "p1"}},
	}
	plan := New(Config{}).Plan(s)
	if len(plan.Steps) == 0 || plan.Steps[0].Kind != StepMigrate {
		t.Fatalf("no evacuation planned: %s", plan.Encode())
	}
	st := plan.Steps[0]
	if st.Slot != "n1" || st.To != "p2" || st.Reason != "evac:trajectory(20s)" {
		t.Fatalf("unexpected evacuation step: %s", st)
	}
}

// TestSpareChurnBoost: a domain whose observed departure rate runs hot
// gets an extra warm spare reserved with the churn reason.
func TestSpareChurnBoost(t *testing.T) {
	snap := func(now time.Duration, departs int64, spare bool) Snapshot {
		s := Snapshot{
			Region:  "r1",
			Now:     now,
			Domains: []Domain{{ID: 0, Departures: departs}, {ID: 1}},
			Phones: []Phone{
				{ID: "p1", Domain: 0, BatteryFraction: 0.9},
				{ID: "p2", Domain: 0, Idle: !spare, Spare: spare, BatteryFraction: 0.9},
				{ID: "p3", Domain: 0, Idle: true, BatteryFraction: 0.8},
				{ID: "p4", Domain: 1, Idle: true, BatteryFraction: 0.9},
			},
			Slots: []Assignment{{Slot: "n1", Phone: "p1"}},
		}
		return s
	}
	e := New(Config{})
	first := e.Plan(snap(30*time.Second, 0, false))
	if len(first.Steps) != 1 || first.Steps[0].Kind != StepReserve || first.Steps[0].Reason != "spare:pool" {
		t.Fatalf("first plan should reserve one baseline spare: %s", first.Encode())
	}
	// Two departures in 30 s of domain 0: 4/min observed, EWMA 2/min —
	// over the 1.5/min boost threshold.
	second := e.Plan(snap(60*time.Second, 2, true))
	var churn *Step
	for i := range second.Steps {
		if second.Steps[i].Kind == StepReserve && second.Steps[i].Domain == 0 {
			churn = &second.Steps[i]
		}
	}
	if churn == nil || churn.Reason != "spare:churn" {
		t.Fatalf("hot domain did not get a churn spare: %s", second.Encode())
	}
}

// TestSpareSurplusRelease: spares beyond the pool size are returned to the
// shared idle pool, weakest battery first.
func TestSpareSurplusRelease(t *testing.T) {
	s := Snapshot{
		Region:  "r1",
		Domains: []Domain{{ID: 0}, {ID: 1}},
		Phones: []Phone{
			{ID: "p1", Domain: 0, BatteryFraction: 0.9},
			{ID: "p2", Domain: 0, Spare: true, BatteryFraction: 0.9},
			{ID: "p3", Domain: 0, Spare: true, BatteryFraction: 0.4},
			{ID: "p4", Domain: 1, Idle: true, BatteryFraction: 0.9},
		},
		Slots: []Assignment{{Slot: "n1", Phone: "p1"}},
	}
	plan := New(Config{}).Plan(s)
	if len(plan.Steps) != 1 {
		t.Fatalf("want exactly one release, got: %s", plan.Encode())
	}
	st := plan.Steps[0]
	if st.Kind != StepRelease || st.To != "p3" || st.Reason != "spare:surplus" {
		t.Fatalf("unexpected step: %s", st)
	}
}
