package placement

import (
	"fmt"
	"math"
	"time"
)

// hazard is one phone's predicted departure: In is how long until the
// phone is expected to leave service, Reason a stable label for plan steps.
type hazard struct {
	In     time.Duration
	Reason string
}

// forecastPhone extrapolates one phone's telemetry into its nearest
// predicted departure: battery death from the observed drain curve, or the
// straight-line GPS trajectory crossing the WiFi boundary. It returns
// (hazard, true) only when a departure is predicted at all.
func forecastPhone(s *Snapshot, p *Phone) (hazard, bool) {
	best, ok := hazard{}, false
	note := func(in time.Duration, reason string) {
		if !ok || in < best.In {
			best, ok = hazard{In: in, Reason: reason}, true
		}
	}
	if p.DrainWatts > 0 && p.BatteryJoules > 0 {
		note(time.Duration(p.BatteryJoules/p.DrainWatts*float64(time.Second)), "battery")
	}
	if in, crossing := timeToBoundary(s, p); crossing {
		note(in, "trajectory")
	}
	return best, ok
}

// timeToBoundary extrapolates the phone's straight-line trajectory to the
// WiFi range boundary (the same model as scheduler.TimeToBoundary, kept
// local so the planner stays a leaf package). Positions are relative to
// the region centre.
func timeToBoundary(s *Snapshot, p *Phone) (time.Duration, bool) {
	if s.RadiusM <= 0 {
		return 0, false
	}
	dist := math.Sqrt(p.X*p.X + p.Y*p.Y)
	if dist >= s.RadiusM {
		return 0, true // already out
	}
	speed := math.Sqrt(p.VelX*p.VelX + p.VelY*p.VelY)
	if speed <= 0 {
		return 0, false
	}
	var vr float64
	if dist > 0 {
		vr = (p.X*p.VelX + p.Y*p.VelY) / dist
	} else {
		vr = speed
	}
	if vr <= 0 {
		return 0, false
	}
	return time.Duration((s.RadiusM - dist) / vr * float64(time.Second)), true
}

// forecast is the per-plan hazard view: which phones are predicted to leave
// within the horizon, and each domain's departure-rate capacity outlook.
type forecast struct {
	// doomed maps phone index (into Snapshot.Phones) to its hazard for
	// phones predicted to leave within the engine's horizon.
	doomed map[int]hazard
	// rate is each domain's estimated departure rate in phones per minute,
	// an EWMA the engine differentiates across plans.
	rate []float64
}

func (f *forecast) doomedPhone(s *Snapshot, id string) (hazard, bool) {
	for i := range s.Phones {
		if string(s.Phones[i].ID) == id {
			h, ok := f.doomed[i]
			return h, ok
		}
	}
	return hazard{}, false
}

// healthy reports whether a phone is a sound migration target or spare: in
// service, enough battery headroom, and not predicted to leave.
func (f *forecast) healthy(i int, p *Phone, minBattery float64) bool {
	if _, bad := f.doomed[i]; bad {
		return false
	}
	return p.BatteryFraction <= 0 || p.BatteryFraction >= minBattery
}

// runForecast builds the hazard view for one snapshot and updates the
// engine's departure-rate EWMA from the per-domain departure counters.
func (e *Engine) runForecast(s *Snapshot) *forecast {
	f := &forecast{doomed: make(map[int]hazard), rate: make([]float64, len(s.Domains))}
	for i := range s.Phones {
		p := &s.Phones[i]
		if h, ok := forecastPhone(s, p); ok && h.In <= e.cfg.HazardHorizon {
			f.doomed[i] = h
		}
	}

	// Poisson departure-rate per domain: differentiate the cumulative
	// counters across plans into phones/minute, smoothed with an EWMA so
	// one noisy window neither starves nor floods the spare pools.
	if len(e.departRate) != len(s.Domains) {
		e.departRate = make([]float64, len(s.Domains))
		e.lastDeparts = make([]int64, len(s.Domains))
		for i := range s.Domains {
			e.lastDeparts[i] = s.Domains[i].Departures
		}
		e.lastNow = s.Now
	} else if dt := s.Now - e.lastNow; dt > 0 {
		const alpha = 0.5
		perMin := float64(time.Minute) / float64(dt)
		for i := range s.Domains {
			obs := float64(s.Domains[i].Departures-e.lastDeparts[i]) * perMin
			e.departRate[i] = alpha*obs + (1-alpha)*e.departRate[i]
			e.lastDeparts[i] = s.Domains[i].Departures
		}
		e.lastNow = s.Now
	}
	copy(f.rate, e.departRate)
	return f
}

func hazardReason(h hazard) string {
	return fmt.Sprintf("evac:%s(%s)", h.Reason, h.In.Round(time.Second))
}
