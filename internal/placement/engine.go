package placement

import (
	"sort"
	"sync"
	"time"

	"mobistreams/internal/simnet"
)

// Config parameterises the planning engine.
type Config struct {
	// SparesPerDomain is the warm spare pool kept per slot-hosting domain
	// (default 1). Domains whose Poisson departure-rate estimate exceeds
	// DepartRateBoost hold one extra.
	SparesPerDomain int
	// HazardHorizon is how far ahead a forecast departure triggers an
	// evacuation (default 75 s — ahead of the greedy scorer's reactive
	// thresholds, so planned moves beat emergency recovery).
	HazardHorizon time.Duration
	// MaxMigrations bounds migrate steps per plan (default 4).
	MaxMigrations int
	// MinBatteryFraction excludes weak phones from targets and spare pools
	// (default 0.15).
	MinBatteryFraction float64
	// DepartRateBoost is the per-domain departure rate (phones/minute)
	// above which the domain's spare pool grows by one (default 1.5).
	DepartRateBoost float64
}

func (c *Config) applyDefaults() {
	if c.SparesPerDomain <= 0 {
		c.SparesPerDomain = 1
	}
	if c.HazardHorizon <= 0 {
		c.HazardHorizon = 75 * time.Second
	}
	if c.MaxMigrations <= 0 {
		c.MaxMigrations = 4
	}
	if c.MinBatteryFraction <= 0 {
		c.MinBatteryFraction = 0.15
	}
	if c.DepartRateBoost <= 0 {
		c.DepartRateBoost = 1.5
	}
}

// Engine turns topology snapshots into plans. It is deterministic: the
// only state carried between plans is the version counter and the
// departure-rate EWMA, so a fresh engine given the same snapshot always
// emits the same plan bytes.
type Engine struct {
	cfg Config

	mu          sync.Mutex
	version     uint64
	lastDeparts []int64
	lastNow     time.Duration
	departRate  []float64
}

// New creates an engine.
func New(cfg Config) *Engine {
	cfg.applyDefaults()
	return &Engine{cfg: cfg}
}

// move is one pending migrate step before targets are chosen.
type move struct {
	slot   string
	from   simnet.NodeID
	domain int
	evac   bool
	in     time.Duration // hazard horizon for evacuations
	reason string
}

// Plan builds the next placement plan from one snapshot: forecast hazards,
// pack slot groups into domains, synthesise ordered migrate steps
// (evacuations first, most urgent leading), then rebalance the warm spare
// pools. A plan with no steps means the region is already packed and safe.
func (e *Engine) Plan(s Snapshot) *Plan {
	e.mu.Lock()
	defer e.mu.Unlock()

	f := e.runForecast(&s)
	pk := e.packGroups(&s, f)

	var moves []move
	for _, a := range s.Slots {
		if !pk.needsHome[a.Slot] {
			continue
		}
		mv := move{slot: a.Slot, from: a.Phone, domain: pk.domainOf[a.Slot]}
		if h, doomed := f.doomedPhone(&s, string(a.Phone)); doomed {
			mv.evac, mv.in, mv.reason = true, h.In, hazardReason(h)
		} else if s.phone(a.Phone) == nil {
			continue // host unknown: recovery owns this slot right now
		} else {
			mv.reason = "pack:cross-domain"
		}
		moves = append(moves, mv)
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].evac != moves[j].evac {
			return moves[i].evac
		}
		if moves[i].evac && moves[i].in != moves[j].in {
			return moves[i].in < moves[j].in
		}
		return moves[i].slot < moves[j].slot
	})
	if len(moves) > e.cfg.MaxMigrations {
		moves = moves[:e.cfg.MaxMigrations]
	}

	// Candidate landing spots per domain: warm spares first (that is what
	// the pool is for), then idle phones, strongest battery first.
	candidates := make([][]*Phone, len(s.Domains))
	for i := range s.Phones {
		p := &s.Phones[i]
		if !(p.Idle || p.Spare) || !f.healthy(i, p, e.cfg.MinBatteryFraction) {
			continue
		}
		if p.Domain >= 0 && p.Domain < len(candidates) {
			candidates[p.Domain] = append(candidates[p.Domain], p)
		}
	}
	for d := range candidates {
		sort.Slice(candidates[d], func(i, j int) bool {
			a, b := candidates[d][i], candidates[d][j]
			if a.Spare != b.Spare {
				return a.Spare
			}
			if a.BatteryFraction != b.BatteryFraction {
				return a.BatteryFraction > b.BatteryFraction
			}
			return a.ID < b.ID
		})
	}
	used := make(map[simnet.NodeID]bool)
	take := func(d int) *Phone {
		for _, p := range candidates[d] {
			if !used[p.ID] {
				used[p.ID] = true
				return p
			}
		}
		return nil
	}

	e.version++
	plan := &Plan{Region: s.Region, Version: e.version}
	for _, mv := range moves {
		target := take(mv.domain)
		if target == nil && mv.evac {
			// The home domain is full but the host is leaving: landing
			// anywhere beats emergency recovery. Try the other domains,
			// fullest candidate pool first.
			order := make([]int, len(candidates))
			for d := range order {
				order[d] = d
			}
			sort.Slice(order, func(i, j int) bool {
				if len(candidates[order[i]]) != len(candidates[order[j]]) {
					return len(candidates[order[i]]) > len(candidates[order[j]])
				}
				return order[i] < order[j]
			})
			for _, d := range order {
				if d == mv.domain {
					continue
				}
				if target = take(d); target != nil {
					break
				}
			}
		}
		if target == nil {
			continue
		}
		plan.Steps = append(plan.Steps, Step{
			Kind: StepMigrate, Slot: mv.slot, From: mv.from,
			To: target.ID, Domain: target.Domain, Reason: mv.reason,
		})
	}

	plan.Steps = append(plan.Steps, e.planSpares(&s, f, pk, used)...)
	return plan
}
