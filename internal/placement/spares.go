package placement

import (
	"sort"

	"mobistreams/internal/simnet"
)

// planSpares rebalances the warm spare pools after the migrate steps are
// chosen: every domain that hosts slots keeps SparesPerDomain healthy idle
// phones claimed (one more when its departure-rate estimate runs hot), and
// spares that are surplus, consumed as migration targets, or themselves
// forecast to leave are replaced or returned to the shared idle pool.
// Releases precede reserves so a domain swap never over-claims the pool.
func (e *Engine) planSpares(s *Snapshot, f *forecast, pk packing, used map[simnet.NodeID]bool) []Step {
	nd := len(s.Domains)
	if nd == 0 {
		return nil
	}

	type pool struct {
		spares []*Phone // healthy unconsumed spares, for surplus release
		idles  []*Phone // healthy unclaimed idles, for reserving
	}
	pools := make([]pool, nd)
	var releases []Step
	for i := range s.Phones {
		p := &s.Phones[i]
		if p.Domain < 0 || p.Domain >= nd || used[p.ID] {
			continue
		}
		healthy := f.healthy(i, p, e.cfg.MinBatteryFraction)
		switch {
		case p.Spare && !healthy:
			reason := "spare:unfit"
			if h, ok := f.doomed[i]; ok {
				reason = hazardReason(h)
			}
			releases = append(releases, Step{
				Kind: StepRelease, To: p.ID, Domain: p.Domain, Reason: reason,
			})
		case p.Spare:
			pools[p.Domain].spares = append(pools[p.Domain].spares, p)
		case p.Idle && healthy:
			pools[p.Domain].idles = append(pools[p.Domain].idles, p)
		}
	}

	var reserves []Step
	for d := 0; d < nd; d++ {
		want := 0
		if len(pk.planned) > d && pk.planned[d] > 0 {
			want = e.cfg.SparesPerDomain
			if f.rate[d] >= e.cfg.DepartRateBoost {
				want++
			}
		}
		sp, idle := pools[d].spares, pools[d].idles
		if len(sp) > want {
			// Release the weakest spares back to the shared pool.
			sort.Slice(sp, func(i, j int) bool {
				if sp[i].BatteryFraction != sp[j].BatteryFraction {
					return sp[i].BatteryFraction < sp[j].BatteryFraction
				}
				return sp[i].ID < sp[j].ID
			})
			for _, p := range sp[:len(sp)-want] {
				releases = append(releases, Step{
					Kind: StepRelease, To: p.ID, Domain: d, Reason: "spare:surplus",
				})
			}
		}
		if deficit := want - len(sp); deficit > 0 {
			sort.Slice(idle, func(i, j int) bool {
				if idle[i].BatteryFraction != idle[j].BatteryFraction {
					return idle[i].BatteryFraction > idle[j].BatteryFraction
				}
				return idle[i].ID < idle[j].ID
			})
			reason := "spare:pool"
			if f.rate[d] >= e.cfg.DepartRateBoost {
				reason = "spare:churn"
			}
			for i := 0; i < deficit && i < len(idle); i++ {
				reserves = append(reserves, Step{
					Kind: StepReserve, To: idle[i].ID, Domain: d, Reason: reason,
				})
			}
		}
	}

	sort.Slice(releases, func(i, j int) bool { return releases[i].To < releases[j].To })
	return append(releases, reserves...)
}
