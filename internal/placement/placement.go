// Package placement is the topology-aware placement planner: a pure,
// deterministic decision library that turns a region topology snapshot
// (AP/channel domains, per-domain airtime and membership, per-phone
// telemetry, the current slot→phone assignment and the graph's slot
// communication edges) into a versioned Plan of ordered migration, reserve
// and release steps.
//
// Three cooperating components produce a plan:
//
//   - the pack engine (pack.go) groups communicating slots by the graph's
//     slot projections and packs each group whole into one channel domain
//     before spilling, minimising the cross-channel hops that charge two
//     cells of airtime per transfer;
//   - the forecaster (forecast.go) extrapolates churn telemetry — battery
//     drain curves, GPS trajectory to the WiFi boundary, the observed
//     departure rate per domain — into per-phone hazard horizons, so
//     evacuations are planned ahead of predicted departures;
//   - the spare pool manager (spares.go) keeps N warm idle phones reserved
//     per domain, so a planned or emergency migration lands in-domain
//     without paying cross-channel transfer cost.
//
// Like internal/scheduler the package holds no runtime references: the
// region builds the Snapshot, the controller executes the Plan, and the
// same snapshot always encodes to the same plan, byte for byte.
package placement

import (
	"fmt"
	"strings"
	"time"

	"mobistreams/internal/simnet"
)

// Domain is one AP/channel airtime domain's snapshot.
type Domain struct {
	ID int
	// Members / Present mirror simnet.ChannelStat: endpoints assigned to
	// the channel, and the subset in radio range.
	Members int
	Present int
	// Airtime is the cumulative airtime the channel has carried.
	Airtime time.Duration
	// Departures counts phones lost from this domain (departed or failed)
	// since the region started; the forecaster differentiates it across
	// plans into a Poisson departure-rate estimate.
	Departures int64
}

// Phone is one phone's topology and telemetry snapshot.
type Phone struct {
	ID     simnet.NodeID
	Domain int
	// Idle: available as a migration target. Spare: idle but claimed into
	// a warm spare pool by a previous plan (not in the region's idle list).
	Idle  bool
	Spare bool

	BatteryJoules   float64
	BatteryFraction float64
	DrainWatts      float64
	Backlog         int

	// Mobility relative to the region centre.
	X, Y, VelX, VelY float64
}

// Assignment is one slot's current primary placement.
type Assignment struct {
	Slot  string
	Phone simnet.NodeID
}

// Edge is one directed cross-slot communication edge (weight = number of
// operator edges aggregated), from the graph's slot projections.
type Edge struct {
	From, To string
	Weight   int
}

// Snapshot is everything the engine reads: topology plus telemetry at one
// instant. Builders must present Domains ordered by ID, Phones sorted by
// ID, Slots sorted by slot and Edges sorted by (From, To) — the engine's
// determinism contract is "same snapshot bytes in, same plan bytes out".
type Snapshot struct {
	Region  string
	Now     time.Duration
	RadiusM float64 // WiFi boundary; 0 disables trajectory forecasting

	Domains []Domain
	Phones  []Phone
	Slots   []Assignment
	Edges   []Edge
}

func (s *Snapshot) phone(id simnet.NodeID) *Phone {
	for i := range s.Phones {
		if s.Phones[i].ID == id {
			return &s.Phones[i]
		}
	}
	return nil
}

// StepKind discriminates plan steps.
type StepKind int

const (
	// StepMigrate moves Slot from phone From to phone To (in domain Domain).
	StepMigrate StepKind = iota
	// StepReserve claims idle phone To into domain Domain's warm spare pool.
	StepReserve
	// StepRelease returns spare phone To to the shared idle pool.
	StepRelease
)

func (k StepKind) String() string {
	switch k {
	case StepMigrate:
		return "migrate"
	case StepReserve:
		return "reserve"
	case StepRelease:
		return "release"
	default:
		return fmt.Sprintf("step(%d)", int(k))
	}
}

// Step is one ordered plan action.
type Step struct {
	Kind   StepKind
	Slot   string        // migrate only
	From   simnet.NodeID // migrate only
	To     simnet.NodeID
	Domain int // target domain
	Reason string
}

func (st Step) String() string {
	switch st.Kind {
	case StepMigrate:
		return fmt.Sprintf("migrate %s %s->%s dom%d %s", st.Slot, st.From, st.To, st.Domain, st.Reason)
	default:
		return fmt.Sprintf("%s %s dom%d %s", st.Kind, st.To, st.Domain, st.Reason)
	}
}

// Plan is one versioned placement plan. Steps are ordered: the controller
// executes them sequentially, aborts the remainder on a failed migration,
// and replans from fresh telemetry on the next tick.
type Plan struct {
	Region  string
	Version uint64
	Steps   []Step
}

// Encode renders the plan deterministically, one step per line. The golden
// determinism test pins this output; the journal records it per step.
func (p *Plan) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s v%d steps=%d\n", p.Region, p.Version, len(p.Steps))
	for i, st := range p.Steps {
		fmt.Fprintf(&b, "%2d %s\n", i, st)
	}
	return b.String()
}
