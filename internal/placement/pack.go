package placement

import "sort"

// groupSlots partitions the assigned slots into connected components of the
// (undirected) slot communication graph: the groups that should share one
// channel domain, since every edge inside a group that crosses domains
// charges two cells of airtime per transfer. Slots with no edges form
// singleton groups. Deterministic: components are discovered by scanning
// slots in sorted order and their members stay sorted.
func groupSlots(slots []Assignment, edges []Edge) [][]string {
	adj := make(map[string][]string, len(slots))
	known := make(map[string]bool, len(slots))
	for _, a := range slots {
		known[a.Slot] = true
	}
	for _, e := range edges {
		if known[e.From] && known[e.To] {
			adj[e.From] = append(adj[e.From], e.To)
			adj[e.To] = append(adj[e.To], e.From)
		}
	}
	seen := make(map[string]bool, len(slots))
	var groups [][]string
	for _, a := range slots {
		if seen[a.Slot] {
			continue
		}
		var comp []string
		queue := []string{a.Slot}
		seen[a.Slot] = true
		for len(queue) > 0 {
			slot := queue[0]
			queue = queue[1:]
			comp = append(comp, slot)
			next := append([]string(nil), adj[slot]...)
			sort.Strings(next)
			for _, n := range next {
				if !seen[n] {
					seen[n] = true
					queue = append(queue, n)
				}
			}
		}
		sort.Strings(comp)
		groups = append(groups, comp)
	}
	return groups
}

// packing is the pack engine's output: each slot's target domain, and
// whether the slot needs a fresh phone there (its current host is either in
// the wrong domain or predicted to leave).
type packing struct {
	domainOf  map[string]int
	needsHome map[string]bool
	planned   []int // slots routed to each domain this round
}

// packGroups assigns every slot group a home domain, packing each group
// whole into a single domain before spilling (jobtree's pack-to-empty):
// a group only straddles domains when no single domain has the capacity to
// hold it. Among domains that fit, prefer the one already hosting most of
// the group (fewest moves), then the one with the least traffic planned
// onto it this round (spreads independent groups across channels), then
// the most free capacity, then the lowest ID.
func (e *Engine) packGroups(s *Snapshot, f *forecast) packing {
	p := packing{
		domainOf:  make(map[string]int, len(s.Slots)),
		needsHome: make(map[string]bool, len(s.Slots)),
	}
	nd := len(s.Domains)
	if nd == 0 {
		return p
	}

	// Free capacity per domain: healthy idle or spare phones that can
	// receive a slot.
	avail := make([]int, nd)
	for i := range s.Phones {
		ph := &s.Phones[i]
		if (ph.Idle || ph.Spare) && f.healthy(i, ph, e.cfg.MinBatteryFraction) && ph.Domain >= 0 && ph.Domain < nd {
			avail[ph.Domain]++
		}
	}

	// Current healthy placement per slot: domain, or -1 when the slot's
	// host is missing, unhealthy or forecast to leave.
	curDomain := make(map[string]int, len(s.Slots))
	for _, a := range s.Slots {
		curDomain[a.Slot] = -1
		for i := range s.Phones {
			ph := &s.Phones[i]
			if ph.ID != a.Phone {
				continue
			}
			if _, bad := f.doomed[i]; !bad && ph.Domain >= 0 && ph.Domain < nd {
				curDomain[a.Slot] = ph.Domain
			}
			break
		}
	}

	planned := make([]int, nd)
	p.planned = planned
	for _, group := range groupSlots(s.Slots, s.Edges) {
		inDom := make([]int, nd)
		for _, slot := range group {
			if d := curDomain[slot]; d >= 0 {
				inDom[d]++
			}
		}
		best := -1
		for d := 0; d < nd; d++ {
			if len(group)-inDom[d] > avail[d] {
				continue // does not fit whole
			}
			if best < 0 {
				best = d
				continue
			}
			switch {
			case inDom[d] != inDom[best]:
				if inDom[d] > inDom[best] {
					best = d
				}
			case planned[d] != planned[best]:
				if planned[d] < planned[best] {
					best = d
				}
			case avail[d] != avail[best]:
				if avail[d] > avail[best] {
					best = d
				}
			}
		}
		if best >= 0 {
			for _, slot := range group {
				p.domainOf[slot] = best
				planned[best]++
				if curDomain[slot] != best {
					p.needsHome[slot] = true
					avail[best]--
				}
			}
			continue
		}

		// Spill: no single domain holds the group. Fill domains in order
		// of (most of the group already there, most capacity, lowest ID),
		// keeping incumbent slots in place first so the spill moves as
		// few slots as possible.
		order := make([]int, nd)
		for d := range order {
			order[d] = d
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			if inDom[a] != inDom[b] {
				return inDom[a] > inDom[b]
			}
			if avail[a] != avail[b] {
				return avail[a] > avail[b]
			}
			return a < b
		})
		assigned := make(map[string]bool, len(group))
		for _, d := range order {
			// Incumbents stay free of charge.
			for _, slot := range group {
				if !assigned[slot] && curDomain[slot] == d {
					p.domainOf[slot] = d
					planned[d]++
					assigned[slot] = true
				}
			}
			for _, slot := range group {
				if assigned[slot] || avail[d] == 0 {
					continue
				}
				p.domainOf[slot] = d
				p.needsHome[slot] = true
				planned[d]++
				avail[d]--
				assigned[slot] = true
			}
		}
		for _, slot := range group {
			if !assigned[slot] {
				// Region out of capacity: leave the slot where it is.
				d := curDomain[slot]
				if d < 0 {
					d = 0
				}
				p.domainOf[slot] = d
			}
		}
	}
	return p
}
