package operator

import (
	"encoding/binary"
	"fmt"
)

// DeltaSnapshotter is the optional incremental-checkpoint capability of an
// operator: instead of serialising its whole state at every checkpoint, the
// operator emits a patch describing only what changed since the previous
// snapshot. The checkpoint layer chains such patches onto a full base blob
// and replays the chain at restore time. Operators that cannot produce a
// delta for the requested basis return ok=false and the caller falls back
// to a full snapshot.
type DeltaSnapshotter interface {
	Operator
	// SnapshotDelta returns a patch (EncodePatch format) transforming the
	// serialised state recorded at sinceVersion into the current state.
	// ok=false when no baseline for sinceVersion exists (first checkpoint,
	// freshly restored operator, or an intervening full snapshot at a
	// different version).
	SnapshotDelta(sinceVersion uint64) (patch []byte, ok bool)
	// MarkSnapshot records the operator's current serialised state as the
	// baseline for version v — the basis the next SnapshotDelta diffs
	// against. The node calls it after every successful checkpoint, full
	// or delta.
	MarkSnapshot(v uint64)
}

// Patch wire format: u32 newLen, u32 nRanges, then nRanges of
// (u32 offset, u32 length, length bytes). Applying a patch to the old
// bytes yields the new bytes: copy old, truncate/extend to newLen, then
// overwrite each range.
const patchHeaderBytes = 8

// mergeGap coalesces difference runs separated by fewer equal bytes than a
// range header costs, trading a few unchanged bytes for fewer ranges.
const mergeGap = 8

// EncodePatch computes a byte-range diff turning old into new. The patch is
// at worst one range covering all of new (a full rewrite), so a patch is
// never much larger than the state itself.
func EncodePatch(old, new []byte) []byte {
	type span struct{ off, end int }
	var spans []span
	limit := len(old)
	if len(new) < limit {
		limit = len(new)
	}
	i := 0
	for i < limit {
		if old[i] == new[i] {
			i++
			continue
		}
		j := i + 1
		for j < limit {
			if old[j] != new[j] {
				j++
				continue
			}
			// Probe the equal run: absorb it if shorter than a header.
			k := j
			for k < limit && k-j < mergeGap && old[k] == new[k] {
				k++
			}
			if k < limit && k-j < mergeGap {
				j = k + 1
				continue
			}
			break
		}
		spans = append(spans, span{i, j})
		i = j
	}
	if len(new) > limit {
		// Appended tail is one more range.
		if n := len(spans); n > 0 && spans[n-1].end == limit {
			spans[n-1].end = len(new)
		} else {
			spans = append(spans, span{limit, len(new)})
		}
	}
	size := patchHeaderBytes
	for _, s := range spans {
		size += 8 + (s.end - s.off)
	}
	buf := make([]byte, 0, size)
	var tmp [4]byte
	put := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(uint32(len(new)))
	put(uint32(len(spans)))
	for _, s := range spans {
		put(uint32(s.off))
		put(uint32(s.end - s.off))
		buf = append(buf, new[s.off:s.end]...)
	}
	return buf
}

// ApplyPatch applies a patch produced by EncodePatch to old and returns the
// new bytes. It never aliases old.
func ApplyPatch(old, patch []byte) ([]byte, error) {
	if len(patch) < patchHeaderBytes {
		return nil, fmt.Errorf("operator: short patch (%d bytes)", len(patch))
	}
	newLen := int(binary.BigEndian.Uint32(patch[0:4]))
	nRanges := int(binary.BigEndian.Uint32(patch[4:8]))
	out := make([]byte, newLen)
	copy(out, old)
	off := patchHeaderBytes
	for r := 0; r < nRanges; r++ {
		if off+8 > len(patch) {
			return nil, fmt.Errorf("operator: truncated patch range header")
		}
		at := int(binary.BigEndian.Uint32(patch[off : off+4]))
		ln := int(binary.BigEndian.Uint32(patch[off+4 : off+8]))
		off += 8
		if off+ln > len(patch) || at+ln > newLen {
			return nil, fmt.Errorf("operator: patch range [%d,%d) out of bounds", at, at+ln)
		}
		copy(out[at:at+ln], patch[off:off+ln])
		off += ln
	}
	return out, nil
}

// DeltaTracker is the embeddable baseline store behind DeltaSnapshotter: it
// remembers the serialised state at the last snapshot cut and diffs the
// current state against it. Operators wire it in two one-line methods:
//
//	func (o *Op) SnapshotDelta(since uint64) ([]byte, bool) { return o.delta.Delta(since, o.Snapshot) }
//	func (o *Op) MarkSnapshot(v uint64)                     { o.delta.Mark(v, o.Snapshot) }
type DeltaTracker struct {
	baseVersion uint64
	base        []byte
	haveBase    bool
	// pending caches the serialised bytes Delta just diffed, so the Mark
	// that follows within the same checkpoint cut (no tuples processed in
	// between — both run on the executor's checkpoint path) reuses them
	// instead of serialising the state a second time.
	pending []byte
}

// Delta diffs snap()'s current bytes against the baseline recorded for
// sinceVersion; ok=false when the baseline is missing or stale.
func (d *DeltaTracker) Delta(sinceVersion uint64, snap func() ([]byte, error)) ([]byte, bool) {
	d.pending = nil
	if !d.haveBase || d.baseVersion != sinceVersion {
		return nil, false
	}
	cur, err := snap()
	if err != nil {
		return nil, false
	}
	d.pending = cur
	return EncodePatch(d.base, cur), true
}

// Mark records the operator's current serialised bytes as the baseline for
// version v: the bytes cached by a Delta call in the same checkpoint cut
// when present, a fresh snap() otherwise.
func (d *DeltaTracker) Mark(v uint64, snap func() ([]byte, error)) {
	if cur := d.pending; cur != nil {
		d.pending = nil
		d.baseVersion, d.base, d.haveBase = v, cur, true
		return
	}
	cur, err := snap()
	if err != nil {
		d.haveBase = false
		return
	}
	d.baseVersion, d.base, d.haveBase = v, cur, true
}

// Drop invalidates the baseline (after a Restore the in-memory state no
// longer matches any recorded cut).
func (d *DeltaTracker) Drop() {
	d.haveBase = false
	d.pending = nil
}
