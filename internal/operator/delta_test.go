package operator

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"mobistreams/internal/tuple"
)

func TestPatchRoundTripBasic(t *testing.T) {
	cases := []struct{ old, new string }{
		{"", ""},
		{"", "hello"},
		{"hello", ""},
		{"hello", "hello"},
		{"hello world", "hello_world"},
		{"aaaaaaaa", "aaaabaaa"},
		{"short", "a much longer replacement"},
		{"a much longer original", "tiny"},
	}
	for _, c := range cases {
		patch := EncodePatch([]byte(c.old), []byte(c.new))
		got, err := ApplyPatch([]byte(c.old), patch)
		if err != nil {
			t.Fatalf("%q->%q: %v", c.old, c.new, err)
		}
		if !bytes.Equal(got, []byte(c.new)) {
			t.Fatalf("%q->%q: got %q", c.old, c.new, got)
		}
	}
}

func TestPatchIdenticalIsSmall(t *testing.T) {
	state := bytes.Repeat([]byte{7}, 64<<10)
	patch := EncodePatch(state, state)
	if len(patch) != patchHeaderBytes {
		t.Fatalf("identical-state patch is %d bytes, want header only (%d)", len(patch), patchHeaderBytes)
	}
}

func TestPatchSparseChangeIsSmall(t *testing.T) {
	old := make([]byte, 32<<10)
	new := append([]byte(nil), old...)
	new[100] ^= 1
	new[20000] ^= 1
	patch := EncodePatch(old, new)
	if len(patch) > 64 {
		t.Fatalf("2-byte change produced a %d-byte patch", len(patch))
	}
	got, err := ApplyPatch(old, patch)
	if err != nil || !bytes.Equal(got, new) {
		t.Fatalf("apply: %v, equal=%v", err, bytes.Equal(got, new))
	}
}

func TestApplyPatchRejectsGarbage(t *testing.T) {
	if _, err := ApplyPatch(nil, []byte{1, 2}); err == nil {
		t.Fatal("short patch accepted")
	}
	// Header claiming one range but no range bytes.
	bad := []byte{0, 0, 0, 4, 0, 0, 0, 1}
	if _, err := ApplyPatch(nil, bad); err == nil {
		t.Fatal("truncated range header accepted")
	}
	// Range writing past newLen.
	bad = append([]byte{0, 0, 0, 2, 0, 0, 0, 1}, []byte{0, 0, 0, 1, 0, 0, 0, 4, 'a', 'b', 'c', 'd'}...)
	if _, err := ApplyPatch(nil, bad); err == nil {
		t.Fatal("out-of-bounds range accepted")
	}
}

func TestPatchRoundTripProperty(t *testing.T) {
	f := func(seed int64, oldLen, newLen uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		old := make([]byte, int(oldLen)%4096)
		new := make([]byte, int(newLen)%4096)
		rng.Read(old)
		// Start from old where lengths overlap, then mutate a few runs,
		// which is the shape real operator state diffs take.
		copy(new, old)
		for i := copy(new, old); i < len(new); i++ {
			new[i] = byte(rng.Intn(256))
		}
		for m := 0; m < rng.Intn(8); m++ {
			if len(new) == 0 {
				break
			}
			at := rng.Intn(len(new))
			run := 1 + rng.Intn(32)
			for i := at; i < len(new) && i < at+run; i++ {
				new[i] ^= byte(1 + rng.Intn(255))
			}
		}
		got, err := ApplyPatch(old, EncodePatch(old, new))
		return err == nil && bytes.Equal(got, new)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaTrackerLifecycle(t *testing.T) {
	m := NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in })
	if _, ok := m.SnapshotDelta(0); ok {
		t.Fatal("delta available before any MarkSnapshot")
	}
	Run(m, "", tp(1, 1))
	m.MarkSnapshot(3)
	Run(m, "", tp(2, 1))
	if _, ok := m.SnapshotDelta(2); ok {
		t.Fatal("delta for the wrong basis version accepted")
	}
	patch, ok := m.SnapshotDelta(3)
	if !ok {
		t.Fatal("no delta against the marked version")
	}
	// Applying the patch to the marked-state bytes must equal the current
	// snapshot: the round-trip the checkpoint chain replays at restore.
	fresh := NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in })
	Run(fresh, "", tp(1, 1))
	base, _ := fresh.Snapshot()
	want, _ := m.Snapshot()
	got, err := ApplyPatch(base, patch)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("patched state mismatch: %v", err)
	}
}

func TestStdlibOperatorsImplementDeltaSnapshotter(t *testing.T) {
	ops := []Operator{
		NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in }),
		NewFilter("f", func(*tuple.Tuple) bool { return true }),
		NewRoundRobin("d", "a", "b"),
		NewJoin("j", "l", "r", func(l, r *tuple.Tuple) *tuple.Tuple { return l }),
		NewWindow("w", 8),
		NewAggregate("a"),
	}
	for _, op := range ops {
		if _, ok := op.(DeltaSnapshotter); !ok {
			t.Fatalf("%s does not implement DeltaSnapshotter", op.ID())
		}
	}
}

func TestWindowProcessSnapshotRestore(t *testing.T) {
	w := NewWindow("w", 4)
	var lastMean float64
	for i := 1; i <= 6; i++ {
		tt := tp(uint64(i), 1)
		tt.Value = float64(i)
		outs, err := Run(w, "", tt)
		if err != nil || len(outs) != 1 {
			t.Fatalf("process %d: %v, outs=%d", i, err, len(outs))
		}
		lastMean = outs[0].T.Value.(float64)
	}
	// Window holds 3,4,5,6 after six inputs.
	if lastMean != (3+4+5+6)/4.0 {
		t.Fatalf("mean = %v", lastMean)
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWindow("w", 4)
	if err := w2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	snap2, _ := w2.Snapshot()
	if !bytes.Equal(snap, snap2) || w2.Count() != 6 {
		t.Fatalf("restore mismatch: count=%d", w2.Count())
	}
	if err := w2.Restore([]byte{1}); err == nil {
		t.Fatal("short state accepted")
	}
}

func TestWindowDeltaSmallerThanFull(t *testing.T) {
	w := NewWindow("w", 512)
	for i := 0; i < 512; i++ {
		tt := tp(uint64(i), 1)
		tt.Value = float64(i)
		Run(w, "", tt)
	}
	w.MarkSnapshot(1)
	// One more input rotates one slot; the per-value deltas are small
	// because consecutive float64 window entries share most bytes after
	// the shift — the patch must at least beat a full rewrite.
	tt := tp(513, 1)
	tt.Value = 3.5
	Run(w, "", tt)
	patch, ok := w.SnapshotDelta(1)
	if !ok {
		t.Fatal("no delta")
	}
	full, _ := w.Snapshot()
	if len(patch) >= len(full)+patchHeaderBytes {
		t.Fatalf("delta %d bytes not smaller than full %d", len(patch), len(full))
	}
}

func TestAggregateProcessSnapshotRestore(t *testing.T) {
	a := NewAggregate("a")
	keys := []string{"x", "y", "x", "z", "x"}
	for i, k := range keys {
		tt := tp(uint64(i), 1)
		tt.Kind = k
		tt.Value = float64(i + 1)
		if _, err := Run(a, "", tt); err != nil {
			t.Fatal(err)
		}
	}
	if a.Keys() != 3 {
		t.Fatalf("keys = %d", a.Keys())
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a2 := NewAggregate("a")
	if err := a2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	snap2, _ := a2.Snapshot()
	if !bytes.Equal(snap, snap2) {
		t.Fatal("restore not byte-identical")
	}
	if err := a2.Restore([]byte{1}); err == nil {
		t.Fatal("short state accepted")
	}
}

func TestAggregateDeltaTouchesOnlyChangedKeys(t *testing.T) {
	a := NewAggregate("a")
	for i := 0; i < 256; i++ {
		tt := tp(uint64(i), 1)
		tt.Kind = key256(i)
		tt.Value = 1.0
		Run(a, "", tt)
	}
	a.MarkSnapshot(7)
	// Touch one key: the delta should cover its entry, not the table.
	tt := tp(1000, 1)
	tt.Kind = key256(17)
	tt.Value = 2.0
	Run(a, "", tt)
	patch, ok := a.SnapshotDelta(7)
	if !ok {
		t.Fatal("no delta")
	}
	full, _ := a.Snapshot()
	if len(patch) > len(full)/8 {
		t.Fatalf("single-key delta is %d bytes of a %d-byte table", len(patch), len(full))
	}
	got, err := ApplyPatch(mustSnapAt(t, 256), patch)
	if err != nil || !bytes.Equal(got, full) {
		t.Fatalf("patched table mismatch: %v", err)
	}
}

// key256 gives fixed-width sortable keys so table offsets stay aligned.
func key256(i int) string {
	return string([]byte{'k', byte('0' + i/100), byte('0' + (i/10)%10), byte('0' + i%10)})
}

// mustSnapAt rebuilds the aggregate state after the first n inserts.
func mustSnapAt(t *testing.T, n int) []byte {
	t.Helper()
	a := NewAggregate("a")
	for i := 0; i < n; i++ {
		tt := tp(uint64(i), 1)
		tt.Kind = key256(i)
		tt.Value = 1.0
		Run(a, "", tt)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestWindowNonNumericUsesSize(t *testing.T) {
	w := NewWindow("w", 2)
	outs, err := Run(w, "", tp(1, 10))
	if err != nil || len(outs) != 1 {
		t.Fatalf("process: %v", err)
	}
	if outs[0].T.Value.(float64) != 10 {
		t.Fatalf("mean = %v", outs[0].T.Value)
	}
}
