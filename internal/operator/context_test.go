package operator

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"mobistreams/internal/tuple"
)

// fakeRuntime is a controllable Runtime for exercising the context's
// growth surface: settable simulated time and manually fired timers.
type fakeRuntime struct {
	outs   []Out
	now    time.Duration
	timers []time.Duration
}

func (f *fakeRuntime) Emit(t *tuple.Tuple) { f.outs = append(f.outs, Out{T: t}) }
func (f *fakeRuntime) EmitTo(to string, t *tuple.Tuple) bool {
	f.outs = append(f.outs, Out{To: to, T: t})
	return true
}
func (f *fakeRuntime) Now() time.Duration { return f.now }
func (f *fakeRuntime) SetTimer(at time.Duration) bool {
	f.timers = append(f.timers, at)
	return true
}

func TestKeyedStateEncodeDecodeRoundTrip(t *testing.T) {
	ks := NewKeyedState()
	ks.Put("b", []byte{2, 2})
	ks.Put("a", []byte{1})
	ks.Put("c", nil) // nil deletes: never stored
	enc := ks.Encode()
	// Deterministic: re-encoding after a rebuild must be byte-identical.
	ks2 := NewKeyedState()
	if err := ks2.Decode(enc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, ks2.Encode()) {
		t.Fatal("encode/decode not byte-stable")
	}
	if ks2.Len() != 2 || !bytes.Equal(ks2.Get("b"), []byte{2, 2}) {
		t.Fatalf("decoded contents wrong: %v", ks2.Keys())
	}
	if err := ks2.Decode(enc[:5]); err == nil {
		t.Fatal("short state accepted")
	}
	if err := ks2.Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated value accepted")
	}
}

func TestContextStateBindsKeyedStater(t *testing.T) {
	w := NewTimeWindow("w", time.Second)
	rt := &fakeRuntime{}
	ctx := NewContext(rt)
	ctx.BindState(w.KeyedState())
	ctx.State().Put("k", []byte{9})
	if got := w.KeyedState().Get("k"); !bytes.Equal(got, []byte{9}) {
		t.Fatal("context state not bound to the operator's store")
	}
	// Unbound contexts get a volatile store.
	ctx2 := NewContext(rt)
	ctx2.State().Put("x", []byte{1})
	if ctx2.State().Len() != 1 {
		t.Fatal("volatile store lost writes")
	}
}

// legacyEcho is a legacy-contract operator emitting one routed and one
// fan-out emission per input, in that order.
type legacyEcho struct {
	Base
	n uint64
}

func (l *legacyEcho) Process(_ string, t *tuple.Tuple) ([]Out, error) {
	l.n++
	return []Out{EmitTo("x", t), Emit(t)}, nil
}

func (l *legacyEcho) Snapshot() ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], l.n)
	return buf[:], nil
}

func (l *legacyEcho) Restore(data []byte) error {
	l.n = binary.BigEndian.Uint64(data)
	return nil
}

func TestAdaptLegacyPreservesEmissionOrder(t *testing.T) {
	op := &legacyEcho{Base: Base{Name: "e"}}
	outs, err := Run(op, "", &tuple.Tuple{Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs[0].To != "x" || outs[1].To != "" {
		t.Fatalf("adapter reordered emissions: %+v", outs)
	}
	if Proc(op) == nil {
		t.Fatal("legacy contract not resolved")
	}
}

func TestProcRejectsContractlessOperator(t *testing.T) {
	if Proc(&Base{Name: "bare"}) != nil {
		t.Fatal("operator with no Process resolved a contract")
	}
	if _, err := Run(&Base{Name: "bare"}, "", &tuple.Tuple{}); err == nil {
		t.Fatal("Run accepted a contractless operator")
	}
}

func TestRegistryValidate(t *testing.T) {
	reg := Registry{
		"a": func() Operator { return NewPassthrough("a") },
		"b": func() Operator { return NewPassthrough("WRONG") },
		"c": func() Operator { return &Base{Name: "c"} },
	}
	if err := reg.Validate([]string{"a"}); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}
	if err := reg.Validate([]string{"a", "missing"}); err == nil {
		t.Fatal("missing factory accepted")
	}
	if err := reg.Validate([]string{"b"}); err == nil {
		t.Fatal("ID-mismatched factory accepted")
	}
	if err := reg.Validate([]string{"c"}); err == nil {
		t.Fatal("contractless operator accepted")
	}
}

func TestTimeWindowTumblesPerKey(t *testing.T) {
	w := NewTimeWindow("w", 10*time.Second)
	rt := &fakeRuntime{now: 3 * time.Second}
	ctx := NewContext(rt)
	ctx.BindState(w.KeyedState())

	in := func(seq uint64, kind string, v float64) {
		tt := &tuple.Tuple{Seq: seq, Kind: kind, Value: v}
		if err := w.Process(ctx, "", tt); err != nil {
			t.Fatal(err)
		}
	}
	in(1, "a", 2)
	in(2, "b", 10)
	in(3, "a", 4)
	if len(rt.timers) != 1 || rt.timers[0] != 10*time.Second {
		t.Fatalf("timer not armed at the aligned window end: %v", rt.timers)
	}
	if len(rt.outs) != 0 {
		t.Fatal("window emitted before closing")
	}

	rt.now = 10 * time.Second
	if err := w.OnTimer(ctx, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Sorted key order: a's mean 3, then b's mean 10.
	if len(rt.outs) != 2 {
		t.Fatalf("window emitted %d tuples, want 2", len(rt.outs))
	}
	if got := rt.outs[0].T.Value.(float64); got != 3 {
		t.Fatalf("key a mean = %v, want 3", got)
	}
	if got := rt.outs[1].T.Value.(float64); got != 10 {
		t.Fatalf("key b mean = %v, want 10", got)
	}
	if w.Windows() != 1 {
		t.Fatalf("windows closed = %d, want 1 (one close, two keys)", w.Windows())
	}
	// The close reset the accumulators; the next tuple re-arms.
	in(4, "a", 8)
	if len(rt.timers) != 2 || rt.timers[1] != 20*time.Second {
		t.Fatalf("window did not re-arm: %v", rt.timers)
	}
}

func TestTimeWindowSnapshotRestoreByteIdentical(t *testing.T) {
	w := NewTimeWindow("w", time.Second)
	rt := &fakeRuntime{}
	ctx := NewContext(rt)
	ctx.BindState(w.KeyedState())
	for i := 1; i <= 5; i++ {
		tt := &tuple.Tuple{Seq: uint64(i), Kind: "k", Value: float64(i)}
		if err := w.Process(ctx, "", tt); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewTimeWindow("w", time.Second)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	snap2, _ := fresh.Snapshot()
	if !bytes.Equal(snap, snap2) {
		t.Fatal("restore not byte-identical")
	}
	if err := fresh.Restore([]byte{1}); err == nil {
		t.Fatal("short state accepted")
	}
	if _, ok := Operator(w).(DeltaSnapshotter); !ok {
		t.Fatal("TimeWindow does not implement DeltaSnapshotter")
	}
}

// Regression: a window close right after a restore must not discard
// checkpointed per-key sums whose keys have seen no post-restore tuple
// (no emission template yet) — they fold into the first window that can
// emit them.
func TestTimeWindowRetainsRestoredSumsWithoutTemplate(t *testing.T) {
	w := NewTimeWindow("w", time.Second)
	rt := &fakeRuntime{}
	ctx := NewContext(rt)
	ctx.BindState(w.KeyedState())
	for i := 1; i <= 4; i++ {
		kind := "a"
		if i%2 == 0 {
			kind = "b"
		}
		tt := &tuple.Tuple{Seq: uint64(i), Kind: kind, Value: float64(10 * i)}
		if err := w.Process(ctx, "", tt); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewTimeWindow("w", time.Second)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	frt := &fakeRuntime{}
	fctx := NewContext(frt)
	fctx.BindState(fresh.KeyedState())
	// Post-restore traffic only on key a; the close must emit a (merged
	// restored + fresh sums) and RETAIN b's restored accumulator.
	if err := fresh.Process(fctx, "", &tuple.Tuple{Seq: 9, Kind: "a", Value: 60.0}); err != nil {
		t.Fatal(err)
	}
	if err := fresh.OnTimer(fctx, time.Second); err != nil {
		t.Fatal(err)
	}
	if len(frt.outs) != 1 {
		t.Fatalf("emitted %d tuples, want 1 (key a)", len(frt.outs))
	}
	// Key a: restored 10+30 plus fresh 60 over 3 tuples.
	if got := frt.outs[0].T.Value.(float64); got != (10+30+60)/3.0 {
		t.Fatalf("merged mean = %v", got)
	}
	if fresh.KeyedState().Get("b") == nil {
		t.Fatal("restored sums for key b discarded without emission")
	}
	// Once b sees a tuple, the next close emits restored+fresh together.
	if err := fresh.Process(fctx, "", &tuple.Tuple{Seq: 10, Kind: "b", Value: 100.0}); err != nil {
		t.Fatal(err)
	}
	if err := fresh.OnTimer(fctx, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(frt.outs) != 2 {
		t.Fatalf("emitted %d tuples after b's close, want 2", len(frt.outs))
	}
	if got := frt.outs[1].T.Value.(float64); got != (20+40+100)/3.0 {
		t.Fatalf("key b merged mean = %v", got)
	}
}

// Regression: Run must bind a KeyedStater operator's own store, so state
// written through ctx.State() under Run is the state the operator
// checkpoints — same invariant the node executor provides.
func TestRunBindsKeyedStaterState(t *testing.T) {
	w := NewTimeWindow("w", time.Second)
	for i := 1; i <= 3; i++ {
		tt := &tuple.Tuple{Seq: uint64(i), Kind: "k", Value: float64(i)}
		if _, err := Run(w, "", tt); err != nil {
			t.Fatal(err)
		}
	}
	if w.KeyedState().Get("k") == nil {
		t.Fatal("Run wrote keyed state into a throwaway store")
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewTimeWindow("w", time.Second)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.KeyedState().Get("k") == nil {
		t.Fatal("accumulators written under Run did not reach the checkpoint")
	}
}
