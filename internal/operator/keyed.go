package operator

import (
	"encoding/binary"
	"time"

	"mobistreams/internal/tuple"
)

// KeyTag assigns a partition key to every tuple by rewriting its Kind —
// the compiled form of the stream builder's KeyBy stage. Downstream keyed
// routing (the elastic partition table) and keyed operators (TimeWindow,
// Aggregate, KeyedTally) all read the key from Kind, so tagging is the
// only coupling between user key functions and the runtime.
type KeyTag struct {
	Base
	Fn func(*tuple.Tuple) string
}

// NewKeyTag builds a KeyTag stage around a key function.
func NewKeyTag(id string, fn func(*tuple.Tuple) string) *KeyTag {
	return &KeyTag{Base: Base{Name: id}, Fn: fn}
}

// Process implements Processor: emits a clone carrying the key, leaving
// the input (possibly preserved upstream) untouched.
func (k *KeyTag) Process(ctx *Context, _ string, t *tuple.Tuple) error {
	out := t.Clone()
	out.Kind = k.Fn(t)
	ctx.Emit(out)
	return nil
}

// KeyedTally counts tuples per key (key = Kind) in a KeyedState and
// forwards every input unchanged, so end-to-end latency stays measurable
// through it. It is the canonical elastic operator: all of its state
// lives in the KeyedState, so a key-range split can hand any part of it
// to another instance via ExportRange/ImportRange.
type KeyedTally struct {
	Base
	CostFn func(*tuple.Tuple) time.Duration
	// ValueBytes pads each per-key record to model heavier per-key state
	// (min 8: the count itself).
	ValueBytes int
	state      *KeyedState
	delta      DeltaTracker
}

// NewKeyedTally builds a keyed tally.
func NewKeyedTally(id string) *KeyedTally {
	return &KeyedTally{Base: Base{Name: id}, state: NewKeyedState()}
}

// Process implements Processor.
func (k *KeyedTally) Process(ctx *Context, _ string, t *tuple.Tuple) error {
	width := k.ValueBytes
	if width < 8 {
		width = 8
	}
	rec := k.state.Get(t.Kind)
	if len(rec) != width {
		rec = make([]byte, width)
	}
	binary.BigEndian.PutUint64(rec[:8], binary.BigEndian.Uint64(rec[:8])+1)
	k.state.Put(t.Kind, rec)
	ctx.Emit(t)
	return nil
}

// Cost implements Operator.
func (k *KeyedTally) Cost(t *tuple.Tuple) time.Duration {
	if k.CostFn == nil {
		return 0
	}
	return k.CostFn(t)
}

// KeyedState implements KeyedStater: the tally's store is its whole
// partitionable state.
func (k *KeyedTally) KeyedState() *KeyedState { return k.state }

// Count reports the tally for one key (tests).
func (k *KeyedTally) Count(key string) uint64 {
	rec := k.state.Get(key)
	if len(rec) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(rec[:8])
}

// Snapshot implements Operator.
func (k *KeyedTally) Snapshot() ([]byte, error) { return k.state.Encode(), nil }

// Restore implements Operator.
func (k *KeyedTally) Restore(data []byte) error {
	k.delta.Drop()
	return k.state.Decode(data)
}

// StateSize implements Operator.
func (k *KeyedTally) StateSize() int { return k.state.Size() }

// SnapshotDelta implements DeltaSnapshotter.
func (k *KeyedTally) SnapshotDelta(since uint64) ([]byte, bool) {
	return k.delta.Delta(since, k.Snapshot)
}

// MarkSnapshot implements DeltaSnapshotter.
func (k *KeyedTally) MarkSnapshot(v uint64) { k.delta.Mark(v, k.Snapshot) }
