package operator

import (
	"encoding/binary"
	"fmt"
	"time"

	"mobistreams/internal/tuple"
)

// FixedCost returns a cost function charging the same service time for
// every tuple.
func FixedCost(d time.Duration) func(*tuple.Tuple) time.Duration {
	return func(*tuple.Tuple) time.Duration { return d }
}

// Map applies a pure function to every tuple.
type Map struct {
	Base
	Fn      func(*tuple.Tuple) *tuple.Tuple
	CostFn  func(*tuple.Tuple) time.Duration
	SizeFn  func() int // modelled state size; nil means stateless
	counter uint64     // processed-tuple count, part of checkpointed state
}

// NewMap builds a Map operator.
func NewMap(id string, fn func(*tuple.Tuple) *tuple.Tuple) *Map {
	return &Map{Base: Base{Name: id}, Fn: fn}
}

// Process implements Operator.
func (m *Map) Process(_ string, t *tuple.Tuple) ([]Out, error) {
	m.counter++
	out := m.Fn(t)
	if out == nil {
		return nil, nil
	}
	return []Out{Emit(out)}, nil
}

// Cost implements Operator.
func (m *Map) Cost(t *tuple.Tuple) time.Duration {
	if m.CostFn == nil {
		return 0
	}
	return m.CostFn(t)
}

// Snapshot implements Operator.
func (m *Map) Snapshot() ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], m.counter)
	return buf[:], nil
}

// Restore implements Operator.
func (m *Map) Restore(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("map %s: short state (%d bytes)", m.Name, len(data))
	}
	m.counter = binary.BigEndian.Uint64(data)
	return nil
}

// StateSize implements Operator.
func (m *Map) StateSize() int {
	if m.SizeFn == nil {
		return 8
	}
	return m.SizeFn()
}

// Count reports how many tuples the operator has processed (for tests).
func (m *Map) Count() uint64 { return m.counter }

// Filter drops tuples failing a predicate.
type Filter struct {
	Base
	Pred    func(*tuple.Tuple) bool
	CostFn  func(*tuple.Tuple) time.Duration
	dropped uint64
	passed  uint64
}

// NewFilter builds a Filter operator.
func NewFilter(id string, pred func(*tuple.Tuple) bool) *Filter {
	return &Filter{Base: Base{Name: id}, Pred: pred}
}

// Process implements Operator.
func (f *Filter) Process(_ string, t *tuple.Tuple) ([]Out, error) {
	if f.Pred(t) {
		f.passed++
		return []Out{Emit(t)}, nil
	}
	f.dropped++
	return nil, nil
}

// Cost implements Operator.
func (f *Filter) Cost(t *tuple.Tuple) time.Duration {
	if f.CostFn == nil {
		return 0
	}
	return f.CostFn(t)
}

// Snapshot implements Operator.
func (f *Filter) Snapshot() ([]byte, error) {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], f.dropped)
	binary.BigEndian.PutUint64(buf[8:16], f.passed)
	return buf[:], nil
}

// Restore implements Operator.
func (f *Filter) Restore(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("filter %s: short state", f.Name)
	}
	f.dropped = binary.BigEndian.Uint64(data[0:8])
	f.passed = binary.BigEndian.Uint64(data[8:16])
	return nil
}

// StateSize implements Operator.
func (*Filter) StateSize() int { return 16 }

// RoundRobin routes each input tuple to one of its targets in rotation —
// BCP's dispatcher D spreading images across the parallel counters.
type RoundRobin struct {
	Base
	Targets []string
	next    uint64
}

// NewRoundRobin builds a dispatcher over the given target operators.
func NewRoundRobin(id string, targets ...string) *RoundRobin {
	return &RoundRobin{Base: Base{Name: id}, Targets: targets}
}

// Process implements Operator.
func (r *RoundRobin) Process(_ string, t *tuple.Tuple) ([]Out, error) {
	if len(r.Targets) == 0 {
		return nil, fmt.Errorf("roundrobin %s: no targets", r.Name)
	}
	to := r.Targets[r.next%uint64(len(r.Targets))]
	r.next++
	return []Out{EmitTo(to, t)}, nil
}

// Snapshot implements Operator.
func (r *RoundRobin) Snapshot() ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], r.next)
	return buf[:], nil
}

// Restore implements Operator.
func (r *RoundRobin) Restore(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("roundrobin %s: short state", r.Name)
	}
	r.next = binary.BigEndian.Uint64(data)
	return nil
}

// StateSize implements Operator.
func (*RoundRobin) StateSize() int { return 8 }

// Join pairs tuples from two upstream operators by sequence number: the
// paper's J operator joining boarding/alighting predictions for the same
// bus arrival. Unmatched tuples wait in per-side windows that are part of
// the operator's checkpointed state.
type Join struct {
	Base
	Left, Right string
	Merge       func(l, r *tuple.Tuple) *tuple.Tuple
	CostFn      func(*tuple.Tuple) time.Duration
	// ExtraState models window buffers beyond the live tuples.
	ExtraState int
	left       map[uint64]*tuple.Tuple
	right      map[uint64]*tuple.Tuple
}

// NewJoin builds a Join keyed by tuple sequence number.
func NewJoin(id, left, right string, merge func(l, r *tuple.Tuple) *tuple.Tuple) *Join {
	return &Join{
		Base: Base{Name: id}, Left: left, Right: right, Merge: merge,
		left: make(map[uint64]*tuple.Tuple), right: make(map[uint64]*tuple.Tuple),
	}
}

// Process implements Operator.
func (j *Join) Process(from string, t *tuple.Tuple) ([]Out, error) {
	var mine, other map[uint64]*tuple.Tuple
	switch from {
	case j.Left:
		mine, other = j.left, j.right
	case j.Right:
		mine, other = j.right, j.left
	default:
		return nil, fmt.Errorf("join %s: tuple from unexpected upstream %q", j.Name, from)
	}
	if match, ok := other[t.Seq]; ok {
		delete(other, t.Seq)
		var l, r *tuple.Tuple
		if from == j.Left {
			l, r = t, match
		} else {
			l, r = match, t
		}
		out := j.Merge(l, r)
		if out == nil {
			return nil, nil
		}
		return []Out{Emit(out)}, nil
	}
	mine[t.Seq] = t
	return nil, nil
}

// Cost implements Operator.
func (j *Join) Cost(t *tuple.Tuple) time.Duration {
	if j.CostFn == nil {
		return 0
	}
	return j.CostFn(t)
}

// Snapshot implements Operator. The window contents are serialised as
// (seq, size) pairs per side; payloads of windowed tuples are modelled by
// size only, which is what recovery fidelity requires for the simulated
// applications.
func (j *Join) Snapshot() ([]byte, error) {
	buf := make([]byte, 0, 16+16*(len(j.left)+len(j.right)))
	var tmp [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(uint64(len(j.left)))
	for seq, t := range j.left {
		put(seq)
		put(uint64(t.Size))
	}
	put(uint64(len(j.right)))
	for seq, t := range j.right {
		put(seq)
		put(uint64(t.Size))
	}
	return buf, nil
}

// Restore implements Operator.
func (j *Join) Restore(data []byte) error {
	j.left = make(map[uint64]*tuple.Tuple)
	j.right = make(map[uint64]*tuple.Tuple)
	off := 0
	next := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, fmt.Errorf("join %s: short state", j.Name)
		}
		v := binary.BigEndian.Uint64(data[off : off+8])
		off += 8
		return v, nil
	}
	for _, side := range []map[uint64]*tuple.Tuple{j.left, j.right} {
		n, err := next()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			seq, err := next()
			if err != nil {
				return err
			}
			size, err := next()
			if err != nil {
				return err
			}
			side[seq] = &tuple.Tuple{Seq: seq, Size: int(size)}
		}
	}
	return nil
}

// StateSize implements Operator.
func (j *Join) StateSize() int {
	live := 0
	for _, t := range j.left {
		live += t.Size
	}
	for _, t := range j.right {
		live += t.Size
	}
	return 16 + live + j.ExtraState
}

// Pending reports how many tuples wait unmatched (for tests).
func (j *Join) Pending() int { return len(j.left) + len(j.right) }

// Passthrough forwards tuples unchanged; used for stateless source and sink
// operators that only maintain inter-region connections (§III-D).
type Passthrough struct {
	Base
}

// NewPassthrough builds a Passthrough operator.
func NewPassthrough(id string) *Passthrough {
	return &Passthrough{Base: Base{Name: id}}
}

// Process implements Operator.
func (*Passthrough) Process(_ string, t *tuple.Tuple) ([]Out, error) {
	return []Out{Emit(t)}, nil
}
