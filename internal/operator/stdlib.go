package operator

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"mobistreams/internal/tuple"
)

// FixedCost returns a cost function charging the same service time for
// every tuple.
func FixedCost(d time.Duration) func(*tuple.Tuple) time.Duration {
	return func(*tuple.Tuple) time.Duration { return d }
}

// Map applies a pure function to every tuple.
type Map struct {
	Base
	Fn      func(*tuple.Tuple) *tuple.Tuple
	CostFn  func(*tuple.Tuple) time.Duration
	SizeFn  func() int // modelled state size; nil means stateless
	counter uint64     // processed-tuple count, part of checkpointed state
	delta   DeltaTracker
}

// NewMap builds a Map operator.
func NewMap(id string, fn func(*tuple.Tuple) *tuple.Tuple) *Map {
	return &Map{Base: Base{Name: id}, Fn: fn}
}

// Process implements Processor.
func (m *Map) Process(ctx *Context, _ string, t *tuple.Tuple) error {
	m.counter++
	if out := m.Fn(t); out != nil {
		ctx.Emit(out)
	}
	return nil
}

// Cost implements Operator.
func (m *Map) Cost(t *tuple.Tuple) time.Duration {
	if m.CostFn == nil {
		return 0
	}
	return m.CostFn(t)
}

// Snapshot implements Operator.
func (m *Map) Snapshot() ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], m.counter)
	return buf[:], nil
}

// Restore implements Operator.
func (m *Map) Restore(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("map %s: short state (%d bytes)", m.Name, len(data))
	}
	m.counter = binary.BigEndian.Uint64(data)
	return nil
}

// StateSize implements Operator.
func (m *Map) StateSize() int {
	if m.SizeFn == nil {
		return 8
	}
	return m.SizeFn()
}

// SnapshotDelta implements DeltaSnapshotter.
func (m *Map) SnapshotDelta(since uint64) ([]byte, bool) { return m.delta.Delta(since, m.Snapshot) }

// MarkSnapshot implements DeltaSnapshotter.
func (m *Map) MarkSnapshot(v uint64) { m.delta.Mark(v, m.Snapshot) }

// Count reports how many tuples the operator has processed (for tests).
func (m *Map) Count() uint64 { return m.counter }

// Filter drops tuples failing a predicate.
type Filter struct {
	Base
	Pred    func(*tuple.Tuple) bool
	CostFn  func(*tuple.Tuple) time.Duration
	dropped uint64
	passed  uint64
	delta   DeltaTracker
}

// NewFilter builds a Filter operator.
func NewFilter(id string, pred func(*tuple.Tuple) bool) *Filter {
	return &Filter{Base: Base{Name: id}, Pred: pred}
}

// Process implements Processor.
func (f *Filter) Process(ctx *Context, _ string, t *tuple.Tuple) error {
	if f.Pred(t) {
		f.passed++
		ctx.Emit(t)
		return nil
	}
	f.dropped++
	return nil
}

// Cost implements Operator.
func (f *Filter) Cost(t *tuple.Tuple) time.Duration {
	if f.CostFn == nil {
		return 0
	}
	return f.CostFn(t)
}

// Snapshot implements Operator.
func (f *Filter) Snapshot() ([]byte, error) {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], f.dropped)
	binary.BigEndian.PutUint64(buf[8:16], f.passed)
	return buf[:], nil
}

// Restore implements Operator.
func (f *Filter) Restore(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("filter %s: short state", f.Name)
	}
	f.dropped = binary.BigEndian.Uint64(data[0:8])
	f.passed = binary.BigEndian.Uint64(data[8:16])
	return nil
}

// StateSize implements Operator.
func (*Filter) StateSize() int { return 16 }

// SnapshotDelta implements DeltaSnapshotter.
func (f *Filter) SnapshotDelta(since uint64) ([]byte, bool) { return f.delta.Delta(since, f.Snapshot) }

// MarkSnapshot implements DeltaSnapshotter.
func (f *Filter) MarkSnapshot(v uint64) { f.delta.Mark(v, f.Snapshot) }

// RoundRobin routes each input tuple to one of its targets in rotation —
// BCP's dispatcher D spreading images across the parallel counters.
type RoundRobin struct {
	Base
	Targets []string
	next    uint64
	delta   DeltaTracker
}

// NewRoundRobin builds a dispatcher over the given target operators.
func NewRoundRobin(id string, targets ...string) *RoundRobin {
	return &RoundRobin{Base: Base{Name: id}, Targets: targets}
}

// Process implements Processor.
func (r *RoundRobin) Process(ctx *Context, _ string, t *tuple.Tuple) error {
	if len(r.Targets) == 0 {
		return fmt.Errorf("roundrobin %s: no targets", r.Name)
	}
	to := r.Targets[r.next%uint64(len(r.Targets))]
	r.next++
	ctx.EmitTo(to, t)
	return nil
}

// Snapshot implements Operator.
func (r *RoundRobin) Snapshot() ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], r.next)
	return buf[:], nil
}

// Restore implements Operator.
func (r *RoundRobin) Restore(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("roundrobin %s: short state", r.Name)
	}
	r.next = binary.BigEndian.Uint64(data)
	return nil
}

// StateSize implements Operator.
func (*RoundRobin) StateSize() int { return 8 }

// SnapshotDelta implements DeltaSnapshotter.
func (r *RoundRobin) SnapshotDelta(since uint64) ([]byte, bool) {
	return r.delta.Delta(since, r.Snapshot)
}

// MarkSnapshot implements DeltaSnapshotter.
func (r *RoundRobin) MarkSnapshot(v uint64) { r.delta.Mark(v, r.Snapshot) }

// Join pairs tuples from two upstream operators by sequence number: the
// paper's J operator joining boarding/alighting predictions for the same
// bus arrival. Unmatched tuples wait in per-side windows that are part of
// the operator's checkpointed state.
type Join struct {
	Base
	Left, Right string
	Merge       func(l, r *tuple.Tuple) *tuple.Tuple
	CostFn      func(*tuple.Tuple) time.Duration
	// ExtraState models window buffers beyond the live tuples.
	ExtraState int
	left       map[uint64]*tuple.Tuple
	right      map[uint64]*tuple.Tuple
	delta      DeltaTracker
}

// NewJoin builds a Join keyed by tuple sequence number.
func NewJoin(id, left, right string, merge func(l, r *tuple.Tuple) *tuple.Tuple) *Join {
	return &Join{
		Base: Base{Name: id}, Left: left, Right: right, Merge: merge,
		left: make(map[uint64]*tuple.Tuple), right: make(map[uint64]*tuple.Tuple),
	}
}

// Process implements Processor.
func (j *Join) Process(ctx *Context, from string, t *tuple.Tuple) error {
	var mine, other map[uint64]*tuple.Tuple
	switch from {
	case j.Left:
		mine, other = j.left, j.right
	case j.Right:
		mine, other = j.right, j.left
	default:
		return fmt.Errorf("join %s: tuple from unexpected upstream %q", j.Name, from)
	}
	if match, ok := other[t.Seq]; ok {
		delete(other, t.Seq)
		var l, r *tuple.Tuple
		if from == j.Left {
			l, r = t, match
		} else {
			l, r = match, t
		}
		if out := j.Merge(l, r); out != nil {
			ctx.Emit(out)
		}
		return nil
	}
	mine[t.Seq] = t
	return nil
}

// Cost implements Operator.
func (j *Join) Cost(t *tuple.Tuple) time.Duration {
	if j.CostFn == nil {
		return 0
	}
	return j.CostFn(t)
}

// Snapshot implements Operator. The window contents are serialised as
// (seq, size) pairs per side in ascending sequence order — deterministic
// bytes keep delta patches minimal and make chain-vs-full restores
// byte-comparable. Payloads of windowed tuples are modelled by size only,
// which is what recovery fidelity requires for the simulated applications.
func (j *Join) Snapshot() ([]byte, error) {
	buf := make([]byte, 0, 16+16*(len(j.left)+len(j.right)))
	var tmp [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	for _, side := range []map[uint64]*tuple.Tuple{j.left, j.right} {
		put(uint64(len(side)))
		seqs := make([]uint64, 0, len(side))
		for seq := range side {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
		for _, seq := range seqs {
			put(seq)
			put(uint64(side[seq].Size))
		}
	}
	return buf, nil
}

// Restore implements Operator.
func (j *Join) Restore(data []byte) error {
	j.left = make(map[uint64]*tuple.Tuple)
	j.right = make(map[uint64]*tuple.Tuple)
	off := 0
	next := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, fmt.Errorf("join %s: short state", j.Name)
		}
		v := binary.BigEndian.Uint64(data[off : off+8])
		off += 8
		return v, nil
	}
	for _, side := range []map[uint64]*tuple.Tuple{j.left, j.right} {
		n, err := next()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			seq, err := next()
			if err != nil {
				return err
			}
			size, err := next()
			if err != nil {
				return err
			}
			side[seq] = &tuple.Tuple{Seq: seq, Size: int(size)}
		}
	}
	return nil
}

// StateSize implements Operator.
func (j *Join) StateSize() int {
	live := 0
	for _, t := range j.left {
		live += t.Size
	}
	for _, t := range j.right {
		live += t.Size
	}
	return 16 + live + j.ExtraState
}

// SnapshotDelta implements DeltaSnapshotter: the per-side windows churn a
// few entries per checkpoint period, so the patch covers only the inserted
// and removed pairs rather than the whole window.
func (j *Join) SnapshotDelta(since uint64) ([]byte, bool) { return j.delta.Delta(since, j.Snapshot) }

// MarkSnapshot implements DeltaSnapshotter.
func (j *Join) MarkSnapshot(v uint64) { j.delta.Mark(v, j.Snapshot) }

// Pending reports how many tuples wait unmatched (for tests).
func (j *Join) Pending() int { return len(j.left) + len(j.right) }

// Passthrough forwards tuples unchanged; used for stateless source and sink
// operators that only maintain inter-region connections (§III-D).
type Passthrough struct {
	Base
}

// NewPassthrough builds a Passthrough operator.
func NewPassthrough(id string) *Passthrough {
	return &Passthrough{Base: Base{Name: id}}
}

// Process implements Processor.
func (*Passthrough) Process(ctx *Context, _ string, t *tuple.Tuple) error {
	ctx.Emit(t)
	return nil
}

// Window is a count-based sliding window: it keeps the last N numeric
// values and emits their running mean with every input. The window contents
// are checkpointed state; the window is append-mostly, so SnapshotDelta
// patches cover only the rotated tail rather than the whole buffer —
// the canonical big-state beneficiary of incremental checkpointing.
type Window struct {
	Base
	// N bounds the window (default 16 when zero).
	N      int
	CostFn func(*tuple.Tuple) time.Duration
	// ExtraBytes models auxiliary window storage (pre-aggregation panes,
	// spill buffers) beyond the live values — it inflates StateSize but,
	// being static, never appears in a delta.
	ExtraBytes int
	vals       []float64
	count      uint64
	delta      DeltaTracker
}

// NewWindow builds a sliding window over the last n values.
func NewWindow(id string, n int) *Window {
	return &Window{Base: Base{Name: id}, N: n}
}

// Process implements Processor: non-numeric payloads contribute their wire
// size, so the window is usable on any stream.
func (w *Window) Process(ctx *Context, _ string, t *tuple.Tuple) error {
	v, ok := t.Value.(float64)
	if !ok {
		v = float64(t.Size)
	}
	n := w.N
	if n <= 0 {
		n = 16
	}
	w.vals = append(w.vals, v)
	if len(w.vals) > n {
		w.vals = w.vals[1:]
	}
	w.count++
	var sum float64
	for _, x := range w.vals {
		sum += x
	}
	out := t.Clone()
	out.Value = sum / float64(len(w.vals))
	ctx.Emit(out)
	return nil
}

// Cost implements Operator.
func (w *Window) Cost(t *tuple.Tuple) time.Duration {
	if w.CostFn == nil {
		return 0
	}
	return w.CostFn(t)
}

// Snapshot implements Operator.
func (w *Window) Snapshot() ([]byte, error) {
	buf := make([]byte, 0, 16+8*len(w.vals))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], w.count)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(len(w.vals)))
	buf = append(buf, tmp[:]...)
	for _, v := range w.vals {
		binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v))
		buf = append(buf, tmp[:]...)
	}
	return buf, nil
}

// Restore implements Operator.
func (w *Window) Restore(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("window %s: short state", w.Name)
	}
	w.count = binary.BigEndian.Uint64(data)
	n := int(binary.BigEndian.Uint64(data[8:]))
	if len(data) < 16+8*n {
		return fmt.Errorf("window %s: short window state", w.Name)
	}
	w.vals = w.vals[:0]
	for i := 0; i < n; i++ {
		w.vals = append(w.vals, math.Float64frombits(binary.BigEndian.Uint64(data[16+8*i:])))
	}
	return nil
}

// StateSize implements Operator.
func (w *Window) StateSize() int { return 16 + 8*len(w.vals) + w.ExtraBytes }

// SnapshotDelta implements DeltaSnapshotter.
func (w *Window) SnapshotDelta(since uint64) ([]byte, bool) { return w.delta.Delta(since, w.Snapshot) }

// MarkSnapshot implements DeltaSnapshotter.
func (w *Window) MarkSnapshot(v uint64) { w.delta.Mark(v, w.Snapshot) }

// Count reports processed tuples (tests).
func (w *Window) Count() uint64 { return w.count }

// Aggregate maintains keyed running sums and counts, emitting the updated
// aggregate for the input's key. Keys are taken from the tuple's Kind
// unless KeyFn overrides. The key table is checkpointed state, serialised
// in sorted key order so deltas touch only the keys that changed.
type Aggregate struct {
	Base
	KeyFn  func(*tuple.Tuple) string
	CostFn func(*tuple.Tuple) time.Duration
	// ExtraBytes models auxiliary aggregation state (sketches, dictionaries).
	ExtraBytes int
	sums       map[string]float64
	counts     map[string]uint64
	delta      DeltaTracker
}

// NewAggregate builds a keyed running aggregate.
func NewAggregate(id string) *Aggregate {
	return &Aggregate{Base: Base{Name: id}, sums: make(map[string]float64), counts: make(map[string]uint64)}
}

func (a *Aggregate) key(t *tuple.Tuple) string {
	if a.KeyFn != nil {
		return a.KeyFn(t)
	}
	return t.Kind
}

// Process implements Processor.
func (a *Aggregate) Process(ctx *Context, _ string, t *tuple.Tuple) error {
	v, ok := t.Value.(float64)
	if !ok {
		v = float64(t.Size)
	}
	k := a.key(t)
	a.sums[k] += v
	a.counts[k]++
	out := t.Clone()
	out.Value = a.sums[k] / float64(a.counts[k])
	ctx.Emit(out)
	return nil
}

// Cost implements Operator.
func (a *Aggregate) Cost(t *tuple.Tuple) time.Duration {
	if a.CostFn == nil {
		return 0
	}
	return a.CostFn(t)
}

// Snapshot implements Operator.
func (a *Aggregate) Snapshot() ([]byte, error) {
	keys := make([]string, 0, len(a.sums))
	for k := range a.sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := make([]byte, 0, 8+24*len(keys))
	var tmp [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(uint64(len(keys)))
	for _, k := range keys {
		put(uint64(len(k)))
		buf = append(buf, k...)
		put(math.Float64bits(a.sums[k]))
		put(a.counts[k])
	}
	return buf, nil
}

// Restore implements Operator.
func (a *Aggregate) Restore(data []byte) error {
	a.sums = make(map[string]float64)
	a.counts = make(map[string]uint64)
	if len(data) < 8 {
		return fmt.Errorf("aggregate %s: short state", a.Name)
	}
	n := int(binary.BigEndian.Uint64(data))
	off := 8
	for i := 0; i < n; i++ {
		if off+8 > len(data) {
			return fmt.Errorf("aggregate %s: short key header", a.Name)
		}
		kl := int(binary.BigEndian.Uint64(data[off:]))
		off += 8
		if off+kl+16 > len(data) {
			return fmt.Errorf("aggregate %s: short key entry", a.Name)
		}
		k := string(data[off : off+kl])
		off += kl
		a.sums[k] = math.Float64frombits(binary.BigEndian.Uint64(data[off:]))
		a.counts[k] = binary.BigEndian.Uint64(data[off+8:])
		off += 16
	}
	return nil
}

// StateSize implements Operator.
func (a *Aggregate) StateSize() int {
	size := 8 + a.ExtraBytes
	for k := range a.sums {
		size += 24 + len(k)
	}
	return size
}

// SnapshotDelta implements DeltaSnapshotter.
func (a *Aggregate) SnapshotDelta(since uint64) ([]byte, bool) {
	return a.delta.Delta(since, a.Snapshot)
}

// MarkSnapshot implements DeltaSnapshotter.
func (a *Aggregate) MarkSnapshot(v uint64) { a.delta.Mark(v, a.Snapshot) }

// Keys reports how many keys the aggregate tracks (tests).
func (a *Aggregate) Keys() int { return len(a.sums) }
