package operator

import (
	"testing"
	"testing/quick"
	"time"

	"mobistreams/internal/tuple"
)

func tp(seq uint64, size int) *tuple.Tuple {
	return &tuple.Tuple{Seq: seq, Source: "s", Kind: "x", Size: size}
}

func TestMapTransformsAndCounts(t *testing.T) {
	m := NewMap("m", func(in *tuple.Tuple) *tuple.Tuple {
		out := in.Clone()
		out.Kind = "y"
		return out
	})
	outs, err := Run(m, "", tp(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].T.Kind != "y" || outs[0].To != "" {
		t.Fatalf("outs = %+v", outs)
	}
	if m.Count() != 1 {
		t.Fatalf("count = %d", m.Count())
	}
}

func TestMapDropsNil(t *testing.T) {
	m := NewMap("m", func(*tuple.Tuple) *tuple.Tuple { return nil })
	outs, err := Run(m, "", tp(1, 10))
	if err != nil || len(outs) != 0 {
		t.Fatalf("outs = %v, err = %v", outs, err)
	}
}

func TestMapSnapshotRoundTrip(t *testing.T) {
	m := NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in })
	for i := 0; i < 5; i++ {
		Run(m, "", tp(uint64(i), 1))
	}
	state, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in })
	if err := m2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if m2.Count() != 5 {
		t.Fatalf("restored count = %d, want 5", m2.Count())
	}
	if err := m2.Restore([]byte{1}); err == nil {
		t.Fatal("short state accepted")
	}
}

func TestMapCostAndSize(t *testing.T) {
	m := NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in })
	if m.Cost(tp(0, 1)) != 0 {
		t.Fatal("default cost not zero")
	}
	m.CostFn = FixedCost(3 * time.Second)
	if m.Cost(tp(0, 1)) != 3*time.Second {
		t.Fatal("fixed cost not applied")
	}
	if m.StateSize() != 8 {
		t.Fatalf("default state size = %d", m.StateSize())
	}
	m.SizeFn = func() int { return 1 << 20 }
	if m.StateSize() != 1<<20 {
		t.Fatal("size fn not applied")
	}
}

func TestFilterPartitions(t *testing.T) {
	f := NewFilter("f", func(t *tuple.Tuple) bool { return t.Seq%2 == 0 })
	kept := 0
	for i := uint64(0); i < 10; i++ {
		outs, err := Run(f, "", tp(i, 1))
		if err != nil {
			t.Fatal(err)
		}
		kept += len(outs)
	}
	if kept != 5 {
		t.Fatalf("kept = %d, want 5", kept)
	}
	state, _ := f.Snapshot()
	f2 := NewFilter("f", nil)
	if err := f2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if f2.dropped != 5 || f2.passed != 5 {
		t.Fatalf("restored dropped/passed = %d/%d", f2.dropped, f2.passed)
	}
}

func TestRoundRobinRotation(t *testing.T) {
	r := NewRoundRobin("d", "c0", "c1", "c2")
	var got []string
	for i := uint64(0); i < 6; i++ {
		outs, err := Run(r, "", tp(i, 1))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, outs[0].To)
	}
	want := []string{"c0", "c1", "c2", "c0", "c1", "c2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinResumesAfterRestore(t *testing.T) {
	r := NewRoundRobin("d", "a", "b")
	Run(r, "", tp(0, 1)) // -> a
	state, _ := r.Snapshot()
	r2 := NewRoundRobin("d", "a", "b")
	if err := r2.Restore(state); err != nil {
		t.Fatal(err)
	}
	outs, _ := Run(r2, "", tp(1, 1))
	if outs[0].To != "b" {
		t.Fatalf("after restore routed to %s, want b", outs[0].To)
	}
}

func TestRoundRobinNoTargets(t *testing.T) {
	r := NewRoundRobin("d")
	if _, err := Run(r, "", tp(0, 1)); err == nil {
		t.Fatal("expected error with no targets")
	}
}

func TestJoinMatchesBySeq(t *testing.T) {
	j := NewJoin("j", "L", "R", func(l, r *tuple.Tuple) *tuple.Tuple {
		out := l.Clone()
		out.Size = l.Size + r.Size
		return out
	})
	outs, err := Run(j, "L", tp(1, 10))
	if err != nil || len(outs) != 0 {
		t.Fatalf("unmatched join emitted: %v, %v", outs, err)
	}
	outs, err = Run(j, "R", tp(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].T.Size != 30 {
		t.Fatalf("join output = %+v", outs)
	}
	if j.Pending() != 0 {
		t.Fatalf("pending = %d after match", j.Pending())
	}
}

func TestJoinRejectsUnknownUpstream(t *testing.T) {
	j := NewJoin("j", "L", "R", func(l, r *tuple.Tuple) *tuple.Tuple { return l })
	if _, err := Run(j, "X", tp(1, 1)); err == nil {
		t.Fatal("unknown upstream accepted")
	}
}

func TestJoinSnapshotRestoresWindows(t *testing.T) {
	j := NewJoin("j", "L", "R", func(l, r *tuple.Tuple) *tuple.Tuple { return l })
	Run(j, "L", tp(1, 100))
	Run(j, "L", tp(2, 200))
	Run(j, "R", tp(9, 300))
	state, err := j.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	j2 := NewJoin("j", "L", "R", func(l, r *tuple.Tuple) *tuple.Tuple { return l })
	if err := j2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if j2.Pending() != 3 {
		t.Fatalf("restored pending = %d, want 3", j2.Pending())
	}
	// A matching right tuple for seq 2 must join against restored state.
	outs, err := Run(j2, "R", tp(2, 1))
	if err != nil || len(outs) != 1 {
		t.Fatalf("restored join failed: %v, %v", outs, err)
	}
	if err := j2.Restore([]byte{0, 1, 2}); err == nil {
		t.Fatal("short state accepted")
	}
}

func TestJoinStateSizeTracksWindows(t *testing.T) {
	j := NewJoin("j", "L", "R", func(l, r *tuple.Tuple) *tuple.Tuple { return l })
	j.ExtraState = 1000
	base := j.StateSize()
	Run(j, "L", tp(1, 500))
	if j.StateSize() != base+500 {
		t.Fatalf("state size = %d, want %d", j.StateSize(), base+500)
	}
}

func TestPassthroughForwards(t *testing.T) {
	p := NewPassthrough("k")
	in := tp(4, 44)
	outs, err := Run(p, "up", in)
	if err != nil || len(outs) != 1 || outs[0].T != in {
		t.Fatalf("passthrough: %v, %v", outs, err)
	}
	if p.StateSize() != 0 {
		t.Fatal("passthrough should be stateless")
	}
}

func TestRegistry(t *testing.T) {
	reg := Registry{"p": func() Operator { return NewPassthrough("p") }}
	if op := reg.New("p"); op.ID() != "p" {
		t.Fatalf("registry built %q", op.ID())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown factory did not panic")
		}
	}()
	reg.New("zzz")
}

// Property: RoundRobin distributes n tuples across k targets with per-target
// counts differing by at most one.
func TestRoundRobinFairnessProperty(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		if k == 0 {
			return true
		}
		targets := make([]string, int(k%8)+1)
		for i := range targets {
			targets[i] = string(rune('a' + i))
		}
		r := NewRoundRobin("d", targets...)
		counts := make(map[string]int)
		for i := 0; i < int(n); i++ {
			outs, err := Run(r, "", tp(uint64(i), 1))
			if err != nil {
				return false
			}
			counts[outs[0].To]++
		}
		min, max := int(n), 0
		for _, tg := range targets {
			c := counts[tg]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Join emits exactly one output per matched pair regardless of
// arrival order.
func TestJoinPairingProperty(t *testing.T) {
	f := func(seqs []uint64, flip bool) bool {
		j := NewJoin("j", "L", "R", func(l, r *tuple.Tuple) *tuple.Tuple { return l })
		seen := make(map[uint64]bool)
		emitted := 0
		want := 0
		for _, s := range seqs {
			s %= 16 // force collisions
			first, second := "L", "R"
			if flip {
				first, second = second, first
			}
			if !seen[s] {
				seen[s] = true
				outs, err := Run(j, first, tp(s, 1))
				if err != nil || len(outs) != 0 {
					return false
				}
				outs, err = Run(j, second, tp(s, 1))
				if err != nil {
					return false
				}
				emitted += len(outs)
				want++
			}
		}
		return emitted == want && j.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
