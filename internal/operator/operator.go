// Package operator defines the operator programming model: a piece of code
// executed repeatedly on input tuples (§II-A), with snapshotable state and a
// calibrated service-time cost charged against the phone's CPU.
//
// Two data-plane contracts coexist. The primary, emit-context contract
// (Processor) hands each Process call a *Context whose Emit/EmitTo methods
// push results directly into the node's compiled slot pipeline — no
// per-tuple emission slice is allocated, and the Context also carries the
// runtime services an operator may grow into (simulated time, one-shot
// timers, a per-key state handle). The legacy contract (LegacyProcessor)
// returns a []Out slice per call; it keeps working through the adapter in
// Proc, so existing operators run unchanged under the new executor while
// new code targets the context contract.
package operator

import (
	"fmt"
	"time"

	"mobistreams/internal/tuple"
)

// Out is one emission from an operator. To names the consuming operator; an
// empty To fans the tuple out to every downstream operator in the graph.
// Routed emissions let dispatchers (BCP's D) target one consumer.
//
// Out is the currency of the legacy contract and of Run's collected
// results; the emit-context contract emits through *Context instead.
type Out struct {
	To string
	T  *tuple.Tuple
}

// Emit builds a fan-out emission.
func Emit(t *tuple.Tuple) Out { return Out{T: t} }

// EmitTo builds a routed emission.
func EmitTo(to string, t *tuple.Tuple) Out { return Out{To: to, T: t} }

// Operator is the unit of work that is placed on a phone, checkpointed and
// recovered (§II-A): identity, cost model and snapshotable state. Every
// operator additionally implements exactly one of the two processing
// contracts, Processor (emit-context, preferred) or LegacyProcessor
// (seed-era []Out slices, adapted transparently).
type Operator interface {
	// ID returns the operator's graph ID.
	ID() string
	// Cost returns the CPU service time for processing t on the phone.
	// The node runtime charges it against the phone before Process runs.
	Cost(t *tuple.Tuple) time.Duration
	// Snapshot serialises the operator's state for a checkpoint.
	Snapshot() ([]byte, error)
	// Restore loads state saved by Snapshot.
	Restore(data []byte) error
	// StateSize is the modelled on-the-wire size of the operator's state
	// in bytes. It may exceed len(Snapshot()) when the real deployment
	// would carry auxiliary state (model tables, window buffers) that
	// the simulation represents compactly.
	StateSize() int
}

// Processor is the emit-context processing contract: results are pushed
// through ctx (Emit for graph-order fan-out, EmitTo for routed emissions)
// as they are produced, straight into the compiled pipeline — the executor
// allocates nothing per tuple on this path.
type Processor interface {
	Operator
	// Process consumes one input tuple that arrived from the named
	// upstream operator. Source operators receive from == "" for
	// externally admitted tuples. Emissions go through ctx.
	Process(ctx *Context, from string, t *tuple.Tuple) error
}

// LegacyProcessor is the seed-era processing contract: one []Out slice per
// call. It remains fully supported through the Proc adapter; migrate to
// Processor for the allocation-free path.
type LegacyProcessor interface {
	Operator
	// Process consumes one input tuple and returns its emissions.
	Process(from string, t *tuple.Tuple) ([]Out, error)
}

// TimerOperator is implemented by operators that register one-shot timers
// via Context.SetTimer; the executor calls OnTimer at (or after) the
// registered simulated time, at a tuple boundary.
type TimerOperator interface {
	// OnTimer handles one fired timer. at is the deadline the timer was
	// registered for; emissions go through ctx exactly as in Process.
	OnTimer(ctx *Context, at time.Duration) error
}

// ProcFunc is a bound processing function: the uniform shape the executor
// calls regardless of which contract the operator implements.
type ProcFunc func(ctx *Context, from string, t *tuple.Tuple) error

// Proc resolves an operator's processing contract to a ProcFunc: a direct
// method value for Processor, the []Out-routing adapter for
// LegacyProcessor, or nil when the operator implements neither (an
// application wiring bug).
func Proc(op Operator) ProcFunc {
	switch o := op.(type) {
	case Processor:
		return o.Process
	case LegacyProcessor:
		return AdaptLegacy(o)
	}
	return nil
}

// AdaptLegacy wraps a legacy operator's Process into the emit-context
// shape: the returned slice's emissions are replayed through ctx in order,
// preserving the legacy interleaving of routed and fan-out emissions.
func AdaptLegacy(o LegacyProcessor) ProcFunc {
	return func(ctx *Context, from string, t *tuple.Tuple) error {
		outs, err := o.Process(from, t)
		if err != nil {
			return err
		}
		for i := range outs {
			if outs[i].To != "" {
				ctx.EmitTo(outs[i].To, outs[i].T)
			} else {
				ctx.Emit(outs[i].T)
			}
		}
		return nil
	}
}

// Run executes one Process call under a collecting context and returns the
// emissions as a slice — the bridge tests and offline tools use to drive
// operators of either contract without a node runtime. Timers registered
// during the call are not fired; use a real runtime (or the node executor)
// for timer semantics.
func Run(op Operator, from string, t *tuple.Tuple) ([]Out, error) {
	proc := Proc(op)
	if proc == nil {
		return nil, fmt.Errorf("operator: %T implements neither processing contract", op)
	}
	col := &collector{}
	ctx := NewContext(col)
	// Uphold the KeyedStater invariant the node runtime provides: state
	// written through ctx.State() must be the state the operator
	// checkpoints, under Run exactly as under the executor.
	if ks, ok := op.(KeyedStater); ok {
		ctx.BindState(ks.KeyedState())
	}
	err := proc(ctx, from, t)
	return col.outs, err
}

// Base provides defaults for stateless, zero-cost operators; embed it and
// override what the operator needs.
type Base struct {
	Name string
}

// ID implements Operator.
func (b *Base) ID() string { return b.Name }

// Cost implements Operator with zero service time.
func (*Base) Cost(*tuple.Tuple) time.Duration { return 0 }

// Snapshot implements Operator with empty state.
func (*Base) Snapshot() ([]byte, error) { return nil, nil }

// Restore implements Operator by ignoring state.
func (*Base) Restore([]byte) error { return nil }

// StateSize implements Operator with no modelled state.
func (*Base) StateSize() int { return 0 }

// SetID implements Renamable: the stream builder rebinds factory products
// to per-instance IDs when expanding a keyed stage into parallel
// instances.
func (b *Base) SetID(id string) { b.Name = id }

// Renamable is implemented by operators whose graph ID can be rebound
// after construction (every operator embedding Base). Keyed parallel
// expansion requires it: one logical stage factory must be able to
// produce instances named id#0, id#1, ...
type Renamable interface {
	SetID(id string)
}

// Factory builds a fresh operator instance. The controller ships "code" to
// phones at placement and recovery time; in this library, code is a factory.
type Factory func() Operator

// Registry maps operator IDs to factories for one application graph.
type Registry map[string]Factory

// New instantiates the operator with the given ID; it panics if the ID is
// unknown, which indicates an application wiring bug. Call Validate at
// assembly time to surface such bugs as errors instead.
func (r Registry) New(id string) Operator {
	f, ok := r[id]
	if !ok {
		panic("operator: no factory for " + id)
	}
	return f()
}

// Validate checks that every listed operator ID has a factory whose product
// reports the right ID and implements one of the two processing contracts.
// Regions run it at build time so wiring bugs fail fast with an error
// instead of panicking mid-placement.
func (r Registry) Validate(ids []string) error {
	for _, id := range ids {
		f, ok := r[id]
		if !ok {
			return fmt.Errorf("operator: no factory for %q", id)
		}
		op := f()
		if op == nil {
			return fmt.Errorf("operator: factory for %q built nil", id)
		}
		if got := op.ID(); got != id {
			return fmt.Errorf("operator: factory for %q built operator with ID %q", id, got)
		}
		if Proc(op) == nil {
			return fmt.Errorf("operator: %q (%T) implements neither processing contract", id, op)
		}
	}
	return nil
}
