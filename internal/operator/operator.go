// Package operator defines the operator programming model: a piece of code
// executed repeatedly on input tuples (§II-A), with snapshotable state and a
// calibrated service-time cost charged against the phone's CPU.
package operator

import (
	"time"

	"mobistreams/internal/tuple"
)

// Out is one emission from an operator. To names the consuming operator; an
// empty To fans the tuple out to every downstream operator in the graph.
// Routed emissions let dispatchers (BCP's D) target one consumer.
type Out struct {
	To string
	T  *tuple.Tuple
}

// Emit builds a fan-out emission.
func Emit(t *tuple.Tuple) Out { return Out{T: t} }

// EmitTo builds a routed emission.
func EmitTo(to string, t *tuple.Tuple) Out { return Out{To: to, T: t} }

// Operator is the unit of work that is placed on a phone, checkpointed and
// recovered (§II-A).
type Operator interface {
	// ID returns the operator's graph ID.
	ID() string
	// Process consumes one input tuple that arrived from the named
	// upstream operator and returns emissions. Source operators receive
	// from == "" for externally admitted tuples.
	Process(from string, t *tuple.Tuple) ([]Out, error)
	// Cost returns the CPU service time for processing t on the phone.
	// The node runtime charges it against the phone before Process runs.
	Cost(t *tuple.Tuple) time.Duration
	// Snapshot serialises the operator's state for a checkpoint.
	Snapshot() ([]byte, error)
	// Restore loads state saved by Snapshot.
	Restore(data []byte) error
	// StateSize is the modelled on-the-wire size of the operator's state
	// in bytes. It may exceed len(Snapshot()) when the real deployment
	// would carry auxiliary state (model tables, window buffers) that
	// the simulation represents compactly.
	StateSize() int
}

// Base provides defaults for stateless, zero-cost operators; embed it and
// override what the operator needs.
type Base struct {
	Name string
}

// ID implements Operator.
func (b *Base) ID() string { return b.Name }

// Cost implements Operator with zero service time.
func (*Base) Cost(*tuple.Tuple) time.Duration { return 0 }

// Snapshot implements Operator with empty state.
func (*Base) Snapshot() ([]byte, error) { return nil, nil }

// Restore implements Operator by ignoring state.
func (*Base) Restore([]byte) error { return nil }

// StateSize implements Operator with no modelled state.
func (*Base) StateSize() int { return 0 }

// Factory builds a fresh operator instance. The controller ships "code" to
// phones at placement and recovery time; in this library, code is a factory.
type Factory func() Operator

// Registry maps operator IDs to factories for one application graph.
type Registry map[string]Factory

// New instantiates the operator with the given ID; it panics if the ID is
// unknown, which indicates an application wiring bug.
func (r Registry) New(id string) Operator {
	f, ok := r[id]
	if !ok {
		panic("operator: no factory for " + id)
	}
	return f()
}
