package operator

import (
	"bytes"
	"reflect"
	"testing"

	"mobistreams/internal/tuple"
)

func rangeFixture() *KeyedState {
	ks := NewKeyedState()
	for _, k := range []string{"a", "b", "c", "m", "z"} {
		ks.Put(k, []byte("v-"+k))
	}
	return ks
}

func collectRange(ks *KeyedState, lo, hi string) []string {
	var got []string
	ks.Range(lo, hi, func(k string, v []byte) bool {
		if want := "v-" + k; string(v) != want {
			panic("range visited key " + k + " with value " + string(v))
		}
		got = append(got, k)
		return true
	})
	return got
}

func TestKeyedStateRange(t *testing.T) {
	ks := rangeFixture()
	cases := []struct {
		lo, hi string
		want   []string
	}{
		{"", "", []string{"a", "b", "c", "m", "z"}}, // unbounded
		{"b", "m", []string{"b", "c"}},              // hi exclusive
		{"b", "n", []string{"b", "c", "m"}},
		{"a", "a", nil},          // empty interval
		{"m", "b", nil},          // inverted interval
		{"zz", "", nil},          // past the last key
		{"", "a", nil},           // nothing below the first key
		{"z", "", []string{"z"}}, // lo inclusive at the last key
		{"a", "b", []string{"a"}},
	}
	for _, c := range cases {
		if got := collectRange(ks, c.lo, c.hi); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Range(%q,%q) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestKeyedStateRangeEarlyStop(t *testing.T) {
	ks := rangeFixture()
	var got []string
	ks.Range("", "", func(k string, _ []byte) bool {
		got = append(got, k)
		return len(got) < 2
	})
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("early-stop visited %v", got)
	}
}

func TestKeyedStateRangeEmptyStore(t *testing.T) {
	ks := NewKeyedState()
	if got := collectRange(ks, "", ""); got != nil {
		t.Fatalf("empty store yielded %v", got)
	}
	if n := ks.DeleteRange("", ""); n != 0 {
		t.Fatalf("DeleteRange on empty store removed %d", n)
	}
}

func TestKeyedStateExportImportDeleteRange(t *testing.T) {
	ks := rangeFixture()
	blob := ks.ExportRange("b", "n") // b, c, m

	// Export framing matches Encode framing: a store holding exactly the
	// range decodes it and round-trips to the same bytes.
	sub := NewKeyedState()
	if err := sub.Decode(blob); err != nil {
		t.Fatalf("decode exported range: %v", err)
	}
	if got := sub.Keys(); !reflect.DeepEqual(got, []string{"b", "c", "m"}) {
		t.Fatalf("exported keys %v", got)
	}
	if !bytes.Equal(sub.Encode(), blob) {
		t.Fatal("ExportRange framing differs from Encode framing")
	}

	if n := ks.DeleteRange("b", "n"); n != 3 {
		t.Fatalf("DeleteRange removed %d keys, want 3", n)
	}
	if got := ks.Keys(); !reflect.DeepEqual(got, []string{"a", "z"}) {
		t.Fatalf("donor keys after delete: %v", got)
	}

	// Import merges without disturbing resident keys.
	dst := NewKeyedState()
	dst.Put("q", []byte("v-q"))
	if err := dst.ImportRange(blob); err != nil {
		t.Fatalf("import: %v", err)
	}
	if got := dst.Keys(); !reflect.DeepEqual(got, []string{"b", "c", "m", "q"}) {
		t.Fatalf("recipient keys after import: %v", got)
	}

	// Donor + recipient together hold exactly the original keyspace.
	if err := dst.ImportRange(ks.Encode()); err != nil {
		t.Fatalf("merge back: %v", err)
	}
	dst.Delete("q")
	if !bytes.Equal(dst.Encode(), rangeFixture().Encode()) {
		t.Fatal("split + merge did not reconstruct the original store")
	}
}

func TestKeyedStateRangeSize(t *testing.T) {
	ks := rangeFixture()
	if got, want := ks.RangeSize("", ""), ks.Size(); got != want {
		t.Fatalf("unbounded RangeSize %d != Size %d", got, want)
	}
	if got, want := ks.RangeSize("b", "n"), len(ks.ExportRange("b", "n")); got != want {
		t.Fatalf("RangeSize %d != len(ExportRange) %d", got, want)
	}
	if got := ks.RangeSize("x", "y"); got != 8 {
		t.Fatalf("empty RangeSize %d, want header-only 8", got)
	}
}

func TestKeyTag(t *testing.T) {
	kt := NewKeyTag("kb", func(t *tuple.Tuple) string { return "cell-" + t.Kind })
	outs, err := Run(kt, "", &tuple.Tuple{Seq: 7, Kind: "x", Size: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].T.Kind != "cell-x" || outs[0].T.Seq != 7 {
		t.Fatalf("keytag outs: %+v", outs)
	}
}

func TestKeyedTally(t *testing.T) {
	kt := NewKeyedTally("tally")
	for i := 0; i < 3; i++ {
		if _, err := Run(kt, "", &tuple.Tuple{Seq: uint64(i), Kind: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Run(kt, "", &tuple.Tuple{Seq: 9, Kind: "b"}); err != nil {
		t.Fatal(err)
	}
	if got := kt.Count("a"); got != 3 {
		t.Fatalf("count(a) = %d", got)
	}
	if got := kt.Count("b"); got != 1 {
		t.Fatalf("count(b) = %d", got)
	}
	// Snapshot/Restore round-trip.
	blob, err := kt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	kt2 := NewKeyedTally("tally")
	if err := kt2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if kt2.Count("a") != 3 || kt2.Count("b") != 1 {
		t.Fatal("restore lost tallies")
	}
}
