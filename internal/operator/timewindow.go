package operator

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"mobistreams/internal/tuple"
)

// TimeWindow is a tumbling window over simulated time, and the first
// operator built natively on the emit-context contract's growth surface:
// it accumulates per-key running sums through the Context's keyed-state
// handle and closes windows through Context.SetTimer/OnTimer instead of
// counting tuples. At each window close it emits, per key (tuple Kind by
// default), one tuple carrying the window's mean value.
//
// Windows are processing-time: a tuple joins the window open when the
// hosting executor processes it, with boundaries aligned to multiples of
// Width in simulated time. Under rep-2 a standby replica processes the
// forwarded stream slightly later than the primary, so a tuple arriving
// near a boundary can fall into adjacent windows on the two replicas and
// a failover can change a window's mean (the sink's seq-based dedup keeps
// at most one emission per template tuple). The per-key sums are
// checkpointed state (deterministic sorted-key encoding, delta-friendly);
// the pending timer is runtime state — a restored or migrated operator
// re-arms on its next input tuple.
type TimeWindow struct {
	Base
	// Width is the tumbling window width in simulated time (default 1 s).
	Width time.Duration
	// KeyFn extracts the grouping key (default: the tuple's Kind).
	KeyFn func(*tuple.Tuple) string
	// CostFn models per-tuple service time.
	CostFn func(*tuple.Tuple) time.Duration
	// ExtraBytes models auxiliary window storage beyond the live sums —
	// static between checkpoints, so never part of a delta.
	ExtraBytes int

	keys    *KeyedState             // per-key accumulator, checkpointed
	last    map[string]*tuple.Tuple // emission template per key, volatile
	windows uint64                  // closed-window count, checkpointed
	armed   bool                    // a timer is pending, volatile
	delta   DeltaTracker
}

// NewTimeWindow builds a tumbling time window.
func NewTimeWindow(id string, width time.Duration) *TimeWindow {
	return &TimeWindow{
		Base:  Base{Name: id},
		Width: width,
		keys:  NewKeyedState(),
		last:  make(map[string]*tuple.Tuple),
	}
}

// KeyedState implements KeyedStater: Context.State resolves to the
// operator's own store, so per-key sums written during Process are exactly
// the bytes the operator checkpoints.
func (w *TimeWindow) KeyedState() *KeyedState {
	if w.keys == nil {
		w.keys = NewKeyedState()
	}
	return w.keys
}

func (w *TimeWindow) width() time.Duration {
	if w.Width > 0 {
		return w.Width
	}
	return time.Second
}

func (w *TimeWindow) key(t *tuple.Tuple) string {
	if w.KeyFn != nil {
		return w.KeyFn(t)
	}
	return t.Kind
}

// Process implements Processor: accumulate the tuple into its key's sum
// and arm the window-close timer if none is pending.
func (w *TimeWindow) Process(ctx *Context, _ string, t *tuple.Tuple) error {
	v, ok := t.Value.(float64)
	if !ok {
		v = float64(t.Size)
	}
	k := w.key(t)
	addAcc(ctx.State(), k, v)
	if w.last == nil {
		w.last = make(map[string]*tuple.Tuple)
	}
	w.last[k] = t
	if !w.armed {
		width := w.width()
		end := (ctx.Now()/width + 1) * width
		w.armed = ctx.SetTimer(end)
	}
	return nil
}

// OnTimer implements TimerOperator: close the window, emitting one mean
// tuple per key in sorted key order, then reset the emitted accumulators.
// A key whose sums were restored from a checkpoint but has seen no tuple
// since (so no emission template exists yet) is retained, not discarded:
// its restored contribution folds into the first window that can emit it.
// The next input tuple arms the next window.
func (w *TimeWindow) OnTimer(ctx *Context, _ time.Duration) error {
	w.armed = false
	st := ctx.State()
	emitted := false
	for _, k := range st.Keys() {
		sum, cnt := decodeAcc(st.Get(k))
		if cnt == 0 {
			st.Delete(k)
			continue
		}
		tmpl := w.last[k]
		if tmpl == nil {
			continue // restored sums without a template: keep for the next close
		}
		out := tmpl.Clone()
		out.Value = sum / float64(cnt)
		ctx.Emit(out)
		emitted = true
		st.Delete(k)
		delete(w.last, k)
	}
	if emitted {
		w.windows++
	}
	return nil
}

// Cost implements Operator.
func (w *TimeWindow) Cost(t *tuple.Tuple) time.Duration {
	if w.CostFn == nil {
		return 0
	}
	return w.CostFn(t)
}

// Snapshot implements Operator: the closed-window count plus the keyed
// accumulators in deterministic order.
func (w *TimeWindow) Snapshot() ([]byte, error) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], w.windows)
	return append(tmp[:], w.KeyedState().Encode()...), nil
}

// Restore implements Operator.
func (w *TimeWindow) Restore(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("timewindow %s: short state", w.Name)
	}
	w.windows = binary.BigEndian.Uint64(data)
	if w.keys == nil {
		w.keys = NewKeyedState()
	}
	if err := w.keys.Decode(data[8:]); err != nil {
		return fmt.Errorf("timewindow %s: %w", w.Name, err)
	}
	w.last = make(map[string]*tuple.Tuple)
	w.armed = false
	return nil
}

// StateSize implements Operator.
func (w *TimeWindow) StateSize() int { return 8 + w.KeyedState().Size() + w.ExtraBytes }

// SnapshotDelta implements DeltaSnapshotter.
func (w *TimeWindow) SnapshotDelta(since uint64) ([]byte, bool) {
	return w.delta.Delta(since, w.Snapshot)
}

// MarkSnapshot implements DeltaSnapshotter.
func (w *TimeWindow) MarkSnapshot(v uint64) { w.delta.Mark(v, w.Snapshot) }

// Windows reports how many windows have closed with at least one tuple
// (tests).
func (w *TimeWindow) Windows() uint64 { return w.windows }

func encodeAcc(sum float64, cnt uint64) []byte {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], math.Float64bits(sum))
	binary.BigEndian.PutUint64(buf[8:16], cnt)
	return buf[:]
}

// addAcc folds one value into a key's accumulator, mutating the stored
// 16-byte slice in place: after a key's first tuple, accumulation does
// not allocate.
func addAcc(st *KeyedState, k string, v float64) {
	buf := st.Get(k)
	if len(buf) != 16 {
		st.Put(k, encodeAcc(v, 1))
		return
	}
	sum := math.Float64frombits(binary.BigEndian.Uint64(buf[0:8]))
	cnt := binary.BigEndian.Uint64(buf[8:16])
	binary.BigEndian.PutUint64(buf[0:8], math.Float64bits(sum+v))
	binary.BigEndian.PutUint64(buf[8:16], cnt+1)
}

func decodeAcc(data []byte) (float64, uint64) {
	if len(data) < 16 {
		return 0, 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(data[0:8])), binary.BigEndian.Uint64(data[8:16])
}
