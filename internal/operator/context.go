package operator

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"mobistreams/internal/tuple"
)

// Runtime is the execution environment a Context fronts: the node binds it
// to the slot's compiled pipeline (emissions route without allocation),
// while tests and offline tools bind collectors or fakes. EmitTo and
// SetTimer report whether the runtime honoured the request, so a Context
// can surface unsupported services without panicking.
type Runtime interface {
	// Emit fans t out to the operator's downstream targets in graph
	// declaration order; on a sink operator it publishes t externally.
	Emit(t *tuple.Tuple)
	// EmitTo routes t to one named downstream operator; false means the
	// target is not reachable from this operator's slot.
	EmitTo(to string, t *tuple.Tuple) bool
	// Now returns the current simulated time.
	Now() time.Duration
	// SetTimer registers a one-shot timer for the owning operator at the
	// given simulated time; false means the runtime does not fire timers
	// (collector contexts) or the operator lacks an OnTimer handler.
	SetTimer(at time.Duration) bool
}

// Context is the emit-context handed to every Process call: the conduit
// for emissions plus the runtime services an operator can grow into. A
// Context is bound once per compiled pipeline (per operator) and reused
// across calls, so the steady-state emission path allocates nothing.
type Context struct {
	rt   Runtime
	keys *KeyedState
}

// NewContext binds a context to a runtime. The node runtime builds one per
// compiled operator; tests use Run or their own fakes.
func NewContext(rt Runtime) *Context { return &Context{rt: rt} }

// Emit pushes one fan-out emission into the pipeline: every downstream
// operator of the emitting operator receives t (sink operators publish it
// externally instead).
func (c *Context) Emit(t *tuple.Tuple) { c.rt.Emit(t) }

// EmitTo pushes one routed emission to the named downstream operator —
// dispatchers (BCP's D) target one consumer. It reports whether the
// runtime could route the emission; an unreachable target is dropped and
// logged (mirroring the legacy contract), and the false return lets a
// dispatcher fall back to another target or surface an error instead.
func (c *Context) EmitTo(to string, t *tuple.Tuple) bool { return c.rt.EmitTo(to, t) }

// Now returns the current simulated time; windowed operators measure
// against it rather than wall time.
func (c *Context) Now() time.Duration { return c.rt.Now() }

// SetTimer registers a one-shot timer at the given simulated time. The
// executor calls the operator's OnTimer at a tuple boundary at or after
// the deadline. It reports whether the runtime accepted the registration
// (the operator must implement TimerOperator, and collector contexts do
// not fire timers).
func (c *Context) SetTimer(at time.Duration) bool { return c.rt.SetTimer(at) }

// State returns the operator's per-key state handle. When the operator
// exposes its own store (KeyedStater), the handle is that store and rides
// the operator's Snapshot/Restore into checkpoints; otherwise a
// context-local volatile store is created on first use.
func (c *Context) State() *KeyedState {
	if c.keys == nil {
		c.keys = NewKeyedState()
	}
	return c.keys
}

// BindState points the context's State handle at an operator-owned store;
// the runtime calls it at pipeline compile time for KeyedStater operators.
func (c *Context) BindState(ks *KeyedState) { c.keys = ks }

// KeyedStater is implemented by operators that own a KeyedState and want
// Context.State to resolve to it, so per-key state written during Process
// is the same state the operator checkpoints.
type KeyedStater interface {
	KeyedState() *KeyedState
}

// KeyedState is a per-key byte-string store with deterministic
// serialisation: keys encode in sorted order, so snapshots are
// byte-comparable and delta patches stay minimal.
type KeyedState struct {
	m map[string][]byte
}

// NewKeyedState builds an empty store.
func NewKeyedState() *KeyedState { return &KeyedState{m: make(map[string][]byte)} }

// Get returns the value stored under key, or nil.
func (ks *KeyedState) Get(key string) []byte { return ks.m[key] }

// Put stores value under key; a nil value deletes the key.
func (ks *KeyedState) Put(key string, value []byte) {
	if value == nil {
		delete(ks.m, key)
		return
	}
	ks.m[key] = value
}

// Delete removes key.
func (ks *KeyedState) Delete(key string) { delete(ks.m, key) }

// Len reports how many keys are stored.
func (ks *KeyedState) Len() int { return len(ks.m) }

// Keys returns the stored keys in sorted order.
func (ks *KeyedState) Keys() []string {
	keys := make([]string, 0, len(ks.m))
	for k := range ks.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clear drops every key.
func (ks *KeyedState) Clear() {
	for k := range ks.m {
		delete(ks.m, k)
	}
}

// Range calls fn for every key in the half-open interval [lo, hi) in
// sorted order, stopping early when fn returns false. An empty hi means
// "no upper bound" (every key >= lo). Unlike Keys, Range materialises
// only the keys inside the interval, so scanning one shard of a
// partitioned keyspace does not copy the whole store — the property the
// elastic split handoff depends on.
func (ks *KeyedState) Range(lo, hi string, fn func(key string, value []byte) bool) {
	keys := ks.rangeKeys(lo, hi)
	for _, k := range keys {
		if !fn(k, ks.m[k]) {
			return
		}
	}
}

// rangeKeys collects the sorted keys in [lo, hi); hi == "" is unbounded.
func (ks *KeyedState) rangeKeys(lo, hi string) []string {
	var keys []string
	for k := range ks.m {
		if k >= lo && (hi == "" || k < hi) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// RangeSize reports the encoded size in bytes of the keys in [lo, hi)
// (hi == "" is unbounded) without materialising the encoding.
func (ks *KeyedState) RangeSize(lo, hi string) int {
	size := 8
	for k, v := range ks.m {
		if k >= lo && (hi == "" || k < hi) {
			size += 16 + len(k) + len(v)
		}
	}
	return size
}

// ExportRange serialises the keys in [lo, hi) with the same deterministic
// framing as Encode. The result feeds ImportRange on the receiving
// instance of a key-range split or merge.
func (ks *KeyedState) ExportRange(lo, hi string) []byte {
	return ks.encodeKeys(ks.rangeKeys(lo, hi), ks.RangeSize(lo, hi))
}

// ImportRange merges entries produced by ExportRange (or Encode) into the
// store, overwriting keys that already exist. Unlike Decode it leaves
// keys outside the imported set untouched.
func (ks *KeyedState) ImportRange(data []byte) error {
	in := NewKeyedState()
	if err := in.Decode(data); err != nil {
		return err
	}
	for k, v := range in.m {
		ks.m[k] = v
	}
	return nil
}

// DeleteRange removes every key in [lo, hi) (hi == "" is unbounded) and
// reports how many were dropped — the donor side of a split handoff.
func (ks *KeyedState) DeleteRange(lo, hi string) int {
	n := 0
	for k := range ks.m {
		if k >= lo && (hi == "" || k < hi) {
			delete(ks.m, k)
			n++
		}
	}
	return n
}

// Size reports the encoded size in bytes (state accounting).
func (ks *KeyedState) Size() int {
	size := 8
	for k, v := range ks.m {
		size += 16 + len(k) + len(v)
	}
	return size
}

// Encode serialises the store deterministically (sorted key order).
func (ks *KeyedState) Encode() []byte {
	return ks.encodeKeys(ks.Keys(), ks.Size())
}

// encodeKeys serialises the given (sorted) keys with the Encode framing.
func (ks *KeyedState) encodeKeys(keys []string, sizeHint int) []byte {
	buf := make([]byte, 0, sizeHint)
	var tmp [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(uint64(len(keys)))
	for _, k := range keys {
		put(uint64(len(k)))
		buf = append(buf, k...)
		put(uint64(len(ks.m[k])))
		buf = append(buf, ks.m[k]...)
	}
	return buf
}

// Decode loads bytes produced by Encode, replacing the store's contents.
func (ks *KeyedState) Decode(data []byte) error {
	m := make(map[string][]byte)
	if len(data) < 8 {
		return fmt.Errorf("keyedstate: short header")
	}
	n := int(binary.BigEndian.Uint64(data))
	off := 8
	next := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, fmt.Errorf("keyedstate: short entry")
		}
		v := binary.BigEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	for i := 0; i < n; i++ {
		kl, err := next()
		if err != nil {
			return err
		}
		if off+int(kl) > len(data) {
			return fmt.Errorf("keyedstate: short key")
		}
		k := string(data[off : off+int(kl)])
		off += int(kl)
		vl, err := next()
		if err != nil {
			return err
		}
		if off+int(vl) > len(data) {
			return fmt.Errorf("keyedstate: short value")
		}
		m[k] = append([]byte(nil), data[off:off+int(vl)]...)
		off += int(vl)
	}
	ks.m = m
	return nil
}

// collector is the Runtime behind Run: it records emissions and supports
// neither timers nor simulated time.
type collector struct {
	outs []Out
}

func (c *collector) Emit(t *tuple.Tuple) { c.outs = append(c.outs, Out{T: t}) }

func (c *collector) EmitTo(to string, t *tuple.Tuple) bool {
	c.outs = append(c.outs, Out{To: to, T: t})
	return true
}

func (*collector) Now() time.Duration          { return 0 }
func (*collector) SetTimer(time.Duration) bool { return false }
