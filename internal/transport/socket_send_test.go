package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"mobistreams/internal/simnet"
)

// fakeConn is a net.Conn for exercising the framing layer without a
// network: every Write is recorded (and optionally gated), nothing else
// does anything.
type fakeConn struct {
	mu      sync.Mutex
	writes  int
	bytes   []byte
	discard bool          // don't record bytes (keeps alloc tests clean)
	gate    chan struct{} // when non-nil, each Write blocks until a receive
}

func (c *fakeConn) Write(b []byte) (int, error) {
	if c.gate != nil {
		<-c.gate
	}
	c.mu.Lock()
	c.writes++
	if !c.discard {
		c.bytes = append(c.bytes, b...)
	}
	c.mu.Unlock()
	return len(b), nil
}

func (c *fakeConn) Read([]byte) (int, error)         { select {} }
func (c *fakeConn) Close() error                     { return nil }
func (c *fakeConn) LocalAddr() net.Addr              { return nil }
func (c *fakeConn) RemoteAddr() net.Addr             { return nil }
func (c *fakeConn) SetDeadline(time.Time) error      { return nil }
func (c *fakeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(time.Time) error { return nil }

// parseFramed splits a byte stream into its framed messages.
func parseFramed(t *testing.T, b []byte) [][]byte {
	t.Helper()
	var frames [][]byte
	for len(b) > 0 {
		if len(b) < 5 {
			t.Fatalf("trailing garbage: % x", b)
		}
		n := binary.BigEndian.Uint32(b[:4])
		if int(n) < 1 || 4+int(n) > len(b) {
			t.Fatalf("bad frame length %d in % x", n, b)
		}
		frames = append(frames, b[5:4+n])
		b = b[4+n:]
	}
	return frames
}

// injectConn plants a fake connection as a's cached conn to peer "b" on
// the control class, so Tell exercises the framing path in isolation.
func injectConn(t *testing.T, a *Socket, c net.Conn) *sendConn {
	t.Helper()
	a.AddPeer("b", "127.0.0.1:1") // never dialed; the conn is pre-cached
	sc := newSendConn(c)
	a.mu.Lock()
	a.conns[connKey{"b", simnet.ClassControl}] = sc
	a.mu.Unlock()
	return sc
}

// TestSocketTellCoalesces: frames sent while a flush is in flight are
// batched into one write. One slow write plus eight concurrent Tells must
// reach the conn as exactly two writes, with all frames intact and FIFO.
func TestSocketTellCoalesces(t *testing.T) {
	a, _ := newSock(t, "a")
	fc := &fakeConn{gate: make(chan struct{})}
	sc := injectConn(t, a, fc)

	errs := make(chan error, 9)
	go func() { errs <- a.Tell("b", simnet.ClassControl, []byte("first")) }()
	// Wait until that Tell holds the write role (blocked inside Write).
	waitCond(t, func() bool {
		sc.mu.Lock()
		defer sc.mu.Unlock()
		return sc.writing
	})
	const waiters = 8
	for i := 0; i < waiters; i++ {
		i := i
		go func() { errs <- a.Tell("b", simnet.ClassControl, []byte{'w', byte('0' + i)}) }()
	}
	// Wait until every waiter has appended its frame to the shared buffer.
	waitCond(t, func() bool {
		sc.mu.Lock()
		defer sc.mu.Unlock()
		return len(sc.pend) == waiters*(5+2)
	})
	fc.gate <- struct{}{} // release the first write
	fc.gate <- struct{}{} // ... and the group-committed second
	for i := 0; i < waiters+1; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	fc.mu.Lock()
	writes, stream := fc.writes, append([]byte(nil), fc.bytes...)
	fc.mu.Unlock()
	if writes != 2 {
		t.Fatalf("%d writes for %d frames, want 2 (group commit)", writes, waiters+1)
	}
	frames := parseFramed(t, stream)
	if len(frames) != waiters+1 {
		t.Fatalf("%d frames on the wire, want %d", len(frames), waiters+1)
	}
	if string(frames[0]) != "first" {
		t.Fatalf("first frame = %q", frames[0])
	}
	seen := map[byte]bool{}
	for _, f := range frames[1:] {
		if len(f) != 2 || f[0] != 'w' {
			t.Fatalf("corrupted frame %q", f)
		}
		seen[f[1]] = true
	}
	if len(seen) != waiters {
		t.Fatalf("lost frames in the batch: %q", frames[1:])
	}
}

// TestSocketTellFramingZeroAlloc pins the satellite requirement: the
// steady-state Tell framing path allocates nothing — the header+frame
// copy rides a recycled per-conn buffer.
func TestSocketTellFramingZeroAlloc(t *testing.T) {
	a, _ := newSock(t, "a")
	injectConn(t, a, &fakeConn{discard: true})
	frame := make([]byte, 128)
	for i := 0; i < 8; i++ { // warm the recycled buffers
		if err := a.Tell("b", simnet.ClassControl, frame); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := a.Tell("b", simnet.ClassControl, frame); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("framing layer allocates %.1f per Tell, want 0", avg)
	}
}

// TestSocketLargeFrameBypassesPend: a frame over the coalesce bound is
// written directly (header write + body write), never copied into the
// pending buffer, and interleaves correctly with queued small frames.
func TestSocketLargeFrameBypassesPend(t *testing.T) {
	a, _ := newSock(t, "a")
	fc := &fakeConn{}
	sc := injectConn(t, a, fc)
	small := []byte("tiny")
	big := make([]byte, coalesceMax+1)
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Tell("b", simnet.ClassControl, small); err != nil {
		t.Fatal(err)
	}
	if err := a.Tell("b", simnet.ClassControl, big); err != nil {
		t.Fatal(err)
	}
	sc.mu.Lock()
	pendCap := cap(sc.pend) + cap(sc.spare)
	sc.mu.Unlock()
	if pendCap > coalesceMax {
		t.Fatalf("large frame was copied into a %d-byte pend buffer", pendCap)
	}
	frames := parseFramed(t, fc.bytes)
	if len(frames) != 2 || string(frames[0]) != "tiny" || len(frames[1]) != len(big) {
		t.Fatalf("stream corrupted: %d frames", len(frames))
	}
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkSocketTell measures the real loopback send path; the framing
// layer itself must not allocate (see TestSocketTellFramingZeroAlloc for
// the hard assertion without network noise).
func BenchmarkSocketTell(b *testing.B) {
	a, err := NewSocket("a", "127.0.0.1:0", "")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	rcv, err := NewSocket("b", "127.0.0.1:0", "")
	if err != nil {
		b.Fatal(err)
	}
	defer rcv.Close()
	rcv.Receive(func(simnet.NodeID, simnet.Class, []byte) {})
	a.AddPeer("b", rcv.Info().Addr)
	frame := make([]byte, 256)
	if err := a.Tell("b", simnet.ClassControl, frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Tell("b", simnet.ClassControl, frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSocketTellFraming isolates the framing layer on a no-op conn:
// this is the 0 allocs/op path the satellite pins.
func BenchmarkSocketTellFraming(b *testing.B) {
	a, err := NewSocket("a", "127.0.0.1:0", "")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	a.AddPeer("b", "127.0.0.1:1")
	sc := newSendConn(&fakeConn{discard: true})
	a.mu.Lock()
	a.conns[connKey{"b", simnet.ClassControl}] = sc
	a.mu.Unlock()
	frame := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Tell("b", simnet.ClassControl, frame); err != nil {
			b.Fatal(err)
		}
	}
}
