package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"mobistreams/internal/simnet"
)

// Mesh is a deterministic in-process transport fabric: every attachment can
// reach every other, frames are delivered in one global FIFO order, and
// delivery happens only when the owner pumps Drain. It exists for the
// federation control-plane simulations and the gossip tests, where the
// properties under study — convergence rounds, per-node control bytes,
// exactly-once dedup — must be exact functions of the seed, not of
// goroutine scheduling.
//
// Cast models a datagram path: frames above the configured limit are
// rejected (the caller is expected to fall back to Tell, as the socket
// backend does) and a seeded loss rate drops frames silently, exercising
// the gossip layer's anti-entropy repair. Tell is reliable and ordered.
type Mesh struct {
	mu       sync.Mutex
	nodes    map[simnet.NodeID]*Mem
	queue    []memFrame
	rng      *rand.Rand
	castLoss float64
	castMax  int
}

type memFrame struct {
	to, from simnet.NodeID
	class    simnet.Class
	frame    []byte
}

// DefaultMemCastLimit mirrors the socket backend's UDP datagram bound.
const DefaultMemCastLimit = 64 << 10

// NewMesh creates an empty fabric. The seed drives Cast loss decisions
// only; a mesh with zero loss is fully deterministic regardless.
func NewMesh(seed int64) *Mesh {
	return &Mesh{
		nodes:   make(map[simnet.NodeID]*Mem),
		rng:     rand.New(rand.NewSource(seed)),
		castMax: DefaultMemCastLimit,
	}
}

// SetCastLoss drops that fraction of Cast frames, decided by the mesh's
// seeded RNG in send order (deterministic for a deterministic caller).
func (m *Mesh) SetCastLoss(p float64) {
	m.mu.Lock()
	m.castLoss = p
	m.mu.Unlock()
}

// SetCastLimit overrides the datagram size bound (0 restores the default).
func (m *Mesh) SetCastLimit(n int) {
	m.mu.Lock()
	if n <= 0 {
		n = DefaultMemCastLimit
	}
	m.castMax = n
	m.mu.Unlock()
}

// Attach joins a node to the fabric and returns its transport.
func (m *Mesh) Attach(id simnet.NodeID) *Mem {
	t := &Mem{mesh: m, id: id}
	m.mu.Lock()
	m.nodes[id] = t
	m.mu.Unlock()
	return t
}

// Drain delivers queued frames — including frames the invoked handlers
// enqueue in turn — until the fabric is quiet, and reports how many frames
// it delivered. Handlers run sequentially on the caller's goroutine, so a
// single-threaded driver observes a fully deterministic delivery order.
func (m *Mesh) Drain() int {
	delivered := 0
	for {
		m.mu.Lock()
		if len(m.queue) == 0 {
			m.mu.Unlock()
			return delivered
		}
		f := m.queue[0]
		m.queue = m.queue[1:]
		dst := m.nodes[f.to]
		m.mu.Unlock()
		if dst == nil || dst.closed.Load() {
			continue
		}
		if h, _ := dst.h.Load().(Handler); h != nil {
			h(f.from, f.class, f.frame)
			delivered++
		}
	}
}

// Pending reports the number of undelivered frames.
func (m *Mesh) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Mem is one attachment on a Mesh. It implements Transport and Caster and
// counts the bytes and frames it sends per traffic class, which is what
// the federation benchmark's control-byte accounting reads.
type Mem struct {
	mesh   *Mesh
	id     simnet.NodeID
	h      atomic.Value // Handler
	closed atomic.Bool

	sentBytes  [simnet.ClassPreserve + 1]int64
	sentFrames [simnet.ClassPreserve + 1]int64
}

// Info reports the attachment's identity. Mesh needs no addresses.
func (t *Mem) Info() Info { return Info{ID: t.id} }

// Tell enqueues a reliable ordered delivery. The frame is copied, honouring
// the borrowed-buffer contract.
func (t *Mem) Tell(to simnet.NodeID, class simnet.Class, frame []byte) error {
	return t.send(to, class, frame, false)
}

// Cast enqueues a best-effort datagram: oversized frames are rejected (the
// caller falls back to Tell) and the mesh's seeded loss rate may drop the
// frame silently.
func (t *Mem) Cast(to simnet.NodeID, class simnet.Class, frame []byte) error {
	return t.send(to, class, frame, true)
}

func (t *Mem) send(to simnet.NodeID, class simnet.Class, frame []byte, cast bool) error {
	if t.closed.Load() {
		return ErrClosed
	}
	m := t.mesh
	m.mu.Lock()
	if _, ok := m.nodes[to]; !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	if cast {
		if len(frame) > m.castMax {
			m.mu.Unlock()
			return fmt.Errorf("transport: datagram of %d bytes exceeds limit", len(frame))
		}
		if m.castLoss > 0 && m.rng.Float64() < m.castLoss {
			m.mu.Unlock()
			// Lost on the wire: the bytes were still spent.
			t.account(class, len(frame))
			return nil
		}
	}
	cp := append(make([]byte, 0, len(frame)), frame...)
	m.queue = append(m.queue, memFrame{to: to, from: t.id, class: class, frame: cp})
	m.mu.Unlock()
	t.account(class, len(frame))
	return nil
}

func (t *Mem) account(class simnet.Class, n int) {
	atomic.AddInt64(&t.sentBytes[class], int64(n))
	atomic.AddInt64(&t.sentFrames[class], 1)
}

// SentBytes reports the bytes this node has sent on one traffic class.
func (t *Mem) SentBytes(class simnet.Class) int64 {
	return atomic.LoadInt64(&t.sentBytes[class])
}

// SentFrames reports the frames this node has sent on one traffic class.
func (t *Mem) SentFrames(class simnet.Class) int64 {
	return atomic.LoadInt64(&t.sentFrames[class])
}

// Receive installs the frame handler.
func (t *Mem) Receive(h Handler) { t.h.Store(h) }

// Close detaches the node: pending frames to it are discarded at delivery.
func (t *Mem) Close() error {
	t.closed.Store(true)
	return nil
}
