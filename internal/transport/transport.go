// Package transport abstracts the network under the MobiStreams planes so
// the same runtime code can run over the simulated region WiFi or over real
// UDP/TCP sockets. The interface is deliberately minimal — the Info /
// Tell / Receive triple — with frames as opaque []byte encoded by
// internal/wire; everything transport-specific (airtime reservation,
// dialing, framing, retry) lives behind it.
//
// Frame ownership: Tell treats the frame as borrowed — callers may reuse
// the buffer as soon as the call returns. Receive hands the handler a
// frame it owns.
package transport

import (
	"errors"

	"mobistreams/internal/simnet"
)

// Handler consumes one received frame. Handlers are invoked sequentially
// per sender connection (per-edge FIFO is preserved) but concurrently
// across senders.
type Handler func(from simnet.NodeID, class simnet.Class, frame []byte)

// Info identifies a transport attachment.
type Info struct {
	// ID is the node's identity on the transport.
	ID simnet.NodeID
	// Addr is the address peers can dial to reach this node; empty for
	// backends without addressing (simnet).
	Addr string
}

// Transport is the minimal reliable messaging substrate: identity, an
// ordered reliable send to one peer, and a receive hook.
type Transport interface {
	// Info reports this attachment's identity.
	Info() Info
	// Tell reliably delivers frame to the peer, preserving order among
	// Tells to the same (peer, class). It blocks until the frame is
	// handed to the network and returns an error if the peer is unknown
	// or unreachable.
	Tell(to simnet.NodeID, class simnet.Class, frame []byte) error
	// Receive installs the frame handler. It must be called before
	// traffic arrives; frames received with no handler installed are
	// dropped.
	Receive(h Handler)
	// Close releases the attachment. Pending receives are abandoned.
	Close() error
}

// Caster is the optional best-effort extension: an unordered, unreliable
// datagram send (UDP, lossy WiFi broadcast). Both built-in backends
// implement it.
type Caster interface {
	Cast(to simnet.NodeID, class simnet.Class, frame []byte) error
}

// ErrUnknownPeer is returned by Tell/Cast when the destination has no
// address book entry and cannot be dialed.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")
