package transport

import (
	"errors"
	"fmt"
	"testing"

	"mobistreams/internal/simnet"
)

func TestMemTellOrderedAndCounted(t *testing.T) {
	mesh := NewMesh(1)
	a := mesh.Attach("a")
	b := mesh.Attach("b")
	var got []string
	b.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
		got = append(got, string(frame))
	})
	sent := 0
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("m%d", i))
		if err := a.Tell("b", simnet.ClassControl, p); err != nil {
			t.Fatal(err)
		}
		sent += len(p)
	}
	if n := mesh.Drain(); n != 10 {
		t.Fatalf("delivered %d, want 10", n)
	}
	for i, s := range got {
		if want := fmt.Sprintf("m%d", i); s != want {
			t.Fatalf("frame %d = %q, want %q", i, s, want)
		}
	}
	if b := a.SentBytes(simnet.ClassControl); b != int64(sent) {
		t.Fatalf("SentBytes = %d, want %d", b, sent)
	}
	if f := a.SentFrames(simnet.ClassControl); f != 10 {
		t.Fatalf("SentFrames = %d, want 10", f)
	}
	if a.SentBytes(simnet.ClassData) != 0 {
		t.Fatal("data-class bytes counted for control traffic")
	}
}

// TestMemHandlerReentrancy: a handler that sends in turn must not deadlock,
// and its frames drain in the same Drain call.
func TestMemHandlerReentrancy(t *testing.T) {
	mesh := NewMesh(1)
	a := mesh.Attach("a")
	b := mesh.Attach("b")
	c := mesh.Attach("c")
	var final []byte
	b.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
		b.Tell("c", class, append(frame, '!'))
	})
	c.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
		final = frame
	})
	if err := a.Tell("b", simnet.ClassControl, []byte("hop")); err != nil {
		t.Fatal(err)
	}
	if n := mesh.Drain(); n != 2 {
		t.Fatalf("delivered %d, want 2", n)
	}
	if string(final) != "hop!" {
		t.Fatalf("relayed frame = %q", final)
	}
}

func TestMemCastLimitAndLoss(t *testing.T) {
	mesh := NewMesh(7)
	mesh.SetCastLimit(8)
	a := mesh.Attach("a")
	b := mesh.Attach("b")
	n := 0
	b.Receive(func(simnet.NodeID, simnet.Class, []byte) { n++ })

	if err := a.Cast("b", simnet.ClassControl, make([]byte, 9)); err == nil {
		t.Fatal("oversized cast accepted")
	}
	if err := a.Tell("b", simnet.ClassControl, make([]byte, 9)); err != nil {
		t.Fatalf("tell has no datagram limit: %v", err)
	}

	mesh.SetCastLoss(1.0)
	if err := a.Cast("b", simnet.ClassControl, []byte("gone")); err != nil {
		t.Fatalf("lost cast must not error: %v", err)
	}
	mesh.SetCastLoss(0)
	if err := a.Cast("b", simnet.ClassControl, []byte("here")); err != nil {
		t.Fatal(err)
	}
	mesh.Drain()
	if n != 2 { // the oversized Tell and the surviving cast
		t.Fatalf("delivered %d frames, want 2", n)
	}
	// Lost casts still spent their bytes.
	if got := a.SentBytes(simnet.ClassControl); got != 9+4+4 {
		t.Fatalf("SentBytes = %d, want 17", got)
	}
}

func TestMemUnknownPeerAndClose(t *testing.T) {
	mesh := NewMesh(1)
	a := mesh.Attach("a")
	if err := a.Tell("ghost", simnet.ClassData, []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("tell to unknown peer: %v", err)
	}
	a.Close()
	if err := a.Tell("a", simnet.ClassData, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("tell after close: %v", err)
	}
}

// TestMemDeterministicLoss: the same seed and send order drop the same
// frames.
func TestMemDeterministicLoss(t *testing.T) {
	run := func() []int {
		mesh := NewMesh(99)
		mesh.SetCastLoss(0.5)
		a := mesh.Attach("a")
		b := mesh.Attach("b")
		var arrived []int
		b.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
			arrived = append(arrived, int(frame[0]))
		})
		for i := 0; i < 32; i++ {
			a.Cast("b", simnet.ClassControl, []byte{byte(i)})
		}
		mesh.Drain()
		return arrived
	}
	first := run()
	for rep := 0; rep < 3; rep++ {
		if got := run(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("loss pattern varied: %v vs %v", got, first)
		}
	}
	if len(first) == 0 || len(first) == 32 {
		t.Fatalf("loss rate 0.5 delivered %d of 32", len(first))
	}
}
