package transport

import (
	"testing"
	"time"

	"mobistreams/internal/clock"
	"mobistreams/internal/simnet"
)

func simPair(t *testing.T, seed int64) (*Sim, *Sim, *simnet.WiFi, clock.Clock) {
	t.Helper()
	clk := clock.NewScaled(500)
	w := simnet.NewWiFi(clk, simnet.WiFiConfig{BitsPerSecond: 5e6, Seed: seed})
	epA := simnet.NewEndpoint("a", 256)
	epB := simnet.NewEndpoint("b", 256)
	w.Join(epA)
	w.Join(epB)
	a := NewSim(epA, w, nil)
	b := NewSim(epB, w, nil)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, w, clk
}

func TestSimTellDelivers(t *testing.T) {
	a, b, _, _ := simPair(t, 1)
	c := newCollector()
	b.Receive(c.handler)
	for i := 0; i < 10; i++ {
		if err := a.Tell("b", simnet.ClassData, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.wait(t, 10, 5*time.Second)
	for i, r := range got {
		if r.from != "a" || r.class != simnet.ClassData || r.frame[0] != byte(i) {
			t.Fatalf("frame %d: %+v (order or attribution broken)", i, r)
		}
	}
}

// TestSimBufferReuseSafe: Tell's contract lets the caller reuse its buffer
// immediately; the Sim backend must have copied the frame.
func TestSimBufferReuseSafe(t *testing.T) {
	a, b, _, _ := simPair(t, 1)
	c := newCollector()
	b.Receive(c.handler)
	buf := []byte{42}
	if err := a.Tell("b", simnet.ClassData, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // caller reuses the buffer right away
	got := c.wait(t, 1, 5*time.Second)
	if got[0].frame[0] != 42 {
		t.Fatalf("received %d: the transport aliased the caller's buffer", got[0].frame[0])
	}
}

// TestSimChargesActualFrameBytes pins the adapter's accounting: a Tell of
// an n-byte frame puts exactly n bytes on the simulated medium — the same
// bytes the socket backend would write — so airtime accounting cannot
// drift from the real codec.
func TestSimChargesActualFrameBytes(t *testing.T) {
	a, b, w, _ := simPair(t, 7)
	c := newCollector()
	b.Receive(c.handler)
	frame := make([]byte, 1234)
	if err := a.Tell("b", simnet.ClassData, frame); err != nil {
		t.Fatal(err)
	}
	c.wait(t, 1, 5*time.Second)
	if got := w.Counters.Bytes(simnet.ClassData); got != 1234 {
		t.Fatalf("medium charged %d bytes for a 1234-byte frame", got)
	}
}

// TestSimPinnedBehaviour: on a fixed seed, frames sent through the Sim
// adapter occupy the medium identically to the same sizes sent through the
// raw simnet API — adapting the simnet behind Transport changed nothing
// about how the simulation behaves.
func TestSimPinnedBehaviour(t *testing.T) {
	sizes := []int{100, 2000, 64, 5000, 1}

	// Raw simnet sends.
	clkRaw := clock.NewScaled(2000)
	wRaw := simnet.NewWiFi(clkRaw, simnet.WiFiConfig{BitsPerSecond: 1e6, Seed: 42})
	wRaw.Join(simnet.NewEndpoint("a", 256))
	wRaw.Join(simnet.NewEndpoint("b", 256))
	for _, n := range sizes {
		if err := wRaw.Unicast("a", "b", simnet.ClassData, n, make([]byte, n)); err != nil {
			t.Fatal(err)
		}
	}
	rawAirtime := wRaw.ChannelAirtime(0)
	rawBytes := wRaw.Counters.Bytes(simnet.ClassData)
	rawMsgs := wRaw.Counters.Messages(simnet.ClassData)

	// The same sizes through the transport adapter on an identical medium.
	clkT := clock.NewScaled(2000)
	wT := simnet.NewWiFi(clkT, simnet.WiFiConfig{BitsPerSecond: 1e6, Seed: 42})
	epA := simnet.NewEndpoint("a", 256)
	epB := simnet.NewEndpoint("b", 256)
	wT.Join(epA)
	wT.Join(epB)
	a := NewSim(epA, wT, nil)
	defer a.Close()
	for _, n := range sizes {
		if err := a.Tell("b", simnet.ClassData, make([]byte, n)); err != nil {
			t.Fatal(err)
		}
	}
	if got := wT.ChannelAirtime(0); got != rawAirtime {
		t.Fatalf("airtime through transport %v != raw simnet %v", got, rawAirtime)
	}
	if got := wT.Counters.Bytes(simnet.ClassData); got != rawBytes {
		t.Fatalf("bytes through transport %d != raw simnet %d", got, rawBytes)
	}
	if got := wT.Counters.Messages(simnet.ClassData); got != rawMsgs {
		t.Fatalf("messages through transport %d != raw simnet %d", got, rawMsgs)
	}
}

// TestSimCellFallback: when the WiFi destination is gone, Tell falls back
// to the cellular path, mirroring the node runtime's relay rule.
func TestSimCellFallback(t *testing.T) {
	clk := clock.NewScaled(500)
	w := simnet.NewWiFi(clk, simnet.WiFiConfig{BitsPerSecond: 5e6, Seed: 1})
	cell := simnet.NewCellular(clk, simnet.CellularConfig{})
	epA := simnet.NewEndpoint("a", 256)
	epB := simnet.NewEndpoint("b", 256)
	w.Join(epA) // b never joins the WiFi
	cell.Attach(epA)
	cell.Attach(epB)
	a := NewSim(epA, w, cell)
	b := NewSim(epB, w, cell)
	defer a.Close()
	defer b.Close()
	c := newCollector()
	b.Receive(c.handler)
	if err := a.Tell("b", simnet.ClassControl, []byte("via-cell")); err != nil {
		t.Fatal(err)
	}
	got := c.wait(t, 1, 5*time.Second)
	if string(got[0].frame) != "via-cell" {
		t.Fatalf("frame: %q", got[0].frame)
	}
	if cell.Counters.Bytes(simnet.ClassControl) == 0 {
		t.Fatal("cellular path was not charged")
	}
}
