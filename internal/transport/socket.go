package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobistreams/internal/obs"
	"mobistreams/internal/simnet"
	"mobistreams/internal/wire"
)

// TCP framing: a 4-byte big-endian length (class byte + payload), the
// class byte, then the wire-encoded frame. The first frame on every
// connection must be a KindHello identifying the dialer, so the accepting
// side can attribute traffic and learn the dialer's listen address.
//
// UDP datagrams are self-identifying instead (no handshake): the class
// byte, a length-prefixed sender ID, then the frame.

const (
	// maxFrameBytes bounds one framed message (64 MB): large enough for
	// any checkpoint blob the simulation produces, small enough that a
	// corrupted length prefix cannot drive allocation to OOM.
	maxFrameBytes = 64 << 20
	// maxDatagramBytes bounds one UDP cast.
	maxDatagramBytes = 64 << 10

	// coalesceMax bounds frames that ride the shared per-conn pending
	// buffer. Larger frames flush the backlog and then write straight from
	// the caller's buffer, so a checkpoint blob is never copied.
	coalesceMax = 8 << 10

	dialAttempts = 4
	dialTimeout  = 2 * time.Second
	retryBackoff = 25 * time.Millisecond
)

type connKey struct {
	id    simnet.NodeID
	class simnet.Class
}

// sendConn is one outbound (peer, class) connection with a group-commit
// send path: small frames are framed into a shared pending buffer, and
// whichever goroutine holds the write role flushes everything pending in
// one syscall. The buffer ping-pongs between two recycled backing arrays,
// so the steady-state framing path allocates nothing. Frames appended
// while a flush is in flight ride the next flush; FIFO order per
// connection is preserved because appends are serialised by the mutex and
// the writer always flushes the buffer as one contiguous block.
type sendConn struct {
	mu      sync.Mutex
	flushed sync.Cond // broadcast after every flush attempt
	c       net.Conn
	pend    []byte // framed messages awaiting the writer
	spare   []byte // recycled backing array for the next pend generation
	writing bool   // a goroutine currently holds the write role
	// appended and flushedB are cumulative byte counters: a waiter's frame
	// has reached the kernel exactly when flushedB covers its append point.
	appended int64
	flushedB int64
	err      error // sticky: the first write failure poisons the conn
}

func newSendConn(c net.Conn) *sendConn {
	sc := &sendConn{c: c}
	sc.flushed.L = &sc.mu
	return sc
}

// appendFramed appends one length-prefixed message — 4-byte length, class
// byte, frame — onto dst.
func appendFramed(dst []byte, class simnet.Class, frame []byte) []byte {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(frame)+1))
	hdr[4] = byte(class)
	dst = append(dst, hdr[:]...)
	return append(dst, frame...)
}

// write delivers one framed message with group commit: N concurrent small
// sends on the same connection cost one syscall, not N.
func (sc *sendConn) write(class simnet.Class, frame []byte) error {
	sc.mu.Lock()
	if sc.err != nil {
		err := sc.err
		sc.mu.Unlock()
		return err
	}
	if len(frame) > coalesceMax {
		return sc.writeDirectLocked(class, frame)
	}
	sc.pend = appendFramed(sc.pend, class, frame)
	sc.appended += int64(5 + len(frame))
	myEnd := sc.appended
	for sc.writing {
		if sc.flushedB >= myEnd { // another writer flushed our frame
			sc.mu.Unlock()
			return nil
		}
		if sc.err != nil {
			err := sc.err
			sc.mu.Unlock()
			return err
		}
		sc.flushed.Wait()
	}
	if sc.flushedB >= myEnd {
		sc.mu.Unlock()
		return nil
	}
	if sc.err != nil {
		err := sc.err
		sc.mu.Unlock()
		return err
	}
	buf := sc.swapPendLocked()
	sc.mu.Unlock()

	_, err := sc.c.Write(buf)

	sc.mu.Lock()
	sc.finishFlushLocked(buf, err)
	sc.mu.Unlock()
	return err
}

// writeDirectLocked takes the write role, flushes the pending backlog,
// then writes the header and the caller's frame without copying it.
// Called with mu held; returns with mu released.
func (sc *sendConn) writeDirectLocked(class simnet.Class, frame []byte) error {
	for sc.writing {
		if sc.err != nil {
			err := sc.err
			sc.mu.Unlock()
			return err
		}
		sc.flushed.Wait()
	}
	if sc.err != nil {
		err := sc.err
		sc.mu.Unlock()
		return err
	}
	buf := sc.swapPendLocked()
	sc.mu.Unlock()

	var err error
	if len(buf) > 0 {
		_, err = sc.c.Write(buf)
	}
	if err == nil {
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(frame)+1))
		hdr[4] = byte(class)
		if _, err = sc.c.Write(hdr[:]); err == nil {
			_, err = sc.c.Write(frame)
		}
	}

	sc.mu.Lock()
	sc.finishFlushLocked(buf, err)
	sc.mu.Unlock()
	return err
}

// swapPendLocked claims the write role and detaches the pending buffer.
func (sc *sendConn) swapPendLocked() []byte {
	sc.writing = true
	buf := sc.pend
	sc.pend = sc.spare[:0]
	sc.spare = nil
	return buf
}

// finishFlushLocked releases the write role, advances the flush counter
// on success (an error is sticky and fails every queued waiter, whose
// frames may not have reached the wire), and recycles the flushed
// buffer's backing array.
func (sc *sendConn) finishFlushLocked(buf []byte, err error) {
	sc.writing = false
	if err != nil {
		sc.err = err
	} else {
		sc.flushedB += int64(len(buf))
		if cap(buf) > 0 {
			if len(sc.pend) == 0 {
				sc.pend = buf[:0]
			} else {
				sc.spare = buf[:0]
			}
		}
	}
	sc.flushed.Broadcast()
}

// Socket is the real-network transport: reliable ordered Tell over
// per-(peer, class) TCP connections with length-prefixed framing, dial
// retry and a hello handshake; best-effort Cast over UDP on the same port.
type Socket struct {
	info Info
	ln   net.Listener
	udp  *net.UDPConn

	mu      sync.Mutex
	peers   map[simnet.NodeID]string
	conns   map[connKey]*sendConn
	inbound map[net.Conn]struct{}
	closed  bool
	// redialPending marks (peer, class) keys whose connection died, so the
	// next successful dial counts as a redial rather than a first dial.
	redialPending map[connKey]bool
	deadConns     int64
	redials       int64
	journal       *obs.Journal

	// Per-peer datagram budget (token bucket, bytes). Zero rate = no cap.
	castRate    float64
	castBurst   float64
	castBuckets map[simnet.NodeID]*castBucket

	castFallbacks  int64
	castSuppressed int64
	sentBytes      [simnet.ClassPreserve + 1]int64

	h  atomic.Value // Handler
	wg sync.WaitGroup
}

// castBucket is one peer's datagram token bucket.
type castBucket struct {
	tokens float64
	last   time.Time
}

// Stats is a point-in-time snapshot of the transport's connection health.
type Stats struct {
	// DeadConns counts connections discarded after a write failure.
	DeadConns int64
	// Redials counts successful dials that replaced a dead connection.
	Redials int64
	// CastFallbacks counts oversized casts delivered reliably via Tell.
	CastFallbacks int64
	// CastSuppressed counts casts dropped by the per-peer send budget.
	CastSuppressed int64
}

// SetJournal attaches a lifecycle journal: dead connections and redials
// become structured events alongside the counters. Nil detaches. Not
// safe to call concurrently with Tell.
func (s *Socket) SetJournal(j *obs.Journal) {
	s.mu.Lock()
	s.journal = j
	s.mu.Unlock()
}

// Stats reports connection-health counters since the socket was created.
func (s *Socket) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		DeadConns: s.deadConns, Redials: s.redials,
		CastFallbacks:  atomic.LoadInt64(&s.castFallbacks),
		CastSuppressed: atomic.LoadInt64(&s.castSuppressed),
	}
}

// SetCastBudget caps the datagram bytes this node may send to any one
// peer: a token bucket refilling at bytesPerSec with the given burst.
// Casts over budget are silently suppressed (Cast is best-effort; the
// CastSuppressed counter records them). A zero rate removes the cap.
func (s *Socket) SetCastBudget(bytesPerSec, burst int) {
	s.mu.Lock()
	s.castRate = float64(bytesPerSec)
	s.castBurst = float64(burst)
	s.castBuckets = make(map[simnet.NodeID]*castBucket)
	s.mu.Unlock()
}

// SentBytes reports the payload bytes sent on one traffic class, across
// Tell and Cast. A cast that fell back to Tell counts once; suppressed
// casts never reached the wire and do not count.
func (s *Socket) SentBytes(class simnet.Class) int64 {
	return atomic.LoadInt64(&s.sentBytes[class])
}

// castAllowLocked charges n bytes against the peer's token bucket.
func (s *Socket) castAllowLocked(to simnet.NodeID, n int) bool {
	if s.castRate <= 0 {
		return true
	}
	now := time.Now()
	b := s.castBuckets[to]
	if b == nil {
		b = &castBucket{tokens: s.castBurst, last: now}
		s.castBuckets[to] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * s.castRate
	if b.tokens > s.castBurst {
		b.tokens = s.castBurst
	}
	b.last = now
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// NewSocket listens on listen ("host:port", port 0 for ephemeral) for both
// TCP and UDP. advertise is the address peers dial to reach this node;
// empty means the listener's own address (right for loopback and
// single-host tests; multi-host deployments pass an externally routable
// address).
func NewSocket(id simnet.NodeID, listen, advertise string) (*Socket, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
	}
	udp, err := net.ListenUDP("udp", &net.UDPAddr{
		IP:   ln.Addr().(*net.TCPAddr).IP,
		Port: ln.Addr().(*net.TCPAddr).Port,
	})
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("transport: listen udp: %w", err)
	}
	if advertise == "" {
		advertise = ln.Addr().String()
	}
	s := &Socket{
		info:          Info{ID: id, Addr: advertise},
		ln:            ln,
		udp:           udp,
		peers:         make(map[simnet.NodeID]string),
		conns:         make(map[connKey]*sendConn),
		inbound:       make(map[net.Conn]struct{}),
		redialPending: make(map[connKey]bool),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.udpLoop()
	return s, nil
}

// Info reports the node's identity and advertised address.
func (s *Socket) Info() Info { return s.info }

// AddPeer records a peer's dialable address. Accepted connections add
// their dialer automatically via the hello handshake.
func (s *Socket) AddPeer(id simnet.NodeID, addr string) {
	s.mu.Lock()
	s.peers[id] = addr
	s.mu.Unlock()
}

// Peers lists the known peer IDs.
func (s *Socket) Peers() []simnet.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]simnet.NodeID, 0, len(s.peers))
	for id := range s.peers {
		out = append(out, id)
	}
	return out
}

// PeerAddr reports a peer's recorded address.
func (s *Socket) PeerAddr(id simnet.NodeID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, ok := s.peers[id]
	return addr, ok
}

// WaitPeers blocks until at least n peers are known or the timeout
// elapses. Region setup uses it to wait for workers to join.
func (s *Socket) WaitPeers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		have := len(s.peers)
		s.mu.Unlock()
		if have >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: %d of %d peers joined within %v", have, n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Receive installs the frame handler.
func (s *Socket) Receive(h Handler) { s.h.Store(h) }

func (s *Socket) handler() Handler {
	h, _ := s.h.Load().(Handler)
	return h
}

// Tell reliably delivers the frame over the (to, class) TCP connection,
// dialing (with retry and a hello handshake) on first use and redialing
// once per attempt if an established connection has died.
func (s *Socket) Tell(to simnet.NodeID, class simnet.Class, frame []byte) error {
	if len(frame)+1 > maxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	var lastErr error
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(retryBackoff << (attempt - 1))
		}
		sc, err := s.conn(to, class)
		if err != nil {
			if err == ErrUnknownPeer || err == ErrClosed {
				return err
			}
			lastErr = err
			continue
		}
		if err = sc.write(class, frame); err == nil {
			atomic.AddInt64(&s.sentBytes[class], int64(len(frame)))
			return nil
		}
		lastErr = err
		s.dropConn(to, class, sc)
	}
	return fmt.Errorf("transport: tell %s/%s: %w", to, class, lastErr)
}

// Cast sends the frame as one best-effort UDP datagram; missing peers are
// errors, network loss is not. A frame too large for one datagram falls
// back to Tell transparently — the caller asked for best effort and gets
// reliable delivery instead, at stream cost (journalled as cast_fallback).
// When a per-peer budget is set, casts over budget are dropped, which is
// within Cast's loss contract.
func (s *Socket) Cast(to simnet.NodeID, class simnet.Class, frame []byte) error {
	id := string(s.info.ID)
	n := 1 + 2 + len(id) + len(frame)
	s.mu.Lock()
	addr, ok := s.peers[to]
	closed := s.closed
	allowed := true
	if !closed && ok && n <= maxDatagramBytes {
		allowed = s.castAllowLocked(to, n)
	}
	journal := s.journal
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	if n > maxDatagramBytes {
		atomic.AddInt64(&s.castFallbacks, 1)
		journal.Emit(obs.Event{
			At: time.Now().UnixNano(), Kind: "cast_fallback",
			Node: string(s.info.ID), Detail: string(to),
		})
		return s.Tell(to, class, frame)
	}
	if !allowed {
		atomic.AddInt64(&s.castSuppressed, 1)
		return nil
	}
	atomic.AddInt64(&s.sentBytes[class], int64(len(frame)))
	buf := make([]byte, 0, n)
	buf = append(buf, byte(class))
	buf = append(buf, byte(len(id)>>8), byte(len(id)))
	buf = append(buf, id...)
	buf = append(buf, frame...)
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: cast %s: %w", to, err)
	}
	_, err = s.udp.WriteToUDP(buf, ua)
	return err
}

// Close shuts the listeners and every connection down.
func (s *Socket) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns)+len(s.inbound))
	for _, sc := range s.conns {
		conns = append(conns, sc.c)
	}
	for c := range s.inbound {
		conns = append(conns, c)
	}
	s.conns = map[connKey]*sendConn{}
	s.inbound = map[net.Conn]struct{}{}
	s.mu.Unlock()

	s.ln.Close()
	s.udp.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// conn returns the cached (to, class) connection, dialing and handshaking
// a fresh one if needed.
func (s *Socket) conn(to simnet.NodeID, class simnet.Class) (*sendConn, error) {
	key := connKey{to, class}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if sc, ok := s.conns[key]; ok {
		s.mu.Unlock()
		return sc, nil
	}
	addr, ok := s.peers[to]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownPeer
	}

	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	hello := wire.AppendHello(nil, &wire.Hello{ID: s.info.ID, Addr: s.info.Addr})
	if err := writeFrame(c, simnet.ClassControl, hello); err != nil {
		c.Close()
		return nil, err
	}

	sc := newSendConn(c)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if prior, ok := s.conns[key]; ok {
		// A concurrent Tell won the dial race; keep its connection.
		s.mu.Unlock()
		c.Close()
		return prior, nil
	}
	s.conns[key] = sc
	if s.redialPending[key] {
		delete(s.redialPending, key)
		s.redials++
		s.journal.Emit(obs.Event{
			At: time.Now().UnixNano(), Kind: "conn.redial",
			Node: string(s.info.ID), Detail: string(to),
		})
	}
	s.wg.Add(1)
	go s.watchConn(key, sc)
	s.mu.Unlock()
	return sc, nil
}

// watchConn blocks reading the outbound connection, which the peer never
// writes to: anything Read returns means the connection is gone. The conn
// is poisoned and dropped immediately, so the next Tell redials instead
// of writing a frame into a dead socket — the single-syscall send path
// has no second write to trip over a delayed RST.
func (s *Socket) watchConn(key connKey, sc *sendConn) {
	defer s.wg.Done()
	var buf [1]byte
	_, err := sc.c.Read(buf[:])
	if err == nil {
		err = fmt.Errorf("transport: unexpected data on send-only conn")
	}
	sc.mu.Lock()
	if sc.err == nil {
		sc.err = err
	}
	sc.flushed.Broadcast()
	sc.mu.Unlock()
	s.dropConn(key.id, key.class, sc)
}

// dropConn discards a dead connection so the next attempt redials.
func (s *Socket) dropConn(to simnet.NodeID, class simnet.Class, sc *sendConn) {
	key := connKey{to, class}
	s.mu.Lock()
	if s.conns[key] == sc {
		delete(s.conns, key)
		s.deadConns++
		s.redialPending[key] = true
		s.journal.Emit(obs.Event{
			At: time.Now().UnixNano(), Kind: "conn.dead",
			Node: string(s.info.ID), Detail: string(to),
		})
	}
	s.mu.Unlock()
	sc.c.Close()
}

// writeFrame writes one framed message in a single syscall. Only the
// per-dial hello path uses it; steady-state sends go through
// sendConn.write, which reuses its buffers.
func writeFrame(c net.Conn, class simnet.Class, frame []byte) error {
	_, err := c.Write(appendFramed(make([]byte, 0, 5+len(frame)), class, frame))
	return err
}

// readFrame reads one framed message; the returned frame is freshly
// allocated and owned by the caller.
func readFrame(c net.Conn) (simnet.Class, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("transport: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c, body); err != nil {
		return 0, nil, err
	}
	return simnet.Class(body[0]), body[1:], nil
}

func (s *Socket) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// serveConn handles one inbound connection: a hello first, then frames
// dispatched to the handler in arrival (FIFO) order.
func (s *Socket) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer c.Close()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.inbound[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.inbound, c)
		s.mu.Unlock()
	}()
	_, first, err := readFrame(c)
	if err != nil {
		return
	}
	hello, err := wire.DecodeHello(first)
	if err != nil {
		return // not speaking our protocol
	}
	if hello.Addr != "" {
		s.AddPeer(hello.ID, hello.Addr)
	}
	for {
		class, frame, err := readFrame(c)
		if err != nil {
			return
		}
		if h := s.handler(); h != nil {
			h(hello.ID, class, frame)
		}
	}
}

func (s *Socket) udpLoop() {
	defer s.wg.Done()
	buf := make([]byte, maxDatagramBytes)
	for {
		n, _, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < 3 {
			continue
		}
		class := simnet.Class(buf[0])
		idLen := int(buf[1])<<8 | int(buf[2])
		if 3+idLen > n {
			continue
		}
		from := simnet.NodeID(buf[3 : 3+idLen])
		frame := append([]byte(nil), buf[3+idLen:n]...)
		if h := s.handler(); h != nil {
			h(from, class, frame)
		}
	}
}
