package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mobistreams/internal/obs"
	"mobistreams/internal/simnet"
)

// collector gathers received frames thread-safely.
type collector struct {
	mu     sync.Mutex
	frames []received
	ch     chan received
}

type received struct {
	from  simnet.NodeID
	class simnet.Class
	frame []byte
}

func newCollector() *collector {
	return &collector{ch: make(chan received, 1024)}
}

func (c *collector) handler(from simnet.NodeID, class simnet.Class, frame []byte) {
	r := received{from, class, frame}
	c.mu.Lock()
	c.frames = append(c.frames, r)
	c.mu.Unlock()
	c.ch <- r
}

func (c *collector) wait(t *testing.T, n int, timeout time.Duration) []received {
	t.Helper()
	deadline := time.After(timeout)
	for {
		c.mu.Lock()
		have := len(c.frames)
		c.mu.Unlock()
		if have >= n {
			c.mu.Lock()
			defer c.mu.Unlock()
			return append([]received(nil), c.frames...)
		}
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("received %d of %d frames within %v", have, n, timeout)
		}
	}
}

func newSock(t *testing.T, id simnet.NodeID) (*Socket, *collector) {
	t.Helper()
	s, err := NewSocket(id, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := newCollector()
	s.Receive(c.handler)
	return s, c
}

func TestSocketTellOrdered(t *testing.T) {
	a, _ := newSock(t, "a")
	b, bc := newSock(t, "b")
	a.AddPeer("b", b.Info().Addr)

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Tell("b", simnet.ClassData, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := bc.wait(t, n, 5*time.Second)
	for i, r := range got {
		if r.from != "a" || r.class != simnet.ClassData {
			t.Fatalf("frame %d from %s class %s", i, r.from, r.class)
		}
		if want := fmt.Sprintf("m%03d", i); string(r.frame) != want {
			t.Fatalf("frame %d = %q, want %q (order broken)", i, r.frame, want)
		}
	}
}

// TestSocketHelloBackLearning: after a dials b, b has learned a's address
// from the hello handshake and can Tell back without explicit AddPeer.
func TestSocketHelloBackLearning(t *testing.T) {
	a, ac := newSock(t, "a")
	b, bc := newSock(t, "b")
	a.AddPeer("b", b.Info().Addr)
	if err := a.Tell("b", simnet.ClassControl, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	bc.wait(t, 1, 5*time.Second)
	if _, ok := b.PeerAddr("a"); !ok {
		t.Fatal("b did not learn a's address from the handshake")
	}
	if err := b.Tell("a", simnet.ClassControl, []byte("yo")); err != nil {
		t.Fatalf("reverse tell: %v", err)
	}
	got := ac.wait(t, 1, 5*time.Second)
	if got[0].from != "b" || string(got[0].frame) != "yo" {
		t.Fatalf("reverse frame: %+v", got[0])
	}
}

// TestSocketPerClassConns: distinct classes get distinct connections, and
// traffic still attributes correctly.
func TestSocketPerClassConns(t *testing.T) {
	a, _ := newSock(t, "a")
	b, bc := newSock(t, "b")
	a.AddPeer("b", b.Info().Addr)
	classes := []simnet.Class{simnet.ClassData, simnet.ClassCheckpoint, simnet.ClassControl}
	for _, cl := range classes {
		if err := a.Tell("b", cl, []byte{byte(cl)}); err != nil {
			t.Fatal(err)
		}
	}
	got := bc.wait(t, len(classes), 5*time.Second)
	seen := map[simnet.Class]bool{}
	for _, r := range got {
		seen[r.class] = true
	}
	for _, cl := range classes {
		if !seen[cl] {
			t.Fatalf("class %s never arrived", cl)
		}
	}
	a.mu.Lock()
	nconns := len(a.conns)
	a.mu.Unlock()
	if nconns != len(classes) {
		t.Fatalf("%d outbound conns, want one per class = %d", nconns, len(classes))
	}
}

func TestSocketUnknownPeer(t *testing.T) {
	a, _ := newSock(t, "a")
	if err := a.Tell("ghost", simnet.ClassData, []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("tell to unknown peer: %v", err)
	}
	if err := a.Cast("ghost", simnet.ClassData, []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("cast to unknown peer: %v", err)
	}
}

// TestSocketRedialAfterPeerRestart: an established connection dies with
// its peer; Tell retries, redials the restarted listener and delivers.
func TestSocketRedialAfterPeerRestart(t *testing.T) {
	a, _ := newSock(t, "a")
	j := obs.NewJournal(0)
	a.SetJournal(j)
	b1, b1c := newSock(t, "b")
	a.AddPeer("b", b1.Info().Addr)
	if err := a.Tell("b", simnet.ClassData, []byte("one")); err != nil {
		t.Fatal(err)
	}
	b1c.wait(t, 1, 5*time.Second)
	addr := b1.Info().Addr
	b1.Close()
	// Connection death is detected asynchronously: the per-conn monitor
	// observes the peer's FIN and drops the conn. Wait for that before
	// sending again — a send racing the detection window lands in the
	// kernel buffer of a dying socket, which no TCP user can distinguish
	// from delivery without application-level acks.
	waitCond(t, func() bool { return a.Stats().DeadConns >= 1 })

	// Restart a listener on the same address under the same identity.
	var b2 *Socket
	var err error
	for i := 0; i < 50; i++ { // the port lingers briefly on some kernels
		b2, err = NewSocket("b", addr, "")
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart listener: %v", err)
	}
	t.Cleanup(func() { b2.Close() })
	b2c := newCollector()
	b2.Receive(b2c.handler)

	if err := a.Tell("b", simnet.ClassData, []byte("two")); err != nil {
		t.Fatalf("tell after restart: %v", err)
	}
	got := b2c.wait(t, 1, 5*time.Second)
	if string(got[0].frame) != "two" {
		t.Fatalf("frame after restart: %q", got[0].frame)
	}
	st := a.Stats()
	if st.DeadConns < 1 {
		t.Fatalf("DeadConns = %d, want >= 1", st.DeadConns)
	}
	if st.Redials < 1 {
		t.Fatalf("Redials = %d, want >= 1", st.Redials)
	}
	if bst := b2.Stats(); bst.DeadConns != 0 || bst.Redials != 0 {
		t.Fatalf("receiver stats should be zero, got %+v", bst)
	}
	var dead, redial bool
	for _, ev := range j.Events() {
		switch ev.Kind {
		case "conn.dead":
			dead = true
		case "conn.redial":
			redial = true
		}
	}
	if !dead || !redial {
		t.Fatalf("journal missing conn.dead/conn.redial: %+v", j.Events())
	}
}

func TestSocketLargeFrame(t *testing.T) {
	a, _ := newSock(t, "a")
	b, bc := newSock(t, "b")
	a.AddPeer("b", b.Info().Addr)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Tell("b", simnet.ClassCheckpoint, big); err != nil {
		t.Fatal(err)
	}
	got := bc.wait(t, 1, 10*time.Second)
	if len(got[0].frame) != len(big) {
		t.Fatalf("got %d bytes, want %d", len(got[0].frame), len(big))
	}
	for i, v := range got[0].frame {
		if v != byte(i) {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

func TestSocketCastUDP(t *testing.T) {
	a, _ := newSock(t, "a")
	b, bc := newSock(t, "b")
	a.AddPeer("b", b.Info().Addr)
	// UDP is best-effort even on loopback; send a few.
	for i := 0; i < 5; i++ {
		if err := a.Cast("b", simnet.ClassPreserve, []byte("gram")); err != nil {
			t.Fatal(err)
		}
	}
	got := bc.wait(t, 1, 5*time.Second)
	if got[0].from != "a" || got[0].class != simnet.ClassPreserve || string(got[0].frame) != "gram" {
		t.Fatalf("datagram: %+v", got[0])
	}
}

// TestSocketCastFallback: a frame too large for one datagram is delivered
// anyway — Cast transparently downgrades to Tell — and the downgrade is
// observable in the stats and the journal.
func TestSocketCastFallback(t *testing.T) {
	a, _ := newSock(t, "a")
	j := obs.NewJournal(0)
	a.SetJournal(j)
	b, bc := newSock(t, "b")
	a.AddPeer("b", b.Info().Addr)

	big := make([]byte, maxDatagramBytes) // header pushes it over the limit
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Cast("b", simnet.ClassControl, big); err != nil {
		t.Fatalf("oversized cast must fall back, not error: %v", err)
	}
	got := bc.wait(t, 1, 5*time.Second)
	if got[0].from != "a" || got[0].class != simnet.ClassControl || len(got[0].frame) != len(big) {
		t.Fatalf("fallback frame: from=%s class=%s len=%d", got[0].from, got[0].class, len(got[0].frame))
	}
	if st := a.Stats(); st.CastFallbacks != 1 {
		t.Fatalf("CastFallbacks = %d, want 1", st.CastFallbacks)
	}
	var logged bool
	for _, ev := range j.Events() {
		if ev.Kind == "cast_fallback" && ev.Detail == "b" {
			logged = true
		}
	}
	if !logged {
		t.Fatalf("journal missing cast_fallback event: %+v", j.Events())
	}
	if got := a.SentBytes(simnet.ClassControl); got != int64(len(big)) {
		t.Fatalf("SentBytes counted fallback twice or not at all: %d", got)
	}
}

// TestSocketCastBudget: with a per-peer budget set, casts beyond the burst
// are suppressed rather than sent, and the suppression is counted.
func TestSocketCastBudget(t *testing.T) {
	a, _ := newSock(t, "a")
	b, bc := newSock(t, "b")
	a.AddPeer("b", b.Info().Addr)
	// 1 byte/s refill: effectively only the burst is spendable in-test.
	a.SetCastBudget(1, 300)

	for i := 0; i < 10; i++ {
		if err := a.Cast("b", simnet.ClassControl, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.CastSuppressed == 0 {
		t.Fatal("no casts suppressed despite exhausted budget")
	}
	if sent := 10 - int(st.CastSuppressed); sent < 1 || sent > 4 {
		t.Fatalf("sent %d datagrams, want 1..4 under a 300-byte burst", sent)
	}
	bc.wait(t, 1, 5*time.Second) // at least one within-budget cast arrives

	a.SetCastBudget(0, 0) // lifting the cap restores unlimited casts
	if err := a.Cast("b", simnet.ClassControl, []byte("free")); err != nil {
		t.Fatal(err)
	}
}

func TestSocketTellAfterClose(t *testing.T) {
	a, _ := newSock(t, "a")
	b, _ := newSock(t, "b")
	a.AddPeer("b", b.Info().Addr)
	a.Close()
	if err := a.Tell("b", simnet.ClassData, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("tell after close: %v", err)
	}
	if err := a.Cast("b", simnet.ClassData, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("cast after close: %v", err)
	}
}

func TestSocketWaitPeers(t *testing.T) {
	a, _ := newSock(t, "a")
	if err := a.WaitPeers(1, 50*time.Millisecond); err == nil {
		t.Fatal("WaitPeers succeeded with no peers")
	}
	b, _ := newSock(t, "b")
	go func() {
		time.Sleep(20 * time.Millisecond)
		b.AddPeer("a", a.Info().Addr)
		b.Tell("a", simnet.ClassControl, []byte("join"))
	}()
	if err := a.WaitPeers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.PeerAddr("b"); !ok {
		t.Fatal("joined peer not in address book")
	}
}
