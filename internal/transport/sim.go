package transport

import (
	"sync"
	"sync/atomic"

	"mobistreams/internal/simnet"
)

// Sim adapts the simulated region networks to the Transport interface: a
// reliable Tell over the shared-airtime WiFi (falling back to cellular when
// the WiFi path is unreachable, mirroring the node runtime's relay rule)
// and a best-effort Cast that tolerates loss.
//
// Unlike the in-process message plane — which charges modelled
// Item.WireSize() bytes for payloads that exist only as Go objects — Sim
// charges len(frame): the actual encoded bytes, exactly what the socket
// backend puts on a real wire. Airtime accounting and the codec therefore
// cannot drift apart, which is what makes checkpoint-blob parity between
// the two backends a meaningful claim.
type Sim struct {
	ep   *simnet.Endpoint
	wifi *simnet.WiFi
	cell *simnet.Cellular

	h atomic.Value // Handler

	startOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	closed    atomic.Bool
}

// NewSim attaches a transport to an endpoint already joined to the WiFi
// medium (and optionally attached to the cellular network, for the
// fallback path).
func NewSim(ep *simnet.Endpoint, wifi *simnet.WiFi, cell *simnet.Cellular) *Sim {
	return &Sim{ep: ep, wifi: wifi, cell: cell, stop: make(chan struct{})}
}

// Info reports the endpoint's identity. Simnet has no dialable addresses.
func (s *Sim) Info() Info { return Info{ID: s.ep.ID} }

// Tell reliably delivers the frame over the WiFi, falling back to the
// cellular path when the WiFi destination is unreachable. The frame is
// copied: the simulated network holds a reference until the receiver
// drains it, while Tell's contract lets the caller reuse its buffer.
func (s *Sim) Tell(to simnet.NodeID, class simnet.Class, frame []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	cp := append(make([]byte, 0, len(frame)), frame...)
	err := s.wifi.Unicast(s.ep.ID, to, class, len(cp), cp)
	if err != nil && s.cell != nil {
		err = s.cell.Send(s.ep.ID, to, class, len(cp), cp)
	}
	return err
}

// Cast is the best-effort datagram path: delivery shares the WiFi airtime
// but failures (loss, absent peer) are not reported.
func (s *Sim) Cast(to simnet.NodeID, class simnet.Class, frame []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	cp := append(make([]byte, 0, len(frame)), frame...)
	s.wifi.Unicast(s.ep.ID, to, class, len(cp), cp)
	return nil
}

// Receive installs the handler and starts draining the endpoint inbox.
// Messages whose payload is not a frame ([]byte) are ignored: a Sim-backed
// node speaks the wire format exclusively.
func (s *Sim) Receive(h Handler) {
	s.h.Store(h)
	s.startOnce.Do(func() {
		s.wg.Add(1)
		go s.drain()
	})
}

func (s *Sim) drain() {
	defer s.wg.Done()
	inbox := s.ep.Inbox()
	for {
		select {
		case m := <-inbox:
			frame, ok := m.Payload.([]byte)
			if !ok {
				continue
			}
			if h, _ := s.h.Load().(Handler); h != nil {
				h(m.From, m.Class, frame)
			}
		case <-s.stop:
			return
		}
	}
}

// Close stops the drain goroutine. The endpoint itself stays joined to the
// medium (region lifecycle owns it).
func (s *Sim) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		close(s.stop)
		s.wg.Wait()
	}
	return nil
}
