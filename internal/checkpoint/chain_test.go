package checkpoint

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
)

// chainOps builds the stateful operator set the chain tests snapshot.
func chainOps() []operator.Operator {
	return []operator.Operator{
		operator.NewWindow("w", 32),
		operator.NewAggregate("a"),
		operator.NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in }),
	}
}

// feed drives n fixed-seed tuples through every operator.
func feed(t *testing.T, ops []operator.Operator, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tt := &tuple.Tuple{Seq: uint64(rng.Int63()), Size: 64, Kind: fmt.Sprintf("k%02d", rng.Intn(16)), Value: rng.Float64()}
		for _, op := range ops {
			if _, err := operator.Run(op, "", tt); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func markAll(ops []operator.Operator, v uint64) {
	for _, op := range ops {
		op.(operator.DeltaSnapshotter).MarkSnapshot(v)
	}
}

// TestDeltaChainRecoveryByteIdentical is the acceptance-criteria test:
// with a fixed workload seed, restoring from a materialised base+delta
// chain yields operator state byte-identical to restoring from a full blob
// cut at the same instant.
func TestDeltaChainRecoveryByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := chainOps()

	feed(t, ops, rng, 200)
	b1, err := BuildBlob("n1", 1, ops, []byte("rt1"))
	if err != nil {
		t.Fatal(err)
	}
	markAll(ops, 1)

	feed(t, ops, rng, 150)
	b2, err := BuildDeltaBlob("n1", 2, 1, ops, []byte("rt2"))
	if err != nil {
		t.Fatal(err)
	}
	markAll(ops, 2)

	feed(t, ops, rng, 170)
	b3, err := BuildDeltaBlob("n1", 3, 2, ops, []byte("rt3"))
	if err != nil {
		t.Fatal(err)
	}
	if !b2.IsDelta() || !b3.IsDelta() {
		t.Fatalf("chain links did not travel as deltas (b2.Base=%d, b3.Base=%d)", b2.Base, b3.Base)
	}
	if b2.Size >= b2.FullSize || b3.Size >= b3.FullSize {
		t.Fatalf("delta blobs not smaller than full state: %d/%d, %d/%d",
			b2.Size, b2.FullSize, b3.Size, b3.FullSize)
	}

	full, err := BuildBlob("n1", 3, ops, []byte("rt3"))
	if err != nil {
		t.Fatal(err)
	}
	mat, err := MaterializeChain([]*Blob{b1, b2, b3})
	if err != nil {
		t.Fatal(err)
	}
	if mat.Version != 3 || mat.IsDelta() {
		t.Fatalf("materialised blob: version %d, delta=%v", mat.Version, mat.IsDelta())
	}

	fromFull := chainOps()
	if err := RestoreBlob(full, fromFull); err != nil {
		t.Fatal(err)
	}
	fromChain := chainOps()
	if err := RestoreBlob(mat, fromChain); err != nil {
		t.Fatal(err)
	}
	for i := range fromFull {
		a, err := fromFull[i].Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		b, err := fromChain[i].Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("operator %s: chain restore differs from full restore (%d vs %d bytes)",
				fromFull[i].ID(), len(a), len(b))
		}
	}
	if !bytes.Equal(mat.EncodeState(), full.EncodeState()) {
		t.Fatal("materialised state bytes differ from the full blob's")
	}
}

func TestMaterializeChainRejectsTorn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := chainOps()
	feed(t, ops, rng, 50)
	b1, _ := BuildBlob("n1", 1, ops, nil)
	markAll(ops, 1)
	feed(t, ops, rng, 50)
	b2, _ := BuildDeltaBlob("n1", 2, 1, ops, nil)
	if !b2.IsDelta() {
		t.Fatal("setup: b2 is not a delta")
	}

	if _, err := MaterializeChain(nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := MaterializeChain([]*Blob{b2}); err == nil {
		t.Fatal("chain starting at a delta accepted (base missing)")
	}
	// Non-contiguous base pointer.
	wrong := *b2
	wrong.Base = 9
	if _, err := MaterializeChain([]*Blob{b1, &wrong}); err == nil {
		t.Fatal("non-contiguous chain accepted")
	}
	// A torn upload: payload bytes no longer match the sealed CRC.
	torn := *b2
	torn.Ops = make(map[string][]byte, len(b2.Ops))
	for id, data := range b2.Ops {
		torn.Ops[id] = append([]byte(nil), data...)
	}
	for id := range torn.Ops {
		if len(torn.Ops[id]) > 0 {
			torn.Ops[id][0] ^= 0xff
			break
		}
	}
	if _, err := MaterializeChain([]*Blob{b1, &torn}); err == nil {
		t.Fatal("CRC-violating link accepted")
	}
}

func TestChunkCRCBindsBlobAndIndex(t *testing.T) {
	if ChunkCRC(1, 0) == ChunkCRC(1, 1) {
		t.Fatal("chunk CRC ignores the index")
	}
	if ChunkCRC(1, 0) == ChunkCRC(2, 0) {
		t.Fatal("chunk CRC ignores the blob")
	}
	if ChunkCRC(1, 3) != ChunkCRC(1, 3) {
		t.Fatal("chunk CRC not deterministic")
	}
}

// TestAlignmentConcurrentTokensAndAbort hammers one tracker with parallel
// token arrivals, concurrent telemetry reads and mid-alignment aborts —
// the shape recovery creates when it aborts a checkpoint racing the
// executor's token flow. Run under -race in CI. Invariant: a round never
// completes more than once, and an abort always leaves the tracker idle.
func TestAlignmentConcurrentTokensAndAbort(t *testing.T) {
	ups := []string{"u0", "u1", "u2", "u3"}
	a := NewAlignment(ups)
	for round := 1; round <= 300; round++ {
		version := uint64(round)
		var wg sync.WaitGroup
		var completes int32
		for _, u := range ups {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				st, err := a.OnToken(u, version)
				if err == nil && st.Complete {
					atomic.AddInt32(&completes, 1)
				}
			}(u)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.Stalled()
			a.Aligning()
			if round%3 == 0 {
				a.Abort()
			}
		}()
		wg.Wait()
		if c := atomic.LoadInt32(&completes); c > 1 {
			t.Fatalf("round %d completed %d times", round, c)
		}
		a.Abort()
		if a.Aligning() != 0 || a.Stalled() != nil {
			t.Fatalf("round %d: abort left tracker aligning", round)
		}
	}
}
