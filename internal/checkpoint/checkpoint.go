// Package checkpoint implements the token-triggered checkpointing protocol
// of §III-B: the alignment state machine each node runs, and the state blob
// a node produces when it checkpoints.
//
// The alignment rule (Fig. 5): a node checkpoints when it has received the
// token of the current version from every upstream neighbour. A channel
// whose token has arrived is stalled — the node stops consuming its tuples —
// so no tuple that follows the token can corrupt the pre-token state; the
// other channels keep flowing. With these cut semantics no tuple is saved
// twice or missed across the region snapshot.
package checkpoint

import (
	"fmt"
	"sort"

	"mobistreams/internal/operator"
)

// Blob is one node's checkpoint: the serialised state of every operator on
// the node plus runtime bookkeeping (edge sequence counters). Size is the
// modelled on-the-wire size used for network and storage accounting.
type Blob struct {
	Slot    string
	Version uint64
	Ops     map[string][]byte
	Runtime []byte
	Size    int
}

// BuildBlob snapshots the given operators into a blob. extra is opaque
// runtime state (edge counters); modelSize adds the modelled state bytes of
// operators whose in-memory snapshot under-represents their real footprint.
func BuildBlob(slot string, version uint64, ops []operator.Operator, extra []byte) (*Blob, error) {
	b := &Blob{Slot: slot, Version: version, Ops: make(map[string][]byte, len(ops)), Runtime: extra}
	size := len(extra)
	for _, op := range ops {
		data, err := op.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: snapshot %s: %w", op.ID(), err)
		}
		b.Ops[op.ID()] = data
		s := op.StateSize()
		if len(data) > s {
			s = len(data)
		}
		size += s
	}
	b.Size = size
	return b, nil
}

// RestoreBlob loads a blob into freshly instantiated operators. Operators
// present in the blob but not in ops (or vice versa) indicate a wiring bug
// and return an error.
func RestoreBlob(b *Blob, ops []operator.Operator) error {
	if len(ops) != len(b.Ops) {
		return fmt.Errorf("checkpoint: blob has %d operators, node has %d", len(b.Ops), len(ops))
	}
	for _, op := range ops {
		data, ok := b.Ops[op.ID()]
		if !ok {
			return fmt.Errorf("checkpoint: blob missing operator %s", op.ID())
		}
		if err := op.Restore(data); err != nil {
			return fmt.Errorf("checkpoint: restore %s: %w", op.ID(), err)
		}
	}
	return nil
}

// Alignment tracks token arrival for one node across checkpoint versions.
// It is not safe for concurrent use; the node's executor owns it.
type Alignment struct {
	upstreams []string
	version   uint64 // version currently aligning; 0 = idle
	seen      map[string]bool
}

// NewAlignment creates an alignment tracker over the node's upstream
// neighbours (slot-level, per graph.SlotUpstreams). Source nodes pass the
// single virtual upstream "controller".
func NewAlignment(upstreams []string) *Alignment {
	a := &Alignment{upstreams: append([]string(nil), upstreams...), seen: make(map[string]bool)}
	sort.Strings(a.upstreams)
	return a
}

// Status describes the effect of a token arrival.
type Status struct {
	// Complete is true when tokens have arrived from every upstream:
	// the node must checkpoint now and then forward its token.
	Complete bool
	// Stalled lists upstreams whose channels must not be consumed until
	// the alignment completes.
	Stalled []string
}

// OnToken records a token from an upstream neighbour. It returns an error
// for protocol violations: unknown upstream, duplicate token, or a version
// mismatch with an alignment in progress (checkpoint periods are far longer
// than alignment, so overlapping versions indicate a bug or a lost abort).
func (a *Alignment) OnToken(from string, version uint64) (Status, error) {
	if !a.knows(from) {
		return Status{}, fmt.Errorf("checkpoint: token from unknown upstream %q", from)
	}
	if a.version == 0 {
		a.version = version
	} else if a.version != version {
		return Status{}, fmt.Errorf("checkpoint: token v%d while aligning v%d", version, a.version)
	}
	if a.seen[from] {
		return Status{}, fmt.Errorf("checkpoint: duplicate token from %q for v%d", from, version)
	}
	a.seen[from] = true
	if len(a.seen) == len(a.upstreams) {
		a.reset()
		return Status{Complete: true}, nil
	}
	return Status{Stalled: a.stalled()}, nil
}

// Stalled reports the upstreams currently stalled by a pending alignment.
func (a *Alignment) Stalled() []string {
	if a.version == 0 {
		return nil
	}
	return a.stalled()
}

// Aligning reports the version being aligned, or 0 when idle.
func (a *Alignment) Aligning() uint64 { return a.version }

// Abort cancels an in-progress alignment (failure during checkpoint: the
// partial checkpoint is discarded, §III-D).
func (a *Alignment) Abort() { a.reset() }

func (a *Alignment) reset() {
	a.version = 0
	a.seen = make(map[string]bool)
}

func (a *Alignment) stalled() []string {
	var s []string
	for _, u := range a.upstreams {
		if a.seen[u] {
			s = append(s, u)
		}
	}
	return s
}

func (a *Alignment) knows(id string) bool {
	for _, u := range a.upstreams {
		if u == id {
			return true
		}
	}
	return false
}
