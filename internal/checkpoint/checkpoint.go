// Package checkpoint implements the token-triggered checkpointing protocol
// of §III-B: the alignment state machine each node runs, and the state blob
// a node produces when it checkpoints.
//
// The alignment rule (Fig. 5): a node checkpoints when it has received the
// token of the current version from every upstream neighbour. A channel
// whose token has arrived is stalled — the node stops consuming its tuples —
// so no tuple that follows the token can corrupt the pre-token state; the
// other channels keep flowing. With these cut semantics no tuple is saved
// twice or missed across the region snapshot.
//
// Beyond the paper, blobs form versioned chains: a full base blob followed
// by delta blobs whose operator entries are EncodePatch patches against the
// previous link (operators opt in through operator.DeltaSnapshotter).
// Restore materialises the chain back into a full blob; a CRC per blob (and
// per transport chunk, ChunkCRC) lets recovery discard torn uploads and
// pick the latest complete chain.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"mobistreams/internal/operator"
)

// Blob is one node's checkpoint: the serialised state of every operator on
// the node plus runtime bookkeeping (edge sequence counters). Size is the
// modelled on-the-wire size used for network and storage accounting.
type Blob struct {
	Slot    string
	Version uint64
	// Base is the checkpoint version whose state this blob's delta entries
	// patch; 0 means the blob is a self-contained full snapshot.
	Base uint64
	Ops  map[string][]byte
	// DeltaOps marks which Ops entries are EncodePatch patches against the
	// Base blob's bytes rather than full serialised snapshots.
	DeltaOps map[string]bool
	Runtime  []byte
	Size     int
	// FullSize is the modelled size of the full state at this version —
	// what a restore reads from flash even when the blob itself travelled
	// as a small delta.
	FullSize int
	// CRC is the IEEE CRC-32 of the blob's encoded state. Chunked
	// transports derive per-chunk checksums from it (ChunkCRC); restores
	// verify it so a torn or corrupted upload is discarded rather than
	// replayed into an operator.
	CRC uint32
}

// IsDelta reports whether the blob needs a base chain to restore.
func (b *Blob) IsDelta() bool { return b.Base != 0 }

// EncodeState renders the blob's state deterministically (operator entries
// in sorted ID order, then runtime bytes) — the byte stream CRCs cover.
func (b *Blob) EncodeState() []byte {
	ids := make([]string, 0, len(b.Ops))
	total := len(b.Runtime)
	for id, data := range b.Ops {
		ids = append(ids, id)
		total += 8 + len(id) + len(data)
	}
	sort.Strings(ids)
	out := make([]byte, 0, total)
	var tmp [4]byte
	for _, id := range ids {
		binary.BigEndian.PutUint32(tmp[:], uint32(len(id)))
		out = append(out, tmp[:]...)
		out = append(out, id...)
		binary.BigEndian.PutUint32(tmp[:], uint32(len(b.Ops[id])))
		out = append(out, tmp[:]...)
		out = append(out, b.Ops[id]...)
	}
	return append(out, b.Runtime...)
}

// Seal records the blob's state CRC; builders call it automatically.
func (b *Blob) Seal() { b.CRC = crc32.ChecksumIEEE(b.EncodeState()) }

// VerifyCRC re-checks the sealed CRC against the blob's current state.
func (b *Blob) VerifyCRC() bool {
	return b.CRC == crc32.ChecksumIEEE(b.EncodeState())
}

// ChunkCRC derives the checksum a chunked transport attaches to chunk
// `index` of a blob: receivers recompute it from the blob identity they
// assembled, so a chunk spliced from a different blob or stream position is
// rejected and retransmitted instead of completing a torn upload.
func ChunkCRC(blobCRC uint32, index int) uint32 {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:4], blobCRC)
	binary.BigEndian.PutUint32(buf[4:8], uint32(index))
	return crc32.ChecksumIEEE(buf[:])
}

// BuildBlob snapshots the given operators into a blob. extra is opaque
// runtime state (edge counters); modelSize adds the modelled state bytes of
// operators whose in-memory snapshot under-represents their real footprint.
func BuildBlob(slot string, version uint64, ops []operator.Operator, extra []byte) (*Blob, error) {
	b := &Blob{Slot: slot, Version: version, Ops: make(map[string][]byte, len(ops)), Runtime: extra}
	size := len(extra)
	for _, op := range ops {
		data, err := op.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: snapshot %s: %w", op.ID(), err)
		}
		b.Ops[op.ID()] = data
		s := op.StateSize()
		if len(data) > s {
			s = len(data)
		}
		size += s
	}
	b.Size = size
	b.FullSize = size
	b.Seal()
	return b, nil
}

// BuildDeltaBlob snapshots the operators incrementally against the chain
// link at version base: operators implementing DeltaSnapshotter with a
// baseline for base contribute an EncodePatch patch; the rest fall back to
// full snapshots. Size counts only the bytes that actually travel — patch
// bytes plus full-entry bytes plus runtime — which is incremental
// checkpointing's entire saving; FullSize still records the modelled full
// state for restore-time flash accounting. If no operator produced a delta
// the blob degenerates to a self-contained full snapshot (Base 0).
func BuildDeltaBlob(slot string, version, base uint64, ops []operator.Operator, extra []byte) (*Blob, error) {
	b := &Blob{
		Slot: slot, Version: version, Base: base,
		Ops:      make(map[string][]byte, len(ops)),
		DeltaOps: make(map[string]bool, len(ops)),
		Runtime:  extra,
	}
	size, fullSize, deltas := len(extra), len(extra), 0
	for _, op := range ops {
		full := op.StateSize()
		var patch []byte
		ok := false
		if ds, isDS := op.(operator.DeltaSnapshotter); isDS {
			patch, ok = ds.SnapshotDelta(base)
		}
		if ok {
			b.Ops[op.ID()] = patch
			b.DeltaOps[op.ID()] = true
			size += len(patch)
			deltas++
		} else {
			data, err := op.Snapshot()
			if err != nil {
				return nil, fmt.Errorf("checkpoint: snapshot %s: %w", op.ID(), err)
			}
			b.Ops[op.ID()] = data
			if len(data) > full {
				full = len(data)
			}
			size += full
		}
		fullSize += full
	}
	b.Size = size
	b.FullSize = fullSize
	if deltas == 0 {
		b.Base = 0
		b.DeltaOps = nil
	}
	b.Seal()
	return b, nil
}

// MaterializeChain replays a base-first chain of blobs into one full blob
// at the last link's version. It validates the chain shape (full base,
// contiguous Base pointers) and every link's CRC; any violation is a torn
// chain and returns an error.
func MaterializeChain(chain []*Blob) (*Blob, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("checkpoint: empty chain")
	}
	if chain[0].IsDelta() {
		return nil, fmt.Errorf("checkpoint: chain for %s starts at delta v%d (base v%d missing)",
			chain[0].Slot, chain[0].Version, chain[0].Base)
	}
	for i, b := range chain {
		if !b.VerifyCRC() {
			return nil, fmt.Errorf("checkpoint: %s v%d failed CRC (torn upload)", b.Slot, b.Version)
		}
		if i > 0 && b.Base != chain[i-1].Version {
			return nil, fmt.Errorf("checkpoint: %s v%d chains to v%d, not predecessor v%d",
				b.Slot, b.Version, b.Base, chain[i-1].Version)
		}
	}
	state := make(map[string][]byte, len(chain[0].Ops))
	for id, data := range chain[0].Ops {
		state[id] = data
	}
	for _, b := range chain[1:] {
		if len(b.Ops) != len(state) {
			return nil, fmt.Errorf("checkpoint: %s v%d has %d operators, chain has %d",
				b.Slot, b.Version, len(b.Ops), len(state))
		}
		for id, data := range b.Ops {
			if !b.DeltaOps[id] {
				state[id] = data
				continue
			}
			old, ok := state[id]
			if !ok {
				return nil, fmt.Errorf("checkpoint: %s v%d patches unknown operator %s", b.Slot, b.Version, id)
			}
			patched, err := operator.ApplyPatch(old, data)
			if err != nil {
				return nil, fmt.Errorf("checkpoint: %s v%d operator %s: %w", b.Slot, b.Version, id, err)
			}
			state[id] = patched
		}
	}
	last := chain[len(chain)-1]
	out := &Blob{
		Slot: last.Slot, Version: last.Version,
		Ops: state, Runtime: last.Runtime,
		Size: last.FullSize, FullSize: last.FullSize,
	}
	out.Seal()
	return out, nil
}

// RestoreBlob loads a blob into freshly instantiated operators. Operators
// present in the blob but not in ops (or vice versa) indicate a wiring bug
// and return an error.
func RestoreBlob(b *Blob, ops []operator.Operator) error {
	if b.IsDelta() {
		return fmt.Errorf("checkpoint: cannot restore delta blob %s v%d directly; materialise its chain first", b.Slot, b.Version)
	}
	if len(ops) != len(b.Ops) {
		return fmt.Errorf("checkpoint: blob has %d operators, node has %d", len(b.Ops), len(ops))
	}
	for _, op := range ops {
		data, ok := b.Ops[op.ID()]
		if !ok {
			return fmt.Errorf("checkpoint: blob missing operator %s", op.ID())
		}
		if err := op.Restore(data); err != nil {
			return fmt.Errorf("checkpoint: restore %s: %w", op.ID(), err)
		}
	}
	return nil
}

// Alignment tracks token arrival for one node across checkpoint versions.
// It is safe for concurrent use: the node's executor owns the token flow,
// but recovery paths running off other goroutines Abort mid-alignment, and
// telemetry reads Aligning/Stalled concurrently.
type Alignment struct {
	mu        sync.Mutex
	upstreams []string
	version   uint64 // version currently aligning; 0 = idle
	seen      map[string]bool
}

// NewAlignment creates an alignment tracker over the node's upstream
// neighbours (slot-level, per graph.SlotUpstreams). Source nodes pass the
// single virtual upstream "controller".
func NewAlignment(upstreams []string) *Alignment {
	a := &Alignment{upstreams: append([]string(nil), upstreams...), seen: make(map[string]bool)}
	sort.Strings(a.upstreams)
	return a
}

// Status describes the effect of a token arrival.
type Status struct {
	// Complete is true when tokens have arrived from every upstream:
	// the node must checkpoint now and then forward its token.
	Complete bool
	// Stalled lists upstreams whose channels must not be consumed until
	// the alignment completes.
	Stalled []string
}

// OnToken records a token from an upstream neighbour. It returns an error
// for protocol violations: unknown upstream, duplicate token, or a version
// mismatch with an alignment in progress (checkpoint periods are far longer
// than alignment, so overlapping versions indicate a bug or a lost abort).
func (a *Alignment) OnToken(from string, version uint64) (Status, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.knows(from) {
		return Status{}, fmt.Errorf("checkpoint: token from unknown upstream %q", from)
	}
	if a.version == 0 {
		a.version = version
	} else if a.version != version {
		return Status{}, fmt.Errorf("checkpoint: token v%d while aligning v%d", version, a.version)
	}
	if a.seen[from] {
		return Status{}, fmt.Errorf("checkpoint: duplicate token from %q for v%d", from, version)
	}
	a.seen[from] = true
	if len(a.seen) == len(a.upstreams) {
		a.reset()
		return Status{Complete: true}, nil
	}
	return Status{Stalled: a.stalled()}, nil
}

// Stalled reports the upstreams currently stalled by a pending alignment.
func (a *Alignment) Stalled() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.version == 0 {
		return nil
	}
	return a.stalled()
}

// Aligning reports the version being aligned, or 0 when idle.
func (a *Alignment) Aligning() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.version
}

// Abort cancels an in-progress alignment (failure during checkpoint: the
// partial checkpoint is discarded, §III-D).
func (a *Alignment) Abort() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reset()
}

func (a *Alignment) reset() {
	a.version = 0
	a.seen = make(map[string]bool)
}

func (a *Alignment) stalled() []string {
	var s []string
	for _, u := range a.upstreams {
		if a.seen[u] {
			s = append(s, u)
		}
	}
	return s
}

func (a *Alignment) knows(id string) bool {
	for _, u := range a.upstreams {
		if u == id {
			return true
		}
	}
	return false
}
