package checkpoint

import (
	"reflect"
	"testing"
	"testing/quick"

	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
)

func TestAlignmentSingleUpstream(t *testing.T) {
	a := NewAlignment([]string{"up"})
	st, err := a.OnToken("up", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete {
		t.Fatal("single upstream should complete immediately")
	}
	if a.Aligning() != 0 {
		t.Fatal("tracker should reset after completion")
	}
}

func TestAlignmentTwoUpstreamsStalls(t *testing.T) {
	a := NewAlignment([]string{"c", "d"})
	st, err := a.OnToken("c", 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Complete {
		t.Fatal("should not complete with one of two tokens")
	}
	if !reflect.DeepEqual(st.Stalled, []string{"c"}) {
		t.Fatalf("stalled = %v, want [c]", st.Stalled)
	}
	if a.Aligning() != 3 {
		t.Fatalf("aligning = %d", a.Aligning())
	}
	st, err = a.OnToken("d", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete {
		t.Fatal("both tokens in, should complete")
	}
	if a.Stalled() != nil {
		t.Fatal("stall must clear after completion")
	}
}

func TestAlignmentErrors(t *testing.T) {
	a := NewAlignment([]string{"x", "y"})
	if _, err := a.OnToken("zz", 1); err == nil {
		t.Fatal("unknown upstream accepted")
	}
	if _, err := a.OnToken("x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OnToken("x", 1); err == nil {
		t.Fatal("duplicate token accepted")
	}
	if _, err := a.OnToken("y", 2); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestAlignmentAbort(t *testing.T) {
	a := NewAlignment([]string{"x", "y"})
	a.OnToken("x", 1)
	a.Abort()
	if a.Aligning() != 0 || a.Stalled() != nil {
		t.Fatal("abort did not reset")
	}
	// A fresh version can start after abort.
	if _, err := a.OnToken("x", 2); err != nil {
		t.Fatal(err)
	}
}

func TestBlobRoundTrip(t *testing.T) {
	m := operator.NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in })
	f := operator.NewFilter("f", func(*tuple.Tuple) bool { return true })
	for i := 0; i < 3; i++ {
		operator.Run(m, "", &tuple.Tuple{Seq: uint64(i)})
		operator.Run(f, "", &tuple.Tuple{Seq: uint64(i)})
	}
	blob, err := BuildBlob("n1", 7, []operator.Operator{m, f}, []byte("rt"))
	if err != nil {
		t.Fatal(err)
	}
	if blob.Version != 7 || blob.Slot != "n1" {
		t.Fatalf("blob meta: %+v", blob)
	}
	if blob.Size < 8+16+2 {
		t.Fatalf("blob size = %d, too small", blob.Size)
	}
	m2 := operator.NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in })
	f2 := operator.NewFilter("f", func(*tuple.Tuple) bool { return true })
	if err := RestoreBlob(blob, []operator.Operator{m2, f2}); err != nil {
		t.Fatal(err)
	}
	if m2.Count() != 3 {
		t.Fatalf("restored count = %d", m2.Count())
	}
}

func TestBlobSizeUsesModelledState(t *testing.T) {
	m := operator.NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in })
	m.SizeFn = func() int { return 4096 }
	blob, err := BuildBlob("n1", 1, []operator.Operator{m}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if blob.Size != 4096 {
		t.Fatalf("size = %d, want modelled 4096", blob.Size)
	}
}

func TestRestoreBlobMismatch(t *testing.T) {
	m := operator.NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in })
	blob, _ := BuildBlob("n1", 1, []operator.Operator{m}, nil)
	other := operator.NewPassthrough("other")
	if err := RestoreBlob(blob, []operator.Operator{other}); err == nil {
		t.Fatal("mismatched operator set accepted")
	}
	if err := RestoreBlob(blob, nil); err == nil {
		t.Fatal("empty operator set accepted")
	}
}

// Property: for any set of upstreams and any arrival permutation, alignment
// completes exactly on the last token and stalls exactly the arrived set
// before that.
func TestAlignmentPermutationProperty(t *testing.T) {
	f := func(permSeed uint32, n uint8) bool {
		k := int(n%6) + 1
		ups := make([]string, k)
		for i := range ups {
			ups[i] = string(rune('a' + i))
		}
		a := NewAlignment(ups)
		// Fisher-Yates with the seed as a tiny LCG.
		perm := make([]int, k)
		for i := range perm {
			perm[i] = i
		}
		s := permSeed
		for i := k - 1; i > 0; i-- {
			s = s*1664525 + 1013904223
			j := int(s) % (i + 1)
			if j < 0 {
				j = -j
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
		for idx, pi := range perm {
			st, err := a.OnToken(ups[pi], 9)
			if err != nil {
				return false
			}
			last := idx == k-1
			if st.Complete != last {
				return false
			}
			if !last && len(st.Stalled) != idx+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
