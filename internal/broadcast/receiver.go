package broadcast

import (
	"sync"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/storage"
)

// Receiver assembles checkpoint blocks arriving at one phone, answers
// bitmap queries, and stores completed blobs into the phone's local store.
type Receiver struct {
	store *storage.Store

	mu  sync.Mutex
	asm map[asmKey]*assembler
}

type asmKey struct {
	slot    string
	version uint64
}

type assembler struct {
	blob  *checkpoint.Blob
	got   []bool
	count int
	done  bool
}

// NewReceiver creates a receiver backed by the given store.
func NewReceiver(store *storage.Store) *Receiver {
	return &Receiver{store: store, asm: make(map[asmKey]*assembler)}
}

func (r *Receiver) assemblerFor(slot string, version uint64, total int, blob *checkpoint.Blob) *assembler {
	k := asmKey{slot, version}
	a, ok := r.asm[k]
	if !ok {
		a = &assembler{blob: blob, got: make([]bool, total)}
		r.asm[k] = a
	}
	if a.blob == nil {
		a.blob = blob
	}
	return a
}

// OnBlock records one UDP block; it returns true when the blob just became
// complete (at which point it has been persisted to the store). A block
// whose chunk CRC does not verify is not recorded: the next bitmap query
// reports it missing and the sender retransmits it.
func (r *Receiver) OnBlock(msg BlockMsg) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.assemblerFor(msg.Slot, msg.Version, msg.Total, msg.Blob)
	if msg.Index < 0 || msg.Index >= len(a.got) || a.got[msg.Index] {
		return false
	}
	if !chunkOK(a.blob, msg.Index, msg.CRC) {
		return false
	}
	a.got[msg.Index] = true
	a.count++
	return r.maybeComplete(a)
}

// OnFill records a TCP fill of multiple blocks; it returns true when the
// blob just became complete. Chunks failing CRC verification are skipped.
func (r *Receiver) OnFill(msg FillMsg) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.assemblerFor(msg.Slot, msg.Version, msg.Total, msg.Blob)
	for k, i := range msg.Indices {
		if i < 0 || i >= len(a.got) || a.got[i] {
			continue
		}
		if k < len(msg.CRCs) && !chunkOK(a.blob, i, msg.CRCs[k]) {
			continue
		}
		a.got[i] = true
		a.count++
	}
	return r.maybeComplete(a)
}

// chunkOK verifies a chunk checksum against the blob identity this
// assembly committed to on its first chunk — not the chunk's own claimed
// blob, which would make the check a tautology. A chunk spliced from a
// different blob under the same (slot, version) key therefore fails and
// is left for retransmission. A zero CRC means the sender attached none
// (legacy/test senders) and passes.
func chunkOK(blob *checkpoint.Blob, index int, crc uint32) bool {
	if crc == 0 || blob == nil {
		return true
	}
	return crc == checkpoint.ChunkCRC(blob.CRC, index)
}

func (r *Receiver) maybeComplete(a *assembler) bool {
	if a.done || a.count != len(a.got) || a.blob == nil {
		return false
	}
	// A sealed blob that no longer matches its CRC is a torn upload:
	// discard the assembly rather than hand corrupted state to recovery.
	// (The next dissemination or a TCP fill rebuilds it from scratch.)
	if a.blob.CRC != 0 && !a.blob.VerifyCRC() {
		a.got = make([]bool, len(a.got))
		a.count = 0
		a.blob = nil
		return false
	}
	a.done = true
	r.store.PutBlob(a.blob)
	return true
}

// Bitmap answers a query: one bool per block. The wire size of the answer
// is BitmapWireBytes(total).
func (r *Receiver) Bitmap(q QueryMsg) []bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.assemblerFor(q.Slot, q.Version, q.Total, nil)
	return append([]bool(nil), a.got...)
}

// ReceivedBlocks reports how many blocks of a stream have arrived.
func (r *Receiver) ReceivedBlocks(slot string, version uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.asm[asmKey{slot, version}]
	if !ok {
		return 0
	}
	return a.count
}

// Complete reports whether the blob for (slot, version) is fully assembled.
func (r *Receiver) Complete(slot string, version uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.asm[asmKey{slot, version}]
	return ok && a.done
}

// DropBefore discards partial assemblies older than version — a failure
// during a checkpoint abandons the partial data (§III-D).
func (r *Receiver) DropBefore(version uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.asm {
		if k.version < version {
			delete(r.asm, k)
		}
	}
}
