package broadcast

import (
	"testing"
	"time"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/clock"
	"mobistreams/internal/simnet"
	"mobistreams/internal/storage"
)

// scriptMedium delivers blocks according to a deterministic per-phase rule,
// reproducing the loss pattern of the paper's Fig. 6 walk-through.
type scriptMedium struct {
	receivers map[simnet.NodeID]*Receiver
	phase     int
	deliver   func(phase int, to simnet.NodeID, blockIdx int) bool
	tcpSends  []string
}

func (s *scriptMedium) BroadcastBatch(from simnet.NodeID, class simnet.Class, grams []simnet.Datagram) []int {
	s.phase++
	counts := make([]int, len(grams))
	for gi, g := range grams {
		bm := g.Payload.(BlockMsg)
		for id, r := range s.receivers {
			if s.deliver(s.phase, id, bm.Index) {
				r.OnBlock(bm)
				counts[gi]++
			}
		}
	}
	return counts
}

func (s *scriptMedium) Request(from, to simnet.NodeID, class simnet.Class, size int, payload interface{}) (chan simnet.Message, error) {
	q := payload.(QueryMsg)
	bm := s.receivers[to].Bitmap(q)
	ch := make(chan simnet.Message, 1)
	ch <- simnet.Message{From: to, To: from, Class: class, Size: BitmapWireBytes(q.Total), Payload: bm}
	return ch, nil
}

func (s *scriptMedium) Unicast(from, to simnet.NodeID, class simnet.Class, size int, payload interface{}) error {
	s.tcpSends = append(s.tcpSends, string(from)+"->"+string(to))
	if r, ok := s.receivers[to]; ok {
		r.OnFill(payload.(FillMsg))
	}
	return nil
}

// TestPaperWalkthrough reproduces Fig. 6 exactly: an 8 MB checkpoint (8192
// 1 KB blocks) to receivers A, B, C. Phase 1: A gets the first 3 messages,
// B all even messages, C all odd messages -> gain 8195 KB = cost 8195 KB,
// continue. Phase 2: A and B complete, C unchanged -> gain 12285 KB > cost
// 8195 KB, continue. Phase 3 (resend evens): C gets all but M2 -> gain
// 4095 KB < cost 4099 KB, stop UDP; TCP tree delivers M2.
func TestPaperWalkthrough(t *testing.T) {
	const totalBlocks = 8192
	blob := &checkpoint.Blob{Slot: "sender", Version: 1, Size: totalBlocks * 1024, Ops: map[string][]byte{}}
	stores := map[simnet.NodeID]*storage.Store{"A": storage.New(), "B": storage.New(), "C": storage.New()}
	med := &scriptMedium{receivers: map[simnet.NodeID]*Receiver{
		"A": NewReceiver(stores["A"]),
		"B": NewReceiver(stores["B"]),
		"C": NewReceiver(stores["C"]),
	}}
	// Message M(k) in the paper is block index k-1.
	med.deliver = func(phase int, to simnet.NodeID, b int) bool {
		switch phase {
		case 1:
			switch to {
			case "A":
				return b < 3
			case "B":
				return b%2 == 1 // M2, M4, ... (even messages)
			default:
				return b%2 == 0 // M1, M3, ... (odd messages)
			}
		case 2:
			return to == "A" || to == "B"
		default:
			return to != "C" || b != 1 // C misses M2 only
		}
	}

	st := Disseminate(med, clock.NewManual(), "sender", []simnet.NodeID{"A", "B", "C"}, blob, Config{BlockSize: 1024})

	if st.UDPPhases != 3 {
		t.Fatalf("UDP phases = %d, want 3", st.UDPPhases)
	}
	wantUDP := int64((8192 + 8192 + 4096) * 1024)
	if st.UDPBytes != wantUDP {
		t.Fatalf("UDP bytes = %d, want %d", st.UDPBytes, wantUDP)
	}
	// 3 receivers x 3 phases x 1 KB bitmaps.
	if st.BitmapBytes != 9*1024 {
		t.Fatalf("bitmap bytes = %d, want %d", st.BitmapBytes, 9*1024)
	}
	// M2 travels sender->A (root, subtree needs it) and A->C.
	if st.TCPBytes != 2*1024 {
		t.Fatalf("TCP bytes = %d, want 2048", st.TCPBytes)
	}
	if len(st.Complete) != 3 || len(st.Unreachable) != 0 {
		t.Fatalf("complete=%v unreachable=%v", st.Complete, st.Unreachable)
	}
	for id, r := range med.receivers {
		if !r.Complete("sender", 1) {
			t.Fatalf("receiver %s incomplete", id)
		}
		if _, ok := stores[id].Blob(1, "sender"); !ok {
			t.Fatalf("receiver %s did not persist blob", id)
		}
	}
}

func TestDisseminateNoLossSinglePhase(t *testing.T) {
	blob := &checkpoint.Blob{Slot: "s", Version: 2, Size: 10 * 1024, Ops: map[string][]byte{}}
	stores := map[simnet.NodeID]*storage.Store{"A": storage.New(), "B": storage.New()}
	med := &scriptMedium{receivers: map[simnet.NodeID]*Receiver{
		"A": NewReceiver(stores["A"]), "B": NewReceiver(stores["B"]),
	}}
	med.deliver = func(int, simnet.NodeID, int) bool { return true }
	st := Disseminate(med, clock.NewManual(), "s", []simnet.NodeID{"A", "B"}, blob, Config{BlockSize: 1024})
	if st.UDPPhases != 1 {
		t.Fatalf("phases = %d, want 1", st.UDPPhases)
	}
	if st.TCPBytes != 0 {
		t.Fatalf("TCP bytes = %d, want 0", st.TCPBytes)
	}
	if len(st.Complete) != 2 {
		t.Fatalf("complete = %v", st.Complete)
	}
}

func TestDisseminateTotalLossFallsBackToTCP(t *testing.T) {
	blob := &checkpoint.Blob{Slot: "s", Version: 3, Size: 4 * 1024, Ops: map[string][]byte{}}
	med := &scriptMedium{receivers: map[simnet.NodeID]*Receiver{
		"A": NewReceiver(storage.New()), "B": NewReceiver(storage.New()),
	}}
	med.deliver = func(int, simnet.NodeID, int) bool { return false }
	st := Disseminate(med, clock.NewManual(), "s", []simnet.NodeID{"A", "B"}, blob, Config{BlockSize: 1024})
	// Phase 1: gain 0 < cost -> straight to TCP, which must complete both.
	if st.UDPPhases != 1 {
		t.Fatalf("phases = %d, want 1", st.UDPPhases)
	}
	if len(st.Complete) != 2 {
		t.Fatalf("complete = %v", st.Complete)
	}
	// Tree: sender->A carries all 4 blocks (A+B need them), A->B all 4.
	if st.TCPBytes != 8*1024 {
		t.Fatalf("TCP bytes = %d, want 8192", st.TCPBytes)
	}
}

func TestDisseminateNoPeers(t *testing.T) {
	blob := &checkpoint.Blob{Slot: "s", Version: 1, Size: 1024, Ops: map[string][]byte{}}
	med := &scriptMedium{receivers: map[simnet.NodeID]*Receiver{}}
	med.deliver = func(int, simnet.NodeID, int) bool { return true }
	st := Disseminate(med, clock.NewManual(), "s", nil, blob, Config{})
	if st.UDPPhases != 0 || st.UDPBytes != 0 {
		t.Fatalf("stats = %+v, want empty", st)
	}
}

// TestDisseminateLive runs the protocol over the real simulated WiFi with
// 30% UDP loss and receiver goroutines behaving like node runtimes.
func TestDisseminateLive(t *testing.T) {
	clk := clock.NewScaled(5000)
	w := simnet.NewWiFi(clk, simnet.WiFiConfig{BitsPerSecond: 20e6, LossProb: 0.3, Seed: 7})
	sender := simnet.NewEndpoint("s", 1<<14)
	w.Join(sender)
	peers := []simnet.NodeID{"A", "B", "C"}
	stores := make(map[simnet.NodeID]*storage.Store)
	stop := make(chan struct{})
	defer close(stop)
	for _, id := range peers {
		ep := simnet.NewEndpoint(id, 1<<14)
		w.Join(ep)
		store := storage.New()
		stores[id] = store
		recv := NewReceiver(store)
		go func(id simnet.NodeID, ep *simnet.Endpoint) {
			for {
				select {
				case m := <-ep.Inbox():
					switch p := m.Payload.(type) {
					case BlockMsg:
						recv.OnBlock(p)
					case FillMsg:
						recv.OnFill(p)
					case QueryMsg:
						bm := recv.Bitmap(p)
						w.Respond(m, id, simnet.ClassBitmap, BitmapWireBytes(p.Total), bm)
					}
				case <-stop:
					return
				}
			}
		}(id, ep)
	}

	blob := &checkpoint.Blob{Slot: "s", Version: 9, Size: 64 * 1024, Ops: map[string][]byte{}}
	st := Disseminate(w, clk, "s", peers, blob, Config{BlockSize: 1024, QueryTimeout: 60 * time.Second})
	if len(st.Complete) != 3 {
		t.Fatalf("complete = %v, unreachable = %v", st.Complete, st.Unreachable)
	}
	// TCP fills are delivered asynchronously through inboxes; poll until
	// the receiver goroutines have persisted the blob.
	deadline := time.Now().Add(2 * time.Second)
	for _, id := range peers {
		for {
			if _, ok := stores[id].Blob(9, "s"); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("peer %s missing blob", id)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if st.UDPBytes < 64*1024 {
		t.Fatalf("UDP bytes = %d, expected at least one full pass", st.UDPBytes)
	}
	// Broadcast amortisation: total network bytes should be far below
	// 3x unicast (one copy per peer).
	total := st.UDPBytes + st.TCPBytes + st.BitmapBytes
	if total >= 3*64*1024 {
		t.Fatalf("broadcast dissemination cost %d >= 3x unicast cost", total)
	}
}

func TestReceiverDuplicateAndBitmap(t *testing.T) {
	r := NewReceiver(storage.New())
	blob := &checkpoint.Blob{Slot: "n", Version: 1, Size: 3 * 1024, Ops: map[string][]byte{}}
	msg := BlockMsg{Slot: "n", Version: 1, Index: 0, Total: 3, Blob: blob}
	if r.OnBlock(msg) {
		t.Fatal("one of three blocks should not complete")
	}
	if r.OnBlock(msg) {
		t.Fatal("duplicate block should be a no-op")
	}
	if got := r.ReceivedBlocks("n", 1); got != 1 {
		t.Fatalf("received = %d, want 1", got)
	}
	bm := r.Bitmap(QueryMsg{Slot: "n", Version: 1, Total: 3})
	if !bm[0] || bm[1] || bm[2] {
		t.Fatalf("bitmap = %v", bm)
	}
	if r.OnBlock(BlockMsg{Slot: "n", Version: 1, Index: 1, Total: 3, Blob: blob}) {
		t.Fatal("two of three should not complete")
	}
	if !r.OnFill(FillMsg{Slot: "n", Version: 1, Total: 3, Indices: []int{2}, Blob: blob}) {
		t.Fatal("final fill should complete")
	}
	if !r.Complete("n", 1) {
		t.Fatal("not marked complete")
	}
}

func TestReceiverOutOfRangeIndex(t *testing.T) {
	r := NewReceiver(storage.New())
	blob := &checkpoint.Blob{Slot: "n", Version: 1, Size: 1024, Ops: map[string][]byte{}}
	if r.OnBlock(BlockMsg{Slot: "n", Version: 1, Index: 99, Total: 1, Blob: blob}) {
		t.Fatal("out-of-range index treated as progress")
	}
	if r.OnBlock(BlockMsg{Slot: "n", Version: 1, Index: -1, Total: 1, Blob: blob}) {
		t.Fatal("negative index treated as progress")
	}
}

func TestReceiverDropBefore(t *testing.T) {
	r := NewReceiver(storage.New())
	blob := &checkpoint.Blob{Slot: "n", Version: 1, Size: 2048, Ops: map[string][]byte{}}
	r.OnBlock(BlockMsg{Slot: "n", Version: 1, Index: 0, Total: 2, Blob: blob})
	r.DropBefore(2)
	if got := r.ReceivedBlocks("n", 1); got != 0 {
		t.Fatalf("received after drop = %d", got)
	}
}

func TestNumBlocksAndBlockBytes(t *testing.T) {
	if numBlocks(0, 1024) != 1 {
		t.Fatal("empty blob should ship one descriptor block")
	}
	if numBlocks(1024, 1024) != 1 || numBlocks(1025, 1024) != 2 {
		t.Fatal("numBlocks rounding wrong")
	}
	if blockBytes(1500, 1024, 0) != 1024 || blockBytes(1500, 1024, 1) != 476 {
		t.Fatal("blockBytes wrong")
	}
	if BitmapWireBytes(8192) != 1024 || BitmapWireBytes(1) != 1 {
		t.Fatal("bitmap wire size wrong")
	}
}
