// Package broadcast implements MobiStreams' broadcast-based checkpointing
// (§III-C, Fig. 6): checkpoint state is partitioned into ~1 KB blocks and
// disseminated to every phone in the region with multi-phase UDP
// broadcasting; after each phase the sender queries every receiver for a
// reception bitmap, re-broadcasts the blocks some receiver is missing, and
// stops when the phase's cost (bytes sent plus bitmap bytes received)
// exceeds its gain (bytes newly received across all receivers). A final
// reliable TCP phase over a tree fills the remaining holes.
package broadcast

import (
	"fmt"
	"sort"
	"time"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/simnet"
)

// Config parameterises the protocol.
type Config struct {
	// BlockSize is the UDP block payload size (paper: 1 KB; large UDP
	// datagrams fragment and die on lossy media).
	BlockSize int
	// MaxUDPPhases bounds the UDP stage as a safety net; the cost/gain
	// rule normally terminates it first.
	MaxUDPPhases int
	// QueryBytes is the size of a bitmap query message.
	QueryBytes int
	// QueryTimeout bounds how long the sender waits for one bitmap
	// response before writing the peer off (simulated time).
	QueryTimeout time.Duration
}

func (c *Config) applyDefaults() {
	if c.BlockSize <= 0 {
		c.BlockSize = 1024
	}
	if c.MaxUDPPhases <= 0 {
		c.MaxUDPPhases = 16
	}
	if c.QueryBytes <= 0 {
		c.QueryBytes = 64
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
}

// Medium is the slice of the WiFi API the protocol needs; *simnet.WiFi
// implements it, and tests substitute scripted media to reproduce the
// paper's Fig. 6 walk-through exactly.
type Medium interface {
	BroadcastBatch(from simnet.NodeID, class simnet.Class, grams []simnet.Datagram) []int
	Request(from, to simnet.NodeID, class simnet.Class, size int, payload interface{}) (chan simnet.Message, error)
	Unicast(from, to simnet.NodeID, class simnet.Class, size int, payload interface{}) error
}

// Waiter lets the sender bound its bitmap-query waits; clock.Clock
// implements it.
type Waiter interface {
	After(d time.Duration) <-chan time.Duration
}

// BlockMsg is one UDP checkpoint block on the wire. Blob is an in-memory
// reference: the simulation charges the network by size, while receivers
// reconstruct availability from block arrivals.
type BlockMsg struct {
	Slot    string
	Version uint64
	Index   int
	Total   int
	Blob    *checkpoint.Blob
	// CRC is the chunk checksum (checkpoint.ChunkCRC over the blob CRC and
	// the index): a chunk spliced from a different blob or stream position
	// fails verification at the receiver and is left for retransmission.
	// Zero means the sender attached no checksum (legacy/test senders).
	CRC uint32
}

// QueryMsg asks a receiver for its reception bitmap.
type QueryMsg struct {
	Slot    string
	Version uint64
	Total   int
}

// FillMsg is a TCP-phase transfer of specific blocks along a tree edge.
type FillMsg struct {
	Slot    string
	Version uint64
	Total   int
	Indices []int
	// CRCs carries one chunk checksum per entry of Indices (empty when the
	// sender attached none).
	CRCs []uint32
	Blob *checkpoint.Blob
	// Forward lists the remaining tree edges this node's subtree must
	// relay; the live system's receivers relay on arrival, while the
	// sender-orchestrated simulation performs the sends itself and
	// leaves Forward empty.
	Forward []FillEdge
}

// FillEdge is one parent->child relay instruction.
type FillEdge struct {
	From, To simnet.NodeID
	Indices  []int
}

// Stats summarises one dissemination.
type Stats struct {
	UDPPhases   int
	UDPBytes    int64
	BitmapBytes int64
	TCPBytes    int64
	// Complete lists peers that hold the full blob when Disseminate
	// returns; Unreachable lists peers that failed or departed mid-way.
	Complete    []simnet.NodeID
	Unreachable []simnet.NodeID
}

// blockBytes returns the size of block i of a blob of the given total size.
func blockBytes(size, blockSize, i int) int {
	off := i * blockSize
	if rem := size - off; rem < blockSize {
		return rem
	}
	return blockSize
}

// numBlocks returns how many blocks a blob of the given size needs.
func numBlocks(size, blockSize int) int {
	if size <= 0 {
		return 1 // an empty state still ships one descriptor block
	}
	return (size + blockSize - 1) / blockSize
}

// Disseminate persists blob from `from` onto every peer. It blocks (in
// simulated time) until the UDP phases and the TCP fill complete.
func Disseminate(m Medium, w Waiter, from simnet.NodeID, peers []simnet.NodeID, blob *checkpoint.Blob, cfg Config) Stats {
	cfg.applyDefaults()
	var st Stats

	total := numBlocks(blob.Size, cfg.BlockSize)
	reachable := append([]simnet.NodeID(nil), peers...)
	sort.Slice(reachable, func(i, j int) bool { return reachable[i] < reachable[j] })
	if len(reachable) == 0 {
		return st
	}

	// bitmaps[peer][i] reports whether peer holds block i, per the most
	// recent query round.
	bitmaps := make(map[simnet.NodeID][]bool, len(reachable))
	for _, p := range reachable {
		bitmaps[p] = make([]bool, total)
	}
	prevReceived := int64(0)

	toSend := make([]int, total)
	for i := range toSend {
		toSend[i] = i
	}

	// grams is reused across phases; BroadcastBatch reserves airtime one
	// chunk at a time, so long block bursts interleave with concurrent
	// data-batch unicasts instead of monopolising the medium.
	grams := make([]simnet.Datagram, 0, total)

	for phase := 1; phase <= cfg.MaxUDPPhases && len(toSend) > 0 && len(reachable) > 0; phase++ {
		st.UDPPhases = phase
		grams = grams[:len(toSend)]
		sent := int64(0)
		for gi, bi := range toSend {
			sz := blockBytes(blob.Size, cfg.BlockSize, bi)
			if sz <= 0 {
				sz = 1
			}
			grams[gi] = simnet.Datagram{Size: sz, Payload: BlockMsg{Slot: blob.Slot, Version: blob.Version, Index: bi, Total: total, Blob: blob,
				CRC: checkpoint.ChunkCRC(blob.CRC, bi)}}
			sent += int64(sz)
		}
		m.BroadcastBatch(from, simnet.ClassCheckpoint, grams)
		st.UDPBytes += sent

		// Query every reachable peer for its bitmap.
		bitmapBytes := int64(0)
		var stillReachable []simnet.NodeID
		for _, p := range reachable {
			bm, n, err := queryBitmap(m, w, from, p, blob, total, cfg)
			if err != nil {
				st.Unreachable = append(st.Unreachable, p)
				continue
			}
			bitmaps[p] = bm
			bitmapBytes += int64(n)
			stillReachable = append(stillReachable, p)
		}
		reachable = stillReachable
		st.BitmapBytes += bitmapBytes
		if len(reachable) == 0 {
			break
		}

		// Cost/gain evaluation in bytes (§III-C): cost is what this
		// phase put on the network that the sender accounts for (blocks
		// sent + bitmaps received); gain is bytes newly held across
		// receivers.
		received := int64(0)
		for _, p := range reachable {
			for i, got := range bitmaps[p] {
				if got {
					received += int64(blockBytes(blob.Size, cfg.BlockSize, i))
				}
			}
		}
		gain := received - prevReceived
		cost := sent + bitmapBytes
		prevReceived = received

		toSend = missingBlocks(bitmaps, reachable, total)
		if len(toSend) == 0 || cost > gain {
			break
		}
	}

	// Final reliable phase: fill remaining holes over a TCP tree rooted
	// at the first peer (§III-C). Each edge carries the union of blocks
	// missing in the child's subtree.
	if len(reachable) > 0 {
		tcp, complete, unreachable := tcpFill(m, from, reachable, bitmaps, blob, total, cfg)
		st.TCPBytes = tcp
		st.Complete = complete
		st.Unreachable = append(st.Unreachable, unreachable...)
	}
	return st
}

func queryBitmap(m Medium, w Waiter, from, peer simnet.NodeID, blob *checkpoint.Blob, total int, cfg Config) ([]bool, int, error) {
	reply, err := m.Request(from, peer, simnet.ClassBitmap, cfg.QueryBytes, QueryMsg{Slot: blob.Slot, Version: blob.Version, Total: total})
	if err != nil {
		return nil, 0, err
	}
	select {
	case msg := <-reply:
		bm, ok := msg.Payload.([]bool)
		if !ok || len(bm) != total {
			return nil, 0, fmt.Errorf("broadcast: bad bitmap from %s", peer)
		}
		return bm, msg.Size, nil
	case <-w.After(cfg.QueryTimeout):
		return nil, 0, fmt.Errorf("broadcast: bitmap query to %s timed out", peer)
	}
}

// missingBlocks ANDs the bitmaps: a block is missing if at least one
// reachable peer lacks it.
func missingBlocks(bitmaps map[simnet.NodeID][]bool, reachable []simnet.NodeID, total int) []int {
	var missing []int
	for i := 0; i < total; i++ {
		for _, p := range reachable {
			if !bitmaps[p][i] {
				missing = append(missing, i)
				break
			}
		}
	}
	return missing
}

// BitmapWireBytes is the on-the-wire size of a bitmap for `total` blocks.
func BitmapWireBytes(total int) int { return (total + 7) / 8 }

// tcpFill organises sender+peers into a tree (sender -> root -> ...) and
// pushes each subtree's missing-block union down edge by edge. The sender
// orchestrates the relay sends; airtime is charged per hop with the actual
// relaying parent as the transmitter, which is what the medium model needs.
func tcpFill(m Medium, from simnet.NodeID, peers []simnet.NodeID, bitmaps map[simnet.NodeID][]bool, blob *checkpoint.Blob, total int, cfg Config) (tcpBytes int64, complete, unreachable []simnet.NodeID) {
	// missing per peer
	need := make(map[simnet.NodeID][]int, len(peers))
	for _, p := range peers {
		var miss []int
		for i := 0; i < total; i++ {
			if !bitmaps[p][i] {
				miss = append(miss, i)
			}
		}
		need[p] = miss
	}

	// Binary tree over peers in sorted order: peers[0] is the root,
	// children of peers[i] are peers[2i+1], peers[2i+2].
	subtreeNeed := make([]map[int]bool, len(peers))
	var gather func(i int) map[int]bool
	gather = func(i int) map[int]bool {
		u := make(map[int]bool, len(need[peers[i]]))
		for _, b := range need[peers[i]] {
			u[b] = true
		}
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < len(peers) {
				for b := range gather(c) {
					u[b] = true
				}
			}
		}
		subtreeNeed[i] = u
		return u
	}
	gather(0)

	dead := make(map[simnet.NodeID]bool)
	// BFS down the tree: edge (parent -> child) carries subtreeNeed[child].
	type edge struct {
		parent simnet.NodeID
		child  int
	}
	queue := []edge{{from, 0}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		child := peers[e.child]
		union := subtreeNeed[e.child]
		if dead[e.parent] {
			// Relay chain broken: the subtree is unreachable this round;
			// children inherit the broken parent.
			dead[child] = true
		} else if len(union) > 0 {
			indices := make([]int, 0, len(union))
			bytes := 0
			for b := range union {
				indices = append(indices, b)
				bytes += blockBytes(blob.Size, cfg.BlockSize, b)
			}
			sort.Ints(indices)
			crcs := make([]uint32, len(indices))
			for k, b := range indices {
				crcs[k] = checkpoint.ChunkCRC(blob.CRC, b)
			}
			err := m.Unicast(e.parent, child, simnet.ClassCheckpoint, bytes,
				FillMsg{Slot: blob.Slot, Version: blob.Version, Total: total, Indices: indices, CRCs: crcs, Blob: blob})
			if err != nil {
				dead[child] = true
			} else {
				tcpBytes += int64(bytes)
			}
		}
		for _, c := range []int{2*e.child + 1, 2*e.child + 2} {
			if c < len(peers) {
				queue = append(queue, edge{child, c})
			}
		}
	}
	for _, p := range peers {
		if dead[p] {
			unreachable = append(unreachable, p)
		} else {
			complete = append(complete, p)
		}
	}
	return tcpBytes, complete, unreachable
}
