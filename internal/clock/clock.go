// Package clock abstracts time for the MobiStreams runtime.
//
// All durations in the runtime are expressed in simulated time. A Scaled
// clock maps simulated time onto wall-clock time divided by a speedup
// factor, so a five-minute checkpoint period can elapse in milliseconds of
// real time while preserving the relative timing of every component. A
// Manual clock is advanced explicitly and drives deterministic unit tests.
package clock

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Clock is the time source used by every MobiStreams component. Now reports
// simulated time since the clock's epoch; Sleep blocks for a simulated
// duration; After returns a channel that fires once after a simulated
// duration, delivering the simulated time at which it fired.
type Clock interface {
	Now() time.Duration
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Duration
}

// Scaled is a real-time clock whose simulated time runs Speedup times
// faster than wall time. Speedup = 1 is real time; Speedup = 1000 makes one
// simulated second take one millisecond.
type Scaled struct {
	speedup float64
	epoch   time.Time
}

// NewScaled returns a Scaled clock with the given speedup factor. Speedup
// must be positive; values below 1 slow simulated time down.
func NewScaled(speedup float64) *Scaled {
	if speedup <= 0 {
		panic("clock: speedup must be positive")
	}
	return &Scaled{speedup: speedup, epoch: time.Now()}
}

// Speedup reports the configured speedup factor.
func (s *Scaled) Speedup() float64 { return s.speedup }

// Now returns the simulated time elapsed since the clock was created.
func (s *Scaled) Now() time.Duration {
	return time.Duration(float64(time.Since(s.epoch)) * s.speedup)
}

// Sleep blocks for the simulated duration d (d/speedup of wall time). At
// high speedups the OS timer granularity (~1 ms) would translate into tens
// of simulated seconds of overshoot, so the tail of every sleep is a short
// precision spin against the wall-clock deadline.
func (s *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	sleepUntilReal(time.Now().Add(time.Duration(float64(d) / s.speedup)))
}

// spinWindow is the wall-time tail of a scaled sleep that is spun rather
// than slept, trading a little CPU for timer-granularity-free precision.
// It is kept short: on small machines many goroutines sleep concurrently,
// and long spin tails contend for cores and distort the very timing they
// are trying to sharpen.
const spinWindow = 150 * time.Microsecond

func sleepUntilReal(deadline time.Time) {
	for {
		rem := time.Until(deadline)
		if rem <= 0 {
			return
		}
		if rem > spinWindow {
			time.Sleep(rem - spinWindow)
			continue
		}
		for time.Now().Before(deadline) {
			runtime.Gosched()
		}
		return
	}
}

// After returns a channel that receives the simulated fire time after the
// simulated duration d has elapsed.
func (s *Scaled) After(d time.Duration) <-chan time.Duration {
	ch := make(chan time.Duration, 1)
	if d <= 0 {
		ch <- s.Now()
		return ch
	}
	deadline := time.Now().Add(time.Duration(float64(d) / s.speedup))
	go func() {
		sleepUntilReal(deadline)
		ch <- s.Now()
	}()
	return ch
}

// Manual is a deterministic clock advanced explicitly by tests. Sleepers
// and timers fire when Advance moves simulated time past their deadlines.
// The zero value is ready to use at simulated time zero.
type Manual struct {
	mu     sync.Mutex
	now    time.Duration
	timers timerHeap
}

// NewManual returns a Manual clock starting at simulated time zero.
func NewManual() *Manual { return &Manual{} }

type manualTimer struct {
	at time.Duration
	ch chan time.Duration
}

type timerHeap []*manualTimer

func (h timerHeap) Len() int            { return len(h) }
func (h timerHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*manualTimer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Now returns the current simulated time.
func (m *Manual) Now() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep blocks until the clock has been advanced by at least d.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After returns a channel that fires when the clock has advanced d past the
// current simulated time.
func (m *Manual) After(d time.Duration) <-chan time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Duration, 1)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	heap.Push(&m.timers, &manualTimer{at: m.now + d, ch: ch})
	return ch
}

// Advance moves simulated time forward by d, firing every timer whose
// deadline is reached, in deadline order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now + d
	for m.timers.Len() > 0 && m.timers[0].at <= target {
		t := heap.Pop(&m.timers).(*manualTimer)
		m.now = t.at
		t.ch <- t.at
	}
	m.now = target
	m.mu.Unlock()
}

// PendingTimers reports how many timers are waiting to fire. Tests use it
// to synchronise with goroutines that register sleeps.
func (m *Manual) PendingTimers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.timers.Len()
}
