package clock

import (
	"sync"
	"testing"
	"time"
)

func TestScaledNowAdvances(t *testing.T) {
	c := NewScaled(1000)
	t0 := c.Now()
	time.Sleep(2 * time.Millisecond)
	t1 := c.Now()
	if t1 <= t0 {
		t.Fatalf("Now did not advance: %v -> %v", t0, t1)
	}
	// 2ms of wall time at 1000x is ~2s of simulated time.
	if t1-t0 < 1*time.Second {
		t.Fatalf("expected >=1s simulated elapsed, got %v", t1-t0)
	}
}

func TestScaledSleepScales(t *testing.T) {
	c := NewScaled(1000)
	start := time.Now()
	c.Sleep(1 * time.Second) // should take ~1ms wall time
	if wall := time.Since(start); wall > 200*time.Millisecond {
		t.Fatalf("scaled sleep took too long: %v", wall)
	}
}

func TestScaledSleepNonPositive(t *testing.T) {
	c := NewScaled(10)
	done := make(chan struct{})
	go func() {
		c.Sleep(0)
		c.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("non-positive sleep blocked")
	}
}

func TestScaledAfter(t *testing.T) {
	c := NewScaled(1000)
	select {
	case <-c.After(500 * time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("After never fired")
	}
}

func TestScaledAfterImmediate(t *testing.T) {
	c := NewScaled(10)
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
}

func TestNewScaledPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive speedup")
		}
	}()
	NewScaled(0)
}

func TestManualAdvanceFiresTimers(t *testing.T) {
	m := NewManual()
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before advance")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired too early")
	default:
	}
	m.Advance(1 * time.Second)
	select {
	case at := <-ch:
		if at != 10*time.Second {
			t.Fatalf("fire time = %v, want 10s", at)
		}
	default:
		t.Fatal("timer did not fire at deadline")
	}
	if m.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s", m.Now())
	}
}

func TestManualTimersFireInDeadlineOrder(t *testing.T) {
	m := NewManual()
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	delays := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range delays {
		wg.Add(1)
		i, d := i, d
		ch := m.After(d)
		go func() {
			defer wg.Done()
			<-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}()
	}
	// Advance one deadline at a time so goroutine scheduling cannot
	// reorder the recorded sequence.
	m.Advance(10 * time.Second)
	waitLen(t, &mu, &order, 1)
	m.Advance(10 * time.Second)
	waitLen(t, &mu, &order, 2)
	m.Advance(10 * time.Second)
	waitLen(t, &mu, &order, 3)
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func waitLen(t *testing.T, mu *sync.Mutex, s *[]int, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		l := len(*s)
		mu.Unlock()
		if l >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d entries", n)
}

func TestManualSleepBlocksUntilAdvance(t *testing.T) {
	m := NewManual()
	done := make(chan struct{})
	go func() {
		m.Sleep(5 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register.
	for m.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("sleep returned before advance")
	default:
	}
	m.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleep did not return after advance")
	}
}

func TestManualAfterNonPositive(t *testing.T) {
	m := NewManual()
	select {
	case <-m.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
}
