package xregion

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/obs"
	"mobistreams/internal/operator"
	"mobistreams/internal/simnet"
	"mobistreams/internal/wire"
)

const (
	testSeed   = 42
	testTuples = 60
	testTokens = 10 // a token (and a checkpoint) every 10 tuples
)

func testSpec() Spec { return Spec{Seed: testSeed, Tuples: testTuples, TokenEvery: testTokens} }

func runSimOnce(t *testing.T) *Result {
	t.Helper()
	res, err := RunSim(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runTCP runs the region over real TCP on loopback: lead and two workers
// on their own sockets, exactly as separate msrun processes would run
// them, just sharing a test binary.
func runTCP(t *testing.T) *Result {
	t.Helper()
	s, err := ListenLead("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	leadAddr := s.Info().Addr

	workerCh := make(chan error, 2)
	for _, id := range []simnet.NodeID{"w1", "w2"} {
		go func(id simnet.NodeID) {
			workerCh <- RunWorkerTCP(id, "127.0.0.1:0", leadAddr)
		}(id)
	}

	res, err := RunLeadOn(s, testSpec(), 2, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if werr := <-workerCh; werr != nil {
			t.Fatalf("worker: %v", werr)
		}
	}
	return res
}

// TestSimRegionRuns is the smoke test: the simulated backend produces the
// full blob set and all sink outputs.
func TestSimRegionRuns(t *testing.T) {
	res := runSimOnce(t)
	if want := testSpec().Versions() * len(pipeline); len(res.Blobs) != want {
		t.Fatalf("%d blobs, want %d", len(res.Blobs), want)
	}
	if res.SinkOuts != testTuples {
		t.Fatalf("%d sink outputs, want %d", res.SinkOuts, testTuples)
	}
	if res.SinkDigest == "" {
		t.Fatal("empty sink digest")
	}
	// Every blob frame decodes and passes its CRC.
	for key, frame := range res.Blobs {
		b, err := wire.DecodeBlob(frame)
		if err != nil {
			t.Fatalf("blob %s: %v", key, err)
		}
		if !b.VerifyCRC() {
			t.Fatalf("blob %s: CRC mismatch", key)
		}
	}
}

// TestSimDeterministic: two independent sim runs on the same seed are
// byte-identical — the precondition for cross-backend parity to mean
// anything.
func TestSimDeterministic(t *testing.T) {
	a, b := runSimOnce(t), runSimOnce(t)
	assertSameResult(t, a, b, "sim run 1", "sim run 2")
}

// TestSocketSimBlobParity is the headline cross-backend claim: a region
// over real TCP sockets produces byte-identical checkpoint blobs and an
// identical sink output stream to the simulated region on the same seed.
func TestSocketSimBlobParity(t *testing.T) {
	sim := runSimOnce(t)
	tcp := runTCP(t)
	assertSameResult(t, sim, tcp, "simnet", "tcp")
}

func assertSameResult(t *testing.T, a, b *Result, an, bn string) {
	t.Helper()
	if a.SinkOuts != b.SinkOuts {
		t.Fatalf("sink outputs: %s=%d %s=%d", an, a.SinkOuts, bn, b.SinkOuts)
	}
	if a.SinkDigest != b.SinkDigest {
		t.Fatalf("sink digests differ: %s=%s %s=%s", an, a.SinkDigest, bn, b.SinkDigest)
	}
	if len(a.Blobs) != len(b.Blobs) {
		t.Fatalf("blob counts: %s=%d %s=%d", an, len(a.Blobs), bn, len(b.Blobs))
	}
	keys := make([]string, 0, len(a.Blobs))
	for k := range a.Blobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bf, ok := b.Blobs[k]
		if !ok {
			t.Fatalf("blob %s present in %s, missing in %s", k, an, bn)
		}
		if !bytes.Equal(a.Blobs[k], bf) {
			t.Fatalf("blob %s differs between %s and %s (%d vs %d bytes)", k, an, bn, len(a.Blobs[k]), len(bf))
		}
	}
}

// runTCPSpec runs the socket backend with an explicit spec and worker
// count (runTCP's generalisation for the tracing tests).
func runTCPSpec(t *testing.T, spec Spec, nWorkers int) *Result {
	t.Helper()
	s, err := ListenLead("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	leadAddr := s.Info().Addr

	workerCh := make(chan error, nWorkers)
	for i := 1; i <= nWorkers; i++ {
		go func(id simnet.NodeID) {
			workerCh <- RunWorkerTCP(id, "127.0.0.1:0", leadAddr)
		}(simnet.NodeID(fmt.Sprintf("w%d", i)))
	}

	res, err := RunLeadOn(s, spec, nWorkers, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nWorkers; i++ {
		if werr := <-workerCh; werr != nil {
			t.Fatalf("worker: %v", werr)
		}
	}
	return res
}

// traceStructures flattens a result's waterfalls into "id: structure"
// lines — the timing-free view both backends must agree on.
func traceStructures(res *Result) []string {
	out := make([]string, 0, len(res.Traces))
	for _, w := range res.Traces {
		out = append(out, fmt.Sprintf("%d: %s", w.Trace, w.Structure()))
	}
	return out
}

// TestTraceParitySimVsSocket: a fixed-seed run with sampled tracing yields
// the identical span structure — same traces, same hop kinds in the same
// order at the same slots — on the simulated backend and on a
// three-process socket region.
func TestTraceParitySimVsSocket(t *testing.T) {
	spec := testSpec()
	spec.SampleEvery = 10
	sim, err := RunSim(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	tcp := runTCPSpec(t, spec, 3)

	if len(sim.Traces) == 0 {
		t.Fatal("sim run recorded no traces")
	}
	a, b := traceStructures(sim), traceStructures(tcp)
	if len(a) != len(b) {
		t.Fatalf("trace counts differ: sim=%d tcp=%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace structure %d differs:\n  sim: %s\n  tcp: %s", i, a[i], b[i])
		}
	}
	// Every traced tuple that survived to the sink must show the full
	// causal chain, starting at ingest.
	for _, w := range sim.Traces {
		if w.Hops[0].Kind != obs.SpanIngest {
			t.Fatalf("trace %d does not start at ingest: %s", w.Trace, w.Structure())
		}
	}
}

// TestTraceSimDeterministic: two traced sim runs agree exactly (the
// precondition for the cross-backend comparison above to be meaningful).
func TestTraceSimDeterministic(t *testing.T) {
	spec := testSpec()
	spec.SampleEvery = 5
	a, err := RunSim(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := traceStructures(a), traceStructures(b)
	if len(sa) == 0 {
		t.Fatal("no traces recorded")
	}
	if len(sa) != len(sb) {
		t.Fatalf("trace counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("structure %d differs:\n  a: %s\n  b: %s", i, sa[i], sb[i])
		}
	}
}

// TestBlobChainRestores: the collected blobs are not just byte-stable but
// usable — the final version restores into fresh operators.
func TestBlobChainRestores(t *testing.T) {
	res := runSimOnce(t)
	last := uint64(testSpec().Versions())
	for _, s := range pipeline {
		frame := res.Blobs[fmt.Sprintf("%s@%d", s.Slot, last)]
		if frame == nil {
			t.Fatalf("missing final blob for %s", s.Slot)
		}
		blob, err := wire.DecodeBlob(frame)
		if err != nil {
			t.Fatal(err)
		}
		op, err := newOp(s.Op, s.Slot)
		if err != nil {
			t.Fatal(err)
		}
		if err := checkpoint.RestoreBlob(blob, []operator.Operator{op}); err != nil {
			t.Fatalf("restore %s: %v", s.Slot, err)
		}
	}
}
