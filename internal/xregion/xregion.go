// Package xregion runs a small MobiStreams region over the transport
// abstraction: a lead node assigns a fixed linear stage pipeline to worker
// nodes, workers stream wire-encoded tuples and in-band checkpoint tokens
// edge-to-edge, and every stage ships its checkpoint blobs back to the
// lead. The whole exchange — assignment, data, tokens, blobs, sink
// outputs, completion — is wire frames over transport.Transport, so the
// identical runtime executes on the simulated WiFi (transport.Sim) or on
// real TCP sockets across processes (transport.Socket).
//
// Determinism is the point: the pipeline is a linear chain, every edge is
// FIFO on both backends, tokens travel in-band, and each stage's state at
// token v is therefore a pure function of the workload prefix — so the
// wire-encoded checkpoint blobs and the sink output stream are
// byte-identical across backends on the same seed. The parity test pins
// exactly that.
package xregion

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/clock"
	"mobistreams/internal/obs"
	"mobistreams/internal/operator"
	"mobistreams/internal/simnet"
	"mobistreams/internal/transport"
	"mobistreams/internal/tuple"
	"mobistreams/internal/wire"
)

// Spec parameterises one region run. The same spec on the same seed must
// produce the same blobs and sink outputs on every backend.
type Spec struct {
	// Seed drives the deterministic workload generator.
	Seed int64
	// Tuples is the number of tuples the source admits.
	Tuples int
	// TokenEvery inserts a checkpoint token after every that many tuples.
	TokenEvery int
	// SampleEvery traces every that-many-th source tuple end to end
	// (0 disables tracing). Trace identity derives from the tuple
	// sequence, so the span structure is backend-independent.
	SampleEvery int
}

// Versions is the number of checkpoint versions the spec produces.
func (s Spec) Versions() int { return s.Tuples / s.TokenEvery }

// Result is what the lead collected from one region run.
type Result struct {
	// Blobs maps "slot@version" to the wire-encoded checkpoint blob frame
	// exactly as it arrived from the hosting worker.
	Blobs map[string][]byte
	// SinkOuts counts tuples the sink stage published.
	SinkOuts int
	// SinkDigest is the hex SHA-256 over the sink output frames in
	// arrival order — equal digests mean equal outputs in equal order.
	SinkDigest string
	// Traces holds the reconstructed per-tuple waterfalls when the spec
	// sampled tracing, merged from every worker's span dump.
	Traces []obs.Waterfall
	// Redials/DeadConns are the lead transport's connection-health
	// counters (always 0 on the simulated backend).
	Redials   int64
	DeadConns int64
}

// The xregion control protocol rides on wire.Command / wire.Report with
// its own op space, well clear of the node runtime's values.
const (
	cmdPause    uint8 = 100 // lead → worker: run is over, exit the loop
	repJoin     uint8 = 100 // worker → lead: socket-mode join announcement
	repSinkDone uint8 = 101 // sink host → lead: replay-end reached the sink
)

// LeadID is the lead's node ID in both backends.
const LeadID simnet.NodeID = "lead"

// pipeline is the fixed stage chain: source → window → aggregate → sink.
// Hosts are filled in at assignment time.
var pipeline = []wire.AssignStage{
	{Slot: "s0", Op: "pass"},
	{Slot: "s1", Op: "win8"},
	{Slot: "s2", Op: "agg"},
	{Slot: "s3", Op: "pass"},
}

// NewStageOp instantiates a stage operator by its assignment name. The
// federation's cross-region pipelines reuse the same stage vocabulary, so
// a region description ("pass", "win8", "agg") means the same thing on a
// worker phone and on a federated source region.
func NewStageOp(name, slot string) (operator.Operator, error) {
	return newOp(name, slot)
}

// newOp instantiates a stage operator by its assignment name.
func newOp(name, slot string) (operator.Operator, error) {
	switch name {
	case "pass":
		return operator.NewPassthrough(slot), nil
	case "win8":
		return operator.NewWindow(slot, 8), nil
	case "agg":
		return operator.NewAggregate(slot), nil
	default:
		return nil, fmt.Errorf("xregion: unknown operator %q", name)
	}
}

// ---- worker --------------------------------------------------------------

type event struct {
	from  simnet.NodeID
	class simnet.Class
	frame []byte
}

// stage is one pipeline slot hosted on this worker.
type stage struct {
	slot   string
	op     operator.Operator
	inSeq  uint64 // items received on the upstream edge
	outSeq uint64 // items emitted on the downstream edge
}

// Worker executes its assigned stages: it decodes stream frames, runs the
// stage operators, forwards emissions downstream, checkpoints on tokens
// and ships the blobs to the lead. All frames are consumed through one
// unbounded event queue, so transport readers never block on processing
// (the transport handler only appends; stage work, including the inline
// source generator, happens on the loop goroutine).
type Worker struct {
	tr transport.Transport

	mu   sync.Mutex
	cond *sync.Cond
	q    []event

	lead    simnet.NodeID
	stages  map[string]*stage
	next    map[string]string        // slot → downstream slot ("" at the sink)
	ops     map[string]string        // slot → operator ID (for Stream.ToOp)
	hosts   map[string]simnet.NodeID // slot → hosting node
	pending []event                  // frames that arrived before the assignment
	tracer  *obs.Tracer              // sampled causal tracing (assignment-configured)
}

// now is the span timestamp source: wall-clock nanoseconds. Cross-backend
// parity compares span structure only, never timestamps.
func (w *Worker) now() int64 { return time.Now().UnixNano() }

// NewWorker attaches a worker loop to a transport.
func NewWorker(tr transport.Transport) *Worker {
	w := &Worker{tr: tr}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Run installs the receive handler and processes events until the lead
// sends a pause command or an error stops the loop.
func (w *Worker) Run() error {
	w.tr.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
		w.mu.Lock()
		w.q = append(w.q, event{from, class, frame})
		w.cond.Signal()
		w.mu.Unlock()
	})
	for {
		w.mu.Lock()
		for len(w.q) == 0 {
			w.cond.Wait()
		}
		ev := w.q[0]
		w.q = w.q[1:]
		w.mu.Unlock()

		done, err := w.handle(ev)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

func (w *Worker) handle(ev event) (done bool, err error) {
	switch wire.FrameKind(ev.frame) {
	case wire.KindAssign:
		a, err := wire.DecodeAssign(ev.frame)
		if err != nil {
			return false, fmt.Errorf("xregion: decode assign: %w", err)
		}
		if err := w.setup(&a); err != nil {
			return false, err
		}
		// Drain frames that raced ahead of the assignment, in order.
		pend := w.pending
		w.pending = nil
		for _, p := range pend {
			if done, err := w.handle(p); done || err != nil {
				return done, err
			}
		}
		// The source host drives the whole workload from here.
		if host, ok := w.hosts[pipeline[0].Slot]; ok && host == w.tr.Info().ID {
			return false, w.runSource(&a)
		}
		return false, nil
	case wire.KindCommand:
		c, err := wire.DecodeCommand(ev.frame)
		if err != nil {
			return false, fmt.Errorf("xregion: decode command: %w", err)
		}
		if c.Op == cmdPause {
			if err := w.sendSpans(); err != nil {
				return false, err
			}
			return true, nil
		}
		return false, nil
	case wire.KindStream:
		if w.stages == nil {
			w.pending = append(w.pending, ev)
			return false, nil
		}
		m, err := wire.DecodeStream(ev.frame)
		if err != nil {
			return false, fmt.Errorf("xregion: decode stream: %w", err)
		}
		return false, w.handleStream(&m)
	default:
		return false, nil // not part of the worker protocol; ignore
	}
}

// setup instantiates the stages this worker hosts and learns the region
// topology and address book from the assignment.
func (w *Worker) setup(a *wire.Assign) error {
	w.lead = a.Lead
	w.tracer = obs.NewTracer(16384)
	w.tracer.SetSampleEvery(a.SampleEvery)
	w.stages = make(map[string]*stage)
	w.next = make(map[string]string)
	w.ops = make(map[string]string)
	w.hosts = make(map[string]simnet.NodeID)
	for i, s := range a.Stages {
		w.hosts[s.Slot] = s.Host
		w.ops[s.Slot] = s.Slot // operator ID == slot name (newOp binds them)
		if i+1 < len(a.Stages) {
			w.next[s.Slot] = a.Stages[i+1].Slot
		} else {
			w.next[s.Slot] = ""
		}
		if s.Host != w.tr.Info().ID {
			continue
		}
		op, err := newOp(s.Op, s.Slot)
		if err != nil {
			return err
		}
		w.stages[s.Slot] = &stage{slot: s.Slot, op: op}
	}
	if s, ok := w.tr.(*transport.Socket); ok {
		for _, p := range a.Peers {
			if p.ID != w.tr.Info().ID {
				s.AddPeer(p.ID, p.Addr)
			}
		}
	}
	return nil
}

// runSource generates the seeded workload through the source stage:
// tuples, an in-band token every TokenEvery tuples (checkpointing the
// source as it passes), and a terminal replay-end marker.
func (w *Worker) runSource(a *wire.Assign) error {
	st := w.stages[pipeline[0].Slot]
	rng := rand.New(rand.NewSource(a.Seed))
	kinds := []string{"image", "businfo", "count"}
	version := uint64(0)
	for i := 1; i <= a.Tuples; i++ {
		t := &tuple.Tuple{
			Seq:     uint64(i),
			Source:  "src",
			Kind:    kinds[rng.Intn(len(kinds))],
			Created: time.Duration(i) * time.Millisecond,
			Size:    100 + rng.Intn(900),
			Value:   rng.Float64() * 100,
		}
		// Seq starts at 1; sampling keys on seq-1 so sample-every-1
		// traces the first tuple, matching the region's convention.
		tc, traced := w.tracer.Sample(t.Seq - 1)
		if traced {
			w.tracer.Record(&tc, obs.SpanIngest, string(w.tr.Info().ID), st.slot, "src", w.now())
		}
		if err := w.process(st, "", t, tc); err != nil {
			return err
		}
		if a.TokenEvery > 0 && i%a.TokenEvery == 0 {
			version++
			marker := tuple.Marker{Kind: tuple.MarkerToken, Version: version}
			if err := w.emit(st, tuple.MarkerItem(marker), nil); err != nil {
				return err
			}
			if err := w.checkpoint(st, version); err != nil {
				return err
			}
		}
	}
	end := tuple.Marker{Kind: tuple.MarkerReplayEnd}
	return w.emit(st, tuple.MarkerItem(end), nil)
}

func (w *Worker) handleStream(m *wire.Stream) error {
	st, ok := w.stages[m.ToSlot]
	if !ok {
		return fmt.Errorf("xregion: %s received frame for unhosted slot %s", w.tr.Info().ID, m.ToSlot)
	}
	st.inSeq++
	if mk := m.Item.Marker; mk != nil {
		switch mk.Kind {
		case tuple.MarkerToken:
			if w.next[st.slot] != "" {
				if err := w.emit(st, m.Item, nil); err != nil {
					return err
				}
			}
			return w.checkpoint(st, mk.Version)
		case tuple.MarkerReplayEnd:
			if w.next[st.slot] != "" {
				return w.emit(st, m.Item, nil)
			}
			// The workload has fully drained through the sink.
			rp := wire.Report{Type: repSinkDone, Phone: w.tr.Info().ID, Slot: st.slot}
			return w.tr.Tell(w.lead, simnet.ClassControl, wire.AppendReport(nil, &rp))
		}
		return nil
	}
	tc := obs.SpanCtx{ID: m.TraceID, Seq: m.TraceSeq}
	if tc.ID != 0 {
		w.tracer.Record(&tc, obs.SpanRecv, string(w.tr.Info().ID), m.ToSlot, m.ToOp, w.now())
	}
	return w.process(st, m.FromOp, m.Item.Tuple, tc)
}

// process runs one tuple through a stage operator and routes the
// emissions: downstream as stream frames, or to the lead as sink outputs
// when this is the last stage.
func (w *Worker) process(st *stage, from string, t *tuple.Tuple, tc obs.SpanCtx) error {
	if tc.ID != 0 {
		w.tracer.Record(&tc, obs.SpanOp, string(w.tr.Info().ID), st.slot, st.op.ID(), w.now())
	}
	outs, err := operator.Run(st.op, from, t)
	if err != nil {
		return fmt.Errorf("xregion: %s process: %w", st.slot, err)
	}
	sink := w.next[st.slot] == ""
	for i := range outs {
		if sink {
			if tc.ID != 0 {
				w.tracer.Record(&tc, obs.SpanSink, string(w.tr.Info().ID), st.slot, st.op.ID(), w.now())
			}
			sz, err := wire.SizeSinkOut(outs[i].T)
			if err != nil {
				return err
			}
			frame, err := wire.AppendSinkOut(make([]byte, 0, sz), outs[i].T)
			if err != nil {
				return err
			}
			st.outSeq++
			if err := w.tr.Tell(w.lead, simnet.ClassData, frame); err != nil {
				return err
			}
			continue
		}
		if err := w.emit(st, tuple.DataItem(outs[i].T), &tc); err != nil {
			return err
		}
	}
	return nil
}

// emit sends one item on the stage's downstream edge. A non-nil traced tc
// travels on the frame: the emit and send spans are recorded here (bumping
// the caller's context), the receive span on the downstream host.
func (w *Worker) emit(st *stage, item tuple.Item, tc *obs.SpanCtx) error {
	next := w.next[st.slot]
	st.outSeq++
	var trace obs.SpanCtx
	if tc != nil && tc.ID != 0 {
		id := string(w.tr.Info().ID)
		w.tracer.Record(tc, obs.SpanEmit, id, st.slot, st.op.ID(), w.now())
		w.tracer.Record(tc, obs.SpanSend, id, st.slot, "", w.now())
		trace = *tc
	}
	m := wire.Stream{
		FromSlot: st.slot,
		FromOp:   st.op.ID(),
		ToSlot:   next,
		ToOp:     w.ops[next],
		EdgeSeq:  st.outSeq,
		TraceID:  trace.ID,
		TraceSeq: trace.Seq,
		Item:     item,
	}
	sz, err := wire.SizeStream(&m)
	if err != nil {
		return err
	}
	frame, err := wire.AppendStream(make([]byte, 0, sz), &m)
	if err != nil {
		return err
	}
	return w.tr.Tell(w.hosts[next], simnet.ClassData, frame)
}

// checkpoint snapshots the stage at a token version and ships the
// wire-encoded blob to the lead on the checkpoint plane.
func (w *Worker) checkpoint(st *stage, version uint64) error {
	rt := wire.Runtime{
		OutSeq:     map[string]uint64{},
		InHW:       map[string]uint64{},
		LogVersion: version,
	}
	if next := w.next[st.slot]; next != "" {
		rt.OutSeq[st.slot+"->"+next] = st.outSeq
	}
	if st.slot != pipeline[0].Slot {
		rt.InHW["->"+st.slot] = st.inSeq
	}
	extra := wire.AppendRuntime(make([]byte, 0, wire.SizeRuntime(&rt)), &rt)
	blob, err := checkpoint.BuildBlob(st.slot, version, []operator.Operator{st.op}, extra)
	if err != nil {
		return err
	}
	frame := wire.AppendBlob(make([]byte, 0, wire.SizeBlob(blob)), blob)
	return w.tr.Tell(w.lead, simnet.ClassCheckpoint, frame)
}

// sendSpans ships this worker's recorded spans to the lead so it can
// stitch cross-process waterfalls. Skipped when the run never sampled.
func (w *Worker) sendSpans() error {
	if w.tracer == nil || w.tracer.SampleEvery() <= 0 {
		return nil
	}
	d := wire.SpanDump{From: w.tr.Info().ID, Spans: w.tracer.Spans()}
	frame := wire.AppendSpans(make([]byte, 0, wire.SizeSpans(&d)), &d)
	return w.tr.Tell(w.lead, simnet.ClassControl, frame)
}

// ---- lead ----------------------------------------------------------------

// lead collects blobs and sink outputs until the run is complete.
type lead struct {
	tr   transport.Transport
	spec Spec

	mu       sync.Mutex
	blobs    map[string][]byte
	sinkHash []byte // running digest chain over sink frames
	sinkN    int
	sinkDone bool
	done     chan struct{}

	// Span dumps arrive after the pause command; spansDone closes when
	// every worker has reported (expectDumps > 0 only when sampling).
	spans       []obs.Span
	dumps       int
	expectDumps int
	spansDone   chan struct{}
}

func (l *lead) complete() bool {
	return l.sinkDone &&
		l.sinkN == l.spec.Tuples &&
		len(l.blobs) == l.spec.Versions()*len(pipeline)
}

func (l *lead) handler(from simnet.NodeID, class simnet.Class, frame []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch wire.FrameKind(frame) {
	case wire.KindBlob:
		b, err := wire.DecodeBlob(frame)
		if err != nil {
			return
		}
		l.blobs[fmt.Sprintf("%s@%d", b.Slot, b.Version)] = frame
	case wire.KindSinkOut:
		// Chain the digest so both order and content are pinned.
		h := sha256.New()
		h.Write(l.sinkHash)
		h.Write(frame)
		l.sinkHash = h.Sum(l.sinkHash[:0])
		l.sinkN++
	case wire.KindReport:
		rp, err := wire.DecodeReport(frame)
		if err != nil || rp.Type != repSinkDone {
			return
		}
		l.sinkDone = true
	case wire.KindSpans:
		d, err := wire.DecodeSpans(frame)
		if err != nil {
			return
		}
		l.spans = append(l.spans, d.Spans...)
		l.dumps++
		if l.expectDumps > 0 && l.dumps == l.expectDumps {
			close(l.spansDone)
		}
		return
	default:
		return
	}
	if l.complete() {
		select {
		case <-l.done:
		default:
			close(l.done)
		}
	}
}

// runLead drives one region: assign the pipeline to the given workers
// (stage i on workers[i mod n]), wait for every blob and sink output,
// then pause the workers and report.
func runLead(tr transport.Transport, spec Spec, workers []simnet.NodeID, peers []wire.AssignPeer, timeout time.Duration) (*Result, error) {
	if spec.Tuples <= 0 || spec.TokenEvery <= 0 {
		return nil, fmt.Errorf("xregion: spec needs positive Tuples and TokenEvery")
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("xregion: no workers")
	}
	l := &lead{tr: tr, spec: spec, blobs: make(map[string][]byte), done: make(chan struct{}), spansDone: make(chan struct{})}
	if spec.SampleEvery > 0 {
		l.expectDumps = len(workers)
	}
	tr.Receive(l.handler)

	a := wire.Assign{
		Lead:        tr.Info().ID,
		Seed:        spec.Seed,
		Tuples:      spec.Tuples,
		TokenEvery:  spec.TokenEvery,
		SampleEvery: spec.SampleEvery,
		Stages:      make([]wire.AssignStage, len(pipeline)),
		Peers:       peers,
	}
	for i, s := range pipeline {
		s.Host = workers[i%len(workers)]
		a.Stages[i] = s
	}
	frame := wire.AppendAssign(make([]byte, 0, wire.SizeAssign(&a)), &a)
	for _, id := range workers {
		if err := tr.Tell(id, simnet.ClassControl, frame); err != nil {
			return nil, fmt.Errorf("xregion: assign %s: %w", id, err)
		}
	}

	select {
	case <-l.done:
	case <-time.After(timeout):
		l.mu.Lock()
		got, want := len(l.blobs), spec.Versions()*len(pipeline)
		n, fin := l.sinkN, l.sinkDone
		l.mu.Unlock()
		return nil, fmt.Errorf("xregion: timed out after %v: %d/%d blobs, %d/%d sink outputs, sink done=%v",
			timeout, got, want, n, spec.Tuples, fin)
	}

	pause := wire.Command{Op: cmdPause}
	pframe := wire.AppendCommand(make([]byte, 0, wire.SizeCommand(&pause)), &pause)
	for _, id := range workers {
		if err := tr.Tell(id, simnet.ClassControl, pframe); err != nil {
			return nil, fmt.Errorf("xregion: pause %s: %w", id, err)
		}
	}

	// Workers dump their spans on pause; wait for every worker before
	// stitching waterfalls, or the trace set would depend on scheduling.
	if l.expectDumps > 0 {
		select {
		case <-l.spansDone:
		case <-time.After(timeout):
			l.mu.Lock()
			got := l.dumps
			l.mu.Unlock()
			return nil, fmt.Errorf("xregion: timed out waiting for span dumps: %d/%d", got, l.expectDumps)
		}
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	res := &Result{
		Blobs:      l.blobs,
		SinkOuts:   l.sinkN,
		SinkDigest: hex.EncodeToString(l.sinkHash),
		Traces:     obs.Waterfalls(l.spans),
	}
	if s, ok := tr.(*transport.Socket); ok {
		st := s.Stats()
		res.Redials, res.DeadConns = st.Redials, st.DeadConns
	}
	return res, nil
}

// ---- backends ------------------------------------------------------------

// RunSim runs the region in-process over the simulated WiFi: the lead and
// nWorkers workers as Sim transports on one shared medium.
func RunSim(spec Spec, nWorkers int) (*Result, error) {
	clk := clock.NewScaled(2000)
	w := simnet.NewWiFi(clk, simnet.WiFiConfig{BitsPerSecond: 20e6, Seed: spec.Seed})

	mk := func(id simnet.NodeID) *transport.Sim {
		ep := simnet.NewEndpoint(id, 4096)
		w.Join(ep)
		return transport.NewSim(ep, w, nil)
	}
	leadTr := mk(LeadID)
	defer leadTr.Close()

	ids := make([]simnet.NodeID, nWorkers)
	var wg sync.WaitGroup
	workerErrs := make([]error, nWorkers)
	trs := make([]*transport.Sim, nWorkers)
	for i := 0; i < nWorkers; i++ {
		ids[i] = simnet.NodeID(fmt.Sprintf("w%d", i+1))
		trs[i] = mk(ids[i])
		wk := NewWorker(trs[i])
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = wk.Run()
		}(i)
	}

	res, err := runLead(leadTr, spec, ids, nil, 60*time.Second)
	if err == nil {
		wg.Wait() // pause delivered: loops exit before we tear transports down
	}
	for _, tr := range trs {
		tr.Close()
	}
	if err != nil {
		return nil, err
	}
	for i, werr := range workerErrs {
		if werr != nil {
			return nil, fmt.Errorf("xregion: worker %s: %w", ids[i], werr)
		}
	}
	return res, nil
}

// ListenLead binds the lead's socket so its ephemeral address is known
// before any worker starts. The caller owns the socket and passes it to
// RunLeadOn.
func ListenLead(listen string) (*transport.Socket, error) {
	return transport.NewSocket(LeadID, listen, "")
}

// RunLeadTCP runs the lead over real sockets: listen, wait for nWorkers
// workers to join (RunWorkerTCP), assign stages across them in sorted ID
// order, and collect the run.
func RunLeadTCP(spec Spec, listen string, nWorkers int, timeout time.Duration) (*Result, error) {
	s, err := ListenLead(listen)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return RunLeadOn(s, spec, nWorkers, timeout)
}

// RunLeadOn runs the lead protocol over an already-bound socket.
func RunLeadOn(s *transport.Socket, spec Spec, nWorkers int, timeout time.Duration) (*Result, error) {
	if err := s.WaitPeers(nWorkers, timeout); err != nil {
		return nil, err
	}
	ids := s.Peers()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	peers := make([]wire.AssignPeer, 0, len(ids)+1)
	peers = append(peers, wire.AssignPeer{ID: LeadID, Addr: s.Info().Addr})
	for _, id := range ids {
		addr, _ := s.PeerAddr(id)
		peers = append(peers, wire.AssignPeer{ID: id, Addr: addr})
	}
	return runLead(s, spec, ids, peers, timeout)
}

// RunWorkerTCP runs one worker process: listen, join the lead, execute
// assigned stages until the lead pauses the region.
func RunWorkerTCP(id simnet.NodeID, listen, join string) error {
	s, err := transport.NewSocket(id, listen, "")
	if err != nil {
		return err
	}
	defer s.Close()
	s.AddPeer(LeadID, join)
	w := NewWorker(s)
	// Receive must be installed before the join announcement, or the
	// assignment could race the handler.
	s.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
		w.mu.Lock()
		w.q = append(w.q, event{from, class, frame})
		w.cond.Signal()
		w.mu.Unlock()
	})
	rp := wire.Report{Type: repJoin, Phone: id}
	if err := s.Tell(LeadID, simnet.ClassControl, wire.AppendReport(nil, &rp)); err != nil {
		return fmt.Errorf("xregion: join %s: %w", join, err)
	}
	return w.Run()
}
