// Package bench is the experiment harness: it assembles a full MobiStreams
// system (region, controller, workload) for one scenario, runs it at a
// scaled clock, and reports the metrics the paper's tables and figures are
// built from. The experiments scale the paper's 5-minute checkpoint period
// down (default 60 simulated seconds) with state sizes calibrated to keep
// the airtime fractions — the figures compare shapes, not testbed-absolute
// numbers (see EXPERIMENTS.md).
package bench

import (
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/controller"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/metrics"
	"mobistreams/internal/node"
	"mobistreams/internal/operator"
	"mobistreams/internal/region"
	"mobistreams/internal/simnet"
	"mobistreams/internal/workload"

	bcpapp "mobistreams/internal/apps/bcp"
	sgapp "mobistreams/internal/apps/signalguru"
)

// App selects the driving application.
type App int

const (
	// BCP is Bus Capacity Prediction.
	BCP App = iota
	// SG is SignalGuru.
	SG
)

func (a App) String() string {
	if a == BCP {
		return "BCP"
	}
	return "SignalGuru"
}

// Scenario configures one experiment run.
type Scenario struct {
	App    App
	Scheme ft.Scheme
	// Phones is the region population: the graph's 8 slots plus idle
	// spares that store checkpoint copies and stand in as replacements
	// (default 16 = 8 active + 8 idle; Fig. 4 shows idle members).
	Phones int
	// Channels splits the WiFi medium into channel/AP domains (default 1,
	// a single shared cell).
	Channels int
	// Speedup is the clock scale (default 400: one simulated minute
	// takes 150 ms of wall time).
	Speedup float64
	// CheckpointPeriod (default 60 s; the paper's 5 min scaled by 1/5
	// with state sizes scaled to preserve airtime fractions).
	CheckpointPeriod time.Duration
	// Warmup runs before the measurement window opens (default one
	// checkpoint period).
	Warmup time.Duration
	// Measure is the measurement window (default two checkpoint
	// periods).
	Measure time.Duration
	// WiFiBps is the shared medium capacity (default 3 Mbps, the middle
	// of the paper's 1-5 Mbps range); WiFiLoss the UDP loss probability
	// (default 2%).
	WiFiBps  float64
	WiFiLoss float64
	// FailCount phones crash simultaneously FaultAfter into the window;
	// DepartCount phones leave instead. FaultAfter defaults to half the
	// measurement window.
	FailCount   int
	DepartCount int
	FaultAfter  time.Duration
	Seed        int64
	// PreserveBroadcast replicates source logs region-wide under MS
	// (default true).
	NoPreserveBroadcast bool
	// Batch bounds edge-level tuple batching (zero value: enabled with
	// defaults; set Batch.Disable to measure the unbatched path).
	Batch node.BatchConfig
}

func (s *Scenario) applyDefaults() {
	if s.Phones <= 0 {
		s.Phones = 16
	}
	if s.Speedup <= 0 {
		s.Speedup = 200
	}
	if s.CheckpointPeriod <= 0 {
		s.CheckpointPeriod = 60 * time.Second
	}
	if s.Warmup <= 0 {
		s.Warmup = s.CheckpointPeriod
	}
	if s.Measure <= 0 {
		s.Measure = 2 * s.CheckpointPeriod
	}
	if s.WiFiBps <= 0 {
		s.WiFiBps = 3e6
	}
	if s.WiFiLoss == 0 {
		s.WiFiLoss = 0.02
	}
	if s.FaultAfter <= 0 {
		s.FaultAfter = s.Measure / 2
	}
}

// Outcome is one run's result.
type Outcome struct {
	metrics.Report
	App        App
	Window     time.Duration
	Dead       bool
	Recoveries int
	Departures int
	Duplicates int64
}

// appBundle wires an application's graph, registry and feeds.
type appBundle struct {
	graph    *graph.Graph
	registry operator.Registry
	start    func(g *workload.Generator, push workload.Push, seed int64)
}

func buildApp(a App, seed int64) (appBundle, error) {
	switch a {
	case BCP:
		g, err := bcpapp.Graph()
		if err != nil {
			return appBundle{}, err
		}
		reg := bcpapp.Registry(bcpapp.Params{})
		return appBundle{graph: g, registry: reg, start: func(gen *workload.Generator, push workload.Push, seed int64) {
			gen.StartBCPCamera(push, workload.BCPCameraConfig{Period: 2000 * time.Millisecond, Seed: seed})
			gen.StartBCPBus(push, workload.BCPBusConfig{Period: 30 * time.Second, CorruptEvery: 10, Seed: seed})
		}}, nil
	default:
		g, err := sgapp.Graph()
		if err != nil {
			return appBundle{}, err
		}
		reg := sgapp.Registry(sgapp.Params{})
		return appBundle{graph: g, registry: reg, start: func(gen *workload.Generator, push workload.Push, seed int64) {
			gen.StartSGCamera(push, workload.SGCameraConfig{Period: 1300 * time.Millisecond, Seed: seed})
			gen.StartSGUpstream(push, workload.SGUpstreamConfig{Period: 30 * time.Second, Seed: seed})
		}}, nil
	}
}

// Run executes one scenario to completion.
func Run(s Scenario) (Outcome, error) {
	s.applyDefaults()
	app, err := buildApp(s.App, s.Seed)
	if err != nil {
		return Outcome{}, err
	}

	clk := clock.NewScaled(s.Speedup)
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   0.16e6,
		DownBitsPerSecond: 0.7e6,
		Latency:           80 * time.Millisecond,
		SharedBps:         2e6,
	})
	ctrl := controller.New(controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: s.CheckpointPeriod,
		PingInterval:     30 * time.Second,
		PingTimeout:      10 * time.Second,
		DebounceWindow:   2 * time.Second,
	})
	r, err := region.New(region.Config{
		ID:                "r1",
		Graph:             app.graph,
		Registry:          app.registry,
		Scheme:            s.Scheme,
		Phones:            s.Phones,
		Clock:             clk,
		WiFi:              simnet.WiFiConfig{BitsPerSecond: s.WiFiBps, LossProb: s.WiFiLoss, Channels: s.Channels, Seed: s.Seed},
		Cell:              cell,
		ControllerID:      ctrl.ID(),
		Broadcast:         broadcast.Config{BlockSize: 1024},
		PreserveBroadcast: s.Scheme.Kind == ft.MS && !s.NoPreserveBroadcast,
		Batch:             s.Batch,
	})
	if err != nil {
		return Outcome{}, err
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()

	gen := workload.NewGenerator(clk)
	app.start(gen, r.Ingest, s.Seed)

	// Warm up, then open the measurement window.
	clk.Sleep(s.Warmup)
	r.Throughput.Start(clk.Now())
	r.Latency.Reset()
	netBefore := snapshotNet(r)
	srcBefore, edgeBefore := r.PreservedBytes()

	if s.FailCount > 0 || s.DepartCount > 0 {
		clk.Sleep(s.FaultAfter)
		injectFaults(r, ctrl, s)
		clk.Sleep(s.Measure - s.FaultAfter)
	} else {
		clk.Sleep(s.Measure)
	}

	now := clk.Now()
	rep := r.Report(now)
	netAfter := snapshotNet(r)
	srcAfter, edgeAfter := r.PreservedBytes()
	rep.CheckpointNet = netAfter.ckpt - netBefore.ckpt
	rep.ReplicationNet = netAfter.repl - netBefore.repl
	rep.DataBytes = netAfter.data - netBefore.data
	rep.PreservedBytes = (srcAfter - srcBefore) + (edgeAfter - edgeBefore)

	out := Outcome{
		Report:     rep,
		App:        s.App,
		Window:     s.Measure,
		Dead:       ctrl.RegionDead("r1"),
		Recoveries: ctrl.Recoveries("r1"),
		Departures: ctrl.Departures("r1"),
		Duplicates: r.DuplicateOutputs(),
	}
	gen.Stop()
	r.Stop()
	ctrl.Stop()
	return out, nil
}

type netSnap struct{ data, ckpt, repl int64 }

func snapshotNet(r *region.Region) netSnap {
	c := &r.WiFi().Counters
	return netSnap{
		data: c.Bytes(simnet.ClassData),
		ckpt: c.Bytes(simnet.ClassCheckpoint) + c.Bytes(simnet.ClassBitmap),
		repl: c.Bytes(simnet.ClassReplication),
	}
}

// injectFaults crashes or departs phones hosting slots, computing slots
// first, then the sink slot, then sources — so small k hits the middle of
// the pipeline as in Fig. 5's narrative.
func injectFaults(r *region.Region, ctrl *controller.Controller, s Scenario) {
	order := victimOrder(r)
	k := s.FailCount
	depart := false
	if s.DepartCount > 0 {
		k = s.DepartCount
		depart = true
	}
	if k > len(order) {
		k = len(order)
	}
	for i := 0; i < k; i++ {
		slot := order[i]
		pid, ok := r.Placement(slot)
		if !ok {
			continue
		}
		if depart {
			r.DepartPhone(pid)
			ctrl.NotifyDeparture(r.ID(), pid)
		} else {
			r.FailPhone(pid)
		}
	}
}

// victimOrder lists slots: computing first, then sinks, then sources.
func victimOrder(r *region.Region) []string {
	g := r.Graph()
	isSrc := make(map[string]bool)
	for _, s := range g.SourceSlots() {
		isSrc[s] = true
	}
	isSink := make(map[string]bool)
	for _, s := range g.SinkSlots() {
		isSink[s] = true
	}
	var computing, sinks, sources []string
	for _, s := range g.Slots() {
		switch {
		case isSrc[s]:
			sources = append(sources, s)
		case isSink[s]:
			sinks = append(sinks, s)
		default:
			computing = append(computing, s)
		}
	}
	out := append(computing, sinks...)
	return append(out, sources...)
}
