package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestPlacementPlannerBeatsGreedyCrossChannel is the planner acceptance
// check at test scale: round-robin channel assignment scatters every
// pipeline chain across WiFi channels at start, so the greedy arm — which
// only reacts to per-phone hazards — leaves each hop burning airtime in two
// cells for the whole run, while the planner's pack-to-empty pass
// consolidates each chain into a single channel domain and the measured
// cross-channel share drops well below greedy's. Plan execution rides the
// same exactly-once migration path as the scheduler, so the planner arm
// must not publish a single duplicate.
func TestPlacementPlannerBeatsGreedyCrossChannel(t *testing.T) {
	small := PlacementScenario{
		Phones:           48,
		Pipelines:        2,
		CheckpointPeriod: 20 * time.Second,
		Measure:          60 * time.Second,
		Drain:            10 * time.Second,
		MeanLeave:        30 * time.Second,
		Seed:             5,
	}
	if raceEnabled {
		// Race instrumentation multiplies the cost of every phone
		// goroutine; at 48 phones the pair of arms takes minutes of wall
		// time. The race build only checks the exactly-once and
		// arm-separation invariants, so a smaller population suffices.
		small.Phones = 24
		small.Measure = 40 * time.Second
	}
	// The runs pace simulated time against the wall clock, so CPU
	// contention from sibling packages can stall a plan's code-ship phase
	// past a tick boundary and smear the airtime split. Retry before
	// declaring a regression: a planner that genuinely stopped packing
	// fails every attempt, a scheduling stall does not.
	const attempts = 3
	var lastErr string
	for i := 0; i < attempts; i++ {
		rows, err := PlacementComparison(small)
		if err != nil {
			t.Fatal(err)
		}
		greedy, planner := rows[0], rows[1]
		t.Logf("attempt %d greedy:  %+v", i+1, greedy)
		t.Logf("attempt %d planner: %+v", i+1, planner)

		// Exactly-once across plan-step migrations is not load-dependent:
		// any duplicate is a protocol bug, never jitter.
		if planner.Duplicates != 0 {
			t.Fatalf("planner run published %d duplicate outputs", planner.Duplicates)
		}
		if greedy.Delivered == 0 || planner.Delivered == 0 {
			t.Fatal("a run delivered nothing")
		}
		if greedy.PlanCommits != 0 || greedy.PlanAborts != 0 {
			t.Fatalf("greedy arm ran the planner: commits=%d aborts=%d",
				greedy.PlanCommits, greedy.PlanAborts)
		}
		if raceEnabled {
			// Race instrumentation inflates every wall step ~10x, which
			// stalls plan execution past the measurement window; the
			// airtime comparison holds only on uninstrumented builds.
			return
		}
		if planner.PlanCommits >= 1 && planner.CrossChannelShare < greedy.CrossChannelShare {
			return
		}
		lastErr = fmt.Sprintf("planner commits=%d cross=%.3f vs greedy cross=%.3f (want >=1 commit and a lower share)",
			planner.PlanCommits, planner.CrossChannelShare, greedy.CrossChannelShare)
	}
	t.Fatal(lastErr)
}

func TestPlacementJSONRoundTrips(t *testing.T) {
	rows := []PlacementOutcome{
		{Mode: "greedy", Ingested: 150, Delivered: 148, Lost: 2, CrossChannelShare: 0.81},
		{Mode: "planner", Ingested: 150, Delivered: 150, PlanCommits: 4, CrossChannelShare: 0.45,
			ChannelAirtimeSec: []float64{1.8, 1.7, 1.7, 1.6}},
	}
	var buf bytes.Buffer
	if err := WritePlacementJSON(&buf, PlacementScenario{Seed: 5}, rows); err != nil {
		t.Fatal(err)
	}
	var rep PlacementReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(rep.Rows) != 2 || rep.Rows[1].PlanCommits != 4 || rep.Rows[0].Mode != "greedy" {
		t.Fatalf("round-trip mismatch: %+v", rep)
	}
	if !strings.Contains(buf.String(), `"cross_channel_share"`) {
		t.Fatal("artifact missing cross_channel_share field")
	}
}
