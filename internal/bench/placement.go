package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/controller"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/operator"
	"mobistreams/internal/phone"
	"mobistreams/internal/placement"
	"mobistreams/internal/region"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
	"mobistreams/internal/workload"
)

// PlacementScenario configures one placement-planner experiment run: several
// independent identity pipelines spread over a multi-channel WiFi region
// under Poisson churn, scheduled either by the greedy per-phone scorer or by
// the topology-aware placement planner. Round-robin channel assignment
// scatters every pipeline across channels at start, so every hop initially
// burns two cells of airtime — the structural waste the planner's
// pack-to-empty pass exists to remove, and the greedy baseline never sees.
type PlacementScenario struct {
	// Planner selects the topology-aware planner; false runs the greedy
	// scorer alone (the baseline arm).
	Planner bool
	// Phones is the region population (default 128).
	Phones int
	// Channels is the WiFi channel/AP domain count (default 4).
	Channels int
	// Pipelines is the number of independent 3-slot chains (default 4).
	Pipelines int
	// Speedup is the clock scale (default 150). Plan execution is paced
	// against simulated time — a migration's transfer deadline is 60
	// simulated seconds — so the speedup bounds how much wall-clock
	// scheduling stall a plan step can absorb before it spuriously times
	// out and aborts the plan. 150 keeps the whole comparison under ~15 s
	// of wall time while giving each step hundreds of milliseconds of
	// slack on a contended CI runner.
	Speedup float64
	// Warmup precedes the measurement window (default one checkpoint
	// period); Measure is the churn window (default 120 s); Drain flushes
	// the tail (default 15 s).
	CheckpointPeriod time.Duration
	Warmup           time.Duration
	Measure          time.Duration
	Drain            time.Duration
	// SourcePeriod is the ingest interval, rotated across pipelines
	// (default 700 ms).
	SourcePeriod time.Duration
	// MeanLeave / MeanJoin are the Poisson churn means (defaults 20 s /
	// 45 s); CliffShare splits leaves between battery cliffs and commuter
	// walks (default 0.6).
	MeanLeave  time.Duration
	MeanJoin   time.Duration
	CliffShare float64
	// WalkSpeed (default 4 m/s) and RadiusM (default 120 m) shape the
	// commuter trace; BatteryJoules (default 150) and CliffFraction
	// (default 0.08) shape the battery cliff.
	WalkSpeed     float64
	RadiusM       float64
	BatteryJoules float64
	CliffFraction float64
	WiFiBps       float64
	WiFiLoss      float64
	Seed          int64
}

func (s *PlacementScenario) applyDefaults() {
	if s.Phones <= 0 {
		s.Phones = 128
	}
	if s.Channels <= 0 {
		s.Channels = 4
	}
	if s.Pipelines <= 0 {
		s.Pipelines = 4
	}
	if s.Speedup <= 0 {
		s.Speedup = 150
	}
	if s.CheckpointPeriod <= 0 {
		s.CheckpointPeriod = 30 * time.Second
	}
	if s.Warmup <= 0 {
		s.Warmup = s.CheckpointPeriod
	}
	if s.Measure <= 0 {
		s.Measure = 120 * time.Second
	}
	if s.Drain <= 0 {
		s.Drain = 15 * time.Second
	}
	if s.SourcePeriod <= 0 {
		s.SourcePeriod = 700 * time.Millisecond
	}
	if s.MeanLeave <= 0 {
		s.MeanLeave = 20 * time.Second
	}
	if s.MeanJoin <= 0 {
		s.MeanJoin = 45 * time.Second
	}
	if s.CliffShare <= 0 {
		s.CliffShare = 0.6
	}
	if s.WalkSpeed <= 0 {
		s.WalkSpeed = 4
	}
	if s.RadiusM <= 0 {
		s.RadiusM = 120
	}
	if s.BatteryJoules <= 0 {
		s.BatteryJoules = 150
	}
	if s.CliffFraction <= 0 {
		s.CliffFraction = 0.08
	}
	if s.WiFiBps <= 0 {
		s.WiFiBps = 3e6
	}
	if s.WiFiLoss == 0 {
		s.WiFiLoss = 0.02
	}
}

// PlacementOutcome is one placement run's result, JSON-tagged for the CI
// artifact.
type PlacementOutcome struct {
	Mode              string    `json:"mode"` // "greedy" or "planner"
	Ingested          int64     `json:"ingested"`
	Delivered         int64     `json:"delivered"`
	Lost              int64     `json:"tuples_lost"`
	Duplicates        int64     `json:"duplicates"`
	ThroughputTPS     float64   `json:"throughput_tps"`
	DowntimeSec       float64   `json:"downtime_sec"`
	Migrations        int       `json:"migrations"`
	Recoveries        int       `json:"recoveries"`
	PlanCommits       int       `json:"plan_commits"`
	PlanAborts        int       `json:"plan_aborts"`
	CrossChannelShare float64   `json:"cross_channel_share"`
	ChannelAirtimeSec []float64 `json:"channel_airtime_sec"`
	Departures        int       `json:"departures"`
	Joins             int       `json:"joins"`
	Dead              bool      `json:"region_dead"`
}

// placementGraph builds n independent identity chains c<i>a -> c<i>b ->
// c<i>c, one operator per slot. Slot names sort chain-major, so the region's
// in-order initial placement puts each chain on consecutive phones — and
// round-robin channel assignment therefore fans every chain out across
// channels.
func placementGraph(pipelines int) (*graph.Graph, error) {
	var b graph.Builder
	for i := 1; i <= pipelines; i++ {
		src := fmt.Sprintf("S%d", i)
		mid := fmt.Sprintf("M%d", i)
		sink := fmt.Sprintf("K%d", i)
		b.AddOperator(src, fmt.Sprintf("c%da", i))
		b.AddOperator(mid, fmt.Sprintf("c%db", i))
		b.AddOperator(sink, fmt.Sprintf("c%dc", i))
		b.Chain(src, mid, sink)
	}
	return b.Build()
}

func placementRegistry(pipelines int) operator.Registry {
	clone := func(t *tuple.Tuple) *tuple.Tuple { return t.Clone() }
	mapOp := func(id string, cost time.Duration) operator.Factory {
		return func() operator.Operator {
			m := operator.NewMap(id, clone)
			m.CostFn = operator.FixedCost(cost)
			return m
		}
	}
	reg := operator.Registry{}
	for i := 1; i <= pipelines; i++ {
		reg[fmt.Sprintf("S%d", i)] = mapOp(fmt.Sprintf("S%d", i), 100*time.Millisecond)
		reg[fmt.Sprintf("M%d", i)] = mapOp(fmt.Sprintf("M%d", i), 200*time.Millisecond)
		reg[fmt.Sprintf("K%d", i)] = mapOp(fmt.Sprintf("K%d", i), 100*time.Millisecond)
	}
	return reg
}

// RunPlacement executes one placement scenario to completion.
func RunPlacement(s PlacementScenario) (PlacementOutcome, error) {
	s.applyDefaults()
	g, err := placementGraph(s.Pipelines)
	if err != nil {
		return PlacementOutcome{}, err
	}
	clk := clock.NewScaled(s.Speedup)
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   0.16e6,
		DownBitsPerSecond: 0.7e6,
		Latency:           80 * time.Millisecond,
		SharedBps:         2e6,
	})
	ledger := scheduler.NewCooldowns()
	ctrlCfg := controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: s.CheckpointPeriod,
		PingInterval:     30 * time.Second,
		PingTimeout:      10 * time.Second,
		DebounceWindow:   2 * time.Second,
		ScheduleTick:     5 * time.Second,
		Sched: scheduler.New(scheduler.Config{
			Scorer: &scheduler.HeuristicScorer{
				BatteryHorizon: 60 * time.Second,
				LowFraction:    0.15,
				DepartHorizon:  45 * time.Second,
			},
			Cooldown:   20 * time.Second,
			MaxPerTick: 2,
			Cooldowns:  ledger,
		}),
	}
	if s.Planner {
		ctrlCfg.Planner = scheduler.NewPlanner(placement.New(placement.Config{
			SparesPerDomain: 1,
			HazardHorizon:   75 * time.Second,
			MaxMigrations:   4,
		}), ledger)
		ctrlCfg.Planner.Cooldown = 20 * time.Second
	}
	ctrl := controller.New(ctrlCfg)

	gaps := &gapTracker{allowance: 5 * s.SourcePeriod}
	var measureEnd atomic.Int64
	r, err := region.New(region.Config{
		ID:                "r1",
		Graph:             g,
		Registry:          placementRegistry(s.Pipelines),
		Scheme:            ft.MSScheme,
		Phones:            s.Phones,
		Clock:             clk,
		WiFi:              simnet.WiFiConfig{BitsPerSecond: s.WiFiBps, LossProb: s.WiFiLoss, Channels: s.Channels, Seed: s.Seed},
		Cell:              cell,
		ControllerID:      ctrl.ID(),
		PhoneCfg:          phone.Config{BatteryJoules: s.BatteryJoules},
		Broadcast:         broadcast.Config{BlockSize: 1024},
		PreserveBroadcast: true,
		RadiusM:           s.RadiusM,
		OnSinkOutput: func(_ simnet.NodeID, _ *tuple.Tuple) {
			gaps.tick(clk.Now(), time.Duration(measureEnd.Load()))
		},
	})
	if err != nil {
		return PlacementOutcome{}, err
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()

	clk.Sleep(s.Warmup)

	// Ingest: one tuple per SourcePeriod, rotated across the pipelines so
	// every chain carries identical load.
	var ingested int64
	gen := workload.NewGenerator(clk)
	gen.StartBCPBus(func(_ string, v interface{}, _ int, _ string) {
		n := atomic.AddInt64(&ingested, 1)
		src := fmt.Sprintf("S%d", int((n-1)%int64(s.Pipelines))+1)
		r.Ingest(src, v, 2048, "count")
	}, workload.BCPBusConfig{Period: s.SourcePeriod, Seed: s.Seed})

	start := clk.Now()
	end := start + s.Measure
	measureEnd.Store(int64(end))
	r.Throughput.Start(start)
	r.Latency.Reset()
	gaps.open(start)

	var churnMu sync.Mutex
	victimised := make(map[simnet.NodeID]bool)
	var joins int64
	slots := g.Slots()
	churn := workload.NewGenerator(clk)
	churn.StartChurn(workload.ChurnHooks{
		Victim: func(rng *rand.Rand) (simnet.NodeID, bool) {
			slot := slots[rng.Intn(len(slots))]
			id, ok := r.Placement(slot)
			if !ok || r.Failed(id) || r.Departed(id) {
				return "", false
			}
			churnMu.Lock()
			defer churnMu.Unlock()
			if victimised[id] {
				return "", false
			}
			victimised[id] = true
			return id, true
		},
		Cliff: func(id simnet.NodeID, fraction float64) {
			if ph := r.Phone(id); ph != nil && !ph.Dead() {
				ph.Revive(fraction)
			}
		},
		Pos: func(id simnet.NodeID) phone.Position {
			if ph := r.Phone(id); ph != nil {
				return ph.Position()
			}
			return phone.Position{}
		},
		SetPos: func(id simnet.NodeID, p phone.Position) {
			if ph := r.Phone(id); ph != nil {
				ph.SetPosition(p)
			}
		},
		SetVel: func(id simnet.NodeID, vx, vy float64) {
			if ph := r.Phone(id); ph != nil {
				ph.SetVelocity(vx, vy)
			}
		},
		Departed: func(id simnet.NodeID) {
			r.DepartPhone(id)
			ctrl.NotifyDeparture(r.ID(), id)
		},
		Join: func(int) {
			r.AddPhone(phone.Config{BatteryJoules: s.BatteryJoules})
			atomic.AddInt64(&joins, 1)
		},
	}, workload.ChurnConfig{
		MeanLeave:     s.MeanLeave,
		MeanJoin:      s.MeanJoin,
		CliffShare:    s.CliffShare,
		CliffFraction: s.CliffFraction,
		WalkSpeed:     s.WalkSpeed,
		RadiusM:       s.RadiusM,
		Seed:          s.Seed,
	})

	clk.Sleep(s.Measure)
	churn.Stop()
	gen.Stop()
	clk.Sleep(s.Drain)

	mode := "greedy"
	if s.Planner {
		mode = "planner"
	}
	rep := r.Report(clk.Now())
	commits, aborts := ctrl.PlanStats("r1")
	out := PlacementOutcome{
		Mode:              mode,
		Ingested:          atomic.LoadInt64(&ingested),
		Delivered:         r.Throughput.Count(),
		Duplicates:        r.DuplicateOutputs(),
		Migrations:        ctrl.Migrations("r1"),
		Recoveries:        ctrl.Recoveries("r1"),
		PlanCommits:       commits,
		PlanAborts:        aborts,
		CrossChannelShare: rep.CrossChannelShare,
		Departures:        ctrl.Departures("r1"),
		Joins:             int(atomic.LoadInt64(&joins)),
		Dead:              ctrl.RegionDead("r1"),
	}
	for _, a := range rep.ChannelAirtime {
		out.ChannelAirtimeSec = append(out.ChannelAirtimeSec, a.Seconds())
	}
	out.Lost = out.Ingested - out.Delivered
	if out.Lost < 0 {
		out.Lost = 0
	}
	out.ThroughputTPS = float64(out.Delivered) / s.Measure.Seconds()
	out.DowntimeSec = gaps.closeAt(end).Seconds()
	r.Stop()
	ctrl.Stop()
	return out, nil
}

// PlacementComparison runs the greedy baseline and the planner under an
// identical churn schedule (same seed).
func PlacementComparison(base PlacementScenario) ([]PlacementOutcome, error) {
	var rows []PlacementOutcome
	for _, planner := range []bool{false, true} {
		s := base
		s.Planner = planner
		o, err := RunPlacement(s)
		if err != nil {
			return nil, fmt.Errorf("placement planner=%v: %w", planner, err)
		}
		rows = append(rows, o)
	}
	return rows, nil
}

// PlacementReport is the machine-readable experiment artifact
// (BENCH_placement.json in CI).
type PlacementReport struct {
	Experiment string             `json:"experiment"`
	Seed       int64              `json:"seed"`
	Phones     int                `json:"phones"`
	Channels   int                `json:"channels"`
	MeasureSec float64            `json:"measure_sec"`
	Rows       []PlacementOutcome `json:"rows"`
}

// WritePlacementJSON emits the placement comparison as indented JSON.
func WritePlacementJSON(w io.Writer, base PlacementScenario, rows []PlacementOutcome) error {
	base.applyDefaults()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(PlacementReport{
		Experiment: "placement: greedy scorer vs topology-aware planner",
		Seed:       base.Seed,
		Phones:     base.Phones,
		Channels:   base.Channels,
		MeasureSec: base.Measure.Seconds(),
		Rows:       rows,
	})
}

// WritePlacementTable renders the comparison for humans.
func WritePlacementTable(w io.Writer, rows []PlacementOutcome) {
	fmt.Fprintln(w, "Placement — greedy scorer vs topology-aware planner")
	fmt.Fprintf(w, "%-8s %9s %10s %5s %9s %11s %11s %7s %7s %10s\n",
		"mode", "ingested", "delivered", "lost", "downtime", "migrations", "recoveries", "commit", "abort", "cross")
	for _, o := range rows {
		fmt.Fprintf(w, "%-8s %9d %10d %5d %8.1fs %11d %11d %7d %7d %9.1f%%\n",
			o.Mode, o.Ingested, o.Delivered, o.Lost, o.DowntimeSec,
			o.Migrations, o.Recoveries, o.PlanCommits, o.PlanAborts, o.CrossChannelShare*100)
	}
}
