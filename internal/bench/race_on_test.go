//go:build race

package bench

// raceEnabled reports that the race detector is instrumenting this build;
// wall-clock-sensitive simulated-time assertions relax under it.
const raceEnabled = true
