package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"mobistreams/internal/federation"
	"mobistreams/internal/gossip"
	"mobistreams/internal/operator"
	"mobistreams/internal/simnet"
	"mobistreams/internal/transport"
	"mobistreams/internal/tuple"
	"mobistreams/internal/wire"
	"mobistreams/internal/xregion"
)

// FederationScenario configures the federated control-plane experiment:
// a sweep over region count with a fixed population per region, run once
// over the gossip overlay (federation agents on the epidemic broadcast
// layer) and once over a unicast hub (the lead addresses every region
// point-to-point).
//
// The measured phase is the lead disseminating fleet caps to every
// region — the one-to-city control broadcast the federation exists for.
// Under gossip the relays carry the fan-out, so the busiest node's
// control egress stays flat as the fleet grows; under unicast the lead's
// egress is the whole fan-out and grows linearly with the region count.
// Everything runs on the deterministic in-memory fabric
// (transport.Mesh), so byte counts and convergence rounds are exact
// functions of the seed.
type FederationScenario struct {
	// RegionCounts is the sweep (default 4, 8, 16, 32, 64).
	RegionCounts []int
	// PhonesPerRegion is each region's reported population (default 50).
	// The headline metric divides the busiest node's control egress by
	// it: bytes the backhaul spends per phone it fronts.
	PhonesPerRegion int
	// CapsEpochs is how many fleet-caps broadcasts the measured phase
	// publishes (default 8 — enough that eager-push bytes dominate
	// one-off costs).
	CapsEpochs int
	// RoundsPerEpoch is how many anti-entropy rounds each caps epoch is
	// given (default 16). Every sweep point runs the same count, so the
	// measured bytes are a per-node rate over identical simulated time —
	// comparing "bytes until converged" instead would conflate fan-out
	// with convergence latency, which legitimately grows with the
	// overlay. Convergence within the window is still asserted.
	RoundsPerEpoch int
	// Tuples is the cross-region stream workload: that many sequenced
	// envelopes from the last region into the downtown region (default 30).
	Tuples int
	// DupEvery resends every that-many-th envelope, the way a backhaul
	// redial would (default 3). The receiver must drop every resend.
	DupEvery int
	// MaxRounds bounds anti-entropy rounds per convergence wait (default 64).
	MaxRounds int
	// Gossip tunes the overlay. Defaults: Fanout 3, LazyAfter 8 (depth
	// for 64-region floods), MaxDigest 8 (constant-size digests — the
	// flat-fan-out claim dies without the bound).
	Gossip gossip.Config
	Seed   int64
}

func (s *FederationScenario) applyDefaults() {
	if len(s.RegionCounts) == 0 {
		s.RegionCounts = []int{4, 8, 16, 32, 64}
	}
	if s.PhonesPerRegion <= 0 {
		s.PhonesPerRegion = 50
	}
	if s.CapsEpochs <= 0 {
		s.CapsEpochs = 8
	}
	if s.RoundsPerEpoch <= 0 {
		s.RoundsPerEpoch = 16
	}
	if s.Tuples <= 0 {
		s.Tuples = 30
	}
	if s.DupEvery <= 0 {
		s.DupEvery = 3
	}
	if s.MaxRounds <= 0 {
		s.MaxRounds = 64
	}
	if s.Gossip.LazyAfter == 0 {
		s.Gossip.LazyAfter = 8
	}
	if s.Gossip.MaxDigest == 0 {
		s.Gossip.MaxDigest = 8
	}
}

// FederationPoint is one sweep point's result, JSON-tagged for the CI
// artifact.
type FederationPoint struct {
	Mode            string `json:"mode"` // "gossip" or "unicast"
	Regions         int    `json:"regions"`
	PhonesPerRegion int    `json:"phones_per_region"`
	// JoinRounds is how many anti-entropy rounds membership took to
	// converge after every region joined at once (unicast: the fixed
	// two-round hub exchange).
	JoinRounds int `json:"join_rounds"`
	// CapsRoundsMean is the mean rounds per caps broadcast until every
	// region held the new epoch.
	CapsRoundsMean float64 `json:"caps_rounds_mean"`
	// LeadCtrlBytes / MaxCtrlBytes are control-class egress during the
	// measured caps phase: the lead's, and the busiest node's.
	LeadCtrlBytes int64 `json:"lead_ctrl_bytes"`
	MaxCtrlBytes  int64 `json:"max_ctrl_bytes"`
	// CtrlBytesPerPhone is MaxCtrlBytes over the phones one region
	// fronts — the headline: what the busiest backhaul node spends per
	// phone it serves, across the whole caps phase.
	CtrlBytesPerPhone float64 `json:"ctrl_bytes_per_phone"`
	// Cross-region stream counters (gossip mode only; the unicast
	// baseline measures control fan-out, not data routing).
	XRegionSent        uint64 `json:"xregion_sent"`
	XRegionRetries     uint64 `json:"xregion_retries"`
	XRegionDelivered   uint64 `json:"xregion_delivered"`
	XRegionDupsDropped uint64 `json:"xregion_dups_dropped"`
	// XRegionDupOutputs counts envelopes the consumer saw more than once
	// — the exactly-once property, pinned at 0 by the CI gate.
	XRegionDupOutputs uint64 `json:"xregion_dup_outputs"`
	// AggOutputs counts tuples the downtown aggregation stage emitted
	// from the delivered envelopes.
	AggOutputs int `json:"agg_outputs"`
}

// runFederationGossip measures one sweep point on the gossip overlay.
func runFederationGossip(s FederationScenario, regions int) (FederationPoint, error) {
	p := FederationPoint{Mode: "gossip", Regions: regions, PhonesPerRegion: s.PhonesPerRegion}
	mesh := transport.NewMesh(s.Seed + int64(regions))
	ids := make([]simnet.NodeID, regions)
	mems := make([]*transport.Mem, regions)
	agents := make([]*federation.Agent, regions)
	gcfg := s.Gossip
	gcfg.Seed = s.Seed
	var at int64
	for i := 0; i < regions; i++ {
		ids[i] = simnet.NodeID(fmt.Sprintf("fed%02d", i))
		mems[i] = mesh.Attach(ids[i])
	}
	for i := range ids {
		a := federation.NewAgent(ids[i], mems[i], federation.Config{
			Region: fmt.Sprintf("r%02d", i),
			Lead:   i == 0,
			Gossip: gcfg,
			Now:    func() int64 { at++; return at },
		})
		a.SetPeers(ids)
		agents[i] = a
		mem := mems[i]
		mem.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
			a.Handle(from, class, frame)
		})
	}

	// settle pumps anti-entropy rounds until done() holds, returning the
	// round count (0 = the eager flood alone sufficed).
	settle := func(done func() bool) (int, error) {
		mesh.Drain()
		for round := 0; ; round++ {
			if done() {
				return round, nil
			}
			if round >= s.MaxRounds {
				return round, fmt.Errorf("federation bench: no convergence within %d rounds at %d regions", s.MaxRounds, regions)
			}
			for _, a := range agents {
				a.Tick()
			}
			mesh.Drain()
		}
	}

	// Phase 1: every region joins at once; count rounds to full membership.
	for _, a := range agents {
		a.Join()
	}
	var err error
	p.JoinRounds, err = settle(func() bool {
		for _, a := range agents {
			if len(a.Members()) != regions {
				return false
			}
		}
		return true
	})
	if err != nil {
		return p, err
	}

	// Phase 2 (unmeasured): every region publishes one telemetry rollup
	// so the lead has a real aggregate to cap against.
	for i, a := range agents {
		a.PublishRollup(wire.Rollup{
			Phones: s.PhonesPerRegion, Idle: i % 5, Backlog: i % 7,
			BatteryRisk: i % 2, OutTuples: uint64(10 * i),
		})
	}
	want := regions * s.PhonesPerRegion
	if _, err := settle(func() bool {
		agg := agents[0].Aggregate()
		return agg.Phones == want
	}); err != nil {
		return p, err
	}

	// Phase 3 (measured): CapsEpochs times, one region's telemetry
	// changes, the lead re-aggregates on its own tick and broadcasts the
	// new fleet caps, and every region must hold them — the full
	// telemetry-up, caps-down control loop. Each epoch runs a fixed
	// RoundsPerEpoch rounds regardless of sweep point, so the byte
	// deltas are per-node rates over identical simulated time.
	base := make([]int64, regions)
	for i, m := range mems {
		base[i] = m.SentBytes(simnet.ClassControl)
	}
	// Every member's epoch is 1 after phase 2, so the aggregate epoch —
	// the sum — starts at the region count and each rollup below bumps
	// it by one.
	capsEpoch := uint64(regions)
	totalRounds := 0
	for e := 0; e < s.CapsEpochs; e++ {
		agents[1].PublishRollup(wire.Rollup{
			Phones: s.PhonesPerRegion, Idle: 1, Backlog: 3 + e, BatteryRisk: 1,
			OutTuples: uint64(100 + e),
		})
		capsEpoch++
		converged := func() bool {
			for _, a := range agents {
				caps, ok := a.Caps()
				if !ok || caps.Epoch < capsEpoch {
					return false
				}
			}
			return true
		}
		at := 0
		mesh.Drain()
		for round := 1; round <= s.RoundsPerEpoch; round++ {
			for _, a := range agents {
				a.Tick()
			}
			mesh.Drain()
			if at == 0 && converged() {
				at = round
			}
		}
		if at == 0 {
			return p, fmt.Errorf("federation bench: caps epoch %d not fleet-wide within %d rounds at %d regions",
				capsEpoch, s.RoundsPerEpoch, regions)
		}
		totalRounds += at
	}
	p.CapsRoundsMean = float64(totalRounds) / float64(s.CapsEpochs)
	p.LeadCtrlBytes = mems[0].SentBytes(simnet.ClassControl) - base[0]
	for i, m := range mems {
		if d := m.SentBytes(simnet.ClassControl) - base[i]; d > p.MaxCtrlBytes {
			p.MaxCtrlBytes = d
		}
	}
	p.CtrlBytesPerPhone = float64(p.MaxCtrlBytes) / float64(s.PhonesPerRegion)

	// Phase 4: cross-region stream — the last region (a bus line at the
	// city's edge) feeds the downtown aggregation region (r01) sequenced
	// envelopes, resending every DupEvery-th the way a backhaul redial
	// would. The consumer runs the delivered readings through the shared
	// xregion stage vocabulary's aggregate operator; dedup must make the
	// retries invisible to it.
	src, dst := agents[regions-1], agents[1]
	agg, err := xregion.NewStageOp("agg", "downtown")
	if err != nil {
		return p, err
	}
	seen := make(map[uint64]int)
	dst.RouteFunc("readings", func(env wire.XRegionEnv) {
		seen[env.Seq]++
		if seen[env.Seq] > 1 {
			p.XRegionDupOutputs++
			return
		}
		t := &tuple.Tuple{
			Seq: env.Seq, Source: env.FromRegion, Kind: "reading",
			Size: len(env.Payload), Value: float64(env.Seq),
		}
		outs, err := operator.Run(agg, "", t)
		if err == nil {
			p.AggOutputs += len(outs)
		}
	})
	for i := 1; i <= s.Tuples; i++ {
		payload := []byte(fmt.Sprintf("reading/%d/%d", i, s.Seed))
		seq, err := src.SendTuple("r01", "readings", payload)
		if err != nil {
			return p, err
		}
		if i%s.DupEvery == 0 {
			if err := src.Resend("r01", "readings", seq, payload); err != nil {
				return p, err
			}
			p.XRegionRetries++
		}
	}
	mesh.Drain()
	st := dst.Stats()
	p.XRegionSent = src.Stats().TuplesSent
	p.XRegionDelivered = st.TuplesDelivered
	p.XRegionDupsDropped = st.DupsDropped
	return p, nil
}

// runFederationUnicast measures one sweep point on the unicast baseline:
// the lead is a hub that addresses every region directly, so the whole
// caps fan-out is its own egress.
func runFederationUnicast(s FederationScenario, regions int) (FederationPoint, error) {
	p := FederationPoint{Mode: "unicast", Regions: regions, PhonesPerRegion: s.PhonesPerRegion}
	mesh := transport.NewMesh(s.Seed + int64(regions))
	ids := make([]simnet.NodeID, regions)
	mems := make([]*transport.Mem, regions)
	capsGot := make([]int, regions)
	for i := 0; i < regions; i++ {
		ids[i] = simnet.NodeID(fmt.Sprintf("uni%02d", i))
		mems[i] = mesh.Attach(ids[i])
		i := i
		mems[i].Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
			if wire.FrameKind(frame) == wire.KindRollup {
				if ru, err := wire.DecodeRollup(frame); err == nil && ru.Region == federation.FleetScope {
					capsGot[i]++
				}
			}
		})
	}

	// Join: every region tells the hub its rollup; the hub acks each.
	// Two rounds by construction — the hub topology has no discovery.
	for i := 1; i < regions; i++ {
		ru := wire.Rollup{
			Region: fmt.Sprintf("r%02d", i), Lead: ids[i], Epoch: 1,
			Phones: s.PhonesPerRegion, Idle: i % 5, Backlog: i % 7, BatteryRisk: i % 2,
		}
		if err := mems[i].Tell(ids[0], simnet.ClassControl, wire.AppendRollup(nil, &ru)); err != nil {
			return p, err
		}
	}
	mesh.Drain()
	ack := wire.Rollup{Region: "r00", Lead: ids[0], Epoch: 1, Phones: s.PhonesPerRegion}
	ackFrame := wire.AppendRollup(nil, &ack)
	for i := 1; i < regions; i++ {
		if err := mems[0].Tell(ids[i], simnet.ClassControl, ackFrame); err != nil {
			return p, err
		}
	}
	mesh.Drain()
	p.JoinRounds = 2

	// Measured phase, mirroring the gossip run's control loop: one
	// region's telemetry changes (a Tell up to the hub), and the hub
	// pushes the new caps to every region — one Tell per region per
	// epoch, all of it the hub's own egress.
	base := make([]int64, regions)
	for i, m := range mems {
		base[i] = m.SentBytes(simnet.ClassControl)
	}
	want := regions * s.PhonesPerRegion
	for e := 0; e < s.CapsEpochs; e++ {
		up := wire.Rollup{
			Region: "r01", Lead: ids[1], Epoch: uint64(2 + e),
			Phones: s.PhonesPerRegion, Idle: 1, Backlog: 3 + e, BatteryRisk: 1,
		}
		if err := mems[1].Tell(ids[0], simnet.ClassControl, wire.AppendRollup(nil, &up)); err != nil {
			return p, err
		}
		mesh.Drain()
		caps := wire.Rollup{
			Region: federation.FleetScope, Lead: ids[0],
			Epoch: uint64(regions + e + 1), Phones: want, Backlog: 3 + e,
		}
		frame := wire.AppendRollup(nil, &caps)
		for i := 1; i < regions; i++ {
			if err := mems[0].Tell(ids[i], simnet.ClassControl, frame); err != nil {
				return p, err
			}
		}
		mesh.Drain()
	}
	for i := 1; i < regions; i++ {
		if capsGot[i] != s.CapsEpochs {
			return p, fmt.Errorf("federation bench: unicast region %d received %d/%d caps", i, capsGot[i], s.CapsEpochs)
		}
	}
	p.CapsRoundsMean = 1
	p.LeadCtrlBytes = mems[0].SentBytes(simnet.ClassControl) - base[0]
	for i, m := range mems {
		if d := m.SentBytes(simnet.ClassControl) - base[i]; d > p.MaxCtrlBytes {
			p.MaxCtrlBytes = d
		}
	}
	p.CtrlBytesPerPhone = float64(p.MaxCtrlBytes) / float64(s.PhonesPerRegion)
	return p, nil
}

// FederationComparison sweeps region counts in both modes. Rows come out
// grouped by mode, each group in sweep order.
func FederationComparison(base FederationScenario) ([]FederationPoint, error) {
	base.applyDefaults()
	var rows []FederationPoint
	for _, mode := range []string{"gossip", "unicast"} {
		for _, n := range base.RegionCounts {
			if n < 3 {
				return nil, fmt.Errorf("federation bench: region count %d below minimum 3", n)
			}
			var (
				p   FederationPoint
				err error
			)
			if mode == "gossip" {
				p, err = runFederationGossip(base, n)
			} else {
				p, err = runFederationUnicast(base, n)
			}
			if err != nil {
				return nil, err
			}
			rows = append(rows, p)
		}
	}
	return rows, nil
}

// FederationReport is the machine-readable experiment artifact
// (BENCH_federation.json in CI).
type FederationReport struct {
	Experiment      string            `json:"experiment"`
	Seed            int64             `json:"seed"`
	PhonesPerRegion int               `json:"phones_per_region"`
	CapsEpochs      int               `json:"caps_epochs"`
	Rows            []FederationPoint `json:"rows"`
}

// WriteFederationJSON emits the sweep as indented JSON.
func WriteFederationJSON(w io.Writer, base FederationScenario, rows []FederationPoint) error {
	base.applyDefaults()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FederationReport{
		Experiment:      "federation: control fan-out vs region count, gossip overlay vs unicast hub",
		Seed:            base.Seed,
		PhonesPerRegion: base.PhonesPerRegion,
		CapsEpochs:      base.CapsEpochs,
		Rows:            rows,
	})
}

// WriteFederationTable renders the sweep for humans.
func WriteFederationTable(w io.Writer, rows []FederationPoint) {
	fmt.Fprintln(w, "Federation — control fan-out vs region count (caps phase, busiest node)")
	fmt.Fprintf(w, "%-8s %8s %6s %11s %11s %11s %11s %6s %6s %5s\n",
		"mode", "regions", "join", "caps rnds", "lead B", "max B", "B/phone", "xsent", "xdlvd", "xdup")
	for _, p := range rows {
		fmt.Fprintf(w, "%-8s %8d %6d %11.1f %11d %11d %11.1f %6d %6d %5d\n",
			p.Mode, p.Regions, p.JoinRounds, p.CapsRoundsMean,
			p.LeadCtrlBytes, p.MaxCtrlBytes, p.CtrlBytesPerPhone,
			p.XRegionSent, p.XRegionDelivered, p.XRegionDupOutputs)
	}
}
