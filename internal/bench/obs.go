package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"mobistreams/internal/node"
)

// ObsReport is the machine-readable instrumentation-overhead measurement
// the regression gate consumes (BENCH_obs.json in CI).
type ObsReport struct {
	Iters int `json:"iters"`
	// Per-tuple hot-path latency with observability absent, with
	// histograms on and sampling off, and with every tuple traced.
	OffNsPerOp   float64 `json:"off_ns_per_op"`
	HistNsPerOp  float64 `json:"hist_ns_per_op"`
	TraceNsPerOp float64 `json:"trace_ns_per_op"`
	// ObsOverheadPct is the always-on histogram tax: (hist-off)/off*100.
	ObsOverheadPct float64 `json:"obs_overhead_pct"`
	// TraceAllocsPerOp is the sampling-off allocation count — the
	// zero-allocs invariant with tracing compiled in; pinned at 0.
	TraceAllocsPerOp float64 `json:"trace_allocs_per_op"`
	// TracedAllocsPerOp is the every-tuple-traced allocation count
	// (informational: sampled tracing is off the steady-state path).
	TracedAllocsPerOp float64 `json:"traced_allocs_per_op"`
	Spans             int     `json:"spans"`
}

// RunObs benchmarks the observability layer's hot-path overhead across the
// off / histogram / full-trace modes.
func RunObs(iters int, w io.Writer) ObsReport {
	res := node.RunObsBench(iters)
	rep := ObsReport{
		Iters:             res.Iters,
		OffNsPerOp:        res.OffNsPerOp,
		HistNsPerOp:       res.HistNsPerOp,
		TraceNsPerOp:      res.TraceNsPerOp,
		ObsOverheadPct:    res.OverheadPct,
		TraceAllocsPerOp:  res.HistAllocsPerOp,
		TracedAllocsPerOp: res.TraceAllocsPerOp,
		Spans:             res.Spans,
	}
	fmt.Fprintf(w, "\n=== Observability overhead on the emit path (%d tuples) ===\n", res.Iters)
	fmt.Fprintf(w, "%-22s %12s %14s\n", "mode", "ns/op", "allocs/op")
	fmt.Fprintf(w, "%-22s %12.1f %14s\n", "obs off", res.OffNsPerOp, "-")
	fmt.Fprintf(w, "%-22s %12.1f %14.3f\n", "histograms (no trace)", res.HistNsPerOp, res.HistAllocsPerOp)
	fmt.Fprintf(w, "%-22s %12.1f %14.3f\n", "every tuple traced", res.TraceNsPerOp, res.TraceAllocsPerOp)
	fmt.Fprintf(w, "histogram overhead: %.1f%%; spans recorded: %d\n", res.OverheadPct, res.Spans)
	return rep
}

// WriteObsJSON renders the report machine-readably for the gate.
func WriteObsJSON(w io.Writer, rep ObsReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
