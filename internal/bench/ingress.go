package bench

import (
	"fmt"
	"time"

	"mobistreams/internal/clock"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/node"
	"mobistreams/internal/operator"
	"mobistreams/internal/phone"
	"mobistreams/internal/region"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
)

// IngressConfig parameterises the single-edge ingress micro-benchmark: a
// two-slot pipeline (source slot -> sink slot) flooded with small tuples,
// isolating the node emission/delivery hot path that edge batching
// optimises. The medium models a realistic per-frame cost (MAC/PHY
// framing, contention, link ACK) that batching amortises.
type IngressConfig struct {
	// Tuples is the number of tuples pushed through the edge.
	Tuples int
	// TupleBytes is the payload size (default 512 B — small telemetry
	// tuples, the worst case for per-message overhead).
	TupleBytes int
	// Batch configures edge batching (set Disable for the baseline).
	Batch node.BatchConfig
	// Speedup is the clock scale (default 200). Low enough that modelled
	// airtime dominates scheduler noise in the simulated-time results.
	Speedup float64
	// WiFi overrides the medium; the zero value models 3 Mbps with a
	// 600-byte per-frame overhead and 1 ms propagation delay.
	WiFi simnet.WiFiConfig
	// OnOutput, when non-nil, observes each delivered tuple in order.
	OnOutput func(*tuple.Tuple)
}

// IngressResult reports one ingress run.
type IngressResult struct {
	Delivered   int64
	SimElapsed  time.Duration
	WallElapsed time.Duration
	// SimTuplesPerSec is throughput in simulated time — the medium-level
	// number the paper's figures are denominated in.
	SimTuplesPerSec float64
	// Flushes and MeanBatch summarise how the batcher coalesced.
	Flushes   int64
	MeanBatch float64
}

func (c *IngressConfig) applyDefaults() {
	if c.Tuples <= 0 {
		c.Tuples = 100
	}
	if c.TupleBytes <= 0 {
		c.TupleBytes = 256
	}
	if c.Speedup <= 0 {
		c.Speedup = 100
	}
	if c.WiFi.BitsPerSecond <= 0 {
		c.WiFi = simnet.WiFiConfig{
			BitsPerSecond: 3e6,
			FrameOverhead: 600,
			PropDelay:     3 * time.Millisecond,
		}
	}
	// Benchmark-specific batch bound: at this speedup a full batch's
	// airtime must stay inside the scaled clock's spin window, or OS
	// timer overshoot (hundreds of µs of wall time per sleep) leaks into
	// the simulated-time results and swamps the medium model.
	if !c.Batch.Disable && c.Batch.MaxMsgs == 0 {
		c.Batch.MaxMsgs = 12
	}
}

// ingressGraph is the minimal cross-slot pipeline: one source operator on
// slot i1, one sink operator on slot i2, a single edge between them.
func ingressGraph() (*graph.Graph, operator.Registry, error) {
	var b graph.Builder
	b.AddOperator("IS", "i1").AddOperator("IK", "i2").Chain("IS", "IK")
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	reg := operator.Registry{
		"IS": func() operator.Operator { return operator.NewPassthrough("IS") },
		"IK": func() operator.Operator { return operator.NewPassthrough("IK") },
	}
	return g, reg, nil
}

// RunIngress floods the single-edge pipeline and reports throughput.
func RunIngress(cfg IngressConfig) (IngressResult, error) {
	cfg.applyDefaults()
	g, reg, err := ingressGraph()
	if err != nil {
		return IngressResult{}, err
	}
	clk := clock.NewScaled(cfg.Speedup)
	rcfg := region.Config{
		ID:       "ingress",
		Graph:    g,
		Registry: reg,
		Scheme:   ft.BaseScheme,
		Phones:   2,
		Clock:    clk,
		WiFi:     cfg.WiFi,
		// The flood outlives a stock battery; energy is not under test.
		PhoneCfg: phone.Config{BatteryJoules: 1e12},
		Batch:    cfg.Batch,
	}
	if cfg.OnOutput != nil {
		out := cfg.OnOutput
		rcfg.OnSinkOutput = func(_ simnet.NodeID, t *tuple.Tuple) { out(t) }
	}
	r, err := region.New(rcfg)
	if err != nil {
		return IngressResult{}, err
	}
	r.Start()
	defer r.Stop()

	wallStart := time.Now()
	simStart := clk.Now()
	for i := 0; i < cfg.Tuples; i++ {
		r.Ingest("IS", i, cfg.TupleBytes, "ingress")
	}
	// All tuples are in flight; wait for the sink to drain them.
	deadline := time.Now().Add(60 * time.Second)
	for r.Throughput.Count() < int64(cfg.Tuples) {
		if time.Now().After(deadline) {
			return IngressResult{}, fmt.Errorf("ingress: delivered %d of %d tuples before wall deadline",
				r.Throughput.Count(), cfg.Tuples)
		}
		time.Sleep(100 * time.Microsecond)
	}
	simElapsed := clk.Now() - simStart
	res := IngressResult{
		Delivered:   r.Throughput.Count(),
		SimElapsed:  simElapsed,
		WallElapsed: time.Since(wallStart),
		Flushes:     r.BatchStats().Flushes(),
		MeanBatch:   r.BatchStats().Mean(),
	}
	if simElapsed > 0 {
		res.SimTuplesPerSec = float64(res.Delivered) / simElapsed.Seconds()
	}
	return res, nil
}
