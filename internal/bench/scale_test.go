package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"mobistreams/internal/simnet"
)

// TestScaleGraphShape pins the aggregation-tree sizing: the tree fills the
// phone budget without exceeding it, every leaf feeds exactly one
// aggregator, and every aggregator feeds the sink.
func TestScaleGraphShape(t *testing.T) {
	for _, phones := range []int{8, 16, 32, 64, 128} {
		g, reg, srcOps, err := scaleGraph(phones)
		if err != nil {
			t.Fatalf("%d phones: %v", phones, err)
		}
		slots := len(g.Slots())
		if slots > phones {
			t.Fatalf("%d phones: tree needs %d slots", phones, slots)
		}
		if slots < phones-2 {
			t.Fatalf("%d phones: tree uses only %d slots, wasting idles", phones, slots)
		}
		leaves := scaleLeaves(phones)
		if len(srcOps) != leaves {
			t.Fatalf("%d phones: %d source ops, want %d", phones, len(srcOps), leaves)
		}
		if len(reg) != slots {
			t.Fatalf("%d phones: registry has %d ops, want one per slot", phones, len(reg))
		}
		for _, src := range srcOps {
			if ds := g.Downstream(src); len(ds) != 1 || ds[0][0] != 'A' {
				t.Fatalf("%d phones: leaf %s feeds %v", phones, src, ds)
			}
		}
	}
}

// TestScaleChannelPlan pins the AP association: a fan-in neighbourhood
// (aggregator + its leaves) shares one cell, and the sink holds the last
// channel alone.
func TestScaleChannelPlan(t *testing.T) {
	g, _, _, err := scaleGraph(64)
	if err != nil {
		t.Fatal(err)
	}
	const channels = 4
	plan := scaleChannelPlan("scale", g, channels)
	slots := g.Slots()
	chOf := make(map[string]int, len(slots))
	for i, slot := range slots {
		chOf[slot] = plan(simnet.NodeID(fmt.Sprintf("scale/p%d", i+1)))
	}
	for slot, ch := range chOf {
		if ch < 0 || ch >= channels {
			t.Fatalf("slot %s assigned channel %d", slot, ch)
		}
		if slot == "k0" {
			if ch != channels-1 {
				t.Fatalf("sink on channel %d, want %d", ch, channels-1)
			}
			continue
		}
		if ch == channels-1 {
			t.Fatalf("slot %s shares the sink's channel", slot)
		}
	}
	// Leaves share their aggregator's cell: w1..w8 with a1, w9..w16 with
	// a2, and so on.
	for i := 1; i <= 16; i++ {
		agg := fmt.Sprintf("a%d", (i-1)/scaleFanIn+1)
		leaf := fmt.Sprintf("w%d", i)
		if chOf[leaf] != chOf[agg] {
			t.Fatalf("leaf %s on channel %d, its aggregator %s on %d", leaf, chOf[leaf], agg, chOf[agg])
		}
	}
	if scaleChannelPlan("scale", g, 1) != nil {
		t.Fatal("single-channel plan should be nil (round-robin is fine)")
	}
}

// TestScaleOverhaulBeatsLegacy is the tentpole acceptance check in
// miniature: at a region size past the single medium's saturation point,
// the overhauled data plane (multi-channel, cached routes) must deliver
// well more than the legacy plane under the identical offered load. The
// full 64-phone sweep (≥2x, see README) runs via msbench -exp scale; the
// test uses 32 phones and a shorter window to stay CI-cheap.
func TestScaleOverhaulBeatsLegacy(t *testing.T) {
	base := ScaleScenario{Phones: 32, Measure: 10 * time.Second, Seed: 3}
	if raceEnabled {
		// Race instrumentation inflates every wall step ~10x; slow the
		// scaled clock correspondingly or the saturated runs starve.
		base.Speedup = 50
	}
	// The runs pace simulated time against the wall clock, so CPU
	// contention from sibling test packages (go test ./... runs package
	// binaries in parallel) can starve the tuned run's executors and
	// invert the comparison. Retry a couple of times before declaring a
	// real regression: a genuine data-plane regression fails every
	// attempt, a scheduling stall does not.
	const attempts = 3
	var lastErr string
	for i := 0; i < attempts; i++ {
		legacy := base
		legacy.Channels = 1
		legacy.NoRouteCache = true
		lrow, err := RunScale(legacy)
		if err != nil {
			t.Fatal(err)
		}
		tuned := base
		tuned.Channels = 4
		trow, err := RunScale(tuned)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("attempt %d legacy: %+v", i+1, lrow)
		t.Logf("attempt %d tuned:  %+v", i+1, trow)
		if lrow.Delivered == 0 || trow.Delivered == 0 {
			// A starved run (sibling packages hogging the only core)
			// delivers nothing; that's a scheduling stall, not a
			// data-plane regression — retry like the ratio miss below.
			lastErr = "a run delivered nothing"
			continue
		}
		if raceEnabled {
			// Race instrumentation distorts the scaled clock far past
			// the airtime model; the throughput comparison holds only
			// on uninstrumented builds.
			return
		}
		if ratio := trow.TPS / lrow.TPS; ratio >= 1.3 {
			return
		} else {
			lastErr = fmt.Sprintf("tuned/legacy throughput = %.2fx at 32 phones, want >= 1.3x", ratio)
		}
	}
	t.Fatal(lastErr)
}

func TestScaleJSONRoundTrips(t *testing.T) {
	rows := []ScaleRow{
		{Phones: 64, Leaves: 56, Channels: 1, Mode: "legacy", Delivered: 1000, TPS: 50},
		{Phones: 64, Leaves: 56, Channels: 4, Mode: "tuned", Delivered: 7000, TPS: 350},
	}
	var buf bytes.Buffer
	if err := WriteScaleJSON(&buf, ScaleScenario{Seed: 1}, rows); err != nil {
		t.Fatal(err)
	}
	var rep ScaleReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(rep.Rows) != 2 || rep.Rows[1].TPS != 350 || rep.Rows[0].Mode != "legacy" {
		t.Fatalf("round-trip mismatch: %+v", rep)
	}
	if !strings.Contains(buf.String(), `"tuples_per_sec"`) {
		t.Fatal("artifact missing tuples_per_sec field")
	}
}
