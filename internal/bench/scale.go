package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mobistreams/internal/clock"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/metrics"
	"mobistreams/internal/node"
	"mobistreams/internal/operator"
	"mobistreams/internal/phone"
	"mobistreams/internal/region"
	"mobistreams/internal/simnet"
)

// ScaleScenario configures one region-scale throughput run: an aggregation
// tree sized to the phone count (leaf source slots → fan-in-8 aggregator
// slots → one sink slot), every leaf ingesting telemetry tuples at a fixed
// period. Legacy mode (Channels 1, NoRouteCache) reproduces the pre-
// overhaul data plane: one shared medium, a resolver round-trip per send.
type ScaleScenario struct {
	// Phones is the region population; the graph is sized to use every
	// phone as a slot host (no idles — the data plane is under test).
	Phones int
	// Channels is the WiFi channel count (default 1).
	Channels int
	// NoRouteCache disables the epoch-stamped route cache.
	NoRouteCache bool
	// DisableBatch sends every emission individually.
	DisableBatch bool
	// TupleBytes is the leaf tuple payload size (default 1024).
	TupleBytes int
	// SourcePeriod is each leaf's ingest interval (default 125 ms, i.e.
	// 8 tuples/s per leaf). At the default sizes the aggregate offered
	// load exceeds one channel's capacity from ~32 phones on, which is
	// the wall the sweep exposes.
	SourcePeriod time.Duration
	// Warmup runs before the measurement window (default 3 s).
	Warmup time.Duration
	// Measure is the measurement window (default 20 s).
	Measure time.Duration
	// Speedup is the clock scale (default 200).
	Speedup float64
	// WiFiBps is per-channel capacity (default 3 Mbps); WiFiLoss the UDP
	// loss probability (default 2%); FrameOverhead the per-send framing
	// cost in byte-equivalents (default 600, as in the ingress bench).
	WiFiBps       float64
	WiFiLoss      float64
	FrameOverhead int
	Seed          int64
}

func (s *ScaleScenario) applyDefaults() {
	if s.Phones <= 0 {
		s.Phones = 16
	}
	if s.Channels <= 0 {
		s.Channels = 1
	}
	if s.TupleBytes <= 0 {
		s.TupleBytes = 1024
	}
	if s.SourcePeriod <= 0 {
		s.SourcePeriod = 125 * time.Millisecond
	}
	if s.Warmup <= 0 {
		s.Warmup = 3 * time.Second
	}
	if s.Measure <= 0 {
		s.Measure = 20 * time.Second
	}
	if s.Speedup <= 0 {
		s.Speedup = 200
	}
	if s.WiFiBps <= 0 {
		s.WiFiBps = 3e6
	}
	if s.WiFiLoss == 0 {
		s.WiFiLoss = 0.02
	}
	if s.FrameOverhead <= 0 {
		s.FrameOverhead = 600
	}
}

// scaleFanIn is the aggregation tree's fan-in: eight leaf slots feed one
// aggregator slot.
const scaleFanIn = 8

// scaleLeaves solves the tree shape: the largest leaf count whose tree
// (leaves + aggregators + sink) fits the phone budget.
func scaleLeaves(phones int) int {
	leaves := 1
	for l := 1; l <= phones; l++ {
		aggs := (l + scaleFanIn - 1) / scaleFanIn
		if l+aggs+1 <= phones {
			leaves = l
		}
	}
	return leaves
}

// scaleGraph builds the aggregation tree for a phone budget and returns it
// with its registry and leaf source operator IDs.
func scaleGraph(phones int) (*graph.Graph, operator.Registry, []string, error) {
	leaves := scaleLeaves(phones)
	aggs := (leaves + scaleFanIn - 1) / scaleFanIn
	var b graph.Builder
	reg := operator.Registry{}
	passthrough := func(id string) operator.Factory {
		return func() operator.Operator { return operator.NewPassthrough(id) }
	}
	var srcOps []string
	for i := 0; i < leaves; i++ {
		src := fmt.Sprintf("S%d", i+1)
		b.AddOperator(src, fmt.Sprintf("w%d", i+1))
		reg[src] = passthrough(src)
		srcOps = append(srcOps, src)
	}
	for j := 0; j < aggs; j++ {
		agg := fmt.Sprintf("A%d", j+1)
		b.AddOperator(agg, fmt.Sprintf("a%d", j+1))
		reg[agg] = passthrough(agg)
	}
	b.AddOperator("K", "k0")
	reg["K"] = passthrough("K")
	for i := 0; i < leaves; i++ {
		b.Connect(fmt.Sprintf("S%d", i+1), fmt.Sprintf("A%d", i/scaleFanIn+1))
	}
	for j := 0; j < aggs; j++ {
		b.Connect(fmt.Sprintf("A%d", j+1), "K")
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	return g, reg, srcOps, nil
}

// scaleChannelPlan assigns the tree's phones to WiFi channels the way a
// deployment plans AP association: each aggregator and its leaf
// neighbourhood share one cell (their fan-in stays in-cell, charged once),
// neighbourhoods round-robin over all but the last channel, and the sink
// gets the last channel to itself so the region-wide fan-in hop does not
// contend with leaf traffic. With one channel everything maps to it, which
// is the legacy single medium.
//
// The phone-to-slot mapping mirrors region.New's deterministic layout:
// slots in sorted order onto phones regionID/p1..pN.
func scaleChannelPlan(regionID string, g *graph.Graph, channels int) func(simnet.NodeID) int {
	if channels <= 1 {
		return nil
	}
	groupChannels := channels - 1
	byPhone := make(map[simnet.NodeID]int)
	for i, slot := range g.Slots() {
		id := simnet.NodeID(fmt.Sprintf("%s/p%d", regionID, i+1))
		var ch int
		var n int
		switch {
		case len(slot) > 0 && slot[0] == 'w' && scanIndex(slot[1:], &n):
			ch = ((n - 1) / scaleFanIn) % groupChannels
		case len(slot) > 0 && slot[0] == 'a' && scanIndex(slot[1:], &n):
			ch = (n - 1) % groupChannels
		default: // sink slot k0
			ch = channels - 1
		}
		byPhone[id] = ch
	}
	return func(id simnet.NodeID) int {
		if ch, ok := byPhone[id]; ok {
			return ch
		}
		return -1
	}
}

// scanIndex parses a positive decimal suffix.
func scanIndex(s string, out *int) bool {
	if s == "" {
		return false
	}
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
		n = n*10 + int(r-'0')
	}
	*out = n
	return n > 0
}

// ScaleRow is one scale run's result, JSON-tagged for the CI artifact.
type ScaleRow struct {
	Phones   int    `json:"phones"`
	Leaves   int    `json:"leaves"`
	Channels int    `json:"channels"`
	Mode     string `json:"mode"` // "legacy" or "tuned"
	Ingested int64  `json:"ingested"`
	// Delivered counts sink outputs landing inside the measurement
	// window; TPS divides it by the window. Warmup-admitted tuples still
	// draining through the tree can nudge Delivered slightly above
	// Ingested on unsaturated rows; saturated rows (the ones the CI gate
	// reads) are airtime-capacity-bound either way.
	Delivered      int64   `json:"delivered"`
	TPS            float64 `json:"tuples_per_sec"`
	P99Ms          float64 `json:"p99_latency_ms"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	WallMs         float64 `json:"wall_ms"`
}

// RunScale executes one scale scenario to completion.
func RunScale(s ScaleScenario) (ScaleRow, error) {
	s.applyDefaults()
	g, reg, srcOps, err := scaleGraph(s.Phones)
	if err != nil {
		return ScaleRow{}, err
	}
	slots := len(g.Slots())
	clk := clock.NewScaled(s.Speedup)
	r, err := region.New(region.Config{
		ID:       "scale",
		Graph:    g,
		Registry: reg,
		Scheme:   ft.BaseScheme,
		Phones:   slots,
		Clock:    clk,
		WiFi: simnet.WiFiConfig{
			BitsPerSecond: s.WiFiBps,
			LossProb:      s.WiFiLoss,
			FrameOverhead: s.FrameOverhead,
			Channels:      s.Channels,
			Assign:        scaleChannelPlan("scale", g, s.Channels),
			Seed:          s.Seed,
		},
		// The flood outlives a stock battery; energy is not under test.
		PhoneCfg:     phone.Config{BatteryJoules: 1e12},
		Batch:        node.BatchConfig{Disable: s.DisableBatch},
		NoRouteCache: s.NoRouteCache,
	})
	if err != nil {
		return ScaleRow{}, err
	}
	r.Start()

	// One driver goroutine multiplexes every leaf source on an absolute
	// schedule (offset_i + k×period of simulated time): a single sleeper
	// offers a deterministic load regardless of core count, and scaled-
	// clock overshoot never accumulates into under-offered load.
	var ingested int64
	var measuring atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(s.Seed))
	next := make([]time.Duration, len(srcOps))
	base := clk.Now()
	for i := range srcOps {
		next[i] = base + time.Duration(rng.Int63n(int64(s.SourcePeriod)))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			due := 0
			for i := 1; i < len(next); i++ {
				if next[i] < next[due] {
					due = i
				}
			}
			if wait := next[due] - clk.Now(); wait > 0 {
				clk.Sleep(wait)
			}
			r.Ingest(srcOps[due], due, s.TupleBytes, "telemetry")
			if measuring.Load() {
				atomic.AddInt64(&ingested, 1)
			}
			next[due] += s.SourcePeriod
		}
	}()

	clk.Sleep(s.Warmup)
	wallStart := time.Now()
	r.Throughput.Start(clk.Now())
	r.Latency.Reset()
	var allocs metrics.AllocMeter
	allocs.Start()
	measuring.Store(true)

	clk.Sleep(s.Measure)

	measuring.Store(false)
	delivered := r.Throughput.Count()
	row := ScaleRow{
		Phones:    slots,
		Leaves:    len(srcOps),
		Channels:  s.Channels,
		Mode:      "tuned",
		Ingested:  atomic.LoadInt64(&ingested),
		Delivered: delivered,
		TPS:       float64(delivered) / s.Measure.Seconds(),
		P99Ms:     float64(r.Latency.Percentile(99)) / float64(time.Millisecond),
		WallMs:    float64(time.Since(wallStart)) / float64(time.Millisecond),
	}
	row.AllocsPerTuple, _ = allocs.PerUnit(delivered)
	if s.NoRouteCache && s.Channels == 1 {
		row.Mode = "legacy"
	}
	close(stop)
	wg.Wait()
	r.Stop()
	return row, nil
}

// DefaultScaleSizes is the default region-size sweep. 128 is reachable
// with msbench -scalemax 128; CI stops at 64 to bound wall time.
var DefaultScaleSizes = []int{8, 16, 32, 64}

// DefaultScaleChannels is the default channel-count sweep for tuned rows.
var DefaultScaleChannels = []int{1, 4}

// ScaleComparison sweeps region size × channel count. Every size runs once
// in legacy mode (single channel, route cache off — the pre-overhaul data
// plane) and once per channel count with the overhauled plane.
func ScaleComparison(base ScaleScenario, sizes []int, channels []int) ([]ScaleRow, error) {
	if len(sizes) == 0 {
		sizes = DefaultScaleSizes
	}
	if len(channels) == 0 {
		channels = DefaultScaleChannels
	}
	var rows []ScaleRow
	for _, phones := range sizes {
		s := base
		s.Phones = phones
		s.Channels = 1
		s.NoRouteCache = true
		legacy, err := RunScale(s)
		if err != nil {
			return nil, fmt.Errorf("scale %d phones legacy: %w", phones, err)
		}
		rows = append(rows, legacy)
		for _, ch := range channels {
			s := base
			s.Phones = phones
			s.Channels = ch
			tuned, err := RunScale(s)
			if err != nil {
				return nil, fmt.Errorf("scale %d phones %d channels: %w", phones, ch, err)
			}
			tuned.Mode = "tuned"
			rows = append(rows, tuned)
		}
	}
	return rows, nil
}

// ScaleReport is the machine-readable experiment artifact
// (BENCH_scale.json in CI).
type ScaleReport struct {
	Experiment string     `json:"experiment"`
	Seed       int64      `json:"seed"`
	MeasureSec float64    `json:"measure_sec"`
	Rows       []ScaleRow `json:"rows"`
}

// WriteScaleJSON emits the scale sweep as indented JSON.
func WriteScaleJSON(w io.Writer, base ScaleScenario, rows []ScaleRow) error {
	base.applyDefaults()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ScaleReport{
		Experiment: "scale: region size × WiFi channels, legacy vs overhauled data plane",
		Seed:       base.Seed,
		MeasureSec: base.Measure.Seconds(),
		Rows:       rows,
	})
}

// WriteScaleTable renders the sweep for humans.
func WriteScaleTable(w io.Writer, rows []ScaleRow) {
	fmt.Fprintln(w, "Scale — region size × WiFi channels (legacy = single channel, uncached routes)")
	fmt.Fprintf(w, "%-7s %-7s %-9s %-7s %10s %10s %10s %10s %12s\n",
		"phones", "leaves", "channels", "mode", "ingested", "delivered", "tuples/s", "p99 ms", "allocs/tuple")
	for _, o := range rows {
		fmt.Fprintf(w, "%-7d %-7d %-9d %-7s %10d %10d %10.1f %10.1f %12.1f\n",
			o.Phones, o.Leaves, o.Channels, o.Mode, o.Ingested, o.Delivered, o.TPS, o.P99Ms, o.AllocsPerTuple)
	}
}
