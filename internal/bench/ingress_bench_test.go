package bench

import (
	"fmt"
	"testing"

	"mobistreams/internal/node"
	"mobistreams/internal/tuple"
)

// TestIngressBatchingThroughput is the tentpole acceptance check: with
// edge batching on, the single-edge pipeline must sustain at least 2x the
// unbatched tuple throughput in simulated time (per-frame medium overhead
// amortised across coalesced sends), delivering every tuple in order.
func TestIngressBatchingThroughput(t *testing.T) {
	const n = 400
	// Race instrumentation inflates the scaled clock's sleep overshoot,
	// which leaks wall time into the simulated results; keep the hard
	// ratio for uninstrumented builds only.
	want := 2.0
	if raceEnabled {
		want = 1.2
	}
	// The two runs pace simulated time against the wall clock back to
	// back, so CPU contention from sibling test packages can starve one
	// run's flush timers and compress the ratio. Retry before declaring a
	// regression — a genuine batching regression fails every attempt, a
	// scheduling stall does not. Correctness checks (full delivery, FIFO
	// order, real coalescing) stay hard on every attempt.
	const attempts = 3
	var lastErr string
	for i := 0; i < attempts; i++ {
		base, err := RunIngress(IngressConfig{Tuples: n, Batch: node.BatchConfig{Disable: true}})
		if err != nil {
			t.Fatal(err)
		}
		var seqs []uint64
		batched, err := RunIngress(IngressConfig{
			Tuples:   n,
			OnOutput: func(tp *tuple.Tuple) { seqs = append(seqs, tp.Seq) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if base.Delivered != n || batched.Delivered != n {
			t.Fatalf("delivered base=%d batched=%d, want %d", base.Delivered, batched.Delivered, n)
		}
		if len(seqs) != n {
			t.Fatalf("observed %d outputs, want %d", len(seqs), n)
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("output %d has seq %d: batching broke edge FIFO order", i, s)
			}
		}
		if batched.MeanBatch < 2 {
			t.Fatalf("mean batch = %.1f, batching never coalesced", batched.MeanBatch)
		}
		ratio := batched.SimTuplesPerSec / base.SimTuplesPerSec
		t.Logf("attempt %d: unbatched %.0f t/s, batched %.0f t/s (%.2fx, mean batch %.1f)",
			i+1, base.SimTuplesPerSec, batched.SimTuplesPerSec, ratio, batched.MeanBatch)
		if ratio >= want {
			return
		}
		lastErr = fmt.Sprintf("batched/unbatched throughput = %.2fx, want >= %.1fx", ratio, want)
	}
	t.Fatal(lastErr)
}

func benchIngress(b *testing.B, batch node.BatchConfig) {
	b.Helper()
	res, err := RunIngress(IngressConfig{Tuples: b.N, Batch: batch})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.SimTuplesPerSec, "sim_tuples/s")
	if res.Flushes > 0 {
		b.ReportMetric(res.MeanBatch, "msgs/batch")
	}
}

// BenchmarkIngressUnbatched measures the per-message delivery path: every
// emission is its own network send.
func BenchmarkIngressUnbatched(b *testing.B) {
	benchIngress(b, node.BatchConfig{Disable: true})
}

// BenchmarkIngressBatched measures the coalesced delivery path (default
// batching bounds).
func BenchmarkIngressBatched(b *testing.B) {
	benchIngress(b, node.BatchConfig{})
}
