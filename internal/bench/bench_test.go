package bench

import (
	"strings"
	"testing"
	"time"

	"mobistreams/internal/ft"
)

// tiny returns the smallest useful scenario for tests. Race-instrumented
// builds run the scaled clock slower: instrumentation inflates every
// wall-time step ~10x, and at 400x speedup the recovery protocol's
// goroutines get starved out of whole simulated phases on small machines.
func tiny() Scenario {
	speedup := 400.0
	if raceEnabled {
		speedup = 100
	}
	return Scenario{
		Speedup:          speedup,
		CheckpointPeriod: 20 * time.Second,
		Warmup:           20 * time.Second,
		Measure:          40 * time.Second,
		Seed:             1,
	}
}

func TestRunBaseProducesOutput(t *testing.T) {
	s := tiny()
	s.App = BCP
	s.Scheme = ft.BaseScheme
	o, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if o.Tuples == 0 {
		t.Fatal("no output tuples")
	}
	if o.Dead {
		t.Fatal("region died without faults")
	}
	if o.CheckpointNet != 0 {
		t.Fatalf("base scheme sent %d checkpoint bytes", o.CheckpointNet)
	}
}

func TestRunMSCheckpointsAndPreserves(t *testing.T) {
	s := tiny()
	s.App = SG
	s.Scheme = ft.MSScheme
	o, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if o.Tuples == 0 {
		t.Fatal("no output")
	}
	if o.CheckpointNet == 0 {
		t.Fatal("ms sent no checkpoint bytes")
	}
	if o.PreservedBytes == 0 {
		t.Fatal("ms preserved nothing at sources")
	}
}

func TestRunMSRecoversFromBurst(t *testing.T) {
	s := tiny()
	s.App = BCP
	s.Scheme = ft.MSScheme
	s.FailCount = 3
	o, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if o.Dead {
		t.Fatal("ms region died on a 3-phone burst")
	}
	if o.Recoveries == 0 {
		t.Fatal("no recovery recorded")
	}
}

func TestRunDistDiesBeyondTolerance(t *testing.T) {
	s := tiny()
	s.App = BCP
	s.Scheme = ft.Dist(1)
	s.FailCount = 3
	o, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Dead {
		t.Fatal("dist-1 should not survive 3 failures")
	}
}

func TestFig6Walkthrough(t *testing.T) {
	var sb strings.Builder
	st := Fig6(&sb)
	if st.UDPPhases != 3 {
		t.Fatalf("phases = %d, want 3", st.UDPPhases)
	}
	if st.TCPBytes != 2048 {
		t.Fatalf("tcp bytes = %d, want 2048", st.TCPBytes)
	}
	if !strings.Contains(sb.String(), "8192") {
		t.Fatal("walk-through text missing block count")
	}
}

func TestVictimOrderPrefersComputingSlots(t *testing.T) {
	s := tiny()
	s.App = BCP
	s.Scheme = ft.BaseScheme
	app, err := buildApp(BCP, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sources host S0/S1 on n1/n2; sink K on n8.
	srcSlots := app.graph.SourceSlots()
	if len(srcSlots) == 0 {
		t.Fatal("no source slots")
	}
	_ = s
}

func TestServerRunIsUplinkBound(t *testing.T) {
	// Speedup 250 keeps the fast run's ~4.5 s uploads around 18 ms of
	// wall time each; at 2000 they are ~2 ms sleeps, and timer overshoot
	// throttles the fast run far below its uplink capacity, compressing
	// the scaling ratio this test pins.
	lo := runServer(BCP, 0.016e6, Scenario{Speedup: 250, Measure: 60 * time.Second})
	hi := runServer(BCP, 0.32e6, Scenario{Speedup: 250, Measure: 60 * time.Second})
	if lo.ThroughputTPS <= 0 || hi.ThroughputTPS <= 0 {
		t.Fatalf("server throughputs: %v / %v", lo.ThroughputTPS, hi.ThroughputTPS)
	}
	// 20x the uplink must buy close to 20x the throughput.
	ratio := hi.ThroughputTPS / lo.ThroughputTPS
	if ratio < 8 {
		t.Fatalf("uplink scaling ratio = %.1f, want uplink-bound behaviour", ratio)
	}
	if lo.MeanLatency < 30*time.Second {
		t.Fatalf("slow-uplink latency = %v, expected tens of seconds", lo.MeanLatency)
	}
}

func TestAppString(t *testing.T) {
	if BCP.String() != "BCP" || SG.String() != "SignalGuru" {
		t.Fatal("app names wrong")
	}
}
