package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestElasticHoldsP99UnderMovingHotspot is the tentpole acceptance check:
// under an identical skewed-key moving hotspot (fixed seed, 10x per-key
// weight, the hot half switching sides mid-run), static keyed parallelism
// saturates the owning instance and its p99 degrades several-fold, while
// the elasticity policy splits the hot range onto a dormant instance and
// holds p99 near the flat baseline — without duplicating a single output
// across the live state handoffs.
func TestElasticHoldsP99UnderMovingHotspot(t *testing.T) {
	// The runs pace simulated time against the wall clock, so CPU
	// contention from sibling packages can stall executors and smear both
	// latency profiles. Retry before declaring a regression: a genuine
	// policy regression fails every attempt, a scheduling stall does not.
	const attempts = 3
	var lastErr string
	for i := 0; i < attempts; i++ {
		rows, err := ElasticComparison(ElasticScenario{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		static, elastic := rows[0], rows[1]
		t.Logf("attempt %d static:  %+v", i+1, static)
		t.Logf("attempt %d elastic: %+v", i+1, elastic)

		// Exactly-once across split/merge handoffs is not load-dependent:
		// any duplicate is a protocol bug, never jitter.
		if elastic.Duplicates != 0 {
			t.Fatalf("elastic run published %d duplicate outputs", elastic.Duplicates)
		}
		if elastic.Delivered == 0 || static.Delivered == 0 {
			t.Fatal("a run delivered nothing")
		}
		if elastic.Splits == 0 {
			t.Fatal("elastic run performed no splits; the hotspot never triggered the policy")
		}
		if raceEnabled {
			// Race instrumentation inflates every wall step ~10x, which
			// distorts the scaled clock far past the service-time model;
			// the latency comparison holds only on uninstrumented builds.
			return
		}
		if static.DegradeFactor >= 5 && elastic.DegradeFactor > 0 && elastic.DegradeFactor <= 2 {
			return
		}
		lastErr = fmt.Sprintf("static degraded %.2fx (want >= 5x) vs elastic %.2fx (want <= 2x)",
			static.DegradeFactor, elastic.DegradeFactor)
	}
	t.Fatal(lastErr)
}

func TestElasticJSONRoundTrips(t *testing.T) {
	rows := []ElasticOutcome{
		{Mode: "static", Ingested: 1000, Delivered: 1000, P99PreMs: 300, P99HotMs: 4500, DegradeFactor: 15},
		{Mode: "elastic", Ingested: 1000, Delivered: 1000, P99PreMs: 320, P99HotMs: 500, DegradeFactor: 1.6, Splits: 2, ActiveInstances: 4},
	}
	var buf bytes.Buffer
	if err := WriteElasticJSON(&buf, ElasticScenario{Seed: 5}, rows); err != nil {
		t.Fatal(err)
	}
	var rep ElasticReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(rep.Rows) != 2 || rep.Rows[1].Splits != 2 || rep.Rows[0].Mode != "static" {
		t.Fatalf("round-trip mismatch: %+v", rep)
	}
	if !strings.Contains(buf.String(), `"p99_hotspot_ms"`) {
		t.Fatal("artifact missing p99_hotspot_ms field")
	}
}
