package bench

import (
	"fmt"
	"io"
	"time"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/clock"
	"mobistreams/internal/ft"
	"mobistreams/internal/server"
	"mobistreams/internal/simnet"
	"mobistreams/internal/storage"

	"mobistreams/internal/broadcast"
)

// SteadySchemes is Fig. 8/Fig. 10's x-axis.
var SteadySchemes = []ft.Scheme{
	ft.BaseScheme, ft.Rep2Scheme, ft.LocalScheme,
	ft.Dist(1), ft.Dist(2), ft.Dist(3), ft.MSScheme,
}

// SteadyState runs the no-fault scenario for every scheme on one app.
func SteadyState(app App, base Scenario) (map[string]Outcome, error) {
	out := make(map[string]Outcome, len(SteadySchemes))
	for _, sch := range SteadySchemes {
		s := base
		s.App = app
		s.Scheme = sch
		o, err := Run(s)
		if err != nil {
			return nil, fmt.Errorf("steady %s/%s: %w", app, sch, err)
		}
		out[sch.String()] = o
	}
	return out, nil
}

// WriteFig8 renders the relative throughput/latency table of Fig. 8 from
// steady-state outcomes (values normalised to base).
func WriteFig8(w io.Writer, app App, outs map[string]Outcome) {
	base := outs["base"]
	fmt.Fprintf(w, "Fig. 8 — %s: fault-tolerance schemes at steady state (no faults)\n", app)
	fmt.Fprintf(w, "%-8s %14s %12s %14s %12s\n", "scheme", "tput (t/s)", "rel tput", "mean lat (s)", "rel lat")
	for _, sch := range SteadySchemes {
		o := outs[sch.String()]
		relT, relL := 0.0, 0.0
		if base.ThroughputTPS > 0 {
			relT = o.ThroughputTPS / base.ThroughputTPS
		}
		if base.MeanLatency > 0 {
			relL = o.MeanLatency.Seconds() / base.MeanLatency.Seconds()
		}
		fmt.Fprintf(w, "%-8s %14.3f %11.0f%% %14.1f %12.2f\n",
			sch.String(), o.ThroughputTPS, relT*100, o.MeanLatency.Seconds(), relL)
	}
}

// WriteFig10 renders the preservation/checkpoint data table of Fig. 10
// (values normalised to ms).
func WriteFig10(w io.Writer, app App, outs map[string]Outcome) {
	ms := outs["ms"]
	fmt.Fprintf(w, "Fig. 10 — %s: preservation and checkpoint/replication data\n", app)
	fmt.Fprintf(w, "%-8s %16s %10s %18s %10s\n", "scheme", "preserved (MB)", "rel", "ckpt/repl net (MB)", "rel")
	for _, sch := range SteadySchemes {
		o := outs[sch.String()]
		net := o.CheckpointNet + o.ReplicationNet
		msNet := ms.CheckpointNet + ms.ReplicationNet
		relP, relN := 0.0, 0.0
		if ms.PreservedBytes > 0 {
			relP = float64(o.PreservedBytes) / float64(ms.PreservedBytes)
		}
		if msNet > 0 {
			relN = float64(net) / float64(msNet)
		}
		fmt.Fprintf(w, "%-8s %16.2f %10.2f %18.2f %10.2f\n",
			sch.String(), mb(o.PreservedBytes), relP, mb(net), relN)
	}
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// Fig9Point is one (scheme, k) cell of Fig. 9.
type Fig9Point struct {
	Scheme    string
	K         int
	Departure bool
	Outcome   Outcome
	RelTput   float64
	RelLat    float64
}

// Fig9Schemes lists the failure curves of Fig. 9.
var Fig9Schemes = []ft.Scheme{ft.Rep2Scheme, ft.Dist(1), ft.Dist(2), ft.Dist(3), ft.MSScheme}

// Fig9 runs the fault sweep for one app: k = 0..maxK simultaneous failures
// per scheme, plus the MobiStreams departure curve. Points beyond a
// scheme's tolerance stop the curve (rep-2 has two points, dist-n has n+1),
// exactly as in the paper.
func Fig9(app App, base Scenario, maxK int, w io.Writer) ([]Fig9Point, error) {
	var points []Fig9Point
	baselines := make(map[string]Outcome)
	curve := func(sch ft.Scheme, departure bool, label string) error {
		for k := 0; k <= maxK; k++ {
			s := base
			s.App = app
			s.Scheme = sch
			if departure {
				s.DepartCount = k
			} else {
				s.FailCount = k
			}
			o, err := Run(s)
			if err != nil {
				return err
			}
			if k == 0 {
				baselines[label] = o
			}
			b := baselines[label]
			p := Fig9Point{Scheme: label, K: k, Departure: departure, Outcome: o}
			if b.ThroughputTPS > 0 {
				p.RelTput = o.ThroughputTPS / b.ThroughputTPS
			}
			if b.MeanLatency > 0 {
				p.RelLat = o.MeanLatency.Seconds() / b.MeanLatency.Seconds()
			}
			points = append(points, p)
			if w != nil {
				dead := ""
				if o.Dead {
					dead = " [region dead]"
				}
				fmt.Fprintf(w, "%-22s k=%d: rel tput %5.0f%%  rel lat %5.2f%s\n",
					label, k, p.RelTput*100, p.RelLat, dead)
			}
			if o.Dead && k > 0 {
				break // the curve truncates where recovery fails
			}
		}
		return nil
	}
	if w != nil {
		fmt.Fprintf(w, "Fig. 9 — %s: n-node failures/departures within one checkpoint period\n", app)
	}
	for _, sch := range Fig9Schemes {
		if err := curve(sch, false, sch.String()+" failure"); err != nil {
			return nil, err
		}
	}
	if err := curve(ft.MSScheme, true, "ms departure"); err != nil {
		return nil, err
	}
	return points, nil
}

// Table1Row is one row of Table I.
type Table1Row struct {
	System        string
	App           App
	ThroughputTPS float64
	LatencySec    float64
}

// Table1 reproduces the MobiStreams-vs-server comparison. The server rows
// sweep the paper's 3G uplink range (0.016-0.32 Mbps); the MobiStreams rows
// run the phone platform with fault tolerance off (base), with a departure
// per period, and with a failure per period.
func Table1(base Scenario, w io.Writer) ([]Table1Row, error) {
	var rows []Table1Row
	apps := []App{BCP, SG}
	if w != nil {
		fmt.Fprintln(w, "Table I — MobiStreams vs server-based DSPS (per-region)")
	}
	for _, app := range apps {
		lo := runServer(app, 0.016e6, base)
		hi := runServer(app, 0.32e6, base)
		rows = append(rows, Table1Row{System: "server (0.016 Mbps up)", App: app, ThroughputTPS: lo.ThroughputTPS, LatencySec: lo.MeanLatency.Seconds()})
		rows = append(rows, Table1Row{System: "server (0.32 Mbps up)", App: app, ThroughputTPS: hi.ThroughputTPS, LatencySec: hi.MeanLatency.Seconds()})
		if w != nil {
			fmt.Fprintf(w, "%-11s server-based: %0.3f~%0.3f t/s, latency %0.0f~%0.0f s\n",
				app, lo.ThroughputTPS, hi.ThroughputTPS, hi.MeanLatency.Seconds(), lo.MeanLatency.Seconds())
		}
		for _, mode := range []struct {
			name    string
			scheme  ft.Scheme
			fail    int
			departs int
		}{
			{"MobiStreams (FT off)", ft.BaseScheme, 0, 0},
			{"MobiStreams (departure/period)", ft.MSScheme, 0, 1},
			{"MobiStreams (failure/period)", ft.MSScheme, 1, 0},
		} {
			s := base
			s.App = app
			s.Scheme = mode.scheme
			s.FailCount = mode.fail
			s.DepartCount = mode.departs
			o, err := Run(s)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table1Row{System: mode.name, App: app, ThroughputTPS: o.ThroughputTPS, LatencySec: o.MeanLatency.Seconds()})
			if w != nil {
				fmt.Fprintf(w, "%-11s %-32s %0.3f t/s, latency %0.0f s\n",
					app, mode.name+":", o.ThroughputTPS, o.MeanLatency.Seconds())
			}
		}
	}
	return rows, nil
}

// runServer measures the thin-client deployment of one app at an uplink
// rate: every camera tuple rides the uplink to the data center.
// serverSummary is runServer's compact result.
type serverSummary struct {
	ThroughputTPS float64
	MeanLatency   time.Duration
}

func runServer(app App, uplinkBps float64, base Scenario) serverSummary {
	clk := clock.NewScaled(base.Speedup * 4)
	var tupleBytes int
	var pipeline time.Duration
	var period time.Duration
	if app == BCP {
		tupleBytes = 180 << 10
		pipeline = 8500 * time.Millisecond // H + C + models on phone CPU
		period = 1750 * time.Millisecond
	} else {
		tupleBytes = 110 << 10
		pipeline = 3600 * time.Millisecond // colour+shape+motion + models
		period = 1200 * time.Millisecond
	}
	d := server.New(server.Config{
		Clock:         clk,
		UplinkBps:     uplinkBps,
		DownlinkBps:   0.7e6,
		CellLatency:   80 * time.Millisecond,
		ServerSpeedup: 20,
		PipelineCost:  pipeline,
		QueueCap:      8,
	})
	d.Start()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-clk.After(period):
				d.Offer(tupleBytes)
			case <-stop:
				return
			}
		}
	}()
	// Warm up one window, then measure.
	window := base.Measure
	if window <= 0 {
		window = 120 * time.Second
	}
	clk.Sleep(window / 2)
	d.Throughput.Start(clk.Now())
	d.Latency.Reset()
	clk.Sleep(window * 4) // the slow uplink needs a long window for stable rates
	rep := d.Report(clk.Now())
	close(stop)
	d.Stop()
	return serverSummary{ThroughputTPS: rep.ThroughputTPS, MeanLatency: rep.MeanLatency}
}

// Fig6 renders the multi-phase broadcast walk-through with the paper's
// exact loss pattern (8 MB checkpoint, receivers A/B/C).
func Fig6(w io.Writer) broadcast.Stats {
	blob := &checkpoint.Blob{Slot: "sender", Version: 1, Size: 8192 * 1024, Ops: map[string][]byte{}}
	med := newScriptedMedium(map[simnet.NodeID]*broadcast.Receiver{
		"A": broadcast.NewReceiver(storage.New()),
		"B": broadcast.NewReceiver(storage.New()),
		"C": broadcast.NewReceiver(storage.New()),
	})
	st := broadcast.Disseminate(med, clock.NewManual(), "sender", []simnet.NodeID{"A", "B", "C"}, blob, broadcast.Config{BlockSize: 1024})
	if w != nil {
		fmt.Fprintln(w, "Fig. 6 — multi-phase UDP broadcast walk-through (8 MB, 8192 x 1 KB blocks)")
		fmt.Fprintf(w, "UDP phases: %d (phase 1 all, phase 2 all, phase 3 evens; cost 4099 KB > gain 4095 KB stops UDP)\n", st.UDPPhases)
		fmt.Fprintf(w, "UDP bytes: %d KB, bitmap bytes: %d KB, TCP fill: %d KB\n",
			st.UDPBytes/1024, st.BitmapBytes/1024, st.TCPBytes/1024)
		fmt.Fprintf(w, "complete replicas: %d\n", len(st.Complete))
	}
	return st
}

// scriptedMedium reproduces Fig. 6's loss pattern: phase 1 delivers the
// first 3 messages to A, even messages to B, odd messages to C; phase 2
// completes A and B; phase 3 delivers all but M2 to C.
type scriptedMedium struct {
	receivers map[simnet.NodeID]*broadcast.Receiver
	phase     int
}

func newScriptedMedium(rs map[simnet.NodeID]*broadcast.Receiver) *scriptedMedium {
	return &scriptedMedium{receivers: rs}
}

func (s *scriptedMedium) BroadcastBatch(from simnet.NodeID, class simnet.Class, grams []simnet.Datagram) []int {
	s.phase++
	counts := make([]int, len(grams))
	for gi, g := range grams {
		bm := g.Payload.(broadcast.BlockMsg)
		for id, r := range s.receivers {
			if s.deliver(id, bm.Index) {
				r.OnBlock(bm)
				counts[gi]++
			}
		}
	}
	return counts
}

func (s *scriptedMedium) deliver(to simnet.NodeID, b int) bool {
	switch s.phase {
	case 1:
		switch to {
		case "A":
			return b < 3
		case "B":
			return b%2 == 1
		default:
			return b%2 == 0
		}
	case 2:
		return to != "C"
	default:
		return to != "C" || b != 1
	}
}

func (s *scriptedMedium) Request(from, to simnet.NodeID, class simnet.Class, size int, payload interface{}) (chan simnet.Message, error) {
	q := payload.(broadcast.QueryMsg)
	bm := s.receivers[to].Bitmap(q)
	ch := make(chan simnet.Message, 1)
	ch <- simnet.Message{From: to, To: from, Class: class, Size: broadcast.BitmapWireBytes(q.Total), Payload: bm}
	return ch, nil
}

func (s *scriptedMedium) Unicast(from, to simnet.NodeID, class simnet.Class, size int, payload interface{}) error {
	if r, ok := s.receivers[to]; ok {
		r.OnFill(payload.(broadcast.FillMsg))
	}
	return nil
}
