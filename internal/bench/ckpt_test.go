package bench

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// TestCkptIncrementalCutsPause is the acceptance-criteria bench: at the
// largest state size the incremental-async pipeline must cut the measured
// stop-the-world checkpoint pause at least 5x against the synchronous
// full-blob baseline, while actually shipping deltas.
func TestCkptIncrementalCutsPause(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	base := CkptScenario{Seed: 5, Speedup: 150}
	// Race instrumentation leaks wall time into the scaled clock's pause
	// measurements, inflating the (tiny) incremental pause; keep the hard
	// 5x acceptance ratio for uninstrumented builds only.
	want := 5.0
	if raceEnabled {
		want = 1.5
	}
	// The runs pace simulated time against the wall clock, so a host
	// scheduling stall can starve a run before its checkpoint cadence
	// produces any blobs. Retry before declaring a regression; shipping
	// delta blobs from a full-only run is a protocol bug and stays hard.
	const attempts = 3
	var lastErr string
	for i := 0; i < attempts; i++ {
		rows, err := CkptComparison(base, []int{1 << 20, 4 << 20})
		if err != nil {
			t.Fatal(err)
		}
		lastErr = ""
		for _, o := range rows {
			if o.Mode == "full" && o.DeltaBlobs != 0 {
				t.Fatalf("full-only run produced %d delta blobs", o.DeltaBlobs)
			}
			switch {
			case o.Checkpoints == 0:
				lastErr = fmt.Sprintf("%s @ %d bytes: no checkpoints observed", o.Mode, o.StateBytes)
			case o.Mode == "incremental" && o.DeltaBlobs == 0:
				lastErr = fmt.Sprintf("incremental run @ %d bytes produced no delta blobs", o.StateBytes)
			case o.Mode == "incremental" && o.DeltaRatio >= 0.8:
				lastErr = fmt.Sprintf("incremental run @ %d bytes shipped %.2f of full state", o.StateBytes, o.DeltaRatio)
			}
		}
		if lastErr != "" {
			continue
		}
		if cut := CkptPauseCut(rows); cut < want {
			lastErr = fmt.Sprintf("pause cut at largest state = %.1fx, want >= %.1fx", cut, want)
			continue
		}
		return
	}
	t.Fatal(lastErr)
}

func TestCkptJSONRoundTrips(t *testing.T) {
	rows := []CkptOutcome{
		{Mode: "full", StateBytes: 4 << 20, PauseMeanMs: 160, Checkpoints: 9},
		{Mode: "incremental", StateBytes: 4 << 20, PauseMeanMs: 10, Checkpoints: 9, DeltaBlobs: 6},
	}
	var buf bytes.Buffer
	if err := WriteCkptJSON(&buf, CkptScenario{Seed: 3, Measure: time.Minute}, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"pause_cut_at_largest": 16`)) {
		t.Fatalf("ratio missing from JSON:\n%s", buf.String())
	}
	var tbl bytes.Buffer
	WriteCkptTable(&tbl, rows)
	if !bytes.Contains(tbl.Bytes(), []byte("16.0x")) {
		t.Fatalf("table missing pause cut:\n%s", tbl.String())
	}
}
