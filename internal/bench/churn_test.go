package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mobistreams/internal/ft"
)

// churnPair runs the same churn schedule reactive-only and scheduler-on.
func churnPair(t *testing.T, scheme ft.Scheme, seed int64) (reactive, sched ChurnOutcome) {
	t.Helper()
	var err error
	reactive, err = RunChurn(ChurnScenario{Scheme: scheme, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sched, err = RunChurn(ChurnScenario{Scheme: scheme, SchedulerOn: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return reactive, sched
}

// TestChurnSchedulerBeatsReactiveMS is the experiment's headline claim:
// under the same Poisson leave schedule (fixed seed: battery cliffs and
// commuter walks), the scheduler's planned migrations lose fewer tuples and
// incur less downtime than the paper's reactive-only recovery.
func TestChurnSchedulerBeatsReactiveMS(t *testing.T) {
	reactive, sched := churnPair(t, ft.MSScheme, 5)
	t.Logf("reactive:  %+v", reactive)
	t.Logf("scheduler: %+v", sched)

	// The fixed seed produces a churn schedule that genuinely bites: the
	// reactive run must have performed recoveries and lost real output.
	if reactive.Recoveries == 0 {
		t.Fatal("reactive run performed no recoveries; churn schedule did not bite")
	}
	if reactive.Lost < 20 {
		t.Fatalf("reactive run lost only %d tuples; churn schedule did not bite", reactive.Lost)
	}
	if sched.Migrations == 0 {
		t.Fatal("scheduler run performed no migrations")
	}
	if sched.Dead {
		t.Fatal("scheduler run killed the region")
	}
	// Headline: fewer tuples lost, less downtime, with wide margins so
	// scaled-clock jitter cannot flip the comparison.
	if sched.Lost*2 >= reactive.Lost {
		t.Fatalf("scheduler lost %d tuples vs reactive %d: want less than half", sched.Lost, reactive.Lost)
	}
	if sched.DowntimeSec*2 >= reactive.DowntimeSec {
		t.Fatalf("scheduler downtime %.1fs vs reactive %.1fs: want less than half", sched.DowntimeSec, reactive.DowntimeSec)
	}
	// Planned migrations must not duplicate acknowledged output.
	if sched.Duplicates != 0 {
		t.Fatalf("scheduler run published %d duplicate outputs", sched.Duplicates)
	}
}

// TestChurnSchedulerGivesRep2AMobilityStory pins the cross-scheme win:
// rep-2 tolerates exactly one failure reactively, so sustained churn kills
// the region — while proactive migration sidesteps the failures entirely.
func TestChurnSchedulerGivesRep2AMobilityStory(t *testing.T) {
	reactive, sched := churnPair(t, ft.Rep2Scheme, 5)
	t.Logf("reactive:  %+v", reactive)
	t.Logf("scheduler: %+v", sched)
	if sched.Dead {
		t.Fatal("rep-2 with scheduler died under churn")
	}
	if sched.Migrations == 0 {
		t.Fatal("scheduler run performed no migrations")
	}
	if sched.Lost >= reactive.Lost {
		t.Fatalf("scheduler lost %d tuples vs reactive %d: want fewer", sched.Lost, reactive.Lost)
	}
}

// TestChurnRouteCacheEquivalence pins the route cache's failover
// correctness against the fixed-seed churn schedule: with the epoch cache
// enabled (the default every experiment above runs with), planned
// migrations and recoveries mid-stream must stay exactly-once — no
// duplicate outputs, no worse loss — than the same schedule resolved
// uncached on every send. Tuples in flight across a placement epoch bump
// (failover mid-stream, migration mid-stream) land exactly once at the new
// primary.
func TestChurnRouteCacheEquivalence(t *testing.T) {
	cached, err := RunChurn(ChurnScenario{Scheme: ft.MSScheme, SchedulerOn: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := RunChurn(ChurnScenario{Scheme: ft.MSScheme, SchedulerOn: true, Seed: 5, NoRouteCache: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cached:   %+v", cached)
	t.Logf("uncached: %+v", uncached)
	if cached.Migrations == 0 {
		t.Fatal("cached run performed no migrations: epoch bumps never exercised")
	}
	if cached.Duplicates != 0 {
		t.Fatalf("cached run published %d duplicate outputs: a stale route delivered twice", cached.Duplicates)
	}
	if uncached.Duplicates != 0 {
		t.Fatalf("uncached reference published %d duplicate outputs", uncached.Duplicates)
	}
	if cached.Dead || uncached.Dead {
		t.Fatal("a run killed the region")
	}
	// The cache must not change protocol outcomes, only resolution cost:
	// identical schedule, equivalent loss (small absolute slack absorbs
	// scaled-clock jitter between two wall-clock runs).
	const slack = 5
	if cached.Lost > uncached.Lost+slack {
		t.Fatalf("cached run lost %d tuples vs uncached %d: cache worsened failover", cached.Lost, uncached.Lost)
	}
}

func TestChurnJSONRoundTrips(t *testing.T) {
	base := ChurnScenario{Seed: 5}
	rows := []ChurnOutcome{
		{Scheme: "ms", Mode: "reactive", Ingested: 100, Delivered: 80, Lost: 20, DowntimeSec: 12.5, Recoveries: 2},
		{Scheme: "ms", Mode: "scheduler", Ingested: 100, Delivered: 100, Migrations: 3},
	}
	var buf bytes.Buffer
	if err := WriteChurnJSON(&buf, base, rows); err != nil {
		t.Fatal(err)
	}
	var rep ChurnReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(rep.Rows) != 2 || rep.Rows[0].Lost != 20 || rep.Rows[1].Migrations != 3 {
		t.Fatalf("round-trip mismatch: %+v", rep)
	}
	if !strings.Contains(buf.String(), `"tuples_lost"`) {
		t.Fatal("artifact missing tuples_lost field")
	}
}
