package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/controller"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/node"
	"mobistreams/internal/operator"
	"mobistreams/internal/region"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
	"mobistreams/internal/workload"
)

// CkptScenario configures one checkpoint-pipeline experiment run: a
// three-slot pipeline whose middle operator carries StateBytes of state,
// checkpointed under the MobiStreams token protocol either with the
// synchronous full-blob pipeline (FullOnly) or the incremental-async one.
type CkptScenario struct {
	// StateBytes is the heavy operator's modelled state size.
	StateBytes int
	// FullOnly selects the synchronous full-blob baseline.
	FullOnly bool
	// RebaseEvery bounds the delta chain (default: node's default).
	RebaseEvery int
	// Phones is the region population (default 6 = 3 active + 3 idle).
	Phones int
	// Speedup is the clock scale (default 200).
	Speedup float64
	// CheckpointPeriod (default 20 s) paces token checkpoints.
	CheckpointPeriod time.Duration
	// Warmup (default 10 s) runs before the measurement window, which
	// lasts Measure (default 65 s — three checkpoints per slot).
	Warmup  time.Duration
	Measure time.Duration
	// SourcePeriod is the ingest interval (default 500 ms).
	SourcePeriod time.Duration
	// WiFiBps (default 20 Mbps: multi-MB blobs must fit the period) and
	// WiFiLoss (default 2%) shape the medium.
	WiFiBps  float64
	WiFiLoss float64
	Seed     int64
}

func (s *CkptScenario) applyDefaults() {
	if s.StateBytes <= 0 {
		s.StateBytes = 1 << 20
	}
	if s.Phones <= 0 {
		s.Phones = 6
	}
	if s.Speedup <= 0 {
		s.Speedup = 200
	}
	if s.CheckpointPeriod <= 0 {
		s.CheckpointPeriod = 20 * time.Second
	}
	if s.Warmup <= 0 {
		s.Warmup = 10 * time.Second
	}
	if s.Measure <= 0 {
		s.Measure = 65 * time.Second
	}
	if s.SourcePeriod <= 0 {
		s.SourcePeriod = 500 * time.Millisecond
	}
	if s.WiFiBps <= 0 {
		s.WiFiBps = 20e6
	}
	if s.WiFiLoss == 0 {
		s.WiFiLoss = 0.02
	}
}

// CkptOutcome is one run's result, JSON-tagged for BENCH_checkpoint.json.
type CkptOutcome struct {
	Mode          string  `json:"mode"` // "full" or "incremental"
	StateBytes    int     `json:"state_bytes"`
	Checkpoints   int64   `json:"checkpoints"`
	PauseMeanMs   float64 `json:"pause_mean_ms"`
	PauseMaxMs    float64 `json:"pause_max_ms"`
	BlobBytes     int64   `json:"blob_bytes"`
	FullBytes     int64   `json:"full_state_bytes"`
	DeltaRatio    float64 `json:"delta_ratio"`
	DeltaBlobs    int64   `json:"delta_blobs"`
	FullBlobs     int64   `json:"full_blobs"`
	ThroughputTPS float64 `json:"throughput_tps"`
}

// ckptGraph is the pipeline S -> W -> K on three slots; W carries the
// heavy state.
func ckptGraph() (*graph.Graph, error) {
	var b graph.Builder
	b.AddOperator("S", "n1").AddOperator("W", "n2").AddOperator("K", "n3")
	b.Chain("S", "W", "K")
	return b.Build()
}

func ckptRegistry(stateBytes int) operator.Registry {
	clone := func(t *tuple.Tuple) *tuple.Tuple { return t.Clone() }
	light := func(id string) operator.Factory {
		return func() operator.Operator {
			m := operator.NewMap(id, clone)
			m.CostFn = operator.FixedCost(50 * time.Millisecond)
			return m
		}
	}
	return operator.Registry{
		"S": light("S"),
		"K": light("K"),
		// W models a windowed/learned-model operator: a small mutable
		// cursor (the Map counter) over StateBytes of state that is
		// static between checkpoints — the shape incremental
		// checkpointing exists for (cf. BCP's counter state).
		"W": func() operator.Operator {
			m := operator.NewMap("W", clone)
			m.CostFn = operator.FixedCost(150 * time.Millisecond)
			m.SizeFn = func() int { return stateBytes }
			return m
		},
	}
}

// RunCkpt executes one checkpoint-pipeline scenario to completion.
func RunCkpt(s CkptScenario) (CkptOutcome, error) {
	s.applyDefaults()
	g, err := ckptGraph()
	if err != nil {
		return CkptOutcome{}, err
	}
	clk := clock.NewScaled(s.Speedup)
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   0.16e6,
		DownBitsPerSecond: 0.7e6,
		Latency:           80 * time.Millisecond,
		SharedBps:         2e6,
	})
	ctrl := controller.New(controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: s.CheckpointPeriod,
		PingInterval:     30 * time.Second,
		PingTimeout:      10 * time.Second,
		DebounceWindow:   2 * time.Second,
	})
	r, err := region.New(region.Config{
		ID:                "r1",
		Graph:             g,
		Registry:          ckptRegistry(s.StateBytes),
		Scheme:            ft.MSScheme,
		Phones:            s.Phones,
		Clock:             clk,
		WiFi:              simnet.WiFiConfig{BitsPerSecond: s.WiFiBps, LossProb: s.WiFiLoss, Seed: s.Seed},
		Cell:              cell,
		ControllerID:      ctrl.ID(),
		Broadcast:         broadcast.Config{BlockSize: 1024},
		PreserveBroadcast: true,
		Checkpoint:        node.CheckpointConfig{FullOnly: s.FullOnly, RebaseEvery: s.RebaseEvery},
	})
	if err != nil {
		return CkptOutcome{}, err
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()

	var ingested int64
	gen := workload.NewGenerator(clk)
	gen.StartBCPBus(func(_ string, v interface{}, _ int, _ string) {
		atomic.AddInt64(&ingested, 1)
		r.Ingest("S", v, 2048, "count")
	}, workload.BCPBusConfig{Period: s.SourcePeriod, Seed: s.Seed})

	clk.Sleep(s.Warmup)
	r.Throughput.Start(clk.Now())
	r.CkptStats().Reset()
	clk.Sleep(s.Measure)

	st := r.CkptStats()
	blobBytes, fullBytes := st.Bytes()
	mode := "incremental"
	if s.FullOnly {
		mode = "full"
	}
	out := CkptOutcome{
		Mode:          mode,
		StateBytes:    s.StateBytes,
		Checkpoints:   st.Count(),
		PauseMeanMs:   float64(st.PauseMean()) / float64(time.Millisecond),
		PauseMaxMs:    float64(st.PauseMax()) / float64(time.Millisecond),
		BlobBytes:     blobBytes,
		FullBytes:     fullBytes,
		DeltaRatio:    st.DeltaRatio(),
		DeltaBlobs:    st.DeltaBlobs(),
		FullBlobs:     st.FullBlobs(),
		ThroughputTPS: r.Throughput.PerSecond(clk.Now()),
	}
	gen.Stop()
	r.Stop()
	ctrl.Stop()
	return out, nil
}

// CkptStateSizes is the default state-size sweep (64 KB to 4 MB).
var CkptStateSizes = []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}

// CkptComparison runs the full-blob baseline and the incremental-async
// pipeline across the state-size sweep under identical seeds.
func CkptComparison(base CkptScenario, sizes []int) ([]CkptOutcome, error) {
	if len(sizes) == 0 {
		sizes = CkptStateSizes
	}
	var rows []CkptOutcome
	for _, size := range sizes {
		for _, full := range []bool{true, false} {
			s := base
			s.StateBytes = size
			s.FullOnly = full
			o, err := RunCkpt(s)
			if err != nil {
				return nil, fmt.Errorf("checkpoint state=%d full=%v: %w", size, full, err)
			}
			rows = append(rows, o)
		}
	}
	return rows, nil
}

// CkptReport is the machine-readable artifact (BENCH_checkpoint.json).
type CkptReport struct {
	Experiment string        `json:"experiment"`
	Seed       int64         `json:"seed"`
	Rows       []CkptOutcome `json:"rows"`
	// PauseCutAtLargest is full-blob mean pause over incremental mean
	// pause at the largest state size — the headline speedup.
	PauseCutAtLargest float64 `json:"pause_cut_at_largest"`
}

// CkptPauseCut computes the full/incremental mean-pause ratio at the
// largest state size present in rows (0 when either side is missing).
func CkptPauseCut(rows []CkptOutcome) float64 {
	largest := 0
	for _, o := range rows {
		if o.StateBytes > largest {
			largest = o.StateBytes
		}
	}
	var full, incr float64
	for _, o := range rows {
		if o.StateBytes != largest {
			continue
		}
		if o.Mode == "full" {
			full = o.PauseMeanMs
		} else {
			incr = o.PauseMeanMs
		}
	}
	if incr <= 0 {
		return 0
	}
	return full / incr
}

// WriteCkptJSON emits the comparison as indented JSON.
func WriteCkptJSON(w io.Writer, base CkptScenario, rows []CkptOutcome) error {
	base.applyDefaults()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(CkptReport{
		Experiment:        "checkpoint: synchronous full-blob vs incremental-async delta chains",
		Seed:              base.Seed,
		Rows:              rows,
		PauseCutAtLargest: CkptPauseCut(rows),
	})
}

// WriteCkptTable renders the comparison for humans.
func WriteCkptTable(w io.Writer, rows []CkptOutcome) {
	fmt.Fprintln(w, "Checkpoint — synchronous full-blob vs incremental-async delta chains")
	fmt.Fprintf(w, "%-12s %10s %6s %12s %12s %12s %7s %8s\n",
		"mode", "state", "ckpts", "pause mean", "pause max", "blob bytes", "delta", "tput t/s")
	for _, o := range rows {
		fmt.Fprintf(w, "%-12s %9.0fK %6d %10.2fms %10.2fms %12d %7.2f %8.2f\n",
			o.Mode, float64(o.StateBytes)/1024, o.Checkpoints, o.PauseMeanMs, o.PauseMaxMs,
			o.BlobBytes, o.DeltaRatio, o.ThroughputTPS)
	}
	if cut := CkptPauseCut(rows); cut > 0 {
		fmt.Fprintf(w, "pause cut at largest state: %.1fx\n", cut)
	}
}
