package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/controller"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/operator"
	"mobistreams/internal/phone"
	"mobistreams/internal/region"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
	"mobistreams/internal/workload"
)

// ChurnScenario configures one churn experiment run: a four-slot identity
// pipeline (every ingested tuple yields exactly one sink output, so tuple
// loss is measured exactly) under Poisson phone join/leave churn, run with
// the paper's reactive recovery alone or with the adaptive placement
// scheduler layered on top.
type ChurnScenario struct {
	Scheme      ft.Scheme
	SchedulerOn bool
	// Phones is the region population (default 10 = 4 active + 6 idle).
	Phones int
	// Speedup is the clock scale (default 300).
	Speedup float64
	// CheckpointPeriod (default 30 s) bounds reactive recovery's replay
	// window — the tuples a recovery loses to sink-side suppression.
	CheckpointPeriod time.Duration
	// Warmup runs before the measurement window (default one checkpoint
	// period, so a committed checkpoint exists when churn starts).
	Warmup time.Duration
	// Measure is the churn + measurement window (default 120 s).
	Measure time.Duration
	// Drain lets the pipeline tail flush after ingest stops (default 15 s).
	Drain time.Duration
	// SourcePeriod is the ingest interval (default 700 ms).
	SourcePeriod time.Duration
	// MeanLeave / MeanJoin are the Poisson churn means (defaults 20 s /
	// 45 s); CliffShare splits leaves between battery cliffs and commuter
	// walks (default 0.6).
	MeanLeave  time.Duration
	MeanJoin   time.Duration
	CliffShare float64
	// WalkSpeed (default 4 m/s) and RadiusM (default 120 m) shape the
	// commuter trace; BatteryJoules (default 150) and CliffFraction
	// (default 0.08) shape the battery cliff.
	WalkSpeed     float64
	RadiusM       float64
	BatteryJoules float64
	CliffFraction float64
	WiFiBps       float64
	WiFiLoss      float64
	// NoRouteCache disables the nodes' epoch-stamped route cache (the
	// pre-cache data plane, for equivalence regression tests).
	NoRouteCache bool
	Seed         int64
}

func (s *ChurnScenario) applyDefaults() {
	if s.Phones <= 0 {
		s.Phones = 10
	}
	if s.Speedup <= 0 {
		s.Speedup = 300
	}
	if s.CheckpointPeriod <= 0 {
		s.CheckpointPeriod = 30 * time.Second
	}
	if s.Warmup <= 0 {
		s.Warmup = s.CheckpointPeriod
	}
	if s.Measure <= 0 {
		s.Measure = 120 * time.Second
	}
	if s.Drain <= 0 {
		s.Drain = 15 * time.Second
	}
	if s.SourcePeriod <= 0 {
		s.SourcePeriod = 700 * time.Millisecond
	}
	if s.MeanLeave <= 0 {
		s.MeanLeave = 20 * time.Second
	}
	if s.MeanJoin <= 0 {
		s.MeanJoin = 45 * time.Second
	}
	if s.CliffShare <= 0 {
		s.CliffShare = 0.6
	}
	if s.WalkSpeed <= 0 {
		s.WalkSpeed = 4
	}
	if s.RadiusM <= 0 {
		s.RadiusM = 120
	}
	if s.BatteryJoules <= 0 {
		s.BatteryJoules = 150
	}
	if s.CliffFraction <= 0 {
		s.CliffFraction = 0.08
	}
	if s.WiFiBps <= 0 {
		s.WiFiBps = 3e6
	}
	if s.WiFiLoss == 0 {
		s.WiFiLoss = 0.02
	}
}

// ChurnOutcome is one churn run's result, JSON-tagged for the CI artifact.
type ChurnOutcome struct {
	Scheme        string  `json:"scheme"`
	Mode          string  `json:"mode"` // "reactive" or "scheduler"
	Ingested      int64   `json:"ingested"`
	Delivered     int64   `json:"delivered"`
	Lost          int64   `json:"tuples_lost"`
	Duplicates    int64   `json:"duplicates"`
	ThroughputTPS float64 `json:"throughput_tps"`
	DowntimeSec   float64 `json:"downtime_sec"`
	Migrations    int     `json:"migrations"`
	Recoveries    int     `json:"recoveries"`
	Departures    int     `json:"departures"`
	Joins         int     `json:"joins"`
	Dead          bool    `json:"region_dead"`
}

// churnGraph is the identity pipeline S -> M1 -> M2 -> K on four slots.
func churnGraph() (*graph.Graph, error) {
	var b graph.Builder
	b.AddOperator("S", "n1").AddOperator("M1", "n2").
		AddOperator("M2", "n3").AddOperator("K", "n4")
	b.Chain("S", "M1", "M2", "K")
	return b.Build()
}

func churnRegistry() operator.Registry {
	clone := func(t *tuple.Tuple) *tuple.Tuple { return t.Clone() }
	mapOp := func(id string, cost time.Duration) operator.Factory {
		return func() operator.Operator {
			m := operator.NewMap(id, clone)
			m.CostFn = operator.FixedCost(cost)
			return m
		}
	}
	return operator.Registry{
		"S":  mapOp("S", 100*time.Millisecond),
		"M1": mapOp("M1", 200*time.Millisecond),
		"M2": mapOp("M2", 200*time.Millisecond),
		"K":  mapOp("K", 100*time.Millisecond),
	}
}

// gapTracker accumulates sink-output downtime: simulated time inside the
// measurement window during which the inter-output gap exceeded the
// allowance (outages from recoveries, handoffs, urgent-mode detours).
type gapTracker struct {
	mu        sync.Mutex
	allowance time.Duration
	start     time.Duration // 0 until the window opens
	last      time.Duration
	downtime  time.Duration
}

func (g *gapTracker) open(now time.Duration) {
	g.mu.Lock()
	g.start, g.last = now, now
	g.mu.Unlock()
}

func (g *gapTracker) tick(now time.Duration, end time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.start == 0 || now <= g.last {
		return
	}
	if now > end {
		now = end
	}
	if gap := now - g.last; gap > g.allowance {
		g.downtime += gap - g.allowance
	}
	if now > g.last {
		g.last = now
	}
}

func (g *gapTracker) closeAt(end time.Duration) time.Duration {
	g.tick(end, end)
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.downtime
}

// RunChurn executes one churn scenario to completion.
func RunChurn(s ChurnScenario) (ChurnOutcome, error) {
	s.applyDefaults()
	g, err := churnGraph()
	if err != nil {
		return ChurnOutcome{}, err
	}
	clk := clock.NewScaled(s.Speedup)
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   0.16e6,
		DownBitsPerSecond: 0.7e6,
		Latency:           80 * time.Millisecond,
		SharedBps:         2e6,
	})
	ctrlCfg := controller.Config{
		Clock: clk,
		Cell:  cell,
		Logf: func(format string, args ...interface{}) {
			if churnDebug != nil {
				churnDebug("%8.1fs ctrl: "+format, append([]interface{}{clk.Now().Seconds()}, args...)...)
			}
		},
		CheckpointPeriod: s.CheckpointPeriod,
		PingInterval:     30 * time.Second,
		PingTimeout:      10 * time.Second,
		DebounceWindow:   2 * time.Second,
	}
	if s.SchedulerOn {
		ctrlCfg.Sched = scheduler.New(scheduler.Config{
			Scorer: &scheduler.HeuristicScorer{
				BatteryHorizon: 60 * time.Second,
				LowFraction:    0.15,
				DepartHorizon:  45 * time.Second,
			},
			Cooldown:   20 * time.Second,
			MaxPerTick: 2,
		})
		ctrlCfg.ScheduleTick = 5 * time.Second
	}
	ctrl := controller.New(ctrlCfg)

	gaps := &gapTracker{allowance: 5 * s.SourcePeriod}
	var measureEnd atomic.Int64 // simulated ns; 0 until known
	r, err := region.New(region.Config{
		ID:                "r1",
		Graph:             g,
		Registry:          churnRegistry(),
		Scheme:            s.Scheme,
		Phones:            s.Phones,
		Clock:             clk,
		WiFi:              simnet.WiFiConfig{BitsPerSecond: s.WiFiBps, LossProb: s.WiFiLoss, Seed: s.Seed},
		Cell:              cell,
		ControllerID:      ctrl.ID(),
		PhoneCfg:          phone.Config{BatteryJoules: s.BatteryJoules},
		Broadcast:         broadcast.Config{BlockSize: 1024},
		PreserveBroadcast: s.Scheme.Kind == ft.MS,
		NoRouteCache:      s.NoRouteCache,
		RadiusM:           s.RadiusM,
		OnSinkOutput: func(_ simnet.NodeID, _ *tuple.Tuple) {
			gaps.tick(clk.Now(), time.Duration(measureEnd.Load()))
		},
	})
	if err != nil {
		return ChurnOutcome{}, err
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()

	// Warm up: let the first checkpoint commit before churn starts.
	clk.Sleep(s.Warmup)

	// Ingest: one tuple per SourcePeriod, counted from the window open.
	var ingested int64
	gen := workload.NewGenerator(clk)
	gen.StartBCPBus(func(_ string, v interface{}, _ int, _ string) {
		atomic.AddInt64(&ingested, 1)
		r.Ingest("S", v, 2048, "count")
	}, workload.BCPBusConfig{Period: s.SourcePeriod, Seed: s.Seed})

	start := clk.Now()
	end := start + s.Measure
	measureEnd.Store(int64(end))
	r.Throughput.Start(start)
	r.Latency.Reset()
	gaps.open(start)

	// Churn: Poisson leaves (battery cliffs and commuter walks over the
	// range boundary) plus Poisson joins of fresh phones.
	var churnMu sync.Mutex
	victimised := make(map[simnet.NodeID]bool)
	var joins int64
	slots := g.Slots()
	churn := workload.NewGenerator(clk)
	churn.StartChurn(workload.ChurnHooks{
		Victim: func(rng *rand.Rand) (simnet.NodeID, bool) {
			slot := slots[rng.Intn(len(slots))]
			id, ok := r.Placement(slot)
			if !ok || r.Failed(id) || r.Departed(id) {
				return "", false
			}
			churnMu.Lock()
			defer churnMu.Unlock()
			if victimised[id] {
				return "", false
			}
			victimised[id] = true
			return id, true
		},
		Cliff: func(id simnet.NodeID, fraction float64) {
			if churnDebug != nil {
				churnDebug("%8.1fs churn: cliff %s -> %.0f%%", clk.Now().Seconds(), id, fraction*100)
			}
			if ph := r.Phone(id); ph != nil && !ph.Dead() {
				ph.Revive(fraction)
			}
		},
		Pos: func(id simnet.NodeID) phone.Position {
			if ph := r.Phone(id); ph != nil {
				return ph.Position()
			}
			return phone.Position{}
		},
		SetPos: func(id simnet.NodeID, p phone.Position) {
			if ph := r.Phone(id); ph != nil {
				ph.SetPosition(p)
			}
		},
		SetVel: func(id simnet.NodeID, vx, vy float64) {
			if churnDebug != nil {
				churnDebug("%8.1fs churn: walk %s vel (%.1f, %.1f)", clk.Now().Seconds(), id, vx, vy)
			}
			if ph := r.Phone(id); ph != nil {
				ph.SetVelocity(vx, vy)
			}
		},
		Departed: func(id simnet.NodeID) {
			if churnDebug != nil {
				churnDebug("%8.1fs churn: %s crossed the boundary", clk.Now().Seconds(), id)
			}
			r.DepartPhone(id)
			ctrl.NotifyDeparture(r.ID(), id)
		},
		Join: func(int) {
			r.AddPhone(phone.Config{BatteryJoules: s.BatteryJoules})
			atomic.AddInt64(&joins, 1)
		},
	}, workload.ChurnConfig{
		MeanLeave:     s.MeanLeave,
		MeanJoin:      s.MeanJoin,
		CliffShare:    s.CliffShare,
		CliffFraction: s.CliffFraction,
		WalkSpeed:     s.WalkSpeed,
		RadiusM:       s.RadiusM,
		Seed:          s.Seed,
	})

	clk.Sleep(s.Measure)
	churn.Stop()
	gen.Stop()
	clk.Sleep(s.Drain)

	mode := "reactive"
	if s.SchedulerOn {
		mode = "scheduler"
	}
	out := ChurnOutcome{
		Scheme:     s.Scheme.String(),
		Mode:       mode,
		Ingested:   atomic.LoadInt64(&ingested),
		Delivered:  r.Throughput.Count(),
		Duplicates: r.DuplicateOutputs(),
		Migrations: ctrl.Migrations("r1"),
		Recoveries: ctrl.Recoveries("r1"),
		Departures: ctrl.Departures("r1"),
		Joins:      int(atomic.LoadInt64(&joins)),
		Dead:       ctrl.RegionDead("r1"),
	}
	out.Lost = out.Ingested - out.Delivered
	if out.Lost < 0 {
		out.Lost = 0
	}
	out.ThroughputTPS = float64(out.Delivered) / s.Measure.Seconds()
	out.DowntimeSec = gaps.closeAt(end).Seconds()
	r.Stop()
	ctrl.Stop()
	return out, nil
}

// ChurnSchemes is the default scheme sweep for the churn experiment.
var ChurnSchemes = []ft.Scheme{ft.Rep2Scheme, ft.Dist(2), ft.MSScheme}

// ChurnComparison runs reactive-only and scheduler-on under an identical
// churn schedule (same seed) for every scheme.
func ChurnComparison(base ChurnScenario, schemes []ft.Scheme) ([]ChurnOutcome, error) {
	if len(schemes) == 0 {
		schemes = ChurnSchemes
	}
	var rows []ChurnOutcome
	for _, sch := range schemes {
		for _, on := range []bool{false, true} {
			s := base
			s.Scheme = sch
			s.SchedulerOn = on
			o, err := RunChurn(s)
			if err != nil {
				return nil, fmt.Errorf("churn %s scheduler=%v: %w", sch, on, err)
			}
			rows = append(rows, o)
		}
	}
	return rows, nil
}

// ChurnReport is the machine-readable experiment artifact
// (BENCH_scheduler.json in CI).
type ChurnReport struct {
	Experiment string         `json:"experiment"`
	Seed       int64          `json:"seed"`
	MeasureSec float64        `json:"measure_sec"`
	Rows       []ChurnOutcome `json:"rows"`
}

// WriteChurnJSON emits the churn comparison as indented JSON.
func WriteChurnJSON(w io.Writer, base ChurnScenario, rows []ChurnOutcome) error {
	base.applyDefaults()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ChurnReport{
		Experiment: "churn: reactive recovery vs adaptive placement scheduler",
		Seed:       base.Seed,
		MeasureSec: base.Measure.Seconds(),
		Rows:       rows,
	})
}

// WriteChurnTable renders the comparison for humans.
func WriteChurnTable(w io.Writer, rows []ChurnOutcome) {
	fmt.Fprintln(w, "Churn — reactive recovery vs adaptive placement scheduler")
	fmt.Fprintf(w, "%-8s %-10s %10s %10s %6s %10s %11s %11s %6s\n",
		"scheme", "mode", "ingested", "delivered", "lost", "downtime", "migrations", "recoveries", "dead")
	for _, o := range rows {
		fmt.Fprintf(w, "%-8s %-10s %10d %10d %6d %9.1fs %11d %11d %6v\n",
			o.Scheme, o.Mode, o.Ingested, o.Delivered, o.Lost, o.DowntimeSec, o.Migrations, o.Recoveries, o.Dead)
	}
}

// churnDebug, when non-nil, receives churn event traces (probing only).
var churnDebug func(string, ...interface{})
