package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// fedSweep runs the {smallest, largest} sweep the assertions need; the
// full 5-point sweep is CI's job.
func fedSweep(t *testing.T, seed int64) []FederationPoint {
	t.Helper()
	rows, err := FederationComparison(FederationScenario{
		RegionCounts: []int{4, 64},
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows (2 modes x 2 counts), got %d", len(rows))
	}
	return rows
}

func fedRow(t *testing.T, rows []FederationPoint, mode string, regions int) FederationPoint {
	t.Helper()
	for _, p := range rows {
		if p.Mode == mode && p.Regions == regions {
			return p
		}
	}
	t.Fatalf("no %s row at %d regions", mode, regions)
	return FederationPoint{}
}

// TestFederationFanoutScaling is the experiment's headline: growing the
// fleet 16x leaves the gossip overlay's busiest node within 2x of its
// small-fleet control egress, while the unicast hub's grows at least 8x.
func TestFederationFanoutScaling(t *testing.T) {
	rows := fedSweep(t, 7)
	g4 := fedRow(t, rows, "gossip", 4)
	g64 := fedRow(t, rows, "gossip", 64)
	u4 := fedRow(t, rows, "unicast", 4)
	u64 := fedRow(t, rows, "unicast", 64)

	for _, p := range []FederationPoint{g4, g64, u4, u64} {
		if p.MaxCtrlBytes <= 0 || p.CtrlBytesPerPhone <= 0 {
			t.Fatalf("%s/%d: no control bytes measured: %+v", p.Mode, p.Regions, p)
		}
	}
	if ratio := g64.CtrlBytesPerPhone / g4.CtrlBytesPerPhone; ratio > 2.0 {
		t.Errorf("gossip busiest-node ctrl bytes/phone grew %.2fx from 4 to 64 regions (want <= 2x): %.1f -> %.1f",
			ratio, g4.CtrlBytesPerPhone, g64.CtrlBytesPerPhone)
	}
	if ratio := u64.CtrlBytesPerPhone / u4.CtrlBytesPerPhone; ratio < 8.0 {
		t.Errorf("unicast hub ctrl bytes/phone grew only %.2fx from 4 to 64 regions (want >= 8x): %.1f -> %.1f",
			ratio, u4.CtrlBytesPerPhone, u64.CtrlBytesPerPhone)
	}
	// At the city scale the gossip overlay must also beat the hub
	// outright, not just scale better.
	if g64.CtrlBytesPerPhone >= u64.CtrlBytesPerPhone {
		t.Errorf("at 64 regions gossip (%.1f B/phone) should beat unicast (%.1f B/phone)",
			g64.CtrlBytesPerPhone, u64.CtrlBytesPerPhone)
	}
}

// TestFederationExactlyOnce pins the cross-region stream semantics: every
// envelope arrives, every injected retry is dropped at the dedup line,
// and the consumer-side operator never sees a sequence twice.
func TestFederationExactlyOnce(t *testing.T) {
	rows := fedSweep(t, 7)
	for _, p := range rows {
		if p.Mode != "gossip" {
			continue
		}
		if p.XRegionSent == 0 {
			t.Fatalf("%d regions: no cross-region tuples sent", p.Regions)
		}
		if p.XRegionDelivered != p.XRegionSent {
			t.Errorf("%d regions: delivered %d of %d cross-region tuples",
				p.Regions, p.XRegionDelivered, p.XRegionSent)
		}
		if p.XRegionDupsDropped != p.XRegionRetries {
			t.Errorf("%d regions: dropped %d dups, injected %d retries",
				p.Regions, p.XRegionDupsDropped, p.XRegionRetries)
		}
		if p.XRegionDupOutputs != 0 {
			t.Errorf("%d regions: %d duplicate outputs reached the consumer",
				p.Regions, p.XRegionDupOutputs)
		}
		if p.AggOutputs != int(p.XRegionSent) {
			t.Errorf("%d regions: agg stage emitted %d outputs for %d inputs",
				p.Regions, p.AggOutputs, p.XRegionSent)
		}
	}
}

// TestFederationDeterminism: same seed, same sweep — byte counts and
// round counts included.
func TestFederationDeterminism(t *testing.T) {
	a := fedSweep(t, 11)
	b := fedSweep(t, 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweep not deterministic:\n a=%+v\n b=%+v", a, b)
	}
}

func TestFederationReportJSON(t *testing.T) {
	rows := fedSweep(t, 7)
	var buf bytes.Buffer
	if err := WriteFederationJSON(&buf, FederationScenario{Seed: 7}, rows); err != nil {
		t.Fatal(err)
	}
	var rep FederationReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Rows) != len(rows) || rep.Seed != 7 {
		t.Fatalf("report round-trip lost data: %+v", rep)
	}
	WriteFederationTable(&buf, rows)
}
