package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"mobistreams/internal/node"
)

// EmitRow is one emit-path measurement: the contract mode and its
// per-tuple allocation and latency cost through a compiled single-slot
// chain.
type EmitRow struct {
	Mode        string  `json:"mode"` // "context" or "legacy"
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
}

// EmitReport is the machine-readable emit-path comparison the regression
// gate consumes (BENCH_emit.json in CI).
type EmitReport struct {
	Iters int       `json:"iters"`
	Rows  []EmitRow `json:"rows"`
}

// RunEmit benchmarks the operator emission path under both contracts: the
// emit-context contract must hold 0 allocs/op in steady state (the gate
// fails otherwise), with the legacy []Out adapter as the contrast row.
func RunEmit(iters int, w io.Writer) EmitReport {
	if iters <= 0 {
		iters = 200000
	}
	rep := EmitReport{Iters: iters}
	fmt.Fprintf(w, "\n=== Emit path: context contract vs legacy adapter (%d tuples) ===\n", iters)
	fmt.Fprintf(w, "%-10s %14s %12s\n", "mode", "allocs/op", "ns/op")
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"context", false}, {"legacy", true}} {
		res := node.RunEmitBench(mode.legacy, iters)
		rep.Rows = append(rep.Rows, EmitRow{Mode: mode.name, AllocsPerOp: res.AllocsPerOp, NsPerOp: res.NsPerOp})
		fmt.Fprintf(w, "%-10s %14.3f %12.1f\n", mode.name, res.AllocsPerOp, res.NsPerOp)
	}
	return rep
}

// WriteEmitJSON renders the report machine-readably for the gate.
func WriteEmitJSON(w io.Writer, rep EmitReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
