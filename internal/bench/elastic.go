package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/controller"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/operator"
	"mobistreams/internal/phone"
	"mobistreams/internal/region"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
)

// ElasticScenario configures the elastic keyed-parallelism experiment: a
// keyed tally group under a skewed-key moving hotspot, run with the
// backpressure-driven elasticity policy on or off.
//
// The workload keeps the total ingest rate constant and shifts per-key
// weight: during a hotspot phase every key in one instance's range carries
// HotFactor× the weight of a cold key, so the owning instance saturates
// (arrival > its 1/TallyCost service rate) while the group as a whole is
// lightly loaded — precisely the case static keyed parallelism cannot fix
// and a live key-range split can.
type ElasticScenario struct {
	// ElasticOn runs the split/merge policy loop against live telemetry.
	ElasticOn bool
	// Phones is the region population (default 10: 9 slots + 1 idle).
	Phones int
	// Speedup is the simulated-to-wall clock ratio (default 15). Two
	// forces pin it: TallyCost/Speedup must stay comfortably above the
	// scaled clock's 150 µs wall spin window so executors spend their
	// service time in time.Sleep and genuinely run in parallel even on a
	// single-core host; and every wall-clock hiccup (GC, OS scheduling)
	// inflates measured sim latency by Speedup×, so a high ratio lets a
	// ~50 ms stall masquerade as seconds of p99. 15 keeps a full run
	// under ~5 s wall while bounding stall amplification.
	Speedup float64
	// Keys is the keyspace size (default 64, keys "k00".."k63").
	Keys int
	// Rate is the total ingest rate in tuples per simulated second,
	// constant across all phases (default 22 — each of the two active
	// instances runs at ~0.66 utilisation uniform, and a hotspot pushes
	// its owner to ~1.2, saturating it decisively).
	Rate float64
	// HotFactor is the per-key weight multiplier inside the hotspot range
	// (default 10).
	HotFactor float64
	// TallyCost is the keyed operator's per-tuple processing cost
	// (default 60 ms, a 4 ms wall sleep at the default speedup — see
	// Speedup).
	TallyCost time.Duration
	// Warmup precedes measurement (default 5 s); PreMeasure is the uniform
	// window whose p99 is the flat baseline (default 15 s). Each hotspot
	// phase runs AdaptGrace (default 10 s, the window the policy has to
	// react) followed by a HotMeasure window (default 15 s) whose p99 is
	// reported.
	Warmup     time.Duration
	PreMeasure time.Duration
	AdaptGrace time.Duration
	HotMeasure time.Duration
	// PolicyPeriod is the telemetry poll interval (default 1 s);
	// HotBacklog and Cooldown override the policy defaults (default 10
	// queued tuples / 4 s — a saturated instance's excess ~3 tuples/s
	// crosses 10 within a few seconds, jitter at 0.66 load does not).
	PolicyPeriod time.Duration
	HotBacklog   int
	Cooldown     time.Duration
	// ColdFraction overrides the policy's merge threshold (default 0.05:
	// the cold half of the keyspace still feeds its owners a trickle, and
	// the stock 0.1-of-mean threshold would merge away the instance that
	// owns exactly the range the moving hotspot lands on next).
	ColdFraction float64
	Seed         int64
}

func (s *ElasticScenario) applyDefaults() {
	if s.Phones <= 0 {
		s.Phones = 10
	}
	if s.Speedup <= 0 {
		s.Speedup = 15
	}
	if s.Keys <= 0 {
		s.Keys = 64
	}
	if s.Rate <= 0 {
		s.Rate = 22
	}
	if s.HotFactor <= 0 {
		s.HotFactor = 10
	}
	if s.TallyCost <= 0 {
		s.TallyCost = 60 * time.Millisecond
	}
	if s.Warmup <= 0 {
		s.Warmup = 5 * time.Second
	}
	if s.PreMeasure <= 0 {
		s.PreMeasure = 15 * time.Second
	}
	if s.AdaptGrace <= 0 {
		s.AdaptGrace = 10 * time.Second
	}
	if s.HotMeasure <= 0 {
		s.HotMeasure = 15 * time.Second
	}
	if s.PolicyPeriod <= 0 {
		s.PolicyPeriod = time.Second
	}
	if s.HotBacklog <= 0 {
		s.HotBacklog = 10
	}
	if s.Cooldown <= 0 {
		s.Cooldown = 4 * time.Second
	}
	if s.ColdFraction <= 0 {
		s.ColdFraction = 0.05
	}
}

// ElasticOutcome is one run's result, JSON-tagged for the CI artifact.
type ElasticOutcome struct {
	Mode            string  `json:"mode"` // "static" or "elastic"
	Ingested        int64   `json:"ingested"`
	Delivered       int64   `json:"delivered"`
	Duplicates      int64   `json:"duplicates"`
	P99PreMs        float64 `json:"p99_pre_ms"`
	P99HotMs        float64 `json:"p99_hotspot_ms"`
	DegradeFactor   float64 `json:"degrade_factor"`
	Splits          int     `json:"splits"`
	Merges          int     `json:"merges"`
	ActiveInstances int     `json:"active_instances"`
}

const (
	elasticLogical = "tally"
	elasticPar     = 2
	elasticMaxPar  = 6
)

// elasticGraph is SRC -> KB -> tally (keyed, 2 of 6 active) -> SINK.
func elasticGraph() (*graph.Graph, error) {
	var b graph.Builder
	b.AddOperator("SRC", "s1").AddOperator("KB", "s2").AddOperator("SINK", "s9")
	b.AddKeyedOperator(elasticLogical, "kt", elasticPar, elasticMaxPar)
	b.Connect("SRC", "KB")
	b.ConnectToGroup("KB", elasticLogical)
	b.ConnectFromGroup(elasticLogical, "SINK")
	return b.Build()
}

func elasticRegistry(cost time.Duration) operator.Registry {
	reg := operator.Registry{
		"SRC": func() operator.Operator { return operator.NewPassthrough("SRC") },
		"KB": func() operator.Operator {
			return operator.NewKeyTag("KB", func(t *tuple.Tuple) string { return t.Kind })
		},
		"SINK": func() operator.Operator { return operator.NewPassthrough("SINK") },
	}
	for i := 0; i < elasticMaxPar; i++ {
		id := fmt.Sprintf("%s#%d", elasticLogical, i)
		reg[id] = func() operator.Operator {
			kt := operator.NewKeyedTally(id)
			kt.CostFn = operator.FixedCost(cost)
			return kt
		}
	}
	return reg
}

// RunElastic executes one elastic scenario: uniform baseline window, then
// two hotspot phases (the skew lands on instance 0's range, then moves to
// instance 1's), reporting the flat-phase and worst hotspot-phase p99.
func RunElastic(s ElasticScenario) (ElasticOutcome, error) {
	s.applyDefaults()
	g, err := elasticGraph()
	if err != nil {
		return ElasticOutcome{}, err
	}
	clk := clock.NewScaled(s.Speedup)
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   8e6,
		DownBitsPerSecond: 8e6,
	})
	ctrl := controller.New(controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: time.Hour,
		PingInterval:     30 * time.Second,
		PingTimeout:      10 * time.Second,
		DebounceWindow:   2 * time.Second,
	})
	r, err := region.New(region.Config{
		ID:       "r1",
		Graph:    g,
		Registry: elasticRegistry(s.TallyCost),
		Scheme:   ft.MSScheme,
		Phones:   s.Phones,
		// Saturation physics demand exact per-instance service rates in
		// simulated time (utilisation ~0.66 uniform, ~1.2 under the
		// hotspot); virtual CPU anchoring keeps them exact even when the
		// host schedules the executors late.
		PhoneCfg:     phone.Config{VirtualCPUTime: true},
		Clock:        clk,
		WiFi:         simnet.WiFiConfig{BitsPerSecond: 100e6, Seed: s.Seed},
		Cell:         cell,
		ControllerID: ctrl.ID(),
		Broadcast:    broadcast.Config{BlockSize: 1024},
	})
	if err != nil {
		return ElasticOutcome{}, err
	}
	// Two active instances split the keyspace at the midpoint key, so each
	// hotspot phase lands entirely on one instance's range.
	mid := fmt.Sprintf("k%02d", s.Keys/2)
	if err := r.SeedKeyRanges(elasticLogical, []string{mid}); err != nil {
		return ElasticOutcome{}, err
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()
	defer func() {
		r.Stop()
		ctrl.Stop()
	}()

	// Workload: Rate tuples per simulated second, emitted in 50 ms ticks
	// with fractional carry so the sim-time rate holds regardless of wall
	// speed. Phase 0 is uniform; phase 1/2 give every key in the
	// lower/upper half HotFactor× the weight of a cold key at the same
	// total rate.
	var phase atomic.Int32
	var ingested atomic.Int64
	const genTick = 50 * time.Millisecond
	half := s.Keys / 2
	hotShare := s.HotFactor * float64(half) / (s.HotFactor*float64(half) + float64(s.Keys-half))
	stopGen := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(s.Seed))
		seq, acc := 0, 0.0
		last := clk.Now()
		for {
			select {
			case <-stopGen:
				return
			default:
			}
			clk.Sleep(genTick)
			now := clk.Now()
			acc += s.Rate * (now - last).Seconds()
			last = now
			ph := phase.Load()
			for ; acc >= 1; acc-- {
				var key int
				switch {
				case ph == 0:
					key = rng.Intn(s.Keys)
				case rng.Float64() < hotShare:
					key = rng.Intn(half)
					if ph == 2 {
						key += half
					}
				default:
					key = rng.Intn(s.Keys - half)
					if ph == 1 {
						key += half
					}
				}
				seq++
				ingested.Add(1)
				r.Ingest("SRC", seq, 512, fmt.Sprintf("k%02d", key))
			}
		}
	}()

	// Elasticity: poll per-instance telemetry, execute the policy's plan.
	splits, merges := 0, 0
	stopPolicy := make(chan struct{})
	if s.ElasticOn {
		pol := &scheduler.ElasticPolicy{HotBacklog: s.HotBacklog, Cooldown: s.Cooldown, ColdFraction: s.ColdFraction}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopPolicy:
					return
				default:
				}
				clk.Sleep(s.PolicyPeriod)
				stats := r.KeyedTelemetry(elasticLogical)
				act := pol.Plan(clk.Now(), elasticLogical, stats)
				if act == nil {
					continue
				}
				if elasticDebug != nil {
					elasticDebug("%7.1fs plan %+v stats %+v", clk.Now().Seconds(), *act, stats)
				}
				if act.Split {
					if err := r.SplitInstance(elasticLogical, act.From, act.To); err == nil {
						splits++
					} else if elasticDebug != nil {
						elasticDebug("%7.1fs split failed: %v", clk.Now().Seconds(), err)
					}
				} else if err := r.MergeKeyRange(elasticLogical, act.From, act.To); err == nil {
					merges++
				} else if elasticDebug != nil {
					elasticDebug("%7.1fs merge failed: %v", clk.Now().Seconds(), err)
				}
			}
		}()
	}

	// Each window's p99 is the minimum across three sub-windows: a wall
	// hiccup (GC, OS scheduling) stretches sim latency by Speedup× and
	// would poison a single window's tail, but it lands in one sub-window
	// and the min discards it. The statistic still exposes saturation —
	// a genuinely overloaded instance's queue keeps every sub-window's
	// tail high, so only transient noise is filtered.
	measureP99 := func(window time.Duration) time.Duration {
		const subs = 3
		var best time.Duration
		for i := 0; i < subs; i++ {
			r.Latency.Reset()
			clk.Sleep(window / subs)
			p := r.Latency.Percentile(99)
			if i == 0 || p < best {
				best = p
			}
		}
		return best
	}

	clk.Sleep(s.Warmup)
	p99Pre := measureP99(s.PreMeasure)

	var p99Hot time.Duration
	for ph := int32(1); ph <= 2; ph++ {
		phase.Store(ph)
		clk.Sleep(s.AdaptGrace)
		if p := measureP99(s.HotMeasure); p > p99Hot {
			p99Hot = p
		}
	}

	close(stopGen)
	close(stopPolicy)
	wg.Wait()
	clk.Sleep(2 * time.Second) // drain the pipeline tail

	mode := "static"
	if s.ElasticOn {
		mode = "elastic"
	}
	out := ElasticOutcome{
		Mode:       mode,
		Ingested:   ingested.Load(),
		Delivered:  r.Throughput.Count(),
		Duplicates: r.DuplicateOutputs(),
		P99PreMs:   float64(p99Pre) / float64(time.Millisecond),
		P99HotMs:   float64(p99Hot) / float64(time.Millisecond),
		Splits:     splits,
		Merges:     merges,
	}
	if p99Pre > 0 {
		out.DegradeFactor = float64(p99Hot) / float64(p99Pre)
	}
	if grp, ok := r.KeyedGroup(elasticLogical); ok {
		out.ActiveInstances = len(grp.Table().Instances())
	}
	return out, nil
}

// ElasticComparison runs the identical workload (same seed and phase
// schedule) with the elasticity policy off and on.
func ElasticComparison(base ElasticScenario) ([]ElasticOutcome, error) {
	var rows []ElasticOutcome
	for _, on := range []bool{false, true} {
		s := base
		s.ElasticOn = on
		o, err := RunElastic(s)
		if err != nil {
			return nil, fmt.Errorf("elastic on=%v: %w", on, err)
		}
		rows = append(rows, o)
	}
	return rows, nil
}

// ElasticReport is the machine-readable experiment artifact
// (BENCH_elastic.json in CI).
type ElasticReport struct {
	Experiment string           `json:"experiment"`
	Seed       int64            `json:"seed"`
	Rows       []ElasticOutcome `json:"rows"`
}

// WriteElasticJSON emits the comparison as indented JSON.
func WriteElasticJSON(w io.Writer, base ElasticScenario, rows []ElasticOutcome) error {
	base.applyDefaults()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ElasticReport{
		Experiment: "elastic: keyed parallelism under a skewed moving hotspot",
		Seed:       base.Seed,
		Rows:       rows,
	})
}

// WriteElasticTable renders the comparison for humans.
func WriteElasticTable(w io.Writer, rows []ElasticOutcome) {
	fmt.Fprintln(w, "Elastic — static vs elastic keyed parallelism, 10x moving hotspot")
	fmt.Fprintf(w, "%-8s %9s %10s %5s %12s %12s %8s %7s %7s %7s\n",
		"mode", "ingested", "delivered", "dups", "p99 pre ms", "p99 hot ms", "degrade", "splits", "merges", "active")
	for _, o := range rows {
		fmt.Fprintf(w, "%-8s %9d %10d %5d %12.1f %12.1f %7.1fx %7d %7d %7d\n",
			o.Mode, o.Ingested, o.Delivered, o.Duplicates, o.P99PreMs, o.P99HotMs, o.DegradeFactor, o.Splits, o.Merges, o.ActiveInstances)
	}
}

// elasticDebug, when non-nil, receives policy action traces (probing only).
var elasticDebug func(string, ...interface{})
