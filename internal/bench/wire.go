package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"mobistreams/internal/tuple"
	"mobistreams/internal/wire"
)

// WireRow is one wire-codec measurement: an encode or decode operation
// with its per-frame allocation count, latency and frame size.
type WireRow struct {
	Op          string  `json:"op"` // "encode_stream", "decode_stream", ...
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	FrameBytes  int     `json:"frame_bytes"`
}

// WireReport is the machine-readable wire-codec comparison the regression
// gate consumes (BENCH_wire.json in CI). The gate pins every encode row
// at 0 allocs/op: append-to-buffer encoding into a presized buffer must
// not allocate in steady state.
type WireReport struct {
	Iters int       `json:"iters"`
	Rows  []WireRow `json:"rows"`
}

// benchStream is the data-plane message the codec benchmark drives: a
// realistic mid-pipeline tuple, the hot frame on every edge.
func benchStream() *wire.Stream {
	return &wire.Stream{
		FromSlot: "s1", FromOp: "win8", ToSlot: "s2", ToOp: "agg",
		EdgeSeq: 123456,
		Item: tuple.DataItem(&tuple.Tuple{
			Seq: 123456, Source: "src", Kind: "image",
			Created: 42 * time.Millisecond, Size: 4096, Value: 3.14159,
		}),
	}
}

func benchBatch(n int) *wire.Batch {
	b := &wire.Batch{ToSlot: "s2"}
	for i := 0; i < n; i++ {
		m := benchStream()
		m.EdgeSeq = uint64(i + 1)
		b.Msgs = append(b.Msgs, *m)
	}
	return b
}

// measure runs fn iters times under the Mallocs counter, after a short
// warmup, and returns allocs/op and ns/op — the same methodology as the
// emit-path gate.
func measure(iters int, fn func()) (allocsPerOp, nsPerOp float64) {
	for i := 0; i < 128; i++ {
		fn()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m0 := ms.Mallocs
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	return float64(ms.Mallocs-m0) / float64(iters),
		float64(elapsed.Nanoseconds()) / float64(iters)
}

// RunWire benchmarks the wire codec: encode paths into a reused presized
// buffer (must hold 0 allocs/op — that is the zero-alloc design claim the
// gate enforces) and decode paths as the contrast rows (decoding
// materialises tuples, so it allocates a small constant per frame).
func RunWire(iters int, w io.Writer) WireReport {
	if iters <= 0 {
		iters = 200000
	}
	rep := WireReport{Iters: iters}
	fmt.Fprintf(w, "\n=== Wire codec: encode (pinned 0 allocs) vs decode (%d frames) ===\n", iters)
	fmt.Fprintf(w, "%-16s %14s %12s %12s\n", "op", "allocs/op", "ns/op", "frame bytes")

	add := func(op string, frameBytes int, fn func()) {
		allocs, ns := measure(iters, fn)
		rep.Rows = append(rep.Rows, WireRow{Op: op, AllocsPerOp: allocs, NsPerOp: ns, FrameBytes: frameBytes})
		fmt.Fprintf(w, "%-16s %14.3f %12.1f %12d\n", op, allocs, ns, frameBytes)
	}

	sm := benchStream()
	ssz, err := wire.SizeStream(sm)
	if err != nil {
		panic(err)
	}
	sbuf := make([]byte, 0, ssz)
	add("encode_stream", ssz, func() {
		if _, err := wire.AppendStream(sbuf[:0], sm); err != nil {
			panic(err)
		}
	})

	bm := benchBatch(16)
	bsz, err := wire.SizeBatch(bm)
	if err != nil {
		panic(err)
	}
	bbuf := make([]byte, 0, bsz)
	add("encode_batch16", bsz, func() {
		if _, err := wire.AppendBatch(bbuf[:0], bm); err != nil {
			panic(err)
		}
	})

	sframe, err := wire.AppendStream(make([]byte, 0, ssz), sm)
	if err != nil {
		panic(err)
	}
	add("decode_stream", len(sframe), func() {
		if _, err := wire.DecodeStream(sframe); err != nil {
			panic(err)
		}
	})

	bframe, err := wire.AppendBatch(make([]byte, 0, bsz), bm)
	if err != nil {
		panic(err)
	}
	add("decode_batch16", len(bframe), func() {
		if _, err := wire.DecodeBatch(bframe); err != nil {
			panic(err)
		}
	})

	return rep
}

// WriteWireJSON renders the report machine-readably for the gate.
func WriteWireJSON(w io.Writer, rep WireReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
