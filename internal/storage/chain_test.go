package storage

import (
	"bytes"
	"testing"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/operator"
)

// putChain stores a three-link chain for slot: full v1, delta v2, delta v3
// over a single synthetic operator entry, and returns the per-version
// state bytes.
func putChain(t *testing.T, s *Store, slot string) map[uint64][]byte {
	t.Helper()
	states := map[uint64][]byte{
		1: bytes.Repeat([]byte{1}, 256),
		2: append(bytes.Repeat([]byte{1}, 255), 9),
		3: append(bytes.Repeat([]byte{1}, 254), 8, 9),
	}
	full := &checkpoint.Blob{Slot: slot, Version: 1,
		Ops: map[string][]byte{"op": states[1]}, Size: 256, FullSize: 256}
	full.Seal()
	s.PutBlob(full)
	prev := states[1]
	for v := uint64(2); v <= 3; v++ {
		patch := operator.EncodePatch(prev, states[v])
		b := &checkpoint.Blob{Slot: slot, Version: v, Base: v - 1,
			Ops:      map[string][]byte{"op": patch},
			DeltaOps: map[string]bool{"op": true},
			Size:     len(patch), FullSize: 256}
		b.Seal()
		s.PutBlob(b)
		prev = states[v]
	}
	return states
}

func TestMaterializeBlobReplaysChain(t *testing.T) {
	s := New()
	states := putChain(t, s, "n1")
	for v := uint64(1); v <= 3; v++ {
		blob, err := s.MaterializeBlob(v, "n1")
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		if !bytes.Equal(blob.Ops["op"], states[v]) {
			t.Fatalf("v%d materialised wrong state", v)
		}
		if blob.IsDelta() {
			t.Fatalf("v%d materialised blob still a delta", v)
		}
	}
	if !s.HasChain(3, "n1") || s.HasChain(3, "nope") {
		t.Fatal("HasChain wrong")
	}
}

func TestMaterializeBlobTornChain(t *testing.T) {
	s := New()
	putChain(t, s, "n1")
	// Tear the chain: drop the base, keep the deltas.
	s.mu.Lock()
	delete(s.states[1], "n1")
	s.mu.Unlock()
	if _, err := s.MaterializeBlob(3, "n1"); err == nil {
		t.Fatal("torn chain materialised")
	}
	if s.HasChain(3, "n1") {
		t.Fatal("torn chain reported complete")
	}
	if s.HasAllBlobs(3, []string{"n1"}) {
		t.Fatal("HasAllBlobs ignored the torn chain")
	}
}

func TestCommitRetainsChainBases(t *testing.T) {
	s := New()
	states := putChain(t, s, "n1")
	// A second slot that rebased at v3: its older blobs are collectable.
	old := &checkpoint.Blob{Slot: "n2", Version: 1, Ops: map[string][]byte{"op": {1}}, Size: 1, FullSize: 1}
	old.Seal()
	s.PutBlob(old)
	fresh := &checkpoint.Blob{Slot: "n2", Version: 3, Ops: map[string][]byte{"op": {3}}, Size: 1, FullSize: 1}
	fresh.Seal()
	s.PutBlob(fresh)

	s.Commit(3)
	// n1's chain links v1 and v2 must survive GC: v3 is a delta over them.
	blob, err := s.MaterializeBlob(3, "n1")
	if err != nil {
		t.Fatalf("committed chain torn by GC: %v", err)
	}
	if !bytes.Equal(blob.Ops["op"], states[3]) {
		t.Fatal("materialised state wrong after GC")
	}
	// n2's v1 blob is unreferenced and must be gone.
	if _, ok := s.Blob(1, "n2"); ok {
		t.Fatal("unreferenced old blob survived commit GC")
	}
}
