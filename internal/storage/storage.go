// Package storage is a phone's local flash store for checkpoint blobs,
// source-preservation logs (MobiStreams, §III-B step 3) and edge
// input-preservation logs (the local/dist-n baselines, §IV-B). Byte
// accounting feeds Fig. 10a.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/tuple"
)

// Store is one phone's local storage. It is safe for concurrent use. A
// phone failure makes its store unavailable — the region never reads a dead
// phone's store.
type Store struct {
	mu sync.Mutex
	// states: version -> slot -> blob. Under MobiStreams every phone
	// eventually holds every slot's blob; under dist-n only n peers and
	// the owner do; under local only the owner.
	states map[uint64]map[string]*checkpoint.Blob
	// srcLogs: version -> source operator -> tuples admitted since that
	// version's cut. Replayed during catch-up.
	srcLogs map[uint64]map[string][]*tuple.Tuple
	// edgeLogs: downstream slot -> retained output tuples with their
	// edge sequence numbers (input preservation for local/dist-n).
	edgeLogs map[string][]EdgeEntry
	// committed is the most recent fully committed checkpoint version.
	committed uint64

	cumSourceBytes int64
	cumEdgeBytes   int64
	lost           bool
}

// EdgeEntry is one retained output tuple on an edge, with the operator
// endpoints needed to re-address it during a resend.
type EdgeEntry struct {
	EdgeSeq uint64
	FromOp  string
	ToOp    string
	T       *tuple.Tuple
}

// New creates an empty store.
func New() *Store {
	return &Store{
		states:   make(map[uint64]map[string]*checkpoint.Blob),
		srcLogs:  make(map[uint64]map[string][]*tuple.Tuple),
		edgeLogs: make(map[string][]EdgeEntry),
	}
}

// MarkLost marks the store's contents destroyed (phone failed). Reads
// return nothing afterwards.
func (s *Store) MarkLost() {
	s.mu.Lock()
	s.lost = true
	s.states = make(map[uint64]map[string]*checkpoint.Blob)
	s.srcLogs = make(map[uint64]map[string][]*tuple.Tuple)
	s.edgeLogs = make(map[string][]EdgeEntry)
	s.mu.Unlock()
}

// Lost reports whether the store's contents were destroyed.
func (s *Store) Lost() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lost
}

// PutBlob saves a checkpoint blob (own or a peer's).
func (s *Store) PutBlob(b *checkpoint.Blob) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lost {
		return
	}
	m, ok := s.states[b.Version]
	if !ok {
		m = make(map[string]*checkpoint.Blob)
		s.states[b.Version] = m
	}
	m[b.Slot] = b
}

// Blob fetches a slot's blob for a version.
func (s *Store) Blob(version uint64, slot string) (*checkpoint.Blob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.states[version][slot]
	return b, ok
}

// HasAllBlobs reports whether the store can restore every given slot at a
// version — the recoverability condition for a MobiStreams replacement.
// With delta chains this means a complete chain per slot, not just the
// version's own blob.
func (s *Store) HasAllBlobs(version uint64, slots []string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, slot := range slots {
		if _, err := s.chainLinksLocked(version, slot); err != nil {
			return false
		}
	}
	return true
}

// HasChain reports whether the store holds a complete base-to-version blob
// chain for (version, slot).
func (s *Store) HasChain(version uint64, slot string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.chainLinksLocked(version, slot)
	return err == nil
}

// chainLinksLocked walks the Base pointers from (version, slot) down to the
// full base blob and returns the chain base-first. Caller holds s.mu.
func (s *Store) chainLinksLocked(version uint64, slot string) ([]*checkpoint.Blob, error) {
	var links []*checkpoint.Blob
	v := version
	for {
		b, ok := s.states[v][slot]
		if !ok {
			return nil, fmt.Errorf("storage: missing chain link %s v%d (torn chain from v%d)", slot, v, version)
		}
		links = append(links, b)
		if !b.IsDelta() {
			break
		}
		if b.Base >= v {
			return nil, fmt.Errorf("storage: %s v%d chains forward to v%d", slot, v, b.Base)
		}
		v = b.Base
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return links, nil
}

// MaterializeBlob rebuilds the full state blob for (version, slot) by
// replaying its delta chain; every link's CRC is verified, so a torn or
// corrupted upload surfaces as an error rather than bad operator state.
func (s *Store) MaterializeBlob(version uint64, slot string) (*checkpoint.Blob, error) {
	s.mu.Lock()
	links, err := s.chainLinksLocked(version, slot)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return checkpoint.MaterializeChain(links)
}

// AppendSource preserves one admitted input tuple for a version's log.
func (s *Store) AppendSource(version uint64, source string, t *tuple.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lost {
		return
	}
	m, ok := s.srcLogs[version]
	if !ok {
		m = make(map[string][]*tuple.Tuple)
		s.srcLogs[version] = m
	}
	m[source] = append(m[source], t)
	s.cumSourceBytes += int64(t.Size)
}

// SourceLog returns the preserved input for a version and source. The
// returned slice is a snapshot; later appends do not affect it.
func (s *Store) SourceLog(version uint64, source string) []*tuple.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	log := s.srcLogs[version][source]
	return append([]*tuple.Tuple(nil), log...)
}

// SourceLogLen reports the current length of a version's source log.
func (s *Store) SourceLogLen(version uint64, source string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.srcLogs[version][source])
}

// SourceLogsFrom returns the concatenation, in version order, of all
// preserved input for the source with version >= from. Recovery to version
// v replays exactly this: bucket v holds input since v's cut, and buckets
// of later (uncommitted, aborted) checkpoints hold the input after their
// cuts.
func (s *Store) SourceLogsFrom(from uint64, source string) []*tuple.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	var versions []uint64
	for v := range s.srcLogs {
		if v >= from {
			versions = append(versions, v)
		}
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	var out []*tuple.Tuple
	for _, v := range versions {
		out = append(out, s.srcLogs[v][source]...)
	}
	return out
}

// AppendEdge retains one output tuple on an edge (input preservation).
func (s *Store) AppendEdge(downstreamSlot string, edgeSeq uint64, fromOp, toOp string, t *tuple.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lost {
		return
	}
	s.edgeLogs[downstreamSlot] = append(s.edgeLogs[downstreamSlot],
		EdgeEntry{EdgeSeq: edgeSeq, FromOp: fromOp, ToOp: toOp, T: t})
	s.cumEdgeBytes += int64(t.Size)
}

// AppendSourceReplica stores a peer's preservation broadcast without
// counting it toward this phone's cumulative preservation metric: the
// region-level Fig. 10a metric counts each preserved tuple once, at its
// source.
func (s *Store) AppendSourceReplica(version uint64, source string, t *tuple.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lost {
		return
	}
	m, ok := s.srcLogs[version]
	if !ok {
		m = make(map[string][]*tuple.Tuple)
		s.srcLogs[version] = m
	}
	m[source] = append(m[source], t)
}

// EdgeLogSince returns retained entries on an edge with EdgeSeq > after.
func (s *Store) EdgeLogSince(downstreamSlot string, after uint64) []EdgeEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []EdgeEntry
	for _, e := range s.edgeLogs[downstreamSlot] {
		if e.EdgeSeq > after {
			out = append(out, e)
		}
	}
	return out
}

// TruncateEdge drops retained entries with EdgeSeq <= upto — called when
// the downstream slot's checkpoint covering them commits.
func (s *Store) TruncateEdge(downstreamSlot string, upto uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	log := s.edgeLogs[downstreamSlot]
	i := 0
	for i < len(log) && log[i].EdgeSeq <= upto {
		i++
	}
	s.edgeLogs[downstreamSlot] = append([]EdgeEntry(nil), log[i:]...)
}

// Commit marks a version fully committed and garbage-collects older
// versions' blobs and source logs. The committed version's own artifacts
// are retained — they are what recovery restores — and so is every older
// blob its delta chains still reference: collecting a base link out from
// under a committed delta would tear the chain recovery replays.
func (s *Store) Commit(version uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if version <= s.committed {
		return
	}
	s.committed = version
	type slotVer struct {
		v    uint64
		slot string
	}
	keep := make(map[slotVer]bool)
	for slot, b := range s.states[version] {
		for b.IsDelta() && b.Base < b.Version {
			base, ok := s.states[b.Base][slot]
			if !ok {
				break
			}
			keep[slotVer{b.Base, slot}] = true
			b = base
		}
	}
	for v, m := range s.states {
		if v >= version {
			continue
		}
		for slot := range m {
			if !keep[slotVer{v, slot}] {
				delete(m, slot)
			}
		}
		if len(m) == 0 {
			delete(s.states, v)
		}
	}
	for v := range s.srcLogs {
		if v < version {
			delete(s.srcLogs, v)
		}
	}
}

// Committed reports the most recent committed version (0 = none).
func (s *Store) Committed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed
}

// CumulativePreservedBytes reports total bytes ever appended to the
// source-preservation and edge-preservation logs (Fig. 10a's metric).
func (s *Store) CumulativePreservedBytes() (source, edge int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cumSourceBytes, s.cumEdgeBytes
}

// RetainedBytes reports bytes currently held by preservation logs and
// checkpoint blobs.
func (s *Store) RetainedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, m := range s.srcLogs {
		for _, log := range m {
			for _, t := range log {
				n += int64(t.Size)
			}
		}
	}
	for _, log := range s.edgeLogs {
		for _, e := range log {
			n += int64(e.T.Size)
		}
	}
	for _, m := range s.states {
		for _, b := range m {
			n += int64(b.Size)
		}
	}
	return n
}
