package storage

import (
	"testing"
	"testing/quick"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/tuple"
)

func blob(slot string, ver uint64, size int) *checkpoint.Blob {
	return &checkpoint.Blob{Slot: slot, Version: ver, Size: size, Ops: map[string][]byte{}}
}

func tp(seq uint64, size int) *tuple.Tuple { return &tuple.Tuple{Seq: seq, Size: size} }

func TestBlobStoreAndLookup(t *testing.T) {
	s := New()
	s.PutBlob(blob("n1", 1, 100))
	s.PutBlob(blob("n2", 1, 200))
	if _, ok := s.Blob(1, "n1"); !ok {
		t.Fatal("blob n1 missing")
	}
	if _, ok := s.Blob(2, "n1"); ok {
		t.Fatal("phantom version")
	}
	if !s.HasAllBlobs(1, []string{"n1", "n2"}) {
		t.Fatal("HasAllBlobs false negative")
	}
	if s.HasAllBlobs(1, []string{"n1", "n3"}) {
		t.Fatal("HasAllBlobs false positive")
	}
}

func TestCommitGarbageCollects(t *testing.T) {
	s := New()
	s.PutBlob(blob("n1", 1, 10))
	s.PutBlob(blob("n1", 2, 10))
	s.AppendSource(1, "s", tp(1, 5))
	s.AppendSource(2, "s", tp(2, 5))
	s.Commit(2)
	if _, ok := s.Blob(1, "n1"); ok {
		t.Fatal("old blob not collected")
	}
	if _, ok := s.Blob(2, "n1"); !ok {
		t.Fatal("committed blob collected")
	}
	if len(s.SourceLog(1, "s")) != 0 {
		t.Fatal("old source log not collected")
	}
	if len(s.SourceLog(2, "s")) != 1 {
		t.Fatal("committed source log collected")
	}
	if s.Committed() != 2 {
		t.Fatalf("committed = %d", s.Committed())
	}
	// Commits never go backward.
	s.Commit(1)
	if s.Committed() != 2 {
		t.Fatal("commit went backward")
	}
}

func TestSourceLogSnapshotIsolated(t *testing.T) {
	s := New()
	s.AppendSource(1, "s", tp(1, 10))
	log := s.SourceLog(1, "s")
	s.AppendSource(1, "s", tp(2, 10))
	if len(log) != 1 {
		t.Fatal("returned log aliases store")
	}
	if s.SourceLogLen(1, "s") != 2 {
		t.Fatalf("log len = %d", s.SourceLogLen(1, "s"))
	}
}

func TestEdgeLogRetainTruncate(t *testing.T) {
	s := New()
	for i := uint64(1); i <= 5; i++ {
		s.AppendEdge("n2", i, "a", "b", tp(i, 100))
	}
	if got := s.EdgeLogSince("n2", 2); len(got) != 3 || got[0].EdgeSeq != 3 {
		t.Fatalf("since(2) = %v", got)
	}
	s.TruncateEdge("n2", 3)
	if got := s.EdgeLogSince("n2", 0); len(got) != 2 || got[0].EdgeSeq != 4 {
		t.Fatalf("after truncate = %v", got)
	}
}

func TestCumulativeAndRetainedBytes(t *testing.T) {
	s := New()
	s.AppendSource(1, "s", tp(1, 100))
	s.AppendEdge("n2", 1, "a", "b", tp(1, 50))
	s.PutBlob(blob("n1", 1, 30))
	src, edge := s.CumulativePreservedBytes()
	if src != 100 || edge != 50 {
		t.Fatalf("cumulative = %d/%d", src, edge)
	}
	if got := s.RetainedBytes(); got != 180 {
		t.Fatalf("retained = %d, want 180", got)
	}
	s.TruncateEdge("n2", 1)
	if got := s.RetainedBytes(); got != 130 {
		t.Fatalf("retained after truncate = %d, want 130", got)
	}
	// Cumulative counters are monotone: truncation must not reduce them.
	src, edge = s.CumulativePreservedBytes()
	if src != 100 || edge != 50 {
		t.Fatal("cumulative counters changed by truncation")
	}
}

func TestMarkLost(t *testing.T) {
	s := New()
	s.PutBlob(blob("n1", 1, 10))
	s.AppendSource(1, "s", tp(1, 5))
	s.MarkLost()
	if !s.Lost() {
		t.Fatal("not marked lost")
	}
	if _, ok := s.Blob(1, "n1"); ok {
		t.Fatal("lost store still serves blobs")
	}
	// Writes after loss are ignored.
	s.PutBlob(blob("n1", 2, 10))
	if _, ok := s.Blob(2, "n1"); ok {
		t.Fatal("lost store accepted writes")
	}
}

// Property: EdgeLogSince(after) returns exactly the entries with
// EdgeSeq > after, in order, for any append sequence.
func TestEdgeLogSinceProperty(t *testing.T) {
	f := func(n uint8, after uint8) bool {
		s := New()
		for i := uint64(1); i <= uint64(n); i++ {
			s.AppendEdge("d", i, "a", "b", tp(i, 1))
		}
		got := s.EdgeLogSince("d", uint64(after))
		want := 0
		if int(n) > int(after) {
			want = int(n) - int(after)
		}
		if len(got) != want {
			return false
		}
		for k, e := range got {
			if e.EdgeSeq != uint64(after)+uint64(k)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after Commit(v), all blobs and source logs with version < v are
// gone and those at >= v survive.
func TestCommitGCProperty(t *testing.T) {
	f := func(versions []uint8, commit uint8) bool {
		s := New()
		for _, v := range versions {
			if v == 0 {
				continue
			}
			s.PutBlob(blob("n1", uint64(v), 1))
			s.AppendSource(uint64(v), "s", tp(1, 1))
		}
		s.Commit(uint64(commit))
		for _, v := range versions {
			if v == 0 {
				continue
			}
			_, ok := s.Blob(uint64(v), "n1")
			if uint64(v) < s.Committed() && ok {
				return false
			}
			if uint64(v) >= s.Committed() && !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
