// Package server models the conventional server-based DSPS deployment of
// Fig. 1c for Table I: phones are thin clients that upload every sensed
// tuple over the 3G uplink to a data center, which runs the whole query
// network on fast servers and pushes results back over the downlink. The
// uplink is the bottleneck the paper's measurements expose (§IV-A).
package server

import (
	"sync"
	"time"

	"mobistreams/internal/clock"
	"mobistreams/internal/metrics"
	"mobistreams/internal/simnet"
)

// Config parameterises a server-based deployment of one region's workload.
type Config struct {
	Clock clock.Clock
	// UplinkBps / DownlinkBps are the per-device 3G rates (paper ranges:
	// 0.016-0.32 Mbps up, 0.35-1.14 Mbps down).
	UplinkBps   float64
	DownlinkBps float64
	// CellLatency is the one-way cellular latency.
	CellLatency time.Duration
	// ServerSpeedup divides phone service times: data-center cores are
	// far faster than the 600 MHz A8 (default 20x).
	ServerSpeedup float64
	// PipelineCost is the total phone-CPU service time of the query
	// network per tuple; the server charges PipelineCost/ServerSpeedup.
	PipelineCost time.Duration
	// ResultBytes is the result tuple pushed back per input (default
	// 512 B).
	ResultBytes int
	// QueueCap bounds the upload queue per device; a full queue drops
	// the oldest pending frame (cameras overwrite stale frames).
	QueueCap int
}

func (c *Config) applyDefaults() {
	if c.ServerSpeedup <= 0 {
		c.ServerSpeedup = 20
	}
	if c.ResultBytes <= 0 {
		c.ResultBytes = 512
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 8
	}
}

// Deployment is one running server-based setup.
type Deployment struct {
	cfg  Config
	clk  clock.Clock
	cell *simnet.Cellular

	mu      sync.Mutex
	queue   []upload
	dropped int64
	client  *simnet.Endpoint
	dc      *simnet.Endpoint

	Latency    metrics.Latency
	Throughput metrics.Throughput

	stopCh chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
	wake   chan struct{}
}

type upload struct {
	size    int
	created time.Duration
}

// New builds a deployment with one uploading device (the paper's per-region
// sensor feed rides a single camera uplink).
func New(cfg Config) *Deployment {
	cfg.applyDefaults()
	cell := simnet.NewCellular(cfg.Clock, simnet.CellularConfig{
		UpBitsPerSecond:   cfg.UplinkBps,
		DownBitsPerSecond: cfg.DownlinkBps,
		Latency:           cfg.CellLatency,
	})
	d := &Deployment{
		cfg:    cfg,
		clk:    cfg.Clock,
		cell:   cell,
		client: simnet.NewEndpoint("phone", 1024),
		dc:     simnet.NewEndpoint("datacenter", 4096),
		stopCh: make(chan struct{}),
		wake:   make(chan struct{}, 1),
	}
	cell.Attach(d.client)
	cell.AttachRated(d.dc, 1e9, 1e9)
	return d
}

// Start launches the upload and server loops.
func (d *Deployment) Start() {
	d.Throughput.Start(d.clk.Now())
	d.wg.Add(2)
	go d.uploadLoop()
	go d.serverLoop()
}

// Stop shuts the deployment down.
func (d *Deployment) Stop() {
	d.once.Do(func() { close(d.stopCh) })
	d.wg.Wait()
}

// Offer enqueues one sensed tuple for upload. A full queue drops the oldest
// entry — a camera overwrites stale frames rather than growing a backlog
// without bound.
func (d *Deployment) Offer(size int) {
	d.mu.Lock()
	if len(d.queue) >= d.cfg.QueueCap {
		d.queue = d.queue[1:]
		d.dropped++
	}
	d.queue = append(d.queue, upload{size: size, created: d.clk.Now()})
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Dropped reports tuples dropped from the full upload queue.
func (d *Deployment) Dropped() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped
}

// uploadLoop ships queued tuples over the uplink one at a time.
func (d *Deployment) uploadLoop() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		var job *upload
		if len(d.queue) > 0 {
			j := d.queue[0]
			d.queue = d.queue[1:]
			job = &j
		}
		d.mu.Unlock()
		if job == nil {
			select {
			case <-d.wake:
				continue
			case <-d.stopCh:
				return
			}
		}
		if err := d.cell.Send("phone", "datacenter", simnet.ClassData, job.size, *job); err != nil {
			return
		}
	}
}

// serverLoop processes uploads on the data center and pushes results back.
func (d *Deployment) serverLoop() {
	defer d.wg.Done()
	for {
		select {
		case m := <-d.dc.Inbox():
			job, ok := m.Payload.(upload)
			if !ok {
				continue
			}
			d.clk.Sleep(time.Duration(float64(d.cfg.PipelineCost) / d.cfg.ServerSpeedup))
			// Result pushed to the subscribing phone over its downlink.
			if err := d.cell.Send("datacenter", "phone", simnet.ClassData, d.cfg.ResultBytes, nil); err != nil {
				return
			}
			now := d.clk.Now()
			d.Latency.Add(now - job.created)
			d.Throughput.Tick(now)
		case <-d.stopCh:
			return
		}
	}
}

// Report summarises the run at simulated time now.
func (d *Deployment) Report(now time.Duration) metrics.Report {
	return metrics.Report{
		Scheme:        "server",
		Tuples:        d.Throughput.Count(),
		ThroughputTPS: d.Throughput.PerSecond(now),
		MeanLatency:   d.Latency.Mean(),
		P95Latency:    d.Latency.Percentile(95),
	}
}
