package server

import (
	"fmt"
	"testing"
	"time"

	"mobistreams/internal/clock"
)

func deployment(up float64) (*Deployment, *clock.Scaled) {
	// Speedup 250 keeps the shortest paced step (a ~4.5 s upload in the
	// uplink-bound test) around 18 ms of wall time, long enough that
	// timer wake-up overshoot — which can reach a couple of milliseconds
	// on a busy or tickless host — stays a few percent of each step
	// instead of halving the measured rate.
	clk := clock.NewScaled(250)
	d := New(Config{
		Clock:        clk,
		UplinkBps:    up,
		DownlinkBps:  0.7e6,
		PipelineCost: 8 * time.Second,
		QueueCap:     4,
	})
	return d, clk
}

func TestUplinkBoundThroughput(t *testing.T) {
	// At speedup 2000 the 200 simulated seconds pass in ~100 ms of wall
	// time, so a single OS scheduling stall swallows tens of simulated
	// seconds of offers and sinks the measured rate. Retry before
	// declaring a regression: a genuine uplink-model bug fails every
	// attempt, a host hiccup does not. The drop check stays hard — an
	// overloaded queue must shed stale frames regardless of load.
	const attempts = 3
	var lastErr string
	for i := 0; i < attempts; i++ {
		d, clk := deployment(0.32e6) // 40 KB/s
		d.Start()
		// 180 KB tuples: ~4.5 s per upload; offer one per 2 s -> uplink bound.
		stop := make(chan struct{})
		go func() {
			for {
				select {
				case <-clk.After(2 * time.Second):
					d.Offer(180 << 10)
				case <-stop:
					return
				}
			}
		}()
		clk.Sleep(200 * time.Second)
		close(stop)
		rate := d.Throughput.PerSecond(clk.Now())
		dropped := d.Dropped()
		d.Stop()
		if dropped == 0 {
			t.Fatal("overloaded queue should drop stale frames")
		}
		// Uplink capacity: 40960 B/s / 184320 B = 0.222 t/s.
		if rate >= 0.15 && rate <= 0.3 {
			return
		}
		lastErr = fmt.Sprintf("rate = %.3f t/s, want ~0.22 (uplink-bound)", rate)
	}
	t.Fatal(lastErr)
}

func TestFastUplinkIsComputeOrArrivalBound(t *testing.T) {
	// Speedup 100 keeps the 1 s arrival period at 10 ms of wall time;
	// at higher speedups a millisecond of timer overshoot per tick
	// stretches the effective arrival period enough to halve the
	// measured arrival-bound rate.
	clk := clock.NewScaled(100)
	d := New(Config{
		Clock:         clk,
		UplinkBps:     80e6,
		DownlinkBps:   80e6,
		PipelineCost:  8 * time.Second,
		ServerSpeedup: 20, // 0.4 s per tuple on the server
	})
	d.Start()
	defer d.Stop()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-clk.After(1 * time.Second):
				d.Offer(180 << 10)
			case <-stop:
				return
			}
		}
	}()
	clk.Sleep(60 * time.Second)
	close(stop)
	rate := d.Throughput.PerSecond(clk.Now())
	if rate < 0.6 {
		t.Fatalf("fast-uplink rate = %.3f, want ~1 t/s (arrival bound)", rate)
	}
	if d.Dropped() != 0 {
		t.Fatalf("fast uplink dropped %d", d.Dropped())
	}
}

func TestLatencyIncludesQueueing(t *testing.T) {
	d, clk := deployment(0.016e6) // 2 KB/s: ~90 s per 180 KB tuple
	d.Start()
	defer d.Stop()
	for i := 0; i < 4; i++ {
		d.Offer(180 << 10)
	}
	clk.Sleep(500 * time.Second)
	if got := d.Latency.Count(); got == 0 {
		t.Fatal("nothing processed")
	}
	if mean := d.Latency.Mean(); mean < 60*time.Second {
		t.Fatalf("mean latency = %v, want >= 60s on a 2 KB/s uplink", mean)
	}
	rep := d.Report(clk.Now())
	if rep.Scheme != "server" || rep.Tuples == 0 {
		t.Fatalf("report = %+v", rep)
	}
}
