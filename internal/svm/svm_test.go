package svm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// separable generates a linearly separable 2D set: label = sign(x0 - x1).
func separable(n int, seed int64, gap float64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b := rng.Float64()*10, rng.Float64()*10
		if a > b {
			a += gap
			y[i] = 1
		} else {
			b += gap
			y[i] = -1
		}
		x[i] = []float64{a, b}
	}
	return x, y
}

func TestTrainSeparable(t *testing.T) {
	x, y := separable(200, 1, 1.0)
	m, err := Train(x, y, Config{Epochs: 120, Lambda: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.97 {
		t.Fatalf("training accuracy = %v, want >= 0.97", acc)
	}
	// Generalisation on a fresh sample.
	xt, yt := separable(100, 99, 1.0)
	if acc := m.Accuracy(xt, yt); acc < 0.95 {
		t.Fatalf("test accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{0.5}, Config{}); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, -1}, Config{}); err == nil {
		t.Fatal("ragged features accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, -1}, Config{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPredictIsSignOfMargin(t *testing.T) {
	m := &Model{W: []float64{1, -1}, B: 0}
	if m.Predict([]float64{2, 1}) != 1 {
		t.Fatal("positive side misclassified")
	}
	if m.Predict([]float64{1, 2}) != -1 {
		t.Fatal("negative side misclassified")
	}
	if m.Bytes() != 24 {
		t.Fatalf("bytes = %d, want 24", m.Bytes())
	}
}

// Property: prediction is invariant to positive scaling of (W, B).
func TestScaleInvarianceProperty(t *testing.T) {
	f := func(w1, w2, b, x1, x2 int8, scale uint8) bool {
		s := float64(scale%50) + 1
		m := &Model{W: []float64{float64(w1), float64(w2)}, B: float64(b)}
		ms := &Model{W: []float64{float64(w1) * s, float64(w2) * s}, B: float64(b) * s}
		x := []float64{float64(x1), float64(x2)}
		return m.Predict(x) == ms.Predict(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseEstimator(t *testing.T) {
	var p PhaseEstimator
	if got := p.MeanDuration(0, 30); got != 30 {
		t.Fatalf("fallback mean = %v", got)
	}
	for i := 0; i < 10; i++ {
		p.Observe(0, 40)
		p.Observe(2, 25)
	}
	if got := p.MeanDuration(0, 30); got != 40 {
		t.Fatalf("red mean = %v, want 40", got)
	}
	if got := p.TimeToChange(0, 15, 30); got != 25 {
		t.Fatalf("time to change = %v, want 25", got)
	}
	if got := p.TimeToChange(0, 100, 30); got != 0 {
		t.Fatalf("elapsed past mean should clamp to 0, got %v", got)
	}
	if p.Observations(0) != 10 || p.Observations(1) != 0 {
		t.Fatal("observation counts wrong")
	}
	p.Observe(9, 1) // out of range must not panic
	if p.Observations(9) != 0 {
		t.Fatal("out-of-range colour recorded")
	}
}

func TestPhaseEstimatorWindowBound(t *testing.T) {
	var p PhaseEstimator
	for i := 0; i < 200; i++ {
		p.Observe(1, float64(i))
	}
	if got := p.Observations(1); got != 64 {
		t.Fatalf("window = %d, want 64", got)
	}
}

func BenchmarkTrain(b *testing.B) {
	x, y := separable(200, 1, 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(x, y, Config{Epochs: 10, Seed: 2})
	}
}
