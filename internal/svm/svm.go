// Package svm implements a linear support vector machine trained with the
// Pegasos stochastic sub-gradient algorithm — SignalGuru's transition-
// pattern predictor (operator P in Fig. 3, §II-B). Stdlib-only and small:
// the paper's kernel is a standard binary SVM over low-dimensional signal
// features.
package svm

import (
	"errors"
	"math"
	"math/rand"
)

// Model is a linear SVM: sign(w·x + b).
type Model struct {
	W []float64
	B float64
}

// Config parameterises training.
type Config struct {
	// Lambda is the regularisation strength (default 1e-3).
	Lambda float64
	// Epochs is the number of passes over the data (default 20).
	Epochs int
	// Seed seeds the sampling order.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.Lambda <= 0 {
		c.Lambda = 1e-3
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
}

// Train fits a linear SVM on features X with labels y in {-1, +1} using
// Pegasos: at step t, eta = 1/(lambda*t); w <- (1-eta*lambda)w and, on
// margin violation, w <- w + eta*y*x.
func Train(x [][]float64, y []float64, cfg Config) (*Model, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("svm: need equal-length, non-empty x and y")
	}
	dim := len(x[0])
	for i := range x {
		if len(x[i]) != dim {
			return nil, errors.New("svm: ragged feature matrix")
		}
		if y[i] != 1 && y[i] != -1 {
			return nil, errors.New("svm: labels must be +1/-1")
		}
	}
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Standard bias handling: augment every sample with a constant 1
	// feature so the bias is regularised with the weights.
	w := make([]float64, dim+1)
	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, i := range rng.Perm(len(x)) {
			t++
			eta := 1 / (cfg.Lambda * float64(t))
			margin := y[i] * (dot(w[:dim], x[i]) + w[dim])
			scale := 1 - eta*cfg.Lambda
			if scale < 0 {
				scale = 0
			}
			for d := range w {
				w[d] *= scale
			}
			if margin < 1 {
				for d := 0; d < dim; d++ {
					w[d] += eta * y[i] * x[i][d]
				}
				w[dim] += eta * y[i]
			}
		}
	}
	return &Model{W: w[:dim], B: w[dim]}, nil
}

// Margin returns w·x + b.
func (m *Model) Margin(x []float64) float64 { return dot(m.W, x) + m.B }

// Predict returns the class label in {-1, +1}.
func (m *Model) Predict(x []float64) float64 {
	if m.Margin(x) >= 0 {
		return 1
	}
	return -1
}

// Accuracy evaluates the model on a labelled set.
func (m *Model) Accuracy(x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i := range x {
		if m.Predict(x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// Bytes reports the model's serialized size (checkpoint accounting).
func (m *Model) Bytes() int { return 8 * (len(m.W) + 1) }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// PhaseEstimator predicts traffic-signal transition times from observed
// phase durations — the statistical half of SignalGuru's operator P. It
// keeps per-colour duration histories and estimates time-to-change as the
// historical mean minus elapsed time.
type PhaseEstimator struct {
	durations [3][]float64
}

// Observe records a completed phase of the given colour and duration in
// seconds.
func (p *PhaseEstimator) Observe(color int, seconds float64) {
	if color < 0 || color > 2 {
		return
	}
	p.durations[color] = append(p.durations[color], seconds)
	if len(p.durations[color]) > 64 {
		p.durations[color] = p.durations[color][1:]
	}
}

// MeanDuration returns the historical mean phase length for a colour, or
// the fallback when unobserved.
func (p *PhaseEstimator) MeanDuration(color int, fallback float64) float64 {
	d := p.durations[color]
	if len(d) == 0 {
		return fallback
	}
	var s float64
	for _, v := range d {
		s += v
	}
	return s / float64(len(d))
}

// TimeToChange predicts the remaining seconds of the current phase.
func (p *PhaseEstimator) TimeToChange(color int, elapsed, fallback float64) float64 {
	rem := p.MeanDuration(color, fallback) - elapsed
	return math.Max(rem, 0)
}

// Observations reports how many phases of a colour have been recorded.
func (p *PhaseEstimator) Observations(color int) int {
	if color < 0 || color > 2 {
		return 0
	}
	return len(p.durations[color])
}
