package scheduler

import (
	"time"

	"mobistreams/internal/placement"
)

// Planner is the topology-aware placement policy: it wraps the
// placement.Engine and sits alongside the greedy Scorer as the
// controller's preferred planner. The greedy path stays the baseline and
// the fallback — Plan returns nil when the snapshot carries no usable
// channel topology (fewer than two domains), telling the caller to run the
// per-phone Scorer instead. Migrate steps pass through the shared per-slot
// Cooldowns ledger, so plans, greedy migrations and elastic split/merges
// all back off slots the others just disrupted.
type Planner struct {
	Engine *placement.Engine
	// Cooldown is the per-slot window applied to migrate steps
	// (default 30 s, matching the greedy scheduler).
	Cooldown time.Duration
	// Cooldowns is the shared disruption ledger; a private one is used
	// when nil.
	Cooldowns *Cooldowns
}

// NewPlanner creates a planner sharing the given cooldown ledger.
func NewPlanner(engine *placement.Engine, cooldowns *Cooldowns) *Planner {
	if cooldowns == nil {
		cooldowns = NewCooldowns()
	}
	return &Planner{Engine: engine, Cooldowns: cooldowns}
}

// Plan produces the next placement plan for one snapshot, or nil when the
// topology is unknown and the caller should fall back to the greedy
// scorer. Migrate steps for slots inside the cooldown window are dropped
// from the plan; the kept ones are noted immediately — the caller is
// expected to attempt every returned step.
func (p *Planner) Plan(snap placement.Snapshot) *placement.Plan {
	if len(snap.Domains) < 2 {
		return nil
	}
	window := p.Cooldown
	if window <= 0 {
		window = 30 * time.Second
	}
	plan := p.Engine.Plan(snap)
	kept := plan.Steps[:0]
	for _, st := range plan.Steps {
		if st.Kind == placement.StepMigrate {
			if !p.Cooldowns.Ready(snap.Region, st.Slot, snap.Now, window) {
				continue
			}
			p.Cooldowns.Note(snap.Region, st.Slot, snap.Now)
		}
		kept = append(kept, st)
	}
	plan.Steps = kept
	return plan
}
