package scheduler

import (
	"sync"
	"time"
)

// Cooldowns is the shared per-slot action ledger: every policy that
// disrupts a slot — a planned migration (Scheduler or Planner) or an
// elastic split/merge touching the slot (ElasticPolicy) — notes the slot
// here, and every policy checks it before planning the next disruption.
// One ledger shared across policies closes the blind spot where each
// tracked its own cooldown and a just-split instance could be migrated in
// the same breath (or vice versa). Keys are scoped by region so one ledger
// can serve many regions.
type Cooldowns struct {
	mu   sync.Mutex
	last map[string]time.Duration
}

// NewCooldowns creates an empty ledger.
func NewCooldowns() *Cooldowns {
	return &Cooldowns{last: make(map[string]time.Duration)}
}

func cooldownKey(scope, slot string) string { return scope + "\x00" + slot }

// Note records a disruptive action on a slot at simulated time now.
func (c *Cooldowns) Note(scope, slot string, now time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.last[cooldownKey(scope, slot)] = now
	c.mu.Unlock()
}

// Ready reports whether the slot is outside the window since its last
// noted action. A nil ledger is always ready.
func (c *Cooldowns) Ready(scope, slot string, now, window time.Duration) bool {
	if c == nil {
		return true
	}
	c.mu.Lock()
	at, ok := c.last[cooldownKey(scope, slot)]
	c.mu.Unlock()
	return !ok || now-at >= window
}
