package scheduler

import (
	"testing"
	"time"
)

func elasticStats() []InstanceStat {
	return []InstanceStat{
		{Instance: "op#0", Index: 0, Active: true, Backlog: 0, TupleRate: 100},
		{Instance: "op#1", Index: 1, Active: true, Backlog: 0, TupleRate: 90},
		{Instance: "op#2", Index: 2, Active: false},
	}
}

func TestElasticSplitsHottestOntoDormant(t *testing.T) {
	var p ElasticPolicy
	stats := elasticStats()
	stats[1].Backlog = 200
	act := p.Plan(time.Second, "op", stats)
	if act == nil || !act.Split {
		t.Fatalf("Plan = %+v, want a split", act)
	}
	if act.From != 1 || act.To != 2 || act.Logical != "op" {
		t.Fatalf("split %+v, want instance 1 -> dormant 2", act)
	}
}

func TestElasticNoSplitWithoutDormantTarget(t *testing.T) {
	var p ElasticPolicy
	stats := elasticStats()[:2]
	stats[0].Backlog = 500
	if act := p.Plan(time.Second, "op", stats); act != nil {
		t.Fatalf("Plan = %+v, want nil when every instance is active", act)
	}
}

func TestElasticMergesColdInstance(t *testing.T) {
	var p ElasticPolicy
	stats := elasticStats()
	stats[1].TupleRate = 1 // drained and near-idle vs mean ~50
	stats[0].Backlog = 3   // the survivor, lightly loaded but below HotBacklog
	// One or two cold sightings are not evidence (a trickle can alias to
	// zero in a single poll window); the default three consecutive are.
	for poll := 1; poll <= 2; poll++ {
		if act := p.Plan(time.Duration(poll)*time.Second, "op", stats); act != nil {
			t.Fatalf("Plan = %+v after %d cold polls, want nil until %d", act, poll, 3)
		}
	}
	act := p.Plan(3*time.Second, "op", stats)
	if act == nil || act.Split {
		t.Fatalf("Plan = %+v, want a merge", act)
	}
	if act.From != 1 || act.To != 0 {
		t.Fatalf("merge %+v, want cold instance 1 -> 0", act)
	}
}

func TestElasticColdStreakResetsOnWarmPoll(t *testing.T) {
	var p ElasticPolicy
	stats := elasticStats()
	stats[1].TupleRate = 1
	p.Plan(time.Second, "op", stats)
	p.Plan(2*time.Second, "op", stats)
	warm := elasticStats() // instance 1 back at rate 90: streak resets
	p.Plan(3*time.Second, "op", warm)
	stats = elasticStats()
	stats[1].TupleRate = 1
	if act := p.Plan(4*time.Second, "op", stats); act != nil {
		t.Fatalf("Plan = %+v, want nil: cold streak was broken by a warm poll", act)
	}
}

func TestElasticNoMergeWithoutRateSignal(t *testing.T) {
	var p ElasticPolicy
	stats := elasticStats()
	stats[0].TupleRate = 0 // unwarmed telemetry: every instance reads 0
	stats[1].TupleRate = 0
	if act := p.Plan(time.Second, "op", stats); act != nil {
		t.Fatalf("Plan = %+v, want nil when no instance reports a rate", act)
	}
}

func TestElasticNoMergeUnderPressure(t *testing.T) {
	var p ElasticPolicy
	stats := elasticStats()[:2] // no dormant target, so the hot path can't fire
	stats[0].Backlog = 500
	stats[1].TupleRate = 0
	stats[1].Backlog = 0
	if act := p.Plan(time.Second, "op", stats); act != nil {
		t.Fatalf("Plan = %+v, want no merge while an instance is saturated", act)
	}
}

func TestElasticCooldownSuppressesReplanning(t *testing.T) {
	p := ElasticPolicy{Cooldown: 5 * time.Second}
	stats := elasticStats()
	stats[0].Backlog = 200
	if act := p.Plan(time.Second, "op", stats); act == nil {
		t.Fatal("first plan suppressed")
	}
	if act := p.Plan(2*time.Second, "op", stats); act != nil {
		t.Fatalf("Plan = %+v inside the cooldown window", act)
	}
	// A different group is not throttled by op's cooldown.
	if act := p.Plan(2*time.Second, "other", stats); act == nil {
		t.Fatal("cooldown leaked across groups")
	}
	if act := p.Plan(7*time.Second, "op", stats); act == nil {
		t.Fatal("plan still suppressed after the cooldown elapsed")
	}
}
