package scheduler

import (
	"sync"
	"time"
)

// InstanceStat is one keyed instance's telemetry snapshot: the
// backpressure signals the elasticity policy reads.
type InstanceStat struct {
	// Instance is the instance operator ID (logical#i); Index its
	// position in the group.
	Instance string
	Index    int
	// Slot is the graph slot hosting the instance — the key the shared
	// Cooldowns ledger tracks, so a migration of the slot and an elastic
	// reconfiguration of the instance see each other's cooldowns.
	Slot string
	// Active reports whether the instance owns at least one key range.
	// Dormant instances are split targets.
	Active bool
	// Backlog is the instance's queued-but-unprocessed stream items.
	Backlog int
	// TupleRate is tuples processed per simulated second since the
	// previous poll.
	TupleRate float64
}

// ElasticAction is one planned parallelism change for a keyed group:
// either split instance From's key range onto (dormant) instance To, or
// merge every range instance From owns into instance To.
type ElasticAction struct {
	Logical string
	Split   bool
	From    int
	To      int
	Reason  string
}

// ElasticPolicy turns per-instance backpressure telemetry into split and
// merge decisions. Like the placement scheduler it is a pure decision
// library: the region produces InstanceStats and executes the returned
// action (SplitInstance / MergeKeyRange); the policy holds only cooldown
// state.
type ElasticPolicy struct {
	// HotBacklog is the queue depth at which an active instance is
	// considered saturated and worth splitting (default 64).
	HotBacklog int
	// ColdFraction marks an active instance mergeable when its tuple rate
	// falls below this fraction of the group's mean active rate and its
	// backlog is empty (default 0.1).
	ColdFraction float64
	// Cooldown suppresses re-planning a group that was reconfigured
	// within the window — a split takes a table flip and a state ship to
	// settle, and re-reading the same saturated backlog before it drains
	// would cascade splits (default 10 s).
	Cooldown time.Duration
	// MinColdPolls is how many consecutive Plan calls must see an instance
	// cold before it is merged away (default 3). A single poll window is
	// too noisy a witness: a low-rate instance's trickle can alias to zero
	// tuples in one window, and merging on that evidence hands its whole
	// key range to a peer right before the traffic comes back.
	MinColdPolls int
	// Cooldowns, when set, is the per-slot disruption ledger shared with
	// the migration scheduler: an instance whose slot was just migrated is
	// not split or merged within Cooldown, and a planned split/merge notes
	// the slots it touches so the scheduler will not migrate them either.
	Cooldowns *Cooldowns
	// Scope qualifies slot keys in the shared ledger; use the region name
	// the migration scheduler plans under.
	Scope string

	mu       sync.Mutex
	last     map[string]time.Duration
	coldRuns map[string]map[int]int
}

func (p *ElasticPolicy) params() (hot int, cold float64, cooldown time.Duration, minCold int) {
	hot, cold, cooldown, minCold = p.HotBacklog, p.ColdFraction, p.Cooldown, p.MinColdPolls
	if hot <= 0 {
		hot = 64
	}
	if cold <= 0 {
		cold = 0.1
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	if minCold <= 0 {
		minCold = 3
	}
	return hot, cold, cooldown, minCold
}

// Plan inspects one keyed group's instance telemetry and returns at most
// one action to run now, or nil. A returned action is recorded against the
// group's cooldown immediately; the caller is expected to attempt it.
func (p *ElasticPolicy) Plan(now time.Duration, logical string, stats []InstanceStat) *ElasticAction {
	hot, cold, cooldown, minCold := p.params()
	p.mu.Lock()
	if p.last == nil {
		p.last = make(map[string]time.Duration)
	}
	if at, ok := p.last[logical]; ok && now-at < cooldown {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()

	var active []InstanceStat
	dormant := -1
	dormantSlot := ""
	for _, st := range stats {
		if st.Active {
			active = append(active, st)
		} else if dormant < 0 {
			dormant = st.Index
			dormantSlot = st.Slot
		}
	}
	if len(active) == 0 {
		return nil
	}

	// Split: the hottest saturated instance hands half its keys to a
	// dormant one.
	hottest := active[0]
	for _, st := range active[1:] {
		if st.Backlog > hottest.Backlog {
			hottest = st
		}
	}
	if hottest.Backlog >= hot && dormant >= 0 {
		if !p.slotReady(hottest.Slot, now, cooldown) || !p.slotReady(dormantSlot, now, cooldown) {
			// A migration just disrupted one of the slots involved; let
			// its state settle before flipping routing tables on it.
			return nil
		}
		p.note(logical, now)
		p.noteSlots(now, hottest.Slot, dormantSlot)
		return &ElasticAction{
			Logical: logical, Split: true,
			From: hottest.Index, To: dormant,
			Reason: "backpressure",
		}
	}

	// Merge: a drained, near-idle instance hands its ranges to the least
	// loaded of the remaining active instances. Only when nothing is hot —
	// shrinking a group under pressure would amplify it.
	if len(active) < 2 || hottest.Backlog >= hot {
		return nil
	}
	var mean float64
	for _, st := range active {
		mean += st.TupleRate
	}
	mean /= float64(len(active))
	if mean <= 0 {
		// No rate signal (first poll, or a stalled window): every instance
		// would read as cold. Wait for real telemetry.
		return nil
	}
	p.mu.Lock()
	if p.coldRuns == nil {
		p.coldRuns = make(map[string]map[int]int)
	}
	runs := p.coldRuns[logical]
	if runs == nil {
		runs = make(map[int]int)
		p.coldRuns[logical] = runs
	}
	coldest, coldIdx := InstanceStat{}, -1
	for i, st := range active {
		if st.Backlog == 0 && st.TupleRate <= cold*mean {
			runs[st.Index]++
		} else {
			delete(runs, st.Index)
		}
		if runs[st.Index] >= minCold && (coldIdx < 0 || st.TupleRate < coldest.TupleRate) {
			coldest, coldIdx = st, i
		}
	}
	p.mu.Unlock()
	if coldIdx < 0 {
		return nil
	}
	to := -1
	for i, st := range active {
		if i == coldIdx {
			continue
		}
		if to < 0 || st.Backlog < active[to].Backlog {
			to = i
		}
	}
	if to < 0 {
		return nil
	}
	if !p.slotReady(coldest.Slot, now, cooldown) || !p.slotReady(active[to].Slot, now, cooldown) {
		return nil
	}
	p.note(logical, now)
	p.noteSlots(now, coldest.Slot, active[to].Slot)
	return &ElasticAction{
		Logical: logical,
		From:    coldest.Index, To: active[to].Index,
		Reason: "cold",
	}
}

// slotReady consults the shared per-slot ledger; without a ledger (or a
// slot) every instance is ready.
func (p *ElasticPolicy) slotReady(slot string, now, window time.Duration) bool {
	if p.Cooldowns == nil || slot == "" {
		return true
	}
	return p.Cooldowns.Ready(p.Scope, slot, now, window)
}

// noteSlots records a planned reconfiguration against the slots it touches
// in the shared ledger, so the migration scheduler backs off them too.
func (p *ElasticPolicy) noteSlots(now time.Duration, slots ...string) {
	if p.Cooldowns == nil {
		return
	}
	for _, s := range slots {
		if s != "" {
			p.Cooldowns.Note(p.Scope, s, now)
		}
	}
}

// note records an action against the group's cooldown and resets its cold
// streaks: a reconfiguration redistributes traffic, so prior cold evidence
// no longer describes the instances it was gathered on.
func (p *ElasticPolicy) note(logical string, now time.Duration) {
	p.mu.Lock()
	p.last[logical] = now
	delete(p.coldRuns, logical)
	p.mu.Unlock()
}
