package scheduler

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mobistreams/internal/phone"
	"mobistreams/internal/simnet"
)

func stats(phones ...PhoneStat) RegionStats {
	return RegionStats{Region: "r1", Now: 100 * time.Second, RadiusM: 100, Phones: phones}
}

func healthyIdle(id string) PhoneStat {
	return PhoneStat{ID: simnet.NodeID("r1/p" + id), Idle: true, BatteryJoules: 18e3, BatteryFraction: 0.9}
}

func TestRiskBatteryDrain(t *testing.T) {
	sc := &HeuristicScorer{BatteryHorizon: 90 * time.Second}
	rs := stats()
	// 100 J at 2 W dies in 50 s < 90 s horizon.
	r := sc.Risk(rs, PhoneStat{BatteryJoules: 100, BatteryFraction: 0.5, DrainWatts: 2})
	if r.Score < 1 || r.Reason != "battery-drain" {
		t.Fatalf("risk = %+v, want >= 1 battery-drain", r)
	}
	// Same drain with 1000 J dies in 500 s: safe.
	r = sc.Risk(rs, PhoneStat{BatteryJoules: 1000, BatteryFraction: 0.5, DrainWatts: 2})
	if r.Score >= 1 {
		t.Fatalf("healthy phone flagged: %+v", r)
	}
}

func TestRiskLowFraction(t *testing.T) {
	sc := &HeuristicScorer{}
	r := sc.Risk(stats(), PhoneStat{BatteryJoules: 500, BatteryFraction: 0.06})
	if r.Score < 1 || r.Reason != "battery-low" {
		t.Fatalf("risk = %+v, want >= 1 battery-low", r)
	}
}

func TestTimeToBoundary(t *testing.T) {
	rs := stats()
	// 60 m out, moving radially outward at 2 m/s: boundary in 20 s.
	p := PhoneStat{Position: phone.Position{X: 60}, VelX: 2}
	d, ok := TimeToBoundary(rs, p)
	if !ok || d != 20*time.Second {
		t.Fatalf("ttb = %v/%v, want 20s", d, ok)
	}
	// Inbound phone never crosses.
	p.VelX = -2
	if _, ok := TimeToBoundary(rs, p); ok {
		t.Fatal("inbound phone flagged as crossing")
	}
	// Tangential motion never crosses.
	p.VelX, p.VelY = 0, 5
	if _, ok := TimeToBoundary(rs, p); ok {
		t.Fatal("tangential phone flagged as crossing")
	}
	// No boundary configured disables prediction.
	rs.RadiusM = 0
	p.VelX = 2
	if _, ok := TimeToBoundary(rs, p); ok {
		t.Fatal("boundary-less region predicted a crossing")
	}
}

func TestPlanMigratesAtRiskSlotToBestIdle(t *testing.T) {
	s := New(Config{})
	rs := stats(
		PhoneStat{ID: "r1/p1", Slots: []string{"n1"}, BatteryJoules: 50, BatteryFraction: 0.04, DrainWatts: 1},
		PhoneStat{ID: "r1/p2", Slots: []string{"n2"}, BatteryJoules: 18e3, BatteryFraction: 0.9},
		PhoneStat{ID: "r1/p3", Idle: true, BatteryJoules: 8e3, BatteryFraction: 0.4},
		PhoneStat{ID: "r1/p4", Idle: true, BatteryJoules: 18e3, BatteryFraction: 0.9},
	)
	plan := s.Plan(rs)
	if len(plan) != 1 {
		t.Fatalf("plan = %+v, want 1 migration", plan)
	}
	m := plan[0]
	if m.Slot != "n1" || m.From != "r1/p1" || m.To != "r1/p4" {
		t.Fatalf("migration = %+v, want n1 r1/p1 -> r1/p4 (best battery)", m)
	}
}

func TestPlanCooldownSuppressesRepeat(t *testing.T) {
	s := New(Config{Cooldown: 30 * time.Second})
	rs := stats(
		PhoneStat{ID: "r1/p1", Slots: []string{"n1"}, BatteryJoules: 50, BatteryFraction: 0.04},
		healthyIdle("9"),
	)
	if got := len(s.Plan(rs)); got != 1 {
		t.Fatalf("first plan = %d migrations, want 1", got)
	}
	rs.Now += 5 * time.Second
	if got := len(s.Plan(rs)); got != 0 {
		t.Fatalf("plan within cooldown = %d migrations, want 0", got)
	}
	rs.Now += 60 * time.Second
	if got := len(s.Plan(rs)); got != 1 {
		t.Fatalf("plan after cooldown = %d migrations, want 1", got)
	}
}

func TestPlanSkipsAtRiskTargets(t *testing.T) {
	s := New(Config{})
	rs := stats(
		PhoneStat{ID: "r1/p1", Slots: []string{"n1"}, BatteryJoules: 50, BatteryFraction: 0.04},
		// The only idle phone is itself about to die: no migration.
		PhoneStat{ID: "r1/p2", Idle: true, BatteryJoules: 60, BatteryFraction: 0.05},
	)
	if plan := s.Plan(rs); len(plan) != 0 {
		t.Fatalf("plan = %+v, want none (target at risk)", plan)
	}
}

func TestPlanBoundsMigrationsPerTick(t *testing.T) {
	s := New(Config{MaxPerTick: 1})
	rs := stats(
		PhoneStat{ID: "r1/p1", Slots: []string{"n1"}, BatteryJoules: 40, BatteryFraction: 0.03},
		PhoneStat{ID: "r1/p2", Slots: []string{"n2"}, BatteryJoules: 50, BatteryFraction: 0.04},
		healthyIdle("8"), healthyIdle("9"),
	)
	plan := s.Plan(rs)
	if len(plan) != 1 {
		t.Fatalf("plan = %+v, want exactly 1 (MaxPerTick)", plan)
	}
	// The most urgent host (lowest battery) goes first.
	if plan[0].From != "r1/p1" {
		t.Fatalf("plan moved %s first, want r1/p1", plan[0].From)
	}
}

func TestPlanDistinctTargetsPerMigration(t *testing.T) {
	s := New(Config{})
	rs := stats(
		PhoneStat{ID: "r1/p1", Slots: []string{"n1"}, BatteryJoules: 40, BatteryFraction: 0.03},
		PhoneStat{ID: "r1/p2", Slots: []string{"n2"}, BatteryJoules: 50, BatteryFraction: 0.04},
		healthyIdle("8"), healthyIdle("9"),
	)
	plan := s.Plan(rs)
	if len(plan) != 2 {
		t.Fatalf("plan = %+v, want 2", plan)
	}
	if plan[0].To == plan[1].To {
		t.Fatalf("both migrations target %s", plan[0].To)
	}
}

// TestPlanConcurrentRegions pins that one Scheduler instance may serve
// many regions concurrently (the controller runs one planning loop per
// region against a shared instance). Run under -race this fails loudly if
// the cooldown state or scorer defaults are mutated unguarded.
func TestPlanConcurrentRegions(t *testing.T) {
	s := New(Config{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rs := stats(
				PhoneStat{ID: "p1", Slots: []string{"n1"}, BatteryJoules: 50, BatteryFraction: 0.04},
				healthyIdle("9"),
			)
			rs.Region = fmt.Sprintf("r%d", r)
			for i := 0; i < 100; i++ {
				rs.Now += time.Second
				s.Plan(rs)
			}
		}(r)
	}
	wg.Wait()
}
