// Package scheduler implements the adaptive placement scheduler: a pure
// decision library that turns per-region telemetry (battery joules and
// observed drain, radio bandwidth, per-slot queue backlog and tuple rate,
// GPS trajectory extrapolated toward the WiFi range boundary) into planned
// live migrations — moving an operator slot off an at-risk phone *before*
// the phone dies or walks out of range, so the disruption the paper handles
// with emergency checkpoint/recovery (§III-D, §IV-B) becomes a cheap
// in-region handoff instead.
//
// The package deliberately holds no references to the region, node or
// controller runtimes: the region produces RegionStats, the controller
// executes the returned Migrations, and everything in between is plain data
// — which keeps the policy unit-testable without a running system and lets
// deployments swap the Scorer.
package scheduler

import (
	"math"
	"sort"
	"time"

	"mobistreams/internal/phone"
	"mobistreams/internal/simnet"
)

// PhoneStat is one phone's telemetry snapshot.
type PhoneStat struct {
	ID    simnet.NodeID
	Slots []string // slots whose primary is this phone; empty for idle
	Idle  bool     // available as a migration target

	// Battery telemetry.
	BatteryJoules   float64
	BatteryFraction float64
	// DrainWatts is the observed discharge rate since the previous poll
	// (0 when unknown, e.g. on the first poll).
	DrainWatts float64

	// Load telemetry (from the node runtime and the PR-1 batch metrics).
	Backlog   int     // queued-but-unprocessed stream items
	TupleRate float64 // tuples processed per simulated second since last poll

	// Radio telemetry.
	RadioBps float64 // estimated share of the region medium

	// Mobility telemetry.
	Position phone.Position
	VelX     float64 // metres per simulated second
	VelY     float64
}

// RegionStats is one region's telemetry snapshot at simulated time Now.
type RegionStats struct {
	Region  string
	Now     time.Duration
	Centre  phone.Position
	RadiusM float64 // WiFi range boundary; 0 disables departure prediction
	Phones  []PhoneStat
}

// Risk is a scored hazard on a phone. Score >= 1 means the phone is
// expected to disrupt the region within the scorer's horizon and its slots
// should be migrated off.
type Risk struct {
	Score  float64
	Reason string
}

// Scorer is the pluggable placement policy: Risk decides which phones to
// evacuate, TargetScore ranks candidate replacements (higher is better).
type Scorer interface {
	Risk(rs RegionStats, p PhoneStat) Risk
	TargetScore(rs RegionStats, p PhoneStat) float64
}

// HeuristicScorer is the default policy: a phone is at risk when its
// projected battery death or WiFi boundary crossing falls within the
// configured horizons, or when its battery is below LowFraction; targets
// are ranked by battery headroom minus load.
type HeuristicScorer struct {
	// BatteryHorizon flags a phone whose projected time-to-death (energy /
	// observed drain) is within this window (default 90 s).
	BatteryHorizon time.Duration
	// LowFraction flags a phone below this battery fraction regardless of
	// the drain estimate (default 0.10 — comfortably above the 0.05
	// chronic threshold, so the planned migration beats the emergency
	// chronic-battery report).
	LowFraction float64
	// DepartHorizon flags a phone whose straight-line trajectory crosses
	// the WiFi boundary within this window (default 45 s).
	DepartHorizon time.Duration
}

// horizons resolves the configured values against defaults without
// mutating the (shared, concurrently used) scorer.
func (h *HeuristicScorer) horizons() (battery time.Duration, low float64, depart time.Duration) {
	battery, low, depart = h.BatteryHorizon, h.LowFraction, h.DepartHorizon
	if battery <= 0 {
		battery = 90 * time.Second
	}
	if low <= 0 {
		low = 0.10
	}
	if depart <= 0 {
		depart = 45 * time.Second
	}
	return battery, low, depart
}

// TimeToBoundary extrapolates a straight-line trajectory to the region's
// WiFi range boundary. It returns (d, true) when the phone is inside the
// boundary and moving so that it crosses it d from now; (0, false) when the
// phone is stationary, inbound, or the region has no boundary configured.
func TimeToBoundary(rs RegionStats, p PhoneStat) (time.Duration, bool) {
	if rs.RadiusM <= 0 {
		return 0, false
	}
	dx := p.Position.X - rs.Centre.X
	dy := p.Position.Y - rs.Centre.Y
	dist := math.Sqrt(dx*dx + dy*dy)
	if dist >= rs.RadiusM {
		return 0, true // already out: cross immediately
	}
	speed := math.Sqrt(p.VelX*p.VelX + p.VelY*p.VelY)
	if speed <= 0 {
		return 0, false
	}
	// Radial component of the velocity: outward speed toward the boundary.
	var vr float64
	if dist > 0 {
		vr = (dx*p.VelX + dy*p.VelY) / dist
	} else {
		vr = speed
	}
	if vr <= 0 {
		return 0, false
	}
	return time.Duration((rs.RadiusM - dist) / vr * float64(time.Second)), true
}

// Risk implements Scorer.
func (h *HeuristicScorer) Risk(rs RegionStats, p PhoneStat) Risk {
	batteryHorizon, lowFraction, departHorizon := h.horizons()
	best := Risk{}
	note := func(score float64, reason string) {
		if score > best.Score {
			best = Risk{Score: score, Reason: reason}
		}
	}
	if p.BatteryFraction > 0 && p.BatteryFraction < lowFraction {
		note(1+(lowFraction-p.BatteryFraction)/lowFraction, "battery-low")
	}
	if p.DrainWatts > 0 && p.BatteryJoules > 0 {
		ttd := time.Duration(p.BatteryJoules / p.DrainWatts * float64(time.Second))
		if ttd > 0 {
			note(float64(batteryHorizon)/float64(ttd), "battery-drain")
		}
	}
	if ttb, ok := TimeToBoundary(rs, p); ok {
		if ttb <= 0 {
			note(2, "departing")
		} else {
			note(float64(departHorizon)/float64(ttb), "departing")
		}
	}
	return best
}

// TargetScore implements Scorer: battery headroom first, lightly penalised
// by backlog and rewarded by radio headroom so two equal batteries tiebreak
// toward the less loaded phone.
func (h *HeuristicScorer) TargetScore(rs RegionStats, p PhoneStat) float64 {
	score := p.BatteryFraction
	score -= 0.01 * float64(p.Backlog)
	if p.RadioBps > 0 {
		score += 1e-9 * p.RadioBps
	}
	return score
}

// Migration is one planned slot move.
type Migration struct {
	Slot   string
	From   simnet.NodeID
	To     simnet.NodeID
	Reason string
}

// Config parameterises the scheduler.
type Config struct {
	// Scorer is the placement policy (default HeuristicScorer zero value).
	Scorer Scorer
	// Cooldown suppresses re-planning a slot that was migrated within the
	// window, so a noisy telemetry signal cannot thrash a slot between
	// phones (default 30 s).
	Cooldown time.Duration
	// MaxPerTick bounds planned migrations per Plan call; moving the whole
	// region at once would itself be the disruption the scheduler exists
	// to avoid (default 2).
	MaxPerTick int
	// TargetRiskCeiling excludes candidate targets whose own risk score is
	// at or above this value (default 0.5): evacuating onto the next phone
	// to die just doubles the work.
	TargetRiskCeiling float64
	// Cooldowns is the shared per-slot disruption ledger. Pass the same
	// instance to the ElasticPolicy (and Planner) serving the region so
	// migrations and split/merges see each other's cooldowns; a private
	// ledger is created when nil.
	Cooldowns *Cooldowns
}

func (c *Config) applyDefaults() {
	if c.Scorer == nil {
		c.Scorer = &HeuristicScorer{}
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.MaxPerTick <= 0 {
		c.MaxPerTick = 2
	}
	if c.TargetRiskCeiling <= 0 {
		c.TargetRiskCeiling = 0.5
	}
	if c.Cooldowns == nil {
		c.Cooldowns = NewCooldowns()
	}
}

// Scheduler plans migrations from telemetry. One Scheduler may serve many
// regions (the controller runs one planning loop per region against a
// shared instance); the per-slot cooldown state lives in the shared
// Cooldowns ledger.
type Scheduler struct {
	cfg Config
}

// New creates a scheduler.
func New(cfg Config) *Scheduler {
	cfg.applyDefaults()
	return &Scheduler{cfg: cfg}
}

// Cooldowns exposes the scheduler's per-slot disruption ledger so other
// policies (ElasticPolicy, Planner) can share it.
func (s *Scheduler) Cooldowns() *Cooldowns { return s.cfg.Cooldowns }

// Plan inspects one region's telemetry and returns the migrations to run
// now, most urgent first. Each returned slot is recorded against the
// cooldown immediately — the caller is expected to attempt every returned
// migration.
func (s *Scheduler) Plan(rs RegionStats) []Migration {
	sc := s.cfg.Scorer
	risks := make(map[simnet.NodeID]Risk, len(rs.Phones))
	for _, p := range rs.Phones {
		risks[p.ID] = sc.Risk(rs, p)
	}

	// Candidate targets: idle phones whose own risk is acceptable, best
	// score first.
	var targets []PhoneStat
	for _, p := range rs.Phones {
		if p.Idle && risks[p.ID].Score < s.cfg.TargetRiskCeiling {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool {
		si, sj := sc.TargetScore(rs, targets[i]), sc.TargetScore(rs, targets[j])
		if si != sj {
			return si > sj
		}
		return targets[i].ID < targets[j].ID // deterministic tiebreak
	})

	// At-risk hosts, most urgent first.
	var hosts []PhoneStat
	for _, p := range rs.Phones {
		if len(p.Slots) > 0 && risks[p.ID].Score >= 1 {
			hosts = append(hosts, p)
		}
	}
	sort.Slice(hosts, func(i, j int) bool {
		ri, rj := risks[hosts[i].ID].Score, risks[hosts[j].ID].Score
		if ri != rj {
			return ri > rj
		}
		return hosts[i].ID < hosts[j].ID
	})

	var plan []Migration
	ti := 0
	for _, h := range hosts {
		for _, slot := range h.Slots {
			if len(plan) >= s.cfg.MaxPerTick || ti >= len(targets) {
				return plan
			}
			if !s.cfg.Cooldowns.Ready(rs.Region, slot, rs.Now, s.cfg.Cooldown) {
				continue
			}
			plan = append(plan, Migration{
				Slot:   slot,
				From:   h.ID,
				To:     targets[ti].ID,
				Reason: risks[h.ID].Reason,
			})
			s.cfg.Cooldowns.Note(rs.Region, slot, rs.Now)
			ti++
		}
	}
	return plan
}
