package scheduler

import (
	"testing"
	"time"

	"mobistreams/internal/phone"
)

// TestCooldownUnification is the regression test for the scheduler/elastic
// cooldown blind spot: with the shared ledger, a slot an elastic
// split/merge just touched cannot be migrated inside the window, and a
// just-migrated slot cannot be split or merged — previously each policy
// tracked its own cooldowns and saw nothing of the other's.
func TestCooldownUnification(t *testing.T) {
	ledger := NewCooldowns()
	sched := New(Config{Cooldown: 30 * time.Second, Cooldowns: ledger})
	pol := &ElasticPolicy{Cooldown: 10 * time.Second, Cooldowns: ledger, Scope: "r1"}

	stats := func(backlog int) []InstanceStat {
		return []InstanceStat{
			{Instance: "agg#0", Index: 0, Slot: "s1", Active: true, Backlog: backlog},
			{Instance: "agg#1", Index: 1, Slot: "s9", Active: false},
		}
	}
	rs := func(now time.Duration) RegionStats {
		return RegionStats{
			Region: "r1",
			Now:    now,
			Phones: []PhoneStat{
				{ID: "host", Slots: []string{"s1"}, BatteryFraction: 0.05, BatteryJoules: 5, Position: phone.Position{}},
				{ID: "idle", Idle: true, BatteryFraction: 0.9},
			},
		}
	}

	// 1. The elastic policy splits the instance on slot s1 at t=100s.
	act := pol.Plan(100*time.Second, "agg", stats(100))
	if act == nil || !act.Split {
		t.Fatalf("expected a split, got %+v", act)
	}

	// 2. Five seconds later the migration scheduler sees the host of s1 at
	// risk — but the slot's state is mid-flight from the split, so the
	// shared ledger must hold the migration back.
	if plan := sched.Plan(rs(105 * time.Second)); len(plan) != 0 {
		t.Fatalf("slot s1 migrated %v inside the split cooldown", plan)
	}

	// 3. Past the window the migration goes ahead and notes the slot.
	plan := sched.Plan(rs(200 * time.Second))
	if len(plan) != 1 || plan[0].Slot != "s1" {
		t.Fatalf("expected migration of s1 after cooldown, got %v", plan)
	}

	// 4. Now the roles flip: the group cooldown (10 s, last action t=100s)
	// has long expired, but slot s1 was just migrated — the split must
	// wait even though the instance is saturated again.
	if act := pol.Plan(205*time.Second, "agg", stats(100)); act != nil {
		t.Fatalf("instance on s1 split %+v inside the migration cooldown", act)
	}

	// 5. Once s1's migration cooldown lapses, the split proceeds.
	if act := pol.Plan(245*time.Second, "agg", stats(100)); act == nil || !act.Split {
		t.Fatalf("expected split after migration cooldown, got %+v", act)
	}

	// Control: a policy without the shared ledger exhibits the old blind
	// spot — it happily splits right after step 3's migration.
	blind := &ElasticPolicy{Cooldown: 10 * time.Second}
	if act := blind.Plan(205*time.Second, "agg", stats(100)); act == nil {
		t.Fatal("control policy without shared ledger should not be held back")
	}
}
