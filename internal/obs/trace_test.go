package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(0)
	if _, ok := tr.Sample(0); ok {
		t.Fatal("tracing off must never sample")
	}
	tr.SetSampleEvery(10)
	hits := 0
	for seq := uint64(0); seq < 100; seq++ {
		if tc, ok := tr.Sample(seq); ok {
			hits++
			if tc.ID != seq+1 {
				t.Fatalf("trace ID %d for seq %d, want seq+1", tc.ID, seq)
			}
		}
	}
	if hits != 10 {
		t.Fatalf("sampled %d of 100 at every=10", hits)
	}
	var nilT *Tracer
	if _, ok := nilT.Sample(0); ok {
		t.Fatal("nil tracer sampled")
	}
	nilT.Record(&SpanCtx{ID: 1}, SpanOp, "n", "s", "o", 0) // must not panic
}

func TestWaterfallReconstruction(t *testing.T) {
	tr := NewTracer(1)
	tc, ok := tr.Sample(4)
	if !ok {
		t.Fatal("every=1 must sample")
	}
	tr.Record(&tc, SpanIngest, "w1", "s0", "src", 100)
	tr.Record(&tc, SpanOp, "w1", "s0", "pass", 150)
	tr.Record(&tc, SpanEmit, "w1", "s0", "pass", 160)
	// Deliberately absorb the remote spans out of order: reconstruction
	// sorts by span seq, not arrival.
	remote := []Span{
		{Trace: tc.ID, Seq: 4, Kind: SpanSink, Node: "w2", Slot: "s1", Op: "agg", At: 90},
		{Trace: tc.ID, Seq: 3, Kind: SpanRecv, Node: "w2", Slot: "s1", Op: "agg", At: 40},
	}
	tr.Absorb(remote)
	wfs := Waterfalls(tr.Spans())
	if len(wfs) != 1 {
		t.Fatalf("waterfalls = %d, want 1", len(wfs))
	}
	w := wfs[0]
	if w.Trace != 5 {
		t.Fatalf("trace id = %d, want 5", w.Trace)
	}
	want := "ingest@s0/src op@s0/pass emit@s0/pass recv@s1/agg sink@s1/agg"
	if got := w.Structure(); got != want {
		t.Fatalf("structure = %q, want %q", got, want)
	}
	// Deltas: same-node hops get exact deltas, the cross-node hop gets 0.
	if w.Hops[1].Delta != 50 || w.Hops[2].Delta != 10 {
		t.Fatalf("same-node deltas = %d,%d want 50,10", w.Hops[1].Delta, w.Hops[2].Delta)
	}
	if w.Hops[3].Delta != 0 {
		t.Fatalf("cross-node delta = %d, want 0 (clocks differ)", w.Hops[3].Delta)
	}
	if w.Hops[4].Delta != 50 {
		t.Fatalf("sink delta = %d, want 50", w.Hops[4].Delta)
	}
	if !strings.Contains(w.Render(), "trace 5:") {
		t.Fatalf("render missing header: %q", w.Render())
	}
}

func TestTracerBoundedBuffer(t *testing.T) {
	tr := &Tracer{cap: 4}
	tr.SetSampleEvery(1)
	tc := SpanCtx{ID: 1}
	for i := 0; i < 10; i++ {
		tr.Record(&tc, SpanOp, "n", "s", "o", int64(i))
	}
	if len(tr.Spans()) != 4 {
		t.Fatalf("buffer grew past cap: %d", len(tr.Spans()))
	}
	if tr.Drops() != 6 {
		t.Fatalf("drops = %d, want 6", tr.Drops())
	}
	tr.ResetSpans()
	if len(tr.Spans()) != 0 || tr.Drops() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestJournalRingAndJSONL(t *testing.T) {
	var nilJ *Journal
	nilJ.Emit(Event{Kind: "noop"}) // nil-safe
	if nilJ.Events() != nil || nilJ.Total() != 0 {
		t.Fatal("nil journal not empty")
	}
	j := NewJournal(3)
	for i := 0; i < 5; i++ {
		j.Emit(Event{At: int64(i), Kind: "ckpt.begin", Version: uint64(i)})
	}
	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Version != 2 || evs[2].Version != 4 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if j.Total() != 5 {
		t.Fatalf("total = %d, want 5", j.Total())
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if e.Kind != "ckpt.begin" {
			t.Fatalf("kind = %q", e.Kind)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("JSONL lines = %d, want 3", lines)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	if r.OpLatency("x") != nil || r.EdgeWait("e") != nil || r.EdgeDepth("e") != nil {
		t.Fatal("nil registry must yield nil histograms")
	}
	if r.Ops() != nil || r.Waits() != nil || r.Depths() != nil {
		t.Fatal("nil registry views must be nil")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.OpLatency("agg").Observe(1500)
	reg.EdgeWait("s0->s1").Observe(250)
	reg.EdgeDepth("s0->s1").Observe(3)
	reg.Journal.Emit(Event{Kind: "ckpt.seal", Version: 1})
	reg.Tracer.SetSampleEvery(1)
	tc, _ := reg.Tracer.Sample(0)
	reg.Tracer.Record(&tc, SpanIngest, "n", "s0", "src", 0)

	h := Handler(reg, func() map[string]float64 {
		return map[string]float64{"ms_socket_redials_total": 2}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"ms_up 1",
		`ms_op_latency_ns_count{op="agg"} 1`,
		`ms_edge_wait_ns_count{edge="s0->s1"} 1`,
		`ms_edge_depth_max{edge="s0->s1"} 3`,
		"ms_trace_spans 1",
		"ms_journal_events_total 1",
		"ms_socket_redials_total 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if !strings.Contains(get("/journal"), `"kind":"ckpt.seal"`) {
		t.Fatal("/journal missing event")
	}
	if !strings.Contains(get("/traces"), "trace 1:") {
		t.Fatal("/traces missing waterfall")
	}
	if !strings.Contains(get("/debug/pprof/cmdline"), "") { // just must be 200
		t.Fatal("unreachable")
	}
}
