package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// ExportQuantiles are the quantiles rendered per histogram on /metrics.
var ExportQuantiles = []float64{50, 95, 99}

// Handler serves the registry live over HTTP:
//
//	/metrics       Prometheus text: histograms as *_count/_sum/quantile
//	               gauges plus any extra counters
//	/journal       the lifecycle event journal as JSON Lines
//	/traces        reconstructed waterfalls, human-readable
//	/debug/pprof/  the standard runtime profiles
//
// extra, if non-nil, is called per /metrics scrape for counters owned
// outside the registry (transport redials, sink totals, ...).
func Handler(reg *Registry, extra func() map[string]float64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeProm(w, reg, extra)
	})
	mux.HandleFunc("/journal", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if reg != nil {
			_ = reg.Journal.WriteJSONL(w)
		}
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if reg == nil {
			return
		}
		for _, wf := range Waterfalls(reg.Tracer.Spans()) {
			fmt.Fprint(w, wf.Render())
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// promName sanitises a label value: Prometheus label values are free-form
// UTF-8, but keep quotes and backslashes out of the unescaped writer.
func promLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `_`)
	return strings.ReplaceAll(s, `"`, `_`)
}

func writeHistFamily(w http.ResponseWriter, family, label string, views []HistogramView) {
	if len(views) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE %s summary\n", family)
	for _, v := range views {
		name := promLabel(v.Name)
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", family, label, name, v.Hist.Count())
		fmt.Fprintf(w, "%s_sum{%s=%q} %d\n", family, label, name, v.Hist.Sum())
		fmt.Fprintf(w, "%s_max{%s=%q} %d\n", family, label, name, v.Hist.Max())
		for _, q := range ExportQuantiles {
			fmt.Fprintf(w, "%s{%s=%q,quantile=\"%g\"} %d\n",
				family, label, name, q/100, v.Hist.Percentile(q))
		}
	}
}

func writeProm(w http.ResponseWriter, reg *Registry, extra func() map[string]float64) {
	fmt.Fprintln(w, "# TYPE ms_up gauge")
	fmt.Fprintln(w, "ms_up 1")
	if reg != nil {
		writeHistFamily(w, "ms_op_latency_ns", "op", reg.Ops())
		writeHistFamily(w, "ms_edge_wait_ns", "edge", reg.Waits())
		writeHistFamily(w, "ms_edge_depth", "edge", reg.Depths())
		fmt.Fprintln(w, "# TYPE ms_trace_spans gauge")
		fmt.Fprintf(w, "ms_trace_spans %d\n", len(reg.Tracer.Spans()))
		fmt.Fprintf(w, "ms_trace_span_drops %d\n", reg.Tracer.Drops())
		fmt.Fprintln(w, "# TYPE ms_journal_events_total counter")
		fmt.Fprintf(w, "ms_journal_events_total %d\n", reg.Journal.Total())
	}
	if extra != nil {
		m := extra()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s %g\n", k, m[k])
		}
	}
}

// Serve starts the export HTTP server on addr in a background goroutine
// and returns the address it is listening on. Used by msrun -http.
func Serve(addr string, reg *Registry, extra func() map[string]float64) (string, error) {
	srv := &http.Server{Addr: addr, Handler: Handler(reg, extra)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
