package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured lifecycle record: checkpoint phases, migration
// steps, recovery, transport redials, inbox drops. At is nanoseconds on
// the emitter's clock (simulated or wall, whichever the component runs
// on); Kind is a stable dotted name like "ckpt.seal" or "socket.redial".
type Event struct {
	At      int64  `json:"at_ns"`
	Kind    string `json:"kind"`
	Node    string `json:"node,omitempty"`
	Slot    string `json:"slot,omitempty"`
	Version uint64 `json:"version,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// Journal is a bounded in-memory ring of lifecycle events shared by
// region, node, scheduler, and transport. Emit on a nil journal is a
// no-op, so components can hold an optional *Journal without guards.
type Journal struct {
	mu     sync.Mutex
	events []Event
	next   int
	full   bool
	cap    int
	total  uint64
}

// defaultJournalCap bounds the ring; older events are overwritten.
const defaultJournalCap = 4096

// NewJournal returns a journal retaining the last capacity events
// (capacity <= 0 selects the default).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = defaultJournalCap
	}
	return &Journal{events: make([]Event, capacity), cap: capacity}
}

// Emit appends one event, overwriting the oldest when full. Safe on nil.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.events[j.next] = e
	j.next++
	j.total++
	if j.next == j.cap {
		j.next = 0
		j.full = true
	}
	j.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	if j.full {
		out = make([]Event, 0, j.cap)
		out = append(out, j.events[j.next:]...)
		out = append(out, j.events[:j.next]...)
	} else {
		out = make([]Event, j.next)
		copy(out, j.events[:j.next])
	}
	return out
}

// Total reports how many events were ever emitted (including overwritten).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// WriteJSONL renders the retained events as JSON Lines, oldest first.
func (j *Journal) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range j.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
