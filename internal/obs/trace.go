package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SpanCtx is the compact trace context carried on stream frames: a trace
// ID plus the next span sequence number. The zero value means "untraced";
// every downstream span site gates on ID != 0 with a plain compare, so
// unsampled tuples pay nothing beyond that branch.
type SpanCtx struct {
	ID  uint64
	Seq uint32
}

// SpanKind labels where in the pipeline a span was recorded.
type SpanKind uint8

const (
	SpanInvalid SpanKind = iota
	SpanIngest           // tuple entered the system at a source
	SpanRecv             // frame arrived from the network
	SpanPark             // ordered queue parked an out-of-order arrival
	SpanDequeue          // executor dequeued the tuple
	SpanOp               // operator Process started
	SpanEmit             // operator emitted a downstream tuple
	SpanSend             // batch flushed / frame handed to the network
	SpanSink             // tuple reached a sink
	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	"invalid", "ingest", "recv", "park", "deq", "op", "emit", "send", "sink",
}

func (k SpanKind) String() string {
	if k < numSpanKinds {
		return spanKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Span is one recorded hop of a sampled tuple. At is in nanoseconds on
// the recording process's clock; cross-process deltas are approximate,
// same-process deltas are exact. The (Trace, Seq) pair totally orders a
// trace's spans regardless of which process recorded them.
type Span struct {
	Trace uint64
	Seq   uint32
	Kind  SpanKind
	Node  string
	Slot  string
	Op    string
	At    int64
}

// defaultSpanCap bounds the tracer's span buffer; once full, new spans
// are counted as drops rather than grown without bound.
const defaultSpanCap = 1 << 14

// Tracer decides which tuples are sampled and buffers their spans.
// The sampling decision is one atomic load (zero when tracing is off);
// the span buffer mutex is touched only for sampled tuples.
type Tracer struct {
	every uint64 // atomic; sample the tuple when seq%every == 0; 0 = off

	mu    sync.Mutex
	spans []Span
	cap   int
	drops uint64
}

// NewTracer returns a tracer sampling every n-th tuple (0 = off).
func NewTracer(n int) *Tracer {
	t := &Tracer{cap: defaultSpanCap}
	t.SetSampleEvery(n)
	return t
}

// SetSampleEvery changes the sampling interval (0 disables tracing).
func (t *Tracer) SetSampleEvery(n int) {
	if t == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	atomic.StoreUint64(&t.every, uint64(n))
}

// SampleEvery returns the current interval (0 = off).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(atomic.LoadUint64(&t.every))
}

// Sample decides whether the tuple with the given source sequence number
// is traced. Deriving the trace ID from the tuple's own sequence keeps
// trace identity deterministic across transport backends. The fast path
// (tracing off) is exactly one atomic load.
func (t *Tracer) Sample(seq uint64) (SpanCtx, bool) {
	if t == nil {
		return SpanCtx{}, false
	}
	every := atomic.LoadUint64(&t.every)
	if every == 0 || seq%every != 0 {
		return SpanCtx{}, false
	}
	// Trace IDs are seq+1 so that seq 0 still yields a non-zero —
	// i.e. traced — context.
	return SpanCtx{ID: seq + 1}, true
}

// Record appends a span for the traced tuple and advances its span
// sequence. Callers gate on tc.ID != 0 before calling.
func (t *Tracer) Record(tc *SpanCtx, kind SpanKind, node, slot, op string, at int64) {
	if t == nil || tc.ID == 0 {
		return
	}
	s := Span{Trace: tc.ID, Seq: tc.Seq, Kind: kind, Node: node, Slot: slot, Op: op, At: at}
	tc.Seq++
	t.mu.Lock()
	if len(t.spans) >= t.cap {
		t.drops++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Absorb merges spans recorded elsewhere (another process's tracer,
// shipped over the wire) into this tracer's buffer.
func (t *Tracer) Absorb(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for _, s := range spans {
		if len(t.spans) >= t.cap {
			t.drops++
			continue
		}
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the buffered spans.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Drops reports spans discarded because the buffer was full.
func (t *Tracer) Drops() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// ResetSpans clears the span buffer (sampling interval unchanged).
func (t *Tracer) ResetSpans() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.drops = 0
	t.mu.Unlock()
}

// Hop is one step of a reconstructed waterfall: the span plus the time
// elapsed since the previous span of the same trace (0 for the first).
type Hop struct {
	Span
	Delta int64
}

// Waterfall is one traced tuple's end-to-end journey in span order.
type Waterfall struct {
	Trace uint64
	Hops  []Hop
}

// Waterfalls groups spans by trace ID and orders each trace by span
// sequence, turning the flat span buffer into per-tuple latency
// waterfalls. Traces are returned in ascending ID order.
func Waterfalls(spans []Span) []Waterfall {
	byTrace := make(map[uint64][]Span)
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	ids := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Waterfall, 0, len(ids))
	for _, id := range ids {
		ss := byTrace[id]
		sort.Slice(ss, func(i, j int) bool { return ss[i].Seq < ss[j].Seq })
		w := Waterfall{Trace: id, Hops: make([]Hop, len(ss))}
		for i, s := range ss {
			h := Hop{Span: s}
			if i > 0 && ss[i-1].Node == s.Node {
				h.Delta = s.At - ss[i-1].At
			}
			w.Hops[i] = h
		}
		out = append(out, w)
	}
	return out
}

// Structure renders the waterfall's span sequence without any timing:
// "ingest@s0 op@s0/src emit@s0 ...". Two runs that routed a tuple the
// same way produce byte-identical structure strings, whatever the
// backend or wall-clock timing — this is what the cross-backend parity
// diff compares.
func (w Waterfall) Structure() string {
	var b strings.Builder
	for i, h := range w.Hops {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(h.Kind.String())
		b.WriteByte('@')
		b.WriteString(h.Slot)
		if h.Op != "" {
			b.WriteByte('/')
			b.WriteString(h.Op)
		}
	}
	return b.String()
}

// Render prints the waterfall with per-hop deltas (nanoseconds on each
// recording process's clock) — the human-readable latency view.
func (w Waterfall) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d:\n", w.Trace)
	for _, h := range w.Hops {
		fmt.Fprintf(&b, "  %-6s node=%-8s slot=%-6s op=%-10s +%dns\n",
			h.Kind, h.Node, h.Slot, h.Op, h.Delta)
	}
	return b.String()
}
