// Package obs is the observability layer: always-on fixed-bucket latency
// histograms, sampled causal tuple tracing, and a structured lifecycle
// event journal. It is imported by the data plane (node, region, wire,
// transport), so it depends on the standard library only — no mobistreams
// packages — and every hot-path primitive is lock-free and allocation-free.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: log-linear over non-negative int64 values
// (nanoseconds, queue depths, byte counts — the unit is the caller's).
// Values below 16 get exact unit buckets; above that, each power-of-two
// range is split into 16 linear sub-buckets, bounding the relative
// quantile error at 1/16 (6.25%). Counts, sum, and max are plain atomics,
// so concurrent Observe calls never take a lock and never allocate.
const (
	subBits    = 4
	subCount   = 1 << subBits              // 16 linear sub-buckets per octave
	numBuckets = subCount * (64 - subBits) // exp 4..62 plus the linear range
)

// Histogram is a fixed-size concurrent histogram. The zero value is ready
// to use. All methods are safe for concurrent use; Observe is wait-free
// apart from the max CAS (which retries only while the max is climbing).
type Histogram struct {
	counts [numBuckets]uint64
	count  uint64
	sum    uint64
	max    int64
}

// bucketIndex maps a non-negative value to its bucket. Exported math,
// private helper: v<16 → identity; else 16 linear buckets per octave.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // 4..62
	sub := int((uint64(v) >> uint(exp-subBits)) & (subCount - 1))
	return subCount*(exp-subBits+1) + sub
}

// bucketUpper returns the largest value a bucket can hold (inclusive).
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	exp := idx/subCount + subBits - 1
	sub := idx % subCount
	return int64(subCount+sub+1)<<uint(exp-subBits) - 1
}

// Observe records one sample. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	atomic.AddUint64(&h.counts[bucketIndex(v)], 1)
	atomic.AddUint64(&h.count, 1)
	atomic.AddUint64(&h.sum, uint64(v))
	for {
		cur := atomic.LoadInt64(&h.max)
		if v <= cur || atomic.CompareAndSwapInt64(&h.max, cur, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return atomic.LoadUint64(&h.count) }

// Sum returns the exact running sum of all samples.
func (h *Histogram) Sum() uint64 { return atomic.LoadUint64(&h.sum) }

// Max returns the exact largest sample seen (0 when empty).
func (h *Histogram) Max() int64 { return atomic.LoadInt64(&h.max) }

// Mean returns the exact mean (sum/count), 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Percentile returns an upper bound for the p-th percentile (0 < p ≤ 100):
// the inclusive upper edge of the bucket holding the rank-⌈p/100·n⌉ sample,
// clamped to the exact recorded max. The bound is at most 6.25% above the
// true value; it is monotone in p and Percentile(100) == Max().
func (h *Histogram) Percentile(p float64) int64 {
	n := h.Count()
	if n == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < numBuckets; i++ {
		seen += atomic.LoadUint64(&h.counts[i])
		if seen >= rank {
			upper := bucketUpper(i)
			if m := h.Max(); upper > m {
				upper = m
			}
			return upper
		}
	}
	return h.Max()
}

// Merge adds o's samples into h. Merging per-shard histograms is exactly
// equivalent to observing every sample into a single histogram: bucket
// assignment depends only on the value, and count/sum are plain sums.
// The merged max is the max of the two. o may be observed concurrently;
// the merge is then a consistent-enough snapshot, not a linearizable one.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := 0; i < numBuckets; i++ {
		if c := atomic.LoadUint64(&o.counts[i]); c != 0 {
			atomic.AddUint64(&h.counts[i], c)
		}
	}
	atomic.AddUint64(&h.count, atomic.LoadUint64(&o.count))
	atomic.AddUint64(&h.sum, atomic.LoadUint64(&o.sum))
	om := o.Max()
	for {
		cur := atomic.LoadInt64(&h.max)
		if om <= cur || atomic.CompareAndSwapInt64(&h.max, cur, om) {
			return
		}
	}
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// observers; intended for quiesced collectors (mirrors metrics.Latency).
func (h *Histogram) Reset() {
	for i := 0; i < numBuckets; i++ {
		atomic.StoreUint64(&h.counts[i], 0)
	}
	atomic.StoreUint64(&h.count, 0)
	atomic.StoreUint64(&h.sum, 0)
	atomic.StoreInt64(&h.max, 0)
}

// Snapshot returns the non-empty buckets as (upper-bound, count) pairs in
// ascending order, for export. Allocates; not for the hot path.
func (h *Histogram) Snapshot() []Bucket {
	var out []Bucket
	for i := 0; i < numBuckets; i++ {
		if c := atomic.LoadUint64(&h.counts[i]); c != 0 {
			out = append(out, Bucket{Upper: bucketUpper(i), Count: c})
		}
	}
	return out
}

// Bucket is one non-empty histogram bucket in a Snapshot.
type Bucket struct {
	Upper int64
	Count uint64
}
