package obs

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestBucketIndexContinuity(t *testing.T) {
	// The linear range hands off to the log-linear range without gaps:
	// indices are non-decreasing in v and every index round-trips to an
	// upper bound >= v.
	last := -1
	for v := int64(0); v < 4096; v++ {
		idx := bucketIndex(v)
		if idx < last {
			t.Fatalf("bucket index regressed at v=%d: %d < %d", v, idx, last)
		}
		last = idx
		if up := bucketUpper(idx); up < v {
			t.Fatalf("bucketUpper(%d)=%d < v=%d", idx, up, v)
		}
	}
	if got := bucketIndex(math.MaxInt64); got >= numBuckets {
		t.Fatalf("max value index %d out of range %d", got, numBuckets)
	}
}

func TestHistogramExactStats(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(95) != 0 || h.Max() != 0 {
		t.Fatal("zero-value histogram should report zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Fatalf("count=%d sum=%d, want 100/5050", h.Count(), h.Sum())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean=%v, want 50.5", h.Mean())
	}
	if h.Max() != 100 {
		t.Fatalf("max=%d, want 100", h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramPercentileErrorBound(t *testing.T) {
	// Percentile returns an upper bound within 1/16 (6.25%) of the true
	// value, is monotone in p, and P(100) == Max exactly.
	var h Histogram
	for i := int64(1); i <= 10000; i++ {
		h.Observe(i * 1000) // 1µs .. 10ms in ns
	}
	last := int64(0)
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 100} {
		got := h.Percentile(p)
		exact := int64(math.Ceil(p/100*10000)) * 1000
		if got < exact {
			t.Fatalf("p%g=%d below exact %d (not an upper bound)", p, got, exact)
		}
		if float64(got) > float64(exact)*(1+1.0/subCount) {
			t.Fatalf("p%g=%d exceeds %g error bound of exact %d", p, got, 1.0/subCount, exact)
		}
		if got < last {
			t.Fatalf("percentile not monotone: p%g=%d < %d", p, got, last)
		}
		last = got
	}
	if h.Percentile(100) != h.Max() {
		t.Fatalf("p100=%d != max=%d", h.Percentile(100), h.Max())
	}
}

// TestHistogramConcurrentWriters hammers one histogram from many
// goroutines while a reader merges it into a scratch copy — run under
// -race this proves Observe/Merge/Percentile need no locks.
func TestHistogramConcurrentWriters(t *testing.T) {
	const writers = 8
	const perWriter = 20000
	var h Histogram
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // merged reads racing the writers
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var scratch Histogram
			scratch.Merge(&h)
			_ = scratch.Percentile(99)
			_ = h.Mean()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64(w*perWriter + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reader.Wait()
	if h.Count() != writers*perWriter {
		t.Fatalf("count=%d, want %d", h.Count(), writers*perWriter)
	}
	if h.Max() != writers*perWriter-1 {
		t.Fatalf("max=%d, want %d", h.Max(), writers*perWriter-1)
	}
}

// TestHistogramShardMergeProperty: merging per-shard histograms is
// exactly equivalent to observing every sample into a single histogram.
func TestHistogramShardMergeProperty(t *testing.T) {
	f := func(samples []uint32, shardCount uint8) bool {
		n := int(shardCount%7) + 2
		shards := make([]*Histogram, n)
		for i := range shards {
			shards[i] = &Histogram{}
		}
		var single Histogram
		for i, s := range samples {
			v := int64(s)
			single.Observe(v)
			shards[i%n].Observe(v)
		}
		var merged Histogram
		for _, sh := range shards {
			merged.Merge(sh)
		}
		if merged.Count() != single.Count() || merged.Sum() != single.Sum() || merged.Max() != single.Max() {
			return false
		}
		for _, p := range []float64{25, 50, 90, 99, 100} {
			if merged.Percentile(p) != single.Percentile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)
	snap := h.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot buckets = %d, want 2", len(snap))
	}
	if snap[0].Upper != 3 || snap[0].Count != 2 {
		t.Fatalf("first bucket = %+v", snap[0])
	}
	if snap[1].Upper < 100 || snap[1].Count != 1 {
		t.Fatalf("second bucket = %+v", snap[1])
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
