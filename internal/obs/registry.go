package obs

import (
	"sort"
	"sync"
)

// Registry owns a region's observability state: per-operator Process
// latency histograms, per-edge queue-wait and queue-depth histograms,
// the tuple tracer, and the lifecycle journal. Histogram lookups happen
// at pipeline compile time only; the compiled hot path holds resolved
// *Histogram pointers and never touches the registry maps.
type Registry struct {
	Tracer  *Tracer
	Journal *Journal

	mu     sync.Mutex
	ops    map[string]*Histogram // operator Process latency, ns
	waits  map[string]*Histogram // edge queue wait, ns
	depths map[string]*Histogram // edge queue depth at enqueue, items
}

// NewRegistry returns a registry with tracing off and an empty journal.
func NewRegistry() *Registry {
	return &Registry{
		Tracer:  NewTracer(0),
		Journal: NewJournal(0),
		ops:     make(map[string]*Histogram),
		waits:   make(map[string]*Histogram),
		depths:  make(map[string]*Histogram),
	}
}

func (r *Registry) get(m map[string]*Histogram, key string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := m[key]
	if h == nil {
		h = &Histogram{}
		m[key] = h
	}
	return h
}

// OpLatency returns (creating on first use) the Process-latency histogram
// for an operator. Nil-safe: a nil registry yields a nil histogram, which
// the compiled pipeline treats as "not instrumented".
func (r *Registry) OpLatency(op string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(r.ops, op)
}

// EdgeWait returns the queue-wait histogram for an edge ("from->to").
func (r *Registry) EdgeWait(edge string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(r.waits, edge)
}

// EdgeDepth returns the queue-depth histogram for an edge.
func (r *Registry) EdgeDepth(edge string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(r.depths, edge)
}

// HistogramView is one named histogram in a registry snapshot.
type HistogramView struct {
	Name string
	Hist *Histogram
}

func viewOf(m map[string]*Histogram) []HistogramView {
	out := make([]HistogramView, 0, len(m))
	for k, h := range m {
		out = append(out, HistogramView{Name: k, Hist: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Ops returns the operator histograms in name order.
func (r *Registry) Ops() []HistogramView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return viewOf(r.ops)
}

// Waits returns the edge queue-wait histograms in name order.
func (r *Registry) Waits() []HistogramView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return viewOf(r.waits)
}

// Depths returns the edge queue-depth histograms in name order.
func (r *Registry) Depths() []HistogramView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return viewOf(r.depths)
}
