// Package controller implements the global controller (§III): a reliable
// server reachable over cellular that coordinates checkpoints, detects
// failures (pings plus neighbour reports), orchestrates recovery and
// handles mobility. It is control-plane only — no data tuples flow
// through it — and its traffic is a few hundred bytes per event.
package controller

import (
	"strings"
	"sync"
	"time"

	"mobistreams/internal/clock"
	"mobistreams/internal/node"
	"mobistreams/internal/region"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
	"mobistreams/internal/wire"
)

// Config parameterises the controller. Defaults follow §IV: 5-minute
// checkpoint period, 30-second pings, 10-second timeout.
type Config struct {
	ID               simnet.NodeID
	Clock            clock.Clock
	Cell             *simnet.Cellular
	CheckpointPeriod time.Duration
	PingInterval     time.Duration
	PingTimeout      time.Duration
	// CodeBytes is the operator code size shipped to a phone at
	// placement and recovery time.
	CodeBytes int
	// DebounceWindow batches burst failure reports into one recovery.
	DebounceWindow time.Duration
	// Sched, when non-nil, enables adaptive placement: every ScheduleTick
	// the controller polls region telemetry and executes the planned live
	// migrations (proactive; the paper's reactive recovery still backstops
	// anything the scheduler misses).
	Sched *scheduler.Scheduler
	// Planner, when non-nil, enables topology-aware placement planning:
	// each tick the controller snapshots the region's channel topology,
	// asks the planner for a versioned plan, and executes its migrate /
	// reserve / release steps through the migration machinery, journaling
	// the plan lifecycle. When the planner reports no usable topology the
	// tick falls back to Sched's greedy scorer (the baseline).
	Planner *scheduler.Planner
	// ScheduleTick is the telemetry/planning period (default 10 s).
	ScheduleTick time.Duration
	// OnRegionDead is called when a region can no longer run and is
	// bypassed (§III-D); may be nil.
	OnRegionDead func(regionID string)
	// FederationSink, when non-nil, receives each region's telemetry
	// rollup every schedule tick. The federation agent publishes it into
	// the backhaul overlay; the controller itself stays region-local.
	// Called without controller locks held.
	FederationSink func(wire.Rollup)
	Logf           func(string, ...interface{})
}

func (c *Config) applyDefaults() {
	if c.ID == "" {
		c.ID = "controller"
	}
	if c.CheckpointPeriod <= 0 {
		c.CheckpointPeriod = 5 * time.Minute
	}
	if c.PingInterval <= 0 {
		c.PingInterval = 30 * time.Second
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = 10 * time.Second
	}
	if c.CodeBytes <= 0 {
		c.CodeBytes = 256 << 10
	}
	if c.DebounceWindow <= 0 {
		c.DebounceWindow = 2 * time.Second
	}
	if c.ScheduleTick <= 0 {
		c.ScheduleTick = 10 * time.Second
	}
}

// managed is the controller's per-region state.
type managed struct {
	r *region.Region

	mu           sync.Mutex
	version      uint64
	committed    uint64
	epoch        uint64
	pendingVer   uint64
	checkpointed map[string]bool
	persisted    map[string]bool
	restored     map[simnet.NodeID]uint64
	handoffDone  map[simnet.NodeID]bool
	catchUpDone  map[uint64]int
	failedSeen   map[simnet.NodeID]bool
	pendingFail  []simnet.NodeID
	recovering   bool
	dead         bool
	recoveries   int
	departures   int
	migrations   int
	// spares are idle phones held claimed as warm spares by the placement
	// planner; warmed marks phones that already received operator code,
	// so migrating onto them skips the code ship.
	spares      map[simnet.NodeID]bool
	warmed      map[simnet.NodeID]bool
	planCommits int
	planAborts  int
	// fedEpoch orders this region's federation rollups.
	fedEpoch uint64
	// migrating holds off checkpoint rounds while a live migration has a
	// slot vacated: a token/snapshot command sent to the mid-flight slot
	// would never be answered and the round could never commit.
	migrating bool
	// noMobilityWarned guards the once-per-region log line for departures
	// under schemes with no mobility story.
	noMobilityWarned bool
}

// Controller is the global coordinator.
type Controller struct {
	cfg  Config
	clk  clock.Clock
	ep   *simnet.Endpoint
	logf func(string, ...interface{})

	mu      sync.Mutex
	regions map[string]*managed

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New creates a controller attached to the cellular network with
// effectively unconstrained wired bandwidth.
func New(cfg Config) *Controller {
	cfg.applyDefaults()
	c := &Controller{
		cfg:     cfg,
		clk:     cfg.Clock,
		ep:      simnet.NewEndpoint(cfg.ID, 1<<15),
		regions: make(map[string]*managed),
		stopCh:  make(chan struct{}),
	}
	c.logf = cfg.Logf
	if c.logf == nil {
		c.logf = func(string, ...interface{}) {}
	}
	cfg.Cell.AttachRated(c.ep, 1e9, 1e9)
	return c
}

// ID returns the controller's network identity.
func (c *Controller) ID() simnet.NodeID { return c.cfg.ID }

// AddRegion registers a region; the controller starts coordinating it when
// Start runs (or immediately if already started).
func (c *Controller) AddRegion(r *region.Region) {
	m := &managed{
		r:            r,
		checkpointed: make(map[string]bool),
		persisted:    make(map[string]bool),
		restored:     make(map[simnet.NodeID]uint64),
		handoffDone:  make(map[simnet.NodeID]bool),
		catchUpDone:  make(map[uint64]int),
		failedSeen:   make(map[simnet.NodeID]bool),
		spares:       make(map[simnet.NodeID]bool),
		warmed:       make(map[simnet.NodeID]bool),
	}
	c.mu.Lock()
	c.regions[r.ID()] = m
	c.mu.Unlock()
}

// Start launches the controller loops.
func (c *Controller) Start() {
	c.wg.Add(1)
	go c.reportLoop()
	c.mu.Lock()
	regions := make([]*managed, 0, len(c.regions))
	for _, m := range c.regions {
		regions = append(regions, m)
	}
	c.mu.Unlock()
	for _, m := range regions {
		if m.r.Scheme().Checkpoints() {
			c.wg.Add(1)
			go c.checkpointLoop(m)
		}
		c.wg.Add(1)
		go c.pingLoop(m)
		if c.cfg.Sched != nil || c.cfg.Planner != nil || c.cfg.FederationSink != nil {
			c.wg.Add(1)
			go c.scheduleLoop(m)
		}
	}
}

// Stop shuts the controller down.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.wg.Wait()
}

func (c *Controller) stopped() bool {
	select {
	case <-c.stopCh:
		return true
	default:
		return false
	}
}

// regionFor maps a phone ID ("region/p3" or "region/p3#sb#n2") to its
// managed region.
func (c *Controller) regionFor(id simnet.NodeID) *managed {
	name := string(id)
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.regions[name]
}

// Region returns the managed region's runtime by name (tests, system
// wiring).
func (c *Controller) Region(name string) *region.Region {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.regions[name]; m != nil {
		return m.r
	}
	return nil
}

// Committed reports a region's latest committed checkpoint version.
func (c *Controller) Committed(regionID string) uint64 {
	c.mu.Lock()
	m := c.regions[regionID]
	c.mu.Unlock()
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.committed
}

// Recoveries reports how many recoveries a region has undergone.
func (c *Controller) Recoveries(regionID string) int {
	c.mu.Lock()
	m := c.regions[regionID]
	c.mu.Unlock()
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recoveries
}

// RegionDead reports whether a region has been stopped and bypassed.
func (c *Controller) RegionDead(regionID string) bool {
	c.mu.Lock()
	m := c.regions[regionID]
	c.mu.Unlock()
	if m == nil {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead
}

// send issues a command to a phone over cellular, fire-and-forget.
func (c *Controller) send(to simnet.NodeID, cmd node.Command) {
	if err := c.cfg.Cell.Send(c.cfg.ID, to, simnet.ClassControl, 64, cmd); err != nil {
		c.logf("controller: send %v to %s: %v", cmd.Op, to, err)
	}
}

// request issues a command and waits for the acknowledgement, returning
// false on timeout or send failure.
func (c *Controller) request(to simnet.NodeID, cmd node.Command, timeout time.Duration) bool {
	reply, err := c.cfg.Cell.Request(c.cfg.ID, to, simnet.ClassControl, 64, cmd)
	if err != nil {
		return false
	}
	select {
	case <-reply:
		return true
	case <-c.clk.After(timeout):
		return false
	case <-c.stopCh:
		return false
	}
}

// shipCode models transferring operator code to a phone (§III-A).
func (c *Controller) shipCode(to simnet.NodeID) {
	c.cfg.Cell.Send(c.cfg.ID, to, simnet.ClassCode, c.cfg.CodeBytes, nil)
}

// TriggerCheckpoint starts one checkpoint round immediately and returns its
// version (tests and benchmarks drive checkpoints explicitly through this).
func (c *Controller) TriggerCheckpoint(regionID string) uint64 {
	c.mu.Lock()
	m := c.regions[regionID]
	c.mu.Unlock()
	if m == nil {
		return 0
	}
	return c.startCheckpoint(m)
}

// checkpointLoop runs the periodic checkpoint rounds (§III-B step 1).
func (c *Controller) checkpointLoop(m *managed) {
	defer c.wg.Done()
	for {
		select {
		case <-c.clk.After(c.cfg.CheckpointPeriod):
			if m.isDead() {
				return
			}
			c.startCheckpoint(m)
		case <-c.stopCh:
			return
		}
	}
}

func (m *managed) isDead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead
}

func (m *managed) isMigrating() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migrating
}

func (c *Controller) startCheckpoint(m *managed) uint64 {
	m.mu.Lock()
	if m.recovering || m.dead || m.migrating {
		// A migration in flight has a slot vacated at its source: the
		// round could never complete. Skip; the periodic loop retries.
		m.mu.Unlock()
		return 0
	}
	m.version++
	v := m.version
	m.pendingVer = v
	m.checkpointed = make(map[string]bool)
	m.persisted = make(map[string]bool)
	m.mu.Unlock()

	scheme := m.r.Scheme()
	if scheme.UsesTokens() {
		for _, slot := range m.r.Graph().SourceSlots() {
			if pid, ok := m.r.Placement(slot); ok {
				c.send(pid, node.Command{Op: node.CmdToken, Version: v})
			}
		}
	} else if scheme.PeriodicSnapshot() {
		for _, slot := range m.r.ActiveSlots() {
			if pid, ok := m.r.Placement(slot); ok {
				c.send(pid, node.Command{Op: node.CmdSnapshot, Version: v})
			}
		}
	}
	return v
}

// pingLoop probes every active slot's host (§III-D, extended from the
// paper's source-only pings): the ping carries the slot, and only the
// phone actually hosting it answers — so both a dead phone and a healthy
// phone that lost the slot (stranded placement after a failed migration)
// miss the timeout and trigger recovery. Rounds are skipped while a
// migration is mid-flight, when one vacated-but-healthy source is the
// expected transient state.
func (c *Controller) pingLoop(m *managed) {
	defer c.wg.Done()
	for {
		select {
		case <-c.clk.After(c.cfg.PingInterval):
			if m.isDead() {
				return
			}
			if m.isMigrating() {
				continue
			}
			for _, slot := range m.r.ActiveSlots() {
				pid, ok := m.r.Placement(slot)
				if !ok {
					continue
				}
				if !c.request(pid, node.Command{Op: node.CmdPing, Slot: slot}, c.cfg.PingTimeout) {
					// Re-resolve before reporting: a migration that
					// started mid-round legitimately moved the slot.
					if cur, ok := m.r.Placement(slot); ok && cur == pid {
						c.noteFailure(m, pid)
					}
				}
			}
		case <-c.stopCh:
			return
		}
	}
}
