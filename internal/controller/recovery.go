package controller

import (
	"time"

	"mobistreams/internal/ft"
	"mobistreams/internal/node"
	"mobistreams/internal/simnet"
)

// reportLoop consumes node reports and drives commit and recovery logic.
func (c *Controller) reportLoop() {
	defer c.wg.Done()
	for {
		select {
		case msg := <-c.ep.Inbox():
			if rep, ok := msg.Payload.(node.Report); ok {
				c.handleReport(rep)
			}
		case <-c.stopCh:
			return
		}
	}
}

func (c *Controller) handleReport(rep node.Report) {
	m := c.regionFor(rep.Phone)
	if m == nil {
		return
	}
	switch rep.Type {
	case node.RepCheckpointed:
		c.onCheckpointProgress(m, rep, false)
	case node.RepPersisted:
		c.onCheckpointProgress(m, rep, true)
	case node.RepFailure, node.RepChronicBattery:
		observed := rep.Observed
		if rep.Type == node.RepChronicBattery {
			observed = rep.Phone
		}
		c.noteFailure(m, observed)
	case node.RepUrgent:
		c.logf("controller: urgent mode in %s for slot %s", m.r.ID(), rep.Slot)
	case node.RepRestored:
		m.mu.Lock()
		m.restored[rep.Phone] = rep.Version
		m.mu.Unlock()
		if rep.Err != "" {
			c.logf("controller: restore on %s failed: %s", rep.Phone, rep.Err)
		}
	case node.RepHandoffDone:
		m.mu.Lock()
		m.handoffDone[rep.Phone] = true
		m.mu.Unlock()
	case node.RepCatchUpDone:
		m.mu.Lock()
		m.catchUpDone[rep.Epoch]++
		m.mu.Unlock()
	}
}

// onCheckpointProgress tracks a version's per-slot progress; when every
// active slot has both checkpointed and persisted, the version commits and
// every phone is told to garbage-collect (§III-B: the region's checkpoint
// is complete when the sinks percolate tokens back — here, when the last
// slot's persistence lands).
func (c *Controller) onCheckpointProgress(m *managed, rep node.Report, persisted bool) {
	m.mu.Lock()
	if rep.Version != m.pendingVer || m.dead || m.recovering {
		m.mu.Unlock()
		return
	}
	if persisted {
		m.persisted[rep.Slot] = true
	} else {
		m.checkpointed[rep.Slot] = true
	}
	slots := m.r.ActiveSlots()
	done := true
	for _, s := range slots {
		if !m.checkpointed[s] || !m.persisted[s] {
			done = false
			break
		}
	}
	if !done {
		m.mu.Unlock()
		return
	}
	v := m.pendingVer
	m.committed = v
	m.pendingVer = 0
	m.mu.Unlock()

	for _, pid := range m.r.AlivePhones() {
		c.send(pid, node.Command{Op: node.CmdCommit, Version: v})
	}
	c.logf("controller: region %s committed v%d", m.r.ID(), v)
}

// noteFailure registers a suspected phone failure; a short debounce window
// batches simultaneous failures into a single recovery (§III-D: burst
// failures are the norm on phones).
func (c *Controller) noteFailure(m *managed, phoneID simnet.NodeID) {
	if phoneID == "" {
		return
	}
	m.mu.Lock()
	if m.dead || m.failedSeen[phoneID] {
		m.mu.Unlock()
		return
	}
	m.failedSeen[phoneID] = true
	m.pendingFail = append(m.pendingFail, phoneID)
	if m.recovering {
		m.mu.Unlock()
		return
	}
	m.recovering = true
	m.mu.Unlock()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.clk.Sleep(c.cfg.DebounceWindow)
		// A live migration in flight has a slot vacated at its source and
		// placement about to be repointed; recovering through that window
		// would pause/restore against a placement mid-change. Migrations
		// are bounded (transfer timeout), so wait them out. New migrations
		// cannot start: m.recovering is already set.
		for m.isMigrating() && !c.stopped() {
			c.clk.Sleep(500 * time.Millisecond)
		}
		for {
			m.mu.Lock()
			batch := m.pendingFail
			m.pendingFail = nil
			m.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			c.recover(m, batch)
		}
		m.mu.Lock()
		m.recovering = false
		m.mu.Unlock()
	}()
}

// recover replaces the failed phones and restores the region according to
// its scheme.
func (c *Controller) recover(m *managed, failed []simnet.NodeID) {
	scheme := m.r.Scheme()
	var failedSlots []string
	for _, pid := range failed {
		failedSlots = append(failedSlots, m.r.SlotsOn(pid)...)
	}
	if len(failedSlots) == 0 {
		// The reported phones host nothing (an idle phone died, or a
		// vacated migration source was reported): the stream is intact,
		// so a region-wide pause/restore would be pure disruption.
		c.logf("controller: %s: %d slotless phones reported failed; no recovery needed", m.r.ID(), len(failed))
		return
	}
	m.mu.Lock()
	m.recoveries++
	m.mu.Unlock()
	c.logf("controller: recovering %s: %d phones, slots %v", m.r.ID(), len(failed), failedSlots)

	switch scheme.Kind {
	case ft.MS:
		c.recoverMS(m, failedSlots)
	case ft.DistN:
		c.recoverDist(m, failedSlots, len(failed))
	case ft.Rep2:
		c.recoverRep2(m, failedSlots, len(failed))
	default:
		// base and local have no phone-replacement story.
		c.killRegion(m)
	}
}

// recoverMS is MobiStreams recovery (§III-D): replacements read the MRC
// from their own local storage, every node restores in parallel, sources
// replay preserved input, sinks suppress catch-up output.
func (c *Controller) recoverMS(m *managed, failedSlots []string) {
	if !m.r.Scheme().CanRecover(len(failedSlots), m.r.IdleCount()) {
		c.killRegion(m)
		return
	}
	m.mu.Lock()
	v := m.committed
	m.epoch++
	epoch := m.epoch
	m.restored = make(map[simnet.NodeID]uint64)
	m.mu.Unlock()

	for _, slot := range failedSlots {
		repl := m.r.TakeIdle()
		if repl == "" {
			c.killRegion(m)
			return
		}
		c.shipCode(repl)
		m.r.ActivateReplacement(repl, slot)
	}

	// Pause all active phones at tuple boundaries.
	phones := c.activePhones(m)
	for _, pid := range phones {
		c.request(pid, node.Command{Op: node.CmdPause}, 10*time.Second)
	}
	// Parallel restoration from local storage.
	for _, pid := range phones {
		c.send(pid, node.Command{Op: node.CmdRestore, Version: v})
	}
	c.awaitRestored(m, phones, 30*time.Second)
	// Catch-up: sources replay preserved input since the MRC.
	for _, slot := range m.r.Graph().SourceSlots() {
		if pid, ok := m.r.Placement(slot); ok {
			c.send(pid, node.Command{Op: node.CmdReplay, Version: v, Epoch: epoch})
		}
	}
	// Resume downstream-first, acknowledged: a restored node drops stream
	// arrivals until its resume, so every consumer must be open before
	// any upstream starts pushing replay traffic.
	c.resumeDownstreamFirst(m)
}

// resumeDownstreamFirst resumes the region sinks-first in reverse slot
// topological order, waiting for each node's acknowledgement before
// resuming its upstreams.
func (c *Controller) resumeDownstreamFirst(m *managed) {
	g := m.r.Graph()
	ops, err := g.TopoOrder()
	var slots []string
	if err == nil {
		seenSlot := make(map[string]bool)
		for _, op := range ops {
			if s := g.SlotOf(op); !seenSlot[s] {
				seenSlot[s] = true
				slots = append(slots, s)
			}
		}
	} else {
		slots = m.r.ActiveSlots()
	}
	seen := make(map[simnet.NodeID]bool)
	for i := len(slots) - 1; i >= 0; i-- {
		if pid, ok := m.r.Placement(slots[i]); ok && !seen[pid] {
			seen[pid] = true
			// The timeout is generous: proceeding to an upstream while a
			// consumer's resume is still in flight reopens the window
			// where replay traffic hits a still-closed stream path.
			c.request(pid, node.Command{Op: node.CmdResume}, 120*time.Second)
		}
	}
}

// recoverDist is classic distributed-checkpoint recovery: only the failed
// slots restore (from a surviving peer copy), and their upstreams resend
// retained output.
func (c *Controller) recoverDist(m *managed, failedSlots []string, k int) {
	// Tolerance is judged against the cumulative burst (failure reports
	// can trickle in across debounce windows): dist-n dies beyond n
	// total failures, as in the paper's n+1-point curves.
	if total := m.r.FailedPhoneCount(); total > k {
		k = total
	}
	if !m.r.Scheme().CanRecover(k, m.r.IdleCount()) {
		c.killRegion(m)
		return
	}
	m.mu.Lock()
	v := m.committed
	m.mu.Unlock()
	for _, slot := range failedSlots {
		repl := m.r.TakeIdle()
		if repl == "" {
			c.killRegion(m)
			return
		}
		c.shipCode(repl)
		m.r.ActivateReplacement(repl, slot)
		peer := repl
		if v > 0 {
			holders := m.r.BlobHolders(v, slot)
			if len(holders) == 0 {
				c.logf("controller: no surviving copy of %s v%d", slot, v)
				c.killRegion(m)
				return
			}
			peer = holders[0]
		}
		c.send(repl, node.Command{Op: node.CmdFetchRestore, Version: v, Target: peer, Slot: slot})
	}
}

// recoverRep2 promotes standbys; more than one failure is unrecoverable.
func (c *Controller) recoverRep2(m *managed, failedSlots []string, k int) {
	if total := m.r.FailedPhoneCount(); total > k {
		k = total
	}
	if !m.r.Scheme().CanRecover(k, 0) {
		c.killRegion(m)
		return
	}
	for _, slot := range failedSlots {
		if n := m.r.PromoteStandby(slot); n == nil {
			c.killRegion(m)
			return
		}
	}
}

// killRegion stops a region and bypasses it (§III-D: connect the region's
// upstream and downstream neighbours directly).
func (c *Controller) killRegion(m *managed) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	m.dead = true
	m.mu.Unlock()
	m.r.Stop()
	c.logf("controller: region %s is dead, bypassing", m.r.ID())
	if c.cfg.OnRegionDead != nil {
		c.cfg.OnRegionDead(m.r.ID())
	}
}

// activePhones lists the phones currently hosting slots.
func (c *Controller) activePhones(m *managed) []simnet.NodeID {
	seen := make(map[simnet.NodeID]bool)
	var ids []simnet.NodeID
	for _, slot := range m.r.ActiveSlots() {
		if pid, ok := m.r.Placement(slot); ok && !seen[pid] {
			seen[pid] = true
			ids = append(ids, pid)
		}
	}
	return ids
}

// awaitRestored polls until every phone reports restoration or the timeout
// elapses.
func (c *Controller) awaitRestored(m *managed, phones []simnet.NodeID, timeout time.Duration) {
	deadline := c.clk.Now() + timeout
	for c.clk.Now() < deadline && !c.stopped() {
		m.mu.Lock()
		done := true
		for _, pid := range phones {
			if _, ok := m.restored[pid]; !ok {
				done = false
				break
			}
		}
		m.mu.Unlock()
		if done {
			return
		}
		c.clk.Sleep(500 * time.Millisecond)
	}
}

// NotifyDeparture is the GPS feed (§III-E): the named phone has left its
// region. The controller selects a replacement, orders the state transfer
// over cellular, and repoints the slot.
func (c *Controller) NotifyDeparture(regionID string, phoneID simnet.NodeID) {
	c.mu.Lock()
	m := c.regions[regionID]
	c.mu.Unlock()
	if m == nil || m.isDead() {
		return
	}
	m.mu.Lock()
	m.departures++
	m.mu.Unlock()
	slots := m.r.SlotsOn(phoneID)
	if len(slots) == 0 {
		m.r.Unregister(phoneID)
		return
	}
	if !m.r.Scheme().HandlesDepartures() {
		// Prior schemes have no mobility story: the slot stays placed on
		// the departed phone and the region limps along in urgent mode —
		// permanently (paper §IV-B runs departures only on MobiStreams).
		// Warn once per region; churny workloads would otherwise repeat
		// this line on every departure.
		m.mu.Lock()
		warned := m.noMobilityWarned
		m.noMobilityWarned = true
		m.mu.Unlock()
		if !warned {
			c.logf("controller: region %s: scheme %s has no mobility story; departed phones keep their slots in urgent mode",
				m.r.ID(), m.r.Scheme())
		}
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		// Serialise with live migrations: both paths vacate a slot with
		// its state in flight, and two concurrent transfers of the same
		// phone's slots would race each other's placement repoints. The
		// flag also holds off checkpoint rounds across the handoff.
		m.mu.Lock()
		for m.migrating && !m.dead {
			m.mu.Unlock()
			if c.stopped() {
				return
			}
			c.clk.Sleep(300 * time.Millisecond)
			m.mu.Lock()
		}
		if m.dead {
			m.mu.Unlock()
			return
		}
		m.migrating = true
		m.mu.Unlock()
		defer func() {
			m.mu.Lock()
			m.migrating = false
			m.mu.Unlock()
		}()
		// Re-read the slots under the interlock: a migration that just
		// finished may already have moved some off the departing phone.
		for _, slot := range m.r.SlotsOn(phoneID) {
			repl := m.r.TakeIdle()
			if repl == "" {
				c.logf("controller: no replacement for departing %s; staying in urgent mode", phoneID)
				return
			}
			c.shipCode(repl)
			// Order the departing phone to hand its state to the
			// replacement over cellular (Fig. 7, instants 2-4).
			m.mu.Lock()
			delete(m.restored, repl)
			m.mu.Unlock()
			c.send(phoneID, node.Command{Op: node.CmdHandoff, Target: repl})
			if c.awaitTransfer(m, repl, 120*time.Second) {
				m.r.SetPlacement(slot, repl)
			} else {
				c.logf("controller: handoff of %s to %s timed out", slot, repl)
			}
		}
		m.r.Unregister(phoneID)
	}()
}

// awaitTransfer polls until the replacement reports its transfer restore.
func (c *Controller) awaitTransfer(m *managed, repl simnet.NodeID, timeout time.Duration) bool {
	deadline := c.clk.Now() + timeout
	for c.clk.Now() < deadline && !c.stopped() {
		m.mu.Lock()
		v, ok := m.restored[repl]
		m.mu.Unlock()
		if ok && v == ^uint64(0) {
			return true
		}
		c.clk.Sleep(300 * time.Millisecond)
	}
	return false
}

// Departures reports how many departures a region has processed.
func (c *Controller) Departures(regionID string) int {
	c.mu.Lock()
	m := c.regions[regionID]
	c.mu.Unlock()
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.departures
}

// CatchUpCount reports how many sinks completed catch-up for an epoch.
func (c *Controller) CatchUpCount(regionID string, epoch uint64) int {
	c.mu.Lock()
	m := c.regions[regionID]
	c.mu.Unlock()
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.catchUpDone[epoch]
}
