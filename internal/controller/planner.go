package controller

import (
	"fmt"

	"mobistreams/internal/placement"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
)

// runPlan executes one planner tick for a region: snapshot the channel
// topology (with the controller's spare holdings), ask the planner for a
// plan, and execute its steps in order. The plan lifecycle is surfaced
// through the region journal: plan.propose when a non-empty plan starts,
// plan.step per executed step, then plan.commit — or plan.abort the moment
// a migrate step fails, because a failed migration means the snapshot went
// stale under the plan (the target departed, or recovery moved the slot)
// and executing the remaining steps would compound the drift; the next
// tick replans from fresh telemetry. It returns false only when the
// planner reports no usable topology, sending the caller to the greedy
// fallback.
func (c *Controller) runPlan(m *managed, stats scheduler.RegionStats) bool {
	m.mu.Lock()
	spares := make(map[simnet.NodeID]bool, len(m.spares))
	for id := range m.spares {
		spares[id] = true
	}
	m.mu.Unlock()

	plan := c.cfg.Planner.Plan(m.r.PlacementSnapshot(stats, spares))
	if plan == nil {
		return false
	}
	if len(plan.Steps) == 0 {
		return true
	}
	m.r.Jot("plan.propose", "", plan.Version, fmt.Sprintf("%d steps", len(plan.Steps)))
	for i, st := range plan.Steps {
		if c.stopped() || m.isDead() {
			m.r.Jot("plan.abort", st.Slot, plan.Version, "controller stopping")
			m.mu.Lock()
			m.planAborts++
			m.mu.Unlock()
			return true
		}
		ok := c.execStep(m, st)
		m.r.Jot("plan.step", st.Slot, plan.Version,
			fmt.Sprintf("%d/%d ok=%v %s", i+1, len(plan.Steps), ok, st))
		if !ok && st.Kind == placement.StepMigrate {
			m.r.Jot("plan.abort", st.Slot, plan.Version, st.String())
			m.mu.Lock()
			m.planAborts++
			m.mu.Unlock()
			return true
		}
	}
	m.r.Jot("plan.commit", "", plan.Version, fmt.Sprintf("%d steps", len(plan.Steps)))
	m.mu.Lock()
	m.planCommits++
	m.mu.Unlock()
	return true
}

// execStep executes one plan step. Reserve and release failures are
// tolerable (the pool is rebuilt next tick); a migrate failure is the
// caller's signal to abort the plan.
func (c *Controller) execStep(m *managed, st placement.Step) bool {
	switch st.Kind {
	case placement.StepReserve:
		if !m.r.ClaimIdle(st.To) {
			return false
		}
		m.mu.Lock()
		m.spares[st.To] = true
		warm := m.warmed[st.To]
		m.warmed[st.To] = true
		m.mu.Unlock()
		if !warm {
			// Warm the spare now: with operator code pre-shipped, a later
			// migration onto it skips the cellular code transfer entirely.
			c.shipCode(st.To)
		}
		return true
	case placement.StepRelease:
		m.mu.Lock()
		held := m.spares[st.To]
		delete(m.spares, st.To)
		m.mu.Unlock()
		if held {
			m.r.ReleaseToIdle(st.To)
		}
		return held
	case placement.StepMigrate:
		m.mu.Lock()
		preclaimed := m.spares[st.To]
		delete(m.spares, st.To)
		m.mu.Unlock()
		return c.migrateTo(m, scheduler.Migration{
			Slot: st.Slot, From: st.From, To: st.To, Reason: st.Reason,
		}, preclaimed)
	default:
		return false
	}
}

// PlanStats reports how many placement plans a region committed and
// aborted.
func (c *Controller) PlanStats(regionID string) (committed, aborted int) {
	c.mu.Lock()
	m := c.regions[regionID]
	c.mu.Unlock()
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.planCommits, m.planAborts
}
