package controller

import (
	"time"

	"mobistreams/internal/node"
	"mobistreams/internal/region"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
)

// scheduleLoop runs the adaptive placement ticks for one region: poll
// telemetry, publish the federation rollup, let the scheduler plan, and
// execute each planned migration sequentially. Planning is skipped while
// the region is recovering or mid-checkpoint — a migration in either
// window would race the very machinery it exists to spare. The rollup is
// published regardless: the federation wants to hear about a region
// precisely when it is struggling.
func (c *Controller) scheduleLoop(m *managed) {
	defer c.wg.Done()
	for {
		select {
		case <-c.clk.After(c.cfg.ScheduleTick):
			if m.isDead() {
				return
			}
			var stats scheduler.RegionStats
			polled := false
			if c.cfg.FederationSink != nil {
				stats = m.r.Telemetry()
				polled = true
				m.mu.Lock()
				m.fedEpoch++
				epoch := m.fedEpoch
				m.mu.Unlock()
				ru := region.RollupFromStats(stats, epoch)
				ru.OutTuples = m.r.Outputs()
				c.cfg.FederationSink(ru)
			}
			m.mu.Lock()
			busy := m.recovering || m.pendingVer != 0
			m.mu.Unlock()
			if busy || (c.cfg.Sched == nil && c.cfg.Planner == nil) {
				continue
			}
			if !polled {
				// Poll lazily: Telemetry() differentiates drain and tuple
				// rates across polls, so an extra poll during a busy window
				// would perturb the scheduler's risk scores.
				stats = m.r.Telemetry()
			}
			if c.cfg.Planner != nil && c.runPlan(m, stats) {
				continue
			}
			// Greedy baseline, and the fallback when the planner reports
			// no usable channel topology.
			if c.cfg.Sched == nil {
				continue
			}
			for _, mig := range c.cfg.Sched.Plan(stats) {
				if c.stopped() {
					return
				}
				c.migrateSlot(m, mig)
			}
		case <-c.stopCh:
			return
		}
	}
}

// migrateSlot executes one planned live migration: claim the target out of
// the idle pool, ship operator code, order the at-risk host to transfer its
// slot over WiFi (CmdMigrate), await the replacement's restore report, then
// atomically repoint placement. In-flight batches drain to the new home
// through the existing resolver-per-retry delivery path, and the vacated
// host relays stragglers until senders observe the new placement.
func (c *Controller) migrateSlot(m *managed, mig scheduler.Migration) bool {
	return c.migrateTo(m, mig, false)
}

// returnTarget hands an unused migration target back: a pre-claimed warm
// spare returns to the spare pool (still claimed, still warm), an
// ad-hoc-claimed idle goes back to the region's idle list.
func (c *Controller) returnTarget(m *managed, to simnet.NodeID, preclaimed bool) {
	if preclaimed {
		m.mu.Lock()
		m.spares[to] = true
		m.mu.Unlock()
		return
	}
	m.r.ReleaseToIdle(to)
}

// migrateTo is migrateSlot with spare-pool awareness: when preclaimed, the
// target is a warm spare the planner already holds (no ClaimIdle) whose
// operator code may already be aboard (no code ship).
func (c *Controller) migrateTo(m *managed, mig scheduler.Migration, preclaimed bool) bool {
	if cur, ok := m.r.Placement(mig.Slot); !ok || cur != mig.From {
		if preclaimed {
			c.returnTarget(m, mig.To, true)
		}
		return false // placement changed under the plan (recovery won a race)
	}
	if !preclaimed && !m.r.ClaimIdle(mig.To) {
		return false
	}
	m.mu.Lock()
	if m.recovering || m.dead || m.pendingVer != 0 || m.migrating {
		// A recovery or checkpoint round started between the plan and
		// now; stand down and return the claimed target untouched.
		m.mu.Unlock()
		c.returnTarget(m, mig.To, preclaimed)
		return false
	}
	m.migrating = true
	delete(m.restored, mig.To)
	warm := m.warmed[mig.To]
	m.warmed[mig.To] = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.migrating = false
		m.mu.Unlock()
	}()

	c.logf("controller: migrating %s off %s to %s (%s)", mig.Slot, mig.From, mig.To, mig.Reason)
	if !warm {
		c.shipCode(mig.To)
	}
	c.send(mig.From, node.Command{Op: node.CmdMigrate, Target: mig.To, Slot: mig.Slot})
	if !c.awaitTransfer(m, mig.To, 60*time.Second) {
		// The restore report never arrived. Inspect where the slot's
		// state actually ended up before touching placement: the wrong
		// guess either blackholes traffic into a never-activated idle
		// node or strands the slot on a vacated source.
		hosts := func(id simnet.NodeID) bool {
			n := m.r.Node(id)
			return n != nil && n.Slot() == mig.Slot
		}
		switch {
		case hosts(mig.To):
			// Transfer landed; only the report was lost. Repoint.
			c.logf("controller: migration of %s to %s landed but went unreported; repointing", mig.Slot, mig.To)
			m.r.SetPlacement(mig.Slot, mig.To)
		case hosts(mig.From):
			// CmdMigrate never took effect (lost command, source died
			// first): nothing moved, return the target to the pool.
			c.logf("controller: migration of %s to %s never started", mig.Slot, mig.To)
			c.returnTarget(m, mig.To, preclaimed)
		default:
			// The source vacated but the state never installed at the
			// target: the slot is dark. Point placement at the target
			// and report it failed so reactive recovery rebuilds the
			// slot from the last checkpoint.
			c.logf("controller: migration of %s to %s lost the state in flight; invoking recovery", mig.Slot, mig.To)
			m.r.SetPlacement(mig.Slot, mig.To)
			c.noteFailure(m, mig.To)
		}
		return false
	}
	m.r.SetPlacement(mig.Slot, mig.To)
	// A manual migration of a healthy phone returns the evacuated source
	// to the idle pool once it hosts nothing; scheduler-planned sources
	// were evacuated *because* they are dying or leaving, and must never
	// be handed out as replacements.
	if mig.Reason == "manual" && len(m.r.SlotsOn(mig.From)) == 0 {
		m.r.ReleaseToIdle(mig.From)
	}
	m.r.NoteMigration()
	m.mu.Lock()
	m.migrations++
	m.mu.Unlock()
	return true
}

// Migrate executes one planned live migration immediately: move slot onto
// the idle phone `to` (tests and operational tooling; the scheduler drives
// the same path periodically). Unlike departure handoffs it works under
// every scheme — proactive migration is precisely what gives the prior
// schemes a mobility story they lack reactively.
func (c *Controller) Migrate(regionID, slot string, to simnet.NodeID) bool {
	c.mu.Lock()
	m := c.regions[regionID]
	c.mu.Unlock()
	if m == nil || m.isDead() {
		return false
	}
	from, ok := m.r.Placement(slot)
	if !ok {
		return false
	}
	return c.migrateSlot(m, scheduler.Migration{Slot: slot, From: from, To: to, Reason: "manual"})
}

// Migrations reports how many planned migrations a region has completed.
func (c *Controller) Migrations(regionID string) int {
	c.mu.Lock()
	m := c.regions[regionID]
	c.mu.Unlock()
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migrations
}
