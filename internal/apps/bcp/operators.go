package bcp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
	"mobistreams/internal/vision"
)

// small fixed wire sizes for the compact tuples between model operators.
const (
	busTupleBytes   = 512
	countTupleBytes = 256
	predTupleBytes  = 512
)

// putF64 appends a float64 to a buffer.
func putF64(buf []byte, v float64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(buf, tmp[:]...)
}

func getF64(data []byte, off int) (float64, int, error) {
	if off+8 > len(data) {
		return 0, 0, fmt.Errorf("bcp: short state")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(data[off:])), off + 8, nil
}

// noiseFilter (N) drops corrupt bus readings and exponentially smooths the
// on-board count.
type noiseFilter struct {
	operator.Base
	cost  time.Duration
	ewma  float64
	n     uint64
	delta operator.DeltaTracker
}

func newNoiseFilter(p Params) *noiseFilter {
	return &noiseFilter{Base: operator.Base{Name: "N"}, cost: p.ModelCost}
}

func (o *noiseFilter) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *noiseFilter) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	info, ok := t.Value.(BusInfo)
	if !ok || info.Corrupt || info.OnBoard < 0 {
		return nil
	}
	if o.n == 0 {
		o.ewma = info.OnBoard
	} else {
		o.ewma = 0.7*o.ewma + 0.3*info.OnBoard
	}
	o.n++
	out := t.Clone()
	out.Size = busTupleBytes
	out.Value = BusInfo{OnBoard: o.ewma}
	ctx.Emit(out)
	return nil
}

func (o *noiseFilter) Snapshot() ([]byte, error) {
	buf := putF64(nil, o.ewma)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], o.n)
	return append(buf, tmp[:]...), nil
}

func (o *noiseFilter) Restore(data []byte) error {
	v, off, err := getF64(data, 0)
	if err != nil {
		return err
	}
	if off+8 > len(data) {
		return fmt.Errorf("bcp: short N state")
	}
	o.ewma = v
	o.n = binary.BigEndian.Uint64(data[off:])
	return nil
}

func (*noiseFilter) StateSize() int { return 16 }

// arrivalModel (A) predicts the bus arrival time at this stop from the
// inter-arrival EWMA.
type arrivalModel struct {
	operator.Base
	cost     time.Duration
	lastSeen float64
	interval float64
	n        uint64
	delta    operator.DeltaTracker
}

func newArrivalModel(p Params) *arrivalModel {
	return &arrivalModel{Base: operator.Base{Name: "A"}, cost: p.ModelCost, interval: 300}
}

func (o *arrivalModel) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *arrivalModel) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	now := t.Created.Seconds()
	if o.n > 0 {
		gap := now - o.lastSeen
		if gap > 0 {
			o.interval = 0.8*o.interval + 0.2*gap
		}
	}
	o.lastSeen = now
	o.n++
	out := t.Clone()
	out.Size = busTupleBytes
	out.Kind = "eta"
	ctx.Emit(out)
	return nil
}

func (o *arrivalModel) Snapshot() ([]byte, error) {
	buf := putF64(nil, o.lastSeen)
	buf = putF64(buf, o.interval)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], o.n)
	return append(buf, tmp[:]...), nil
}

func (o *arrivalModel) Restore(data []byte) error {
	var err error
	var off int
	if o.lastSeen, off, err = getF64(data, 0); err != nil {
		return err
	}
	if o.interval, off, err = getF64(data, off); err != nil {
		return err
	}
	if off+8 > len(data) {
		return fmt.Errorf("bcp: short A state")
	}
	o.n = binary.BigEndian.Uint64(data[off:])
	return nil
}

func (*arrivalModel) StateSize() int { return 24 }

// alightModel (L) predicts alighting passengers as a learned fraction of
// the on-board count.
type alightModel struct {
	operator.Base
	cost     time.Duration
	fraction float64
	delta    operator.DeltaTracker
}

func newAlightModel(p Params) *alightModel {
	return &alightModel{Base: operator.Base{Name: "L"}, cost: p.ModelCost, fraction: 0.3}
}

func (o *alightModel) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *alightModel) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	info, _ := t.Value.(BusInfo)
	alight := o.fraction * info.OnBoard
	out := t.Clone()
	out.Size = busTupleBytes
	out.Kind = "alight"
	out.Value = alight
	ctx.Emit(out)
	return nil
}

func (o *alightModel) Snapshot() ([]byte, error) { return putF64(nil, o.fraction), nil }

func (o *alightModel) Restore(data []byte) error {
	v, _, err := getF64(data, 0)
	if err != nil {
		return err
	}
	o.fraction = v
	return nil
}

func (*alightModel) StateSize() int { return 8 }

// motionDetect (H) is the passerby filter: frames without people are
// dropped before the expensive counters. With real compute it uses a cheap
// luma signature diff; otherwise it consults the planted ground truth.
type motionDetect struct {
	operator.Base
	cost    time.Duration
	real    bool
	prevSig int64
	dropped uint64
	delta   operator.DeltaTracker
}

func newMotionDetect(p Params) *motionDetect {
	return &motionDetect{Base: operator.Base{Name: "H"}, cost: p.MotionCost, real: p.RealCompute}
}

func (o *motionDetect) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *motionDetect) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	f, ok := t.Value.(Frame)
	if !ok {
		return fmt.Errorf("H: unexpected payload %T", t.Value)
	}
	occupied := f.Planted > 0
	if o.real && f.Image != nil {
		sig := lumaSignature(f.Image)
		occupied = abs64(sig-o.prevSig) > int64(f.Image.W*f.Image.H/64) || f.Planted > 0
		o.prevSig = sig
	}
	if !occupied {
		o.dropped++
		return nil
	}
	ctx.Emit(t)
	return nil
}

func (o *motionDetect) Snapshot() ([]byte, error) {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(o.prevSig))
	binary.BigEndian.PutUint64(buf[8:16], o.dropped)
	return buf[:], nil
}

func (o *motionDetect) Restore(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("bcp: short H state")
	}
	o.prevSig = int64(binary.BigEndian.Uint64(data[0:8]))
	o.dropped = binary.BigEndian.Uint64(data[8:16])
	return nil
}

func (*motionDetect) StateSize() int { return 16 }

func lumaSignature(im *vision.Image) int64 {
	var s int64
	for y := 0; y < im.H; y += 4 {
		for x := 0; x < im.W; x += 4 {
			s += int64(im.Gray(x, y))
		}
	}
	return s
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// counter (C0..C3) counts passengers in a frame with the Haar cascade —
// the paper's HaarTraining kernel — and maintains a count histogram that
// models the counter's statistical state.
type counter struct {
	operator.Base
	cost   time.Duration
	real   bool
	extra  int
	hist   [32]uint64
	frames uint64
	delta  operator.DeltaTracker
}

func newCounter(id string, p Params) *counter {
	return &counter{Base: operator.Base{Name: id}, cost: p.CounterCost, real: p.RealCompute, extra: p.CounterStateBytes}
}

func (o *counter) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *counter) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	f, ok := t.Value.(Frame)
	if !ok {
		return fmt.Errorf("counter: unexpected payload %T", t.Value)
	}
	count := f.Planted
	if o.real && f.Image != nil {
		count = vision.CountFaces(f.Image)
	}
	if count < len(o.hist) {
		o.hist[count]++
	}
	o.frames++
	out := t.Clone()
	out.Kind = "count"
	out.Size = countTupleBytes
	out.Value = float64(count)
	ctx.Emit(out)
	return nil
}

func (o *counter) Snapshot() ([]byte, error) {
	buf := make([]byte, 0, 8*(len(o.hist)+1))
	var tmp [8]byte
	for _, h := range o.hist {
		binary.BigEndian.PutUint64(tmp[:], h)
		buf = append(buf, tmp[:]...)
	}
	binary.BigEndian.PutUint64(tmp[:], o.frames)
	return append(buf, tmp[:]...), nil
}

func (o *counter) Restore(data []byte) error {
	if len(data) < 8*(len(o.hist)+1) {
		return fmt.Errorf("bcp: short counter state")
	}
	for i := range o.hist {
		o.hist[i] = binary.BigEndian.Uint64(data[i*8:])
	}
	o.frames = binary.BigEndian.Uint64(data[len(o.hist)*8:])
	return nil
}

func (o *counter) StateSize() int { return 8*(len(o.hist)+1) + o.extra }

// Frames reports processed frames (tests).
func (o *counter) Frames() uint64 { return o.frames }

// boardModel (B) windows recent waiting counts into a boarding estimate.
type boardModel struct {
	operator.Base
	cost   time.Duration
	extra  int
	window []float64
	emit   uint64
	delta  operator.DeltaTracker
}

func newBoardModel(p Params) *boardModel {
	return &boardModel{Base: operator.Base{Name: "B"}, cost: p.ModelCost, extra: p.BoardStateBytes}
}

func (o *boardModel) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *boardModel) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	c, _ := t.Value.(float64)
	o.window = append(o.window, c)
	if len(o.window) > 16 {
		o.window = o.window[1:]
	}
	var sum float64
	for _, v := range o.window {
		sum += v
	}
	o.emit++
	out := t.Clone()
	out.Kind = "board"
	out.Size = countTupleBytes
	out.Value = sum / float64(len(o.window))
	ctx.Emit(out)
	return nil
}

func (o *boardModel) Snapshot() ([]byte, error) {
	buf := putF64(nil, float64(len(o.window)))
	for _, v := range o.window {
		buf = putF64(buf, v)
	}
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], o.emit)
	return append(buf, tmp[:]...), nil
}

func (o *boardModel) Restore(data []byte) error {
	nf, off, err := getF64(data, 0)
	if err != nil {
		return err
	}
	n := int(nf)
	o.window = o.window[:0]
	for i := 0; i < n; i++ {
		var v float64
		if v, off, err = getF64(data, off); err != nil {
			return err
		}
		o.window = append(o.window, v)
	}
	if off+8 > len(data) {
		return fmt.Errorf("bcp: short B state")
	}
	o.emit = binary.BigEndian.Uint64(data[off:])
	return nil
}

func (o *boardModel) StateSize() int { return 8*(len(o.window)+2) + o.extra }

// latestJoin (J) matches the bus path's arrival (A) and alighting (L)
// tuples by bus sequence and attaches the most recent boarding estimate
// from B — the camera path runs at frame rate, the bus path at bus rate.
type latestJoin struct {
	operator.Base
	cost        time.Duration
	eta         map[uint64]*tuple.Tuple
	alight      map[uint64]float64
	latestBoard float64
	haveBoard   bool
	// Last joined bus context: the app publishes a refreshed prediction
	// on every boarding update (frame rate), not only on bus arrivals —
	// users watch a live display (§II-B).
	lastSeq    uint64
	lastOn     float64
	lastAlight float64
	haveBus    bool
	delta      operator.DeltaTracker
}

func newLatestJoin(p Params) *latestJoin {
	return &latestJoin{
		Base: operator.Base{Name: "J"}, cost: p.ModelCost,
		eta: make(map[uint64]*tuple.Tuple), alight: make(map[uint64]float64),
	}
}

func (o *latestJoin) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *latestJoin) Process(ctx *operator.Context, from string, t *tuple.Tuple) error {
	switch from {
	case "B":
		o.latestBoard, _ = t.Value.(float64)
		o.haveBoard = true
		if !o.haveBus {
			return nil
		}
		// Frame-rate refresh: re-predict for the last known bus with
		// the new boarding estimate. The output keeps the camera
		// tuple's identity, so end-to-end latency measures the camera
		// path.
		out := t.Clone()
		out.Kind = "joined"
		out.Size = predTupleBytes
		out.Value = Prediction{BusSeq: o.lastSeq, OnBoard: o.lastOn, Board: o.latestBoard, Alight: o.lastAlight}
		ctx.Emit(out)
		return nil
	case "A":
		o.eta[t.Seq] = t
	case "L":
		o.alight[t.Seq], _ = t.Value.(float64)
	default:
		return fmt.Errorf("J: unexpected upstream %q", from)
	}
	etaT, okA := o.eta[t.Seq]
	alight, okL := o.alight[t.Seq]
	if !okA || !okL {
		return nil
	}
	delete(o.eta, t.Seq)
	delete(o.alight, t.Seq)
	info, _ := etaT.Value.(BusInfo)
	o.lastSeq, o.lastOn, o.lastAlight, o.haveBus = t.Seq, info.OnBoard, alight, true
	out := etaT.Clone()
	out.Kind = "joined"
	out.Size = predTupleBytes
	out.Value = Prediction{BusSeq: t.Seq, OnBoard: info.OnBoard, Board: o.latestBoard, Alight: alight}
	ctx.Emit(out)
	return nil
}

func (o *latestJoin) Snapshot() ([]byte, error) {
	buf := putF64(nil, o.latestBoard)
	flag := 0.0
	if o.haveBoard {
		flag = 1
	}
	if o.haveBus {
		flag += 2
	}
	buf = putF64(buf, flag)
	buf = putF64(buf, float64(o.lastSeq))
	buf = putF64(buf, o.lastOn)
	buf = putF64(buf, o.lastAlight)
	// Serialise both windows in ascending sequence order: deterministic
	// bytes keep delta patches small and chain restores byte-comparable
	// to full-blob restores.
	buf = putF64(buf, float64(len(o.eta)))
	for _, seq := range sortedKeys(o.eta) {
		buf = putF64(buf, float64(seq))
		info, _ := o.eta[seq].Value.(BusInfo)
		buf = putF64(buf, info.OnBoard)
	}
	buf = putF64(buf, float64(len(o.alight)))
	for _, seq := range sortedKeys(o.alight) {
		buf = putF64(buf, float64(seq))
		buf = putF64(buf, o.alight[seq])
	}
	return buf, nil
}

// sortedKeys returns a map's sequence keys in ascending order.
func sortedKeys[V any](m map[uint64]V) []uint64 {
	seqs := make([]uint64, 0, len(m))
	for s := range m {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

func (o *latestJoin) Restore(data []byte) error {
	o.eta = make(map[uint64]*tuple.Tuple)
	o.alight = make(map[uint64]float64)
	v, off, err := getF64(data, 0)
	if err != nil {
		return err
	}
	o.latestBoard = v
	var flag float64
	if flag, off, err = getF64(data, off); err != nil {
		return err
	}
	o.haveBoard = int(flag)&1 != 0
	o.haveBus = int(flag)&2 != 0
	var seqF float64
	if seqF, off, err = getF64(data, off); err != nil {
		return err
	}
	o.lastSeq = uint64(seqF)
	if o.lastOn, off, err = getF64(data, off); err != nil {
		return err
	}
	if o.lastAlight, off, err = getF64(data, off); err != nil {
		return err
	}
	var n float64
	if n, off, err = getF64(data, off); err != nil {
		return err
	}
	for i := 0; i < int(n); i++ {
		var seq, ob float64
		if seq, off, err = getF64(data, off); err != nil {
			return err
		}
		if ob, off, err = getF64(data, off); err != nil {
			return err
		}
		o.eta[uint64(seq)] = &tuple.Tuple{Seq: uint64(seq), Size: busTupleBytes, Value: BusInfo{OnBoard: ob}}
	}
	if n, off, err = getF64(data, off); err != nil {
		return err
	}
	for i := 0; i < int(n); i++ {
		var seq, al float64
		if seq, off, err = getF64(data, off); err != nil {
			return err
		}
		if al, off, err = getF64(data, off); err != nil {
			return err
		}
		o.alight[uint64(seq)] = al
	}
	return nil
}

func (o *latestJoin) StateSize() int { return 48 + 16*(len(o.eta)+len(o.alight)) }

// capacityModel (P) computes the final prediction: on-board plus boarding
// minus alighting, clamped at zero.
type capacityModel struct {
	operator.Base
	cost  time.Duration
	n     uint64
	delta operator.DeltaTracker
}

func newCapacityModel(p Params) *capacityModel {
	return &capacityModel{Base: operator.Base{Name: "P"}, cost: p.ModelCost}
}

func (o *capacityModel) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *capacityModel) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	pred, ok := t.Value.(Prediction)
	if !ok {
		return fmt.Errorf("P: unexpected payload %T", t.Value)
	}
	pred.OnBoard = math.Max(0, pred.OnBoard+pred.Board-pred.Alight)
	o.n++
	out := t.Clone()
	out.Kind = "prediction"
	out.Size = predTupleBytes
	out.Value = pred
	ctx.Emit(out)
	return nil
}

func (o *capacityModel) Snapshot() ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], o.n)
	return buf[:], nil
}

func (o *capacityModel) Restore(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bcp: short P state")
	}
	o.n = binary.BigEndian.Uint64(data)
	return nil
}

func (*capacityModel) StateSize() int { return 8 }

// Incremental checkpointing: every BCP operator exposes delta snapshots via
// the serialised-state diff tracker. The model operators' states are a few
// dozen bytes, so their deltas are near-free; the counter and board-model
// windows carry modelled auxiliary state (CounterStateBytes/BoardStateBytes)
// that is static between checkpoints and therefore absent from deltas —
// exactly the saving incremental checkpointing exists for.

func (o *noiseFilter) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *noiseFilter) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *arrivalModel) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *arrivalModel) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *alightModel) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *alightModel) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *motionDetect) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *motionDetect) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *counter) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *counter) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *boardModel) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *boardModel) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *latestJoin) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *latestJoin) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *capacityModel) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *capacityModel) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }
