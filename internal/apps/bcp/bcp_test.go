package bcp

import (
	"testing"
	"time"

	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
	"mobistreams/internal/vision"
)

func params() Params {
	return Params{ModelCost: time.Nanosecond, CounterCost: time.Nanosecond, MotionCost: time.Nanosecond}
}

func TestGraphShape(t *testing.T) {
	g, err := Graph()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Slots()); got != 8 {
		t.Fatalf("slots = %d, want 8", got)
	}
	if got := g.Sources(); len(got) != 2 || got[0] != "S0" || got[1] != "S1" {
		t.Fatalf("sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != "K" {
		t.Fatalf("sinks = %v", got)
	}
	// The dispatcher feeds all four counters.
	if got := g.Downstream("D"); len(got) != 4 {
		t.Fatalf("D downstream = %v", got)
	}
}

func TestRegistryBuildsEveryOperator(t *testing.T) {
	g, _ := Graph()
	reg := Registry(params())
	for _, id := range g.Operators() {
		op := reg.New(id)
		if op.ID() != id {
			t.Fatalf("factory for %s built %s", id, op.ID())
		}
	}
}

func TestNoiseFilterDropsCorrupt(t *testing.T) {
	n := newNoiseFilter(params())
	outs, err := operator.Run(n, "S0", &tuple.Tuple{Value: BusInfo{OnBoard: 20, Corrupt: true}})
	if err != nil || len(outs) != 0 {
		t.Fatalf("corrupt passed: %v %v", outs, err)
	}
	outs, err = operator.Run(n, "S0", &tuple.Tuple{Value: BusInfo{OnBoard: -3}})
	if err != nil || len(outs) != 0 {
		t.Fatalf("negative passed: %v %v", outs, err)
	}
	outs, err = operator.Run(n, "S0", &tuple.Tuple{Value: BusInfo{OnBoard: 20}})
	if err != nil || len(outs) != 1 {
		t.Fatal("clean reading dropped")
	}
	if got := outs[0].T.Value.(BusInfo).OnBoard; got != 20 {
		t.Fatalf("first ewma = %v, want 20", got)
	}
}

func TestCounterUsesGroundTruthOrVision(t *testing.T) {
	c := newCounter("C0", params())
	outs, err := operator.Run(c, "D", &tuple.Tuple{Value: Frame{Planted: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].T.Value.(float64); got != 3 {
		t.Fatalf("ground-truth count = %v, want 3", got)
	}
	p := params()
	p.RealCompute = true
	cr := newCounter("C0", p)
	im, _ := vision.GenerateFaces(vision.Scene{W: 160, H: 120, Noise: 25, Seed: 5}, 2)
	outs, err = operator.Run(cr, "D", &tuple.Tuple{Value: Frame{Planted: 2, Image: im}})
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].T.Value.(float64); got != 2 {
		t.Fatalf("vision count = %v, want 2", got)
	}
}

func TestCounterSnapshotRoundTrip(t *testing.T) {
	c := newCounter("C1", params())
	for i := 0; i < 5; i++ {
		operator.Run(c, "D", &tuple.Tuple{Value: Frame{Planted: i}})
	}
	state, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	c2 := newCounter("C1", params())
	if err := c2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if c2.Frames() != 5 {
		t.Fatalf("restored frames = %d", c2.Frames())
	}
	if err := c2.Restore([]byte{1}); err == nil {
		t.Fatal("short state accepted")
	}
}

func TestLatestJoinCombinesPaths(t *testing.T) {
	j := newLatestJoin(params())
	// Boarding estimate arrives first (camera path is faster).
	if _, err := operator.Run(j, "B", &tuple.Tuple{Seq: 99, Value: 4.0}); err != nil {
		t.Fatal(err)
	}
	outs, err := operator.Run(j, "A", &tuple.Tuple{Seq: 1, Value: BusInfo{OnBoard: 12}})
	if err != nil || len(outs) != 0 {
		t.Fatalf("half-joined emitted: %v %v", outs, err)
	}
	outs, err = operator.Run(j, "L", &tuple.Tuple{Seq: 1, Value: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatal("join did not emit")
	}
	pred := outs[0].T.Value.(Prediction)
	if pred.OnBoard != 12 || pred.Board != 4 || pred.Alight != 3 {
		t.Fatalf("prediction = %+v", pred)
	}
	if _, err := operator.Run(j, "X", &tuple.Tuple{}); err == nil {
		t.Fatal("unknown upstream accepted")
	}
}

func TestLatestJoinSnapshotRoundTrip(t *testing.T) {
	j := newLatestJoin(params())
	operator.Run(j, "B", &tuple.Tuple{Seq: 9, Value: 5.0})
	operator.Run(j, "A", &tuple.Tuple{Seq: 2, Value: BusInfo{OnBoard: 7}})
	operator.Run(j, "L", &tuple.Tuple{Seq: 3, Value: 2.0})
	state, err := j.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	j2 := newLatestJoin(params())
	if err := j2.Restore(state); err != nil {
		t.Fatal(err)
	}
	// Completing seq 2 against restored state must fire with the
	// restored boarding estimate.
	outs, err := operator.Run(j2, "L", &tuple.Tuple{Seq: 2, Value: 1.0})
	if err != nil || len(outs) != 1 {
		t.Fatalf("restored join: %v %v", outs, err)
	}
	pred := outs[0].T.Value.(Prediction)
	if pred.OnBoard != 7 || pred.Board != 5 {
		t.Fatalf("restored prediction = %+v", pred)
	}
}

func TestCapacityModelClamps(t *testing.T) {
	p := newCapacityModel(params())
	outs, err := operator.Run(p, "J", &tuple.Tuple{Value: Prediction{OnBoard: 2, Board: 1, Alight: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].T.Value.(Prediction).OnBoard; got != 0 {
		t.Fatalf("clamped capacity = %v, want 0", got)
	}
	outs, _ = operator.Run(p, "J", &tuple.Tuple{Value: Prediction{OnBoard: 10, Board: 5, Alight: 3}})
	if got := outs[0].T.Value.(Prediction).OnBoard; got != 12 {
		t.Fatalf("capacity = %v, want 12", got)
	}
}

func TestMotionDetectDropsEmptyFrames(t *testing.T) {
	h := newMotionDetect(params())
	outs, err := operator.Run(h, "S1", &tuple.Tuple{Value: Frame{Planted: 0}})
	if err != nil || len(outs) != 0 {
		t.Fatal("empty frame passed")
	}
	outs, err = operator.Run(h, "S1", &tuple.Tuple{Value: Frame{Planted: 2}})
	if err != nil || len(outs) != 1 {
		t.Fatal("occupied frame dropped")
	}
}

func TestAllStatefulOperatorsRoundTrip(t *testing.T) {
	g, _ := Graph()
	reg := Registry(params())
	in := &tuple.Tuple{Seq: 1, Created: 5 * time.Second, Value: BusInfo{OnBoard: 10}}
	frame := &tuple.Tuple{Seq: 1, Created: 5 * time.Second, Value: Frame{Planted: 2}}
	for _, id := range g.Operators() {
		op := reg.New(id)
		// Push a plausible tuple through where the payload type allows.
		switch id {
		case "S0", "N":
			operator.Run(op, "", in)
		case "A", "L":
			operator.Run(op, "N", in)
		case "S1", "H":
			operator.Run(op, "", frame)
		case "C0", "C1", "C2", "C3":
			operator.Run(op, "D", frame)
		}
		state, err := op.Snapshot()
		if err != nil {
			t.Fatalf("%s snapshot: %v", id, err)
		}
		fresh := reg.New(id)
		if err := fresh.Restore(state); err != nil {
			t.Fatalf("%s restore: %v", id, err)
		}
	}
}

var _ operator.Operator = (*counter)(nil)
