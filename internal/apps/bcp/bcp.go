// Package bcp builds the Bus Capacity Prediction application (§II-B,
// Fig. 2): at each bus stop, camera frames are filtered for motion,
// dispatched across four parallel face counters, aggregated into a boarding
// model, and joined with the bus-info path (noise filter, arrival-time and
// alighting models) to predict on-bus passenger counts, which cascade to
// the next stop.
package bcp

import (
	"time"

	"mobistreams/internal/graph"
	"mobistreams/internal/operator"
	"mobistreams/internal/vision"
)

// Params calibrates the application. Zero values get the paper-derived
// defaults (§IV: 180 KB camera tuples, ~7 s counting on a 600 MHz A8).
type Params struct {
	// ImageBytes is the on-the-wire camera tuple size (default 180 KB,
	// derived from Table I's uplink arithmetic).
	ImageBytes int
	// CounterCost is the face-count service time per frame (default 7 s).
	CounterCost time.Duration
	// MotionCost is the passerby-filter service time (default 1 s).
	MotionCost time.Duration
	// ModelCost is the service time of the small model operators.
	ModelCost time.Duration
	// CounterStateBytes models each counter's statistical model size
	// (default 1.5 MB); BoardStateBytes the boarding model's (default
	// 2 MB). These dominate checkpoint sizes.
	CounterStateBytes int
	BoardStateBytes   int
	// RealCompute runs the actual Haar cascade on frame payloads;
	// benchmarks disable it and use the frame's planted ground truth so
	// scaled-clock timing is not distorted by wall-clock compute.
	RealCompute bool
}

func (p *Params) applyDefaults() {
	if p.ImageBytes <= 0 {
		p.ImageBytes = 180 << 10
	}
	if p.CounterCost <= 0 {
		p.CounterCost = 7 * time.Second
	}
	if p.MotionCost <= 0 {
		p.MotionCost = time.Second
	}
	if p.ModelCost <= 0 {
		p.ModelCost = 100 * time.Millisecond
	}
	if p.CounterStateBytes <= 0 {
		p.CounterStateBytes = 1 << 20
	}
	if p.BoardStateBytes <= 0 {
		p.BoardStateBytes = 1280 << 10
	}
}

// Frame is a camera tuple payload: the synthetic image (when computing for
// real) plus planted ground truth.
type Frame struct {
	Image   *vision.Image
	Planted int
}

// BusInfo is the bus-path tuple payload: the predicted on-board count when
// the bus left the previous stop.
type BusInfo struct {
	OnBoard float64
	// Corrupt marks sensor noise the N operator must drop.
	Corrupt bool
}

// Prediction is the sink output: predicted on-board count at this stop.
type Prediction struct {
	BusSeq  uint64
	OnBoard float64
	Board   float64
	Alight  float64
}

// Graph returns Fig. 2's query network on 8 slots: n1 hosts the bus path
// (S0, N, A, L), n2 the camera source, n3 motion detection and dispatch,
// n4-n7 the four counters, n8 the boarding model, join, capacity model and
// sink.
func Graph() (*graph.Graph, error) {
	var b graph.Builder
	b.AddOperator("S0", "n1").AddOperator("N", "n1").
		AddOperator("A", "n1").AddOperator("L", "n1")
	b.AddOperator("S1", "n2")
	b.AddOperator("H", "n3").AddOperator("D", "n3")
	b.AddOperator("C0", "n4").AddOperator("C1", "n5").
		AddOperator("C2", "n6").AddOperator("C3", "n7")
	b.AddOperator("B", "n8").AddOperator("J", "n8").
		AddOperator("P", "n8").AddOperator("K", "n8")
	b.Chain("S0", "N")
	b.Connect("N", "A").Connect("N", "L")
	b.Chain("S1", "H", "D")
	for _, c := range []string{"C0", "C1", "C2", "C3"} {
		b.Connect("D", c).Connect(c, "B")
	}
	b.Connect("A", "J").Connect("L", "J").Connect("B", "J")
	b.Chain("J", "P", "K")
	return b.Build()
}

// Registry builds the application operators.
func Registry(p Params) operator.Registry {
	p.applyDefaults()
	return operator.Registry{
		"S0": func() operator.Operator { return operator.NewPassthrough("S0") },
		"S1": func() operator.Operator { return operator.NewPassthrough("S1") },
		"N":  func() operator.Operator { return newNoiseFilter(p) },
		"A":  func() operator.Operator { return newArrivalModel(p) },
		"L":  func() operator.Operator { return newAlightModel(p) },
		"H":  func() operator.Operator { return newMotionDetect(p) },
		"D":  func() operator.Operator { return operator.NewRoundRobin("D", "C0", "C1", "C2", "C3") },
		"C0": func() operator.Operator { return newCounter("C0", p) },
		"C1": func() operator.Operator { return newCounter("C1", p) },
		"C2": func() operator.Operator { return newCounter("C2", p) },
		"C3": func() operator.Operator { return newCounter("C3", p) },
		"B":  func() operator.Operator { return newBoardModel(p) },
		"J":  func() operator.Operator { return newLatestJoin(p) },
		"P":  func() operator.Operator { return newCapacityModel(p) },
		"K":  func() operator.Operator { return operator.NewPassthrough("K") },
	}
}
