// Package signalguru builds the SignalGuru application (§II-B, Fig. 3): at
// each intersection, windshield camera frames pass colour, shape and motion
// filters in three parallel columns, a voting operator fuses the surviving
// detections, a grouping operator segments phases, and an SVM-backed
// predictor estimates the signal transition time, which cascades to the
// next intersection.
package signalguru

import (
	"time"

	"mobistreams/internal/graph"
	"mobistreams/internal/operator"
	"mobistreams/internal/vision"
)

// Params calibrates the application. Zero values give the paper-derived
// defaults (110 KB camera tuples; a colour+shape+motion column of ~3.4 s on
// the 600 MHz A8).
type Params struct {
	// ImageBytes is the camera tuple wire size (default 110 KB).
	ImageBytes int
	// ColorCost, ShapeCost, MotionCost are per-frame service times
	// (defaults 1.6 s, 1.0 s, 0.8 s).
	ColorCost  time.Duration
	ShapeCost  time.Duration
	MotionCost time.Duration
	// ModelCost is the service time of V, G and P.
	ModelCost time.Duration
	// PredictStateBytes models P's SVM model plus phase history
	// (default 2 MB); GroupStateBytes models G's segment buffers
	// (default 1 MB); ColumnStateBytes models each motion filter's
	// frame-history buffers (default 320 KB).
	PredictStateBytes int
	GroupStateBytes   int
	ColumnStateBytes  int
	// RealCompute runs the actual filters on frame payloads.
	RealCompute bool
}

func (p *Params) applyDefaults() {
	if p.ImageBytes <= 0 {
		p.ImageBytes = 110 << 10
	}
	if p.ColorCost <= 0 {
		p.ColorCost = 1600 * time.Millisecond
	}
	if p.ShapeCost <= 0 {
		p.ShapeCost = time.Second
	}
	if p.MotionCost <= 0 {
		p.MotionCost = 800 * time.Millisecond
	}
	if p.ModelCost <= 0 {
		p.ModelCost = 100 * time.Millisecond
	}
	if p.PredictStateBytes <= 0 {
		p.PredictStateBytes = 1536 << 10
	}
	if p.GroupStateBytes <= 0 {
		p.GroupStateBytes = 768 << 10
	}
	if p.ColumnStateBytes <= 0 {
		p.ColumnStateBytes = 256 << 10
	}
}

// Frame is a camera tuple payload.
type Frame struct {
	Image *vision.Image
	// Truth is the planted light colour (ground truth for non-compute
	// runs and accuracy checks).
	Truth vision.LightColor
}

// Observation is a filtered detection flowing from the columns to V.
type Observation struct {
	Color vision.LightColor
	Valid bool
}

// PhaseChange is G's output on a transition: a completed phase.
type PhaseChange struct {
	Color    vision.LightColor
	Duration float64 // seconds
}

// PhaseProgress is G's frame-rate output inside a phase.
type PhaseProgress struct {
	Color   vision.LightColor
	Elapsed float64 // seconds into the phase
}

// Advisory is the sink output: the predicted transition.
type Advisory struct {
	Color     vision.LightColor
	NextInSec float64
}

// Graph returns Fig. 3's query network on 8 slots: n1/n2 host the sources,
// n3-n5 the three filter columns (C, A, M co-located per column), n6 the
// voting operator, n7 grouping and prediction, n8 the sink.
func Graph() (*graph.Graph, error) {
	var b graph.Builder
	b.AddOperator("S0", "n1").AddOperator("S1", "n2")
	b.AddOperator("C0", "n3").AddOperator("A0", "n3").AddOperator("M0", "n3")
	b.AddOperator("C1", "n4").AddOperator("A1", "n4").AddOperator("M1", "n4")
	b.AddOperator("C2", "n5").AddOperator("A2", "n5").AddOperator("M2", "n5")
	b.AddOperator("V", "n6")
	b.AddOperator("G", "n7").AddOperator("P", "n7")
	b.AddOperator("K", "n8")
	for i := 0; i < 3; i++ {
		c, a, m := col("C", i), col("A", i), col("M", i)
		b.Connect("S1", c)
		b.Chain(c, a, m)
		b.Connect(m, "V")
	}
	b.Chain("V", "G", "P")
	b.Connect("S0", "P")
	b.Connect("P", "K")
	return b.Build()
}

func col(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// Registry builds the application operators. S1 is a dispatching source:
// each frame goes to one column, mirroring each phone snapping its own
// pictures.
func Registry(p Params) operator.Registry {
	p.applyDefaults()
	return operator.Registry{
		"S0": func() operator.Operator { return operator.NewPassthrough("S0") },
		"S1": func() operator.Operator { return operator.NewRoundRobin("S1", "C0", "C1", "C2") },
		"C0": func() operator.Operator { return newColorFilter("C0", p) },
		"C1": func() operator.Operator { return newColorFilter("C1", p) },
		"C2": func() operator.Operator { return newColorFilter("C2", p) },
		"A0": func() operator.Operator { return newShapeFilter("A0", p) },
		"A1": func() operator.Operator { return newShapeFilter("A1", p) },
		"A2": func() operator.Operator { return newShapeFilter("A2", p) },
		"M0": func() operator.Operator { return newMotionFilter("M0", p) },
		"M1": func() operator.Operator { return newMotionFilter("M1", p) },
		"M2": func() operator.Operator { return newMotionFilter("M2", p) },
		"V":  func() operator.Operator { return newVoter(p) },
		"G":  func() operator.Operator { return newGrouper(p) },
		"P":  func() operator.Operator { return newPredictor(p) },
		"K":  func() operator.Operator { return operator.NewPassthrough("K") },
	}
}
