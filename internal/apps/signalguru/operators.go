package signalguru

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"mobistreams/internal/operator"
	"mobistreams/internal/svm"
	"mobistreams/internal/tuple"
	"mobistreams/internal/vision"
)

const (
	obsTupleBytes = 2048
	ctlTupleBytes = 256
	advTupleBytes = 512
)

// blobsValue is the intermediate payload between filter stages.
type blobsValue struct {
	frame Frame
	blobs []vision.Blob
}

// colorFilter (C0..C2) extracts signal-palette blobs.
type colorFilter struct {
	operator.Base
	cost  time.Duration
	real  bool
	n     uint64
	delta operator.DeltaTracker
}

func newColorFilter(id string, p Params) *colorFilter {
	return &colorFilter{Base: operator.Base{Name: id}, cost: p.ColorCost, real: p.RealCompute}
}

func (o *colorFilter) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *colorFilter) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	f, ok := t.Value.(Frame)
	if !ok {
		return fmt.Errorf("%s: unexpected payload %T", o.Name, t.Value)
	}
	o.n++
	var blobs []vision.Blob
	if o.real && f.Image != nil {
		blobs = vision.ColorFilter(f.Image)
	} else {
		// Ground-truth mode: one perfect blob of the planted colour.
		blobs = []vision.Blob{truthBlob(f.Truth)}
	}
	out := t.Clone()
	out.Kind = "blobs"
	out.Size = obsTupleBytes
	out.Value = blobsValue{frame: f, blobs: blobs}
	ctx.Emit(out)
	return nil
}

func truthBlob(c vision.LightColor) vision.Blob {
	// A canonical 5x5 disc-ish blob at a fixed location.
	return vision.Blob{Color: c, MinX: 60, MinY: 30, MaxX: 64, MaxY: 34, Count: 20, SumX: 62 * 20, SumY: 32 * 20}
}

func (o *colorFilter) Snapshot() ([]byte, error) { return u64(o.n), nil }
func (o *colorFilter) Restore(d []byte) error    { return getU64(d, &o.n, o.Name) }
func (*colorFilter) StateSize() int              { return 8 }

// shapeFilter (A0..A2) keeps circular blobs.
type shapeFilter struct {
	operator.Base
	cost  time.Duration
	real  bool
	n     uint64
	delta operator.DeltaTracker
}

func newShapeFilter(id string, p Params) *shapeFilter {
	return &shapeFilter{Base: operator.Base{Name: id}, cost: p.ShapeCost, real: p.RealCompute}
}

func (o *shapeFilter) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *shapeFilter) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	bv, ok := t.Value.(blobsValue)
	if !ok {
		return fmt.Errorf("%s: unexpected payload %T", o.Name, t.Value)
	}
	o.n++
	if o.real {
		bv.blobs = vision.ShapeFilter(bv.blobs)
	}
	out := t.Clone()
	out.Size = obsTupleBytes
	out.Value = bv
	ctx.Emit(out)
	return nil
}

func (o *shapeFilter) Snapshot() ([]byte, error) { return u64(o.n), nil }
func (o *shapeFilter) Restore(d []byte) error    { return getU64(d, &o.n, o.Name) }
func (*shapeFilter) StateSize() int              { return 8 }

// motionFilter (M0..M2) keeps blobs static across the column's consecutive
// frames; its previous-frame blobs are checkpointed state.
type motionFilter struct {
	operator.Base
	cost  time.Duration
	real  bool
	extra int
	prev  []vision.Blob
	n     uint64
	delta operator.DeltaTracker
}

func newMotionFilter(id string, p Params) *motionFilter {
	return &motionFilter{Base: operator.Base{Name: id}, cost: p.MotionCost, real: p.RealCompute, extra: p.ColumnStateBytes}
}

func (o *motionFilter) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *motionFilter) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	bv, ok := t.Value.(blobsValue)
	if !ok {
		return fmt.Errorf("%s: unexpected payload %T", o.Name, t.Value)
	}
	o.n++
	kept := bv.blobs
	if o.real {
		if o.prev != nil {
			kept = vision.MotionFilter(o.prev, bv.blobs, 4)
		}
		o.prev = bv.blobs
	}
	color, valid := vision.Vote(kept)
	out := t.Clone()
	out.Kind = "observation"
	out.Size = ctlTupleBytes
	out.Value = Observation{Color: color, Valid: valid}
	ctx.Emit(out)
	return nil
}

func (o *motionFilter) Snapshot() ([]byte, error) {
	buf := u64(o.n)
	buf = append(buf, byte(len(o.prev)))
	for _, b := range o.prev {
		buf = append(buf, byte(b.Color))
		buf = appendU32(buf, uint32(b.CenterX()))
		buf = appendU32(buf, uint32(b.CenterY()))
	}
	return buf, nil
}

func (o *motionFilter) Restore(data []byte) error {
	if len(data) < 9 {
		return fmt.Errorf("%s: short state", o.Name)
	}
	o.n = binary.BigEndian.Uint64(data)
	cnt := int(data[8])
	off := 9
	o.prev = nil
	for i := 0; i < cnt; i++ {
		if off+9 > len(data) {
			return fmt.Errorf("%s: short blob state", o.Name)
		}
		c := vision.LightColor(data[off])
		x := int(binary.BigEndian.Uint32(data[off+1:]))
		y := int(binary.BigEndian.Uint32(data[off+5:]))
		o.prev = append(o.prev, vision.Blob{Color: c, MinX: x, MaxX: x, MinY: y, MaxY: y, Count: 1, SumX: x, SumY: y})
		off += 9
	}
	return nil
}

func (o *motionFilter) StateSize() int { return 9 + 9*len(o.prev) + o.extra }

// voter (V) fuses the three columns' observations with a short voting
// window.
type voter struct {
	operator.Base
	cost   time.Duration
	window []Observation
	n      uint64
	delta  operator.DeltaTracker
}

func newVoter(p Params) *voter {
	return &voter{Base: operator.Base{Name: "V"}, cost: p.ModelCost}
}

func (o *voter) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *voter) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	obs, ok := t.Value.(Observation)
	if !ok {
		return fmt.Errorf("V: unexpected payload %T", t.Value)
	}
	o.n++
	if obs.Valid {
		o.window = append(o.window, obs)
		if len(o.window) > 9 {
			o.window = o.window[1:]
		}
	}
	if len(o.window) == 0 {
		return nil
	}
	var counts [3]int
	for _, w := range o.window {
		counts[w.Color]++
	}
	best := vision.Red
	for _, c := range []vision.LightColor{Red, Yellow, Green} {
		if counts[c] > counts[best] {
			best = c
		}
	}
	out := t.Clone()
	out.Kind = "vote"
	out.Size = ctlTupleBytes
	out.Value = Observation{Color: best, Valid: true}
	ctx.Emit(out)
	return nil
}

// Aliases keep the vote loop readable.
const (
	Red    = vision.Red
	Yellow = vision.Yellow
	Green  = vision.Green
)

func (o *voter) Snapshot() ([]byte, error) {
	buf := u64(o.n)
	buf = append(buf, byte(len(o.window)))
	for _, w := range o.window {
		buf = append(buf, byte(w.Color))
	}
	return buf, nil
}

func (o *voter) Restore(data []byte) error {
	if len(data) < 9 {
		return fmt.Errorf("V: short state")
	}
	o.n = binary.BigEndian.Uint64(data)
	cnt := int(data[8])
	if len(data) < 9+cnt {
		return fmt.Errorf("V: short window state")
	}
	o.window = nil
	for i := 0; i < cnt; i++ {
		o.window = append(o.window, Observation{Color: vision.LightColor(data[9+i]), Valid: true})
	}
	return nil
}

func (o *voter) StateSize() int { return 9 + len(o.window) }

// grouper (G) segments the vote stream into phases and emits a PhaseChange
// when the colour flips.
type grouper struct {
	operator.Base
	cost    time.Duration
	extra   int
	current vision.LightColor
	started float64
	have    bool
	delta   operator.DeltaTracker
}

func newGrouper(p Params) *grouper {
	return &grouper{Base: operator.Base{Name: "G"}, cost: p.ModelCost, extra: p.GroupStateBytes}
}

func (o *grouper) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *grouper) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	obs, ok := t.Value.(Observation)
	if !ok {
		return fmt.Errorf("G: unexpected payload %T", t.Value)
	}
	now := t.Created.Seconds()
	if !o.have {
		o.current, o.started, o.have = obs.Color, now, true
		return nil
	}
	if obs.Color == o.current {
		// Frame-rate progress: drivers watch a live countdown, so every
		// vote refreshes the advisory downstream (§II-B).
		out := t.Clone()
		out.Kind = "progress"
		out.Size = ctlTupleBytes
		out.Value = PhaseProgress{Color: o.current, Elapsed: now - o.started}
		ctx.Emit(out)
		return nil
	}
	change := PhaseChange{Color: o.current, Duration: now - o.started}
	o.current, o.started = obs.Color, now
	out := t.Clone()
	out.Kind = "phase"
	out.Size = ctlTupleBytes
	out.Value = change
	ctx.Emit(out)
	return nil
}

func (o *grouper) Snapshot() ([]byte, error) {
	buf := make([]byte, 0, 18)
	buf = append(buf, byte(o.current))
	if o.have {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(o.started))
	return append(buf, tmp[:]...), nil
}

func (o *grouper) Restore(data []byte) error {
	if len(data) < 10 {
		return fmt.Errorf("G: short state")
	}
	o.current = vision.LightColor(data[0])
	o.have = data[1] == 1
	o.started = math.Float64frombits(binary.BigEndian.Uint64(data[2:]))
	return nil
}

func (o *grouper) StateSize() int { return 10 + o.extra }

// predictor (P) learns phase durations (svm.PhaseEstimator) plus a linear
// SVM over (colour, elapsed) features, blends in the upstream
// intersection's advisory (S0), and emits transition-time advisories.
type predictor struct {
	operator.Base
	cost     time.Duration
	extra    int
	est      svm.PhaseEstimator
	upstream float64
	haveUp   bool
	emitted  uint64
	delta    operator.DeltaTracker
}

func newPredictor(p Params) *predictor {
	return &predictor{Base: operator.Base{Name: "P"}, cost: p.ModelCost, extra: p.PredictStateBytes}
}

func (o *predictor) Cost(*tuple.Tuple) time.Duration { return o.cost }

func (o *predictor) Process(ctx *operator.Context, from string, t *tuple.Tuple) error {
	if from == "S0" {
		if adv, ok := t.Value.(Advisory); ok {
			o.upstream = adv.NextInSec
			o.haveUp = true
		}
		return nil
	}
	switch v := t.Value.(type) {
	case PhaseProgress:
		// Live countdown: remaining time in the current phase.
		o.emitted++
		rem := o.est.TimeToChange(int(v.Color), v.Elapsed, 30)
		out := t.Clone()
		out.Kind = "advisory"
		out.Size = advTupleBytes
		out.Value = Advisory{Color: v.Color, NextInSec: rem}
		ctx.Emit(out)
		return nil
	case PhaseChange:
		o.est.Observe(int(v.Color), v.Duration)
		o.emitted++
		next := o.est.MeanDuration(int(nextColor(v.Color)), 30)
		if o.haveUp {
			// Blend the upstream intersection's advisory: lights along
			// a corridor are coordinated (§II-B).
			next = 0.7*next + 0.3*o.upstream
		}
		out := t.Clone()
		out.Kind = "advisory"
		out.Size = advTupleBytes
		out.Value = Advisory{Color: nextColor(v.Color), NextInSec: next}
		ctx.Emit(out)
		return nil
	default:
		return fmt.Errorf("P: unexpected payload %T", t.Value)
	}
}

func nextColor(c vision.LightColor) vision.LightColor {
	switch c {
	case Red:
		return Green
	case Green:
		return Yellow
	default:
		return Red
	}
}

func (o *predictor) Snapshot() ([]byte, error) {
	buf := u64(o.emitted)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(o.upstream))
	buf = append(buf, tmp[:]...)
	if o.haveUp {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for c := 0; c < 3; c++ {
		binary.BigEndian.PutUint64(tmp[:], math.Float64bits(o.est.MeanDuration(c, -1)))
		buf = append(buf, tmp[:]...)
	}
	return buf, nil
}

func (o *predictor) Restore(data []byte) error {
	if len(data) < 17+24 {
		return fmt.Errorf("P: short state")
	}
	o.emitted = binary.BigEndian.Uint64(data)
	o.upstream = math.Float64frombits(binary.BigEndian.Uint64(data[8:]))
	o.haveUp = data[16] == 1
	o.est = svm.PhaseEstimator{}
	off := 17
	for c := 0; c < 3; c++ {
		mean := math.Float64frombits(binary.BigEndian.Uint64(data[off:]))
		if mean >= 0 {
			o.est.Observe(c, mean)
		}
		off += 8
	}
	return nil
}

func (o *predictor) StateSize() int { return 41 + o.extra }

func u64(v uint64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	return tmp[:]
}

func getU64(d []byte, v *uint64, name string) error {
	if len(d) < 8 {
		return fmt.Errorf("%s: short state", name)
	}
	*v = binary.BigEndian.Uint64(d)
	return nil
}

func appendU32(buf []byte, v uint32) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	return append(buf, tmp[:]...)
}

// Incremental checkpointing: every SignalGuru operator exposes delta
// snapshots via the serialised-state diff tracker. The filter columns'
// states are a handful of counters and blob centroids; the motion filter
// and grouper carry modelled column/group state (ColumnStateBytes,
// GroupStateBytes) that is static between checkpoints and therefore absent
// from deltas.

func (o *colorFilter) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *colorFilter) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *shapeFilter) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *shapeFilter) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *motionFilter) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *motionFilter) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *voter) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *voter) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *grouper) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *grouper) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }

func (o *predictor) SnapshotDelta(since uint64) ([]byte, bool) {
	return o.delta.Delta(since, o.Snapshot)
}
func (o *predictor) MarkSnapshot(v uint64) { o.delta.Mark(v, o.Snapshot) }
