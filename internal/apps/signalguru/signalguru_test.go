package signalguru

import (
	"testing"
	"time"

	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
	"mobistreams/internal/vision"
)

func params() Params {
	return Params{ModelCost: time.Nanosecond, ColorCost: time.Nanosecond,
		ShapeCost: time.Nanosecond, MotionCost: time.Nanosecond}
}

func TestGraphShape(t *testing.T) {
	g, err := Graph()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Slots()); got != 8 {
		t.Fatalf("slots = %d, want 8", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != "K" {
		t.Fatalf("sinks = %v", got)
	}
	// Three parallel filter columns.
	if got := g.Downstream("S1"); len(got) != 3 {
		t.Fatalf("S1 downstream = %v", got)
	}
	if got := g.Upstream("V"); len(got) != 3 {
		t.Fatalf("V upstream = %v", got)
	}
	// P merges the vote path with the previous intersection.
	ups := g.Upstream("P")
	if len(ups) != 2 {
		t.Fatalf("P upstream = %v", ups)
	}
}

func TestRegistryBuildsEveryOperator(t *testing.T) {
	g, _ := Graph()
	reg := Registry(params())
	for _, id := range g.Operators() {
		if op := reg.New(id); op.ID() != id {
			t.Fatalf("factory for %s built %s", id, op.ID())
		}
	}
}

func TestColumnGroundTruthFlow(t *testing.T) {
	p := params()
	c := newColorFilter("C0", p)
	a := newShapeFilter("A0", p)
	m := newMotionFilter("M0", p)
	in := &tuple.Tuple{Seq: 1, Value: Frame{Truth: vision.Green}}
	outs, err := operator.Run(c, "S1", in)
	if err != nil || len(outs) != 1 {
		t.Fatalf("color: %v %v", outs, err)
	}
	outs, err = operator.Run(a, "C0", outs[0].T)
	if err != nil || len(outs) != 1 {
		t.Fatalf("shape: %v %v", outs, err)
	}
	outs, err = operator.Run(m, "A0", outs[0].T)
	if err != nil || len(outs) != 1 {
		t.Fatalf("motion: %v %v", outs, err)
	}
	obs := outs[0].T.Value.(Observation)
	if !obs.Valid || obs.Color != vision.Green {
		t.Fatalf("observation = %+v", obs)
	}
}

func TestColumnRealCompute(t *testing.T) {
	p := params()
	p.RealCompute = true
	c := newColorFilter("C0", p)
	a := newShapeFilter("A0", p)
	m := newMotionFilter("M0", p)
	for i := 0; i < 2; i++ { // two frames so the motion filter has a prev
		im, _ := vision.GenerateIntersection(vision.Scene{W: 120, H: 90, Noise: 15, Seed: 4}, vision.Red, 2)
		in := &tuple.Tuple{Seq: uint64(i), Value: Frame{Truth: vision.Red, Image: im}}
		outs, err := operator.Run(c, "S1", in)
		if err != nil {
			t.Fatal(err)
		}
		outs, err = operator.Run(a, "C0", outs[0].T)
		if err != nil {
			t.Fatal(err)
		}
		outs, err = operator.Run(m, "A0", outs[0].T)
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			obs := outs[0].T.Value.(Observation)
			if !obs.Valid || obs.Color != vision.Red {
				t.Fatalf("real-compute observation = %+v", obs)
			}
		}
	}
}

func TestVoterMajority(t *testing.T) {
	v := newVoter(params())
	for i := 0; i < 3; i++ {
		operator.Run(v, "M0", &tuple.Tuple{Value: Observation{Color: vision.Green, Valid: true}})
	}
	outs, err := operator.Run(v, "M1", &tuple.Tuple{Value: Observation{Color: vision.Red, Valid: true}})
	if err != nil || len(outs) != 1 {
		t.Fatal("voter did not emit")
	}
	if got := outs[0].T.Value.(Observation).Color; got != vision.Green {
		t.Fatalf("vote = %v, want green", got)
	}
	// Invalid observations don't pollute the window.
	empty := newVoter(params())
	outs, _ = operator.Run(empty, "M0", &tuple.Tuple{Value: Observation{Valid: false}})
	if len(outs) != 0 {
		t.Fatal("invalid observation produced a vote")
	}
}

func TestGrouperEmitsTransitions(t *testing.T) {
	g := newGrouper(params())
	mk := func(c vision.LightColor, at time.Duration) *tuple.Tuple {
		return &tuple.Tuple{Created: at, Value: Observation{Color: c, Valid: true}}
	}
	if outs, _ := operator.Run(g, "V", mk(vision.Red, 0)); len(outs) != 0 {
		t.Fatal("first observation emitted a phase")
	}
	outs, _ := operator.Run(g, "V", mk(vision.Red, 10*time.Second))
	if len(outs) != 1 {
		t.Fatal("same colour should emit frame-rate progress")
	}
	prog := outs[0].T.Value.(PhaseProgress)
	if prog.Color != vision.Red || prog.Elapsed != 10 {
		t.Fatalf("progress = %+v", prog)
	}
	outs, _ = operator.Run(g, "V", mk(vision.Green, 30*time.Second))
	if len(outs) != 1 {
		t.Fatal("transition not emitted")
	}
	change := outs[0].T.Value.(PhaseChange)
	if change.Color != vision.Red || change.Duration != 30 {
		t.Fatalf("phase = %+v", change)
	}
}

func TestPredictorLearnsAndBlends(t *testing.T) {
	p := newPredictor(params())
	// Upstream advisory arrives.
	operator.Run(p, "S0", &tuple.Tuple{Value: Advisory{Color: vision.Green, NextInSec: 10}})
	// Observe several red phases of 40 s; prediction for next green uses
	// green history (none) blended with upstream.
	for i := 0; i < 3; i++ {
		outs, err := operator.Run(p, "G", &tuple.Tuple{Value: PhaseChange{Color: vision.Red, Duration: 40}})
		if err != nil || len(outs) != 1 {
			t.Fatalf("predictor emit: %v %v", outs, err)
		}
		adv := outs[0].T.Value.(Advisory)
		if adv.Color != vision.Green {
			t.Fatalf("advisory colour = %v", adv.Color)
		}
		// Blend of fallback 30 and upstream 10: 0.7*30+0.3*10 = 24.
		if adv.NextInSec != 24 {
			t.Fatalf("advisory = %v, want 24", adv.NextInSec)
		}
	}
	// Now observe green phases; prediction shifts toward their mean.
	operator.Run(p, "G", &tuple.Tuple{Value: PhaseChange{Color: vision.Green, Duration: 50}})
	outs, _ := operator.Run(p, "G", &tuple.Tuple{Value: PhaseChange{Color: vision.Red, Duration: 40}})
	adv := outs[0].T.Value.(Advisory)
	if adv.NextInSec != 0.7*50+0.3*10 {
		t.Fatalf("learned advisory = %v, want 38", adv.NextInSec)
	}
}

func TestStatefulOperatorsRoundTrip(t *testing.T) {
	p := params()
	m := newMotionFilter("M0", p)
	pr := params()
	pr.RealCompute = true
	mReal := newMotionFilter("M0", pr)
	im, _ := vision.GenerateIntersection(vision.Scene{W: 120, H: 90, Noise: 10, Seed: 2}, vision.Green, 1)
	operator.Run(mReal, "A0", &tuple.Tuple{Value: blobsValue{blobs: vision.ColorFilter(im)}})
	for _, op := range []interface {
		Snapshot() ([]byte, error)
		Restore([]byte) error
	}{m, mReal, newVoter(p), newGrouper(p), newPredictor(p)} {
		state, err := op.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := op.Restore(state); err != nil {
			t.Fatal(err)
		}
	}
	v := newVoter(p)
	operator.Run(v, "M0", &tuple.Tuple{Value: Observation{Color: vision.Yellow, Valid: true}})
	state, _ := v.Snapshot()
	v2 := newVoter(p)
	if err := v2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if len(v2.window) != 1 || v2.window[0].Color != vision.Yellow {
		t.Fatalf("restored window = %+v", v2.window)
	}
}
