package region_test

import (
	"fmt"
	"testing"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/controller"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/operator"
	"mobistreams/internal/region"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
)

// diamondGraph is Fig. 5's five-node region: A -> B -> {C, D} -> E, where E
// joins the two branches by sequence number, so each input yields exactly
// one output.
func diamondGraph(t testing.TB) *graph.Graph {
	t.Helper()
	var b graph.Builder
	b.AddOperator("A", "n1").AddOperator("B", "n2").AddOperator("C", "n3").
		AddOperator("D", "n4").AddOperator("E", "n5")
	b.Connect("A", "B").Connect("B", "C").Connect("B", "D").
		Connect("C", "E").Connect("D", "E")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func diamondRegistry() operator.Registry {
	clone := func(in *tuple.Tuple) *tuple.Tuple { return in.Clone() }
	return operator.Registry{
		"A": func() operator.Operator { return operator.NewPassthrough("A") },
		"B": func() operator.Operator { return operator.NewPassthrough("B") },
		"C": func() operator.Operator { return operator.NewMap("C", clone) },
		"D": func() operator.Operator { return operator.NewMap("D", clone) },
		"E": func() operator.Operator {
			return operator.NewJoin("E", "C", "D", func(l, r *tuple.Tuple) *tuple.Tuple { return l.Clone() })
		},
	}
}

type harness struct {
	clk  *clock.Scaled
	cell *simnet.Cellular
	ctrl *controller.Controller
	r    *region.Region
}

func newHarness(t testing.TB, scheme ft.Scheme, phones int) *harness {
	t.Helper()
	clk := clock.NewScaled(2000)
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   8e6,
		DownBitsPerSecond: 8e6,
	})
	ctrl := controller.New(controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: time.Hour, // tests trigger checkpoints explicitly
		PingInterval:     30 * time.Second,
		PingTimeout:      10 * time.Second,
		DebounceWindow:   2 * time.Second,
	})
	r, err := region.New(region.Config{
		ID:                "r1",
		Graph:             diamondGraph(t),
		Registry:          diamondRegistry(),
		Scheme:            scheme,
		Phones:            phones,
		Clock:             clk,
		WiFi:              simnet.WiFiConfig{BitsPerSecond: 100e6},
		Cell:              cell,
		ControllerID:      ctrl.ID(),
		Broadcast:         broadcast.Config{BlockSize: 1024},
		PreserveBroadcast: scheme.Kind == ft.MS,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()
	t.Cleanup(func() {
		r.Stop()
		ctrl.Stop()
	})
	return &harness{clk: clk, cell: cell, ctrl: ctrl, r: r}
}

func (h *harness) ingest(n int) {
	for i := 0; i < n; i++ {
		h.r.Ingest("A", fmt.Sprintf("v%d", i), 1024, "test")
	}
}

// waitCount polls until the region has produced at least want unique
// outputs or the wall deadline expires.
func (h *harness) waitCount(t testing.TB, want int64, wall time.Duration) int64 {
	t.Helper()
	deadline := time.Now().Add(wall)
	for time.Now().Before(deadline) {
		if got := h.r.Throughput.Count(); got >= want {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
	return h.r.Throughput.Count()
}

func (h *harness) waitCommitted(t testing.TB, v uint64, wall time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(wall)
	for time.Now().Before(deadline) {
		if h.ctrl.Committed("r1") >= v {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

func TestPipelineFlowsBase(t *testing.T) {
	h := newHarness(t, ft.BaseScheme, 5)
	h.ingest(20)
	if got := h.waitCount(t, 20, 10*time.Second); got != 20 {
		t.Fatalf("outputs = %d, want 20", got)
	}
	if d := h.r.DuplicateOutputs(); d != 0 {
		t.Fatalf("duplicates = %d", d)
	}
}

func TestTokenCheckpointCommitsMS(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 6)
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}
	v := h.ctrl.TriggerCheckpoint("r1")
	if v == 0 {
		t.Fatal("checkpoint did not start")
	}
	if !h.waitCommitted(t, v, 15*time.Second) {
		t.Fatalf("v%d never committed", v)
	}
	// Every alive phone must hold every slot's blob (§III-B: saved on
	// every node, including idle ones).
	slots := h.r.Graph().Slots()
	for _, id := range h.r.AlivePhones() {
		if !h.r.Store(id).HasAllBlobs(v, slots) {
			t.Fatalf("phone %s missing blobs for v%d", id, v)
		}
	}
}

func TestFailureRecoveryMS(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 7)
	h.ingest(15)
	if got := h.waitCount(t, 15, 10*time.Second); got != 15 {
		t.Fatalf("pre-checkpoint outputs = %d, want 15", got)
	}
	v := h.ctrl.TriggerCheckpoint("r1")
	if !h.waitCommitted(t, v, 15*time.Second) {
		t.Fatal("checkpoint never committed")
	}
	h.ingest(15)
	h.waitCount(t, 30, 10*time.Second)

	// Crash the phone hosting slot n3 (operator C).
	victim, ok := h.r.Placement("n3")
	if !ok {
		t.Fatal("no placement for n3")
	}
	h.r.FailPhone(victim)
	// Keep data flowing so the upstream detects the failure.
	h.ingest(15)
	deadline := time.Now().Add(20 * time.Second)
	for h.ctrl.Recoveries("r1") == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if h.ctrl.Recoveries("r1") == 0 {
		t.Fatal("recovery never triggered")
	}
	h.ingest(15)
	// Batches 1, 2 and 4 (45 tuples) must be published exactly once.
	// Batch 3 flowed while the victim was dead: its results are
	// regenerated during catch-up, and the paper's sinks discard all
	// catch-up output (§III-D) — so those outputs are legitimately
	// dropped unless they were queued as fresh input during the pause.
	got := h.waitCount(t, 45, 30*time.Second)
	if got < 45 || got > 60 {
		t.Fatalf("outputs after recovery = %d, want 45..60", got)
	}
	// The replacement must host n3 now.
	repl, _ := h.r.Placement("n3")
	if repl == victim {
		t.Fatalf("slot n3 still on failed phone %s", victim)
	}
}

func TestRep2Failover(t *testing.T) {
	h := newHarness(t, ft.Rep2Scheme, 5)
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}
	victim, _ := h.r.Placement("n3")
	h.r.FailPhone(victim)
	h.ingest(10)
	deadline := time.Now().Add(20 * time.Second)
	for h.ctrl.Recoveries("r1") == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	h.ingest(10)
	got := h.waitCount(t, 25, 20*time.Second)
	if got < 25 {
		t.Fatalf("outputs after failover = %d, want >= 25", got)
	}
	repl, _ := h.r.Placement("n3")
	if repl == victim {
		t.Fatal("placement still on failed phone")
	}
}

func TestDistRecoveryExactlyOnce(t *testing.T) {
	h := newHarness(t, ft.Dist(1), 7)
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}
	v := h.ctrl.TriggerCheckpoint("r1")
	if !h.waitCommitted(t, v, 15*time.Second) {
		t.Fatal("checkpoint never committed")
	}
	h.ingest(10)
	h.waitCount(t, 20, 10*time.Second)
	victim, _ := h.r.Placement("n3")
	h.r.FailPhone(victim)
	h.ingest(10)
	deadline := time.Now().Add(20 * time.Second)
	for h.ctrl.Recoveries("r1") == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	h.ingest(10)
	// dist-1 with a single non-sink failure is exactly-once: upstream
	// retention covers the gap and edge sequences dedup the overlap.
	got := h.waitCount(t, 40, 30*time.Second)
	if got != 40 {
		t.Fatalf("outputs = %d, want exactly 40", got)
	}
}

func TestDepartureHandoffMS(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 7)
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}
	v := h.ctrl.TriggerCheckpoint("r1")
	if !h.waitCommitted(t, v, 15*time.Second) {
		t.Fatal("checkpoint never committed")
	}
	victim, _ := h.r.Placement("n3")
	h.r.DepartPhone(victim)
	h.ctrl.NotifyDeparture("r1", victim)
	// Data keeps flowing through urgent mode and then the replacement.
	h.ingest(20)
	got := h.waitCount(t, 30, 30*time.Second)
	if got != 30 {
		t.Fatalf("outputs after departure = %d, want 30", got)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if repl, _ := h.r.Placement("n3"); repl != victim {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("slot never moved off the departed phone")
}

func TestRegionReportAndPreservation(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 6)
	h.ingest(10)
	h.waitCount(t, 10, 10*time.Second)
	src, edge := h.r.PreservedBytes()
	if src != 10*1024 {
		t.Fatalf("source preservation = %d, want %d", src, 10*1024)
	}
	if edge != 0 {
		t.Fatalf("edge preservation = %d, want 0 under ms", edge)
	}
	rep := h.r.Report(h.clk.Now())
	if rep.Tuples != 10 || rep.Scheme != "ms" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.DataBytes == 0 {
		t.Fatal("no data bytes counted")
	}
}

func TestEdgePreservationUnderDist(t *testing.T) {
	h := newHarness(t, ft.Dist(2), 7)
	h.ingest(10)
	h.waitCount(t, 10, 10*time.Second)
	src, edge := h.r.PreservedBytes()
	if src != 0 {
		t.Fatalf("source preservation = %d, want 0 under dist", src)
	}
	// Edges crossing slots: A->B, B->C, B->D, C->E, D->E = 5 edges x 10
	// tuples x 1 KB.
	if edge != 5*10*1024 {
		t.Fatalf("edge preservation = %d, want %d", edge, 5*10*1024)
	}
}
