package region_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/controller"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/operator"
	"mobistreams/internal/phone"
	"mobistreams/internal/region"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
)

// diamondGraph is Fig. 5's five-node region: A -> B -> {C, D} -> E, where E
// joins the two branches by sequence number, so each input yields exactly
// one output.
func diamondGraph(t testing.TB) *graph.Graph {
	t.Helper()
	var b graph.Builder
	b.AddOperator("A", "n1").AddOperator("B", "n2").AddOperator("C", "n3").
		AddOperator("D", "n4").AddOperator("E", "n5")
	b.Connect("A", "B").Connect("B", "C").Connect("B", "D").
		Connect("C", "E").Connect("D", "E")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func diamondRegistry() operator.Registry {
	clone := func(in *tuple.Tuple) *tuple.Tuple { return in.Clone() }
	return operator.Registry{
		"A": func() operator.Operator { return operator.NewPassthrough("A") },
		"B": func() operator.Operator { return operator.NewPassthrough("B") },
		"C": func() operator.Operator { return operator.NewMap("C", clone) },
		"D": func() operator.Operator { return operator.NewMap("D", clone) },
		"E": func() operator.Operator {
			return operator.NewJoin("E", "C", "D", func(l, r *tuple.Tuple) *tuple.Tuple { return l.Clone() })
		},
	}
}

type harness struct {
	clk  *clock.Scaled
	cell *simnet.Cellular
	ctrl *controller.Controller
	r    *region.Region
}

func newHarness(t testing.TB, scheme ft.Scheme, phones int) *harness {
	t.Helper()
	return newHarnessLogf(t, scheme, phones, nil)
}

func newHarnessLogf(t testing.TB, scheme ft.Scheme, phones int, logf func(string, ...interface{})) *harness {
	t.Helper()
	speedup := 2000.0
	if raceEnabled {
		speedup = 300 // give race-instrumented goroutines wall time per simulated second
	}
	clk := clock.NewScaled(speedup)
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   8e6,
		DownBitsPerSecond: 8e6,
	})
	ctrl := controller.New(controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: time.Hour, // tests trigger checkpoints explicitly
		PingInterval:     30 * time.Second,
		PingTimeout:      10 * time.Second,
		DebounceWindow:   2 * time.Second,
		Logf:             logf,
	})
	r, err := region.New(region.Config{
		ID:                "r1",
		Graph:             diamondGraph(t),
		Registry:          diamondRegistry(),
		Scheme:            scheme,
		Phones:            phones,
		Clock:             clk,
		WiFi:              simnet.WiFiConfig{BitsPerSecond: 100e6},
		Cell:              cell,
		ControllerID:      ctrl.ID(),
		Broadcast:         broadcast.Config{BlockSize: 1024},
		PreserveBroadcast: scheme.Kind == ft.MS,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()
	t.Cleanup(func() {
		r.Stop()
		ctrl.Stop()
	})
	return &harness{clk: clk, cell: cell, ctrl: ctrl, r: r}
}

func (h *harness) ingest(n int) {
	for i := 0; i < n; i++ {
		h.r.Ingest("A", fmt.Sprintf("v%d", i), 1024, "test")
	}
}

// waitCount polls until the region has produced at least want unique
// outputs or the wall deadline expires.
func (h *harness) waitCount(t testing.TB, want int64, wall time.Duration) int64 {
	t.Helper()
	deadline := time.Now().Add(wall)
	for time.Now().Before(deadline) {
		if got := h.r.Throughput.Count(); got >= want {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
	return h.r.Throughput.Count()
}

func (h *harness) waitCommitted(t testing.TB, v uint64, wall time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(wall)
	for time.Now().Before(deadline) {
		if h.ctrl.Committed("r1") >= v {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

func TestPipelineFlowsBase(t *testing.T) {
	h := newHarness(t, ft.BaseScheme, 5)
	h.ingest(20)
	if got := h.waitCount(t, 20, 10*time.Second); got != 20 {
		t.Fatalf("outputs = %d, want 20", got)
	}
	if d := h.r.DuplicateOutputs(); d != 0 {
		t.Fatalf("duplicates = %d", d)
	}
}

func TestTokenCheckpointCommitsMS(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 6)
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}
	v := h.ctrl.TriggerCheckpoint("r1")
	if v == 0 {
		t.Fatal("checkpoint did not start")
	}
	if !h.waitCommitted(t, v, 15*time.Second) {
		t.Fatalf("v%d never committed", v)
	}
	// Every alive phone must hold every slot's blob (§III-B: saved on
	// every node, including idle ones).
	slots := h.r.Graph().Slots()
	for _, id := range h.r.AlivePhones() {
		if !h.r.Store(id).HasAllBlobs(v, slots) {
			t.Fatalf("phone %s missing blobs for v%d", id, v)
		}
	}
}

func TestFailureRecoveryMS(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 7)
	h.ingest(15)
	if got := h.waitCount(t, 15, 10*time.Second); got != 15 {
		t.Fatalf("pre-checkpoint outputs = %d, want 15", got)
	}
	v := h.ctrl.TriggerCheckpoint("r1")
	if !h.waitCommitted(t, v, 15*time.Second) {
		t.Fatal("checkpoint never committed")
	}
	h.ingest(15)
	h.waitCount(t, 30, 10*time.Second)

	// Crash the phone hosting slot n3 (operator C).
	victim, ok := h.r.Placement("n3")
	if !ok {
		t.Fatal("no placement for n3")
	}
	h.r.FailPhone(victim)
	// Keep data flowing so the upstream detects the failure.
	h.ingest(15)
	deadline := time.Now().Add(20 * time.Second)
	for h.ctrl.Recoveries("r1") == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if h.ctrl.Recoveries("r1") == 0 {
		t.Fatal("recovery never triggered")
	}
	// Wait for the sink to finish catch-up before the final batch:
	// tuples admitted mid-recovery are replayed and legitimately
	// discarded by catch-up suppression, which is batch 3's fate, not
	// batch 4's.
	deadline = time.Now().Add(30 * time.Second)
	for h.ctrl.CatchUpCount("r1", 1) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if h.ctrl.CatchUpCount("r1", 1) == 0 {
		t.Fatal("catch-up never completed")
	}
	h.ingest(15)
	// Batches 1, 2 and 4 (45 tuples) must be published exactly once.
	// Batch 3 flowed while the victim was dead: its results are
	// regenerated during catch-up, and the paper's sinks discard all
	// catch-up output (§III-D) — so those outputs are legitimately
	// dropped unless they were queued as fresh input during the pause.
	got := h.waitCount(t, 45, 30*time.Second)
	if got < 45 || got > 60 {
		t.Fatalf("outputs after recovery = %d, want 45..60", got)
	}
	// The replacement must host n3 now.
	repl, _ := h.r.Placement("n3")
	if repl == victim {
		t.Fatalf("slot n3 still on failed phone %s", victim)
	}
}

// TestDeltaChainRecoveryMS drives two committed checkpoints so the second
// travels as a delta chained to the first, then crashes a phone: recovery
// must restore the slot from the materialised base+delta chain with no
// duplicated output — the restored node must not re-emit tuples the
// restored version already covers.
func TestDeltaChainRecoveryMS(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 7)
	h.ingest(15)
	if got := h.waitCount(t, 15, 10*time.Second); got != 15 {
		t.Fatalf("pre-checkpoint outputs = %d, want 15", got)
	}
	v1 := h.ctrl.TriggerCheckpoint("r1")
	if !h.waitCommitted(t, v1, 15*time.Second) {
		t.Fatal("v1 never committed")
	}
	h.ingest(15)
	h.waitCount(t, 30, 10*time.Second)
	v2 := h.ctrl.TriggerCheckpoint("r1")
	if !h.waitCommitted(t, v2, 15*time.Second) {
		t.Fatal("v2 never committed")
	}
	// The stateful slot's v2 blob must actually be a delta link, and the
	// chain must have survived v2's commit GC on every phone.
	victim, ok := h.r.Placement("n3")
	if !ok {
		t.Fatal("no placement for n3")
	}
	blob, ok := h.r.Store(victim).Blob(v2, "n3")
	if !ok {
		t.Fatalf("no v%d blob for n3", v2)
	}
	if !blob.IsDelta() || blob.Base != v1 {
		t.Fatalf("n3 v%d blob is not a delta over v%d (base %d)", v2, v1, blob.Base)
	}
	for _, id := range h.r.AlivePhones() {
		if !h.r.Store(id).HasChain(v2, "n3") {
			t.Fatalf("phone %s lost the n3 chain to commit GC", id)
		}
	}

	h.ingest(15)
	h.waitCount(t, 45, 10*time.Second)
	h.r.FailPhone(victim)
	h.ingest(15)
	deadline := time.Now().Add(20 * time.Second)
	for h.ctrl.Recoveries("r1") == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if h.ctrl.Recoveries("r1") == 0 {
		t.Fatal("recovery never triggered")
	}
	// Wait until the sink finishes catch-up (epoch 1) before the final
	// batch, so its delivery exercises the restored steady state rather
	// than racing the replay window.
	deadline = time.Now().Add(30 * time.Second)
	for h.ctrl.CatchUpCount("r1", 1) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if h.ctrl.CatchUpCount("r1", 1) == 0 {
		t.Fatal("catch-up never completed")
	}
	h.ingest(15)
	// Batches 1-3 and 5 (60 tuples) are published exactly once; batch 4
	// flowed while the victim was dead and may be suppressed as catch-up.
	got := h.waitCount(t, 60, 30*time.Second)
	if got < 60 || got > 75 {
		t.Fatalf("outputs after chain recovery = %d, want 60..75", got)
	}
	if d := h.r.DuplicateOutputs(); d != 0 {
		t.Fatalf("chain restore re-emitted %d covered tuples", d)
	}
	if repl, _ := h.r.Placement("n3"); repl == victim {
		t.Fatalf("slot n3 still on failed phone %s", victim)
	}
}

func TestRep2Failover(t *testing.T) {
	h := newHarness(t, ft.Rep2Scheme, 5)
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}
	victim, _ := h.r.Placement("n3")
	h.r.FailPhone(victim)
	h.ingest(10)
	deadline := time.Now().Add(20 * time.Second)
	for h.ctrl.Recoveries("r1") == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	h.ingest(10)
	got := h.waitCount(t, 25, 20*time.Second)
	if got < 25 {
		t.Fatalf("outputs after failover = %d, want >= 25", got)
	}
	repl, _ := h.r.Placement("n3")
	if repl == victim {
		t.Fatal("placement still on failed phone")
	}
}

func TestDistRecoveryExactlyOnce(t *testing.T) {
	h := newHarness(t, ft.Dist(1), 7)
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}
	v := h.ctrl.TriggerCheckpoint("r1")
	if !h.waitCommitted(t, v, 15*time.Second) {
		t.Fatal("checkpoint never committed")
	}
	h.ingest(10)
	h.waitCount(t, 20, 10*time.Second)
	victim, _ := h.r.Placement("n3")
	h.r.FailPhone(victim)
	h.ingest(10)
	deadline := time.Now().Add(20 * time.Second)
	for h.ctrl.Recoveries("r1") == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	h.ingest(10)
	// dist-1 with a single non-sink failure is exactly-once: upstream
	// retention covers the gap and edge sequences dedup the overlap.
	got := h.waitCount(t, 40, 30*time.Second)
	if got != 40 {
		t.Fatalf("outputs = %d, want exactly 40", got)
	}
}

func TestDepartureHandoffMS(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 7)
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}
	v := h.ctrl.TriggerCheckpoint("r1")
	if !h.waitCommitted(t, v, 15*time.Second) {
		t.Fatal("checkpoint never committed")
	}
	victim, _ := h.r.Placement("n3")
	h.r.DepartPhone(victim)
	h.ctrl.NotifyDeparture("r1", victim)
	// Data keeps flowing through urgent mode and then the replacement.
	h.ingest(20)
	got := h.waitCount(t, 30, 30*time.Second)
	if got != 30 {
		t.Fatalf("outputs after departure = %d, want 30", got)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if repl, _ := h.r.Placement("n3"); repl != victim {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("slot never moved off the departed phone")
}

func TestRegionReportAndPreservation(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 6)
	h.ingest(10)
	h.waitCount(t, 10, 10*time.Second)
	src, edge := h.r.PreservedBytes()
	if src != 10*1024 {
		t.Fatalf("source preservation = %d, want %d", src, 10*1024)
	}
	if edge != 0 {
		t.Fatalf("edge preservation = %d, want 0 under ms", edge)
	}
	rep := h.r.Report(h.clk.Now())
	if rep.Tuples != 10 || rep.Scheme != "ms" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.DataBytes == 0 {
		t.Fatal("no data bytes counted")
	}
}

func TestEdgePreservationUnderDist(t *testing.T) {
	h := newHarness(t, ft.Dist(2), 7)
	h.ingest(10)
	h.waitCount(t, 10, 10*time.Second)
	src, edge := h.r.PreservedBytes()
	if src != 0 {
		t.Fatalf("source preservation = %d, want 0 under dist", src)
	}
	// Edges crossing slots: A->B, B->C, B->D, C->E, D->E = 5 edges x 10
	// tuples x 1 KB.
	if edge != 5*10*1024 {
		t.Fatalf("edge preservation = %d, want %d", edge, 5*10*1024)
	}
}

// TestPlannedMigrationExactlyOnce drives the scheduler's migration path by
// hand: a live slot moves to an idle phone mid-stream, and every ingested
// tuple is published exactly once — nothing dropped, nothing duplicated.
// Both an interior slot and the source slot migrate (the source exercises
// the external-ingest relay through the repoint window).
func TestPlannedMigrationExactlyOnce(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 7)
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}

	// Keep data flowing while the migrations run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			h.r.Ingest("A", fmt.Sprintf("m%d", i), 1024, "test")
			time.Sleep(2 * time.Millisecond)
		}
	}()

	if !h.ctrl.Migrate("r1", "n3", "r1/p6") {
		t.Fatal("interior migration n3 -> p6 failed")
	}
	if !h.ctrl.Migrate("r1", "n1", "r1/p7") {
		t.Fatal("source migration n1 -> p7 failed")
	}
	<-done
	h.ingest(10)

	if got := h.waitCount(t, 50, 30*time.Second); got != 50 {
		t.Fatalf("outputs = %d, want exactly 50 (no loss)", got)
	}
	if d := h.r.DuplicateOutputs(); d != 0 {
		t.Fatalf("duplicates = %d, want 0", d)
	}
	if pid, _ := h.r.Placement("n3"); pid != "r1/p6" {
		t.Fatalf("n3 on %s, want r1/p6", pid)
	}
	if pid, _ := h.r.Placement("n1"); pid != "r1/p7" {
		t.Fatalf("n1 on %s, want r1/p7", pid)
	}
	if got := h.ctrl.Migrations("r1"); got != 2 {
		t.Fatalf("controller migrations = %d, want 2", got)
	}
	if got := h.r.Migrations(); got != 2 {
		t.Fatalf("region migrations = %d, want 2", got)
	}
	// The migrated-off phones are intact: checkpointing still works.
	v := h.ctrl.TriggerCheckpoint("r1")
	if !h.waitCommitted(t, v, 15*time.Second) {
		t.Fatal("post-migration checkpoint never committed")
	}
}

// TestMigrateValidatesTarget pins the claim/validation edges of Migrate.
func TestMigrateValidatesTarget(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 6)
	if h.ctrl.Migrate("r1", "n3", "r1/p1") {
		t.Fatal("migration onto a non-idle phone must fail")
	}
	if h.ctrl.Migrate("r1", "nope", "r1/p6") {
		t.Fatal("migration of an unknown slot must fail")
	}
	if h.ctrl.Migrate("nope", "n3", "r1/p6") {
		t.Fatal("migration in an unknown region must fail")
	}
	if got := h.ctrl.Migrations("r1"); got != 0 {
		t.Fatalf("migrations = %d, want 0", got)
	}
}

// TestConcurrentFailDepartUnregister races failure, departure and
// unregistration of the same phone against membership reads: no panics, and
// the phone ends up gone from every membership view.
func TestConcurrentFailDepartUnregister(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 7)
	victim := simnet.NodeID("r1/p7") // idle: the pipeline stays intact
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, fn := range []func(){
		func() { h.r.FailPhone(victim) },
		func() { h.r.DepartPhone(victim) },
		func() { h.r.Unregister(victim) },
		func() { h.ctrl.NotifyDeparture("r1", victim) },
	} {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			<-start
			fn()
		}(fn)
	}
	// Concurrent readers of the membership views the fault paths mutate.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 50; j++ {
				h.r.AlivePhones()
				h.r.LivePeers("r1/p1")
				h.r.IdleCount()
				h.r.TakeIdle()
			}
		}()
	}
	close(start)
	wg.Wait()
	for _, id := range h.r.AlivePhones() {
		if id == victim {
			t.Fatal("unregistered phone still listed alive")
		}
	}
	for _, id := range h.r.LivePeers("r1/p1") {
		if id == victim {
			t.Fatal("unregistered phone still listed as a live peer")
		}
	}
	// The region keeps working after the membership churn.
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}
}

// TestDepartureWithoutMobilityStoryWarnsOnce pins the behaviour of
// NotifyDeparture on schemes without HandlesDepartures: the slot stays on
// the departed phone (urgent mode forever), the departure is counted, and
// the controller logs the no-mobility warning exactly once per region no
// matter how many phones depart.
func TestDepartureWithoutMobilityStoryWarnsOnce(t *testing.T) {
	var mu sync.Mutex
	var warns []string
	h := newHarnessLogf(t, ft.Rep2Scheme, 6, func(format string, args ...interface{}) {
		mu.Lock()
		warns = append(warns, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	h.ingest(5)
	h.waitCount(t, 5, 10*time.Second)

	for _, slot := range []string{"n3", "n4"} {
		pid, ok := h.r.Placement(slot)
		if !ok {
			t.Fatalf("no placement for %s", slot)
		}
		h.r.DepartPhone(pid)
		h.ctrl.NotifyDeparture("r1", pid)
		// Urgent mode forever: the slot never moves off the departed phone.
		if now, _ := h.r.Placement(slot); now != pid {
			t.Fatalf("slot %s moved to %s under a scheme with no mobility story", slot, now)
		}
	}
	if got := h.ctrl.Departures("r1"); got != 2 {
		t.Fatalf("departures = %d, want 2", got)
	}
	mu.Lock()
	defer mu.Unlock()
	count := 0
	for _, w := range warns {
		if strings.Contains(w, "no mobility story") {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("no-mobility warning logged %d times, want exactly once (log spam guard); logs: %v", count, warns)
	}
}

// TestTelemetryCollector checks the scheduler's inputs: membership, slot
// assignment, idle flags, and rate estimation across polls.
func TestTelemetryCollector(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 6)
	h.ingest(10)
	h.waitCount(t, 10, 10*time.Second)

	first := h.r.Telemetry()
	if first.Region != "r1" || len(first.Phones) != 6 {
		t.Fatalf("telemetry = %s with %d phones, want r1 with 6", first.Region, len(first.Phones))
	}
	byID := func(rs []string, id string) bool {
		for _, s := range rs {
			if s == id {
				return true
			}
		}
		return false
	}
	var sawIdle, sawHost bool
	for _, p := range first.Phones {
		if p.Idle {
			sawIdle = true
			if len(p.Slots) != 0 {
				t.Fatalf("idle phone %s lists slots %v", p.ID, p.Slots)
			}
		}
		if p.ID == "r1/p3" && byID(p.Slots, "n3") {
			sawHost = true
		}
		if p.BatteryJoules <= 0 || p.BatteryFraction <= 0 {
			t.Fatalf("phone %s has no battery telemetry: %+v", p.ID, p)
		}
	}
	if !sawIdle || !sawHost {
		t.Fatalf("telemetry missing idle or host entries: %+v", first.Phones)
	}

	// A second poll after more work carries positive drain and tuple rate.
	h.ingest(20)
	h.waitCount(t, 30, 10*time.Second)
	second := h.r.Telemetry()
	var drained, rated bool
	for _, p := range second.Phones {
		if p.DrainWatts > 0 {
			drained = true
		}
		if p.TupleRate > 0 {
			rated = true
		}
	}
	if !drained || !rated {
		t.Fatalf("second poll has no rate estimates (drained=%v rated=%v): %+v", drained, rated, second.Phones)
	}

	// A failed phone drops out of the telemetry.
	h.r.FailPhone("r1/p6")
	third := h.r.Telemetry()
	for _, p := range third.Phones {
		if p.ID == "r1/p6" {
			t.Fatal("failed phone still in telemetry")
		}
	}
}

// TestAddPhoneRecruitsIdleMember pins the join path: a recruited phone
// becomes claimable and can host a migrated slot.
func TestAddPhoneRecruitsIdleMember(t *testing.T) {
	h := newHarness(t, ft.MSScheme, 5) // zero idle spares
	h.ingest(5)
	h.waitCount(t, 5, 10*time.Second)
	if n := h.r.IdleCount(); n != 0 {
		t.Fatalf("idle = %d, want 0", n)
	}
	id := h.r.AddPhone(phone.Config{})
	if n := h.r.IdleCount(); n != 1 {
		t.Fatalf("idle after join = %d, want 1", n)
	}
	if !h.ctrl.Migrate("r1", "n3", id) {
		t.Fatalf("migration onto recruited phone %s failed", id)
	}
	h.ingest(10)
	if got := h.waitCount(t, 15, 20*time.Second); got != 15 {
		t.Fatalf("outputs = %d, want 15", got)
	}
	if pid, _ := h.r.Placement("n3"); pid != id {
		t.Fatalf("n3 on %s, want %s", pid, id)
	}
}

// TestSchedulerLoopEvacuatesLowBattery wires the scheduler into the
// controller and checks the full loop: telemetry flags a phone whose
// battery has cliffed, and its slot is live-migrated onto an idle phone
// before any reactive machinery fires — with no output lost or duplicated.
func TestSchedulerLoopEvacuatesLowBattery(t *testing.T) {
	clk := clock.NewScaled(2000)
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   8e6,
		DownBitsPerSecond: 8e6,
	})
	ctrl := controller.New(controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: time.Hour,
		PingInterval:     time.Hour,
		PingTimeout:      10 * time.Second,
		Sched: scheduler.New(scheduler.Config{
			Scorer:   &scheduler.HeuristicScorer{LowFraction: 0.15},
			Cooldown: 5 * time.Second,
		}),
		ScheduleTick: 2 * time.Second,
	})
	r, err := region.New(region.Config{
		ID:                "r1",
		Graph:             diamondGraph(t),
		Registry:          diamondRegistry(),
		Scheme:            ft.MSScheme,
		Phones:            7,
		Clock:             clk,
		WiFi:              simnet.WiFiConfig{BitsPerSecond: 100e6},
		Cell:              cell,
		ControllerID:      ctrl.ID(),
		Broadcast:         broadcast.Config{BlockSize: 1024},
		PreserveBroadcast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()
	t.Cleanup(func() {
		r.Stop()
		ctrl.Stop()
	})

	h := &harness{clk: clk, cell: cell, ctrl: ctrl, r: r}
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}

	victim, _ := r.Placement("n3")
	r.Phone(victim).Revive(0.08) // battery cliff: below the 0.15 risk line
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if pid, _ := r.Placement("n3"); pid != victim {
			break
		}
		h.ingest(1)
		time.Sleep(5 * time.Millisecond)
	}
	repl, _ := r.Placement("n3")
	if repl == victim {
		t.Fatalf("scheduler never evacuated n3 off low-battery %s", victim)
	}
	if ctrl.Migrations("r1") == 0 {
		t.Fatal("no migration recorded")
	}
	if ctrl.Recoveries("r1") != 0 {
		t.Fatal("reactive recovery fired; migration should have pre-empted it")
	}
	want := r.Throughput.Count() // whatever was ingested so far, delivered
	h.ingest(10)
	if got := h.waitCount(t, want+10, 20*time.Second); got < want+10 {
		t.Fatalf("outputs after evacuation = %d, want >= %d", got, want+10)
	}
	if d := r.DuplicateOutputs(); d != 0 {
		t.Fatalf("duplicates = %d, want 0", d)
	}
}
