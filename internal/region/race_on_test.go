//go:build race

package region_test

// raceEnabled reports that the race detector is instrumenting this build.
// The harness slows its simulated clock under it: the detector's ~10x
// execution slowdown otherwise starves the recovery protocol's
// simulated-time deadlines of real work.
const raceEnabled = true
