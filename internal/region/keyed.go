package region

import (
	"fmt"
	"sort"
	"time"

	"mobistreams/internal/graph"
	"mobistreams/internal/keyed"
	"mobistreams/internal/node"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
)

// This file is the region half of elastic keyed parallelism: the control
// plane that splits a hot instance's key range onto a dormant instance and
// merges a cold instance back. The protocol keeps the data plane
// exactly-once: the donor is paused from before its state export until
// after the successor partition table is installed, so no tuple executes
// against a key range the donor no longer owns; stragglers queued before
// the flip reroute to the new owner when popped (see internal/node).

// keyRangeShipTimeout bounds, in simulated time, how long a split/merge
// waits for the recipient to acknowledge an imported key range before
// rolling the state back to the donor.
const keyRangeShipTimeout = 10 * time.Second

// defaultKeyedGroup seeds a group's runtime partition table: the keyspace
// split at even single-byte bounds across the first Parallelism instances
// (one range each), the remaining instances dormant. Parallelism 1 yields
// the single-range identity table.
func defaultKeyedGroup(gs graph.KeyedGroupSpec) (*keyed.Group, error) {
	var bounds []string
	for i := 1; i < gs.Parallelism; i++ {
		bounds = append(bounds, string([]byte{byte(i * 256 / gs.Parallelism)}))
	}
	tbl, err := keyed.NewTable(bounds, gs.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("keyed group %s: %w", gs.Logical, err)
	}
	grp, err := keyed.NewGroup(gs.Logical, gs.Instances, tbl)
	if err != nil {
		return nil, fmt.Errorf("keyed group %s: %w", gs.Logical, err)
	}
	return grp, nil
}

// KeyedGroup returns the live elastic group for a logical keyed operator.
func (r *Region) KeyedGroup(logical string) (*keyed.Group, bool) {
	grp, ok := r.keyed[logical]
	return grp, ok
}

// SeedKeyRanges replaces a group's initial partition bounds (len(bounds)+1
// ranges assigned round-robin across the initially active instances).
// Call it before traffic flows: reseeding after keyed state has
// accumulated strands that state at the former owners.
func (r *Region) SeedKeyRanges(logical string, bounds []string) error {
	grp, ok := r.keyed[logical]
	if !ok {
		return fmt.Errorf("region %s: no keyed group %q", r.cfg.ID, logical)
	}
	gs, _ := r.cfg.Graph.KeyedGroup(logical)
	tbl, err := keyed.NewTable(bounds, gs.Parallelism)
	if err != nil {
		return fmt.Errorf("region %s: seed %s: %w", r.cfg.ID, logical, err)
	}
	grp.Install(tbl)
	return nil
}

// keyedInstanceNode resolves instance idx of a group to the node currently
// hosting its slot as primary.
func (r *Region) keyedInstanceNode(grp *keyed.Group, idx int) (*node.Node, simnet.NodeID, error) {
	insts := grp.Instances()
	if idx < 0 || idx >= len(insts) {
		return nil, "", fmt.Errorf("region %s: %s instance %d out of range", r.cfg.ID, grp.Logical(), idx)
	}
	slot := r.cfg.Graph.SlotOf(insts[idx])
	r.mu.Lock()
	pid, ok := r.placement[slot]
	n := r.nodes[pid]
	r.mu.Unlock()
	if !ok || n == nil {
		return nil, "", fmt.Errorf("region %s: no primary for keyed slot %s", r.cfg.ID, slot)
	}
	return n, pid, nil
}

// shipRange moves the keyed state in [lo, hi) from the (already paused)
// donor to the recipient and waits for the recipient to acknowledge the
// import. On send failure or timeout the exported state is re-imported at
// the donor, leaving ownership unchanged.
func (r *Region) shipRange(logical string, donor, recip *node.Node, recipID simnet.NodeID, lo, hi string) error {
	genBefore := recip.KeyRangeGen()
	state, err := donor.ExportKeyRange(lo, hi)
	if err != nil {
		return err
	}
	rollback := func() {
		if rerr := donor.ImportKeyRange(state); rerr != nil {
			r.logf("region %s: key-range rollback %s [%s,%s): %v", r.cfg.ID, logical, lo, hi, rerr)
		}
	}
	if !donor.SendKeyRange(recipID, node.KeyRangeMsg{Logical: logical, Lo: lo, Hi: hi, State: state}) {
		rollback()
		return fmt.Errorf("region %s: key-range ship %s [%s,%s) to %s failed", r.cfg.ID, logical, lo, hi, recipID)
	}
	deadline := r.clk.Now() + keyRangeShipTimeout
	for recip.KeyRangeGen() == genBefore {
		if r.clk.Now() > deadline {
			rollback()
			return fmt.Errorf("region %s: key-range ship %s [%s,%s) to %s timed out", r.cfg.ID, logical, lo, hi, recipID)
		}
		r.clk.Sleep(2 * time.Millisecond)
	}
	return nil
}

// SplitKeyRange performs a live split: the range containing `at` is cut at
// that bound and the upper half handed, state included, to instance `to`
// (typically dormant). The donor stays paused from export to table
// install; after the install every node routes [at, oldHi) to the new
// owner.
func (r *Region) SplitKeyRange(logical, at string, to int) error {
	r.splitMu.Lock()
	defer r.splitMu.Unlock()
	grp, ok := r.keyed[logical]
	if !ok {
		return fmt.Errorf("region %s: no keyed group %q", r.cfg.ID, logical)
	}
	tbl := grp.Table()
	donorIdx := tbl.Owner(at)
	if donorIdx == to {
		return fmt.Errorf("region %s: %s instance %d already owns %q", r.cfg.ID, logical, to, at)
	}
	next, moved, err := tbl.Split(at, to)
	if err != nil {
		return fmt.Errorf("region %s: split %s: %w", r.cfg.ID, logical, err)
	}
	donor, _, err := r.keyedInstanceNode(grp, donorIdx)
	if err != nil {
		return err
	}
	recip, recipID, err := r.keyedInstanceNode(grp, to)
	if err != nil {
		return err
	}
	donor.PauseExec()
	defer donor.ResumeExec()
	if err := r.shipRange(logical, donor, recip, recipID, moved[0], moved[1]); err != nil {
		return err
	}
	grp.Install(next)
	r.jot("keyed.split", "", next.Epoch(), fmt.Sprintf("%s at %q -> %d", logical, at, to))
	return nil
}

// SplitInstance halves a hot instance without the caller naming a cut
// point: the donor is paused, its owned ranges are tried from most to
// fewest resident keys (the range carrying the most state is the best
// guess at where the load lives), and the first splittable one is cut at
// its median resident key, the upper half moving to instance `to`. Errors
// when the donor holds fewer than two keys in every range it owns
// (nothing to split).
func (r *Region) SplitInstance(logical string, donorIdx, to int) error {
	r.splitMu.Lock()
	defer r.splitMu.Unlock()
	grp, ok := r.keyed[logical]
	if !ok {
		return fmt.Errorf("region %s: no keyed group %q", r.cfg.ID, logical)
	}
	if donorIdx == to {
		return fmt.Errorf("region %s: %s split %d into itself", r.cfg.ID, logical, donorIdx)
	}
	tbl := grp.Table()
	donor, _, err := r.keyedInstanceNode(grp, donorIdx)
	if err != nil {
		return err
	}
	recip, recipID, err := r.keyedInstanceNode(grp, to)
	if err != nil {
		return err
	}
	donor.PauseExec()
	defer donor.ResumeExec()
	ranges := tbl.OwnedRanges(donorIdx)
	sort.SliceStable(ranges, func(i, j int) bool {
		return donor.KeyRangeLen(ranges[i][0], ranges[i][1]) > donor.KeyRangeLen(ranges[j][0], ranges[j][1])
	})
	for _, rg := range ranges {
		at, ok := donor.KeyRangeMedian(rg[0], rg[1])
		if !ok {
			continue
		}
		next, moved, err := tbl.Split(at, to)
		if err != nil {
			continue
		}
		if err := r.shipRange(logical, donor, recip, recipID, moved[0], moved[1]); err != nil {
			return err
		}
		grp.Install(next)
		r.jot("keyed.split", "", next.Epoch(), fmt.Sprintf("%s at %q -> %d (median)", logical, at, to))
		return nil
	}
	return fmt.Errorf("region %s: %s instance %d has no splittable range", r.cfg.ID, logical, donorIdx)
}

// KeyedTelemetry snapshots one keyed group's per-instance backpressure
// signals (queue backlog, tuple rate, range ownership) for the elasticity
// policy — the keyed analogue of Telemetry.
func (r *Region) KeyedTelemetry(logical string) []scheduler.InstanceStat {
	grp, ok := r.keyed[logical]
	if !ok {
		return nil
	}
	now := r.clk.Now()
	activeSet := make(map[int]bool)
	for _, i := range grp.Table().Instances() {
		activeSet[i] = true
	}
	insts := grp.Instances()
	stats := make([]scheduler.InstanceStat, 0, len(insts))
	r.teleMu.Lock()
	defer r.teleMu.Unlock()
	for i, inst := range insts {
		st := scheduler.InstanceStat{Instance: inst, Index: i, Active: activeSet[i]}
		slot := r.cfg.Graph.SlotOf(inst)
		st.Slot = slot
		r.mu.Lock()
		pid, placed := r.placement[slot]
		n := r.nodes[pid]
		r.mu.Unlock()
		if placed && n != nil {
			st.Backlog = n.Backlog()
			processed := n.Processed()
			if prev, ok := r.keyedPrev[inst]; ok && now > prev.at && processed > prev.processed {
				st.TupleRate = float64(processed-prev.processed) / (now - prev.at).Seconds()
			}
			r.keyedPrev[inst] = telePoint{at: now, processed: processed}
		}
		stats = append(stats, st)
	}
	return stats
}

// MergeKeyRange drains instance `from`: every range it owns moves, state
// included, to instance `to`, and `from` goes dormant (owning nothing, it
// receives no traffic and is available as a future split target). If a
// later range fails to ship, the already-shipped ranges are returned to
// the donor so ownership and state stay consistent.
func (r *Region) MergeKeyRange(logical string, from, to int) error {
	r.splitMu.Lock()
	defer r.splitMu.Unlock()
	grp, ok := r.keyed[logical]
	if !ok {
		return fmt.Errorf("region %s: no keyed group %q", r.cfg.ID, logical)
	}
	tbl := grp.Table()
	next, moved, err := tbl.MergeInto(from, to)
	if err != nil {
		return fmt.Errorf("region %s: merge %s: %w", r.cfg.ID, logical, err)
	}
	donor, donorID, err := r.keyedInstanceNode(grp, from)
	if err != nil {
		return err
	}
	recip, recipID, err := r.keyedInstanceNode(grp, to)
	if err != nil {
		return err
	}
	donor.PauseExec()
	defer donor.ResumeExec()
	for i, rg := range moved {
		if err := r.shipRange(logical, donor, recip, recipID, rg[0], rg[1]); err != nil {
			recip.PauseExec()
			for _, back := range moved[:i] {
				if berr := r.shipRange(logical, recip, donor, donorID, back[0], back[1]); berr != nil {
					r.logf("region %s: merge unwind %s [%s,%s): %v", r.cfg.ID, logical, back[0], back[1], berr)
				}
			}
			recip.ResumeExec()
			return err
		}
	}
	grp.Install(next)
	r.jot("keyed.merge", "", next.Epoch(), fmt.Sprintf("%s %d -> %d", logical, from, to))
	return nil
}
