//go:build !race

package region_test

const raceEnabled = false
