package region_test

import (
	"strings"
	"testing"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/controller"
	"mobistreams/internal/ft"
	"mobistreams/internal/placement"
	"mobistreams/internal/region"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
)

// plannerHarness wires a two-channel region into a controller running the
// topology-aware placement planner with the greedy scorer as fallback, both
// sharing one per-slot cooldown ledger. Cellular is deliberately slow so a
// plan's code-ship phase spans enough wall time for the test to interfere
// with an in-flight step.
func plannerHarness(t *testing.T, phones int) *harness {
	t.Helper()
	clk := clock.NewScaled(300)
	// Slow cellular: one 256 KB code ship takes ~40 simulated seconds, a
	// wide-open window for the test to depart a migration target with the
	// ship still in flight.
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   0.05e6,
		DownBitsPerSecond: 0.05e6,
	})
	ledger := scheduler.NewCooldowns()
	ctrl := controller.New(controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: time.Hour,
		PingInterval:     time.Hour,
		PingTimeout:      10 * time.Second,
		Sched: scheduler.New(scheduler.Config{
			Scorer:    &scheduler.HeuristicScorer{LowFraction: 0.10},
			Cooldown:  5 * time.Second,
			Cooldowns: ledger,
		}),
		Planner:      scheduler.NewPlanner(placement.New(placement.Config{}), ledger),
		ScheduleTick: 2 * time.Second,
	})
	r, err := region.New(region.Config{
		ID:                "r1",
		Graph:             diamondGraph(t),
		Registry:          diamondRegistry(),
		Scheme:            ft.MSScheme,
		Phones:            phones,
		Clock:             clk,
		WiFi:              simnet.WiFiConfig{BitsPerSecond: 100e6, Channels: 2},
		Cell:              cell,
		ControllerID:      ctrl.ID(),
		Broadcast:         broadcast.Config{BlockSize: 1024},
		PreserveBroadcast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()
	t.Cleanup(func() {
		r.Stop()
		ctrl.Stop()
	})
	return &harness{clk: clk, cell: cell, ctrl: ctrl, r: r}
}

// waitJournal polls the region journal until an event of the wanted kind
// appears, returning it.
func waitJournal(t *testing.T, h *harness, kind string, wall time.Duration) (obsEvent, bool) {
	t.Helper()
	deadline := time.Now().Add(wall)
	for time.Now().Before(deadline) {
		for _, e := range h.r.Obs().Journal.Events() {
			if e.Kind == kind {
				return obsEvent{Kind: e.Kind, Slot: e.Slot, Detail: e.Detail}, true
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
	return obsEvent{}, false
}

type obsEvent struct {
	Kind   string
	Slot   string
	Detail string
}

// TestPlannerAbortsOnDepartureAndReplans drives the full plan lifecycle
// against churn: the planner proposes a pack-to-empty plan consolidating the
// diamond onto channel 0 (round-robin channels put n1/n3/n5 on channel 0 and
// n2/n4 on channel 1, with idle p7/p9/p11 on channel 0), the test departs
// the plan's second migration target while the first step's code ship is
// still in flight, and the controller must abort the plan the moment the
// stale step fails — journalled, no reactive recovery — then replan the
// leftover slot onto the surviving idle phone with no output lost or
// duplicated.
func TestPlannerAbortsOnDepartureAndReplans(t *testing.T) {
	h := plannerHarness(t, 11)

	// The first plan packs the group into channel 0: n2 onto p11 and n4
	// onto p7 (candidates sort by ID, "r1/p11" < "r1/p7" < "r1/p9").
	// Depart p7 the moment the plan is proposed: step 1's ~40-second code
	// ship leaves the plan mid-execution, so by the time step 2 tries to
	// claim p7 the phone is gone and the claim fails against the stale
	// snapshot. No tuples are ingested yet — the first tick fires two
	// simulated seconds in, and the departure must land inside step 1.
	if _, ok := waitJournal(t, h, "plan.propose", 20*time.Second); !ok {
		t.Fatal("planner never proposed a plan")
	}
	h.r.DepartPhone("r1/p7")

	abort, ok := waitJournal(t, h, "plan.abort", 20*time.Second)
	if !ok {
		for _, e := range h.r.Obs().Journal.Events() {
			t.Logf("journal: %s slot=%s detail=%s", e.Kind, e.Slot, e.Detail)
		}
		t.Fatal("departing the migration target did not abort the plan")
	}
	if abort.Slot != "n4" || !strings.Contains(abort.Detail, "r1/p7") {
		t.Fatalf("abort = %+v, want slot n4 targeting r1/p7", abort)
	}

	// The next tick replans from fresh topology: p7 is gone, so n4 lands
	// on p9, channel 0's surviving idle phone, completing the repack.
	if _, ok := waitJournal(t, h, "plan.commit", 20*time.Second); !ok {
		t.Fatal("planner never committed a replacement plan")
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pid, _ := h.r.Placement("n4"); pid == "r1/p9" {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if pid, _ := h.r.Placement("n4"); pid != "r1/p9" {
		t.Fatalf("n4 on %s, want r1/p9 after replan", pid)
	}
	if pid, _ := h.r.Placement("n2"); pid != "r1/p11" {
		t.Fatalf("n2 on %s, want r1/p11 from the aborted plan's landed step", pid)
	}
	committed, aborted := h.ctrl.PlanStats("r1")
	if committed < 1 || aborted < 1 {
		t.Fatalf("plan stats committed=%d aborted=%d, want >=1 each", committed, aborted)
	}
	if h.ctrl.Recoveries("r1") != 0 {
		t.Fatal("reactive recovery fired; the plan abort should be clean")
	}

	// No tuple is lost or duplicated on the repacked placement: everything
	// ingested comes out exactly once through the migrated pipeline.
	h.ingest(20)
	if got := h.waitCount(t, 20, 30*time.Second); got < 20 {
		t.Fatalf("outputs after replan = %d, want >= 20", got)
	}
	if d := h.r.DuplicateOutputs(); d != 0 {
		t.Fatalf("duplicates = %d, want 0", d)
	}
}

// TestPlannerFallsBackToGreedyWithoutTopology pins the fallback contract: on
// a single-channel region the planner reports no usable topology and the
// greedy scorer keeps evacuating low-battery hosts exactly as before.
func TestPlannerFallsBackToGreedyWithoutTopology(t *testing.T) {
	clk := clock.NewScaled(2000)
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   8e6,
		DownBitsPerSecond: 8e6,
	})
	ledger := scheduler.NewCooldowns()
	ctrl := controller.New(controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: time.Hour,
		PingInterval:     time.Hour,
		PingTimeout:      10 * time.Second,
		Sched: scheduler.New(scheduler.Config{
			Scorer:    &scheduler.HeuristicScorer{LowFraction: 0.15},
			Cooldown:  5 * time.Second,
			Cooldowns: ledger,
		}),
		Planner:      scheduler.NewPlanner(placement.New(placement.Config{}), ledger),
		ScheduleTick: 2 * time.Second,
	})
	r, err := region.New(region.Config{
		ID:                "r1",
		Graph:             diamondGraph(t),
		Registry:          diamondRegistry(),
		Scheme:            ft.MSScheme,
		Phones:            7,
		Clock:             clk,
		WiFi:              simnet.WiFiConfig{BitsPerSecond: 100e6},
		Cell:              cell,
		ControllerID:      ctrl.ID(),
		Broadcast:         broadcast.Config{BlockSize: 1024},
		PreserveBroadcast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()
	t.Cleanup(func() {
		r.Stop()
		ctrl.Stop()
	})
	h := &harness{clk: clk, cell: cell, ctrl: ctrl, r: r}
	h.ingest(10)
	if got := h.waitCount(t, 10, 10*time.Second); got != 10 {
		t.Fatalf("outputs = %d, want 10", got)
	}

	victim, _ := r.Placement("n3")
	r.Phone(victim).Revive(0.08)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if pid, _ := r.Placement("n3"); pid != victim {
			break
		}
		h.ingest(1)
		time.Sleep(5 * time.Millisecond)
	}
	if pid, _ := r.Placement("n3"); pid == victim {
		t.Fatalf("greedy fallback never evacuated n3 off %s", victim)
	}
	if committed, aborted := ctrl.PlanStats("r1"); committed != 0 || aborted != 0 {
		t.Fatalf("planner ran on single-channel topology: committed=%d aborted=%d", committed, aborted)
	}
}
