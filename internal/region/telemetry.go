package region

import (
	"sort"
	"time"

	"mobistreams/internal/node"
	"mobistreams/internal/phone"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
)

// telePoint is one phone's previous telemetry poll, differentiated into
// drain and tuple rates on the next poll.
type telePoint struct {
	at        time.Duration
	energy    float64
	processed uint64
}

// Telemetry snapshots the region for the placement scheduler: per-phone
// battery joules and observed drain rate, queue backlog and tuple rate from
// the node runtime, the medium's bandwidth, and the GPS position/velocity
// the departure predictor extrapolates. Failed and departed phones are
// excluded — they are the reactive path's problem, not the scheduler's.
func (r *Region) Telemetry() scheduler.RegionStats {
	now := r.clk.Now()

	r.mu.Lock()
	type entry struct {
		id    simnet.NodeID
		slots []string
		idle  bool
		n     *node.Node
		ph    *phone.Phone
	}
	entries := make([]entry, 0, len(r.phones))
	idle := make(map[simnet.NodeID]bool, len(r.idle))
	for _, id := range r.idle {
		idle[id] = true
	}
	slotsOn := make(map[simnet.NodeID][]string)
	for s, p := range r.placement {
		slotsOn[p] = append(slotsOn[p], s)
	}
	for id := range r.phones {
		if r.failed[id] || r.departed[id] {
			continue
		}
		entries = append(entries, entry{
			id: id, slots: slotsOn[id], idle: idle[id],
			n: r.nodes[id], ph: r.phones[id],
		})
	}
	rs := scheduler.RegionStats{
		Region:  r.cfg.ID,
		Now:     now,
		Centre:  r.cfg.Centre,
		RadiusM: r.cfg.RadiusM,
	}
	radioBps := r.wifi.Config().BitsPerSecond
	r.mu.Unlock()

	r.teleMu.Lock()
	defer r.teleMu.Unlock()
	seen := make(map[simnet.NodeID]bool, len(entries))
	for _, e := range entries {
		seen[e.id] = true
		ph := e.ph
		st := scheduler.PhoneStat{
			ID:              e.id,
			Slots:           append([]string(nil), e.slots...),
			Idle:            e.idle,
			BatteryJoules:   ph.EnergyJoules(),
			BatteryFraction: ph.BatteryFraction(),
			RadioBps:        radioBps,
			Position:        ph.Position(),
		}
		sort.Strings(st.Slots)
		st.VelX, st.VelY = ph.Velocity()
		var processed uint64
		if e.n != nil {
			st.Backlog = e.n.Backlog()
			processed = e.n.Processed()
		}
		if prev, ok := r.telePrev[e.id]; ok && now > prev.at {
			dt := (now - prev.at).Seconds()
			if drained := prev.energy - st.BatteryJoules; drained > 0 {
				st.DrainWatts = drained / dt
			}
			if processed > prev.processed {
				st.TupleRate = float64(processed-prev.processed) / dt
			}
		}
		r.telePrev[e.id] = telePoint{at: now, energy: st.BatteryJoules, processed: processed}
		rs.Phones = append(rs.Phones, st)
	}
	for id := range r.telePrev {
		if !seen[id] {
			delete(r.telePrev, id)
		}
	}
	sort.Slice(rs.Phones, func(i, j int) bool { return rs.Phones[i].ID < rs.Phones[j].ID })
	return rs
}
