package region_test

import (
	"sync"
	"testing"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/controller"
	"mobistreams/internal/ft"
	"mobistreams/internal/region"
	"mobistreams/internal/simnet"
	"mobistreams/internal/wire"
)

// TestControllerFederationSink: with a sink configured, the controller
// publishes a region rollup each schedule tick — epochs increase, the
// population matches, and the controller needs no scheduler for it.
func TestControllerFederationSink(t *testing.T) {
	speedup := 2000.0
	if raceEnabled {
		speedup = 300
	}
	clk := clock.NewScaled(speedup)
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   8e6,
		DownBitsPerSecond: 8e6,
	})
	var mu sync.Mutex
	var rollups []wire.Rollup
	ctrl := controller.New(controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: time.Hour,
		ScheduleTick:     5 * time.Second,
		FederationSink: func(ru wire.Rollup) {
			mu.Lock()
			rollups = append(rollups, ru)
			mu.Unlock()
		},
	})
	r, err := region.New(region.Config{
		ID:           "r1",
		Graph:        diamondGraph(t),
		Registry:     diamondRegistry(),
		Scheme:       ft.MSScheme,
		Phones:       6,
		Clock:        clk,
		WiFi:         simnet.WiFiConfig{BitsPerSecond: 100e6},
		Cell:         cell,
		ControllerID: ctrl.ID(),
		Broadcast:    broadcast.Config{BlockSize: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()
	t.Cleanup(func() {
		r.Stop()
		ctrl.Stop()
	})

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(rollups)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d rollups published within deadline", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, ru := range rollups[:2] {
		if ru.Region != "r1" {
			t.Fatalf("rollup %d region = %q", i, ru.Region)
		}
		if ru.Phones != 6 {
			t.Fatalf("rollup %d phones = %d, want 6", i, ru.Phones)
		}
		if ru.Epoch != uint64(i+1) {
			t.Fatalf("rollup %d epoch = %d, want %d", i, ru.Epoch, i+1)
		}
	}
}
