package region

import (
	"mobistreams/internal/scheduler"
	"mobistreams/internal/wire"
)

// lowBatteryFraction is the battery level below which a phone counts
// toward the rollup's risk figure. It mirrors the scheduler's default
// LowFraction, so a region's published risk matches what its own
// placement loop would act on.
const lowBatteryFraction = 0.10

// RollupFromStats folds one telemetry snapshot into the federation's
// compact rollup frame. It is a pure function so the controller can reuse
// the telemetry poll its scheduling tick already paid for.
func RollupFromStats(rs scheduler.RegionStats, epoch uint64) wire.Rollup {
	ru := wire.Rollup{Region: rs.Region, Epoch: epoch, Phones: len(rs.Phones)}
	for i := range rs.Phones {
		p := &rs.Phones[i]
		if p.Idle {
			ru.Idle++
		}
		ru.Backlog += p.Backlog
		if p.BatteryFraction < lowBatteryFraction {
			ru.BatteryRisk++
		}
	}
	return ru
}

// Rollup snapshots the region into the federation's summary frame: a few
// dozen bytes standing in for per-phone telemetry that never leaves the
// region — the compression that keeps backhaul control traffic flat as
// the federation grows.
func (r *Region) Rollup(epoch uint64) wire.Rollup {
	ru := RollupFromStats(r.Telemetry(), epoch)
	ru.OutTuples = r.Outputs()
	return ru
}

// Outputs reports how many deduplicated sink results the region has
// published.
func (r *Region) Outputs() uint64 {
	r.outMu.Lock()
	defer r.outMu.Unlock()
	var n uint64
	for _, seen := range r.seenOutput {
		n += uint64(len(seen))
	}
	return n
}
