package region_test

import (
	"fmt"
	"testing"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/controller"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/operator"
	"mobistreams/internal/region"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
)

// keyedGraph is the elastic pipeline: SRC -> KB (key tag) -> tally (keyed
// group, 2 of 3 instances initially active) -> SINK.
func keyedGraph(t testing.TB) *graph.Graph {
	t.Helper()
	var b graph.Builder
	b.AddOperator("SRC", "s1").AddOperator("KB", "s2").AddOperator("SINK", "s9")
	b.AddKeyedOperator("tally", "kt", 2, 3)
	b.Connect("SRC", "KB")
	b.ConnectToGroup("KB", "tally")
	b.ConnectFromGroup("tally", "SINK")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func keyedRegistry() operator.Registry {
	reg := operator.Registry{
		"SRC": func() operator.Operator { return operator.NewPassthrough("SRC") },
		"KB": func() operator.Operator {
			return operator.NewKeyTag("KB", func(t *tuple.Tuple) string { return t.Kind })
		},
		"SINK": func() operator.Operator { return operator.NewPassthrough("SINK") },
	}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("tally#%d", i)
		reg[id] = func() operator.Operator { return operator.NewKeyedTally(id) }
	}
	return reg
}

type keyedHarness struct {
	clk  *clock.Scaled
	ctrl *controller.Controller
	r    *region.Region
	seq  int
}

func newKeyedHarness(t testing.TB) *keyedHarness {
	t.Helper()
	speedup := 2000.0
	if raceEnabled {
		speedup = 300
	}
	clk := clock.NewScaled(speedup)
	cell := simnet.NewCellular(clk, simnet.CellularConfig{
		UpBitsPerSecond:   8e6,
		DownBitsPerSecond: 8e6,
	})
	ctrl := controller.New(controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: time.Hour,
		PingInterval:     30 * time.Second,
		PingTimeout:      10 * time.Second,
		DebounceWindow:   2 * time.Second,
	})
	r, err := region.New(region.Config{
		ID:           "r1",
		Graph:        keyedGraph(t),
		Registry:     keyedRegistry(),
		Scheme:       ft.MSScheme,
		Phones:       8,
		Clock:        clk,
		WiFi:         simnet.WiFiConfig{BitsPerSecond: 100e6},
		Cell:         cell,
		ControllerID: ctrl.ID(),
		Broadcast:    broadcast.Config{BlockSize: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Keys are lowercase letters; the default even-byte split would park
	// them all on instance 0, so seed a bound inside the alphabet.
	if err := r.SeedKeyRanges("tally", []string{"n"}); err != nil {
		t.Fatal(err)
	}
	ctrl.AddRegion(r)
	r.Start()
	ctrl.Start()
	t.Cleanup(func() {
		r.Stop()
		ctrl.Stop()
	})
	return &keyedHarness{clk: clk, ctrl: ctrl, r: r}
}

// keyedKeys is the test keyspace: 20 single-letter keys straddling the
// seeded bound "n".
func keyedKeys() []string {
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = string(rune('a' + i))
	}
	return keys
}

// ingestRound pushes two tuples per key.
func (h *keyedHarness) ingestRound() {
	for round := 0; round < 2; round++ {
		for _, k := range keyedKeys() {
			h.seq++
			h.r.Ingest("SRC", fmt.Sprintf("v%d", h.seq), 512, k)
		}
	}
}

func (h *keyedHarness) waitCount(t testing.TB, want int64, wall time.Duration) int64 {
	t.Helper()
	deadline := time.Now().Add(wall)
	for time.Now().Before(deadline) {
		if got := h.r.Throughput.Count(); got >= want {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
	return h.r.Throughput.Count()
}

// tally returns instance i's live KeyedTally.
func (h *keyedHarness) tally(t testing.TB, i int) *operator.KeyedTally {
	t.Helper()
	slot := fmt.Sprintf("kt#%d", i)
	pid, ok := h.r.Placement(slot)
	if !ok {
		t.Fatalf("no placement for %s", slot)
	}
	op := h.r.Node(pid).OperatorByID(fmt.Sprintf("tally#%d", i))
	kt, ok := op.(*operator.KeyedTally)
	if !ok {
		t.Fatalf("instance %d: operator %T is not a KeyedTally", i, op)
	}
	return kt
}

// checkTotals asserts every key's count, summed across all instances,
// equals want, and that the count is resident at the table's owner.
func (h *keyedHarness) checkTotals(t testing.TB, want uint64) {
	t.Helper()
	grp, ok := h.r.KeyedGroup("tally")
	if !ok {
		t.Fatal("no keyed group")
	}
	tallies := []*operator.KeyedTally{h.tally(t, 0), h.tally(t, 1), h.tally(t, 2)}
	for _, k := range keyedKeys() {
		var total uint64
		for _, kt := range tallies {
			total += kt.Count(k)
		}
		if total != want {
			t.Fatalf("key %q: total count = %d, want %d", k, total, want)
		}
		owner := grp.Owner(k)
		if got := tallies[owner].Count(k); got == 0 {
			t.Fatalf("key %q: owner %d holds no count", k, owner)
		}
	}
}

// TestKeyedRoutingSplitMergeLive drives the full elastic lifecycle under
// live traffic: keyed routing across two active instances, a median split
// handing half of instance 0's keys (state included) to the dormant
// instance 2, and a merge draining instance 2 back — with per-key tallies
// and output exactly-once checked at every stage.
func TestKeyedRoutingSplitMergeLive(t *testing.T) {
	h := newKeyedHarness(t)
	h.ingestRound()
	if got := h.waitCount(t, 40, 10*time.Second); got != 40 {
		t.Fatalf("outputs = %d, want 40", got)
	}
	h.checkTotals(t, 2)

	grp, _ := h.r.KeyedGroup("tally")
	if insts := grp.Table().Instances(); len(insts) != 2 {
		t.Fatalf("active instances = %v, want 2", insts)
	}
	if err := h.r.SplitInstance("tally", 0, 2); err != nil {
		t.Fatalf("split: %v", err)
	}
	if insts := grp.Table().Instances(); len(insts) != 3 {
		t.Fatalf("post-split active instances = %v, want 3", insts)
	}

	h.ingestRound()
	if got := h.waitCount(t, 80, 10*time.Second); got != 80 {
		t.Fatalf("post-split outputs = %d, want 80", got)
	}
	h.checkTotals(t, 4)

	if err := h.r.MergeKeyRange("tally", 2, 0); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if insts := grp.Table().Instances(); len(insts) != 2 {
		t.Fatalf("post-merge active instances = %v, want 2", insts)
	}

	h.ingestRound()
	if got := h.waitCount(t, 120, 10*time.Second); got != 120 {
		t.Fatalf("post-merge outputs = %d, want 120", got)
	}
	h.checkTotals(t, 6)
	if d := h.r.DuplicateOutputs(); d != 0 {
		t.Fatalf("duplicates = %d", d)
	}
}

// ingestBackground streams two rounds from a goroutine so an elastic
// operation can interleave with live traffic; the caller must receive from
// the returned channel before touching h.seq again.
func (h *keyedHarness) ingestBackground() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			h.ingestRound()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	return done
}

func (h *keyedHarness) waitCommitted(t testing.TB, v uint64, wall time.Duration) {
	t.Helper()
	deadline := time.Now().Add(wall)
	for time.Now().Before(deadline) {
		if h.ctrl.Committed("r1") >= v {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("checkpoint v%d never committed", v)
}

// TestKeyedSplitDuringCheckpointExactlyOnce interleaves a live key-range
// split with an in-flight token checkpoint and streaming traffic: the
// checkpoint must still commit, every tuple must count exactly once at the
// table's owner, and the sink must see zero duplicates.
func TestKeyedSplitDuringCheckpointExactlyOnce(t *testing.T) {
	h := newKeyedHarness(t)
	h.ingestRound()
	if got := h.waitCount(t, 40, 10*time.Second); got != 40 {
		t.Fatalf("outputs = %d, want 40", got)
	}
	h.checkTotals(t, 2)

	done := h.ingestBackground()
	v := h.ctrl.TriggerCheckpoint("r1")
	if err := h.r.SplitInstance("tally", 0, 2); err != nil {
		t.Fatalf("split during checkpoint: %v", err)
	}
	<-done
	h.waitCommitted(t, v, 15*time.Second)

	if got := h.waitCount(t, 120, 30*time.Second); got != 120 {
		t.Fatalf("outputs = %d, want exactly 120 (no loss)", got)
	}
	h.checkTotals(t, 6)
	if d := h.r.DuplicateOutputs(); d != 0 {
		t.Fatalf("duplicates = %d", d)
	}
	grp, _ := h.r.KeyedGroup("tally")
	if insts := grp.Table().Instances(); len(insts) != 3 {
		t.Fatalf("post-split active instances = %v, want 3", insts)
	}
}

// TestKeyedMergeDuringMigrationExactlyOnce interleaves a merge (instance 1
// drains into 0) with a planned live migration of the upstream KeyBy slot
// and streaming traffic. Both control operations must land and the data
// plane must stay exactly-once throughout.
func TestKeyedMergeDuringMigrationExactlyOnce(t *testing.T) {
	h := newKeyedHarness(t)
	h.ingestRound()
	if got := h.waitCount(t, 40, 10*time.Second); got != 40 {
		t.Fatalf("outputs = %d, want 40", got)
	}
	h.checkTotals(t, 2)

	done := h.ingestBackground()
	migrated := h.ctrl.Migrate("r1", "s2", "r1/p7")
	err := h.r.MergeKeyRange("tally", 1, 0)
	<-done
	if !migrated {
		t.Fatal("migration s2 -> p6 failed")
	}
	if err != nil {
		t.Fatalf("merge during migration: %v", err)
	}

	if got := h.waitCount(t, 120, 30*time.Second); got != 120 {
		t.Fatalf("outputs = %d, want exactly 120 (no loss)", got)
	}
	h.checkTotals(t, 6)
	if d := h.r.DuplicateOutputs(); d != 0 {
		t.Fatalf("duplicates = %d", d)
	}
	if pid, _ := h.r.Placement("s2"); pid != "r1/p7" {
		t.Fatalf("s2 on %s, want r1/p7", pid)
	}
	grp, _ := h.r.KeyedGroup("tally")
	if insts := grp.Table().Instances(); len(insts) != 1 || insts[0] != 0 {
		t.Fatalf("post-merge active instances = %v, want [0]", insts)
	}
}
