// Package region implements one region's cluster runtime (Fig. 4, low
// level): the phones in WiFi range, the placement of slots onto phones, the
// per-region metrics, and the fault hooks (failure, departure) that the
// controller reacts to.
package region

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/keyed"
	"mobistreams/internal/metrics"
	"mobistreams/internal/node"
	"mobistreams/internal/obs"
	"mobistreams/internal/operator"
	"mobistreams/internal/phone"
	"mobistreams/internal/simnet"
	"mobistreams/internal/storage"
	"mobistreams/internal/tuple"
)

// Config assembles a region.
type Config struct {
	// ID names the region ("bus-stop-1").
	ID string
	// Graph is the query network computed in this region.
	Graph *graph.Graph
	// Registry builds the graph's operators ("the code" the controller
	// ships to phones).
	Registry operator.Registry
	// Scheme is the fault-tolerance scheme.
	Scheme ft.Scheme
	// Phones is the number of phones in the region; must cover the
	// graph's slots (plus one per slot for rep-2 standbys).
	Phones int
	Clock  clock.Clock
	// WiFi configures the region's shared medium.
	WiFi simnet.WiFiConfig
	// Cell is the (shared) cellular network; may be nil for isolated
	// single-region tests.
	Cell         *simnet.Cellular
	ControllerID simnet.NodeID
	PhoneCfg     phone.Config
	Broadcast    broadcast.Config
	// PreserveBroadcast replicates source logs region-wide (MobiStreams).
	PreserveBroadcast bool
	// Centre and RadiusM describe the region's WiFi coverage disc for the
	// scheduler's departure prediction; RadiusM 0 disables it.
	Centre  phone.Position
	RadiusM float64
	// Batch bounds edge-level tuple batching on every node's emission
	// path; the zero value enables batching with defaults.
	//
	// Deprecated: prefer QoS, which consolidates the batching knobs behind
	// a latency budget. Batch remains supported; non-zero QoS fields
	// override it field-by-field.
	Batch node.BatchConfig
	// QoS consolidates output-path quality-of-service: an end-to-end
	// latency budget driving adaptive batch-flush deadlines, plus batch
	// size bounds. The zero value leaves legacy Batch behavior untouched.
	QoS node.QoS
	// Checkpoint configures every node's snapshot pipeline (the zero
	// value is incremental-async with default chain/copy parameters).
	Checkpoint node.CheckpointConfig
	// NoRouteCache makes every node consult the placement resolver on
	// each send instead of the epoch-stamped route cache (the pre-cache
	// data plane, kept for benchmarks and regression comparison).
	NoRouteCache bool
	// OnSinkOutput publishes deduplicated sink results beyond the region
	// (inter-region cascading); may be nil.
	OnSinkOutput func(publisher simnet.NodeID, t *tuple.Tuple)
	// Obs is the shared observability registry (histograms, tracer,
	// journal). Nil makes the region create its own: per-operator and
	// per-edge histograms are always on; tracing stays off until
	// Obs().Tracer.SetSampleEvery enables it.
	Obs  *obs.Registry
	Logf func(string, ...interface{})
}

// Region is a running cluster of phones.
type Region struct {
	cfg  Config
	clk  clock.Clock
	wifi *simnet.WiFi
	obs  *obs.Registry
	logf func(string, ...interface{})

	// placeEpoch counts placement/standby changes: every repoint bumps
	// it, invalidating the nodes' route caches and this region's ingest
	// snapshot. Read lock-free on every cached resolution.
	placeEpoch uint64
	// ingest is the epoch-stamped source-dispatch snapshot Ingest reads
	// lock-free on the steady-state path.
	ingest atomic.Pointer[ingestSnapshot]
	// stopping mirrors `stopped` for the lock-free ingest path.
	stopping atomic.Bool

	// keyed maps each logical keyed operator to its shared elastic group
	// (instance IDs + live partition table). The map is immutable after
	// New; the groups themselves are concurrency-safe. Every node hosting
	// the graph shares these pointers, so installing a successor table
	// flips routing everywhere at once.
	keyed map[string]*keyed.Group
	// splitMu serialises split/merge reconfigurations per region.
	splitMu sync.Mutex

	mu sync.Mutex
	// phones are physical devices, keyed by phone ID. nodes/endpoints/
	// stores are keyed by endpoint ID: a phone's primary endpoint shares
	// the phone's ID, while a rep-2 standby on that phone gets its own
	// endpoint identity (standbyKey) so the two inboxes never race.
	phones       map[simnet.NodeID]*phone.Phone
	nodes        map[simnet.NodeID]*node.Node
	stores       map[simnet.NodeID]*storage.Store
	endpoints    map[simnet.NodeID]*simnet.Endpoint
	placement    map[string]simnet.NodeID // slot -> endpoint ID
	standby      map[string]simnet.NodeID // slot -> standby endpoint ID
	standbyPhone map[string]simnet.NodeID // slot -> standby's phone ID
	idle         []simnet.NodeID
	departed     map[simnet.NodeID]bool
	failed       map[simnet.NodeID]bool
	srcSeq       map[string]*uint64
	started      bool
	stopped      bool
	joined       int // phones recruited after construction (ID allocation)
	migrations   int64
	// domainDeparts counts phones lost (departed or failed) per WiFi
	// channel domain — the placement forecaster's Poisson departure-rate
	// input. Sized on first use to the medium's channel count.
	domainDeparts []int64

	// teleMu guards the previous-poll energy/processed readings the
	// telemetry collector differentiates into drain and tuple rates.
	teleMu   sync.Mutex
	telePrev map[simnet.NodeID]telePoint
	// keyedPrev holds the previous per-instance processed counts the keyed
	// telemetry differentiates into tuple rates (guarded by teleMu).
	keyedPrev map[string]telePoint

	outMu      sync.Mutex
	seenOutput map[string]map[uint64]bool
	Latency    metrics.Latency
	Throughput metrics.Throughput
	batchStats metrics.BatchSizes
	ckptStats  metrics.CheckpointStats
	duplicates int64
}

// New builds a region: phones p1..pN, slots placed in sorted order onto the
// first phones, rep-2 standbys rotated one phone ahead, the rest idle.
func New(cfg Config) (*Region, error) {
	slots := cfg.Graph.Slots()
	need := len(slots)
	if cfg.Scheme.Replicated() && cfg.Phones < need {
		return nil, fmt.Errorf("region %s: rep-2 needs at least %d phones", cfg.ID, need)
	}
	if cfg.Phones < need {
		return nil, fmt.Errorf("region %s: %d phones cannot host %d slots", cfg.ID, cfg.Phones, need)
	}
	// Surface registry wiring bugs (missing factory, wrong ID, no
	// processing contract) here as errors instead of panics at placement
	// or recovery time.
	if err := cfg.Registry.Validate(cfg.Graph.Operators()); err != nil {
		return nil, fmt.Errorf("region %s: %w", cfg.ID, err)
	}
	r := &Region{
		cfg:          cfg,
		clk:          cfg.Clock,
		wifi:         simnet.NewWiFi(cfg.Clock, cfg.WiFi),
		phones:       make(map[simnet.NodeID]*phone.Phone),
		nodes:        make(map[simnet.NodeID]*node.Node),
		stores:       make(map[simnet.NodeID]*storage.Store),
		endpoints:    make(map[simnet.NodeID]*simnet.Endpoint),
		placement:    make(map[string]simnet.NodeID),
		standby:      make(map[string]simnet.NodeID),
		standbyPhone: make(map[string]simnet.NodeID),
		departed:     make(map[simnet.NodeID]bool),
		failed:       make(map[simnet.NodeID]bool),
		srcSeq:       make(map[string]*uint64),
		seenOutput:   make(map[string]map[uint64]bool),
		telePrev:     make(map[simnet.NodeID]telePoint),
		keyedPrev:    make(map[string]telePoint),
		keyed:        make(map[string]*keyed.Group),
	}
	for _, gs := range cfg.Graph.KeyedGroups() {
		grp, err := defaultKeyedGroup(gs)
		if err != nil {
			return nil, fmt.Errorf("region %s: %w", cfg.ID, err)
		}
		r.keyed[gs.Logical] = grp
	}
	r.logf = cfg.Logf
	if r.logf == nil {
		r.logf = func(string, ...interface{}) {}
	}
	r.obs = cfg.Obs
	if r.obs == nil {
		r.obs = obs.NewRegistry()
	}
	for _, src := range cfg.Graph.Sources() {
		var z uint64
		r.srcSeq[src] = &z
	}

	ids := make([]simnet.NodeID, cfg.Phones)
	for i := range ids {
		ids[i] = simnet.NodeID(fmt.Sprintf("%s/p%d", cfg.ID, i+1))
	}
	for i, slot := range slots {
		r.placement[slot] = ids[i]
		if cfg.Scheme.Replicated() {
			sbPhone := ids[(i+1)%cfg.Phones]
			r.standbyPhone[slot] = sbPhone
			r.standby[slot] = simnet.NodeID(standbyKey(sbPhone, slot))
		}
	}
	hosted := make(map[simnet.NodeID]bool)
	for _, p := range r.placement {
		hosted[p] = true
	}
	for _, p := range r.standbyPhone {
		hosted[p] = true
	}
	for _, id := range ids {
		if !hosted[id] {
			r.idle = append(r.idle, id)
		}
	}

	for _, id := range ids {
		ph := phone.New(id, cfg.PhoneCfg)
		ep := simnet.NewEndpoint(id, 1<<14)
		st := storage.New()
		r.phones[id] = ph
		r.endpoints[id] = ep
		r.stores[id] = st
		r.wifi.Join(ep)
		if cfg.Cell != nil {
			cfg.Cell.Attach(ep)
		}
	}
	// Build nodes: primaries, standbys, idles. A phone hosting both a
	// primary and a standby runs two node objects that contend for the
	// same physical phone's CPU and battery, each with its own endpoint.
	for _, slot := range slots {
		pid := r.placement[slot]
		r.nodes[pid] = r.buildNode(pid, slot, node.RolePrimary)
	}
	if cfg.Scheme.Replicated() {
		for _, slot := range slots {
			r.buildStandby(slot)
		}
	}
	for _, id := range r.idle {
		r.nodes[id] = r.buildNode(id, "", node.RoleIdle)
	}
	return r, nil
}

func standbyKey(phoneID simnet.NodeID, slot string) string {
	return string(phoneID) + "#sb#" + slot
}

// buildNode constructs the node runtime for a phone hosting slot (or idle).
func (r *Region) buildNode(id simnet.NodeID, slot string, role node.Role) *node.Node {
	var opIDs []string
	if slot != "" {
		opIDs = r.cfg.Graph.OpsOnSlot(slot)
	}
	return node.New(node.Config{
		Phone:             r.phones[id],
		Slot:              slot,
		Role:              role,
		Registry:          r.cfg.Registry,
		OpIDs:             opIDs,
		Graph:             r.cfg.Graph,
		Scheme:            r.cfg.Scheme,
		Clock:             r.clk,
		WiFi:              r.wifi,
		Cell:              r.cfg.Cell,
		Endpoint:          r.endpoints[id],
		Store:             r.stores[id],
		Resolver:          (*resolver)(r),
		NoRouteCache:      r.cfg.NoRouteCache,
		ControllerID:      r.cfg.ControllerID,
		Peers:             func() []simnet.NodeID { return r.LivePeers(id) },
		DistPeers:         r.distPeersFor(slot),
		Broadcast:         r.cfg.Broadcast,
		PreserveBroadcast: r.cfg.PreserveBroadcast,
		Batch:             r.cfg.Batch,
		QoS:               r.cfg.QoS,
		Keyed:             r.keyed,
		BatchStats:        &r.batchStats,
		Checkpoint:        r.cfg.Checkpoint,
		CkptStats:         &r.ckptStats,
		Obs:               r.obs,
		OnSinkOutput:      func(t *tuple.Tuple) { r.onSink(id, t) },
		OnIngest:          func(srcOp string, v interface{}, size int, kind string) { r.Ingest(srcOp, v, size, kind) },
		Logf:              r.logf,
	})
}

// buildStandby constructs a rep-2 standby node for a slot. It runs on the
// standby phone (sharing its CPU and battery) but has its own endpoint
// identity, so replication traffic is addressed to it directly.
func (r *Region) buildStandby(slot string) {
	sbPhone := r.standbyPhone[slot]
	sbID := r.standby[slot]
	ep := simnet.NewEndpoint(sbID, 1<<14)
	st := storage.New()
	r.endpoints[sbID] = ep
	r.stores[sbID] = st
	r.wifi.Join(ep)
	if r.cfg.Cell != nil {
		r.cfg.Cell.Attach(ep)
	}
	// The node's network identity matches its endpoint; the physical
	// device (battery, CPU) is the standby phone's.
	n := node.New(node.Config{
		ID:           sbID,
		Phone:        r.phones[sbPhone],
		Slot:         slot,
		Role:         node.RoleStandby,
		Registry:     r.cfg.Registry,
		OpIDs:        r.cfg.Graph.OpsOnSlot(slot),
		Graph:        r.cfg.Graph,
		Scheme:       r.cfg.Scheme,
		Clock:        r.clk,
		WiFi:         r.wifi,
		Cell:         r.cfg.Cell,
		Endpoint:     ep,
		Store:        st,
		Resolver:     (*resolver)(r),
		NoRouteCache: r.cfg.NoRouteCache,
		ControllerID: r.cfg.ControllerID,
		Batch:        r.cfg.Batch,
		QoS:          r.cfg.QoS,
		Keyed:        r.keyed,
		BatchStats:   &r.batchStats,
		Obs:          r.obs,
		OnSinkOutput: func(t *tuple.Tuple) { r.onSink(sbID, t) },
		Logf:         r.logf,
	})
	r.nodes[sbID] = n
}

// resolver adapts the region's placement maps to the node.EpochResolver
// interface: nodes cache resolutions per slot and invalidate on epoch
// bumps, so the region mutex leaves the per-tuple path.
type resolver Region

// Primary implements node.Resolver.
func (rs *resolver) Primary(slot string) (simnet.NodeID, bool) {
	r := (*Region)(rs)
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.placement[slot]
	return id, ok
}

// Standby implements node.Resolver.
func (rs *resolver) Standby(slot string) (simnet.NodeID, bool) {
	r := (*Region)(rs)
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.standby[slot]
	return id, ok
}

// Epoch implements node.EpochResolver.
func (rs *resolver) Epoch() uint64 {
	return atomic.LoadUint64(&(*Region)(rs).placeEpoch)
}

// bumpEpoch invalidates every cached resolution after a placement or
// standby change.
func (r *Region) bumpEpoch() { atomic.AddUint64(&r.placeEpoch, 1) }

// distPeersFor assigns the n unicast persistence targets for a slot under
// dist-n: the next n phones in ring order.
func (r *Region) distPeersFor(slot string) []simnet.NodeID {
	if r.cfg.Scheme.Kind != ft.DistN || slot == "" {
		return nil
	}
	slots := r.cfg.Graph.Slots()
	idx := sort.SearchStrings(slots, slot)
	var ids []simnet.NodeID
	all := r.allPhoneIDs()
	self := r.placement[slot]
	for i := 1; len(ids) < r.cfg.Scheme.N && i <= len(all); i++ {
		cand := all[(idx+i)%len(all)]
		if cand != self {
			ids = append(ids, cand)
		}
	}
	return ids
}

func (r *Region) allPhoneIDs() []simnet.NodeID {
	ids := make([]simnet.NodeID, 0, len(r.phones))
	for id := range r.phones {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Start launches every node.
func (r *Region) Start() {
	r.mu.Lock()
	r.started = true
	nodes := make([]*node.Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.mu.Unlock()
	for _, n := range nodes {
		n.Start()
	}
	r.Throughput.Start(r.clk.Now())
}

// Stop shuts all nodes down.
func (r *Region) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.stopping.Store(true)
	nodes := make([]*node.Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.mu.Unlock()
	for _, n := range nodes {
		if !n.Failed() {
			n.Stop()
		}
	}
	if drops := r.InboxDrops(); drops > 0 {
		r.jot("inbox.drops", "", uint64(drops), "")
	}
}

// Obs exposes the region's observability registry: always-on operator and
// edge histograms, the sampling tracer and the lifecycle journal.
func (r *Region) Obs() *obs.Registry { return r.obs }

// Jot appends one lifecycle event to the region's journal on behalf of an
// external coordinator — the controller uses it to surface placement-plan
// lifecycle (plan.propose / plan.step / plan.commit / plan.abort).
func (r *Region) Jot(kind, slot string, version uint64, detail string) {
	r.jot(kind, slot, version, detail)
}

// jot appends one lifecycle event to the region's journal.
func (r *Region) jot(kind, slot string, version uint64, detail string) {
	r.obs.Journal.Emit(obs.Event{
		At:      int64(r.clk.Now()),
		Kind:    kind,
		Node:    r.cfg.ID,
		Slot:    slot,
		Version: version,
		Detail:  detail,
	})
}

// ingestSnapshot is the epoch-stamped dispatch table Ingest reads without
// taking the region mutex: per source operator, its sequence counter (the
// same allocation across epochs, advanced atomically) and the node
// currently hosting its slot.
type ingestSnapshot struct {
	epoch   uint64
	targets map[string]ingestTarget
}

type ingestTarget struct {
	seq  *uint64
	node *node.Node
}

// ingestTargetFor resolves the snapshot entry for a source, rebuilding the
// snapshot under the mutex when the placement epoch moved.
func (r *Region) ingestTargetFor(srcOp string) (ingestTarget, bool) {
	epoch := atomic.LoadUint64(&r.placeEpoch)
	if snap := r.ingest.Load(); snap != nil && snap.epoch == epoch {
		tg, ok := snap.targets[srcOp]
		return tg, ok
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Re-read the epoch under the mutex: placement writes bump it inside
	// the same critical section, so the rebuilt snapshot is stamped with
	// exactly the epoch of the maps it copies.
	epoch = atomic.LoadUint64(&r.placeEpoch)
	snap := &ingestSnapshot{epoch: epoch, targets: make(map[string]ingestTarget, len(r.srcSeq))}
	for src, seqp := range r.srcSeq {
		slot := r.cfg.Graph.SlotOf(src)
		pid, placed := r.placement[slot]
		if !placed {
			continue
		}
		if n := r.nodes[pid]; n != nil {
			snap.targets[src] = ingestTarget{seq: seqp, node: n}
		}
	}
	r.ingest.Store(snap)
	tg, ok := snap.targets[srcOp]
	return tg, ok
}

// Ingest admits one external tuple at the named source operator, assigning
// its per-source sequence number and timestamp. The workload driver and the
// inter-region path both enter here. The steady-state path is lock-free:
// the dispatch table is cached per placement epoch and sequence numbers
// advance atomically, so concurrent sources do not serialise on the region
// mutex.
func (r *Region) Ingest(srcOp string, value interface{}, size int, kind string) {
	if r.stopping.Load() {
		return
	}
	tg, ok := r.ingestTargetFor(srcOp)
	if !ok || tg.node == nil {
		return
	}
	t := &tuple.Tuple{
		Seq:     atomic.AddUint64(tg.seq, 1),
		Source:  srcOp,
		Kind:    kind,
		Created: r.clk.Now(),
		Size:    size,
		Value:   value,
	}
	// Seq is already assigned, so the sampling decision keys on seq-1:
	// sample-every-1 traces the very first tuple on both backends.
	if tc, ok := r.obs.Tracer.Sample(t.Seq - 1); ok {
		r.obs.Tracer.Record(&tc, obs.SpanIngest, "region", "", srcOp, int64(r.clk.Now()))
		tg.node.IngestExternalTraced(srcOp, t, tc)
		return
	}
	tg.node.IngestExternal(srcOp, t)
}

// onSink receives one published sink result: deduplicate (recovery replays
// and rep-2 failovers can duplicate), record metrics, cascade onward.
func (r *Region) onSink(publisher simnet.NodeID, t *tuple.Tuple) {
	r.outMu.Lock()
	seen, ok := r.seenOutput[t.Source]
	if !ok {
		seen = make(map[uint64]bool)
		r.seenOutput[t.Source] = seen
	}
	if seen[t.Seq] {
		r.duplicates++
		r.outMu.Unlock()
		return
	}
	seen[t.Seq] = true
	r.outMu.Unlock()
	now := r.clk.Now()
	r.Latency.Add(now - t.Created)
	r.Throughput.Tick(now)
	if r.cfg.OnSinkOutput != nil {
		r.cfg.OnSinkOutput(publisher, t)
	}
}

// DuplicateOutputs reports how many duplicate sink results were suppressed.
func (r *Region) DuplicateOutputs() int64 {
	r.outMu.Lock()
	defer r.outMu.Unlock()
	return r.duplicates
}

// WiFi exposes the region's medium (byte counters for Fig. 10b).
func (r *Region) WiFi() *simnet.WiFi { return r.wifi }

// Graph returns the region's query network.
func (r *Region) Graph() *graph.Graph { return r.cfg.Graph }

// Scheme returns the region's fault-tolerance scheme.
func (r *Region) Scheme() ft.Scheme { return r.cfg.Scheme }

// ID returns the region name.
func (r *Region) ID() string { return r.cfg.ID }

// Node returns the node object currently hosting a phone ID.
func (r *Region) Node(id simnet.NodeID) *node.Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodes[id]
}

// StandbyNode returns the standby node object for a slot (rep-2).
func (r *Region) StandbyNode(slot string) *node.Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	sid, ok := r.standby[slot]
	if !ok {
		return nil
	}
	return r.nodes[sid]
}

// Placement returns the phone currently hosting a slot.
func (r *Region) Placement(slot string) (simnet.NodeID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.placement[slot]
	return id, ok
}

// SetPlacement points a slot at a new phone (recovery/mobility), bumping
// the placement epoch so cached routes re-resolve. The bump happens under
// the mutex so snapshot rebuilds that read the epoch under the same mutex
// observe map and epoch consistently.
func (r *Region) SetPlacement(slot string, id simnet.NodeID) {
	r.mu.Lock()
	r.placement[slot] = id
	r.bumpEpoch()
	r.mu.Unlock()
	r.jot("place.set", slot, 0, string(id))
}

// PromoteStandby makes the standby the primary for a slot (rep-2 failover)
// and returns the promoted node, or nil. The node's role flips before the
// placement map points at it: the moment upstream retries resolve the new
// primary, a whole in-flight batch may land and execute, and a node still
// in standby role would suppress every emission in it.
func (r *Region) PromoteStandby(slot string) *node.Node {
	r.mu.Lock()
	sid, ok := r.standby[slot]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	n := r.nodes[sid]
	r.mu.Unlock()
	if n != nil {
		n.Promote()
	}
	r.mu.Lock()
	r.placement[slot] = sid
	delete(r.standby, slot)
	delete(r.standbyPhone, slot)
	r.bumpEpoch()
	r.mu.Unlock()
	r.jot("standby.promote", slot, 0, string(sid))
	return n
}

// ActiveSlots returns all slots with a current placement, sorted.
func (r *Region) ActiveSlots() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	slots := make([]string, 0, len(r.placement))
	for s := range r.placement {
		slots = append(slots, s)
	}
	sort.Strings(slots)
	return slots
}

// SlotsOn returns the slots whose primary is the given phone.
func (r *Region) SlotsOn(id simnet.NodeID) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var slots []string
	for s, p := range r.placement {
		if p == id {
			slots = append(slots, s)
		}
	}
	sort.Strings(slots)
	return slots
}

// TakeIdle removes and returns an idle phone for use as a replacement, or
// "" when none remain.
func (r *Region) TakeIdle() simnet.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.idle) > 0 {
		id := r.idle[0]
		r.idle = r.idle[1:]
		if !r.failed[id] && !r.departed[id] {
			return id
		}
	}
	return ""
}

// ClaimIdle removes a specific phone from the idle pool (the scheduler's
// chosen migration target). It returns false when the phone is not idle or
// no longer healthy.
func (r *Region) ClaimIdle(id simnet.NodeID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, cand := range r.idle {
		if cand != id {
			continue
		}
		r.idle = append(r.idle[:i], r.idle[i+1:]...)
		return !r.failed[id] && !r.departed[id]
	}
	return false
}

// ReleaseToIdle returns a phone to the idle pool (a claimed migration
// target whose migration was abandoned, or an evacuated phone that turned
// out healthy).
func (r *Region) ReleaseToIdle(id simnet.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, cand := range r.idle {
		if cand == id {
			return
		}
	}
	r.idle = append(r.idle, id)
}

// AddPhone recruits a brand-new phone into a (possibly running) region as
// an idle member: it joins the WiFi medium and the cellular network, stores
// checkpoint data, and stands by as a replacement or migration target —
// the join half of churn.
func (r *Region) AddPhone(cfg phone.Config) simnet.NodeID {
	r.mu.Lock()
	r.joined++
	id := simnet.NodeID(fmt.Sprintf("%s/p%d", r.cfg.ID, r.cfg.Phones+r.joined))
	ph := phone.New(id, cfg)
	ep := simnet.NewEndpoint(id, 1<<14)
	st := storage.New()
	r.phones[id] = ph
	r.endpoints[id] = ep
	r.stores[id] = st
	r.wifi.Join(ep)
	if r.cfg.Cell != nil {
		r.cfg.Cell.Attach(ep)
	}
	n := r.buildNode(id, "", node.RoleIdle)
	r.nodes[id] = n
	r.idle = append(r.idle, id)
	started := r.started && !r.stopped
	r.mu.Unlock()
	if started {
		n.Start()
	}
	return id
}

// NoteMigration records one completed planned migration.
func (r *Region) NoteMigration() { atomic.AddInt64(&r.migrations, 1) }

// Migrations reports completed planned migrations.
func (r *Region) Migrations() int64 { return atomic.LoadInt64(&r.migrations) }

// IdleCount reports available replacement phones.
func (r *Region) IdleCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, id := range r.idle {
		if !r.failed[id] && !r.departed[id] {
			n++
		}
	}
	return n
}

// LivePeers lists phones other than `self` that are present in the region
// (broadcast dissemination targets).
func (r *Region) LivePeers(self simnet.NodeID) []simnet.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []simnet.NodeID
	for id := range r.phones {
		if id != self && !r.failed[id] && !r.departed[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FailPhone crashes a phone: its node dies, its endpoint seals, its storage
// is lost, and it leaves the WiFi medium. Detection happens through the
// protocol (upstream send failures, controller pings), not this call.
func (r *Region) FailPhone(id simnet.NodeID) {
	r.mu.Lock()
	if r.failed[id] {
		r.mu.Unlock()
		return
	}
	r.failed[id] = true
	n := r.nodes[id]
	var standbys []*node.Node
	var standbyIDs []simnet.NodeID
	for slot, sbPhone := range r.standbyPhone {
		if sbPhone == id {
			sid := r.standby[slot]
			standbys = append(standbys, r.nodes[sid])
			standbyIDs = append(standbyIDs, sid)
		}
	}
	r.mu.Unlock()
	if n != nil {
		n.Fail()
	}
	for i, sb := range standbys {
		if sb != nil {
			sb.Fail()
		}
		r.wifi.SetPresent(standbyIDs[i], false)
	}
	r.wifi.SetPresent(id, false)
	r.noteDomainLoss(id)
	r.jot("phone.fail", "", 0, string(id))
}

// DepartPhone moves a phone out of WiFi range; it keeps running and stays
// reachable over cellular (§III-E).
func (r *Region) DepartPhone(id simnet.NodeID) {
	r.mu.Lock()
	r.departed[id] = true
	if ph := r.phones[id]; ph != nil {
		ph.SetPosition(phone.Position{X: 1e6, Y: 1e6})
	}
	r.mu.Unlock()
	r.wifi.SetPresent(id, false)
	r.noteDomainLoss(id)
	r.jot("phone.depart", "", 0, string(id))
}

// noteDomainLoss records a phone loss (failure or departure) against its
// WiFi channel domain for the placement forecaster's departure-rate input.
func (r *Region) noteDomainLoss(id simnet.NodeID) {
	ch, ok := r.wifi.ChannelOf(id)
	if !ok {
		return
	}
	r.mu.Lock()
	if len(r.domainDeparts) < r.wifi.Channels() {
		next := make([]int64, r.wifi.Channels())
		copy(next, r.domainDeparts)
		r.domainDeparts = next
	}
	r.domainDeparts[ch]++
	r.mu.Unlock()
}

// Failed reports whether a phone has failed.
func (r *Region) Failed(id simnet.NodeID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed[id]
}

// FailedPhoneCount reports how many phones have failed so far — the burst
// size a scheme's tolerance is judged against.
func (r *Region) FailedPhoneCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.failed)
}

// Departed reports whether a phone has departed.
func (r *Region) Departed(id simnet.NodeID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.departed[id]
}

// Unregister removes a departed/failed phone from the region entirely.
func (r *Region) Unregister(id simnet.NodeID) {
	r.mu.Lock()
	delete(r.phones, id)
	delete(r.nodes, id)
	r.wifi.Remove(id)
	r.mu.Unlock()
}

// ActivateReplacement turns an idle phone's node into the host for slot.
func (r *Region) ActivateReplacement(id simnet.NodeID, slot string) {
	r.mu.Lock()
	n := r.nodes[id]
	r.mu.Unlock()
	if n != nil {
		n.Activate(slot)
	}
	r.SetPlacement(slot, id)
	r.jot("replace.activate", slot, 0, string(id))
}

// InboxDrops sums endpoint inbox-overflow losses across the region: UDP-
// semantics deliveries (checkpoint broadcasts, preservation replicas) that
// arrived while a receiver's inbox was full. Until surfaced here they were
// dropped silently, indistinguishable from modelled WiFi loss.
func (r *Region) InboxDrops() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, ep := range r.endpoints {
		total += ep.Drops()
	}
	return total
}

// PreservedBytes sums the region's preservation storage (Fig. 10a): source
// logs counted once at their owners plus edge retention at every node.
func (r *Region) PreservedBytes() (source, edge int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, st := range r.stores {
		s, e := st.CumulativePreservedBytes()
		source += s
		edge += e
	}
	return source, edge
}

// Store returns a phone's storage (tests, recovery planning).
func (r *Region) Store(id simnet.NodeID) *storage.Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stores[id]
}

// Phone returns a phone device.
func (r *Region) Phone(id simnet.NodeID) *phone.Phone {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phones[id]
}

// AlivePhones lists phones that have neither failed nor departed.
func (r *Region) AlivePhones() []simnet.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []simnet.NodeID
	for id := range r.phones {
		if !r.failed[id] && !r.departed[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// BlobHolders returns alive phones whose store can restore (version, slot)
// — recovery planning for dist-n. A phone holding a delta link without its
// base chain cannot serve the restore, so only complete chains count;
// torn uploads are discarded from planning.
func (r *Region) BlobHolders(version uint64, slot string) []simnet.NodeID {
	var holders []simnet.NodeID
	for _, id := range r.AlivePhones() {
		st := r.Store(id)
		if st == nil || st.Lost() {
			continue
		}
		if st.HasChain(version, slot) {
			holders = append(holders, id)
		}
	}
	return holders
}

// CkptStats exposes the region-wide checkpoint-pipeline accumulator.
func (r *Region) CkptStats() *metrics.CheckpointStats { return &r.ckptStats }

// BatchStats exposes the region-wide edge-batching accumulator.
func (r *Region) BatchStats() *metrics.BatchSizes { return &r.batchStats }

// Report summarises the region's metrics at simulated time now.
func (r *Region) Report(now time.Duration) metrics.Report {
	src, edge := r.PreservedBytes()
	ckptBlob, ckptFull := r.ckptStats.Bytes()
	chans := r.wifi.ChannelStats()
	airtime := make([]time.Duration, len(chans))
	members := make([]int, len(chans))
	for i, cs := range chans {
		airtime[i] = cs.Airtime
		members[i] = cs.Members
	}
	var crossShare float64
	if cross, total := r.wifi.CrossChannelBytes(); total > 0 {
		crossShare = float64(cross) / float64(total)
	}
	return metrics.Report{
		Scheme:         r.cfg.Scheme.String(),
		Tuples:         r.Throughput.Count(),
		ThroughputTPS:  r.Throughput.PerSecond(now),
		MeanLatency:    r.Latency.Mean(),
		P95Latency:     r.Latency.Percentile(95),
		DataBytes:      r.wifi.Counters.Bytes(simnet.ClassData),
		CheckpointNet:  r.wifi.Counters.Bytes(simnet.ClassCheckpoint) + r.wifi.Counters.Bytes(simnet.ClassBitmap),
		ReplicationNet: r.wifi.Counters.Bytes(simnet.ClassReplication),
		PreservedBytes: src + edge,
		InboxDrops:     r.InboxDrops(),
		BatchFlushes:   r.batchStats.Flushes(),
		MeanBatch:      r.batchStats.Mean(),
		Migrations:     r.Migrations(),
		CkptPauseMean:  r.ckptStats.PauseMean(),
		CkptPauseMax:   r.ckptStats.PauseMax(),
		CkptDeltaRatio: r.ckptStats.DeltaRatio(),
		CkptBlobBytes:  ckptBlob,
		CkptFullBytes:  ckptFull,
		CkptDeltaBlobs: r.ckptStats.DeltaBlobs(),
		CkptFullBlobs:  r.ckptStats.FullBlobs(),

		Channels:          len(chans),
		ChannelAirtime:    airtime,
		ChannelMembers:    members,
		CrossChannelShare: crossShare,
	}
}
