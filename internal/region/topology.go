package region

import (
	"sort"

	"mobistreams/internal/placement"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
)

// PlacementSnapshot assembles the placement planner's input from one
// telemetry poll: the WiFi channel domains (membership, airtime, observed
// departures), every in-service phone's domain and telemetry, the current
// slot→phone assignment, and the graph's weighted slot communication
// edges. `spares` marks phones the controller holds claimed as warm
// spares — they are absent from the idle pool but available to the
// planner. The output obeys the engine's ordering contract (domains by
// ID, phones by ID, slots by name, edges by pair), so identical region
// state always snapshots identically.
func (r *Region) PlacementSnapshot(rs scheduler.RegionStats, spares map[simnet.NodeID]bool) placement.Snapshot {
	snap := placement.Snapshot{
		Region:  rs.Region,
		Now:     rs.Now,
		RadiusM: rs.RadiusM,
	}

	chans := r.wifi.ChannelStats()
	r.mu.Lock()
	departs := append([]int64(nil), r.domainDeparts...)
	for slot, id := range r.placement {
		snap.Slots = append(snap.Slots, placement.Assignment{Slot: slot, Phone: id})
	}
	r.mu.Unlock()
	sort.Slice(snap.Slots, func(i, j int) bool { return snap.Slots[i].Slot < snap.Slots[j].Slot })

	for i, cs := range chans {
		d := placement.Domain{
			ID: cs.Channel, Members: cs.Members, Present: cs.Present, Airtime: cs.Airtime,
		}
		if i < len(departs) {
			d.Departures = departs[i]
		}
		snap.Domains = append(snap.Domains, d)
	}

	for _, p := range rs.Phones {
		ch, ok := r.wifi.ChannelOf(p.ID)
		if !ok {
			continue
		}
		snap.Phones = append(snap.Phones, placement.Phone{
			ID:              p.ID,
			Domain:          ch,
			Idle:            p.Idle,
			Spare:           spares[p.ID],
			BatteryJoules:   p.BatteryJoules,
			BatteryFraction: p.BatteryFraction,
			DrainWatts:      p.DrainWatts,
			Backlog:         p.Backlog,
			X:               p.Position.X - rs.Centre.X,
			Y:               p.Position.Y - rs.Centre.Y,
			VelX:            p.VelX,
			VelY:            p.VelY,
		})
	}

	for _, e := range r.cfg.Graph.SlotEdges() {
		snap.Edges = append(snap.Edges, placement.Edge{From: e.From, To: e.To, Weight: e.Weight})
	}
	return snap
}
