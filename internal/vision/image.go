// Package vision is the image-processing substrate for the two driving
// applications: BCP counts waiting passengers with a Haar-like cascade over
// integral images (the paper's HaarTraining face detection [17]), and
// SignalGuru detects traffic signals with colour, shape and motion filters
// (§II-B). Images are synthetic — procedurally generated with planted
// faces/lights — so experiments are deterministic and hardware-free, while
// the detection code paths are real.
package vision

import "math/rand"

// Image is a small RGB frame. Pixel channels are 8-bit.
type Image struct {
	W, H int
	Pix  []uint8 // RGB interleaved, len = W*H*3
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]uint8, w*h*3)}
}

// At returns the RGB triple at (x, y).
func (im *Image) At(x, y int) (r, g, b uint8) {
	i := (y*im.W + x) * 3
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set writes the RGB triple at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, r, g, b uint8) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	i := (y*im.W + x) * 3
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Gray returns the luma at (x, y) in [0,255].
func (im *Image) Gray(x, y int) int {
	r, g, b := im.At(x, y)
	return (299*int(r) + 587*int(g) + 114*int(b)) / 1000
}

// Bytes reports the serialized size used for network accounting.
func (im *Image) Bytes() int { return len(im.Pix) }

// fillRect paints a filled rectangle.
func (im *Image) fillRect(x0, y0, w, h int, r, g, b uint8) {
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			im.Set(x, y, r, g, b)
		}
	}
}

// fillDisc paints a filled disc.
func (im *Image) fillDisc(cx, cy, rad int, r, g, b uint8) {
	for y := cy - rad; y <= cy+rad; y++ {
		for x := cx - rad; x <= cx+rad; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= rad*rad {
				im.Set(x, y, r, g, b)
			}
		}
	}
}

// FaceSize is the canonical planted face edge length in pixels; the
// detector's base window matches it.
const FaceSize = 24

// Scene parameterises a synthetic camera frame.
type Scene struct {
	W, H  int
	Noise int // background noise amplitude (0-64)
	Seed  int64
}

// PlantedFace records where a face was planted (ground truth for tests).
type PlantedFace struct{ X, Y int }

// GenerateFaces renders a bus-stop frame with n planted faces at random
// non-overlapping positions and returns the frame with ground truth.
func GenerateFaces(sc Scene, n int) (*Image, []PlantedFace) {
	rng := rand.New(rand.NewSource(sc.Seed))
	im := background(sc, rng)
	var placed []PlantedFace
	const cell = FaceSize + 8
	cols := (sc.W - 8) / cell
	rows := (sc.H - 8) / cell
	if cols*rows < n {
		n = cols * rows
	}
	perm := rng.Perm(cols * rows)
	for i := 0; i < n; i++ {
		cx := perm[i] % cols
		cy := perm[i] / cols
		x := 4 + cx*cell + rng.Intn(5)
		y := 4 + cy*cell + rng.Intn(5)
		plantFace(im, x, y)
		placed = append(placed, PlantedFace{X: x, Y: y})
	}
	return im, placed
}

// plantFace draws the canonical synthetic face: a bright skin block with a
// darker eye band in the upper third and a darker mouth strip near the
// bottom — the contrast structure the Haar cascade keys on.
func plantFace(im *Image, x, y int) {
	s := FaceSize
	im.fillRect(x, y, s, s, 200, 170, 150)               // skin
	im.fillRect(x+2, y+s/4, s-4, s/6, 70, 60, 55)        // eye band
	im.fillRect(x+s/4, y+(3*s)/4, s/2, s/8, 110, 70, 65) // mouth
	im.fillRect(x+s/2-1, y+s/3, 2, s/4, 160, 130, 120)   // nose ridge
	im.fillRect(x, y, s, 2, 90, 80, 75)                  // hairline
}

// Light colours a traffic signal can show.
type LightColor int

const (
	Red LightColor = iota
	Yellow
	Green
)

func (c LightColor) String() string {
	switch c {
	case Red:
		return "red"
	case Yellow:
		return "yellow"
	case Green:
		return "green"
	default:
		return "?"
	}
}

// PlantedLight records a planted traffic light (ground truth).
type PlantedLight struct {
	X, Y, R int
	Color   LightColor
}

// GenerateIntersection renders a windshield frame with one traffic light in
// the given state plus colourful distractor rectangles (brake lights, signs)
// that the shape/motion filters must reject.
func GenerateIntersection(sc Scene, color LightColor, distractors int) (*Image, PlantedLight) {
	rng := rand.New(rand.NewSource(sc.Seed))
	im := background(sc, rng)
	// Signal head: dark housing with the lit disc.
	hx, hy := sc.W/2+rng.Intn(sc.W/8), sc.H/4+rng.Intn(sc.H/8)
	im.fillRect(hx-6, hy-6, 12, 34, 25, 25, 25)
	rad := 4
	light := PlantedLight{X: hx, Y: hy + int(color)*10, R: rad, Color: color}
	r, g, b := colorRGB(color)
	im.fillDisc(light.X, light.Y, rad, r, g, b)
	// Distractors: saturated but non-circular or off-palette shapes.
	for i := 0; i < distractors; i++ {
		x := rng.Intn(sc.W - 12)
		y := sc.H/2 + rng.Intn(sc.H/2-12)
		switch rng.Intn(3) {
		case 0: // brake-light bar: red but elongated
			im.fillRect(x, y, 14, 3, 250, 30, 30)
		case 1: // sodium streetlight: orange-ish square
			im.fillRect(x, y, 6, 6, 240, 160, 40)
		default: // foliage: green but ragged
			for k := 0; k < 12; k++ {
				im.Set(x+rng.Intn(8), y+rng.Intn(8), 40, 200, 60)
			}
		}
	}
	return im, light
}

func colorRGB(c LightColor) (uint8, uint8, uint8) {
	switch c {
	case Red:
		return 255, 40, 40
	case Yellow:
		return 250, 230, 50
	default:
		return 40, 255, 70
	}
}

func background(sc Scene, rng *rand.Rand) *Image {
	im := NewImage(sc.W, sc.H)
	for i := range im.Pix {
		v := 120 + rng.Intn(sc.Noise+1) - sc.Noise/2
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		im.Pix[i] = uint8(v)
	}
	return im
}
