package vision

// Integral is a summed-area table over image luma, the core acceleration
// structure of the Viola-Jones/HaarTraining detector the paper's BCP
// counter runs [17].
type Integral struct {
	W, H int
	sum  []int64
}

// NewIntegral builds the summed-area table in one pass.
func NewIntegral(im *Image) *Integral {
	ii := &Integral{W: im.W, H: im.H, sum: make([]int64, (im.W+1)*(im.H+1))}
	stride := im.W + 1
	for y := 1; y <= im.H; y++ {
		var rowSum int64
		for x := 1; x <= im.W; x++ {
			rowSum += int64(im.Gray(x-1, y-1))
			ii.sum[y*stride+x] = ii.sum[(y-1)*stride+x] + rowSum
		}
	}
	return ii
}

// RectSum returns the luma sum over the rectangle [x, x+w) x [y, y+h) in
// O(1).
func (ii *Integral) RectSum(x, y, w, h int) int64 {
	stride := ii.W + 1
	a := ii.sum[y*stride+x]
	b := ii.sum[y*stride+x+w]
	c := ii.sum[(y+h)*stride+x]
	d := ii.sum[(y+h)*stride+x+w]
	return d - b - c + a
}

// RectMean returns the mean luma over a rectangle.
func (ii *Integral) RectMean(x, y, w, h int) float64 {
	if w <= 0 || h <= 0 {
		return 0
	}
	return float64(ii.RectSum(x, y, w, h)) / float64(w*h)
}

// haarFeature is a two-region contrast test on the canonical 24x24 window:
// mean(bright region) - mean(dark region) >= Threshold.
type haarFeature struct {
	bx, by, bw, bh int // bright region (window-relative, 24-base)
	dx, dy, dw, dh int // dark region
	threshold      float64
}

// stage is one cascade stage: all features must pass (conjunctive stages
// keep the synthetic cascade exact; real cascades use weighted sums).
type stage []haarFeature

// Cascade is a Haar-like detection cascade over a sliding window.
type Cascade struct {
	base   int
	stages []stage
}

// FaceCascade returns the cascade keyed to the canonical synthetic face:
// stage 1 tests the eye band darker than the forehead, stage 2 the mouth
// darker than the cheeks, stage 3 overall skin brightness against the
// background.
func FaceCascade() *Cascade {
	s := FaceSize
	return &Cascade{
		base: s,
		stages: []stage{
			{ // eye band vs forehead
				{bx: 2, by: s / 12, bw: s - 4, bh: s / 8, dx: 2, dy: s / 4, dw: s - 4, dh: s / 6, threshold: 40},
			},
			{ // cheeks vs mouth
				{bx: 2, by: s / 2, bw: s - 4, bh: s / 8, dx: s / 4, dy: (3 * s) / 4, dw: s / 2, dh: s / 8, threshold: 25},
			},
			{ // skin centre brighter than immediate surround is approximated
				// by absolute brightness of the centre block
				{bx: s / 4, by: (2 * s) / 5, bw: s / 2, bh: s / 5, dx: 0, dy: 0, dw: 1, dh: 1, threshold: -1e9},
			},
		},
	}
}

// windowPasses evaluates all stages at (x, y) with scale 1.
func (c *Cascade) windowPasses(ii *Integral, x, y int) bool {
	for si, st := range c.stages {
		for _, f := range st {
			bright := ii.RectMean(x+f.bx, y+f.by, f.bw, f.bh)
			dark := ii.RectMean(x+f.dx, y+f.dy, f.dw, f.dh)
			if si == len(c.stages)-1 {
				// absolute-brightness stage
				if bright < 150 {
					return false
				}
				continue
			}
			if bright-dark < f.threshold {
				return false
			}
		}
	}
	return true
}

// Detection is one accepted window.
type Detection struct{ X, Y, Size int }

// Detect slides the cascade across the integral image with the given step
// and returns non-maximum-suppressed detections. The acceptance region
// around a true face is several pixels wide, so the suppression radius is
// 3/4 of the window — wide enough to merge a face's cluster, narrower than
// the minimum spacing of distinct faces.
func (c *Cascade) Detect(ii *Integral, step int) []Detection {
	if step <= 0 {
		step = 1
	}
	var raw []Detection
	for y := 0; y+c.base <= ii.H; y += step {
		for x := 0; x+c.base <= ii.W; x += step {
			if c.windowPasses(ii, x, y) {
				raw = append(raw, Detection{X: x, Y: y, Size: c.base})
			}
		}
	}
	return suppress(raw, (3*c.base)/4)
}

// CountFaces runs the canonical pipeline: integral image, cascade sweep,
// suppression — and returns the face count. This is the BCP counter
// operator's kernel.
func CountFaces(im *Image) int {
	return len(FaceCascade().Detect(NewIntegral(im), 1))
}

// suppress keeps one detection per cluster closer than minDist.
func suppress(raw []Detection, minDist int) []Detection {
	var kept []Detection
	for _, d := range raw {
		dup := false
		for _, k := range kept {
			dx, dy := d.X-k.X, d.Y-k.Y
			if dx*dx+dy*dy < minDist*minDist {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, d)
		}
	}
	return kept
}

// WindowPassesForTest exposes window evaluation for diagnostics.
func WindowPassesForTest(ii *Integral, x, y int) bool {
	if x < 0 || y < 0 || x+FaceSize > ii.W || y+FaceSize > ii.H {
		return false
	}
	return FaceCascade().windowPasses(ii, x, y)
}
