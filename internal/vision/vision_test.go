package vision

import (
	"testing"
	"testing/quick"
)

func TestIntegralRectSum(t *testing.T) {
	im := NewImage(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			im.Set(x, y, 10, 10, 10) // luma 10
		}
	}
	ii := NewIntegral(im)
	if got := ii.RectSum(0, 0, 8, 8); got != 64*10 {
		t.Fatalf("full sum = %d, want 640", got)
	}
	if got := ii.RectSum(2, 2, 3, 4); got != 12*10 {
		t.Fatalf("inner sum = %d, want 120", got)
	}
	if got := ii.RectMean(2, 2, 3, 4); got != 10 {
		t.Fatalf("mean = %v, want 10", got)
	}
	if got := ii.RectMean(0, 0, 0, 0); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
}

// Property: RectSum equals the brute-force pixel sum for random images and
// rectangles.
func TestIntegralMatchesBruteForce(t *testing.T) {
	f := func(seed int64, rx, ry, rw, rh uint8) bool {
		im, _ := GenerateFaces(Scene{W: 40, H: 30, Noise: 50, Seed: seed}, 1)
		ii := NewIntegral(im)
		x := int(rx) % 30
		y := int(ry) % 20
		w := int(rw)%(40-x) + 1
		h := int(rh)%(30-y) + 1
		var want int64
		for yy := y; yy < y+h; yy++ {
			for xx := x; xx < x+w; xx++ {
				want += int64(im.Gray(xx, yy))
			}
		}
		return ii.RectSum(x, y, w, h) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCountFacesExact(t *testing.T) {
	for _, n := range []int{0, 1, 3, 5} {
		im, planted := GenerateFaces(Scene{W: 160, H: 120, Noise: 30, Seed: int64(n) + 7}, n)
		if len(planted) != n {
			t.Fatalf("planted %d, want %d", len(planted), n)
		}
		if got := CountFaces(im); got != n {
			t.Fatalf("CountFaces = %d, want %d", got, n)
		}
	}
}

func TestDetectionLocations(t *testing.T) {
	im, planted := GenerateFaces(Scene{W: 200, H: 150, Noise: 20, Seed: 42}, 4)
	dets := FaceCascade().Detect(NewIntegral(im), 1)
	if len(dets) != len(planted) {
		t.Fatalf("detections = %d, want %d", len(dets), len(planted))
	}
	for _, p := range planted {
		found := false
		for _, d := range dets {
			dx, dy := d.X-p.X, d.Y-p.Y
			if dx*dx+dy*dy <= 144 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no detection near planted face at (%d,%d): %v", p.X, p.Y, dets)
		}
	}
}

func TestNoFalsePositivesOnNoise(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		im, _ := GenerateFaces(Scene{W: 160, H: 120, Noise: 60, Seed: seed}, 0)
		if got := CountFaces(im); got != 0 {
			t.Fatalf("seed %d: %d false positives", seed, got)
		}
	}
}

func TestColorFilterFindsLight(t *testing.T) {
	for _, c := range []LightColor{Red, Yellow, Green} {
		im, light := GenerateIntersection(Scene{W: 120, H: 90, Noise: 20, Seed: int64(c) + 1}, c, 0)
		blobs := ColorFilter(im)
		if len(blobs) == 0 {
			t.Fatalf("%v: no blobs found", c)
		}
		found := false
		for _, b := range blobs {
			if b.Color == c {
				dx, dy := b.CenterX()-light.X, b.CenterY()-light.Y
				if dx*dx+dy*dy <= 16 {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("%v: planted light not found in %v", c, blobs)
		}
	}
}

func TestShapeFilterRejectsBars(t *testing.T) {
	im, _ := GenerateIntersection(Scene{W: 120, H: 90, Noise: 10, Seed: 3}, Green, 6)
	all := ColorFilter(im)
	circ := ShapeFilter(all)
	if len(circ) >= len(all) && len(all) > 1 {
		t.Fatalf("shape filter rejected nothing: %d -> %d", len(all), len(circ))
	}
	// The planted disc must survive.
	found := false
	for _, b := range circ {
		if b.Color == Green {
			found = true
		}
	}
	if !found {
		t.Fatal("shape filter dropped the true light")
	}
}

func TestMotionFilterKeepsStaticLight(t *testing.T) {
	im1, l1 := GenerateIntersection(Scene{W: 120, H: 90, Noise: 10, Seed: 9}, Red, 4)
	im2, _ := GenerateIntersection(Scene{W: 120, H: 90, Noise: 10, Seed: 9}, Red, 4)
	prev := ShapeFilter(ColorFilter(im1))
	cur := ShapeFilter(ColorFilter(im2))
	kept := MotionFilter(prev, cur, 3)
	found := false
	for _, b := range kept {
		dx, dy := b.CenterX()-l1.X, b.CenterY()-l1.Y
		if b.Color == Red && dx*dx+dy*dy <= 16 {
			found = true
		}
	}
	if !found {
		t.Fatalf("motion filter dropped the static light: %v", kept)
	}
	// A moved frame (different seed shifts the distractors AND the head
	// position) must not match blobs far away.
	im3, _ := GenerateIntersection(Scene{W: 120, H: 90, Noise: 10, Seed: 77}, Red, 4)
	cur3 := ShapeFilter(ColorFilter(im3))
	kept3 := MotionFilter(prev, cur3, 2)
	for _, b := range kept3 {
		dx, dy := b.CenterX()-l1.X, b.CenterY()-l1.Y
		if dx*dx+dy*dy > 16 {
			t.Fatalf("motion filter kept a moving blob: %v", b)
		}
	}
}

func TestVote(t *testing.T) {
	if _, ok := Vote(nil); ok {
		t.Fatal("vote on empty should fail")
	}
	blobs := []Blob{{Color: Green, Count: 5}, {Color: Green, Count: 5}, {Color: Red, Count: 5}}
	c, ok := Vote(blobs)
	if !ok || c != Green {
		t.Fatalf("vote = %v/%v, want green", c, ok)
	}
	// Tie prefers the more cautious colour.
	tie := []Blob{{Color: Green, Count: 5}, {Color: Red, Count: 5}}
	c, _ = Vote(tie)
	if c != Red {
		t.Fatalf("tie vote = %v, want red", c)
	}
}

func TestImageAccessors(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(1, 2, 10, 20, 30)
	r, g, b := im.At(1, 2)
	if r != 10 || g != 20 || b != 30 {
		t.Fatal("set/at mismatch")
	}
	im.Set(-1, 0, 9, 9, 9) // must not panic
	im.Set(4, 4, 9, 9, 9)
	if im.Bytes() != 4*4*3 {
		t.Fatalf("bytes = %d", im.Bytes())
	}
	if Red.String() != "red" || Yellow.String() != "yellow" || Green.String() != "green" {
		t.Fatal("color names wrong")
	}
}

func BenchmarkCountFaces(b *testing.B) {
	im, _ := GenerateFaces(Scene{W: 160, H: 120, Noise: 30, Seed: 1}, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountFaces(im)
	}
}

func BenchmarkColorShapePipeline(b *testing.B) {
	im, _ := GenerateIntersection(Scene{W: 160, H: 120, Noise: 20, Seed: 1}, Green, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShapeFilter(ColorFilter(im))
	}
}
