package vision

// SignalGuru's detection kernel (§II-B): colour filtering finds saturated
// red/yellow/green pixels, blob extraction groups them, the shape filter
// keeps circular blobs (signal lamps are discs), and the motion filter
// keeps blobs that stay put across frames (traffic lights are fixed by the
// roadside while brake lights move).

// Blob is a connected component of colour-matching pixels.
type Blob struct {
	Color      LightColor
	MinX, MinY int
	MaxX, MaxY int
	Count      int
	SumX, SumY int
}

// CenterX returns the blob centroid X (0 for an empty blob).
func (b *Blob) CenterX() int {
	if b.Count == 0 {
		return 0
	}
	return b.SumX / b.Count
}

// CenterY returns the blob centroid Y (0 for an empty blob).
func (b *Blob) CenterY() int {
	if b.Count == 0 {
		return 0
	}
	return b.SumY / b.Count
}

// width and height of the bounding box.
func (b *Blob) dims() (int, int) { return b.MaxX - b.MinX + 1, b.MaxY - b.MinY + 1 }

// matchColor classifies a saturated pixel, or returns false.
func matchColor(r, g, bl uint8) (LightColor, bool) {
	ri, gi, bi := int(r), int(g), int(bl)
	switch {
	case ri > 180 && gi < 90 && bi < 90:
		return Red, true
	case ri > 200 && gi > 180 && bi < 110:
		return Yellow, true
	case ri < 110 && gi > 180 && bi < 130:
		return Green, true
	}
	return 0, false
}

// ColorFilter extracts connected blobs of signal-palette pixels (operators
// C0..C2 in Fig. 3).
func ColorFilter(im *Image) []Blob {
	type key struct{ x, y int }
	visited := make([]bool, im.W*im.H)
	colorOf := make([]int8, im.W*im.H) // -1 = no colour
	for i := range colorOf {
		colorOf[i] = -1
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			if c, ok := matchColor(r, g, b); ok {
				colorOf[y*im.W+x] = int8(c)
			}
		}
	}
	var blobs []Blob
	var stack []key
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			idx := y*im.W + x
			if visited[idx] || colorOf[idx] < 0 {
				continue
			}
			c := colorOf[idx]
			blob := Blob{Color: LightColor(c), MinX: x, MinY: y, MaxX: x, MaxY: y}
			stack = append(stack[:0], key{x, y})
			visited[idx] = true
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				blob.Count++
				blob.SumX += p.x
				blob.SumY += p.y
				if p.x < blob.MinX {
					blob.MinX = p.x
				}
				if p.x > blob.MaxX {
					blob.MaxX = p.x
				}
				if p.y < blob.MinY {
					blob.MinY = p.y
				}
				if p.y > blob.MaxY {
					blob.MaxY = p.y
				}
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := p.x+d[0], p.y+d[1]
					if nx < 0 || ny < 0 || nx >= im.W || ny >= im.H {
						continue
					}
					nidx := ny*im.W + nx
					if !visited[nidx] && colorOf[nidx] == c {
						visited[nidx] = true
						stack = append(stack, key{nx, ny})
					}
				}
			}
			if blob.Count >= 4 {
				blobs = append(blobs, blob)
			}
		}
	}
	return blobs
}

// ShapeFilter keeps circular blobs: the fill ratio of a disc inside its
// bounding box is pi/4 ~ 0.785 and the box is near-square (operators
// A0..A2 in Fig. 3).
func ShapeFilter(blobs []Blob) []Blob {
	var out []Blob
	for _, b := range blobs {
		w, h := b.dims()
		if w < 3 || h < 3 {
			continue
		}
		aspect := float64(w) / float64(h)
		if aspect < 0.6 || aspect > 1.67 {
			continue
		}
		fill := float64(b.Count) / float64(w*h)
		if fill < 0.6 || fill > 0.95 {
			continue
		}
		out = append(out, b)
	}
	return out
}

// MotionFilter keeps blobs whose centroid stays within tol pixels of a blob
// of the same colour in the previous frame — traffic lights are fixed,
// brake lights and reflections move (operators M0..M2 in Fig. 3).
func MotionFilter(prev, cur []Blob, tol int) []Blob {
	var out []Blob
	for _, c := range cur {
		for _, p := range prev {
			if c.Color != p.Color {
				continue
			}
			dx := c.CenterX() - p.CenterX()
			dy := c.CenterY() - p.CenterY()
			if dx*dx+dy*dy <= tol*tol {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// Vote picks the winning light colour from filtered blobs across the
// collaborating phones (operator V in Fig. 3): the colour with the most
// supporting blobs wins; ties prefer the more cautious colour (red over
// yellow over green).
func Vote(blobs []Blob) (LightColor, bool) {
	var counts [3]int
	for _, b := range blobs {
		counts[b.Color]++
	}
	best, bestN := Red, 0
	for _, c := range []LightColor{Red, Yellow, Green} {
		if counts[c] > bestN {
			best, bestN = c, counts[c]
		}
	}
	return best, bestN > 0
}
