// Package graph models a stream application's query network: a directed
// acyclic graph of operators, each placed on a logical node slot (one slot
// per phone). Source operators have no in-edges and admit external data;
// sink operators have no out-edges and publish results (§II-A).
package graph

import (
	"fmt"
	"sort"
)

// OperatorSpec declares one operator and its placement.
type OperatorSpec struct {
	// ID is the operator's unique name within the graph (e.g. "C0").
	ID string
	// Slot is the logical node the operator runs on (e.g. "n3"). All
	// operators sharing a slot run on the same phone as a super-operator.
	Slot string
}

// Edge is a producer-consumer connection between two operators.
type Edge struct {
	From, To string
}

// Graph is a validated query network. The slot-level projections every
// node consults when compiling its pipeline (slots, per-slot operators,
// upstream and downstream slots) are computed once at Build time, so
// reconfiguration, restore and commit paths read cached slices instead of
// re-deriving them from the edge lists.
type Graph struct {
	ops   map[string]OperatorSpec
	order []string // insertion order, for deterministic iteration
	out   map[string][]string
	in    map[string][]string

	slots     []string            // sorted slot names
	opsOnSlot map[string][]string // slot -> operators, declaration order
	slotUp    map[string][]string // slot -> distinct feeding slots, sorted
	slotDown  map[string][]string // slot -> distinct fed slots, sorted
	slotEdges []SlotEdge          // cross-slot edges with op-edge weights, sorted

	groups  []KeyedGroupSpec    // keyed parallel groups, declaration order
	groupOf map[string]groupRef // instance op ID -> group membership
}

// KeyedGroupSpec declares one logical operator expanded into keyed
// parallel instances: instance i is operator Instances[i] on slot
// Slots[i]. Parallelism is how many instances serve traffic initially;
// the rest are placed but dormant until a live split hands them a key
// range. The runtime partition table itself lives in internal/keyed —
// the graph only records the group's shape.
type KeyedGroupSpec struct {
	Logical     string
	Instances   []string
	Slots       []string
	Parallelism int
}

// groupRef locates an operator inside a keyed group.
type groupRef struct {
	group int // index into Graph.groups
	inst  int // instance index
}

// Builder accumulates operators and edges; Build validates them.
type Builder struct {
	specs  []OperatorSpec
	edges  []Edge
	groups []KeyedGroupSpec
}

// AddOperator declares an operator on a slot.
func (b *Builder) AddOperator(id, slot string) *Builder {
	b.specs = append(b.specs, OperatorSpec{ID: id, Slot: slot})
	return b
}

// Connect adds a directed edge from producer to consumer.
func (b *Builder) Connect(from, to string) *Builder {
	b.edges = append(b.edges, Edge{From: from, To: to})
	return b
}

// Chain connects a sequence of operators in order.
func (b *Builder) Chain(ids ...string) *Builder {
	for i := 0; i+1 < len(ids); i++ {
		b.Connect(ids[i], ids[i+1])
	}
	return b
}

// AddKeyedOperator expands a logical operator into maxParallelism keyed
// instances named logical#i, each alone on slot slot#i, of which the
// first parallelism serve traffic initially. Wire the group with
// ConnectToGroup/ConnectFromGroup.
func (b *Builder) AddKeyedOperator(logical, slot string, parallelism, maxParallelism int) *Builder {
	if maxParallelism < parallelism {
		maxParallelism = parallelism
	}
	grp := KeyedGroupSpec{Logical: logical, Parallelism: parallelism}
	for i := 0; i < maxParallelism; i++ {
		id := fmt.Sprintf("%s#%d", logical, i)
		sl := fmt.Sprintf("%s#%d", slot, i)
		b.specs = append(b.specs, OperatorSpec{ID: id, Slot: sl})
		grp.Instances = append(grp.Instances, id)
		grp.Slots = append(grp.Slots, sl)
	}
	b.groups = append(b.groups, grp)
	return b
}

// ConnectToGroup connects a producer to every instance of a keyed group
// (the instance actually receiving each tuple is chosen at runtime by the
// partition table).
func (b *Builder) ConnectToGroup(from, logical string) *Builder {
	for _, inst := range b.groupInstances(logical) {
		b.Connect(from, inst)
	}
	return b
}

// ConnectFromGroup connects every instance of a keyed group to a
// consumer.
func (b *Builder) ConnectFromGroup(logical, to string) *Builder {
	for _, inst := range b.groupInstances(logical) {
		b.Connect(inst, to)
	}
	return b
}

func (b *Builder) groupInstances(logical string) []string {
	for _, g := range b.groups {
		if g.Logical == logical {
			return g.Instances
		}
	}
	// Unknown logical: produce one edge to the name itself so Build
	// reports "edge to unknown operator" with the logical ID.
	return []string{logical}
}

// Build validates the accumulated specification and returns the graph.
func (b *Builder) Build() (*Graph, error) {
	g := &Graph{
		ops: make(map[string]OperatorSpec, len(b.specs)),
		out: make(map[string][]string),
		in:  make(map[string][]string),
	}
	for _, s := range b.specs {
		if s.ID == "" {
			return nil, fmt.Errorf("graph: empty operator id")
		}
		if s.Slot == "" {
			return nil, fmt.Errorf("graph: operator %q has no slot", s.ID)
		}
		if _, dup := g.ops[s.ID]; dup {
			return nil, fmt.Errorf("graph: duplicate operator %q", s.ID)
		}
		g.ops[s.ID] = s
		g.order = append(g.order, s.ID)
	}
	for _, e := range b.edges {
		if _, ok := g.ops[e.From]; !ok {
			return nil, fmt.Errorf("graph: edge from unknown operator %q", e.From)
		}
		if _, ok := g.ops[e.To]; !ok {
			return nil, fmt.Errorf("graph: edge to unknown operator %q", e.To)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("graph: self-loop on %q", e.From)
		}
		for _, existing := range g.out[e.From] {
			if existing == e.To {
				return nil, fmt.Errorf("graph: duplicate edge %s->%s", e.From, e.To)
			}
		}
		g.out[e.From] = append(g.out[e.From], e.To)
		g.in[e.To] = append(g.in[e.To], e.From)
	}
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	if len(g.Sources()) == 0 {
		return nil, fmt.Errorf("graph: no source operators")
	}
	if len(g.Sinks()) == 0 {
		return nil, fmt.Errorf("graph: no sink operators")
	}
	g.compileSlots()
	if err := g.adoptGroups(b.groups); err != nil {
		return nil, err
	}
	return g, nil
}

// adoptGroups validates and installs the keyed parallel groups.
func (g *Graph) adoptGroups(groups []KeyedGroupSpec) error {
	g.groupOf = make(map[string]groupRef)
	seen := make(map[string]bool)
	for gi, grp := range groups {
		if seen[grp.Logical] {
			return fmt.Errorf("graph: duplicate keyed group %q", grp.Logical)
		}
		seen[grp.Logical] = true
		if _, clash := g.ops[grp.Logical]; clash {
			return fmt.Errorf("graph: keyed group %q collides with an operator ID", grp.Logical)
		}
		if grp.Parallelism < 1 || grp.Parallelism > len(grp.Instances) {
			return fmt.Errorf("graph: keyed group %q parallelism %d outside [1,%d]",
				grp.Logical, grp.Parallelism, len(grp.Instances))
		}
		for i, inst := range grp.Instances {
			if _, dup := g.groupOf[inst]; dup {
				return fmt.Errorf("graph: operator %q in two keyed groups", inst)
			}
			spec, ok := g.ops[inst]
			if !ok {
				return fmt.Errorf("graph: keyed group %q instance %q not declared", grp.Logical, inst)
			}
			if spec.Slot != grp.Slots[i] {
				return fmt.Errorf("graph: keyed group %q instance %q on slot %q, want %q",
					grp.Logical, inst, spec.Slot, grp.Slots[i])
			}
			// A split pauses the whole slot, so an instance must not share
			// its slot with unrelated operators.
			if hosted := g.opsOnSlot[spec.Slot]; len(hosted) != 1 {
				return fmt.Errorf("graph: keyed instance %q shares slot %q with %v",
					inst, spec.Slot, hosted)
			}
			g.groupOf[inst] = groupRef{group: gi, inst: i}
		}
	}
	g.groups = append([]KeyedGroupSpec(nil), groups...)
	return nil
}

// compileSlots derives the slot-level projections once, after validation.
func (g *Graph) compileSlots() {
	slotSet := make(map[string]bool)
	g.opsOnSlot = make(map[string][]string)
	for _, id := range g.order {
		slot := g.ops[id].Slot
		slotSet[slot] = true
		g.opsOnSlot[slot] = append(g.opsOnSlot[slot], id)
	}
	g.slots = sortedKeys(slotSet)
	g.slotUp = make(map[string][]string, len(g.slots))
	g.slotDown = make(map[string][]string, len(g.slots))
	for _, slot := range g.slots {
		up := make(map[string]bool)
		down := make(map[string]bool)
		for _, id := range g.opsOnSlot[slot] {
			for _, o := range g.in[id] {
				if os := g.ops[o].Slot; os != slot {
					up[os] = true
				}
			}
			for _, o := range g.out[id] {
				if os := g.ops[o].Slot; os != slot {
					down[os] = true
				}
			}
		}
		g.slotUp[slot] = sortedKeys(up)
		g.slotDown[slot] = sortedKeys(down)
	}
	// Weighted cross-slot edges: one entry per feeding pair, weight = the
	// number of operator-level edges it aggregates. The placement planner
	// uses these to group communicating slots.
	weights := make(map[[2]string]int)
	for _, id := range g.order {
		from := g.ops[id].Slot
		for _, o := range g.out[id] {
			if to := g.ops[o].Slot; to != from {
				weights[[2]string{from, to}]++
			}
		}
	}
	g.slotEdges = make([]SlotEdge, 0, len(weights))
	for pair, w := range weights {
		g.slotEdges = append(g.slotEdges, SlotEdge{From: pair[0], To: pair[1], Weight: w})
	}
	sort.Slice(g.slotEdges, func(i, j int) bool {
		if g.slotEdges[i].From != g.slotEdges[j].From {
			return g.slotEdges[i].From < g.slotEdges[j].From
		}
		return g.slotEdges[i].To < g.slotEdges[j].To
	})
}

// Operators returns operator IDs in declaration order.
func (g *Graph) Operators() []string {
	return append([]string(nil), g.order...)
}

// Spec returns the spec for an operator, and whether it exists.
func (g *Graph) Spec(id string) (OperatorSpec, bool) {
	s, ok := g.ops[id]
	return s, ok
}

// SlotOf returns the slot an operator is placed on.
func (g *Graph) SlotOf(id string) string { return g.ops[id].Slot }

// Downstream returns the consumers of an operator.
func (g *Graph) Downstream(id string) []string {
	return append([]string(nil), g.out[id]...)
}

// Upstream returns the producers feeding an operator.
func (g *Graph) Upstream(id string) []string {
	return append([]string(nil), g.in[id]...)
}

// Sources returns operators with no in-edges, in declaration order.
func (g *Graph) Sources() []string {
	var s []string
	for _, id := range g.order {
		if len(g.in[id]) == 0 {
			s = append(s, id)
		}
	}
	return s
}

// Sinks returns operators with no out-edges, in declaration order.
func (g *Graph) Sinks() []string {
	var s []string
	for _, id := range g.order {
		if len(g.out[id]) == 0 {
			s = append(s, id)
		}
	}
	return s
}

// Slots returns all slot names, sorted. The returned slice is cached and
// shared: callers must not mutate it.
func (g *Graph) Slots() []string { return g.slots }

// OpsOnSlot returns the operators placed on a slot, in declaration order.
// The returned slice is cached and shared: callers must not mutate it.
func (g *Graph) OpsOnSlot(slot string) []string { return g.opsOnSlot[slot] }

// SlotUpstreams returns the distinct slots that feed operators on the given
// slot from other slots, sorted. This is the node-level projection of
// Fig. 1b: token alignment operates on these. The returned slice is cached
// and shared: callers must not mutate it.
func (g *Graph) SlotUpstreams(slot string) []string { return g.slotUp[slot] }

// SlotDownstreams returns the distinct slots fed by operators on the given
// slot, excluding itself, sorted. The returned slice is cached and shared:
// callers must not mutate it.
func (g *Graph) SlotDownstreams(slot string) []string { return g.slotDown[slot] }

// SlotEdge is one directed cross-slot communication edge: Weight counts the
// operator-level edges it aggregates.
type SlotEdge struct {
	From, To string
	Weight   int
}

// SlotEdges returns the distinct cross-slot edges with their op-edge
// weights, sorted by (From, To). The returned slice is cached and shared:
// callers must not mutate it.
func (g *Graph) SlotEdges() []SlotEdge { return g.slotEdges }

// KeyedGroups returns the keyed parallel groups in declaration order.
func (g *Graph) KeyedGroups() []KeyedGroupSpec {
	return append([]KeyedGroupSpec(nil), g.groups...)
}

// KeyedGroup returns the group expanding the given logical operator.
func (g *Graph) KeyedGroup(logical string) (KeyedGroupSpec, bool) {
	for _, grp := range g.groups {
		if grp.Logical == logical {
			return grp, true
		}
	}
	return KeyedGroupSpec{}, false
}

// KeyedGroupOf reports the keyed group an operator belongs to and its
// instance index within it; ok=false for operators outside any group.
func (g *Graph) KeyedGroupOf(op string) (grp KeyedGroupSpec, inst int, ok bool) {
	ref, ok := g.groupOf[op]
	if !ok {
		return KeyedGroupSpec{}, 0, false
	}
	return g.groups[ref.group], ref.inst, true
}

// KeyedSlot reports whether a slot hosts a keyed group instance.
func (g *Graph) KeyedSlot(slot string) bool {
	for _, id := range g.opsOnSlot[slot] {
		if _, ok := g.groupOf[id]; ok {
			return true
		}
	}
	return false
}

// SourceSlots returns the slots hosting at least one source operator.
func (g *Graph) SourceSlots() []string {
	set := make(map[string]bool)
	for _, id := range g.Sources() {
		set[g.ops[id].Slot] = true
	}
	return sortedKeys(set)
}

// SinkSlots returns the slots hosting at least one sink operator.
func (g *Graph) SinkSlots() []string {
	set := make(map[string]bool)
	for _, id := range g.Sinks() {
		set[g.ops[id].Slot] = true
	}
	return sortedKeys(set)
}

// TopoOrder returns a topological order of the operators, or an error if
// the graph has a cycle.
func (g *Graph) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(g.ops))
	for _, id := range g.order {
		indeg[id] = len(g.in[id])
	}
	var queue []string
	for _, id := range g.order {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	var topo []string
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		topo = append(topo, id)
		for _, dn := range g.out[id] {
			indeg[dn]--
			if indeg[dn] == 0 {
				queue = append(queue, dn)
			}
		}
	}
	if len(topo) != len(g.ops) {
		return nil, fmt.Errorf("graph: cycle detected")
	}
	return topo, nil
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
