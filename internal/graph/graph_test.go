package graph

import (
	"reflect"
	"testing"
)

// diamond builds the 5-node graph of Fig. 5: A -> B -> {C, D} -> E.
func diamond(t *testing.T) *Graph {
	t.Helper()
	var b Builder
	b.AddOperator("A", "n1").AddOperator("B", "n2").
		AddOperator("C", "n3").AddOperator("D", "n4").AddOperator("E", "n5")
	b.Connect("A", "B").Connect("B", "C").Connect("B", "D").
		Connect("C", "E").Connect("D", "E")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildDiamond(t *testing.T) {
	g := diamond(t)
	if got := g.Sources(); !reflect.DeepEqual(got, []string{"A"}) {
		t.Fatalf("sources = %v", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []string{"E"}) {
		t.Fatalf("sinks = %v", got)
	}
	if got := g.Upstream("E"); !reflect.DeepEqual(got, []string{"C", "D"}) {
		t.Fatalf("upstream(E) = %v", got)
	}
	if got := g.Downstream("B"); !reflect.DeepEqual(got, []string{"C", "D"}) {
		t.Fatalf("downstream(B) = %v", got)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := diamond(t)
	topo, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, id := range topo {
		pos[id] = i
	}
	for _, id := range g.Operators() {
		for _, dn := range g.Downstream(id) {
			if pos[id] >= pos[dn] {
				t.Fatalf("topo order violates edge %s->%s: %v", id, dn, topo)
			}
		}
	}
}

func TestCycleRejected(t *testing.T) {
	var b Builder
	b.AddOperator("A", "n1").AddOperator("B", "n2").AddOperator("S", "n3").AddOperator("K", "n4")
	b.Connect("S", "A").Connect("A", "B").Connect("B", "A").Connect("B", "K")
	if _, err := b.Build(); err == nil {
		t.Fatal("cycle not rejected")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
	}{
		{"empty id", func() *Builder {
			var b Builder
			return b.AddOperator("", "n1")
		}},
		{"no slot", func() *Builder {
			var b Builder
			return b.AddOperator("A", "")
		}},
		{"duplicate op", func() *Builder {
			var b Builder
			return b.AddOperator("A", "n1").AddOperator("A", "n2")
		}},
		{"unknown edge from", func() *Builder {
			var b Builder
			return b.AddOperator("A", "n1").Connect("X", "A")
		}},
		{"unknown edge to", func() *Builder {
			var b Builder
			return b.AddOperator("A", "n1").Connect("A", "X")
		}},
		{"self loop", func() *Builder {
			var b Builder
			return b.AddOperator("A", "n1").Connect("A", "A")
		}},
		{"duplicate edge", func() *Builder {
			var b Builder
			return b.AddOperator("A", "n1").AddOperator("B", "n2").
				Connect("A", "B").Connect("A", "B")
		}},
		{"no sources", func() *Builder {
			// Not buildable without a cycle; a cycle also errors first,
			// so use an empty graph which has no sources.
			return &Builder{}
		}},
	}
	for _, tc := range cases {
		if _, err := tc.build().Build(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSlotProjection(t *testing.T) {
	// Two operators co-located on one slot: A,B on n1; C on n2; D on n3.
	var b Builder
	b.AddOperator("A", "n1").AddOperator("B", "n1").
		AddOperator("C", "n2").AddOperator("D", "n3")
	b.Connect("A", "B").Connect("B", "C").Connect("C", "D")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Slots(); !reflect.DeepEqual(got, []string{"n1", "n2", "n3"}) {
		t.Fatalf("slots = %v", got)
	}
	if got := g.OpsOnSlot("n1"); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Fatalf("ops on n1 = %v", got)
	}
	// The A->B edge is intra-slot and must not appear in the projection.
	if got := g.SlotUpstreams("n1"); len(got) != 0 {
		t.Fatalf("slot upstreams(n1) = %v, want none", got)
	}
	if got := g.SlotDownstreams("n1"); !reflect.DeepEqual(got, []string{"n2"}) {
		t.Fatalf("slot downstreams(n1) = %v", got)
	}
	if got := g.SlotUpstreams("n3"); !reflect.DeepEqual(got, []string{"n2"}) {
		t.Fatalf("slot upstreams(n3) = %v", got)
	}
	if got := g.SourceSlots(); !reflect.DeepEqual(got, []string{"n1"}) {
		t.Fatalf("source slots = %v", got)
	}
	if got := g.SinkSlots(); !reflect.DeepEqual(got, []string{"n3"}) {
		t.Fatalf("sink slots = %v", got)
	}
}

func TestChainHelper(t *testing.T) {
	var b Builder
	b.AddOperator("S", "n1").AddOperator("M", "n2").AddOperator("K", "n3")
	b.Chain("S", "M", "K")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Downstream("S"); !reflect.DeepEqual(got, []string{"M"}) {
		t.Fatalf("downstream(S) = %v", got)
	}
	if got := g.Downstream("M"); !reflect.DeepEqual(got, []string{"K"}) {
		t.Fatalf("downstream(M) = %v", got)
	}
}

func TestSpecLookup(t *testing.T) {
	g := diamond(t)
	s, ok := g.Spec("C")
	if !ok || s.Slot != "n3" {
		t.Fatalf("spec(C) = %+v, %v", s, ok)
	}
	if _, ok := g.Spec("nope"); ok {
		t.Fatal("unknown operator found")
	}
	if g.SlotOf("D") != "n4" {
		t.Fatalf("SlotOf(D) = %q", g.SlotOf("D"))
	}
}
