package graph

import (
	"reflect"
	"testing"
)

func keyedBuilder() *Builder {
	b := &Builder{}
	b.AddOperator("src", "n0")
	b.AddKeyedOperator("agg", "kn", 2, 3)
	b.AddOperator("sink", "n9")
	b.ConnectToGroup("src", "agg")
	b.ConnectFromGroup("agg", "sink")
	return b
}

func TestKeyedGroupBuild(t *testing.T) {
	g, err := keyedBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	grp, ok := g.KeyedGroup("agg")
	if !ok {
		t.Fatal("group missing")
	}
	if !reflect.DeepEqual(grp.Instances, []string{"agg#0", "agg#1", "agg#2"}) {
		t.Fatalf("instances %v", grp.Instances)
	}
	if !reflect.DeepEqual(grp.Slots, []string{"kn#0", "kn#1", "kn#2"}) {
		t.Fatalf("slots %v", grp.Slots)
	}
	if grp.Parallelism != 2 {
		t.Fatalf("parallelism %d", grp.Parallelism)
	}

	// Edges fan from the producer to every instance and from every
	// instance to the consumer.
	if got := g.Downstream("src"); !reflect.DeepEqual(got, grp.Instances) {
		t.Fatalf("src downstream %v", got)
	}
	for _, inst := range grp.Instances {
		if got := g.Downstream(inst); !reflect.DeepEqual(got, []string{"sink"}) {
			t.Fatalf("%s downstream %v", inst, got)
		}
	}

	// Membership lookups.
	if _, _, ok := g.KeyedGroupOf("src"); ok {
		t.Fatal("src reported in a group")
	}
	got, idx, ok := g.KeyedGroupOf("agg#1")
	if !ok || idx != 1 || got.Logical != "agg" {
		t.Fatalf("KeyedGroupOf(agg#1) = %v %d %v", got.Logical, idx, ok)
	}
	if !g.KeyedSlot("kn#2") || g.KeyedSlot("n0") {
		t.Fatal("KeyedSlot wrong")
	}

	// Sink alignment sees every instance slot as an upstream.
	if got := g.SlotUpstreams("n9"); !reflect.DeepEqual(got, []string{"kn#0", "kn#1", "kn#2"}) {
		t.Fatalf("sink upstream slots %v", got)
	}
}

func TestKeyedGroupValidation(t *testing.T) {
	// Parallelism out of range.
	b := &Builder{}
	b.AddOperator("src", "n0")
	b.AddKeyedOperator("agg", "kn", 0, 2)
	b.AddOperator("sink", "n9")
	b.ConnectToGroup("src", "agg")
	b.ConnectFromGroup("agg", "sink")
	if _, err := b.Build(); err == nil {
		t.Fatal("parallelism 0 accepted")
	}

	// Instance sharing a slot with another operator.
	b = &Builder{}
	b.AddOperator("src", "n0")
	b.AddKeyedOperator("agg", "kn", 1, 2)
	b.AddOperator("intruder", "kn#0")
	b.AddOperator("sink", "n9")
	b.ConnectToGroup("src", "agg")
	b.ConnectFromGroup("agg", "sink")
	b.Connect("src", "intruder")
	b.Connect("intruder", "sink")
	if _, err := b.Build(); err == nil {
		t.Fatal("shared instance slot accepted")
	}

	// Logical ID colliding with a plain operator.
	b = &Builder{}
	b.AddOperator("src", "n0")
	b.AddOperator("agg", "n1")
	b.AddKeyedOperator("agg", "kn", 1, 2)
	b.AddOperator("sink", "n9")
	b.Connect("src", "agg")
	b.ConnectToGroup("src", "agg")
	b.ConnectFromGroup("agg", "sink")
	b.Connect("agg", "sink")
	if _, err := b.Build(); err == nil {
		t.Fatal("logical/operator ID collision accepted")
	}

	// ConnectToGroup with an unknown logical surfaces an unknown-operator
	// error mentioning the name.
	b = &Builder{}
	b.AddOperator("src", "n0")
	b.AddOperator("sink", "n9")
	b.ConnectToGroup("src", "ghost")
	b.Connect("src", "sink")
	if _, err := b.Build(); err == nil {
		t.Fatal("unknown group accepted")
	}
}
