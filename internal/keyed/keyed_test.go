package keyed

import (
	"reflect"
	"testing"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(nil, 0); err == nil {
		t.Fatal("active=0 accepted")
	}
	if _, err := NewTable([]string{"b", "b"}, 2); err == nil {
		t.Fatal("duplicate bounds accepted")
	}
	if _, err := NewTable([]string{"c", "b"}, 2); err == nil {
		t.Fatal("descending bounds accepted")
	}
	if _, err := NewTable([]string{""}, 2); err == nil {
		t.Fatal("empty bound accepted")
	}
}

func TestTableOwnerSingle(t *testing.T) {
	tbl, err := NewTable(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "a", "zzz"} {
		if got := tbl.Owner(k); got != 0 {
			t.Fatalf("Owner(%q) = %d", k, got)
		}
	}
}

func TestTableOwnerBounds(t *testing.T) {
	tbl, err := NewTable([]string{"h", "p"}, 3) // [,h)->0 [h,p)->1 [p,)->2
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]int{
		"":  0,
		"a": 0, "g~": 0,
		"h": 1, "hzz": 1, "o": 1,
		"p": 2, "z": 2,
	}
	for k, want := range cases {
		if got := tbl.Owner(k); got != want {
			t.Errorf("Owner(%q) = %d, want %d", k, got, want)
		}
	}
	if lo, hi := tbl.RangeOf("h"); lo != "h" || hi != "p" {
		t.Fatalf("RangeOf(h) = [%q,%q)", lo, hi)
	}
	if lo, hi := tbl.RangeOf("z"); lo != "p" || hi != "" {
		t.Fatalf("RangeOf(z) = [%q,%q)", lo, hi)
	}
}

func TestSplitAndMerge(t *testing.T) {
	tbl, err := NewTable([]string{"m"}, 2) // [,m)->0 [m,)->1
	if err != nil {
		t.Fatal(err)
	}

	// Split the hot lower range at "f", handing [f,m) to instance 2.
	next, moved, err := tbl.Split("f", 2)
	if err != nil {
		t.Fatal(err)
	}
	if moved != [2]string{"f", "m"} {
		t.Fatalf("moved range %v", moved)
	}
	if next.Epoch() != tbl.Epoch()+1 {
		t.Fatal("split did not bump epoch")
	}
	if got := next.String(); got != "[,f)->0 [f,m)->2 [m,)->1" {
		t.Fatalf("after split: %s", got)
	}
	if next.Owner("f") != 2 || next.Owner("e") != 0 || next.Owner("m") != 1 {
		t.Fatal("split ownership wrong")
	}
	if got := next.Instances(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("instances %v", got)
	}

	// Splitting at an existing bound or with an empty bound fails.
	if _, _, err := next.Split("m", 3); err == nil {
		t.Fatal("split at existing bound accepted")
	}
	if _, _, err := next.Split("", 3); err == nil {
		t.Fatal("split at empty bound accepted")
	}

	// Merge instance 2 back into 0: ranges [,f) and [f,m) coalesce.
	merged, movedRanges, err := next.MergeInto(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(movedRanges, [][2]string{{"f", "m"}}) {
		t.Fatalf("merge moved %v", movedRanges)
	}
	if got := merged.String(); got != "[,m)->0 [m,)->1" {
		t.Fatalf("after merge: %s", got)
	}
	if merged.Epoch() != next.Epoch()+1 {
		t.Fatal("merge did not bump epoch")
	}

	// Merging an instance that owns nothing fails.
	if _, _, err := merged.MergeInto(5, 0); err == nil {
		t.Fatal("merge of rangeless instance accepted")
	}
	if _, _, err := merged.MergeInto(1, 1); err == nil {
		t.Fatal("self-merge accepted")
	}
}

func TestOwnedRanges(t *testing.T) {
	tbl, _ := NewTable([]string{"f", "m"}, 2) // [,f)->0 [f,m)->1 [m,)->0
	if got := tbl.OwnedRanges(0); !reflect.DeepEqual(got, [][2]string{{"", "f"}, {"m", ""}}) {
		t.Fatalf("OwnedRanges(0) = %v", got)
	}
	if got := tbl.OwnedRanges(1); !reflect.DeepEqual(got, [][2]string{{"f", "m"}}) {
		t.Fatalf("OwnedRanges(1) = %v", got)
	}
}

func TestGroup(t *testing.T) {
	tbl, _ := NewTable([]string{"m"}, 2)
	if _, err := NewGroup("agg", nil, tbl); err == nil {
		t.Fatal("empty instance list accepted")
	}
	if _, err := NewGroup("agg", []string{"agg#0"}, tbl); err == nil {
		t.Fatal("table owner outside instance list accepted")
	}
	g, err := NewGroup("agg", []string{"agg#0", "agg#1", "agg#2"}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if g.Owner("a") != 0 || g.Owner("z") != 1 {
		t.Fatal("group owner lookup wrong")
	}
	if g.IndexOf("agg#2") != 2 || g.IndexOf("nope") != -1 {
		t.Fatal("IndexOf wrong")
	}
	next, _, err := g.Table().Split("t", 2)
	if err != nil {
		t.Fatal(err)
	}
	g.Install(next)
	if g.Owner("u") != 2 {
		t.Fatal("installed table not visible")
	}
}

func BenchmarkOwner(b *testing.B) {
	tbl, _ := NewTable([]string{"d", "h", "l", "p", "t"}, 6)
	g, _ := NewGroup("agg", []string{"a0", "a1", "a2", "a3", "a4", "a5"}, tbl)
	keys := []string{"a", "dz", "hq", "m", "q", "zz"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Owner(keys[i%len(keys)])
	}
}
