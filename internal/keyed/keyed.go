// Package keyed implements the elastic key-range partition table: the
// shared, lock-free resolver that maps a tuple's partition key to one of
// a logical operator's parallel instances.
//
// The keyspace is partitioned lexicographically into contiguous half-open
// ranges, one per active instance. Range partitioning (rather than
// hashing) is what makes live splits cheap: moving load off a hot
// instance is "hand the upper half of your key range to a cold peer",
// which KeyedState.ExportRange serialises without touching the rest of
// the keyspace.
//
// A Table is immutable; a Group publishes the current table through an
// atomic pointer, exactly like the node's epoch-stamped route cache. The
// emit hot path does one atomic load and a binary search over the range
// bounds — no locks, no allocations — while the control plane (region
// split/merge, scheduler policy) swaps in successor tables built by
// Table.Split and Table.Merge.
package keyed

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Table is one immutable partition of the keyspace across instances.
// Range i covers [bound[i-1], bound[i]) with bound[-1] = "" (the start of
// the keyspace) and bound[len-1] = +inf; owners[i] is the instance index
// serving range i. len(owners) == len(bounds)+1 always.
type Table struct {
	epoch  uint64
	bounds []string
	owners []int
}

// NewTable builds the initial table: the keyspace pre-split at the given
// bounds, ranges assigned round-robin across the first `active` instance
// indexes. With active == 1 and no bounds it is the single-instance
// identity table.
func NewTable(bounds []string, active int) (*Table, error) {
	if active < 1 {
		return nil, fmt.Errorf("keyed: active instances %d < 1", active)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] >= bounds[i] {
			return nil, fmt.Errorf("keyed: bounds not strictly increasing at %q", bounds[i])
		}
	}
	if len(bounds) > 0 && bounds[0] == "" {
		return nil, fmt.Errorf("keyed: empty split bound")
	}
	t := &Table{epoch: 1, bounds: append([]string(nil), bounds...)}
	t.owners = make([]int, len(bounds)+1)
	for i := range t.owners {
		t.owners[i] = i % active
	}
	return t, nil
}

// Epoch identifies the table generation; each Split/Merge bumps it.
func (t *Table) Epoch() uint64 { return t.epoch }

// Ranges reports how many contiguous ranges the table holds.
func (t *Table) Ranges() int { return len(t.owners) }

// Owner resolves a key to its owning instance index. Lock-free and
// allocation-free: one binary search over the range bounds.
func (t *Table) Owner(key string) int {
	lo, hi := 0, len(t.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if key < t.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return t.owners[lo]
}

// RangeOf returns the half-open range [lo, hi) the key falls in; hi == ""
// means unbounded.
func (t *Table) RangeOf(key string) (lo, hi string) {
	i := 0
	for i < len(t.bounds) && key >= t.bounds[i] {
		i++
	}
	if i > 0 {
		lo = t.bounds[i-1]
	}
	if i < len(t.bounds) {
		hi = t.bounds[i]
	}
	return lo, hi
}

// Instances returns the set of instance indexes owning at least one
// range, ascending.
func (t *Table) Instances() []int {
	seen := map[int]bool{}
	for _, o := range t.owners {
		seen[o] = true
	}
	out := make([]int, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

// OwnedRanges returns the ranges owned by one instance as (lo, hi) pairs
// in keyspace order; hi == "" means unbounded.
func (t *Table) OwnedRanges(inst int) [][2]string {
	var out [][2]string
	for i, o := range t.owners {
		if o != inst {
			continue
		}
		var lo, hi string
		if i > 0 {
			lo = t.bounds[i-1]
		}
		if i < len(t.bounds) {
			hi = t.bounds[i]
		}
		out = append(out, [2]string{lo, hi})
	}
	return out
}

// Split cuts the range containing key at the given bound and assigns the
// upper half [at, oldHi) to instance `to`. It returns the successor table
// plus the moved range. The cut point must fall strictly inside the
// range that currently contains it.
func (t *Table) Split(at string, to int) (*Table, [2]string, error) {
	if at == "" {
		return nil, [2]string{}, fmt.Errorf("keyed: empty split bound")
	}
	if to < 0 {
		return nil, [2]string{}, fmt.Errorf("keyed: split target %d < 0", to)
	}
	for _, b := range t.bounds {
		if b == at {
			return nil, [2]string{}, fmt.Errorf("keyed: bound %q already exists", at)
		}
	}
	i := 0
	for i < len(t.bounds) && at >= t.bounds[i] {
		i++
	}
	// Range i is [bounds[i-1], bounds[i]) and contains `at` strictly.
	var hi string
	if i < len(t.bounds) {
		hi = t.bounds[i]
	}
	next := &Table{
		epoch:  t.epoch + 1,
		bounds: make([]string, 0, len(t.bounds)+1),
		owners: make([]int, 0, len(t.owners)+1),
	}
	next.bounds = append(next.bounds, t.bounds[:i]...)
	next.bounds = append(next.bounds, at)
	next.bounds = append(next.bounds, t.bounds[i:]...)
	next.owners = append(next.owners, t.owners[:i+1]...)
	next.owners = append(next.owners, to)
	next.owners = append(next.owners, t.owners[i+1:]...)
	return next, [2]string{at, hi}, nil
}

// MergeInto reassigns every range owned by instance `from` to instance
// `to` and coalesces adjacent same-owner ranges. It returns the
// successor table plus the ranges that moved (the state `from` must hand
// to `to`).
func (t *Table) MergeInto(from, to int) (*Table, [][2]string, error) {
	if from == to {
		return nil, nil, fmt.Errorf("keyed: merge instance %d into itself", from)
	}
	moved := t.OwnedRanges(from)
	if len(moved) == 0 {
		return nil, nil, fmt.Errorf("keyed: instance %d owns no range", from)
	}
	owners := make([]int, len(t.owners))
	for i, o := range t.owners {
		if o == from {
			o = to
		}
		owners[i] = o
	}
	next := &Table{epoch: t.epoch + 1}
	for i, o := range owners {
		if i > 0 && o == next.owners[len(next.owners)-1] {
			continue // coalesce: drop the bound between same-owner ranges
		}
		if i > 0 {
			next.bounds = append(next.bounds, t.bounds[i-1])
		}
		next.owners = append(next.owners, o)
	}
	return next, moved, nil
}

// String renders the table for logs and tests: "[,b)->0 [b,)->1".
func (t *Table) String() string {
	var sb strings.Builder
	for i, o := range t.owners {
		var lo, hi string
		if i > 0 {
			lo = t.bounds[i-1]
		}
		if i < len(t.bounds) {
			hi = t.bounds[i]
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "[%s,%s)->%d", lo, hi, o)
	}
	return sb.String()
}

// Group is one logical operator's elastic identity: its instance IDs and
// the live partition table. The data plane resolves keys through it on
// every emission; the control plane installs successor tables.
type Group struct {
	logical   string
	instances []string
	tbl       atomic.Pointer[Table]
}

// NewGroup builds a group over the given instance operator IDs with the
// given initial table.
func NewGroup(logical string, instances []string, tbl *Table) (*Group, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("keyed: group %q has no instances", logical)
	}
	for _, o := range tbl.owners {
		if o >= len(instances) {
			return nil, fmt.Errorf("keyed: table owner %d outside %d instances", o, len(instances))
		}
	}
	g := &Group{logical: logical, instances: append([]string(nil), instances...)}
	g.tbl.Store(tbl)
	return g, nil
}

// Logical returns the logical operator ID the group expands.
func (g *Group) Logical() string { return g.logical }

// Instances returns the instance operator IDs (index == instance index).
// The returned slice is shared; callers must not mutate it.
func (g *Group) Instances() []string { return g.instances }

// IndexOf resolves an instance operator ID to its index, or -1.
func (g *Group) IndexOf(instance string) int {
	for i, id := range g.instances {
		if id == instance {
			return i
		}
	}
	return -1
}

// Table returns the current partition table (an immutable snapshot).
func (g *Group) Table() *Table { return g.tbl.Load() }

// Owner resolves a key to the owning instance index against the current
// table — the emit hot path. Lock-free, allocation-free.
func (g *Group) Owner(key string) int { return g.tbl.Load().Owner(key) }

// Install publishes a successor table. The caller (region control plane)
// is responsible for having moved the corresponding state first.
func (g *Group) Install(t *Table) { g.tbl.Store(t) }
